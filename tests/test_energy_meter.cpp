#include "energy/energy_meter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "energy/energy_report.hpp"
#include "energy/power_trace.hpp"
#include "sim/rng.hpp"

namespace bansim::energy {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

TimePoint at(std::int64_t ms) {
  return TimePoint::zero() + Duration::milliseconds(ms);
}

EnergyMeter radio_meter() {
  return EnergyMeter{"radio",
                     2.8,
                     {{"off", 1e-6}, {"rx", 24.82e-3}, {"tx", 17.54e-3}}};
}

TEST(EnergyMeter, IntegratesIVT) {
  EnergyMeter m = radio_meter();
  m.transition(1, at(0));   // rx from t=0
  m.transition(0, at(10));  // off at 10 ms
  // E = 24.82 mA * 2.8 V * 10 ms = 0.694960 mJ in rx.
  EXPECT_NEAR(m.energy_in(1, at(10)), 24.82e-3 * 2.8 * 0.010, 1e-12);
  EXPECT_NEAR(m.total_energy(at(10)), m.energy_in(0, at(10)) + m.energy_in(1, at(10)) ,
              1e-15);
}

TEST(EnergyMeter, InProgressStateCountsUpToNow) {
  EnergyMeter m = radio_meter();
  m.transition(2, at(0));
  EXPECT_NEAR(m.energy_in(2, at(5)), 17.54e-3 * 2.8 * 0.005, 1e-12);
  EXPECT_NEAR(m.energy_in(2, at(50)), 17.54e-3 * 2.8 * 0.050, 1e-12);
}

TEST(EnergyMeter, EntriesAndState) {
  EnergyMeter m = radio_meter();
  EXPECT_EQ(m.current_state(), 0);
  m.transition(1, at(1));
  m.transition(2, at(2));
  m.transition(1, at(3));
  EXPECT_EQ(m.current_state(), 1);
  EXPECT_EQ(m.entries(1), 2u);
  EXPECT_EQ(m.entries(2), 1u);
  EXPECT_EQ(m.time_in(1, at(10)), Duration::milliseconds(1 + 7));
}

TEST(EnergyMeter, AveragePower) {
  EnergyMeter m = radio_meter();
  m.transition(1, at(0));
  // Constant RX: average power equals the RX power.
  EXPECT_NEAR(m.average_power(at(20)), 24.82e-3 * 2.8, 1e-12);
  EXPECT_DOUBLE_EQ(m.average_power(at(0)), 0.0);
}

TEST(EnergyMeter, TransientsAttributeToState) {
  EnergyMeter m = radio_meter();
  m.add_transient(2, 5e-6);
  m.add_transient(2, 5e-6);
  EXPECT_NEAR(m.energy_in(2, at(0)), 10e-6, 1e-18);
  EXPECT_NEAR(m.total_energy(at(0)), 10e-6, 1e-18);
}

TEST(EnergyMeter, EnergyConservationProperty) {
  // Sum over states == total for arbitrary transition sequences.
  sim::Rng rng{33};
  EnergyMeter m = radio_meter();
  TimePoint t = at(0);
  for (int i = 0; i < 500; ++i) {
    t += Duration::microseconds(rng.uniform_int(1, 3000));
    m.transition(static_cast<int>(rng.uniform_int(0, 2)), t);
  }
  const TimePoint end = t + 11_ms;
  double sum = 0.0;
  for (int s = 0; s < 3; ++s) sum += m.energy_in(s, end);
  EXPECT_NEAR(sum, m.total_energy(end), 1e-12);
}

TEST(EnergyMeter, OutOfRangeStateFailsLoudly) {
  // A negative or too-large state used to index states_/transient_joules_
  // unchecked — silent UB that would skew the validation tables.  Every
  // state-addressed entry point must throw instead.
  EnergyMeter m = radio_meter();  // 3 states
  EXPECT_THROW(m.transition(3, at(1)), std::out_of_range);
  EXPECT_THROW(m.transition(-1, at(1)), std::out_of_range);
  EXPECT_THROW((void)m.energy_in(3, at(1)), std::out_of_range);
  EXPECT_THROW((void)m.energy_in(-1, at(1)), std::out_of_range);
  EXPECT_THROW(m.add_transient(3, 1e-6), std::out_of_range);
  EXPECT_THROW(m.add_transient(-2, 1e-6), std::out_of_range);
  EXPECT_THROW((void)m.time_in(3, at(1)), std::out_of_range);
  EXPECT_THROW((void)m.entries(-1), std::out_of_range);
  // The meter is untouched by the rejected calls.
  EXPECT_EQ(m.current_state(), 0);
  EXPECT_DOUBLE_EQ(m.total_energy(at(0)), 0.0);
  // Legal boundary states still work.
  m.transition(2, at(1));
  m.add_transient(0, 1e-6);
  EXPECT_EQ(m.current_state(), 2);
}

TEST(EnergyMeter, EndStateIsIdempotentAtSimEnd) {
  // Regression: the teardown path may close a meter twice (explicit
  // end-of-measurement close, then a destructor sweep).  The second close
  // must not double-count entries, residency or energy.
  EnergyMeter m = radio_meter();
  m.transition(1, at(0));
  m.transition(2, at(10));
  const TimePoint sim_end = at(25);

  m.end_state(sim_end);
  const double energy_once = m.total_energy(sim_end);
  const Duration in_tx_once = m.time_in(2, sim_end);
  const std::size_t entries_once = m.entries(2);

  m.end_state(sim_end);
  EXPECT_DOUBLE_EQ(m.total_energy(sim_end), energy_once);
  EXPECT_EQ(m.time_in(2, sim_end), in_tx_once);
  EXPECT_EQ(m.entries(2), entries_once);
  EXPECT_EQ(m.current_state(), 2);  // close does not change the state

  // Contrast with the bug end_state replaces: a same-state transition at
  // sim end would have bumped the entry counter.
  EXPECT_NEAR(energy_once,
              24.82e-3 * 2.8 * 0.010 + 17.54e-3 * 2.8 * 0.015, 1e-12);
}

TEST(EnergyLedger, BreakdownAndTotals) {
  EnergyLedger ledger;
  const std::size_t i =
      ledger.add_meter(EnergyMeter{"mcu", 2.8, {{"active", 2e-3}, {"lpm", 0.66e-3}}});
  ledger.add_constant_load("asic", 10.5e-3);
  ledger.meter(i).transition(1, at(0));

  const auto rows = ledger.breakdown(at(1000));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].component, "mcu");
  EXPECT_EQ(rows[1].component, "asic");
  EXPECT_NEAR(rows[1].joules, 10.5e-3, 1e-12);
  EXPECT_NEAR(ledger.total_energy(at(1000)), rows[0].joules + rows[1].joules,
              1e-12);
}

TEST(EnergyLedger, FindByName) {
  EnergyLedger ledger;
  ledger.add_meter(EnergyMeter{"radio", 2.8, {{"off", 0.0}}});
  EXPECT_NE(ledger.find("radio"), nullptr);
  EXPECT_EQ(ledger.find("nope"), nullptr);
}

TEST(NodeEnergy, ComponentLookup) {
  NodeEnergy ne;
  ne.node = "node1";
  ne.components = {{"mcu", 0.001, {}}, {"radio", 0.002, {}}};
  EXPECT_DOUBLE_EQ(ne.component_joules("radio"), 0.002);
  EXPECT_DOUBLE_EQ(ne.component_joules("missing"), 0.0);
  EXPECT_DOUBLE_EQ(ne.total_joules(), 0.003);
}

TEST(EnergyReport, TableAndCsvRender) {
  NodeEnergy ne;
  ne.node = "node1";
  ne.components = {{"mcu", 0.001, {{"active", 0.0004}, {"lpm", 0.0006}}}};
  const std::string table = render_energy_table({ne});
  EXPECT_NE(table.find("node1"), std::string::npos);
  EXPECT_NE(table.find("mcu"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  const std::string csv = render_energy_csv({ne});
  EXPECT_NE(csv.find("node1,mcu,active,"), std::string::npos);
}

TEST(ValidationRow, ErrorMath) {
  ValidationRow r{"x", 30, 100.0, 90.0, 50.0, 55.0};
  EXPECT_NEAR(r.radio_error(), 0.10, 1e-12);
  EXPECT_NEAR(r.mcu_error(), 0.10, 1e-12);
}

TEST(ValidationTable, AveragesAndRender) {
  ValidationTable t;
  t.title = "T";
  t.parameter_name = "p";
  t.rows = {{"a", 30, 100, 90, 50, 55}, {"b", 60, 200, 200, 100, 100}};
  EXPECT_NEAR(t.avg_radio_error(), 0.05, 1e-12);
  EXPECT_NEAR(t.avg_mcu_error(), 0.05, 1e-12);
  const std::string s = t.render();
  EXPECT_NE(s.find("Avg err radio: 5.0%"), std::string::npos);
  EXPECT_NE(t.render_csv().find("a,30.0,"), std::string::npos);
}

TEST(PowerTrace, SampleAndPeak) {
  PowerTrace trace;
  trace.step(at(0), 1.0);
  trace.step(at(10), 3.0);
  trace.step(at(20), 0.5);
  EXPECT_DOUBLE_EQ(trace.sample(at(5)), 1.0);
  EXPECT_DOUBLE_EQ(trace.sample(at(10)), 3.0);
  EXPECT_DOUBLE_EQ(trace.sample(at(15)), 3.0);
  EXPECT_DOUBLE_EQ(trace.sample(at(25)), 0.5);
  EXPECT_DOUBLE_EQ(trace.peak(), 3.0);
  // Before the first step there is no power.
  EXPECT_DOUBLE_EQ(PowerTrace{}.sample(at(1)), 0.0);
}

TEST(PowerTrace, EnergyIntegral) {
  PowerTrace trace;
  trace.step(at(0), 2.0);   // 2 W for 10 ms = 20 mJ
  trace.step(at(10), 1.0);  // 1 W for 10 ms = 10 mJ
  EXPECT_NEAR(trace.energy(at(0), at(20)), 0.030, 1e-12);
  EXPECT_NEAR(trace.energy(at(5), at(15)), 0.015, 1e-12);
  EXPECT_DOUBLE_EQ(trace.energy(at(20), at(10)), 0.0);
}

TEST(PowerTrace, CoalescesSameInstant) {
  PowerTrace trace;
  trace.step(at(0), 1.0);
  trace.step(at(0), 2.0);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.sample(at(0)), 2.0);
}

TEST(PowerTrace, CsvRender) {
  PowerTrace trace;
  trace.step(at(0), 0.001);
  EXPECT_NE(trace.render_csv().find("time_ms,power_mw"), std::string::npos);
}

}  // namespace
}  // namespace bansim::energy
