#include "core/config_io.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace bansim::core {
namespace {

using namespace bansim::sim::literals;

TEST(ConfigIo, ParsesFullScenario) {
  const BanConfig cfg = parse_config(R"(
    ; the paper's Table 1 first row
    [network]
    nodes = 5
    seed = 42
    app = ecg_streaming

    [tdma]
    variant = static
    max_slots = 5
    cycle_ms = 30
    ack_data = true
    fast_grant = false

    [streaming]
    sample_rate_hz = 205
  )");
  EXPECT_EQ(cfg.num_nodes, 5u);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.app, AppKind::kEcgStreaming);
  EXPECT_EQ(cfg.tdma.variant, mac::TdmaVariant::kStatic);
  EXPECT_EQ(cfg.tdma.static_cycle(), 30_ms);
  EXPECT_EQ(cfg.tdma.slot, 5_ms);
  EXPECT_TRUE(cfg.tdma.ack_data);
  EXPECT_FALSE(cfg.tdma.fast_grant);
  EXPECT_DOUBLE_EQ(cfg.streaming.sample_rate_hz, 205.0);
}

TEST(ConfigIo, ParsesDynamicAndLink) {
  const BanConfig cfg = parse_config(R"(
    [network]
    nodes = 3
    app = rpeak
    [tdma]
    variant = dynamic
    slot_ms = 10
    radio_power_down = on
    [link]
    enabled = yes
    tx_power_dbm = -12.5
  )");
  EXPECT_EQ(cfg.tdma.variant, mac::TdmaVariant::kDynamic);
  EXPECT_EQ(cfg.tdma.slot, 10_ms);
  EXPECT_TRUE(cfg.tdma.radio_power_down);
  EXPECT_TRUE(cfg.use_link_model);
  EXPECT_DOUBLE_EQ(cfg.link_budget.tx_power_dbm, -12.5);
  EXPECT_EQ(cfg.app, AppKind::kRpeak);
}

TEST(ConfigIo, EegKeysCoupleChannelCounts) {
  const BanConfig cfg = parse_config(R"(
    [network]
    app = eeg_monitoring
    [eeg]
    channels = 12
    sample_rate_hz = 128
    block_samples = 32
  )");
  EXPECT_EQ(cfg.app, AppKind::kEegMonitoring);
  EXPECT_EQ(cfg.eeg.channels, 12u);
  EXPECT_EQ(cfg.eeg_signal.channels, 12u);
  EXPECT_DOUBLE_EQ(cfg.eeg.sample_rate_hz, 128.0);
  EXPECT_EQ(cfg.eeg.block_samples, 32u);
}

TEST(ConfigIo, UnknownKeyIsAnError) {
  EXPECT_THROW(parse_config("[network]\nnods = 5\n"), ConfigError);
  EXPECT_THROW(parse_config("[nonsense]\nnodes = 5\n"), ConfigError);
}

TEST(ConfigIo, MalformedValuesAreErrors) {
  EXPECT_THROW(parse_config("[network]\nnodes = five\n"), ConfigError);
  EXPECT_THROW(parse_config("[tdma]\nack_data = maybe\n"), ConfigError);
  EXPECT_THROW(parse_config("[network]\napp = tetris\n"), ConfigError);
  EXPECT_THROW(parse_config("[network\nnodes = 5\n"), ConfigError);
  EXPECT_THROW(parse_config("nodes 5\n"), ConfigError);
}

TEST(ConfigIo, CommentsAndWhitespaceTolerated) {
  const BanConfig cfg = parse_config(
      "  [network]   # section\n"
      "   nodes=2;inline\n"
      "\n"
      "# full-line comment\n");
  EXPECT_EQ(cfg.num_nodes, 2u);
}

TEST(ConfigIo, SerializeParseRoundTrip) {
  BanConfig original;
  original.num_nodes = 4;
  original.seed = 99;
  original.app = AppKind::kRpeak;
  original.tdma = mac::TdmaConfig::dynamic_plan();
  original.tdma.ack_data = true;
  original.tdma.radio_power_down = true;
  original.use_link_model = true;
  original.link_budget.tx_power_dbm = -10.0;

  const BanConfig back = parse_config(serialize_config(original));
  EXPECT_EQ(back.num_nodes, original.num_nodes);
  EXPECT_EQ(back.seed, original.seed);
  EXPECT_EQ(back.app, original.app);
  EXPECT_EQ(back.tdma.variant, original.tdma.variant);
  EXPECT_EQ(back.tdma.slot, original.tdma.slot);
  EXPECT_EQ(back.tdma.ack_data, original.tdma.ack_data);
  EXPECT_EQ(back.tdma.radio_power_down, original.tdma.radio_power_down);
  EXPECT_EQ(back.use_link_model, original.use_link_model);
  EXPECT_DOUBLE_EQ(back.link_budget.tx_power_dbm,
                   original.link_budget.tx_power_dbm);
}

TEST(ConfigIo, EnumParsersNameTheOffendingToken) {
  EXPECT_EQ(parse_app_kind("rpeak"), AppKind::kRpeak);
  EXPECT_EQ(parse_tdma_variant("dynamic"), mac::TdmaVariant::kDynamic);
  EXPECT_EQ(parse_fidelity("model"), Fidelity::kModel);
  try {
    (void)parse_app_kind("ecg_streamign");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string{e.what()}.find("ecg_streamign"), std::string::npos);
  }
  // The CLI historically coerced any non-"dynamic" token to static; the
  // shared parser must reject typos instead.
  EXPECT_THROW((void)parse_tdma_variant("statik"), ConfigError);
  EXPECT_THROW((void)parse_fidelity("reel"), ConfigError);
}

TEST(ConfigIo, NodeSectionsFillTheRoster) {
  const BanConfig cfg = parse_config(R"(
    [network]
    nodes = 4
    app = ecg_streaming
    [node.2]
    app = rpeak
    rpeak.sample_rate_hz = 250
    boot_ms = 3
    [node.3]
    clock_skew = -1e-4
    fidelity = model
  )");
  ASSERT_EQ(cfg.roster.size(), 4u);
  EXPECT_EQ(cfg.effective_nodes(), 4u);
  EXPECT_FALSE(cfg.roster[0].app.has_value());  // inherits the default
  ASSERT_TRUE(cfg.roster[1].app.has_value());
  EXPECT_EQ(*cfg.roster[1].app, AppKind::kRpeak);
  ASSERT_TRUE(cfg.roster[1].rpeak.has_value());
  EXPECT_DOUBLE_EQ(cfg.roster[1].rpeak->sample_rate_hz, 250.0);
  ASSERT_TRUE(cfg.roster[1].boot_offset.has_value());
  EXPECT_EQ(*cfg.roster[1].boot_offset, 3_ms);
  ASSERT_TRUE(cfg.roster[2].clock_skew.has_value());
  EXPECT_DOUBLE_EQ(*cfg.roster[2].clock_skew, -1e-4);
  ASSERT_TRUE(cfg.roster[2].fidelity.has_value());
  EXPECT_EQ(*cfg.roster[2].fidelity, Fidelity::kModel);
}

TEST(ConfigIo, RosterLengthFromLargestIndexWithoutExplicitNodes) {
  const BanConfig cfg = parse_config("[node.3]\napp = rpeak\n");
  EXPECT_EQ(cfg.roster.size(), 3u);
  EXPECT_EQ(cfg.effective_nodes(), 3u);
}

TEST(ConfigIo, NodeIndexBeyondExplicitCountIsAnError) {
  EXPECT_THROW(parse_config("[network]\nnodes = 2\n[node.5]\napp = rpeak\n"),
               ConfigError);
  EXPECT_THROW(parse_config("[node.0]\napp = rpeak\n"), ConfigError);
  EXPECT_THROW(parse_config("[node.x]\napp = rpeak\n"), ConfigError);
  EXPECT_THROW(parse_config("[node.1]\nbogus_key = 1\n"), ConfigError);
}

TEST(ConfigIo, RosterRoundTrip) {
  BanConfig original;
  original.num_nodes = 3;
  original.seed = 7;
  original.roster.resize(3);
  original.roster[1].app = AppKind::kRpeak;
  original.roster[1].rpeak = original.rpeak;
  original.roster[1].rpeak->sample_rate_hz = 300.0;
  original.roster[2].clock_skew = 2.5e-5;
  original.roster[2].boot_offset = sim::Duration::milliseconds(7);
  original.roster[2].fidelity = Fidelity::kModel;

  const BanConfig back = parse_config(serialize_config(original));
  ASSERT_EQ(back.roster.size(), 3u);
  EXPECT_FALSE(back.roster[0].app.has_value());
  ASSERT_TRUE(back.roster[1].app.has_value());
  EXPECT_EQ(*back.roster[1].app, AppKind::kRpeak);
  ASSERT_TRUE(back.roster[1].rpeak.has_value());
  EXPECT_DOUBLE_EQ(back.roster[1].rpeak->sample_rate_hz, 300.0);
  ASSERT_TRUE(back.roster[2].clock_skew.has_value());
  EXPECT_DOUBLE_EQ(*back.roster[2].clock_skew, 2.5e-5);
  ASSERT_TRUE(back.roster[2].boot_offset.has_value());
  EXPECT_EQ(*back.roster[2].boot_offset, 7_ms);
  ASSERT_TRUE(back.roster[2].fidelity.has_value());
  EXPECT_EQ(*back.roster[2].fidelity, Fidelity::kModel);
}

TEST(ConfigIo, ParsedConfigActuallyRuns) {
  BanConfig cfg = parse_config(R"(
    [network]
    nodes = 2
    app = ecg_streaming
    [tdma]
    variant = static
    max_slots = 5
    cycle_ms = 60
    [streaming]
    sample_rate_hz = 100
  )");
  MeasurementProtocol protocol;
  protocol.measure = sim::Duration::seconds(5);
  const ScenarioResult r = run_scenario(cfg, protocol);
  EXPECT_TRUE(r.joined);
  EXPECT_GT(r.data_packets, 50u);
}

TEST(ConfigIo, TdmaValidationHardErrors) {
  // ack_data with zero retries abandons every payload on the first lost
  // ACK — a config that silently delivers nothing must not parse.
  EXPECT_THROW(parse_config("[tdma]\nack_data = true\nmax_retries = 0\n"),
               ConfigError);
  // A zero-capacity TX queue drops every payload before transmission.
  EXPECT_THROW(parse_config("[tdma]\ntx_queue_cap = 0\n"), ConfigError);
  // Reclaiming at or before the dead-reckoning limit regrants a slot the
  // owner may still legally transmit in.
  EXPECT_THROW(parse_config("[tdma]\nmissed_beacon_limit = 4\n"
                            "reclaim_after_cycles = 4\n"),
               ConfigError);
  EXPECT_THROW(parse_config("[tdma]\nmissed_beacon_limit = 4\n"
                            "reclaim_after_cycles = 3\n"),
               ConfigError);
  // Bounded search needs a sane backoff progression.
  EXPECT_THROW(parse_config("[tdma]\nsearch_listen_ms = 100\n"
                            "search_backoff_factor = 0.5\n"),
               ConfigError);
  EXPECT_THROW(parse_config("[tdma]\nsearch_listen_ms = 100\n"
                            "search_backoff_base_ms = 50\n"
                            "search_backoff_max_ms = 10\n"),
               ConfigError);
  // The boundary cases that must still parse.
  EXPECT_NO_THROW(parse_config("[tdma]\nack_data = true\nmax_retries = 1\n"));
  EXPECT_NO_THROW(parse_config("[tdma]\nmissed_beacon_limit = 4\n"
                               "reclaim_after_cycles = 5\n"));
  EXPECT_NO_THROW(parse_config("[tdma]\nreclaim_after_cycles = 0\n"));
}

TEST(ConfigIo, FaultSectionsParse) {
  const BanConfig cfg = parse_config(R"(
    [network]
    nodes = 3
    [fault]
    enabled = true
    [fault.fade]
    enabled = true
    p_enter = 0.03
    p_exit = 0.25
    step_ms = 4
    extra_loss_db = 15
    fer = 0.7
    [fault.interferer]
    enabled = true
    period_ms = 120
    burst_ms = 4
    fer = 0.4
    [fault.crashes]
    enabled = true
    rate_hz = 0.1
    min_down_ms = 150
    max_down_ms = 900
    [fault.brownout]
    enabled = true
    capacity_mah = 0.05
    esr_ohms = 80
    brownout_volts = 3.7
    [fault.episode.1]
    node = 2
    start_ms = 3000
    duration_ms = 1500
    extra_loss_db = 22
    fer = 0.5
    [fault.event.1]
    kind = crash
    node = 1
    at_ms = 5000
    down_ms = 700
    [fault.event.2]
    kind = skew_step
    node = 3
    at_ms = 8000
    skew_delta = -0.001
  )");
  const fault::FaultPlan& plan = cfg.fault_plan;
  ASSERT_TRUE(plan.enabled);
  EXPECT_TRUE(plan.fade.enabled);
  EXPECT_DOUBLE_EQ(plan.fade.p_enter, 0.03);
  EXPECT_DOUBLE_EQ(plan.fade.p_exit, 0.25);
  EXPECT_EQ(plan.fade.step, 4_ms);
  EXPECT_DOUBLE_EQ(plan.fade.extra_loss_db, 15.0);
  EXPECT_DOUBLE_EQ(plan.fade.fer, 0.7);
  EXPECT_TRUE(plan.interferer.enabled);
  EXPECT_EQ(plan.interferer.period, 120_ms);
  EXPECT_EQ(plan.interferer.burst, 4_ms);
  EXPECT_TRUE(plan.crashes.enabled);
  EXPECT_DOUBLE_EQ(plan.crashes.rate_hz, 0.1);
  EXPECT_EQ(plan.crashes.min_down, 150_ms);
  EXPECT_EQ(plan.crashes.max_down, 900_ms);
  EXPECT_TRUE(plan.brownout.enabled);
  EXPECT_DOUBLE_EQ(plan.brownout.capacity_mah, 0.05);
  ASSERT_EQ(plan.episodes.size(), 1u);
  EXPECT_EQ(plan.episodes[0].node, 2u);
  EXPECT_EQ(plan.episodes[0].start, sim::TimePoint::zero() + 3_s);
  EXPECT_EQ(plan.episodes[0].duration, 1500_ms);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].node, 1u);
  EXPECT_EQ(plan.events[0].down, 700_ms);
  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::kSkewStep);
  EXPECT_DOUBLE_EQ(plan.events[1].skew_delta, -0.001);
}

TEST(ConfigIo, FaultPlanRoundTripsAndDisabledStaysSilent) {
  // A plan-free config serializes without any [fault sections at all.
  BanConfig plain;
  EXPECT_EQ(serialize_config(plain).find("[fault"), std::string::npos);

  BanConfig cfg;
  cfg.fault_plan.enabled = true;
  cfg.fault_plan.fade.enabled = true;
  cfg.fault_plan.fade.fer = 0.8;
  fault::ShadowEpisode ep;
  ep.node = 1;
  ep.start = sim::TimePoint::zero() + 2_s;
  cfg.fault_plan.episodes.push_back(ep);
  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kRadioLockup;
  ev.node = 2;
  ev.at = sim::TimePoint::zero() + 4_s;
  cfg.fault_plan.events.push_back(ev);

  const BanConfig round = parse_config(serialize_config(cfg));
  EXPECT_TRUE(round.fault_plan.enabled);
  EXPECT_TRUE(round.fault_plan.fade.enabled);
  EXPECT_DOUBLE_EQ(round.fault_plan.fade.fer, 0.8);
  ASSERT_EQ(round.fault_plan.episodes.size(), 1u);
  EXPECT_EQ(round.fault_plan.episodes[0].node, 1u);
  ASSERT_EQ(round.fault_plan.events.size(), 1u);
  EXPECT_EQ(round.fault_plan.events[0].kind, fault::FaultKind::kRadioLockup);
  EXPECT_EQ(round.fault_plan.events[0].at, sim::TimePoint::zero() + 4_s);
}

TEST(ConfigIo, FaultValidationErrors) {
  // Probabilities outside [0, 1].
  EXPECT_THROW(parse_config("[fault]\nenabled = true\n"
                            "[fault.fade]\nenabled = true\np_enter = 1.5\n"),
               ConfigError);
  // Interferer burst longer than its period.
  EXPECT_THROW(parse_config("[fault]\nenabled = true\n"
                            "[fault.interferer]\nenabled = true\n"
                            "period_ms = 10\nburst_ms = 20\n"),
               ConfigError);
  // Scripted events address nodes 1-based; 0 is reserved for "all" in
  // episodes only.
  EXPECT_THROW(parse_config("[fault]\nenabled = true\n"
                            "[fault.event.1]\nkind = crash\nnode = 0\n"),
               ConfigError);
  // Crash churn with an inverted down-time window.
  EXPECT_THROW(parse_config("[fault]\nenabled = true\n"
                            "[fault.crashes]\nenabled = true\n"
                            "min_down_ms = 500\nmax_down_ms = 100\n"),
               ConfigError);
  // Indexed sections are 1-based.
  EXPECT_THROW(parse_config("[fault.episode.0]\nnode = 1\n"), ConfigError);
  // Unknown fault keys are hard errors like everywhere else.
  EXPECT_THROW(parse_config("[fault.fade]\nspeed = 9\n"), ConfigError);
}

TEST(ConfigIo, StorageSectionsParse) {
  const BanConfig cfg = parse_config(R"(
    [network]
    nodes = 3
    [storage]
    enabled = true
    kind = battery
    check_ms = 50
    [battery]
    capacity_mah = 40
    nominal_volts = 3.1
    full_volts = 4.1
    empty_volts = 3.2
    dead_volts = 2.6
    rated_c = 2
    peukert_exponent = 1.2
    [harvest]
    enabled = true
    profile = square
    watts = 0.004
    floor_watts = 0.0005
    period_ms = 1200
    duty = 0.4
    phase_ms = 100
    [node.2]
    storage.kind = capacitor
    capacitor.capacitance_f = 0.05
    [node.3]
    storage.enabled = false
  )");
  const hw::StorageParams& s = cfg.storage;
  ASSERT_TRUE(s.enabled);
  EXPECT_EQ(s.kind, hw::StorageKind::kBattery);
  EXPECT_EQ(s.check, 50_ms);
  EXPECT_DOUBLE_EQ(s.battery.capacity_mah, 40.0);
  EXPECT_DOUBLE_EQ(s.battery.nominal_volts, 3.1);
  EXPECT_DOUBLE_EQ(s.battery.full_volts, 4.1);
  EXPECT_DOUBLE_EQ(s.battery.empty_volts, 3.2);
  EXPECT_DOUBLE_EQ(s.battery.dead_volts, 2.6);
  EXPECT_DOUBLE_EQ(s.battery.rated_c, 2.0);
  EXPECT_DOUBLE_EQ(s.battery.peukert_exponent, 1.2);
  ASSERT_TRUE(s.harvest.enabled);
  EXPECT_EQ(s.harvest.profile, hw::HarvestParams::Profile::kSquare);
  EXPECT_DOUBLE_EQ(s.harvest.watts, 0.004);
  EXPECT_DOUBLE_EQ(s.harvest.floor_watts, 0.0005);
  EXPECT_EQ(s.harvest.period, 1200_ms);
  EXPECT_DOUBLE_EQ(s.harvest.duty, 0.4);
  EXPECT_EQ(s.harvest.phase, 100_ms);
  // Per-node overrides inherit the globals they do not name.
  ASSERT_EQ(cfg.roster.size(), 3u);
  EXPECT_FALSE(cfg.roster[0].storage.has_value());  // pure global
  ASSERT_TRUE(cfg.roster[1].storage.has_value());
  EXPECT_EQ(cfg.roster[1].storage->kind, hw::StorageKind::kCapacitor);
  EXPECT_DOUBLE_EQ(cfg.roster[1].storage->capacitor.capacitance_farads, 0.05);
  EXPECT_EQ(cfg.roster[1].storage->check, 50_ms);  // inherited
  ASSERT_TRUE(cfg.roster[2].storage.has_value());
  EXPECT_FALSE(cfg.roster[2].storage->enabled);  // bench-supplied node
}

TEST(ConfigIo, StorageRoundTripsAndDisabledStaysSilent) {
  // Storage-free configs serialize without any storage sections at all,
  // byte-compatible with pre-storage builds.
  BanConfig plain;
  const std::string text = serialize_config(plain);
  EXPECT_EQ(text.find("[storage]"), std::string::npos);
  EXPECT_EQ(text.find("[battery]"), std::string::npos);
  EXPECT_EQ(text.find("[harvest]"), std::string::npos);

  BanConfig cfg;
  cfg.storage.enabled = true;
  cfg.storage.kind = hw::StorageKind::kCapacitor;
  cfg.storage.capacitor.capacitance_farads = 0.02;
  cfg.storage.capacitor.turnon_volts = 3.3;
  cfg.storage.check = 25_ms;
  cfg.storage.harvest.enabled = true;
  cfg.storage.harvest.profile = hw::HarvestParams::Profile::kSine;
  cfg.storage.harvest.watts = 0.002;
  cfg.storage.harvest.period = 900_ms;
  cfg.roster.resize(2);
  cfg.num_nodes = 2;
  cfg.roster[1].storage = cfg.storage;
  cfg.roster[1].storage->kind = hw::StorageKind::kBattery;
  cfg.roster[1].storage->battery.capacity_mah = 0.5;

  const BanConfig round = parse_config(serialize_config(cfg));
  ASSERT_TRUE(round.storage.enabled);
  EXPECT_EQ(round.storage.kind, hw::StorageKind::kCapacitor);
  EXPECT_DOUBLE_EQ(round.storage.capacitor.capacitance_farads, 0.02);
  EXPECT_DOUBLE_EQ(round.storage.capacitor.turnon_volts, 3.3);
  EXPECT_EQ(round.storage.check, 25_ms);
  ASSERT_TRUE(round.storage.harvest.enabled);
  EXPECT_EQ(round.storage.harvest.profile, hw::HarvestParams::Profile::kSine);
  EXPECT_DOUBLE_EQ(round.storage.harvest.watts, 0.002);
  EXPECT_EQ(round.storage.harvest.period, 900_ms);
  ASSERT_EQ(round.roster.size(), 2u);
  ASSERT_TRUE(round.roster[1].storage.has_value());
  EXPECT_EQ(round.roster[1].storage->kind, hw::StorageKind::kBattery);
  EXPECT_DOUBLE_EQ(round.roster[1].storage->battery.capacity_mah, 0.5);
}

TEST(ConfigIo, StorageValidationErrors) {
  // Enabled battery with nonsense capacity.
  EXPECT_THROW(parse_config("[storage]\nenabled = true\n"
                            "[battery]\ncapacity_mah = -5\n"),
               ConfigError);
  // Sampling interval must be positive.
  EXPECT_THROW(parse_config("[storage]\nenabled = true\ncheck_ms = 0\n"),
               ConfigError);
  // Capacitor hysteresis thresholds out of order.
  EXPECT_THROW(parse_config("[storage]\nenabled = true\nkind = capacitor\n"
                            "[capacitor]\nturnoff_volts = 4\n"
                            "turnon_volts = 3\n"),
               ConfigError);
  // Sine/square harvest needs a period.
  EXPECT_THROW(parse_config("[storage]\nenabled = true\n"
                            "[harvest]\nenabled = true\nprofile = sine\n"
                            "period_ms = 0\n"),
               ConfigError);
  // Per-node overrides are validated with the node named.
  EXPECT_THROW(parse_config("[network]\nnodes = 2\n"
                            "[node.2]\nstorage.enabled = true\n"
                            "battery.capacity_mah = -1\n"),
               ConfigError);
  // Unknown storage keys are hard errors like everywhere else.
  EXPECT_THROW(parse_config("[storage]\nvolts = 3\n"), ConfigError);
  EXPECT_THROW(parse_config("[harvest]\nprofile = triangle\n"), ConfigError);
}

}  // namespace
}  // namespace bansim::core
