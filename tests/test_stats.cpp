#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of the classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(Summary, WelfordMatchesNaiveOnRandomData) {
  Rng rng{314};
  Summary s;
  double sum = 0.0, sum2 = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    s.add(v);
    sum += v;
    sum2 += v * v;
  }
  const double naive_mean = sum / n;
  const double naive_var = (sum2 - n * naive_mean * naive_mean) / (n - 1);
  EXPECT_NEAR(s.mean(), naive_mean, 1e-9);
  EXPECT_NEAR(s.variance(), naive_var, 1e-6);
}

TEST(Summary, ResetClears) {
  Summary s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinsAndBounds) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.0);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi-exclusive)
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(StateResidency, AccumulatesPerState) {
  StateResidency r{3, 0, at(0)};
  r.transition(1, at(10));
  r.transition(2, at(30));
  r.transition(0, at(60));
  EXPECT_EQ(r.time_in(0, at(100)), Duration::milliseconds(10 + 40));
  EXPECT_EQ(r.time_in(1, at(100)), Duration::milliseconds(20));
  EXPECT_EQ(r.time_in(2, at(100)), Duration::milliseconds(30));
}

TEST(StateResidency, CountsEntries) {
  StateResidency r{2, 0, at(0)};
  r.transition(1, at(1));
  r.transition(0, at(2));
  r.transition(1, at(3));
  EXPECT_EQ(r.entries(0), 2u);
  EXPECT_EQ(r.entries(1), 2u);
}

TEST(StateResidency, InProgressStretchCountsUpToNow) {
  StateResidency r{2, 1, at(0)};
  EXPECT_EQ(r.time_in(1, at(25)), Duration::milliseconds(25));
  EXPECT_EQ(r.time_in(0, at(25)), Duration::zero());
}

TEST(StateResidency, TotalTimeIsConserved) {
  // Property: sum over states of time_in == elapsed, for any transition mix.
  Rng rng{7};
  StateResidency r{4, 0, at(0)};
  TimePoint t = at(0);
  for (int i = 0; i < 200; ++i) {
    t += Duration::microseconds(rng.uniform_int(1, 5000));
    r.transition(static_cast<int>(rng.uniform_int(0, 3)), t);
  }
  const TimePoint end = t + 7_ms;
  Duration total = Duration::zero();
  for (int s = 0; s < 4; ++s) total += r.time_in(s, end);
  EXPECT_EQ(total, end - at(0));
}

TEST(Counters, AddAndGet) {
  Counters c;
  c.add("tx");
  c.add("tx", 4);
  c.add("rx", 2);
  EXPECT_EQ(c.get("tx"), 5u);
  EXPECT_EQ(c.get("rx"), 2u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.items().size(), 2u);
}

}  // namespace
}  // namespace bansim::sim
