#include <gtest/gtest.h>

#include "sim/context.hpp"

#include "hw/mcu.hpp"
#include "hw/timer_unit.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::hw {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct McuFixture : ::testing::Test {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  sim::Tracer& tracer = context.tracer;
  McuParams params;
};

TEST_F(McuFixture, StartsActive) {
  Mcu mcu{context, "n", params, 0.0};
  EXPECT_EQ(mcu.mode(), McuMode::kActive);
  EXPECT_EQ(mcu.wakeups(), 0u);
}

TEST_F(McuFixture, CyclesToTimeAtNominalClock) {
  Mcu mcu{context, "n", params, 0.0};
  // 8000 cycles at 8 MHz = 1 ms.
  EXPECT_EQ(mcu.cycles_to_time(8000), 1_ms);
  EXPECT_EQ(mcu.cycles_to_time(0), Duration::zero());
}

TEST_F(McuFixture, CyclesToTimeStretchesWithSkew) {
  Mcu fast{context, "n", params, -1e-3};
  Mcu slow{context, "n", params, +1e-3};
  EXPECT_LT(fast.cycles_to_time(8'000'000), 1000_ms);
  EXPECT_GT(slow.cycles_to_time(8'000'000), 1000_ms);
  EXPECT_EQ(slow.cycles_to_time(8'000'000), Duration::from_milliseconds(1001.0));
}

TEST_F(McuFixture, LocalTrueConversionsInvert) {
  Mcu mcu{context, "n", params, 1.7e-3};
  for (std::int64_t ms : {1, 10, 100, 5000}) {
    const Duration d = Duration::milliseconds(ms);
    const Duration roundtrip = mcu.true_to_local(mcu.local_to_true(d));
    EXPECT_NEAR(static_cast<double>(roundtrip.ticks()),
                static_cast<double>(d.ticks()), 2.0);
  }
}

TEST_F(McuFixture, WakeupLatencyOnlyOnLpmExit) {
  Mcu mcu{context, "n", params, 0.0};
  EXPECT_EQ(mcu.enter(McuMode::kLpm1), Duration::zero());
  EXPECT_EQ(mcu.enter(McuMode::kActive), params.wakeup_latency);
  EXPECT_EQ(mcu.wakeups(), 1u);
  // Re-entering the current mode is free and not a wakeup.
  EXPECT_EQ(mcu.enter(McuMode::kActive), Duration::zero());
  EXPECT_EQ(mcu.wakeups(), 1u);
}

TEST_F(McuFixture, MeterTracksResidency) {
  Mcu mcu{context, "n", params, 0.0};
  simulator.schedule_in(10_ms, [&] { mcu.enter(McuMode::kLpm1); });
  simulator.schedule_in(30_ms, [&] { mcu.enter(McuMode::kActive); });
  simulator.schedule_in(40_ms, [] {});
  simulator.run();
  const TimePoint now = simulator.now();
  // Active 10 ms + 10 ms, LPM1 20 ms.
  EXPECT_NEAR(mcu.meter().energy_in(static_cast<int>(McuMode::kActive), now),
              2e-3 * 2.8 * 0.020, 1e-12);
  EXPECT_NEAR(mcu.meter().energy_in(static_cast<int>(McuMode::kLpm1), now),
              0.66e-3 * 2.8 * 0.020, 1e-12);
}

TEST_F(McuFixture, ModeNames) {
  EXPECT_STREQ(to_string(McuMode::kActive), "active");
  EXPECT_STREQ(to_string(McuMode::kLpm1), "lpm1");
  EXPECT_STREQ(to_string(McuMode::kLpm4), "lpm4");
}

TEST_F(McuFixture, TimerUnitFiresAfterLocalDelay) {
  Mcu mcu{context, "n", params, 0.0};
  TimerUnit unit{simulator, mcu};
  TimePoint fired;
  unit.set_alarm(5_ms, [&] { fired = simulator.now(); });
  EXPECT_TRUE(unit.armed());
  simulator.run();
  EXPECT_EQ(fired, TimePoint::zero() + 5_ms);
  EXPECT_EQ(unit.fired(), 1u);
  EXPECT_FALSE(unit.armed());
}

TEST_F(McuFixture, TimerUnitAppliesSkew) {
  Mcu mcu{context, "n", params, 2e-3};  // +0.2 % slow clock
  TimerUnit unit{simulator, mcu};
  TimePoint fired;
  unit.set_alarm(100_ms, [&] { fired = simulator.now(); });
  simulator.run();
  // Programmed 100 ms local -> 100.2 ms true.
  EXPECT_EQ(fired, TimePoint::zero() + Duration::from_milliseconds(100.2));
}

TEST_F(McuFixture, TimerUnitRearmReplacesPending) {
  Mcu mcu{context, "n", params, 0.0};
  TimerUnit unit{simulator, mcu};
  int fired = 0;
  unit.set_alarm(5_ms, [&] { fired = 1; });
  unit.set_alarm(2_ms, [&] { fired = 2; });
  simulator.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(unit.fired(), 1u);
}

TEST_F(McuFixture, TimerUnitCancel) {
  Mcu mcu{context, "n", params, 0.0};
  TimerUnit unit{simulator, mcu};
  bool fired = false;
  unit.set_alarm(5_ms, [&] { fired = true; });
  unit.cancel();
  EXPECT_FALSE(unit.armed());
  simulator.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace bansim::hw
