#include "hw/radio_nrf2401.hpp"

#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <optional>
#include <vector>

#include "phy/channel.hpp"

namespace bansim::hw {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

net::Packet make_data(net::NodeId dest, net::NodeId src, std::size_t len) {
  net::Packet p;
  p.header.dest = dest;
  p.header.src = src;
  p.header.type = net::PacketType::kData;
  p.payload.assign(len, 0x5A);
  return p;
}

struct RadioFixture : ::testing::Test {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  sim::Tracer& tracer = context.tracer;
  phy::Channel channel{context};
  RadioParams params;
  phy::PhyConfig phy;
  RadioNrf2401 tx{context, channel, "tx", params, phy};
  RadioNrf2401 rx{context, channel, "rx", params, phy};

  std::vector<net::Packet> received;
  int send_done{0};

  void SetUp() override {
    tx.set_local_address(1);
    rx.set_local_address(2);
    RadioNrf2401::Callbacks cb;
    cb.on_receive = [this](const net::Packet& p) { received.push_back(p); };
    rx.set_callbacks(cb);
    RadioNrf2401::Callbacks txcb;
    txcb.on_send_done = [this] { ++send_done; };
    tx.set_callbacks(txcb);
  }

  /// Brings both radios to standby (past the 3 ms crystal start-up).
  void power_both() {
    tx.power_up();
    rx.power_up();
    simulator.run_until(simulator.now() + 4_ms);
  }
};

TEST_F(RadioFixture, StartsPoweredDown) {
  EXPECT_EQ(tx.state(), RadioState::kPowerDown);
  EXPECT_FALSE(tx.busy());
}

TEST_F(RadioFixture, PowerUpTakesCrystalStartup) {
  tx.power_up();
  EXPECT_EQ(tx.state(), RadioState::kPoweringUp);
  simulator.run_until(TimePoint::zero() + 2_ms);
  EXPECT_EQ(tx.state(), RadioState::kPoweringUp);
  simulator.run_until(TimePoint::zero() + 3_ms);
  EXPECT_EQ(tx.state(), RadioState::kStandby);
}

TEST_F(RadioFixture, SendSequencesThroughStates) {
  power_both();
  const net::Packet p = make_data(2, 1, 18);
  const auto frame_bytes = p.wire_size();  // 26
  const TimePoint t0 = simulator.now();
  tx.send(p);
  EXPECT_EQ(tx.state(), RadioState::kTxClockIn);

  // Clock-in: 26 bytes at 1 Mbps SPI = 208 us.
  simulator.run_until(t0 + 207_us);
  EXPECT_EQ(tx.state(), RadioState::kTxClockIn);
  simulator.run_until(t0 + 209_us);
  EXPECT_EQ(tx.state(), RadioState::kTxSettle);

  // Settle 202 us, then on air for air_time(26) = 256 us.
  simulator.run_until(t0 + 208_us + 203_us);
  EXPECT_EQ(tx.state(), RadioState::kTxAir);
  simulator.run_until(t0 + 208_us + 202_us + 257_us);
  EXPECT_EQ(tx.state(), RadioState::kStandby);
  EXPECT_EQ(send_done, 1);
  EXPECT_EQ(tx.stats().tx_frames, 1u);
  (void)frame_bytes;
}

TEST_F(RadioFixture, ListeningReceiverGetsPacket) {
  power_both();
  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);  // past RX settle
  EXPECT_EQ(rx.state(), RadioState::kRxListen);

  tx.send(make_data(2, 1, 18));
  simulator.run_until(simulator.now() + 5_ms);

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].header.src, 1);
  EXPECT_EQ(received[0].payload.size(), 18u);
  EXPECT_EQ(rx.stats().rx_delivered, 1u);
  EXPECT_EQ(rx.state(), RadioState::kRxListen);  // back to listening
}

TEST_F(RadioFixture, AddressFilterDropsOverheardFrames) {
  power_both();
  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);

  tx.send(make_data(7, 1, 18));  // addressed to node 7, not rx (2)
  simulator.run_until(simulator.now() + 5_ms);

  EXPECT_TRUE(received.empty());
  EXPECT_EQ(rx.stats().rx_addr_filtered, 1u);
  EXPECT_EQ(rx.stats().rx_delivered, 0u);
}

TEST_F(RadioFixture, BroadcastPassesAddressFilter) {
  power_both();
  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);
  tx.send(make_data(net::kBroadcastId, 1, 4));
  simulator.run_until(simulator.now() + 5_ms);
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(RadioFixture, CollisionDropsFrameInHardware) {
  RadioNrf2401 tx2{context, channel, "tx2", params, phy};
  tx2.set_local_address(3);
  power_both();
  tx2.power_up();
  simulator.run_until(simulator.now() + 4_ms);

  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);

  // Same wire size -> identical clock-in+settle -> simultaneous air.
  tx.send(make_data(2, 1, 18));
  tx2.send(make_data(2, 3, 18));
  simulator.run_until(simulator.now() + 5_ms);

  EXPECT_TRUE(received.empty());
  EXPECT_GE(rx.stats().rx_crc_dropped, 1u);
  EXPECT_GE(channel.collisions(), 1u);
}

TEST_F(RadioFixture, FrameStartedWhileNotListeningIsMissed) {
  power_both();
  // rx stays in standby.
  tx.send(make_data(2, 1, 18));
  simulator.run_until(simulator.now() + 5_ms);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(rx.stats().rx_missed, 1u);
}

TEST_F(RadioFixture, StopRxReturnsToStandby) {
  power_both();
  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);
  rx.stop_rx();
  EXPECT_EQ(rx.state(), RadioState::kStandby);
  // A pending settle completion must not resurrect the listen state.
  rx.start_rx();
  rx.stop_rx();
  simulator.run_until(simulator.now() + 1_ms);
  EXPECT_EQ(rx.state(), RadioState::kStandby);
}

TEST_F(RadioFixture, ClockoutChargesRxCurrentAndNotifiesDriver) {
  std::optional<std::size_t> clockout_bytes;
  RadioNrf2401::Callbacks cb;
  cb.on_receive = [this](const net::Packet& p) { received.push_back(p); };
  cb.on_clockout_start = [&](std::size_t n) { clockout_bytes = n; };
  rx.set_callbacks(cb);

  power_both();
  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);
  tx.send(make_data(2, 1, 18));
  simulator.run_until(simulator.now() + 5_ms);

  ASSERT_TRUE(clockout_bytes.has_value());
  EXPECT_EQ(*clockout_bytes, 26u);
  EXPECT_GT(rx.meter().time_in(static_cast<int>(RadioState::kRxClockOut),
                               simulator.now()),
            Duration::zero());
}

TEST_F(RadioFixture, EnergyAttributedPerState) {
  power_both();
  const TimePoint t0 = simulator.now();
  rx.start_rx();
  simulator.run_until(t0 + 10_ms);
  const auto& m = rx.meter();
  // Settle is charged at RX current for exactly the settle time.
  EXPECT_EQ(m.time_in(static_cast<int>(RadioState::kRxSettle), simulator.now()),
            params.settle_time);
  const double listen_s =
      m.time_in(static_cast<int>(RadioState::kRxListen), simulator.now())
          .to_seconds();
  EXPECT_NEAR(m.energy_in(static_cast<int>(RadioState::kRxListen),
                          simulator.now()),
              listen_s * params.rx_current_amps * params.supply_volts, 1e-12);
}

TEST_F(RadioFixture, SpiTimeMatchesRate) {
  EXPECT_EQ(tx.spi_time(26), Duration::microseconds(208));
  EXPECT_EQ(tx.spi_time(0), Duration::zero());
}

TEST_F(RadioFixture, PowerDownFromStandby) {
  power_both();
  tx.power_down();
  EXPECT_EQ(tx.state(), RadioState::kPowerDown);
}

TEST_F(RadioFixture, StateNames) {
  EXPECT_STREQ(to_string(RadioState::kTxAir), "tx_air");
  EXPECT_STREQ(to_string(RadioState::kRxListen), "rx_listen");
  EXPECT_STREQ(to_string(RadioState::kPowerDown), "power_down");
}

TEST_F(RadioFixture, BackToBackSendsBothDelivered) {
  power_both();
  rx.start_rx();
  simulator.run_until(simulator.now() + 1_ms);
  bool second_sent = false;
  RadioNrf2401::Callbacks txcb;
  txcb.on_send_done = [&] {
    if (!second_sent) {
      second_sent = true;
      tx.send(make_data(2, 1, 8));
    }
  };
  tx.set_callbacks(txcb);
  tx.send(make_data(2, 1, 18));
  simulator.run_until(simulator.now() + 10_ms);
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(tx.stats().tx_frames, 2u);
}

}  // namespace
}  // namespace bansim::hw
