// PowerTrace: step monotonicity, same-instant coalescing, sampling and
// integration.
#include <gtest/gtest.h>

#include <stdexcept>

#include "energy/power_trace.hpp"

namespace bansim::energy {
namespace {

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::zero() + sim::Duration::milliseconds(ms);
}

TEST(PowerTrace, RejectsTimeRegression) {
  PowerTrace trace;
  trace.step(at_ms(10), 1.0);
  EXPECT_THROW(trace.step(at_ms(9), 2.0), std::invalid_argument);
  // The trace is still usable after the rejected step.
  trace.step(at_ms(10), 2.0);
  trace.step(at_ms(11), 3.0);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(PowerTrace, SameInstantStepsCoalesceToTheLastValue) {
  PowerTrace trace;
  trace.step(at_ms(5), 1.0);
  trace.step(at_ms(5), 4.0);
  trace.step(at_ms(5), 2.5);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.watts_at(0), 2.5);
}

TEST(PowerTrace, SampleIsRightContinuousStepwise) {
  PowerTrace trace;
  trace.step(at_ms(10), 2.0);
  trace.step(at_ms(20), 5.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_ms(0)), 0.0);   // before the first step
  EXPECT_DOUBLE_EQ(trace.sample(at_ms(10)), 2.0);  // at the step instant
  EXPECT_DOUBLE_EQ(trace.sample(at_ms(15)), 2.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_ms(20)), 5.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_ms(99)), 5.0);  // last value holds
}

TEST(PowerTrace, SampleTimesAreMonotone) {
  PowerTrace trace;
  trace.step(at_ms(1), 0.5);
  trace.step(at_ms(2), 1.5);
  trace.step(at_ms(2), 2.5);  // coalesces
  trace.step(at_ms(7), 0.25);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace.time_at(i - 1), trace.time_at(i));
  }
}

TEST(PowerTrace, EnergyIntegratesTheStepFunction) {
  PowerTrace trace;
  trace.step(at_ms(0), 2.0);    // 2 W for 10 ms  -> 20 mJ
  trace.step(at_ms(10), 10.0);  // 10 W for 5 ms  -> 50 mJ
  trace.step(at_ms(15), 0.0);
  EXPECT_NEAR(trace.energy(at_ms(0), at_ms(15)), 0.070, 1e-12);
  EXPECT_NEAR(trace.energy(at_ms(5), at_ms(12)), 0.030, 1e-12);
  EXPECT_DOUBLE_EQ(trace.energy(at_ms(15), at_ms(99)), 0.0);
}

TEST(PowerTrace, PeakAndCsv) {
  PowerTrace trace;
  trace.step(at_ms(0), 0.001);
  trace.step(at_ms(3), 0.042);
  trace.step(at_ms(6), 0.002);
  EXPECT_DOUBLE_EQ(trace.peak(), 0.042);
  const std::string csv = trace.render_csv();
  EXPECT_NE(csv.find("time_ms"), std::string::npos);
  EXPECT_NE(csv.find("power_mw"), std::string::npos);
  EXPECT_NE(csv.find("42"), std::string::npos);  // 0.042 W == 42 mW
}

}  // namespace
}  // namespace bansim::energy
