#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bansim::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r{0};
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(r.next_u64());
  EXPECT_EQ(values.size(), 32u);  // no stuck state
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng a = Rng::stream(7, "ecg/node1");
  Rng b = Rng::stream(7, "ecg/node2");
  Rng a2 = Rng::stream(7, "ecg/node1");
  EXPECT_NE(a.next_u64(), b.next_u64());
  // Re-derived stream reproduces the original.
  Rng a3 = Rng::stream(7, "ecg/node1");
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{99};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng r{5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r{5};
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformRealBounds) {
  Rng r{11};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, NormalMoments) {
  Rng r{2024};
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceFrequency) {
  Rng r{77};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of "a" is 0xAF63DC4C8601EC8C.
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanIsCentered) {
  Rng r{GetParam()};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, BitsAreBalanced) {
  Rng r{GetParam()};
  int ones = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    ones += __builtin_popcountll(r.next_u64());
  }
  EXPECT_NEAR(static_cast<double>(ones) / (64.0 * n), 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xDEADBEEFull,
                                           ~0ull));

}  // namespace
}  // namespace bansim::sim
