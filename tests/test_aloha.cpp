// Tests of the random-access baseline MAC: delivery at low load, ARQ
// recovery of collisions, congestion collapse at high load, and the
// energy contrast against TDMA.
#include <gtest/gtest.h>

#include "core/aloha_network.hpp"
#include "core/bansim.hpp"

namespace bansim::mac {
namespace {

using namespace bansim::sim::literals;
using core::AlohaNetwork;
using core::AlohaNetworkConfig;
using sim::Duration;
using sim::TimePoint;

AlohaNetworkConfig low_load(std::size_t nodes) {
  AlohaNetworkConfig cfg;
  cfg.num_nodes = nodes;
  cfg.payload_interval = 200_ms;  // sparse traffic
  cfg.seed = 9;
  return cfg;
}

TEST(Aloha, SingleNodeDeliversEverything) {
  AlohaNetwork net{low_load(1)};
  net.start();
  net.run_until(TimePoint::zero() + 10_s);
  const auto generated = net.payloads_generated(0);
  EXPECT_NEAR(static_cast<double>(generated), 50.0, 3.0);
  EXPECT_EQ(net.base_station().data_received(),
            net.node_mac(0).stats().data_sent);
  EXPECT_EQ(net.node_mac(0).stats().retry_drops, 0u);
  EXPECT_EQ(net.node_mac(0).stats().acks_received,
            net.node_mac(0).stats().data_sent);
}

TEST(Aloha, SparseMultiNodeTrafficMostlySurvives) {
  AlohaNetwork net{low_load(5)};
  net.start();
  net.run_until(TimePoint::zero() + 10_s);
  std::uint64_t generated = 0;
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    generated += net.payloads_generated(i);
    dropped += net.node_mac(i).stats().retry_drops +
               net.node_mac(i).stats().payloads_dropped;
  }
  // Unique payloads delivered = generated - dropped - still queued.
  EXPECT_GT(generated, 200u);
  EXPECT_LT(static_cast<double>(dropped), 0.05 * static_cast<double>(generated));
  // ARQ recovered any collision: retransmissions may be nonzero.
  EXPECT_GT(net.base_station().data_received(), generated * 9 / 10);
}

TEST(Aloha, HighLoadCollapsesDelivery) {
  // 5 nodes each offering a payload every 4 ms over a ~0.5 ms air time
  // channel with ACK turnarounds: far beyond ALOHA's capacity.
  AlohaNetworkConfig cfg;
  cfg.num_nodes = 5;
  cfg.payload_interval = Duration::milliseconds(4);
  cfg.seed = 4;
  AlohaNetwork net{cfg};
  net.start();
  net.run_until(TimePoint::zero() + 5_s);

  std::uint64_t generated = 0;
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    generated += net.payloads_generated(i);
    lost += net.node_mac(i).stats().retry_drops +
            net.node_mac(i).stats().payloads_dropped;
  }
  EXPECT_GT(net.channel().collisions(), 100u);
  // A substantial fraction of offered load never makes it.
  EXPECT_GT(static_cast<double>(lost), 0.2 * static_cast<double>(generated));
}

TEST(Aloha, CollisionsTriggerRetransmissions) {
  AlohaNetworkConfig cfg;
  cfg.num_nodes = 4;
  cfg.payload_interval = Duration::milliseconds(12);
  cfg.seed = 21;
  AlohaNetwork net{cfg};
  net.start();
  net.run_until(TimePoint::zero() + 5_s);
  std::uint64_t retransmissions = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    retransmissions += net.node_mac(i).stats().retransmissions;
  }
  EXPECT_GT(net.channel().collisions(), 0u);
  EXPECT_GT(retransmissions, 0u);
}

TEST(Aloha, FireAndForgetModeNeverListens) {
  AlohaNetworkConfig cfg = low_load(2);
  cfg.aloha.ack_data = false;
  AlohaNetwork net{cfg};
  net.start();
  net.run_until(TimePoint::zero() + 5_s);
  const auto& meter = net.node_board(0).radio().meter();
  EXPECT_EQ(meter.time_in(static_cast<int>(hw::RadioState::kRxListen),
                          net.simulator().now()),
            Duration::zero());
  EXPECT_GT(net.base_station().data_received(), 40u);
  EXPECT_EQ(net.base_station().acks_sent(), 0u);
}

TEST(Aloha, NodeRadioEnergyBelowTdmaAtSparseLoad) {
  // The contrast the comparison bench quantifies: without beacon tracking,
  // the random-access node's radio energy at sparse load is far below the
  // TDMA node's (which pays the listen window every cycle regardless).
  AlohaNetworkConfig cfg = low_load(5);
  AlohaNetwork aloha{cfg};
  aloha.start();
  aloha.run_until(TimePoint::zero() + 10_s);
  const double aloha_radio =
      aloha.node_board(0).radio().meter().total_energy(
          aloha.simulator().now());

  core::PaperSetup setup;
  core::BanConfig tdma_cfg =
      core::rpeak_static_config(setup, Duration::milliseconds(60));
  core::BanNetwork tdma{tdma_cfg};
  tdma.start();
  ASSERT_TRUE(tdma.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  const sim::TimePoint t0 = tdma.simulator().now();
  const double before =
      tdma.node(0).board().radio().meter().total_energy(t0);
  tdma.run_until(t0 + 10_s);
  const double tdma_radio =
      tdma.node(0).board().radio().meter().total_energy(
          tdma.simulator().now()) -
      before;

  EXPECT_LT(aloha_radio, 0.5 * tdma_radio);
}

}  // namespace
}  // namespace bansim::mac
