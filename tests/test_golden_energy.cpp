// Golden-value pinning for the SimContext/NodeStack/NetworkBuilder
// refactor: every number here was captured from the pre-refactor tree
// (seed composition code) and must be reproduced EXACTLY — `==` on
// doubles, no tolerance.  The RNG stream layout (named streams, draw
// order, per-node skew/stagger draws) is part of the public determinism
// contract; any change that shifts a single draw shows up here first.
//
// Windows are short (5 s) so the whole suite stays cheap; the values
// cover both TDMA variants, both apps, both fidelities, per-node
// snapshots, the ALOHA baseline and a two-cell coexistence run.
#include <gtest/gtest.h>

#include "core/aloha_network.hpp"
#include "core/bansim.hpp"
#include "core/multi_ban.hpp"
#include "core/paper_experiments.hpp"

namespace bansim::core {
namespace {

using sim::Duration;
using sim::TimePoint;

ScenarioResult run_golden(BanConfig config, Fidelity fidelity) {
  config.fidelity = fidelity;
  MeasurementProtocol protocol;
  protocol.measure = Duration::seconds(5);
  return run_scenario(config, protocol);
}

struct GoldenRow {
  double radio_mj;
  double mcu_mj;
  double asic_mj;
  std::uint64_t packets;
};

void expect_row(const ScenarioResult& r, const GoldenRow& want) {
  EXPECT_TRUE(r.joined);
  EXPECT_EQ(r.radio_mj, want.radio_mj);
  EXPECT_EQ(r.mcu_mj, want.mcu_mj);
  EXPECT_EQ(r.asic_mj, want.asic_mj);
  EXPECT_EQ(r.data_packets, want.packets);
}

TEST(GoldenEnergy, EcgStatic30) {
  PaperSetup setup;
  const BanConfig cfg =
      streaming_static_config(setup, Duration::milliseconds(30));
  expect_row(run_golden(cfg, Fidelity::kReference),
             {35.626988186675206, 14.013109779087998, 52.500000000000007,
              167});
  expect_row(run_golden(cfg, Fidelity::kModel),
             {38.057575936889599, 13.625614309999998, 52.500000000000007,
              166});
}

TEST(GoldenEnergy, EcgDynamic5Slots) {
  PaperSetup setup;
  const BanConfig cfg = streaming_dynamic_config(setup, 5);
  expect_row(run_golden(cfg, Fidelity::kReference),
             {18.791883681983997, 11.627069907824001, 52.500000000000007,
              84});
  expect_row(run_golden(cfg, Fidelity::kModel),
             {19.883508915199993, 11.433161250000003, 52.500000000000007,
              84});
}

TEST(GoldenEnergy, RpeakStatic120) {
  PaperSetup setup;
  const BanConfig cfg = rpeak_static_config(setup, Duration::milliseconds(120));
  expect_row(run_golden(cfg, Fidelity::kReference),
             {9.4124740137567944, 14.061014718519999, 52.500000000000007, 12});
  expect_row(run_golden(cfg, Fidelity::kModel),
             {7.9129459098816, 13.73884498, 52.500000000000007, 12});
}

TEST(GoldenEnergy, RpeakDynamic3Slots) {
  PaperSetup setup;
  const BanConfig cfg = rpeak_dynamic_config(setup, 3);
  expect_row(run_golden(cfg, Fidelity::kReference),
             {24.380208638419198, 14.154354884655994, 52.5, 13});
  expect_row(run_golden(cfg, Fidelity::kModel),
             {25.760258508902396, 13.840800890000001, 52.5, 14});
}

TEST(GoldenEnergy, PerNodeSnapshotOfFiveNodeEcgNetwork) {
  PaperSetup setup;
  BanNetwork net{streaming_static_config(setup, Duration::milliseconds(30))};
  net.start();
  ASSERT_TRUE(net.run_until_joined(Duration::seconds(1),
                                   TimePoint::zero() + Duration::seconds(30)));
  net.run_until(net.simulator().now() + Duration::seconds(5));

  const struct {
    const char* node;
    double total;
  } want[] = {
      {"node1", 0.1259631816041816},   {"node2", 0.12864915742064681},
      {"node3", 0.12784695463841839},  {"node4", 0.12763253980885519},
      {"node5", 0.12526439082913279},  {"bs", 0.49432756199387679},
  };
  const auto snapshot = net.energy_snapshot();
  ASSERT_EQ(snapshot.size(), 6u);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].node, want[i].node);
    EXPECT_EQ(snapshot[i].total_joules(), want[i].total) << snapshot[i].node;
  }
  // One fully pinned component split.
  EXPECT_EQ(snapshot[0].component_joules("mcu"), 0.017184053881959999);
  EXPECT_EQ(snapshot[0].component_joules("radio"), 0.044729127722221595);
  EXPECT_EQ(snapshot[0].component_joules("asic"), 0.06405000000000001);
}

TEST(GoldenEnergy, AlohaBaselineBoardTotals) {
  AlohaNetworkConfig cfg;
  cfg.num_nodes = 5;
  cfg.payload_interval = Duration::milliseconds(200);
  cfg.seed = 9;
  AlohaNetwork net{cfg};
  net.start();
  net.run_until(TimePoint::zero() + Duration::seconds(5));

  const struct {
    double total;
    std::uint64_t sent;
  } want[] = {
      {0.06503000213656801, 24},  {0.066461656317330406, 39},
      {0.06465474591890441, 24},  {0.066853653074381597, 42},
      {0.064669489972385197, 24},
  };
  ASSERT_EQ(net.num_nodes(), 5u);
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    double total = 0;
    for (const auto& c : net.node_board(i).breakdown(net.simulator().now())) {
      total += c.joules;
    }
    EXPECT_EQ(total, want[i].total) << "node" << i;
    EXPECT_EQ(net.node_mac(i).stats().data_sent, want[i].sent) << "node" << i;
  }
}

TEST(GoldenEnergy, MultiBanCoexistencePerNodeTotals) {
  auto cell = [](std::uint8_t pan, net::NodeId offset, int cycle_ms) {
    BanConfig cfg;
    cfg.num_nodes = 3;
    cfg.tdma =
        mac::TdmaConfig::static_plan(Duration::milliseconds(cycle_ms), 5);
    cfg.tdma.pan_id = pan;
    cfg.address_offset = offset;
    cfg.app = AppKind::kEcgStreaming;
    cfg.streaming.sample_rate_hz = 6000.0 / cycle_ms;
    cfg.seed = 77 + pan;
    return cfg;
  };
  MultiBan net{{cell(1, 0, 30), cell(2, 100, 60)}};
  net.start();
  ASSERT_TRUE(net.run_until_joined(Duration::milliseconds(500),
                                   TimePoint::zero() + Duration::seconds(30)));
  net.run_until(net.simulator().now() + Duration::seconds(5));

  const double want[2][3] = {
      {0.17318972373117802, 0.17163197963310001, 0.17270097465688483},
      {0.22684708000117521, 0.22731155495588118, 0.22562166905933756},
  };
  ASSERT_EQ(net.num_cells(), 2u);
  for (std::size_t c = 0; c < net.num_cells(); ++c) {
    ASSERT_EQ(net.num_nodes(c), 3u);
    for (std::size_t i = 0; i < net.num_nodes(c); ++i) {
      double total = 0;
      for (const auto& comp :
           net.node(c, i).board().breakdown(net.simulator().now())) {
        total += comp.joules;
      }
      EXPECT_EQ(total, want[c][i]) << "cell" << c << " node" << i;
    }
  }
}

// The roster is the refactor's new surface: an all-default roster of the
// same length must compose a bit-identical network to the homogeneous
// config (same streams drawn in the same order).
TEST(GoldenEnergy, AllDefaultRosterIsBitIdenticalToHomogeneous) {
  PaperSetup setup;
  BanConfig cfg = streaming_static_config(setup, Duration::milliseconds(30));
  cfg.roster.resize(cfg.num_nodes);  // explicit, all-default roster
  expect_row(run_golden(cfg, Fidelity::kReference),
             {35.626988186675206, 14.013109779087998, 52.500000000000007,
              167});
}

// --- Reset-vs-rebuild equivalence ------------------------------------------
//
// The run-reset protocol's contract: a cell that already ran a same-shape
// decoy config and was reset must reproduce a fresh build EXACTLY — `==`
// on every per-component, per-state joule — for all four MAC protocols.

std::vector<double> flatten_energies(const BanNetwork& network) {
  std::vector<double> flat;
  for (const auto& n : network.energy_snapshot()) {
    for (const auto& c : n.components) {
      flat.push_back(c.joules);
      for (const auto& [state, joules] : c.per_state) flat.push_back(joules);
    }
  }
  return flat;
}

std::vector<double> run_fresh(const BanConfig& config) {
  BanNetwork network{config};
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(2));
  return flatten_energies(network);
}

std::vector<double> run_after_reset(const BanConfig& config) {
  BanConfig decoy = config;
  decoy.seed = config.seed ^ 0x517cc1b727220a95ull;
  decoy.ecg.heart_rate_bpm = config.ecg.heart_rate_bpm + 13.0;
  BanNetwork network{decoy};
  network.start();
  network.run_until(TimePoint::zero() + Duration::milliseconds(700));

  network.reset(config);
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(2));
  return flatten_energies(network);
}

TEST(GoldenEnergy, ResetEqualsRebuildStaticTdma) {
  BanConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 31;
  const auto fresh = run_fresh(cfg);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(run_after_reset(cfg), fresh);
}

TEST(GoldenEnergy, ResetEqualsRebuildDynamicTdma) {
  BanConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 32;
  cfg.tdma.variant = mac::TdmaVariant::kDynamic;
  cfg.tdma.max_slots = 0;
  EXPECT_EQ(run_after_reset(cfg), run_fresh(cfg));
}

TEST(GoldenEnergy, ResetEqualsRebuildCsmaCa) {
  BanConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 33;
  cfg.mac = MacKind::kCsmaCa;
  EXPECT_EQ(run_after_reset(cfg), run_fresh(cfg));
}

TEST(GoldenEnergy, ResetEqualsRebuildAloha) {
  BanConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 34;
  cfg.mac = MacKind::kAloha;
  EXPECT_EQ(run_after_reset(cfg), run_fresh(cfg));
}

TEST(GoldenEnergy, ResetEqualsRebuildWithStorageAndFaults) {
  BanConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 35;
  cfg.use_link_model = true;
  cfg.storage.enabled = true;
  cfg.storage.battery.capacity_mah = 0.03;
  cfg.fault_plan.enabled = true;
  cfg.fault_plan.fade.enabled = true;
  cfg.fault_plan.fade.fer = 0.1;
  EXPECT_EQ(run_after_reset(cfg), run_fresh(cfg));
}

}  // namespace
}  // namespace bansim::core
