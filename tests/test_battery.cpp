#include "hw/battery.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bansim::hw {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

BatteryParams small_cell() {
  BatteryParams p;
  p.capacity_mah = 100.0;
  p.nominal_volts = 3.0;
  p.peukert_exponent = 1.0;  // ideal cell unless a test opts in
  return p;
}

// Defaults: full 4.2 V, empty (cutoff) 3.0 V, dead 2.5 V, so the unusable
// tail below the cutoff is (3.0 - 2.5) / (4.2 - 2.5) = 5/17 of capacity.
constexpr double kCutoffSoc = 5.0 / 17.0;
constexpr double kUsableSoc = 12.0 / 17.0;

TEST(Battery, CapacityArithmetic) {
  Battery b{small_cell()};
  // 100 mAh at 3 V = 0.1 * 3600 * 3 = 1080 J.
  EXPECT_NEAR(b.capacity_joules(), 1080.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_NEAR(b.cutoff_soc(), kCutoffSoc, 1e-12);
  EXPECT_NEAR(b.usable_joules(), 1080.0 * kUsableSoc, 1e-9);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrawReportsRemovedJoules) {
  Battery b{small_cell()};
  EXPECT_DOUBLE_EQ(b.draw(100.0), 100.0);
  EXPECT_NEAR(b.remaining_joules(), 980.0, 1e-9);
  // Over-draw clamps at the chemistry floor and reports the clamp.
  EXPECT_DOUBLE_EQ(b.draw(2000.0), 980.0);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 0.0);
  EXPECT_DOUBLE_EQ(b.draw(-5.0), 0.0);  // negative draws are ignored
}

TEST(Battery, DepletesAtTheVoltageCutoffNotAtZeroJoules) {
  Battery b{small_cell()};
  b.draw(500.0);  // remaining 580 J, still above the 5/17 tail
  EXPECT_FALSE(b.depleted());
  b.draw(300.0);  // remaining 280 J < cutoff ~317.6 J
  EXPECT_TRUE(b.depleted());
  // Charge remains in the unusable tail: depleted is a voltage statement,
  // not an empty-store statement.
  EXPECT_GT(b.remaining_joules(), 0.0);
  EXPECT_DOUBLE_EQ(b.usable_joules(), 0.0);
}

TEST(Battery, DepletesExactlyAtTheCutoffBoundary) {
  Battery b{small_cell()};
  b.draw(b.usable_joules());  // lands exactly on the cutoff
  EXPECT_TRUE(b.depleted());
  EXPECT_NEAR(b.open_circuit_volts(), b.params().empty_volts, 1e-9);
}

TEST(Battery, ChargeClampsAtFullAndReportsStored) {
  Battery b{small_cell()};
  b.draw(100.0);
  EXPECT_DOUBLE_EQ(b.charge(500.0), 100.0);  // only the deficit fits
  EXPECT_DOUBLE_EQ(b.remaining_joules(), b.capacity_joules());
  EXPECT_DOUBLE_EQ(b.charge(1.0), 0.0);  // already full
}

TEST(Battery, VoltageSagsLinearlyFromFullToDead) {
  Battery b{small_cell()};
  EXPECT_NEAR(b.open_circuit_volts(), 4.2, 1e-12);
  b.draw(b.capacity_joules() / 2);
  EXPECT_NEAR(b.open_circuit_volts(), 2.5 + 1.7 * 0.5, 1e-12);
  b.draw(b.capacity_joules());
  EXPECT_NEAR(b.open_circuit_volts(), 2.5, 1e-12);
}

TEST(Battery, HoursAtIdealCell) {
  Battery b{small_cell()};
  // Usable 1080 * 12/17 J at 10 mW = 360/17 h (~21.2 h): the unusable
  // tail below the 3.0 V cutoff never counts toward lifetime.
  EXPECT_NEAR(b.hours_at(0.010), 360.0 / 17.0, 1e-9);
  EXPECT_TRUE(std::isinf(b.hours_at(0.0)));
  EXPECT_TRUE(std::isinf(b.hours_at(-0.001)));
}

TEST(Battery, PeukertDeratesOnlyAboveTheRatedRate) {
  BatteryParams p = small_cell();
  p.peukert_exponent = 1.1;
  Battery b{p};
  const double one_c_watts = b.capacity_joules() / 3600.0;
  const double at_rated = b.hours_at(one_c_watts);
  // At the rated 1C the derate is 1: identical to the ideal cell.
  EXPECT_NEAR(at_rated, kUsableSoc, 1e-9);
  // Above rated the usable charge shrinks: strictly worse than linear.
  EXPECT_LT(b.hours_at(2 * one_c_watts), at_rated / 2);
  // Below rated there is NO stretching — the old formula let the
  // effective capacity exceed the remaining charge without bound here.
  EXPECT_NEAR(b.hours_at(0.5 * one_c_watts), 2 * at_rated, 1e-9);
  EXPECT_NEAR(b.hours_at(0.01 * one_c_watts), 100 * at_rated, 1e-6);
}

TEST(Battery, EffectiveChargeNeverExceedsRemaining) {
  BatteryParams p = small_cell();
  p.peukert_exponent = 1.2;
  Battery b{p};
  for (const double watts : {1e-6, 1e-4, 1e-2, 0.3, 1.0, 10.0}) {
    const double delivered = b.hours_at(watts) * watts * 3600.0;
    EXPECT_LE(delivered, b.remaining_joules() * (1 + 1e-12)) << watts;
  }
}

TEST(Battery, RatedRateShiftsTheDeratingKnee) {
  BatteryParams p = small_cell();
  p.peukert_exponent = 1.1;
  p.rated_c = 2.0;  // cell rated at a 2C discharge
  Battery b{p};
  const double one_c_watts = b.capacity_joules() / 3600.0;
  // 2C is now the rated point: no derating there or below.
  EXPECT_NEAR(b.hours_at(2 * one_c_watts), kUsableSoc / 2, 1e-9);
  EXPECT_NEAR(b.hours_at(one_c_watts), kUsableSoc, 1e-9);
  EXPECT_LT(b.hours_at(4 * one_c_watts), kUsableSoc / 4);
}

TEST(Harvester, ConstantProfileIntegrates) {
  Battery b{small_cell()};
  b.draw(500.0);
  Harvester h{[](TimePoint) { return 0.005; }, b};  // 5 mW thermoelectric
  const double stored =
      h.accumulate(TimePoint::zero(), TimePoint::zero() + 1000_s);
  EXPECT_NEAR(stored, 5.0, 1e-9);
  EXPECT_NEAR(b.remaining_joules(), 585.0, 1e-9);
  EXPECT_NEAR(h.total_income(), 5.0, 1e-9);
  EXPECT_NEAR(h.total_overflow(), 0.0, 1e-12);
}

TEST(Harvester, TimeVaryingProfile) {
  Battery b{small_cell()};
  b.draw(1000.0);
  // Ramp 0 -> 10 mW over 100 s: integral = 0.5 J exactly (trapezoid).
  Harvester h{[](TimePoint t) { return 1e-4 * t.to_seconds(); }, b};
  const double stored =
      h.accumulate(TimePoint::zero(), TimePoint::zero() + 100_s, 100);
  EXPECT_NEAR(stored, 0.5, 1e-6);
}

TEST(Harvester, FullCellOverflowIsNotCountedAsStored) {
  Battery b{small_cell()};
  b.draw(2.0);  // only 2 J of headroom
  Harvester h{[](TimePoint) { return 0.005; }, b};
  const double stored =
      h.accumulate(TimePoint::zero(), TimePoint::zero() + 1000_s);
  // 5 J arrived, 2 J fit: the return value must be the stored portion,
  // not the integral — callers would double-count the discarded 3 J.
  EXPECT_NEAR(stored, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), b.capacity_joules());
  EXPECT_NEAR(h.total_income(), 5.0, 1e-9);
  EXPECT_NEAR(h.total_stored(), 2.0, 1e-9);
  EXPECT_NEAR(h.total_overflow(), 3.0, 1e-9);
}

TEST(Harvester, EmptyOrInvertedWindowIsZero) {
  Battery b{small_cell()};
  Harvester h{[](TimePoint) { return 1.0; }, b};
  EXPECT_DOUBLE_EQ(
      h.accumulate(TimePoint::zero() + 10_s, TimePoint::zero() + 10_s), 0.0);
  EXPECT_DOUBLE_EQ(
      h.accumulate(TimePoint::zero() + 10_s, TimePoint::zero() + 5_s), 0.0);
}

TEST(Lifetime, HarvestingExtendsLife) {
  Battery b{small_cell()};
  const double without = projected_lifetime_hours(b, 0.010);
  const double with = projected_lifetime_hours(b, 0.010, 0.004);
  EXPECT_GT(with, without);
  EXPECT_TRUE(std::isinf(projected_lifetime_hours(b, 0.010, 0.010)));
}

TEST(Lifetime, PaperScaleSanity) {
  // The streaming node's validated power (~600 mJ / 60 s + 10.5 mW ASIC)
  // on the default 160 mAh cell: around a day of monitoring.
  Battery b{BatteryParams{}};
  const double node_watts = 0.0100 + 0.0105;
  const double hours = projected_lifetime_hours(b, node_watts);
  EXPECT_GT(hours, 15.0);
  EXPECT_LT(hours, 40.0);
}

}  // namespace
}  // namespace bansim::hw
