#include "hw/battery.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bansim::hw {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

BatteryParams small_cell() {
  BatteryParams p;
  p.capacity_mah = 100.0;
  p.nominal_volts = 3.0;
  p.peukert_exponent = 1.0;  // ideal cell unless a test opts in
  return p;
}

TEST(Battery, CapacityArithmetic) {
  Battery b{small_cell()};
  // 100 mAh at 3 V = 0.1 * 3600 * 3 = 1080 J.
  EXPECT_NEAR(b.capacity_joules(), 1080.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrawAndDepletion) {
  Battery b{small_cell()};
  b.draw(1000.0);
  EXPECT_NEAR(b.remaining_joules(), 80.0, 1e-9);
  b.draw(200.0);  // over-draw clamps
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, ChargeClampsAtFull) {
  Battery b{small_cell()};
  b.draw(100.0);
  b.charge(500.0);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), b.capacity_joules());
}

TEST(Battery, VoltageSagsLinearly) {
  Battery b{small_cell()};
  EXPECT_NEAR(b.open_circuit_volts(), 4.2, 1e-12);
  b.draw(b.capacity_joules() / 2);
  EXPECT_NEAR(b.open_circuit_volts(), 3.6, 1e-12);
  b.draw(b.capacity_joules());
  EXPECT_NEAR(b.open_circuit_volts(), 3.0, 1e-12);
}

TEST(Battery, HoursAtIdealCell) {
  Battery b{small_cell()};
  // 1080 J at 10 mW = 108000 s = 30 h.
  EXPECT_NEAR(b.hours_at(0.010), 30.0, 1e-9);
  EXPECT_TRUE(std::isinf(b.hours_at(0.0)));
  EXPECT_TRUE(std::isinf(b.hours_at(-0.001)));
}

TEST(Battery, PeukertDeratesHighRates) {
  BatteryParams p = small_cell();
  p.peukert_exponent = 1.1;
  Battery b{p};
  // At exactly 1C the derating is 1^0.1 = 1: same as ideal.
  const double one_c_watts = b.capacity_joules() / 3600.0;
  EXPECT_NEAR(b.hours_at(one_c_watts), 1.0, 1e-9);
  // Above 1C the effective capacity shrinks, below 1C it stretches.
  EXPECT_LT(b.hours_at(2 * one_c_watts), 0.5);
  EXPECT_GT(b.hours_at(0.5 * one_c_watts), 2.0);
}

TEST(Harvester, ConstantProfileIntegrates) {
  Battery b{small_cell()};
  b.draw(500.0);
  Harvester h{[](TimePoint) { return 0.005; }, b};  // 5 mW thermoelectric
  const double harvested =
      h.accumulate(TimePoint::zero(), TimePoint::zero() + 1000_s);
  EXPECT_NEAR(harvested, 5.0, 1e-9);
  EXPECT_NEAR(b.remaining_joules(), 585.0, 1e-9);
}

TEST(Harvester, TimeVaryingProfile) {
  Battery b{small_cell()};
  b.draw(1000.0);
  // Ramp 0 -> 10 mW over 100 s: integral = 0.5 J exactly (trapezoid).
  Harvester h{[](TimePoint t) { return 1e-4 * t.to_seconds(); }, b};
  const double harvested =
      h.accumulate(TimePoint::zero(), TimePoint::zero() + 100_s, 100);
  EXPECT_NEAR(harvested, 0.5, 1e-6);
}

TEST(Harvester, EmptyOrInvertedWindowIsZero) {
  Battery b{small_cell()};
  Harvester h{[](TimePoint) { return 1.0; }, b};
  EXPECT_DOUBLE_EQ(
      h.accumulate(TimePoint::zero() + 10_s, TimePoint::zero() + 10_s), 0.0);
  EXPECT_DOUBLE_EQ(
      h.accumulate(TimePoint::zero() + 10_s, TimePoint::zero() + 5_s), 0.0);
}

TEST(Lifetime, HarvestingExtendsLife) {
  Battery b{small_cell()};
  const double without = projected_lifetime_hours(b, 0.010);
  const double with = projected_lifetime_hours(b, 0.010, 0.004);
  EXPECT_GT(with, without);
  EXPECT_TRUE(std::isinf(projected_lifetime_hours(b, 0.010, 0.010)));
}

TEST(Lifetime, PaperScaleSanity) {
  // The streaming node's validated power (~600 mJ / 60 s + 10.5 mW ASIC)
  // on the default 160 mAh cell: around a day of monitoring.
  Battery b{BatteryParams{}};
  const double node_watts = 0.0100 + 0.0105;
  const double hours = projected_lifetime_hours(b, node_watts);
  EXPECT_GT(hours, 15.0);
  EXPECT_LT(hours, 40.0);
}

}  // namespace
}  // namespace bansim::hw
