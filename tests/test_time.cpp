#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TEST(Duration, DefaultIsZero) {
  Duration d;
  EXPECT_TRUE(d.is_zero());
  EXPECT_EQ(d.ticks(), 0);
}

TEST(Duration, NamedConstructors) {
  EXPECT_EQ(Duration::nanoseconds(5).ticks(), 5);
  EXPECT_EQ(Duration::microseconds(5).ticks(), 5'000);
  EXPECT_EQ(Duration::milliseconds(5).ticks(), 5'000'000);
  EXPECT_EQ(Duration::seconds(5).ticks(), 5'000'000'000LL);
}

TEST(Duration, FractionalFactoriesRoundToNearest) {
  EXPECT_EQ(Duration::from_microseconds(1.5).ticks(), 1500);
  EXPECT_EQ(Duration::from_microseconds(0.0004).ticks(), 0);
  EXPECT_EQ(Duration::from_microseconds(0.0006).ticks(), 1);
  EXPECT_EQ(Duration::from_seconds(-1.0).ticks(), -1'000'000'000LL);
}

TEST(Duration, Literals) {
  EXPECT_EQ((5_us).ticks(), 5'000);
  EXPECT_EQ((3_ms).ticks(), 3'000'000);
  EXPECT_EQ((2_s).ticks(), 2'000'000'000LL);
  EXPECT_EQ((1.5_ms).ticks(), 1'500'000);
  EXPECT_EQ((250_ns).ticks(), 250);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((3_ms + 2_ms).ticks(), (5_ms).ticks());
  EXPECT_EQ((3_ms - 5_ms).ticks(), (-2 * 1_ms).ticks());
  EXPECT_EQ((2_ms * 4).ticks(), (8_ms).ticks());
  EXPECT_EQ((4 * 2_ms).ticks(), (8_ms).ticks());
  EXPECT_EQ((8_ms / 2).ticks(), (4_ms).ticks());
  Duration d = 1_ms;
  d += 1_ms;
  d -= 500_us;
  EXPECT_EQ(d, 1500_us);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_TRUE((-1 * 1_ms).is_negative());
  EXPECT_FALSE((1_ms).is_negative());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ((1500_us).to_milliseconds(), 1.5);
  EXPECT_DOUBLE_EQ((2_s).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((3_us).to_microseconds(), 3.0);
}

TEST(Duration, Scaled) {
  EXPECT_EQ((10_ms).scaled(1.5), 15_ms);
  EXPECT_EQ((10_ms).scaled(0.0), Duration::zero());
  // 1 + 2e-3 skew on a 10 ms interval = +20 us.
  EXPECT_EQ((10_ms).scaled(1.002), 10'020_us);
}

TEST(Duration, DividedByAndMod) {
  EXPECT_EQ((95_ms).divided_by(30_ms), 3);
  EXPECT_EQ((95_ms).mod(30_ms), 5_ms);
  EXPECT_EQ((90_ms).mod(30_ms), Duration::zero());
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ((1500_us).to_string(), "1.500 ms");
  EXPECT_EQ((2_s).to_string(), "2.000 s");
  EXPECT_EQ((750_ns).to_string(), "750 ns");
  EXPECT_EQ((12_us).to_string(), "12.000 us");
}

TEST(TimePoint, EpochAndArithmetic) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0), 5_ms);
  EXPECT_EQ(t1.since_epoch(), 5_ms);
  EXPECT_EQ((t1 - 2_ms).since_epoch(), 3_ms);
  EXPECT_LT(t0, t1);
}

TEST(TimePoint, FromTicks) {
  const TimePoint t = TimePoint::from_ticks(123);
  EXPECT_EQ(t.ticks(), 123);
}

TEST(TimePoint, CompoundAdd) {
  TimePoint t;
  t += 1_s;
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.to_milliseconds(), 1000.0);
}

TEST(TimePoint, MaxIsLargerThanAnyPractical) {
  EXPECT_GT(TimePoint::max(), TimePoint::zero() + Duration::seconds(1'000'000));
}

}  // namespace
}  // namespace bansim::sim
