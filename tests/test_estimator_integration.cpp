// Integration of the PowerTOSSIM-style analytical estimator with a live
// reference network: the probe events published by the OS/driver/MAC
// layers must reconstruct node energy within the expected analytical band.
#include <gtest/gtest.h>

#include "baseline/powertossim_estimator.hpp"
#include "core/bansim.hpp"

namespace bansim::baseline {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct IntegrationFixture : ::testing::Test {
  std::unique_ptr<PowerTossimEstimator> estimator;
  std::unique_ptr<core::BanNetwork> network;
  TimePoint t0;
  double t0_radio{0};  ///< meter snapshots taken *at* t0 (meters are
  double t0_mcu{0};    ///< cumulative and not queryable into the past)

  void run(core::BanConfig cfg, Duration window) {
    estimator = std::make_unique<PowerTossimEstimator>(
        cfg.board.mcu, cfg.board.radio, cfg.board.phy,
        os::CycleCostModel::platform_defaults(), EstimatorOptions{});
    network = std::make_unique<core::BanNetwork>(cfg, estimator.get());
    network->start();
    ASSERT_TRUE(network->run_until_joined(500_ms, TimePoint::zero() + 30_s));
    t0 = network->simulator().now();
    t0_radio = network->node(0).board().radio().meter().total_energy(t0);
    t0_mcu = network->node(0).board().mcu().meter().total_energy(t0);
    estimator->begin_measurement(t0);
    network->run_until(t0 + window);
  }
};

TEST_F(IntegrationFixture, RadioEstimateTracksReferenceWithin10Percent) {
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(60));
  cfg.num_nodes = 3;
  run(cfg, 20_s);

  const auto estimates = estimator->finalize(network->simulator().now());
  const auto it = estimates.find("node1");
  ASSERT_NE(it, estimates.end());

  // Reference energy over the same window, via meter deltas.
  const double now_radio =
      network->node(0).board().radio().meter().total_energy(
          network->simulator().now());
  const double reference = now_radio - t0_radio;

  // The analytical model misses settle/clock-in transients: it must land
  // a few percent *under* the reference, never above by much.
  EXPECT_GT(it->second.radio_joules, 0.80 * reference);
  EXPECT_LT(it->second.radio_joules, 1.02 * reference);
}

TEST_F(IntegrationFixture, McuEstimateTracksReference) {
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(60));
  cfg.num_nodes = 3;
  run(cfg, 20_s);

  const auto estimates = estimator->finalize(network->simulator().now());
  const double now_mcu = network->node(0).board().mcu().meter().total_energy(
      network->simulator().now());
  const double reference = now_mcu - t0_mcu;
  const double estimate = estimates.at("node1").mcu_joules;
  EXPECT_NEAR(estimate, reference, 0.08 * reference);
}

TEST_F(IntegrationFixture, EveryNodeAccounted) {
  core::PaperSetup setup;
  core::BanConfig cfg = core::rpeak_dynamic_config(setup, 4);
  run(cfg, 10_s);
  const auto estimates = estimator->finalize(network->simulator().now());
  for (int node = 1; node <= 4; ++node) {
    const auto it = estimates.find("node" + std::to_string(node));
    ASSERT_NE(it, estimates.end()) << "node" << node;
    EXPECT_GT(it->second.radio_joules, 0.0);
    EXPECT_GT(it->second.mcu_joules, 0.0);
    EXPECT_GT(it->second.tasks, 100u);
  }
  // The base station publishes events too.
  EXPECT_NE(estimates.find("bs"), estimates.end());
}

}  // namespace
}  // namespace bansim::baseline
