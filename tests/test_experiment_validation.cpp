// End-to-end validation harness tests: the reproduction's core claim — the
// OS-level estimation model tracks the reference platform within the
// paper's error band, with the paper's qualitative trends — checked on
// shortened measurement windows to keep the suite fast.
#include <gtest/gtest.h>

#include "core/bansim.hpp"

namespace bansim::core {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;

MeasurementProtocol fast_protocol(Duration measure = 15_s) {
  MeasurementProtocol p;
  p.measure = measure;
  return p;
}

PaperSetup fast_setup() {
  PaperSetup s;
  s.measure = 15_s;
  return s;
}

TEST(Experiment, ScenarioRunsAndJoins) {
  const BanConfig cfg =
      streaming_static_config(fast_setup(), Duration::milliseconds(60));
  const ScenarioResult r = run_scenario(cfg, fast_protocol());
  ASSERT_TRUE(r.joined);
  EXPECT_GT(r.radio_mj, 0.0);
  EXPECT_GT(r.mcu_mj, 0.0);
  EXPECT_GT(r.asic_mj, 0.0);
  EXPECT_EQ(r.measured, 15_s);
  EXPECT_GT(r.data_packets, 200u);  // ~one per 60 ms over 15 s
}

TEST(Experiment, DeterministicForSameSeed) {
  const BanConfig cfg =
      streaming_static_config(fast_setup(), Duration::milliseconds(60));
  const ScenarioResult a = run_scenario(cfg, fast_protocol());
  const ScenarioResult b = run_scenario(cfg, fast_protocol());
  EXPECT_DOUBLE_EQ(a.radio_mj, b.radio_mj);
  EXPECT_DOUBLE_EQ(a.mcu_mj, b.mcu_mj);
  EXPECT_EQ(a.data_packets, b.data_packets);
}

TEST(Experiment, DifferentSeedsStayInTheSameBand) {
  BanConfig cfg =
      streaming_static_config(fast_setup(), Duration::milliseconds(60));
  const ScenarioResult a = run_scenario(cfg, fast_protocol());
  cfg.seed = 1234;
  const ScenarioResult b = run_scenario(cfg, fast_protocol());
  EXPECT_NE(a.radio_mj, b.radio_mj);  // skew draws differ
  EXPECT_NEAR(a.radio_mj, b.radio_mj, 0.12 * a.radio_mj);
}

TEST(Experiment, ModelErrorWithinPaperBand_StreamingStatic) {
  for (int cycle_ms : {30, 120}) {
    const BanConfig cfg = streaming_static_config(
        fast_setup(), Duration::milliseconds(cycle_ms));
    const energy::ValidationRow row = validation_row(
        cfg, fast_protocol(), std::to_string(cycle_ms), cycle_ms);
    EXPECT_LT(row.radio_error(), 0.10) << "cycle " << cycle_ms;
    EXPECT_LT(row.mcu_error(), 0.10) << "cycle " << cycle_ms;
    EXPECT_GT(row.radio_real_mj, 0.0);
  }
}

TEST(Experiment, ModelErrorWithinPaperBand_RpeakDynamic) {
  const BanConfig cfg = rpeak_dynamic_config(fast_setup(), 3);
  const energy::ValidationRow row =
      validation_row(cfg, fast_protocol(), "3", 40);
  EXPECT_LT(row.radio_error(), 0.10);
  EXPECT_LT(row.mcu_error(), 0.10);
}

TEST(Experiment, RadioEnergyDecreasesWithCycle) {
  // The paper's central trend (Tables 1, 3): longer TDMA cycle -> lower
  // radio duty -> less radio energy.
  double previous = 1e18;
  for (int cycle_ms : {30, 60, 90, 120}) {
    const BanConfig cfg = streaming_static_config(
        fast_setup(), Duration::milliseconds(cycle_ms));
    const ScenarioResult r = run_scenario(cfg, fast_protocol());
    ASSERT_TRUE(r.joined);
    EXPECT_LT(r.radio_mj, previous) << "cycle " << cycle_ms;
    previous = r.radio_mj;
  }
}

TEST(Experiment, RadioEnergyDecreasesWithNetworkSize) {
  // Tables 2 and 4: more nodes -> longer dynamic cycle -> lower duty.
  double previous = 1e18;
  for (std::size_t nodes = 1; nodes <= 5; ++nodes) {
    const BanConfig cfg = streaming_dynamic_config(fast_setup(), nodes);
    const ScenarioResult r = run_scenario(cfg, fast_protocol());
    ASSERT_TRUE(r.joined);
    EXPECT_LT(r.radio_mj, previous) << nodes << " nodes";
    previous = r.radio_mj;
  }
}

TEST(Experiment, RpeakBeatsStreamingAtSameCycle) {
  // Section 5.2: local preprocessing cuts the radio load.
  const BanConfig stream =
      streaming_static_config(fast_setup(), Duration::milliseconds(60));
  BanConfig rpeak =
      rpeak_static_config(fast_setup(), Duration::milliseconds(60));
  const ScenarioResult rs = run_scenario(stream, fast_protocol());
  const ScenarioResult rr = run_scenario(rpeak, fast_protocol());
  EXPECT_LT(rr.radio_mj, rs.radio_mj);
}

TEST(Experiment, Figure4SavingInPaperDirection) {
  PaperSetup setup = fast_setup();
  const Figure4Result fig = figure4(setup);
  EXPECT_GT(fig.saving_fraction(), 0.35);
  EXPECT_LT(fig.saving_fraction(), 0.80);
  // The Sim bars track the Real bars.
  EXPECT_NEAR(fig.streaming_sim_radio_mj, fig.streaming_real_radio_mj,
              0.10 * fig.streaming_real_radio_mj);
  EXPECT_NEAR(fig.rpeak_sim_mcu_mj, fig.rpeak_real_mcu_mj,
              0.10 * fig.rpeak_real_mcu_mj);
  EXPECT_NE(fig.render().find("saves"), std::string::npos);
}

TEST(Experiment, AsicIsConstantPower) {
  // The paper excludes the 25-ch ASIC (constant 10.5 mW) from validation;
  // check it really is constant across configurations.
  const BanConfig a =
      streaming_static_config(fast_setup(), Duration::milliseconds(30));
  const BanConfig b = rpeak_static_config(fast_setup(), Duration::milliseconds(120));
  const ScenarioResult ra = run_scenario(a, fast_protocol());
  const ScenarioResult rb = run_scenario(b, fast_protocol());
  EXPECT_NEAR(ra.asic_mj, 10.5 * 15.0, 0.5);
  EXPECT_NEAR(ra.asic_mj, rb.asic_mj, 1e-6);
}

TEST(Experiment, PaperTablesAreEmbedded) {
  for (int t = 1; t <= 4; ++t) {
    const energy::ValidationTable& table = paper_table(t);
    EXPECT_FALSE(table.rows.empty());
  }
  // Sanity: the embedded paper numbers reproduce the published avg errors.
  EXPECT_NEAR(paper_table(1).avg_radio_error(), 0.056, 0.01);
  EXPECT_NEAR(paper_table(1).avg_mcu_error(), 0.060, 0.01);
  EXPECT_NEAR(paper_table(3).avg_radio_error(), 0.022, 0.01);
}

TEST(Experiment, CoupledSampleRateMatchesPaper) {
  // fs = 6 / cycle: the paper's 30 ms cycle corresponds to 205 Hz (stated),
  // coupling gives 200 Hz — the same payload arithmetic.
  const BanConfig cfg =
      streaming_static_config(fast_setup(), Duration::milliseconds(30));
  EXPECT_NEAR(cfg.streaming.sample_rate_hz, 200.0, 1.0);
  const BanConfig cfg2 = streaming_dynamic_config(fast_setup(), 5);
  EXPECT_NEAR(cfg2.streaming.sample_rate_hz, 100.0, 1.0);
}

TEST(Experiment, UnjoinableNetworkReportsFailure) {
  BanConfig cfg = streaming_static_config(fast_setup(), 30_ms);
  cfg.num_nodes = 7;  // seven contenders, five slots
  MeasurementProtocol protocol = fast_protocol(1_s);
  protocol.join_deadline = 3_s;
  const ScenarioResult r = run_scenario(cfg, protocol);
  EXPECT_FALSE(r.joined);
}

}  // namespace
}  // namespace bansim::core
