#include "baseline/powertossim_estimator.hpp"

#include <gtest/gtest.h>

namespace bansim::baseline {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

TimePoint at(std::int64_t ms) {
  return TimePoint::zero() + Duration::milliseconds(ms);
}

struct EstimatorFixture : ::testing::Test {
  hw::McuParams mcu;
  hw::RadioParams radio;
  phy::PhyConfig phy;
  os::CycleCostModel costs;

  EstimatorFixture() { costs.set("task_a", 8000); }  // 1 ms at 8 MHz

  PowerTossimEstimator make(EstimatorOptions options = {}) {
    return PowerTossimEstimator{mcu, radio, phy, costs, options};
  }
};

TEST_F(EstimatorFixture, RxWindowIntegration) {
  auto est = make();
  est.begin_measurement(at(0));
  est.on_radio_rx_on("n", at(10));
  est.on_radio_rx_off("n", at(30));
  const auto out = est.finalize(at(100));
  const double expect = 0.020 * radio.rx_current_amps * radio.supply_volts;
  EXPECT_NEAR(out.at("n").radio_joules, expect, 1e-12);
}

TEST_F(EstimatorFixture, OpenWindowClipsToFinalize) {
  auto est = make();
  est.begin_measurement(at(0));
  est.on_radio_rx_on("n", at(90));
  const auto out = est.finalize(at(100));
  const double expect = 0.010 * radio.rx_current_amps * radio.supply_volts;
  EXPECT_NEAR(out.at("n").radio_joules, expect, 1e-12);
}

TEST_F(EstimatorFixture, WindowStraddlingMeasurementStartIsClipped) {
  auto est = make();
  est.on_radio_rx_on("n", at(0));
  est.begin_measurement(at(50));
  est.on_radio_rx_off("n", at(70));
  const auto out = est.finalize(at(100));
  const double expect = 0.020 * radio.rx_current_amps * radio.supply_volts;
  EXPECT_NEAR(out.at("n").radio_joules, expect, 1e-12);
}

TEST_F(EstimatorFixture, TxUsesAirTimeOnly) {
  auto est = make();
  est.begin_measurement(at(0));
  est.on_radio_tx("n", 26, at(10));
  est.on_packet("n", net::PacketType::kData, true, at(10));
  const auto out = est.finalize(at(100));
  // air_time(26 B) = 256 us at 1 Mbps; settle/clock-in invisible.
  const double expect = 256e-6 * radio.tx_current_amps * radio.supply_volts;
  EXPECT_NEAR(out.at("n").radio_joules, expect, 1e-12);
  EXPECT_EQ(out.at("n").tx_frames, 1u);
}

TEST_F(EstimatorFixture, ControlPacketsCanBeExcluded) {
  EstimatorOptions options;
  options.include_control_packets = false;
  auto est = make(options);
  est.begin_measurement(at(0));
  est.on_radio_tx("n", 9, at(10));
  est.on_packet("n", net::PacketType::kSlotRequest, true, at(10));
  est.on_radio_tx("n", 26, at(20));
  est.on_packet("n", net::PacketType::kData, true, at(20));
  const auto out = est.finalize(at(100));
  const double expect = 256e-6 * radio.tx_current_amps * radio.supply_volts;
  EXPECT_NEAR(out.at("n").radio_joules, expect, 1e-12);
  EXPECT_EQ(out.at("n").control_frames, 1u);
}

TEST_F(EstimatorFixture, McuTasksThroughCostTable) {
  auto est = make();
  est.begin_measurement(at(0));
  est.on_task("n", "task_a", at(10));  // 8000 cycles = 1 ms active
  const auto out = est.finalize(at(100));
  const double active = 0.001;
  const double expect =
      mcu.supply_volts * (active * mcu.active_current_amps +
                          (0.100 - active) * mcu.lpm_current_amps);
  EXPECT_NEAR(out.at("n").mcu_joules, expect, 1e-12);
  EXPECT_EQ(out.at("n").tasks, 1u);
}

TEST_F(EstimatorFixture, UnknownTaskUsesFallbackCost) {
  auto est = make();
  est.begin_measurement(at(0));
  est.on_task("n", "never_calibrated", at(10));
  const auto out = est.finalize(at(100));
  // Fallback 300 cycles at 8 MHz = 37.5 us of active time.
  const double active = 300.0 / 8e6;
  EXPECT_NEAR(out.at("n").mcu_joules,
              mcu.supply_volts * (active * mcu.active_current_amps +
                                  (0.100 - active) * mcu.lpm_current_amps),
              1e-12);
}

TEST_F(EstimatorFixture, McuTasksCanBeDisabled) {
  EstimatorOptions options;
  options.include_mcu_tasks = false;
  auto est = make(options);
  est.begin_measurement(at(0));
  est.on_task("n", "task_a", at(10));
  const auto out = est.finalize(at(100));
  // Pure sleep floor.
  EXPECT_NEAR(out.at("n").mcu_joules,
              mcu.supply_volts * 0.100 * mcu.lpm_current_amps, 1e-12);
}

TEST_F(EstimatorFixture, ListenWindowsCanBeDisabled) {
  EstimatorOptions options;
  options.include_listen_windows = false;
  auto est = make(options);
  est.begin_measurement(at(0));
  est.on_radio_rx_on("n", at(10));
  est.on_radio_rx_off("n", at(90));
  const auto out = est.finalize(at(100));
  EXPECT_DOUBLE_EQ(out.at("n").radio_joules, 0.0);
}

TEST_F(EstimatorFixture, EventsBeforeMeasurementAreDiscarded) {
  auto est = make();
  est.on_task("n", "task_a", at(10));
  est.on_radio_tx("n", 26, at(10));
  est.on_packet("n", net::PacketType::kData, true, at(10));
  est.begin_measurement(at(50));
  const auto out = est.finalize(at(100));
  EXPECT_EQ(out.at("n").tx_frames, 0u);
  EXPECT_EQ(out.at("n").tasks, 0u);
}

TEST_F(EstimatorFixture, MultipleNodesSeparated) {
  auto est = make();
  est.begin_measurement(at(0));
  est.on_radio_rx_on("a", at(0));
  est.on_radio_rx_off("a", at(10));
  est.on_radio_rx_on("b", at(0));
  est.on_radio_rx_off("b", at(30));
  const auto out = est.finalize(at(100));
  EXPECT_NEAR(out.at("b").radio_joules, 3.0 * out.at("a").radio_joules, 1e-12);
}

}  // namespace
}  // namespace bansim::baseline
