// Seed-sweep robustness of the headline result: the estimation model must
// stay inside the paper's error band for *any* node (any clock-skew draw),
// not just the lucky default seed.  Shortened windows keep the sweep fast.
//
// The sweep is one test that fans all 16 cases out across every core via
// sim::ScenarioRunner (each case owns its own Simulator + node stack, so
// the rows are bit-identical to serial execution) and then asserts the
// error band case by case.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/bansim.hpp"
#include "sim/scenario_runner.hpp"

namespace bansim::core {
namespace {

using sim::Duration;

struct SweepCase {
  std::uint64_t seed;
  bool dynamic;
  bool rpeak;

  [[nodiscard]] std::string label() const {
    return "seed" + std::to_string(seed) + (dynamic ? "_dynamic" : "_static") +
           (rpeak ? "_rpeak" : "_streaming");
  }
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const std::uint64_t seed : {3ull, 17ull, 101ull, 2024ull}) {
    for (const bool dynamic : {false, true}) {
      for (const bool rpeak : {false, true}) {
        cases.push_back({seed, dynamic, rpeak});
      }
    }
  }
  return cases;
}

energy::ValidationRow run_case(const SweepCase& param) {
  PaperSetup setup;
  setup.seed = param.seed;
  setup.measure = Duration::seconds(12);

  BanConfig cfg;
  if (param.dynamic) {
    cfg = param.rpeak ? rpeak_dynamic_config(setup, 4)
                      : streaming_dynamic_config(setup, 4);
  } else {
    cfg = param.rpeak
              ? rpeak_static_config(setup, Duration::milliseconds(60))
              : streaming_static_config(setup, Duration::milliseconds(60));
  }

  MeasurementProtocol protocol;
  protocol.measure = setup.measure;
  return validation_row(cfg, protocol, "x", 60);
}

TEST(ValidationSweep, ErrorStaysInBandForEverySeedAndScenario) {
  const std::vector<SweepCase> cases = sweep_cases();
  std::vector<std::function<energy::ValidationRow()>> scenarios;
  scenarios.reserve(cases.size());
  for (const SweepCase& param : cases) {
    scenarios.push_back([param] { return run_case(param); });
  }

  sim::ScenarioRunner runner;  // hardware_concurrency() workers
  const std::vector<energy::ValidationRow> rows = runner.run(scenarios);
  ASSERT_EQ(rows.size(), cases.size());

  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE(cases[i].label());
    const energy::ValidationRow& row = rows[i];
    EXPECT_GT(row.radio_real_mj, 0.0);
    EXPECT_GT(row.mcu_real_mj, 0.0);
    // The paper's band with headroom: a worst-case draw (node and BS skews
    // near opposite tolerance extremes) inflates the listen-window gap to
    // ~12 % — the same mechanism behind the paper's own worst rows.
    EXPECT_LT(row.radio_error(), 0.15);
    EXPECT_LT(row.mcu_error(), 0.15);
  }
}

// The parallel sweep must produce exactly the rows a serial sweep does —
// per-scenario isolation, not merely statistical agreement.  Two cases per
// flavour keep this cheap; the exhaustive band check above already runs
// every case once.
TEST(ValidationSweep, ParallelRowsBitIdenticalToSerial) {
  const std::vector<SweepCase> cases = {
      {3, false, false}, {3, true, true}, {17, false, true}, {17, true, false}};
  auto scenarios = [&cases] {
    std::vector<std::function<energy::ValidationRow()>> work;
    for (const SweepCase& param : cases) {
      work.push_back([param] { return run_case(param); });
    }
    return work;
  };

  sim::ScenarioRunner serial{1};
  sim::ScenarioRunner parallel{4};
  const auto a = serial.run(scenarios());
  const auto b = parallel.run(scenarios());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(cases[i].label());
    EXPECT_EQ(a[i].radio_real_mj, b[i].radio_real_mj);
    EXPECT_EQ(a[i].radio_sim_mj, b[i].radio_sim_mj);
    EXPECT_EQ(a[i].mcu_real_mj, b[i].mcu_real_mj);
    EXPECT_EQ(a[i].mcu_sim_mj, b[i].mcu_sim_mj);
  }
}

}  // namespace
}  // namespace bansim::core
