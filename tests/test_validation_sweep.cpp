// Seed-sweep robustness of the headline result: the estimation model must
// stay inside the paper's error band for *any* node (any clock-skew draw),
// not just the lucky default seed.  Shortened windows keep the sweep fast.
#include <gtest/gtest.h>

#include "core/bansim.hpp"

namespace bansim::core {
namespace {

using sim::Duration;

struct SweepCase {
  std::uint64_t seed;
  bool dynamic;
  bool rpeak;
};

class ValidationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ValidationSweep, ErrorStaysInBand) {
  const SweepCase param = GetParam();
  PaperSetup setup;
  setup.seed = param.seed;
  setup.measure = Duration::seconds(12);

  BanConfig cfg;
  if (param.dynamic) {
    cfg = param.rpeak ? rpeak_dynamic_config(setup, 4)
                      : streaming_dynamic_config(setup, 4);
  } else {
    cfg = param.rpeak
              ? rpeak_static_config(setup, Duration::milliseconds(60))
              : streaming_static_config(setup, Duration::milliseconds(60));
  }

  MeasurementProtocol protocol;
  protocol.measure = setup.measure;
  const energy::ValidationRow row = validation_row(cfg, protocol, "x", 60);

  EXPECT_GT(row.radio_real_mj, 0.0);
  EXPECT_GT(row.mcu_real_mj, 0.0);
  // The paper's band with headroom: a worst-case draw (node and BS skews
  // near opposite tolerance extremes) inflates the listen-window gap to
  // ~12 % — the same mechanism behind the paper's own worst rows.
  EXPECT_LT(row.radio_error(), 0.15)
      << "seed " << param.seed << (param.dynamic ? " dynamic" : " static")
      << (param.rpeak ? " rpeak" : " streaming");
  EXPECT_LT(row.mcu_error(), 0.15);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const std::uint64_t seed : {3ull, 17ull, 101ull, 2024ull}) {
    for (const bool dynamic : {false, true}) {
      for (const bool rpeak : {false, true}) {
        cases.push_back({seed, dynamic, rpeak});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScenarios, ValidationSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) +
             (param_info.param.dynamic ? "_dynamic" : "_static") +
             (param_info.param.rpeak ? "_rpeak" : "_streaming");
    });

}  // namespace
}  // namespace bansim::core
