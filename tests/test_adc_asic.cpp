#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <cmath>

#include "hw/adc12.hpp"
#include "hw/board.hpp"
#include "hw/sensor_asic.hpp"

namespace bansim::hw {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct AdcFixture : ::testing::Test {
  sim::Simulator simulator;
  AdcParams params;
  Adc12 adc{simulator, params, 2.5};
};

TEST_F(AdcFixture, QuantizeEndpoints) {
  EXPECT_EQ(adc.quantize(0.0), 0);
  EXPECT_EQ(adc.quantize(2.5), 4095);
  EXPECT_EQ(adc.quantize(1.25), 2048);  // rounds 2047.5 up
}

TEST_F(AdcFixture, QuantizeClamps) {
  EXPECT_EQ(adc.quantize(-1.0), 0);
  EXPECT_EQ(adc.quantize(5.0), 4095);
}

TEST_F(AdcFixture, QuantizeIsMonotone) {
  std::uint16_t prev = 0;
  for (double v = 0.0; v <= 2.5; v += 0.01) {
    const std::uint16_t code = adc.quantize(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST_F(AdcFixture, ConversionTakesConfiguredTime) {
  adc.set_input([](std::uint32_t) { return 1.0; });
  TimePoint done_at;
  std::uint16_t code = 0;
  adc.convert(0, [&](std::uint16_t c) {
    code = c;
    done_at = simulator.now();
  });
  EXPECT_TRUE(adc.busy());
  simulator.run();
  EXPECT_EQ(done_at, TimePoint::zero() + params.conversion_time);
  EXPECT_EQ(code, adc.quantize(1.0));
  EXPECT_FALSE(adc.busy());
  EXPECT_EQ(adc.conversions(), 1u);
}

TEST_F(AdcFixture, SamplesSelectedChannel) {
  adc.set_input([](std::uint32_t ch) { return ch == 3 ? 2.0 : 0.0; });
  std::uint16_t code = 0;
  adc.convert(3, [&](std::uint16_t c) { code = c; });
  simulator.run();
  EXPECT_EQ(code, adc.quantize(2.0));
}

TEST(SensorAsic, ReadsAssignedSignals) {
  sim::Simulator simulator;
  AsicParams params;
  SensorAsic asic{simulator, params};
  asic.set_channel_signal(0, [](TimePoint t) {
    return 1.0 + t.to_seconds();
  });
  EXPECT_DOUBLE_EQ(asic.read_channel(0), 1.0);
  simulator.schedule_in(2_s, [] {});
  simulator.run();
  EXPECT_DOUBLE_EQ(asic.read_channel(0), 3.0);
}

TEST(SensorAsic, UnassignedChannelIsZero) {
  sim::Simulator simulator;
  SensorAsic asic{simulator, AsicParams{}};
  EXPECT_DOUBLE_EQ(asic.read_channel(7), 0.0);
  EXPECT_DOUBLE_EQ(asic.read_channel(99), 0.0);  // out of range is safe
}

TEST(SensorAsic, ConstantPowerEnergy) {
  sim::Simulator simulator;
  AsicParams params;  // 10.5 mW
  SensorAsic asic{simulator, params};
  EXPECT_NEAR(asic.energy(TimePoint::zero() + 60_s), 10.5e-3 * 60.0, 1e-9);
}

TEST(Board, ComposesComponentsAndWiresAdcToAsic) {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  phy::Channel channel{context};
  Board board{context, channel, "node1", BoardParams{}, 0.0};
  EXPECT_EQ(board.name(), "node1");

  board.asic().set_channel_signal(2, [](TimePoint) { return 1.5; });
  std::uint16_t code = 0;
  board.adc().convert(2, [&](std::uint16_t c) { code = c; });
  simulator.run();
  EXPECT_EQ(code, board.adc().quantize(1.5));
}

TEST(Board, BreakdownHasAllComponents) {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  phy::Channel channel{context};
  Board board{context, channel, "node1", BoardParams{}, 0.0};
  simulator.schedule_in(1_s, [] {});
  simulator.run();
  const auto rows = board.breakdown(simulator.now());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].component, "mcu");
  EXPECT_EQ(rows[1].component, "radio");
  EXPECT_EQ(rows[2].component, "asic");
  EXPECT_NEAR(rows[2].joules, 10.5e-3, 1e-9);
  // MCU was active the whole second: 2 mA * 2.8 V.
  EXPECT_NEAR(rows[0].joules, 2e-3 * 2.8, 1e-9);
}

}  // namespace
}  // namespace bansim::hw
