// NetworkBuilder roster validation and event-arena pre-sizing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/ban_network.hpp"
#include "core/network_builder.hpp"
#include "mac/tdma_config.hpp"
#include "os/probe.hpp"

namespace bansim {
namespace {

TEST(NetworkBuilder, EmptyRosterIsRejected) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;  // roster left empty
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
}

TEST(NetworkBuilder, InvalidTdmaConfigIsRejected) {
  // Programmatic construction bypasses config_io, so the builder re-runs
  // TdmaConfig::validate() — the same degenerate plans hard-error here.
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.roster.resize(2);
  plan.tdma.ack_data = true;
  plan.tdma.max_retries = 0;
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
  plan.tdma = mac::TdmaConfig{};
  plan.tdma.tx_queue_cap = 0;
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
  plan.tdma = mac::TdmaConfig{};
  plan.tdma.missed_beacon_limit = 3;
  plan.tdma.reclaim_after_cycles = 2;
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
}

TEST(NetworkBuilder, ZeroNodeBanConfigIsBaseStationOnly) {
  // num_nodes = 0 is an explicit beacon-only network, not a mistake: the
  // accidental analogue (a CellPlan whose roster was never resized) is the
  // case EmptyRosterIsRejected covers.
  core::BanConfig config;
  config.num_nodes = 0;
  core::BanNetwork network{config};
  EXPECT_EQ(network.num_nodes(), 0u);
}

TEST(NetworkBuilder, ExplicitlyAllowedEmptyRosterBuilds) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.allow_empty_roster = true;
  const core::BuiltCell cell = core::NetworkBuilder::build_cell(
      context, channel, plan, probe, os::CycleCostModel{});
  EXPECT_NE(cell.bs, nullptr);
  EXPECT_TRUE(cell.nodes.empty());
}

TEST(NetworkBuilder, DuplicateAddressesAreRejected) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.roster.resize(3);
  plan.roster[0].address = 9;
  plan.roster[2].address = 9;  // collides with node 0
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
}

TEST(NetworkBuilder, ExplicitAddressCollidingWithPositionalIsRejected) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.roster.resize(3);
  // Node 1's positional default is offset + 2 == 2; pinning node 0 to it
  // must hard-error rather than silently cross-deliver frames.
  plan.roster[0].address = 2;
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
}

TEST(NetworkBuilder, BaseStationAddressCollisionIsRejected) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.tdma.pan_id = 1;
  plan.roster.resize(2);
  plan.roster[0].address = mac::TdmaConfig::bs_address(1);
  EXPECT_THROW(core::NetworkBuilder::build_cell(context, channel, plan, probe,
                                                os::CycleCostModel{}),
               std::invalid_argument);
}

TEST(NetworkBuilder, DistinctExplicitAddressesAreAccepted) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.roster.resize(3);
  plan.roster[1].address = 77;
  const core::BuiltCell cell = core::NetworkBuilder::build_cell(
      context, channel, plan, probe, os::CycleCostModel{});
  EXPECT_EQ(cell.nodes.size(), 3u);
}

TEST(NetworkBuilder, PreSizesTheEventArena) {
  sim::SimContext context{42};
  phy::Channel channel{context};
  os::NullProbe probe;
  core::CellPlan plan;
  plan.roster.resize(5);
  const core::BuiltCell cell = core::NetworkBuilder::build_cell(
      context, channel, plan, probe, os::CycleCostModel{});
  (void)cell;
  // 16 events per stack, base station included, reserved up front so the
  // first join burst does not grow the arena.
  EXPECT_GE(context.simulator.event_capacity(), 16u * 6u);
}

}  // namespace
}  // namespace bansim
