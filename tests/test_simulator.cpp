#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::zero());
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, ExecutesAtScheduledTime) {
  Simulator s;
  TimePoint observed;
  s.schedule_in(5_ms, [&] { observed = s.now(); });
  s.run();
  EXPECT_EQ(observed, TimePoint::zero() + 5_ms);
  EXPECT_EQ(s.now(), TimePoint::zero() + 5_ms);
}

TEST(Simulator, RunUntilStopsClockAtHorizon) {
  Simulator s;
  bool late_ran = false;
  s.schedule_in(10_ms, [&] { late_ran = true; });
  s.run_until(TimePoint::zero() + 4_ms);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.now(), TimePoint::zero() + 4_ms);
  // The event is still pending and fires on the next run.
  s.run();
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator s;
  bool ran = false;
  s.schedule_in(4_ms, [&] { ran = true; });
  s.run_until(TimePoint::zero() + 4_ms);
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  std::vector<double> times;
  s.schedule_in(1_ms, [&] {
    times.push_back(s.now().to_milliseconds());
    s.schedule_in(2_ms, [&] { times.push_back(s.now().to_milliseconds()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.schedule_in(5_ms, [&] {
    bool ran = false;
    s.schedule_in(-3 * 1_ms, [&] { ran = true; });
    // Runs later in the same instant, not in the past.
    EXPECT_FALSE(ran);
  });
  s.run();
  EXPECT_EQ(s.now(), TimePoint::zero() + 5_ms);
}

TEST(Simulator, ScheduleAtClampsToPast) {
  Simulator s;
  TimePoint fired;
  s.schedule_in(5_ms, [&] {
    s.schedule_at(TimePoint::zero() + 1_ms, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, TimePoint::zero() + 5_ms);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_in(Duration::milliseconds(i), [&] {
      if (++count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.events_pending(), 7u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int count = 0;
  s.schedule_in(1_ms, [&] { ++count; });
  s.schedule_in(2_ms, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator s;
  s.schedule_in(1_ms, [] {});
  s.schedule_in(2_ms, [] {});
  s.run_until(TimePoint::zero() + 1_ms);
  s.reset();
  EXPECT_EQ(s.now(), TimePoint::zero());
  EXPECT_EQ(s.events_pending(), 0u);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 25; ++i) s.schedule_in(Duration::microseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 25u);
}

TEST(Simulator, RunUntilAdvancesIdleClock) {
  Simulator s;  // no events at all
  s.run_until(TimePoint::zero() + 1_s);
  EXPECT_EQ(s.now(), TimePoint::zero() + 1_s);
}

TEST(Simulator, HandleCancellationFromWithinEvent) {
  Simulator s;
  bool victim_ran = false;
  EventHandle victim = s.schedule_in(10_ms, [&] { victim_ran = true; });
  s.schedule_in(5_ms, [&] { victim.cancel(); });
  s.run();
  EXPECT_FALSE(victim_ran);
}

}  // namespace
}  // namespace bansim::sim
