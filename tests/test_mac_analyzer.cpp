#include "core/mac_analyzer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/paper_experiments.hpp"

namespace bansim::core {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct AnalyzerFixture : ::testing::Test {
  std::unique_ptr<BanNetwork> network;
  std::shared_ptr<sim::MemorySink> sink;
  TimePoint t0;

  void make_and_run() {
    PaperSetup setup;
    BanConfig cfg =
        streaming_static_config(setup, Duration::milliseconds(60));
    cfg.num_nodes = 3;
    network = std::make_unique<BanNetwork>(cfg);
    sink = std::make_shared<sim::MemorySink>();
    network->tracer().attach(sink, {sim::TraceCategory::kMac});
    network->start();
    ASSERT_TRUE(network->run_until_joined(500_ms, TimePoint::zero() + 30_s));
    t0 = network->simulator().now();
    network->run_until(t0 + 10_s);
  }
};

TEST_F(AnalyzerFixture, DutyCyclesAreInPhysicalRange) {
  make_and_run();
  const MacAnalysis analysis = analyze_mac(*network, sink->records(), t0);

  ASSERT_EQ(analysis.nodes.size(), 3u);
  for (const NodeMacReport& r : analysis.nodes) {
    // Beacon listen ~3.3 ms per 60 ms cycle -> ~5-7 % RX duty.
    EXPECT_GT(r.radio_rx_duty, 0.02) << r.node;
    EXPECT_LT(r.radio_rx_duty, 0.12) << r.node;
    // TX: one 26 B burst per cycle -> ~1 %.
    EXPECT_GT(r.radio_tx_duty, 0.002) << r.node;
    EXPECT_LT(r.radio_tx_duty, 0.05) << r.node;
    EXPECT_GT(r.mcu_active_duty, 0.05) << r.node;
    EXPECT_LT(r.mcu_active_duty, 0.6) << r.node;
  }
}

TEST_F(AnalyzerFixture, ListenWindowStatisticsMatchProtocol) {
  make_and_run();
  const MacAnalysis analysis = analyze_mac(*network, sink->records(), t0);
  for (const NodeMacReport& r : analysis.nodes) {
    // One listen window per 60 ms cycle.
    EXPECT_NEAR(r.listen_windows_per_s, 1000.0 / 60.0, 2.0) << r.node;
    // Window = guard(2.5 + 0.3 ms) + beacon air + clockout: ~3-5 ms.
    EXPECT_GT(r.avg_listen_window_ms, 2.5) << r.node;
    EXPECT_LT(r.avg_listen_window_ms, 6.0) << r.node;
  }
}

TEST_F(AnalyzerFixture, BeaconCadenceTracksCycle) {
  make_and_run();
  const MacAnalysis analysis = analyze_mac(*network, sink->records(), t0);
  EXPECT_GT(analysis.beacon_interval_ms.count(), 100u);
  EXPECT_NEAR(analysis.beacon_interval_ms.mean(), 60.0, 0.5);
  // Jitter: BS clock skew and scheduler latencies, well under a guard.
  EXPECT_LT(analysis.beacon_interval_ms.stddev(), 1.0);
}

TEST_F(AnalyzerFixture, RenderContainsEveryNode) {
  make_and_run();
  const MacAnalysis analysis = analyze_mac(*network, sink->records(), t0);
  const std::string out = analysis.render();
  EXPECT_NE(out.find("node1"), std::string::npos);
  EXPECT_NE(out.find("node3"), std::string::npos);
  EXPECT_NE(out.find("beacon cadence"), std::string::npos);
}

}  // namespace
}  // namespace bansim::core
