// Cross-protocol MAC conformance battery: every protocol behind the
// mac::NodeMacBase / mac::BaseStationMacBase seam must satisfy the same
// observable contract — associate and deliver data, survive beacon loss
// (where the protocol has beacons), re-associate after a crash/reboot, and
// interoperate with storage-driven death.  The suite is parameterized over
// mac::Protocol so adding a protocol to the zoo means adding one enum
// value here, not a new test file.
#include <gtest/gtest.h>

#include "check/fault_campaign.hpp"
#include "core/ban_network.hpp"
#include "mac/mac_base.hpp"

namespace bansim {
namespace {

using namespace bansim::sim::literals;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using core::MacKind;
using sim::Duration;
using sim::TimePoint;

/// A hardened 3-node cell of the requested protocol.  Recovery knobs are
/// bounded everywhere so a severed link can never hang a run.
BanConfig protocol_config(mac::Protocol protocol, std::uint64_t seed) {
  BanConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = seed;
  cfg.app = AppKind::kEcgStreaming;
  cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 4);
  cfg.tdma.missed_beacon_limit = 2;
  cfg.tdma.search_listen = Duration::milliseconds(150);
  cfg.tdma.search_backoff_base = Duration::milliseconds(40);
  cfg.tdma.search_backoff_max = Duration::milliseconds(400);
  switch (protocol) {
    case mac::Protocol::kStaticTdma:
      break;
    case mac::Protocol::kDynamicTdma: {
      const auto keep = cfg.tdma;
      cfg.tdma = mac::TdmaConfig::dynamic_plan(Duration::milliseconds(10));
      cfg.tdma.reclaim_after_cycles = 4;
      cfg.tdma.missed_beacon_limit = keep.missed_beacon_limit;
      cfg.tdma.search_listen = keep.search_listen;
      cfg.tdma.search_backoff_base = keep.search_backoff_base;
      cfg.tdma.search_backoff_max = keep.search_backoff_max;
      break;
    }
    case mac::Protocol::kAloha:
      cfg.mac = MacKind::kAloha;
      break;
    case mac::Protocol::kCsmaCa:
      cfg.mac = MacKind::kCsmaCa;
      break;
  }
  return cfg;
}

bool has_beacons(mac::Protocol protocol) {
  return protocol != mac::Protocol::kAloha;
}

class MacConformance : public ::testing::TestWithParam<mac::Protocol> {};

TEST_P(MacConformance, AssociatesAndDeliversData) {
  const mac::Protocol protocol = GetParam();
  BanNetwork net{protocol_config(protocol, 101)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));

  EXPECT_EQ(net.base_station().mac_base().protocol(), protocol);
  net.run_until(net.simulator().now() + 5_s);

  const auto& per_node = net.base_station_app().per_node();
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    core::SensorNode& node = net.node(i);
    EXPECT_EQ(node.mac_base().protocol(), protocol) << node.name();
    const mac::MacStatsSnapshot stats = node.mac_base().stats_snapshot();
    EXPECT_GT(stats.payloads_queued, 0u) << node.name();
    EXPECT_GT(stats.data_sent, 0u) << node.name();
    if (has_beacons(protocol)) {
      EXPECT_GT(stats.beacons_received, 0u) << node.name();
    }
    const auto it = per_node.find(node.address());
    ASSERT_NE(it, per_node.end()) << node.name() << " delivered nothing";
    EXPECT_GT(it->second.packets, 0u) << node.name();
  }
  // Every node made itself known to the base station.
  EXPECT_EQ(net.base_station().mac_base().joined_nodes(), net.num_nodes());
}

TEST_P(MacConformance, BeaconLossTriggersSearchAndReanchor) {
  const mac::Protocol protocol = GetParam();
  if (!has_beacons(protocol)) {
    GTEST_SKIP() << "ALOHA has no beacons to lose";
  }
  BanNetwork net{protocol_config(protocol, 202)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));

  const auto before = net.node(0).mac_base().stats_snapshot();

  // Sever base station <-> node 1 (channel ids: 0 = bs, i + 1 = node i).
  net.channel().set_link(0, 1, false);
  net.run_until(net.simulator().now() + 1500_ms);
  const auto starved = net.node(0).mac_base().stats_snapshot();
  EXPECT_GT(starved.beacons_missed, before.beacons_missed);

  // Heal: the node re-anchors and data flows again.
  net.channel().set_link(0, 1, true);
  net.run_until(net.simulator().now() + 3_s);
  const auto healed = net.node(0).mac_base().stats_snapshot();
  EXPECT_GT(healed.beacons_received, starved.beacons_received);
  EXPECT_GT(healed.data_sent, starved.data_sent);
}

TEST_P(MacConformance, CrashRebootReassociates) {
  const mac::Protocol protocol = GetParam();
  BanConfig cfg = protocol_config(protocol, 303);
  cfg.fault_plan.enabled = true;
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.node = 2;
  crash.at = TimePoint::zero() + 4_s;
  crash.down = 400_ms;
  cfg.fault_plan.events.push_back(crash);

  const check::CampaignOutcome outcome =
      check::run_fault_campaign(cfg, {.horizon = 10_s, .drain = 3_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  ASSERT_EQ(outcome.run.nodes.size(), 3u);
  const fault::NodeOutcome& victim = outcome.run.nodes[1];
  EXPECT_EQ(victim.crashes, 1u);
  EXPECT_EQ(victim.reboots, 1u);
  // The rebooted incarnation went on generating and delivering data.
  EXPECT_GT(victim.payloads_generated, 0u);
  EXPECT_GT(victim.payloads_delivered, 0u);
}

TEST_P(MacConformance, StorageDepletionDeathIsClean) {
  const mac::Protocol protocol = GetParam();
  BanConfig cfg = protocol_config(protocol, 404);
  cfg.storage.enabled = true;
  cfg.storage.kind = hw::StorageKind::kBattery;
  // A few milliamp-seconds: dead well inside the horizon at ~10-30 mW.
  cfg.storage.battery.capacity_mah = 0.004;
  cfg.storage.check = Duration::milliseconds(50);

  const check::LifetimeOutcome outcome = check::run_lifetime_campaign(
      cfg, {.horizon = 10_s, .poll = Duration::milliseconds(250)});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  EXPECT_TRUE(outcome.death_observed);
  EXPECT_GT(outcome.storage.depletion_deaths, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolZoo, MacConformance,
    ::testing::Values(mac::Protocol::kStaticTdma,
                      mac::Protocol::kDynamicTdma, mac::Protocol::kAloha,
                      mac::Protocol::kCsmaCa),
    [](const ::testing::TestParamInfo<mac::Protocol>& param) {
      return std::string(mac::to_string(param.param));
    });

}  // namespace
}  // namespace bansim
