#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/ecg_streaming_app.hpp"
#include "apps/ecg_synthesizer.hpp"
#include "apps/rpeak_app.hpp"
#include "apps/rpeak_detector.hpp"
#include "sim/rng.hpp"

namespace bansim::apps {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::Rng;
using sim::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::zero() + Duration::from_seconds(s);
}

TEST(EcgSynthesizer, BeatRateMatchesHeartRate) {
  EcgConfig cfg;
  cfg.heart_rate_bpm = 75.0;
  EcgSynthesizer ecg{cfg, Rng::stream(1, "ecg")};
  const auto beats = ecg.beats_until(at_s(60.0));
  EXPECT_NEAR(static_cast<double>(beats.size()), 75.0, 4.0);
}

TEST(EcgSynthesizer, RrVariabilityBoundsIntervals) {
  EcgConfig cfg;
  cfg.heart_rate_bpm = 60.0;
  cfg.rr_variability = 0.03;
  EcgSynthesizer ecg{cfg, Rng::stream(2, "ecg")};
  const auto beats = ecg.beats_until(at_s(120.0));
  ASSERT_GT(beats.size(), 10u);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    const double rr = (beats[i] - beats[i - 1]).to_seconds();
    EXPECT_GT(rr, 0.8);
    EXPECT_LT(rr, 1.2);
  }
}

TEST(EcgSynthesizer, DeterministicForSameSeed) {
  EcgConfig cfg;
  EcgSynthesizer a{cfg, Rng::stream(7, "ecg")};
  EcgSynthesizer b{cfg, Rng::stream(7, "ecg")};
  for (int i = 0; i < 2000; ++i) {
    const TimePoint t = at_s(i * 0.005);
    EXPECT_DOUBLE_EQ(a.sample(t), b.sample(t));
  }
}

TEST(EcgSynthesizer, SampleIsPureFunctionOfTime) {
  EcgConfig cfg;
  EcgSynthesizer ecg{cfg, Rng::stream(7, "ecg")};
  const double first = ecg.sample(at_s(1.0));
  (void)ecg.sample(at_s(30.0));  // extend far ahead
  EXPECT_DOUBLE_EQ(ecg.sample(at_s(1.0)), first);
}

TEST(EcgSynthesizer, OutputStaysInFrontEndRange) {
  EcgConfig cfg;
  EcgSynthesizer ecg{cfg, Rng::stream(3, "ecg")};
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 4000; ++i) {
    const double v = ecg.sample(at_s(i * 0.005));
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Baseline 1.25 V, R amplitude 0.6 V, small negative waves.
  EXPECT_GT(lo, 0.8);
  EXPECT_LT(hi, 2.2);
  EXPECT_GT(hi, 1.6);  // R peaks present
}

TEST(EcgSynthesizer, RPeakIsNearBeatTime) {
  EcgConfig cfg;
  cfg.noise_volts = 0.0;
  EcgSynthesizer ecg{cfg, Rng::stream(5, "ecg")};
  const auto beats = ecg.beats_until(at_s(5.0));
  ASSERT_GE(beats.size(), 3u);
  // The waveform maximum within +-50 ms of a declared beat is at the beat.
  const TimePoint beat = beats[2];
  const double peak_value = ecg.sample(beat);
  for (double dt = -0.05; dt <= 0.05; dt += 0.001) {
    EXPECT_LE(ecg.sample(beat + Duration::from_seconds(dt)),
              peak_value + 1e-9);
  }
}

class RpeakAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(RpeakAccuracy, DetectsBeatsAtHeartRate) {
  const double bpm = GetParam();
  EcgConfig cfg;
  cfg.heart_rate_bpm = bpm;
  EcgSynthesizer ecg{cfg, Rng::stream(17, "ecg")};
  RpeakDetector detector{200.0};

  const double fs = 200.0;
  const double seconds = 30.0;
  std::uint64_t detections = 0;
  for (int n = 0; n < static_cast<int>(seconds * fs); ++n) {
    const TimePoint t = at_s(n / fs);
    // Scale volts into 12-bit codes the way the platform ADC does.
    const auto code = static_cast<std::uint16_t>(
        std::lround(ecg.sample(t) / 2.5 * 4095.0));
    if (detector.step(code).beat_samples_ago > 0) ++detections;
  }
  const double expected = seconds * bpm / 60.0;
  EXPECT_NEAR(static_cast<double>(detections), expected, expected * 0.12 + 2);
}

INSTANTIATE_TEST_SUITE_P(HeartRates, RpeakAccuracy,
                         ::testing::Values(55.0, 75.0, 100.0));

TEST(RpeakDetector, SamplesAgoPointsNearTrueBeat) {
  EcgConfig cfg;
  cfg.heart_rate_bpm = 75.0;
  cfg.noise_volts = 0.0;
  EcgSynthesizer ecg{cfg, Rng::stream(23, "ecg")};
  RpeakDetector detector{200.0};
  const auto truth = ecg.beats_until(at_s(30.0));

  const double fs = 200.0;
  std::vector<double> detected_at;
  for (int n = 0; n < static_cast<int>(30.0 * fs); ++n) {
    const double t = n / fs;
    const auto code = static_cast<std::uint16_t>(
        std::lround(ecg.sample(at_s(t)) / 2.5 * 4095.0));
    const RpeakResult r = detector.step(code);
    if (r.beat_samples_ago > 0) {
      detected_at.push_back(t - r.beat_samples_ago / fs);
    }
  }
  ASSERT_GT(detected_at.size(), 20u);
  // Skip the warm-up detections; each later detection must be within
  // 120 ms of a true beat.
  std::size_t matched = 0;
  for (std::size_t i = 2; i < detected_at.size(); ++i) {
    double best = 1e9;
    for (const TimePoint b : truth) {
      best = std::min(best, std::abs(detected_at[i] - b.to_seconds()));
    }
    if (best < 0.12) ++matched;
  }
  EXPECT_GE(static_cast<double>(matched),
            0.85 * static_cast<double>(detected_at.size() - 2));
}

TEST(RpeakDetector, RefractoryPreventsDoubleDetection) {
  EcgConfig cfg;
  cfg.heart_rate_bpm = 75.0;
  EcgSynthesizer ecg{cfg, Rng::stream(29, "ecg")};
  RpeakDetector detector{200.0};
  std::vector<std::uint64_t> beat_indices;
  for (int n = 0; n < 6000; ++n) {
    const auto code = static_cast<std::uint16_t>(
        std::lround(ecg.sample(at_s(n / 200.0)) / 2.5 * 4095.0));
    const RpeakResult r = detector.step(code);
    if (r.beat_samples_ago > 0) {
      beat_indices.push_back(static_cast<std::uint64_t>(n) -
                             r.beat_samples_ago);
    }
  }
  for (std::size_t i = 1; i < beat_indices.size(); ++i) {
    // 250 ms refractory at 200 Hz = 50 samples.
    EXPECT_GT(beat_indices[i] - beat_indices[i - 1], 50u);
  }
}

TEST(RpeakDetector, FlatSignalNeverDetects) {
  RpeakDetector detector{200.0};
  for (int n = 0; n < 4000; ++n) {
    EXPECT_EQ(detector.step(2048).beat_samples_ago, 0u);
  }
  EXPECT_EQ(detector.beats_detected(), 0u);
}

TEST(RpeakDetector, WorkCyclesAreDataDependent) {
  EcgConfig cfg;
  EcgSynthesizer ecg{cfg, Rng::stream(31, "ecg")};
  RpeakDetector detector{200.0};
  std::uint32_t lo = ~0u, hi = 0;
  for (int n = 0; n < 4000; ++n) {
    const auto code = static_cast<std::uint16_t>(
        std::lround(ecg.sample(at_s(n / 200.0)) / 2.5 * 4095.0));
    const auto cycles = detector.step(code).work_cycles;
    lo = std::min(lo, cycles);
    hi = std::max(hi, cycles);
  }
  EXPECT_LT(lo, hi);  // quiet samples cheaper than confirmation paths
  EXPECT_GE(lo, 300u);
}

TEST(Pack12, RoundTripEvenCount) {
  const std::vector<std::uint16_t> codes = {0x0ABC, 0x0123, 0x0FFF, 0x0000};
  EXPECT_EQ(unpack12(pack12(codes)), codes);
  EXPECT_EQ(pack12(codes).size(), 6u);  // 2 codes -> 3 bytes
}

TEST(Pack12, RoundTripRandom) {
  Rng rng{55};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint16_t> codes(
        static_cast<std::size_t>(rng.uniform_int(2, 40)) & ~1ull);
    for (auto& c : codes) {
      c = static_cast<std::uint16_t>(rng.uniform_int(0, 4095));
    }
    EXPECT_EQ(unpack12(pack12(codes)), codes);
  }
}

TEST(Pack12, MasksTo12Bits) {
  const auto packed = pack12({0xFABC, 0xF123});
  const auto codes = unpack12(packed);
  ASSERT_EQ(codes.size(), 2u);
  EXPECT_EQ(codes[0], 0x0ABC);
  EXPECT_EQ(codes[1], 0x0123);
}

TEST(BeatEventCodec, RoundTrip) {
  BeatEvent e;
  e.channel = 1;
  e.samples_ago = 74;  // the paper's example: 74 * 5 ms = 370 ms ago
  e.beat_number = 1234;
  const BeatEvent back = BeatEvent::deserialize(e.serialize());
  EXPECT_EQ(back.channel, 1);
  EXPECT_EQ(back.samples_ago, 74);
  EXPECT_EQ(back.beat_number, 1234);
  EXPECT_EQ(e.serialize().size(), 5u);
}

}  // namespace
}  // namespace bansim::apps
