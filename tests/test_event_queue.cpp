#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.schedule(at(20), [] {});
  EventHandle early = q.schedule(at(10), [] {});
  EXPECT_EQ(q.next_time(), at(10));
  early.cancel();
  EXPECT_EQ(q.next_time(), at(20));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(at(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  auto [when, action] = q.pop();
  EXPECT_EQ(when, at(1));
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventHandle a = q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_EQ(q.size(), 1u);  // the cancelled head is pruned on observation
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(at(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ScheduledTotalCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(at(i), [] {});
  EXPECT_EQ(q.scheduled_total(), 7u);
}

TEST(EventQueue, CancelThenRescheduleReusesSlotWithoutAliasing) {
  EventQueue q;
  bool stale_ran = false;
  bool fresh_ran = false;
  EventHandle stale = q.schedule(at(1), [&] { stale_ran = true; });
  stale.cancel();
  // The replacement recycles the freed slot; the stale handle must not be
  // able to see or cancel it.
  EventHandle fresh = q.schedule(at(2), [&] { fresh_ran = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  stale.cancel();  // must be a no-op against the recycled slot
  EXPECT_TRUE(fresh.pending());
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(stale_ran);
  EXPECT_TRUE(fresh_ran);
}

TEST(EventQueue, SizeIsExactAfterMassCancellation) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(q.schedule(at(i), [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  // A survivor in the middle of the cancelled mass is still found.
  EventHandle live = q.schedule(at(50), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), at(50));
  EXPECT_TRUE(live.pending());
}

TEST(EventQueue, HandleOutlivesClear) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  q.clear();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
  // New work scheduled after the clear is unaffected by the old handle.
  EventHandle fresh = q.schedule(at(2), [] {});
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, SlotArenaRecyclesInsteadOfGrowing) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    EventHandle h = q.schedule(at(i), [] {});
    if (i % 2 == 0) {
      h.cancel();
    } else {
      q.pop().second();
    }
  }
  // Every schedule released its slot before the next one; the arena should
  // stay at its peak concurrency (1), not grow with the schedule count.
  EXPECT_EQ(q.slot_capacity(), 1u);
  EXPECT_EQ(q.scheduled_total(), 1000u);
  EXPECT_TRUE(q.empty());
}

// Counts live instances of a captured object so tests can assert exactly
// when the kernel constructs and destroys closure state.
struct LifeProbe {
  int* constructed;
  int* destroyed;

  LifeProbe(int* c, int* d) : constructed{c}, destroyed{d} { ++*constructed; }
  LifeProbe(const LifeProbe& o) noexcept
      : constructed{o.constructed}, destroyed{o.destroyed} {
    ++*constructed;
  }
  LifeProbe(LifeProbe&& o) noexcept
      : constructed{o.constructed}, destroyed{o.destroyed} {
    ++*constructed;
  }
  LifeProbe& operator=(const LifeProbe&) = delete;
  LifeProbe& operator=(LifeProbe&&) = delete;
  ~LifeProbe() { ++*destroyed; }
};

// A callable too large for the inline buffer: must be rejected at compile
// time on the implicit path and accepted through the boxed() escape hatch.
struct OversizedCallable {
  std::array<std::byte, InlineCallback::kInlineBytes + 64> blob{};
  int* hits{nullptr};
  void operator()() const { ++*hits; }
};

struct SmallCallable {
  void operator()() const {}
};

struct OveralignedCallable {
  alignas(2 * InlineCallback::kInlineAlign) std::byte data[8]{};
  void operator()() const {}
};

static_assert(std::is_constructible_v<InlineCallback, SmallCallable>,
              "small callables must convert implicitly");
static_assert(!std::is_constructible_v<InlineCallback, OversizedCallable>,
              "captures larger than the inline buffer must not compile");
static_assert(!std::is_constructible_v<InlineCallback, OveralignedCallable>,
              "captures over-aligned beyond max_align_t must not compile");
static_assert(!std::is_copy_constructible_v<InlineCallback> &&
                  !std::is_copy_assignable_v<InlineCallback>,
              "InlineCallback is move-only");

TEST(InlineCallback, EmptyByDefaultAndAfterReset) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  int hits = 0;
  cb = InlineCallback{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb.reset();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(hits, 0);
}

TEST(InlineCallback, MoveTransfersTheClosure) {
  int hits = 0;
  InlineCallback a{[&hits] { ++hits; }};
  InlineCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, HoldsMoveOnlyCaptures) {
  auto value = std::make_unique<int>(41);
  int result = 0;
  InlineCallback cb{[value = std::move(value), &result] { result = *value + 1; }};
  cb();
  EXPECT_EQ(result, 42);
}

TEST(InlineCallback, DestroysCaptureExactlyOnce) {
  int constructed = 0;
  int destroyed = 0;
  {
    InlineCallback cb{[probe = LifeProbe{&constructed, &destroyed}] {
      (void)probe;
    }};
    InlineCallback moved{std::move(cb)};
    moved = InlineCallback{};  // move-assign over: destroys the closure
    EXPECT_EQ(constructed, destroyed);
  }
  EXPECT_GT(constructed, 0);
  EXPECT_EQ(constructed, destroyed);
}

TEST(InlineCallback, BoxedEscapeHatchForLargeClosures) {
  int hits = 0;
  OversizedCallable big;
  big.hits = &hits;
  InlineCallback cb = InlineCallback::boxed(big);
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(EventQueue, MoveOnlyCaptureRunsThroughTheArena) {
  EventQueue q;
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q.schedule(at(1), [payload = std::move(payload), &seen] { seen = *payload; });
  q.pop().second();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, CancelDestroysCapturedStateEagerly) {
  int constructed = 0;
  int destroyed = 0;
  EventQueue q;
  EventHandle h = q.schedule(
      at(1), [probe = LifeProbe{&constructed, &destroyed}] { (void)probe; });
  EXPECT_LT(destroyed, constructed);  // the scheduled copy is alive
  h.cancel();
  // Cancellation must free the capture immediately (lazy pruning only
  // applies to the heap key), so resources pinned by closures don't linger.
  EXPECT_EQ(constructed, destroyed);
}

TEST(EventQueue, ClearDestroysCapturedState) {
  int constructed = 0;
  int destroyed = 0;
  EventQueue q;
  for (int i = 0; i < 4; ++i) {
    q.schedule(at(i), [probe = LifeProbe{&constructed, &destroyed}] {
      (void)probe;
    });
  }
  q.clear();
  EXPECT_EQ(constructed, destroyed);
}

TEST(EventQueue, PopBalancesConstructionAndDestruction) {
  int constructed = 0;
  int destroyed = 0;
  EventQueue q;
  q.schedule(at(1), [probe = LifeProbe{&constructed, &destroyed}] {
    (void)probe;
  });
  {
    auto [when, action] = q.pop();
    EXPECT_EQ(when, at(1));
    action();
    EXPECT_LT(destroyed, constructed);  // closure alive while invocable
  }
  EXPECT_EQ(constructed, destroyed);
}

TEST(EventQueue, SelfRescheduleFromInsideInvocation) {
  // The closure is moved out of the arena before it runs, so an event may
  // schedule (even into its own recycled slot) from inside its invocation.
  EventQueue q;
  int fired = 0;
  struct Rearm {
    EventQueue* q;
    int* fired;
    TimePoint when;
    void operator()() const {
      if (++*fired < 5) {
        q->schedule(when + Duration::milliseconds(1), Rearm{q, fired, when});
      }
    }
  };
  q.schedule(at(1), Rearm{&q, &fired, at(1)});
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.slot_capacity(), 1u);  // the chain reused one slot
}

TEST(EventQueue, ClearThenRescheduleDoesNotAliasRecycledSlots) {
  EventQueue q;
  bool stale_ran = false;
  std::vector<EventHandle> stale;
  for (int i = 0; i < 3; ++i) {
    stale.push_back(q.schedule(at(i), [&stale_ran] { stale_ran = true; }));
  }
  q.clear();
  // The replacements recycle the cleared slots; stale handles must neither
  // report pending nor cancel the new occupants.
  int fresh_ran = 0;
  for (int i = 0; i < 3; ++i) {
    q.schedule(at(10 + i), [&fresh_ran] { ++fresh_ran; });
  }
  for (auto& h : stale) {
    EXPECT_FALSE(h.pending());
    h.cancel();
  }
  EXPECT_EQ(q.size(), 3u);
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(stale_ran);
  EXPECT_EQ(fresh_ran, 3);
  EXPECT_EQ(q.slot_capacity(), 3u);
}

TEST(EventQueue, ReservePresizesArenaWithoutChangingBehaviour) {
  EventQueue q;
  q.reserve(32);
  EXPECT_EQ(q.slot_capacity(), 32u);
  EXPECT_TRUE(q.empty());
  std::vector<int> order;
  for (int i = 9; i >= 0; --i) {
    q.schedule(at(i), [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.slot_capacity(), 32u);  // no growth past the reservation
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  q.reserve(8);  // never shrinks
  EXPECT_EQ(q.slot_capacity(), 32u);
}

TEST(EventQueue, InterleavedCancelAndPopKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(q.schedule(at(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);
    EXPECT_EQ(order[i] % 2, 1);
  }
}

}  // namespace
}  // namespace bansim::sim
