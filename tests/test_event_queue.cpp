#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.schedule(at(20), [] {});
  EventHandle early = q.schedule(at(10), [] {});
  EXPECT_EQ(q.next_time(), at(10));
  early.cancel();
  EXPECT_EQ(q.next_time(), at(20));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(at(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  auto [when, action] = q.pop();
  EXPECT_EQ(when, at(1));
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventHandle a = q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_EQ(q.size(), 1u);  // the cancelled head is pruned on observation
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(at(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ScheduledTotalCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(at(i), [] {});
  EXPECT_EQ(q.scheduled_total(), 7u);
}

TEST(EventQueue, InterleavedCancelAndPopKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(q.schedule(at(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);
    EXPECT_EQ(order[i] % 2, 1);
  }
}

}  // namespace
}  // namespace bansim::sim
