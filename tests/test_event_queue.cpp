#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.schedule(at(20), [] {});
  EventHandle early = q.schedule(at(10), [] {});
  EXPECT_EQ(q.next_time(), at(10));
  early.cancel();
  EXPECT_EQ(q.next_time(), at(20));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(at(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  auto [when, action] = q.pop();
  EXPECT_EQ(when, at(1));
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventHandle a = q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_EQ(q.size(), 1u);  // the cancelled head is pruned on observation
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(at(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ScheduledTotalCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(at(i), [] {});
  EXPECT_EQ(q.scheduled_total(), 7u);
}

TEST(EventQueue, CancelThenRescheduleReusesSlotWithoutAliasing) {
  EventQueue q;
  bool stale_ran = false;
  bool fresh_ran = false;
  EventHandle stale = q.schedule(at(1), [&] { stale_ran = true; });
  stale.cancel();
  // The replacement recycles the freed slot; the stale handle must not be
  // able to see or cancel it.
  EventHandle fresh = q.schedule(at(2), [&] { fresh_ran = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  stale.cancel();  // must be a no-op against the recycled slot
  EXPECT_TRUE(fresh.pending());
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(stale_ran);
  EXPECT_TRUE(fresh_ran);
}

TEST(EventQueue, SizeIsExactAfterMassCancellation) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(q.schedule(at(i), [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  // A survivor in the middle of the cancelled mass is still found.
  EventHandle live = q.schedule(at(50), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), at(50));
  EXPECT_TRUE(live.pending());
}

TEST(EventQueue, HandleOutlivesClear) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  q.clear();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
  // New work scheduled after the clear is unaffected by the old handle.
  EventHandle fresh = q.schedule(at(2), [] {});
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, SlotArenaRecyclesInsteadOfGrowing) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    EventHandle h = q.schedule(at(i), [] {});
    if (i % 2 == 0) {
      h.cancel();
    } else {
      q.pop().second();
    }
  }
  // Every schedule released its slot before the next one; the arena should
  // stay at its peak concurrency (1), not grow with the schedule count.
  EXPECT_EQ(q.slot_capacity(), 1u);
  EXPECT_EQ(q.scheduled_total(), 1000u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedCancelAndPopKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(q.schedule(at(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);
    EXPECT_EQ(order[i] % 2, 1);
  }
}

}  // namespace
}  // namespace bansim::sim
