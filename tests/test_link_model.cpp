#include "phy/link_model.hpp"

#include <gtest/gtest.h>

#include "core/ban_network.hpp"

namespace bansim::phy {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

LinkModel chest_and_ankle() {
  return LinkModel{{{"hip", 0.10, 0.0, 0.05},
                    {"chest", 0.0, 0.35, 0.08},
                    {"left_ankle", -0.12, -0.95, 0.0}},
                   LinkBudget{},
                   /*seed=*/5};
}

TEST(LinkModel, StandardLayoutShapes) {
  const auto layout = standard_ban_layout(5);
  ASSERT_EQ(layout.size(), 6u);
  EXPECT_EQ(layout[0].site, "hip");
  EXPECT_EQ(layout[1].site, "chest");
  EXPECT_EQ(layout[2].site, "head");
}

TEST(LinkModel, DistanceIsSymmetricAndFloored) {
  const LinkModel m = chest_and_ankle();
  EXPECT_DOUBLE_EQ(m.distance_m(0, 1), m.distance_m(1, 0));
  EXPECT_GE(m.distance_m(0, 0), m.budget().reference_distance_m);
  EXPECT_GT(m.distance_m(0, 2), m.distance_m(0, 1));
}

TEST(LinkModel, PathLossGrowsWithDistance) {
  // Shadowing makes single links noisy; compare with shadowing disabled.
  LinkBudget budget;
  budget.shadowing_sigma_db = 0.0;
  LinkModel m{standard_ban_layout(6), budget, 1};
  // hip->chest is the shortest link, hip->head is much longer.
  EXPECT_LT(m.path_loss_db(0, 1), m.path_loss_db(0, 2));
  EXPECT_LT(m.rx_power_dbm(0, 2), m.rx_power_dbm(0, 1));
}

TEST(LinkModel, ShadowingIsReciprocalAndSeeded) {
  const LinkModel a = chest_and_ankle();
  const LinkModel b = chest_and_ankle();
  EXPECT_DOUBLE_EQ(a.path_loss_db(0, 2), a.path_loss_db(2, 0));
  EXPECT_DOUBLE_EQ(a.path_loss_db(0, 2), b.path_loss_db(0, 2));
  const LinkModel c{{{"hip", 0.10, 0.0, 0.05},
                     {"chest", 0.0, 0.35, 0.08},
                     {"left_ankle", -0.12, -0.95, 0.0}},
                    LinkBudget{},
                    /*seed=*/6};
  EXPECT_NE(a.path_loss_db(0, 2), c.path_loss_db(0, 2));
}

TEST(LinkModel, BerAndPerBounds) {
  const LinkModel m = chest_and_ankle();
  for (std::size_t a = 0; a < m.num_devices(); ++a) {
    for (std::size_t b = 0; b < m.num_devices(); ++b) {
      if (a == b) continue;
      const double ber = m.bit_error_rate(a, b);
      const double per = m.frame_error_rate(a, b, 26);
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 0.5);
      EXPECT_GE(per, 0.0);
      EXPECT_LE(per, 1.0);
    }
  }
}

TEST(LinkModel, PerGrowsWithFrameLength) {
  LinkBudget budget;
  budget.tx_power_dbm = -14.0;  // weaken the worst link into the BER region
  budget.shadowing_sigma_db = 0.0;
  LinkModel m{standard_ban_layout(6), budget, 1};
  ASSERT_TRUE(m.connected(0, 6));
  const double short_frame = m.frame_error_rate(0, 6, 9);
  const double long_frame = m.frame_error_rate(0, 6, 26);
  EXPECT_GT(long_frame, short_frame);
  EXPECT_GT(long_frame, 0.0);
}

TEST(LinkModel, OutOfBudgetLinkIsDisconnected) {
  LinkBudget budget;
  budget.tx_power_dbm = -60.0;  // far below any closing budget
  budget.shadowing_sigma_db = 0.0;
  LinkModel m{standard_ban_layout(6), budget, 1};
  EXPECT_FALSE(m.connected(0, 6));
  EXPECT_DOUBLE_EQ(m.frame_error_rate(0, 6, 26), 1.0);
}

TEST(LinkModel, NominalBanBudgetClosesAllStandardLinks) {
  LinkModel m{standard_ban_layout(6), LinkBudget{}, 42};
  for (std::size_t i = 1; i <= 6; ++i) {
    EXPECT_TRUE(m.connected(0, i)) << "link hip->" << m.position(i).site;
    EXPECT_LT(m.frame_error_rate(0, i, 26), 0.05)
        << "link hip->" << m.position(i).site;
  }
}

/// Two devices exactly at the reference distance with shadowing disabled
/// and reference loss tuned so the link sits precisely at the receiver
/// sensitivity: rx = -5 - 75 = -80 dBm = sensitivity_dbm.
LinkModel at_sensitivity_link() {
  LinkBudget budget;
  budget.reference_loss_db = 75.0;
  budget.shadowing_sigma_db = 0.0;
  return LinkModel{{{"a", 0.0, 0.0, 0.0}, {"b", 0.1, 0.0, 0.0}}, budget, 1};
}

TEST(LinkModel, AtSensitivityLinkIsConnectedEdgeInclusive) {
  const LinkModel m = at_sensitivity_link();
  EXPECT_DOUBLE_EQ(m.rx_power_dbm(0, 1), m.budget().sensitivity_dbm);
  // The sensitivity definition is inclusive: exactly at the limit the
  // receiver still decodes (with the BER the noise floor implies)...
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_LT(m.frame_error_rate(0, 1, 26), 1.0);
  // ...and any transient loss at all opens the link.
  EXPECT_FALSE(m.connected(0, 1, 0.001));
  EXPECT_DOUBLE_EQ(m.frame_error_rate(0, 1, 26, 0.001), 1.0);
}

TEST(LinkModel, HandComputedBerAndFerAtSensitivity) {
  // At the sensitivity edge: SNR = -80 - (-91) = 11 dB, linear 10^1.1;
  // BER = 0.5 * exp(-10^1.1 / 2)             = 9.230988437601748e-4,
  // FER(26 bytes: 26*8 + 48 = 256 bits)      = 1 - (1-BER)^256
  //                                          = 0.21055289169122127.
  const LinkModel m = at_sensitivity_link();
  EXPECT_NEAR(m.bit_error_rate(0, 1), 9.230988437601748e-4, 1e-15);
  EXPECT_NEAR(m.frame_error_rate(0, 1, 26), 0.21055289169122127, 1e-12);
}

TEST(LinkModel, ZeroByteFrameStillRisksOverheadBits) {
  // A zero-byte frame is all preamble/address/CRC: 48 bits on the air.
  // 1 - (1-BER)^48 = 0.04336102735466363 at the sensitivity-edge BER.
  const LinkModel m = at_sensitivity_link();
  const double fer0 = m.frame_error_rate(0, 1, 0);
  EXPECT_NEAR(fer0, 0.04336102735466363, 1e-12);
  EXPECT_GT(fer0, 0.0);
  EXPECT_LT(fer0, m.frame_error_rate(0, 1, 1));  // +8 payload bits
}

TEST(LinkModel, ExtraLossMatchesEquivalentStaticPathLoss) {
  // Transient extra loss must reproduce a statically lossier link bit for
  // bit: +6 dB of fade == +6 dB of reference loss.
  LinkBudget near_budget;
  near_budget.reference_loss_db = 69.0;
  near_budget.shadowing_sigma_db = 0.0;
  const LinkModel faded{{{"a", 0.0, 0.0, 0.0}, {"b", 0.1, 0.0, 0.0}},
                        near_budget, 1};
  const LinkModel statically_lossy = at_sensitivity_link();  // 75 dB
  EXPECT_DOUBLE_EQ(faded.bit_error_rate(0, 1, 6.0),
                   statically_lossy.bit_error_rate(0, 1));
  EXPECT_DOUBLE_EQ(faded.frame_error_rate(0, 1, 26, 6.0),
                   statically_lossy.frame_error_rate(0, 1, 26));
  EXPECT_EQ(faded.connected(0, 1, 6.0), statically_lossy.connected(0, 1));
}

TEST(LinkModelIntegration, NetworkStillConvergesOnLossyChannel) {
  core::BanConfig cfg;
  cfg.num_nodes = 5;
  cfg.tdma = mac::TdmaConfig::dynamic_plan();
  cfg.app = core::AppKind::kNone;
  cfg.use_link_model = true;
  cfg.link_budget.tx_power_dbm = -12.0;  // weaker than the platform's -5
  core::BanNetwork net{cfg};
  net.start();
  EXPECT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 30_s));
}

TEST(LinkModelIntegration, WeakLinksDropFramesAndAckModeRecovers) {
  // Controlled geometry: node1 on the chest (solid link), node2 2.05 m
  // away (~-79.5 dBm received, ~10 % frame error at 26 bytes).
  const std::vector<BodyPosition> positions = {
      {"hip", 0.0, 0.0, 0.0},
      {"chest", 0.0, 0.35, 0.08},
      {"remote", 2.05, 0.0, 0.0},
  };
  auto delivered = [&](bool ack) {
    core::BanConfig cfg;
    cfg.num_nodes = 2;
    cfg.tdma = mac::TdmaConfig::static_plan(60_ms, 5);
    cfg.tdma.ack_data = ack;
    cfg.app = core::AppKind::kEcgStreaming;
    cfg.streaming.sample_rate_hz = 100;
    cfg.use_link_model = true;
    cfg.body_positions = positions;
    cfg.link_budget.shadowing_sigma_db = 0.0;
    core::BanNetwork net{cfg};
    net.start();
    if (!net.run_until_joined(500_ms, TimePoint::zero() + 30_s)) return -1.0;
    const auto sent_before = net.node(1).mac().stats().data_sent;
    const auto got_before = net.base_station_app().per_node().count(2)
                                ? net.base_station_app().per_node().at(2).packets
                                : 0;
    net.run_until(net.simulator().now() + 20_s);
    const auto sent = net.node(1).mac().stats().data_sent - sent_before;
    const auto got = net.base_station_app().per_node().at(2).packets - got_before;
    EXPECT_GT(net.channel().bit_error_drops(), 0u);
    return sent ? static_cast<double>(got) / static_cast<double>(sent) : 0.0;
  };
  const double without_ack = delivered(false);
  const double with_ack = delivered(true);
  ASSERT_GE(without_ack, 0.0);
  ASSERT_GE(with_ack, 0.0);
  EXPECT_LT(without_ack, 1.0);  // the weak link really loses frames
  // ARQ recovers goodput: unique payloads delivered per attempt ratio is
  // not directly comparable, but delivery per *sent frame* must not be
  // worse, and losses must be visible in both.
  EXPECT_GE(with_ack + 0.05, without_ack);
}

TEST(LinkModelIntegration, DisabledByDefaultNoBitErrors) {
  core::BanConfig cfg;
  cfg.num_nodes = 3;
  cfg.tdma = mac::TdmaConfig::static_plan(60_ms, 5);
  cfg.app = core::AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 105;
  core::BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 20_s));
  net.run_until(net.simulator().now() + 5_s);
  EXPECT_EQ(net.channel().bit_error_drops(), 0u);
}

}  // namespace
}  // namespace bansim::phy
