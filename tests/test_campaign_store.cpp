// Campaign store edge cases: the malformed-file taxonomy (empty store,
// header-only segment, torn final record, mid-file corruption, version
// mismatch) and the duplicate-record resolution rule (last-writer-wins by
// generation and file order).  Everything here works on hand-built or
// hand-damaged segment files — no simulation runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/report.hpp"
#include "campaign/shard_runner.hpp"
#include "campaign/store.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bansim;
using campaign::RecordType;

class CampaignStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("store_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A small synthetic shard result (no simulation involved).
  static campaign::ShardResult make_result(std::uint64_t shard,
                                           double salt = 0.0) {
    campaign::ShardResult result;
    result.shard = shard;
    for (std::uint64_t i = 0; i < 3; ++i) {
      energy::CampaignRunRow row;
      row.seed = shard * 100 + i;
      row.total_mj = 31.25 + static_cast<double>(i) + salt;
      row.radio_mj = 11.5 + salt;
      row.mcu_mj = 15.125;
      row.asic_mj = row.total_mj - row.radio_mj - row.mcu_mj;
      row.lifetime_hours =
          i == 2 ? std::numeric_limits<double>::infinity() : 48.5 + salt;
      row.join_ms = 101.5;
      row.data_packets = 400 + i;
      row.delivered_packets = 399;
      row.joined = true;
      result.rows.push_back(row);
    }
    return result;
  }

  fs::path dir_;
};

TEST_F(CampaignStoreTest, EmptyStoreScansEmpty) {
  // No segments/ directory at all: a created-but-never-run campaign.
  const campaign::StoreScan scan = campaign::scan_store(dir_);
  EXPECT_TRUE(scan.segments.empty());
  EXPECT_EQ(scan.total_records(), 0U);
  EXPECT_EQ(campaign::max_generation(dir_), 0U);

  // An existing but empty segments/ scans the same way.
  fs::create_directories(campaign::segments_dir(dir_));
  EXPECT_TRUE(campaign::scan_store(dir_).segments.empty());
  EXPECT_TRUE(campaign::collect_results(dir_).by_shard.empty());
}

TEST_F(CampaignStoreTest, HeaderOnlySegmentIsValidAndEmpty) {
  { campaign::SegmentWriter writer(dir_, {1, 0}); }  // header, no records
  const campaign::StoreScan scan = campaign::scan_store(dir_);
  ASSERT_EQ(scan.segments.size(), 1U);
  EXPECT_TRUE(scan.segments[0].tail_error.empty());
  EXPECT_TRUE(scan.segments[0].records.empty());
  EXPECT_EQ(scan.segments[0].id.generation, 1U);
  EXPECT_EQ(scan.segments[0].valid_bytes, scan.segments[0].file_bytes);
  EXPECT_EQ(campaign::max_generation(dir_), 1U);
}

TEST_F(CampaignStoreTest, RecordRoundTripIsBitExact) {
  const campaign::ShardResult original = make_result(7);
  {
    campaign::SegmentWriter writer(dir_, {1, 0});
    writer.append(RecordType::kShardResult,
                  campaign::encode_shard_result(original));
  }
  const campaign::StoreScan scan = campaign::scan_store(dir_);
  ASSERT_EQ(scan.total_records(), 1U);
  const campaign::ShardResult decoded =
      campaign::decode_shard_result(scan.segments[0].records[0].payload);
  EXPECT_TRUE(decoded == original);  // exact doubles, inf included
}

TEST_F(CampaignStoreTest, TornFinalRecordKeepsThePrefix) {
  {
    campaign::SegmentWriter writer(dir_, {1, 0});
    writer.append(RecordType::kShardResult,
                  campaign::encode_shard_result(make_result(0)));
    writer.append(RecordType::kShardResult,
                  campaign::encode_shard_result(make_result(1)));
    // The final record stops halfway through its payload, as a SIGKILL
    // mid-write leaves it.
    writer.append_torn(RecordType::kShardResult,
                       campaign::encode_shard_result(make_result(2)), 40);
  }
  const campaign::SegmentScan scan =
      campaign::scan_segment(campaign::segments_dir(dir_) / "gen1-w0.seg");
  ASSERT_EQ(scan.records.size(), 2U);
  EXPECT_FALSE(scan.tail_error.empty());
  EXPECT_LT(scan.valid_bytes, scan.file_bytes);
  // The two complete records are untouched by the tear.
  EXPECT_EQ(campaign::decode_shard_result(scan.records[1].payload).shard, 1U);
}

TEST_F(CampaignStoreTest, MidFileCorruptionHidesEverythingAfter) {
  fs::path seg_path;
  {
    campaign::SegmentWriter writer(dir_, {1, 0});
    for (std::uint64_t s = 0; s < 4; ++s) {
      writer.append(RecordType::kShardResult,
                    campaign::encode_shard_result(make_result(s)));
    }
    seg_path = writer.path();
  }
  const campaign::SegmentScan before = campaign::scan_segment(seg_path);
  ASSERT_EQ(before.records.size(), 4U);

  // Flip one bit inside record 1's payload region.
  std::fstream file(seg_path,
                    std::ios::binary | std::ios::in | std::ios::out);
  const std::streamoff offset = 24 /* header */ +
                                static_cast<std::streamoff>(
                                    12 + before.records[0].payload.size()) +
                                20;  // a byte inside record 1
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(offset);
  file.write(&byte, 1);
  file.close();

  const campaign::SegmentScan after = campaign::scan_segment(seg_path);
  // Scan-prefix semantics: record 0 survives, records 1..3 are invisible.
  EXPECT_EQ(after.records.size(), 1U);
  EXPECT_NE(after.tail_error.find("CRC"), std::string::npos);
}

TEST_F(CampaignStoreTest, VersionMismatchIsAHardError) {
  // Hand-build a header identical to the real one except version 99 (with
  // a correct header CRC, so it is unambiguously a version problem).
  std::vector<std::uint8_t> header;
  for (char c : {'B', 'A', 'N', 'S', 'E', 'G', '0', '1'}) {
    header.push_back(static_cast<std::uint8_t>(c));
  }
  const auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      header.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
    }
  };
  put_u32(99);  // format version from the future
  put_u32(1);   // generation
  put_u32(0);   // worker
  put_u32(campaign::crc32(header.data(), header.size()));

  fs::create_directories(campaign::segments_dir(dir_));
  const fs::path seg_path = campaign::segments_dir(dir_) / "gen1-w0.seg";
  std::ofstream(seg_path, std::ios::binary)
      .write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));

  EXPECT_THROW((void)campaign::scan_segment(seg_path), campaign::StoreError);
  EXPECT_THROW((void)campaign::scan_store(dir_), campaign::StoreError);
}

TEST_F(CampaignStoreTest, CorruptedHeaderIsTornNotVersionError) {
  // Bad magic / short header must scan as a torn segment (zero records),
  // not a hard error: a worker killed mid-header-write leaves exactly this.
  fs::create_directories(campaign::segments_dir(dir_));
  const fs::path short_path = campaign::segments_dir(dir_) / "gen1-w0.seg";
  std::ofstream(short_path, std::ios::binary).write("BANSEG", 6);
  const campaign::SegmentScan short_scan = campaign::scan_segment(short_path);
  EXPECT_TRUE(short_scan.records.empty());
  EXPECT_NE(short_scan.tail_error.find("short header"), std::string::npos);

  const fs::path magic_path = campaign::segments_dir(dir_) / "gen1-w1.seg";
  std::ofstream(magic_path, std::ios::binary)
      .write("NOTASEGMENT_AT_ALL_HERE!", 24);
  const campaign::SegmentScan magic_scan = campaign::scan_segment(magic_path);
  EXPECT_TRUE(magic_scan.records.empty());
  EXPECT_NE(magic_scan.tail_error.find("bad magic"), std::string::npos);
}

TEST_F(CampaignStoreTest, DuplicateShardRecordsResolveLastWriterWins) {
  // Shard 3 written three times: twice in generation 1 (file order decides)
  // and once in generation 2 (generation order decides) — exactly what a
  // double-resume over a flaky store produces.
  {
    campaign::SegmentWriter gen1(dir_, {1, 0});
    gen1.append(RecordType::kShardResult,
                campaign::encode_shard_result(make_result(3, 0.125)));
    gen1.append(RecordType::kShardResult,
                campaign::encode_shard_result(make_result(3, 0.25)));
  }
  const campaign::CollectedResults within_file = campaign::collect_results(dir_);
  ASSERT_EQ(within_file.by_shard.size(), 1U);
  EXPECT_EQ(within_file.duplicates, 1U);
  EXPECT_EQ(within_file.by_shard.at(3).rows[0].total_mj, 31.25 + 0.25);

  {
    campaign::SegmentWriter gen2(dir_, {2, 0});
    gen2.append(RecordType::kShardResult,
                campaign::encode_shard_result(make_result(3, 0.5)));
  }
  const campaign::CollectedResults across_gens = campaign::collect_results(dir_);
  ASSERT_EQ(across_gens.by_shard.size(), 1U);
  EXPECT_EQ(across_gens.duplicates, 2U);
  EXPECT_EQ(across_gens.by_shard.at(3).rows[0].total_mj, 31.25 + 0.5);
  EXPECT_EQ(campaign::max_generation(dir_), 2U);
}

TEST_F(CampaignStoreTest, CheckpointRoundTripAndCrossCheck) {
  const campaign::Checkpoint checkpoint{5, 42};
  const campaign::Checkpoint back =
      campaign::decode_checkpoint(campaign::encode_checkpoint(checkpoint));
  EXPECT_TRUE(back == checkpoint);
  EXPECT_THROW((void)campaign::decode_checkpoint({1, 2, 3}),
               campaign::StoreError);
}

TEST_F(CampaignStoreTest, WriterRefusesToReuseASegmentFile) {
  { campaign::SegmentWriter writer(dir_, {1, 0}); }
  // Same (generation, worker) again: O_EXCL refuses — a second writer may
  // never append to (or truncate) a prior run's segment.
  EXPECT_THROW(campaign::SegmentWriter(dir_, {1, 0}), campaign::StoreError);
}

TEST_F(CampaignStoreTest, ManifestRoundTripAndTamperDetection) {
  campaign::CampaignSpec spec;
  spec.patients = 10;
  spec.shard_size = 4;
  spec.protocols = {mac::Protocol::kCsmaCa, mac::Protocol::kAloha};
  spec.seeds = {7, 11};
  spec.fault_modes = {false, true};
  spec.motion = true;
  spec.measure = sim::Duration::milliseconds(1500);
  core::BanConfig base;
  base.num_nodes = 3;
  base.tdma = mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 3);

  const fs::path campaign_dir = dir_ / "campaign";
  campaign::write_campaign(campaign_dir, spec, base);
  const campaign::LoadedCampaign loaded = campaign::load_campaign(campaign_dir);
  EXPECT_EQ(loaded.spec.patients, 10U);
  EXPECT_EQ(loaded.spec.shard_size, 4U);
  ASSERT_EQ(loaded.spec.protocols.size(), 2U);
  EXPECT_EQ(loaded.spec.protocols[1], mac::Protocol::kAloha);
  EXPECT_EQ(loaded.spec.seeds, (std::vector<std::uint64_t>{7, 11}));
  EXPECT_EQ(loaded.spec.fault_modes, (std::vector<bool>{false, true}));
  EXPECT_TRUE(loaded.spec.motion);
  EXPECT_EQ(loaded.spec.measure, sim::Duration::milliseconds(1500));
  EXPECT_EQ(loaded.base.effective_nodes(), 3U);

  // The shard plan is a pure function of the loaded spec: 10 patients in
  // shards of 4 -> 3 shards per variant x 8 variants, variant-major.
  const auto shards = campaign::plan_shards(loaded.spec);
  ASSERT_EQ(shards.size(), 24U);
  EXPECT_EQ(shards[2].count, 2U);  // 4 + 4 + 2
  EXPECT_EQ(shards[23].variant, 7U);

  // Re-creating over an existing manifest is refused.
  EXPECT_THROW(campaign::write_campaign(campaign_dir, spec, base),
               campaign::StoreError);

  // Hand-editing base_config.ini breaks the manifest fingerprint.
  std::ofstream(campaign_dir / "base_config.ini", std::ios::app)
      << "\n# tampered\n";
  EXPECT_THROW((void)campaign::load_campaign(campaign_dir),
               campaign::StoreError);
}

TEST_F(CampaignStoreTest, QuarantineRecordRoundTripAndDecodeErrors) {
  campaign::QuarantineRecord record;
  record.shard = 42;
  record.attempts = 3;
  record.reason = campaign::QuarantineRecord::Reason::kHang;
  const std::vector<std::uint8_t> payload =
      campaign::encode_quarantine(record);
  EXPECT_EQ(payload.size(), 14U);  // u64 shard + u32 attempts + u16 reason
  EXPECT_TRUE(campaign::decode_quarantine(payload) == record);

  // Truncation and trailing garbage are hard decode errors.
  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_THROW((void)campaign::decode_quarantine(truncated),
               campaign::StoreError);
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_THROW((void)campaign::decode_quarantine(padded),
               campaign::StoreError);

  // An unknown reason value (a record from a future writer) must refuse
  // to decode rather than alias onto a known reason.
  std::vector<std::uint8_t> future = payload;
  future[12] = 0x7F;
  EXPECT_THROW((void)campaign::decode_quarantine(future),
               campaign::StoreError);

  EXPECT_STREQ(campaign::to_string(campaign::QuarantineRecord::Reason::kHang),
               "hang");
  EXPECT_STREQ(campaign::to_string(campaign::QuarantineRecord::Reason::kCrash),
               "crash");
}

TEST_F(CampaignStoreTest, CollectResultsLetsShardDataBeatQuarantine) {
  // A quarantine marker and a real result for the same shard (a resume
  // with a raised retry budget finally landed the data): the result wins.
  // A quarantine with no result stays a quarantine.
  {
    campaign::SegmentWriter writer(dir_, {1, 0});
    campaign::QuarantineRecord q3;
    q3.shard = 3;
    q3.attempts = 2;
    q3.reason = campaign::QuarantineRecord::Reason::kCrash;
    writer.append(RecordType::kQuarantine, campaign::encode_quarantine(q3));
    campaign::QuarantineRecord q5 = q3;
    q5.shard = 5;
    writer.append(RecordType::kQuarantine, campaign::encode_quarantine(q5));
  }
  {
    campaign::SegmentWriter writer(dir_, {2, 0});
    writer.append(RecordType::kShardResult,
                  campaign::encode_shard_result(make_result(3)));
  }
  const campaign::CollectedResults collected = campaign::collect_results(dir_);
  EXPECT_EQ(collected.by_shard.count(3), 1U);
  EXPECT_EQ(collected.quarantined.count(3), 0U);
  ASSERT_EQ(collected.quarantined.size(), 1U);
  EXPECT_EQ(collected.quarantined.at(5).attempts, 2U);
}

TEST_F(CampaignStoreTest, ManifestWorkerHealthKnobsRoundTrip) {
  campaign::CampaignSpec spec;
  spec.patients = 4;
  spec.shard_size = 2;
  spec.retry_budget = 5;
  spec.deadline_floor_ms = 750;
  spec.deadline_ceiling_ms = 90000;
  spec.deadline_factor = 2.5;
  core::BanConfig base;
  base.num_nodes = 2;
  base.tdma = mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 2);
  const fs::path campaign_dir = dir_ / "campaign";
  campaign::write_campaign(campaign_dir, spec, base);
  const campaign::LoadedCampaign loaded = campaign::load_campaign(campaign_dir);
  EXPECT_EQ(loaded.spec.retry_budget, 5U);
  EXPECT_EQ(loaded.spec.deadline_floor_ms, 750U);
  EXPECT_EQ(loaded.spec.deadline_ceiling_ms, 90000U);
  EXPECT_EQ(loaded.spec.deadline_factor, 2.5);  // exact round-trip

  // A pre-watchdog manifest (no worker-health keys at all) loads with the
  // library defaults — old stores stay readable.
  std::ifstream in(campaign_dir / "manifest.ini");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::istringstream lines(text);
  std::string line;
  std::string stripped;
  while (std::getline(lines, line)) {
    if (line.rfind("retry_budget", 0) == 0 ||
        line.rfind("deadline_", 0) == 0) {
      continue;
    }
    stripped += line + "\n";
  }
  std::ofstream(campaign_dir / "manifest.ini", std::ios::trunc) << stripped;
  const campaign::LoadedCampaign legacy = campaign::load_campaign(campaign_dir);
  EXPECT_EQ(legacy.spec.retry_budget, campaign::CampaignSpec{}.retry_budget);
  EXPECT_EQ(legacy.spec.deadline_floor_ms,
            campaign::CampaignSpec{}.deadline_floor_ms);
  EXPECT_EQ(legacy.spec.deadline_ceiling_ms,
            campaign::CampaignSpec{}.deadline_ceiling_ms);
  EXPECT_EQ(legacy.spec.deadline_factor,
            campaign::CampaignSpec{}.deadline_factor);
}

TEST_F(CampaignStoreTest, ManifestRejectsBadWorkerHealthKnobs) {
  core::BanConfig base;
  base.num_nodes = 2;
  base.tdma = mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 2);

  campaign::CampaignSpec spec;
  spec.retry_budget = 0;
  EXPECT_THROW(campaign::write_campaign(dir_ / "a", spec, base),
               campaign::StoreError);
  spec = {};
  spec.deadline_ceiling_ms = spec.deadline_floor_ms - 1;
  EXPECT_THROW(campaign::write_campaign(dir_ / "b", spec, base),
               campaign::StoreError);
  spec = {};
  spec.deadline_factor = 0.5;
  EXPECT_THROW(campaign::write_campaign(dir_ / "c", spec, base),
               campaign::StoreError);
}

TEST_F(CampaignStoreTest, ManifestRejectsUnknownKeysAndBadVersions) {
  campaign::CampaignSpec spec;
  spec.patients = 4;
  spec.shard_size = 2;
  core::BanConfig base;
  base.num_nodes = 2;
  base.tdma = mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 2);
  const fs::path campaign_dir = dir_ / "campaign";
  campaign::write_campaign(campaign_dir, spec, base);

  // Unknown key: hard error (typos must not silently become defaults).
  {
    std::ofstream(campaign_dir / "manifest.ini", std::ios::app)
        << "shardsize = 9\n";
    EXPECT_THROW((void)campaign::load_campaign(campaign_dir),
                 campaign::StoreError);
  }

  // Version from the future: hard error before anything else is parsed.
  fs::remove_all(campaign_dir);
  campaign::write_campaign(campaign_dir, spec, base);
  {
    std::ifstream in(campaign_dir / "manifest.ini");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const auto pos = text.find("format = 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 10, "format = 9");
    std::ofstream(campaign_dir / "manifest.ini", std::ios::trunc) << text;
    EXPECT_THROW((void)campaign::load_campaign(campaign_dir),
                 campaign::StoreError);
  }
}

}  // namespace
