// bansim_check: invariant-monitor + differential-fuzz driver.
//
// Default mode runs a batch of seeded random scenarios (see
// check::ScenarioFuzzer) and exits non-zero if any seed violates an
// invariant or a differential oracle; every failure prints its seed, the
// failing oracle and a minimized config_io INI, plus the exact replay
// command.  `--seed S` replays one seed verbosely.
//
//   bansim_check [--seeds N] [--start S] [--seed S] [--jobs N]
//                [--measure-ms M] [--no-shrink] [--dump-failures DIR]
//
// `--dump-failures DIR` additionally writes each failing case as a
// standalone replayable INI (`DIR/seed_<S>.ini`, minimized config plus the
// failure and replay command as comments) — CI uploads that directory as
// an artifact so a red fuzz run ships its repro.
//
// The `fuzz_smoke` ctest target runs `bansim_check --seeds 200 --jobs 0`.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "check/scenario_fuzzer.hpp"
#include "core/config_io.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start S] [--seed S] [--jobs N]\n"
               "          [--measure-ms M] [--no-shrink] "
               "[--dump-failures DIR]\n",
               argv0);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

void print_failure(const bansim::check::CaseOutcome& outcome,
                   const char* argv0) {
  std::printf("FAIL seed %llu\n%s\n",
              static_cast<unsigned long long>(outcome.seed),
              outcome.failure.c_str());
  std::printf("minimized config:\n%s\n", outcome.config_ini.c_str());
  std::printf("replay: %s --seed %llu\n\n", argv0,
              static_cast<unsigned long long>(outcome.seed));
}

/// Writes one failing case as DIR/seed_<S>.ini: the minimized config with
/// the failure and replay command up top as INI comments, so the artifact
/// is both human-readable and directly loadable through parse_config.
void dump_failure(const std::string& dir,
                  const bansim::check::CaseOutcome& outcome,
                  const char* argv0) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path =
      dir + "/seed_" + std::to_string(outcome.seed) + ".ini";
  std::ofstream file{path};
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  file << "; bansim_check fuzz failure, seed " << outcome.seed << "\n";
  file << "; replay: " << argv0 << " --seed " << outcome.seed << "\n";
  std::istringstream failure{outcome.failure};
  for (std::string line; std::getline(failure, line);) {
    file << "; " << line << "\n";
  }
  file << outcome.config_ini;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bansim::check::FuzzOptions options;
  options.jobs = 1;
  bool single_seed = false;
  std::uint64_t replay_seed = 0;
  std::optional<std::string> dump_dir;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](std::uint64_t& out) {
      if (i + 1 >= argc || !parse_u64(argv[++i], out)) {
        std::fprintf(stderr, "bad value for %s\n", arg);
        usage(argv[0]);
        std::exit(2);
      }
    };
    std::uint64_t v = 0;
    if (std::strcmp(arg, "--seeds") == 0) {
      value(v);
      options.num_seeds = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--start") == 0) {
      value(v);
      options.start_seed = v;
    } else if (std::strcmp(arg, "--seed") == 0) {
      value(v);
      single_seed = true;
      replay_seed = v;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      value(v);
      options.jobs = static_cast<unsigned>(v);
    } else if (std::strcmp(arg, "--measure-ms") == 0) {
      value(v);
      options.measure =
          bansim::sim::Duration::milliseconds(static_cast<std::int64_t>(v));
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(arg, "--dump-failures") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bad value for %s\n", arg);
        usage(argv[0]);
        return 2;
      }
      dump_dir = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      usage(argv[0]);
      return 2;
    }
  }

  const bansim::check::ScenarioFuzzer fuzzer{options};

  if (single_seed) {
    std::printf("replaying seed %llu:\n%s\n",
                static_cast<unsigned long long>(replay_seed),
                bansim::core::serialize_config(
                    bansim::check::make_fuzz_config(replay_seed))
                    .c_str());
    const auto outcome = fuzzer.run_case(replay_seed);
    if (!outcome.ok) {
      print_failure(outcome, argv[0]);
      if (dump_dir) dump_failure(*dump_dir, outcome, argv[0]);
      return 1;
    }
    std::printf("seed %llu: OK (all invariants + oracles)\n",
                static_cast<unsigned long long>(replay_seed));
    return 0;
  }

  const auto summary = fuzzer.run();
  for (const auto& outcome : summary.failed) {
    print_failure(outcome, argv[0]);
    if (dump_dir) dump_failure(*dump_dir, outcome, argv[0]);
  }
  if (!summary.parallel_oracle_ok) {
    std::printf("FAIL %s\n", summary.parallel_oracle_detail.c_str());
  }
  if (!summary.shard_resume_oracle_ok) {
    std::printf("FAIL %s\n", summary.shard_resume_oracle_detail.c_str());
  }
  std::printf("fuzz: %zu case(s) from seed %llu, %zu failure(s), "
              "parallel oracle %s, shard-resume oracle %s\n",
              summary.cases_run,
              static_cast<unsigned long long>(options.start_seed),
              summary.failures, summary.parallel_oracle_ok ? "ok" : "FAILED",
              summary.shard_resume_oracle_ok ? "ok" : "FAILED");
  return summary.ok() ? 0 : 1;
}
