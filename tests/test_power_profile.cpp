#include "core/power_profile.hpp"

#include <gtest/gtest.h>

#include "core/paper_experiments.hpp"

namespace bansim::core {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct ProfileFixture : ::testing::Test {
  std::unique_ptr<BanNetwork> network;

  void make(int cycle_ms) {
    PaperSetup setup;
    BanConfig cfg = streaming_static_config(
        setup, Duration::milliseconds(cycle_ms));
    cfg.num_nodes = 2;
    network = std::make_unique<BanNetwork>(cfg);
    network->start();
    ASSERT_TRUE(network->run_until_joined(500_ms, TimePoint::zero() + 30_s));
  }
};

TEST_F(ProfileFixture, ShowsSleepFloorAndRadioPeaks) {
  make(60);
  PowerProfileOptions options;
  options.window = 200_ms;
  const energy::PowerTrace trace =
      capture_power_profile(*network, 0, options);
  ASSERT_GT(trace.size(), 1000u);

  // Sleep floor: LPM1 only = 0.66 mA * 2.8 V = 1.85 mW (plus radio standby).
  double floor = 1e9, peak = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    floor = std::min(floor, trace.watts_at(i));
    peak = std::max(peak, trace.watts_at(i));
  }
  EXPECT_NEAR(floor, 0.66e-3 * 2.8, 0.5e-3);
  // Beacon listen: RX current dominates -> > 60 mW incl. the active MCU.
  EXPECT_GT(peak, 60e-3);
  EXPECT_LT(peak, 90e-3);
}

TEST_F(ProfileFixture, PeaksRecurAtCycleCadence) {
  make(60);
  PowerProfileOptions options;
  options.window = 240_ms;
  const energy::PowerTrace trace =
      capture_power_profile(*network, 0, options);

  // Count rising crossings of a 60 mW threshold — above the TX burst
  // (~55 mW) but below the RX listen plateau (~70 mW): one listen window
  // per 60 ms cycle -> 4 in 240 ms.
  int crossings = 0;
  bool above = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const bool now_above = trace.watts_at(i) > 60e-3;
    if (now_above && !above) ++crossings;
    above = now_above;
  }
  EXPECT_NEAR(crossings, 4, 1);
}

TEST_F(ProfileFixture, EnergyIntegralMatchesMeters) {
  make(60);
  auto& board = network->node(0).board();
  const sim::TimePoint t0 = network->simulator().now();
  const double before = board.mcu().meter().total_energy(t0) +
                        board.radio().meter().total_energy(t0);
  PowerProfileOptions options;
  options.window = 120_ms;
  const energy::PowerTrace trace =
      capture_power_profile(*network, 0, options);
  const sim::TimePoint t1 = network->simulator().now();
  const double after = board.mcu().meter().total_energy(t1) +
                       board.radio().meter().total_energy(t1);
  EXPECT_NEAR(trace.energy(t0, t1), after - before, 1e-6);
}

TEST_F(ProfileFixture, AsicOptionLiftsTheFloor) {
  make(60);
  PowerProfileOptions options;
  options.window = 50_ms;
  options.include_asic = true;
  const energy::PowerTrace trace =
      capture_power_profile(*network, 0, options);
  double floor = 1e9;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    floor = std::min(floor, trace.watts_at(i));
  }
  EXPECT_GT(floor, 10e-3);  // the constant 10.5 mW front-end
}

}  // namespace
}  // namespace bansim::core
