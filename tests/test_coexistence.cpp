// Co-located BAN coexistence: two independent cells on one channel.
#include "core/multi_ban.hpp"

#include <gtest/gtest.h>

namespace bansim::core {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

BanConfig cell_config(std::uint8_t pan, net::NodeId offset, int cycle_ms,
                      std::size_t nodes = 3) {
  BanConfig cfg;
  cfg.num_nodes = nodes;
  cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(cycle_ms), 5);
  cfg.tdma.pan_id = pan;
  cfg.address_offset = offset;
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 6000.0 / cycle_ms;
  cfg.seed = 77 + pan;
  return cfg;
}

TEST(Coexistence, TwoCellsFormIndependently) {
  MultiBan net{{cell_config(1, 0, 30), cell_config(2, 100, 60)}};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  EXPECT_EQ(net.base_station_mac(0).joined_nodes(), 3u);
  EXPECT_EQ(net.base_station_mac(1).joined_nodes(), 3u);
  EXPECT_EQ(net.base_station_mac(0).current_cycle(), 30_ms);
  EXPECT_EQ(net.base_station_mac(1).current_cycle(), 60_ms);
}

TEST(Coexistence, NoCrossDelivery) {
  MultiBan net{{cell_config(1, 0, 30), cell_config(2, 100, 60)}};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  net.run_until(net.simulator().now() + 10_s);

  // Each base station only ever hears its own address range.
  for (const auto& [src, traffic] : net.base_station_app(0).per_node()) {
    EXPECT_GE(src, 1);
    EXPECT_LE(src, 3);
  }
  for (const auto& [src, traffic] : net.base_station_app(1).per_node()) {
    EXPECT_GE(src, 101);
    EXPECT_LE(src, 103);
  }
  EXPECT_GT(net.base_station_app(0).total_packets(), 100u);
  EXPECT_GT(net.base_station_app(1).total_packets(), 100u);
}

TEST(Coexistence, ForeignBeaconsAreHeardAndIgnored) {
  MultiBan net{{cell_config(1, 0, 30), cell_config(2, 100, 60)}};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  net.run_until(net.simulator().now() + 10_s);

  // During search/guard windows a node inevitably overhears the other
  // cell's broadcast beacons; the PAN filter must have dropped them.
  std::uint64_t foreign = 0;
  for (std::size_t cell = 0; cell < 2; ++cell) {
    for (std::size_t i = 0; i < net.num_nodes(cell); ++i) {
      foreign += net.node(cell, i).mac().stats().foreign_beacons;
      EXPECT_TRUE(net.node(cell, i).mac().joined());
    }
  }
  EXPECT_GT(foreign, 0u);
}

TEST(Coexistence, InterferenceCostsEnergyButNotCorrectness) {
  // Same cell alone vs next to a neighbour: collisions between the
  // unsynchronized cells force beacon losses and dead reckoning, but both
  // networks keep streaming.
  BanConfig solo_cfg = cell_config(1, 0, 30);
  BanNetwork solo{solo_cfg};
  solo.start();
  ASSERT_TRUE(solo.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  const TimePoint solo_t0 = solo.simulator().now();
  const auto solo_before = solo.base_station_app().total_packets();
  solo.run_until(solo_t0 + 10_s);
  const auto solo_packets =
      solo.base_station_app().total_packets() - solo_before;

  MultiBan pair{{cell_config(1, 0, 30), cell_config(2, 100, 60)}};
  pair.start();
  ASSERT_TRUE(pair.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  const TimePoint pair_t0 = pair.simulator().now();
  const auto pair_before = pair.base_station_app(0).total_packets();
  pair.run_until(pair_t0 + 10_s);
  const auto pair_packets =
      pair.base_station_app(0).total_packets() - pair_before;

  // The interfered cell delivers at least 80 % of its solo throughput.
  EXPECT_GT(pair.channel().collisions(), 0u);
  EXPECT_GT(static_cast<double>(pair_packets),
            0.80 * static_cast<double>(solo_packets));

  // And beacon losses occurred but dead reckoning absorbed them: nobody
  // fell back to a full resync after the join phase.
  std::uint64_t missed = 0;
  for (std::size_t i = 0; i < pair.num_nodes(0); ++i) {
    missed += pair.node(0, i).mac().stats().beacons_missed;
  }
  EXPECT_GT(missed, 0u);
}

TEST(Coexistence, ThreeCellsStillConverge) {
  MultiBan net{{cell_config(1, 0, 30, 2), cell_config(2, 100, 40, 2),
                cell_config(3, 200, 60, 2)}};
  net.start();
  EXPECT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 40_s));
  for (std::size_t cell = 0; cell < 3; ++cell) {
    EXPECT_EQ(net.base_station_mac(cell).joined_nodes(), 2u);
  }
}

}  // namespace
}  // namespace bansim::core
