// Extended MSP430 coverage: addressing-mode corners, byte-mode format-II
// operations, absolute addressing, stack discipline and program patterns.
#include <gtest/gtest.h>

#include "isa/msp430_asm.hpp"
#include "isa/msp430_core.hpp"

namespace bansim::isa {
namespace {

struct Machine {
  Msp430Core core;
  Msp430Assembler assembler;

  StepResult run(const std::string& source, std::uint64_t max = 100000) {
    core.reset();
    core.load(0x4000, assembler.assemble(source));
    core.set_reg(kSp, 0x3FFE);
    return core.run(max);
  }
  [[nodiscard]] std::uint16_t r(int reg) const { return core.reg(reg); }
};

TEST(Msp430Ext, AbsoluteAddressingBothDirections) {
  Machine m;
  m.run(R"(
    mov #0x5A5A, &0x0220
    mov &0x0220, r7
    bis #0x10, sr
  )");
  EXPECT_EQ(m.core.read16(0x0220), 0x5A5A);
  EXPECT_EQ(m.r(7), 0x5A5A);
}

TEST(Msp430Ext, NegativeIndexedOffset) {
  Machine m;
  m.run(R"(
    mov #0x0210, r4
    mov #0xBEAD, -4(r4)
    mov -4(r4), r5
    bis #0x10, sr
  )");
  EXPECT_EQ(m.core.read16(0x020C), 0xBEAD);
  EXPECT_EQ(m.r(5), 0xBEAD);
}

TEST(Msp430Ext, PushImmediateAndIndirect) {
  Machine m;
  m.run(R"(
    push #0x1234
    mov #0x0200, r4
    mov #0x5678, 0(r4)
    push @r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.core.read16(0x3FFC), 0x1234);
  EXPECT_EQ(m.core.read16(0x3FFA), 0x5678);
  EXPECT_EQ(m.core.sp(), 0x3FFA);
}

TEST(Msp430Ext, CallThroughRegister) {
  Machine m;
  m.run(R"(
    mov #target, r10
    call r10
    bis #0x10, sr
  target:
    mov #0x77, r4
    ret
  )");
  EXPECT_EQ(m.r(4), 0x77);
  EXPECT_EQ(m.core.sp(), 0x3FFE);
}

TEST(Msp430Ext, ByteRrcAndRra) {
  Machine m;
  m.run(R"(
    bic #1, sr
    mov #0x00FF, r4
    rra.b r4
    bis #0x10, sr
  )");
  // Byte RRA of 0xFF: sign (bit 7) preserved -> 0xFF, C = 1.
  EXPECT_EQ(m.r(4), 0x00FF);
  EXPECT_TRUE(m.core.flag(kSrC));

  m.run(R"(
    bis #1, sr
    mov #0x0000, r4
    rrc.b r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0x0080);  // carry enters bit 7 in byte mode
}

TEST(Msp430Ext, SwpbOnMemoryOperand) {
  Machine m;
  m.run(R"(
    mov #0xCAFE, &0x0230
    mov #0x0230, r4
    swpb @r4
    bis #0x10, sr
  )");
  // Format-II @Rn reads through the register; the result is written back
  // to the memory operand.
  EXPECT_EQ(m.core.read16(0x0230), 0xFECA);
}

TEST(Msp430Ext, CmpByteSetsFlagsOnLowByteOnly) {
  Machine m;
  m.run(R"(
    mov #0x12FF, r4
    cmp.b #0xFF, r4
    bis #0x10, sr
  )");
  EXPECT_TRUE(m.core.flag(kSrZ));  // low bytes equal despite 0x12 high byte
}

TEST(Msp430Ext, JnTakesOnNegative) {
  Machine m;
  m.run(R"(
    mov #1, r5
    sub #2, r5      ; -1: N set
    jn neg
    mov #0, r6
    jmp done
  neg:
    mov #1, r6
  done:
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(6), 1);
}

TEST(Msp430Ext, JcJncFollowCarry) {
  Machine m;
  m.run(R"(
    mov #0xFFFF, r4
    add #1, r4      ; carry out
    jc carried
    mov #0, r6
    jmp done
  carried:
    mov #1, r6
  done:
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(6), 1);
}

TEST(Msp430Ext, StackedSubroutines) {
  Machine m;
  m.run(R"(
    mov #3, r4
    call #outer
    bis #0x10, sr
  outer:
    push r4
    call #inner
    mov @sp+, r7
    ret
  inner:
    add r4, r4
    ret
  )");
  EXPECT_EQ(m.r(4), 6);
  EXPECT_EQ(m.r(7), 3);
  EXPECT_EQ(m.core.sp(), 0x3FFE);
}

TEST(Msp430Ext, MovToPcActsAsBranch) {
  Machine m;
  m.run(R"(
    mov #skip, r10
    mov r10, pc
    mov #1, r4      ; never executed
  skip:
    mov #2, r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 2);
}

TEST(Msp430Ext, StringReverseProgram) {
  // Reverse 6 words in place with two pointers: exercises indexed loads,
  // stores and signed comparison.
  Machine m;
  m.run(R"(
    mov #data, r4      ; left
    mov #data, r5
    add #10, r5        ; right = &data[5]
  loop:
    cmp r5, r4
    jhs done           ; left >= right (unsigned address compare)
    mov @r4, r6
    mov @r5, 0(r4)
    mov r6, 0(r5)
    add #2, r4
    sub #2, r5
    jmp loop
  done:
    bis #0x10, sr
  data:
    .word 1, 2, 3, 4, 5, 6
  )");
  const std::uint16_t base = m.assembler.label("data");
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(m.core.read16(static_cast<std::uint16_t>(base + 2 * i)), 6 - i);
  }
}

TEST(Msp430Ext, InterruptDuringCpuOffWakesAfterGie) {
  // Firmware pattern: enable GIE, enter LPM0; the ISR clears CPUOFF in the
  // *saved* SR on the stack so execution continues after RETI.
  Machine m;
  m.core.reset();
  const auto words = m.assembler.assemble(R"(
    clr r4
    bis #0x18, sr      ; GIE | CPUOFF: sleep until interrupt
    mov #1, r4         ; runs only after wake-up
    bis #0x10, sr
  isr:
    bic #0x10, 0(sp)   ; clear CPUOFF in the saved SR
    reti
  )");
  m.core.load(0x4000, words);
  m.core.set_reg(kSp, 0x3FFE);
  m.core.write16(0xFFF0, m.assembler.label("isr"));

  // Runs into CPUOFF.
  EXPECT_EQ(m.core.run(100), StepResult::kCpuOff);
  EXPECT_EQ(m.r(4), 0);

  // Interrupt arrives: ISR runs, clears the saved CPUOFF, RETI resumes.
  m.core.request_interrupt(0xFFF0);
  EXPECT_EQ(m.core.run(100), StepResult::kCpuOff);  // final LPM at the end
  EXPECT_EQ(m.r(4), 1);
}

TEST(Msp430Ext, Format2CycleCosts) {
  Machine m;
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("rra r4"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 1u);

  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("push r4"));
  m.core.set_reg(kSp, 0x3FFE);
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 3u);

  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("call #0x4400"));
  m.core.set_reg(kSp, 0x3FFE);
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 5u);

  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("reti"));
  m.core.set_reg(kSp, 0x3FFA);
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 5u);
}

TEST(Msp430Ext, AssemblerLabelsOnOwnLine) {
  Machine m;
  m.run(R"(
  entry:
    mov #5, r4
  exit_label:
    bis #0x10, sr
  )");
  EXPECT_EQ(m.assembler.label("entry"), 0x4000);
  EXPECT_GT(m.assembler.label("exit_label"), 0x4000);
  EXPECT_THROW((void)m.assembler.label("missing"), AsmError);
}

}  // namespace
}  // namespace bansim::isa
