// hw::EnergyStore unit coverage (battery/capacitor arithmetic, harvest
// profiles, depletion edges) plus fault::StorageDriver integration: live
// depletion crashing nodes through the MAC, capacitor reboot hysteresis,
// bit-identical energies when the store never depletes, and replay
// determinism of a full storage campaign.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bansim.hpp"
#include "fault/storage_driver.hpp"
#include "hw/energy_store.hpp"

namespace bansim {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_ms(double ms) {
  return TimePoint::zero() + Duration::from_milliseconds(ms);
}

// ---------------------------------------------------------------------------
// EnergyStore arithmetic
// ---------------------------------------------------------------------------

TEST(EnergyStore, BatteryCapacityAndCutoffMatchTheOcvModel) {
  hw::StorageParams params;
  params.enabled = true;
  const hw::EnergyStore store{params};
  // 160 mAh * 3.0 V nominal = 1728 J.
  EXPECT_DOUBLE_EQ(store.capacity_joules(), 1728.0);
  EXPECT_DOUBLE_EQ(store.remaining_joules(), 1728.0);
  EXPECT_DOUBLE_EQ(store.state_of_charge(), 1.0);
  // Full cell sits at the full-charge OCV.
  EXPECT_DOUBLE_EQ(store.volts(), 4.2);
  EXPECT_FALSE(store.depleted());
}

TEST(EnergyStore, DrawPastDryKeepsTheBooksClosed) {
  hw::StorageParams params;
  params.enabled = true;
  params.battery.capacity_mah = 1.0;
  params.battery.nominal_volts = 2.0;  // capacity = 7.2 J
  hw::EnergyStore store{params};
  EXPECT_DOUBLE_EQ(store.draw(5.0), 5.0);
  // Only 2.2 J physically remain; the request is still fully accounted.
  EXPECT_DOUBLE_EQ(store.draw(5.0), 2.2);
  EXPECT_DOUBLE_EQ(store.total_draw_requested(), 10.0);
  EXPECT_DOUBLE_EQ(store.total_drawn(), 7.2);
  EXPECT_DOUBLE_EQ(store.remaining_joules(), 0.0);
  EXPECT_DOUBLE_EQ(store.initial_joules() + store.total_stored() -
                       store.total_drawn(),
                   store.remaining_joules());
  EXPECT_TRUE(store.depleted());
}

TEST(EnergyStore, ChargeSplitsIncomeIntoStoredAndOverflow) {
  hw::StorageParams params;
  params.enabled = true;
  params.battery.capacity_mah = 1.0;
  params.battery.nominal_volts = 2.0;  // capacity = 7.2 J
  hw::EnergyStore store{params};
  store.draw(3.0);
  EXPECT_DOUBLE_EQ(store.charge(5.0), 3.0);  // returns STORED, not income
  EXPECT_DOUBLE_EQ(store.total_income(), 5.0);
  EXPECT_DOUBLE_EQ(store.total_stored(), 3.0);
  EXPECT_DOUBLE_EQ(store.total_overflow(), 2.0);
  EXPECT_DOUBLE_EQ(store.remaining_joules(), 7.2);
  EXPECT_DOUBLE_EQ(store.total_income(),
                   store.total_stored() + store.total_overflow());
}

TEST(EnergyStore, DrawLandingExactlyOnTheCutoffDepletes) {
  hw::StorageParams params;
  params.enabled = true;
  params.battery.capacity_mah = 1.0;
  params.battery.nominal_volts = 2.0;  // capacity = 7.2 J
  params.battery.full_volts = 4.0;
  params.battery.empty_volts = 3.0;
  params.battery.dead_volts = 2.0;  // cutoff_soc = 1/2 -> cutoff = 3.6 J
  hw::EnergyStore store{params};
  store.draw(3.5);
  EXPECT_FALSE(store.depleted());  // 3.7 J > 3.6 J cutoff
  store.draw(0.1);                 // lands exactly on the cutoff
  EXPECT_DOUBLE_EQ(store.remaining_joules(), 3.6);
  EXPECT_TRUE(store.depleted());
  // Battery depletion is permanent even if income lifts it back up.
  store.charge(2.0);
  EXPECT_FALSE(store.depleted());
  EXPECT_FALSE(store.can_power_on());
}

TEST(EnergyStore, ZeroCapacitanceCapacitorNeverPowersOn) {
  hw::StorageParams params;
  params.enabled = true;
  params.kind = hw::StorageKind::kCapacitor;
  params.capacitor.capacitance_farads = 0.0;
  hw::EnergyStore store{params};
  EXPECT_DOUBLE_EQ(store.capacity_joules(), 0.0);
  EXPECT_TRUE(store.depleted());
  EXPECT_DOUBLE_EQ(store.volts(), 0.0);
  EXPECT_FALSE(store.can_power_on());
  store.charge(1.0);  // all overflow: nothing to store it in
  EXPECT_DOUBLE_EQ(store.total_overflow(), 1.0);
  EXPECT_FALSE(store.can_power_on());
}

TEST(EnergyStore, CapacitorTurnOnHysteresis) {
  hw::StorageParams params;
  params.enabled = true;
  params.kind = hw::StorageKind::kCapacitor;
  params.capacitor.capacitance_farads = 0.1;
  params.capacitor.full_volts = 5.0;    // capacity = 1.25 J
  params.capacitor.turnoff_volts = 2.0; // cutoff   = 0.2 J
  params.capacitor.turnon_volts = 3.0;  // boot     = 0.45 J
  hw::EnergyStore store{params};
  EXPECT_DOUBLE_EQ(store.capacity_joules(), 1.25);
  store.draw(1.25 - 0.2);
  EXPECT_TRUE(store.depleted());
  EXPECT_DOUBLE_EQ(store.volts(), 2.0);
  // Recovered past turnoff but short of turnon: still may not boot.
  store.charge(0.2);  // 0.4 J < 0.45 J turn-on level
  EXPECT_FALSE(store.depleted());
  EXPECT_FALSE(store.can_power_on());
  store.charge(0.06);  // 0.46 J clears turnon
  EXPECT_TRUE(store.can_power_on());
  EXPECT_NEAR(store.volts(), 3.0, 0.05);
}

// ---------------------------------------------------------------------------
// Harvest profiles
// ---------------------------------------------------------------------------

TEST(HarvestProfile, ConstantIsExactAndClampedAtZero) {
  hw::HarvestParams h;
  h.enabled = true;
  h.watts = 0.002;
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(0), at_ms(2500)), 0.005);
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(2500), at_ms(0)), 0.0);
  EXPECT_DOUBLE_EQ(h.average_watts(), 0.002);
  h.watts = -1.0;  // a "source" that only sinks contributes nothing
  EXPECT_DOUBLE_EQ(h.power_at(at_ms(10)), 0.0);
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(0), at_ms(1000)), 0.0);
}

TEST(HarvestProfile, SquareIntegralIsExactPiecewise) {
  hw::HarvestParams h;
  h.enabled = true;
  h.profile = hw::HarvestParams::Profile::kSquare;
  h.watts = 2.0;
  h.floor_watts = 0.5;
  h.period = Duration::seconds(1);
  h.duty = 0.25;  // per period: 2*0.25 + 0.5*0.75 = 0.875 J
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(0), at_ms(4000)), 3.5);
  EXPECT_DOUBLE_EQ(h.average_watts(), 0.875);
  // Partial pieces: [0.1 s, 0.6 s] = 0.15 s on + 0.35 s floor.
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(100), at_ms(600)),
                   2.0 * 0.15 + 0.5 * 0.35);
  // A window straddling the on/off edge and a period boundary.
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(900), at_ms(1100)),
                   0.5 * 0.1 + 2.0 * 0.1);
  // Phase shifts the burst, not the per-period energy.
  h.phase = Duration::from_milliseconds(125);
  EXPECT_DOUBLE_EQ(h.energy_between(at_ms(0), at_ms(4000)), 3.5);
}

TEST(HarvestProfile, SineSwingCrossingZeroClampsTheNegativeLobe) {
  hw::HarvestParams h;
  h.enabled = true;
  h.profile = hw::HarvestParams::Profile::kSine;
  h.watts = 1.0;
  h.floor_watts = 0.0;  // swing is [-1, 1]: negative half clamps to 0
  h.period = Duration::seconds(1);
  EXPECT_DOUBLE_EQ(h.power_at(at_ms(250)), 1.0);   // positive peak
  EXPECT_DOUBLE_EQ(h.power_at(at_ms(750)), 0.0);   // clamped trough
  // Mean of the clamped half-sine is 1/pi.
  EXPECT_NEAR(h.average_watts(), 1.0 / M_PI, 2e-3);
  // The negative lobe contributes nothing.
  EXPECT_NEAR(h.energy_between(at_ms(500), at_ms(1000)), 0.0, 1e-12);
  EXPECT_NEAR(h.energy_between(at_ms(0), at_ms(500)), 1.0 / M_PI, 2e-3);
  // A floor clear of the swing makes the profile effectively constant.
  h.floor_watts = 2.0;
  EXPECT_DOUBLE_EQ(h.average_watts(), 2.0);
}

TEST(HarvestProfile, IntegralIsAdditiveOverAdjacentWindows) {
  hw::HarvestParams h;
  h.enabled = true;
  h.profile = hw::HarvestParams::Profile::kSquare;
  h.watts = 0.05;
  h.floor_watts = 0.001;
  h.period = Duration::from_milliseconds(700);
  h.duty = 0.3;
  const double whole = h.energy_between(at_ms(0), at_ms(1000));
  const double split = h.energy_between(at_ms(0), at_ms(333)) +
                       h.energy_between(at_ms(333), at_ms(1000));
  EXPECT_NEAR(whole, split, 1e-15);
}

TEST(ProjectedHours, CapacitorIsLinearAndHarvestOffsetsTheLoad) {
  hw::StorageParams params;
  params.enabled = true;
  params.kind = hw::StorageKind::kCapacitor;
  params.capacitor.capacitance_farads = 0.1;
  params.capacitor.full_volts = 5.0;
  params.capacitor.turnoff_volts = 2.0;
  // Usable = 1.25 - 0.2 = 1.05 J; at 1.05 mW net that is 1000 s.
  EXPECT_DOUBLE_EQ(hw::projected_hours(params, 1.05e-3, 0.0),
                   1000.0 / 3600.0);
  EXPECT_DOUBLE_EQ(hw::projected_hours(params, 2.05e-3, 1.0e-3),
                   1000.0 / 3600.0);
  EXPECT_TRUE(std::isinf(hw::projected_hours(params, 1.0e-3, 2.0e-3)));
}

TEST(StorageParams, ValidateCatchesIllFormedSections) {
  hw::StorageParams params;  // disabled: anything goes
  params.battery.capacity_mah = -1.0;
  EXPECT_EQ(params.validate(), "");
  params.enabled = true;
  EXPECT_NE(params.validate(), "");
  params.battery.capacity_mah = 160.0;
  EXPECT_EQ(params.validate(), "");
  params.check = Duration::zero();
  EXPECT_NE(params.validate(), "");
  params.check = Duration::milliseconds(100);
  params.kind = hw::StorageKind::kCapacitor;
  params.capacitor.turnon_volts = 1.0;  // below turnoff
  EXPECT_NE(params.validate(), "");
  params.capacitor.turnon_volts = 3.0;
  params.harvest.enabled = true;
  params.harvest.profile = hw::HarvestParams::Profile::kSine;
  params.harvest.period = Duration::zero();
  EXPECT_NE(params.validate(), "");
}

// ---------------------------------------------------------------------------
// StorageDriver integration (live cell)
// ---------------------------------------------------------------------------

core::BanConfig small_ward() {
  core::BanConfig config;
  config.num_nodes = 2;
  config.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;
  config.seed = 7;
  return config;
}

std::vector<energy::NodeEnergy> run_snapshot(const core::BanConfig& config,
                                             int seconds) {
  core::BanNetwork network{config};
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(seconds));
  return network.energy_snapshot();
}

TEST(StorageDriver, UndepletedStoreLeavesEnergiesBitIdentical) {
  const core::BanConfig off = small_ward();
  core::BanConfig on = small_ward();
  on.storage.enabled = true;  // default 160 mAh cell: never dents in 5 s
  on.storage.check = Duration::milliseconds(50);

  const auto a = run_snapshot(off, 5);
  const auto b = run_snapshot(on, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_joules(), b[i].total_joules()) << a[i].node;
    ASSERT_EQ(a[i].components.size(), b[i].components.size());
    for (std::size_t c = 0; c < a[i].components.size(); ++c) {
      EXPECT_EQ(a[i].components[c].joules, b[i].components[c].joules)
          << a[i].node << "/" << a[i].components[c].component;
    }
  }
}

TEST(StorageDriver, BatteryDepletionCrashesTheNodeForGood) {
  core::BanConfig config = small_ward();
  config.storage.enabled = true;
  // ~0.11 J total, ~76 mJ usable: a streaming node (~20 mW) dies in a few
  // seconds and must stay down.
  config.storage.battery.capacity_mah = 0.01;

  core::BanNetwork network{config};
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(15));

  const fault::StorageDriver* driver = network.storage_driver();
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->node_count(), 2u);
  EXPECT_EQ(driver->stats().depletion_deaths, 2u);
  EXPECT_EQ(driver->stats().recharge_reboots, 0u);
  EXPECT_LT(driver->first_death(), TimePoint::max());

  for (const fault::NodeStorageStatus& s : driver->status()) {
    EXPECT_TRUE(s.dead) << s.node;
    EXPECT_EQ(s.deaths, 1u) << s.node;
    EXPECT_GT(s.died_at, TimePoint::zero()) << s.node;
    // Books close even though leakage keeps metering past dry.
    EXPECT_DOUBLE_EQ(s.requested_joules, s.sampled_joules - s.baseline_joules)
        << s.node;
    EXPECT_LE(s.drawn_joules, s.requested_joules) << s.node;
  }
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    EXPECT_EQ(network.node(i).mac().stats().crashes, 1u);
    EXPECT_EQ(network.node(i).mac().stats().reboots, 0u);
  }
}

TEST(StorageDriver, CapacitorNodeRebootsOnceHarvestRefillsIt) {
  core::BanConfig config = small_ward();
  config.storage.enabled = true;
  config.storage.kind = hw::StorageKind::kCapacitor;
  config.storage.capacitor.capacitance_farads = 0.005;  // 62.5 mJ full
  config.storage.harvest.enabled = true;
  // Between the dead draw (~10.5 mW of constant ASIC load keeps metering
  // through a crash) and the ~20 mW running draw: drains while up,
  // refills while dark.
  config.storage.harvest.watts = 0.015;

  core::BanNetwork network{config};
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(30));

  const fault::StorageDriver* driver = network.storage_driver();
  ASSERT_NE(driver, nullptr);
  // Net drain while running kills the node; the trickle refills the cap
  // past turn-on while it is dark, so it boots and dies again.
  EXPECT_GE(driver->stats().depletion_deaths, 2u);
  EXPECT_GE(driver->stats().recharge_reboots, 1u);
  bool some_node_cycled = false;
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    const mac::NodeMacStats& stats = network.node(i).mac().stats();
    // Every reboot answers a crash; at most one crash is still unanswered.
    EXPECT_GE(stats.crashes, stats.reboots);
    EXPECT_LE(stats.crashes, stats.reboots + 1);
    if (stats.reboots >= 1) some_node_cycled = true;
  }
  EXPECT_TRUE(some_node_cycled);
  for (const fault::NodeStorageStatus& s : driver->status()) {
    EXPECT_DOUBLE_EQ(s.income_joules, s.stored_joules + s.overflow_joules)
        << s.node;
  }
}

TEST(StorageDriver, StorageCampaignReplaysBitIdentically) {
  core::BanConfig config = small_ward();
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 0.015;
  config.storage.harvest.enabled = true;
  config.storage.harvest.profile = hw::HarvestParams::Profile::kSine;
  config.storage.harvest.watts = 0.003;
  config.storage.harvest.floor_watts = 0.001;
  config.storage.harvest.period = Duration::seconds(2);

  auto run_once = [&config] {
    core::BanNetwork network{config};
    network.start();
    network.run_until(TimePoint::zero() + Duration::seconds(12));
    return network.storage_driver()->status();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dead, b[i].dead);
    EXPECT_EQ(a[i].deaths, b[i].deaths);
    EXPECT_EQ(a[i].died_at, b[i].died_at);
    EXPECT_EQ(a[i].requested_joules, b[i].requested_joules);
    EXPECT_EQ(a[i].drawn_joules, b[i].drawn_joules);
    EXPECT_EQ(a[i].income_joules, b[i].income_joules);
    EXPECT_EQ(a[i].remaining_joules, b[i].remaining_joules);
  }
}

TEST(StorageDriver, PerNodeOverrideKeepsBenchNodeAlive) {
  core::BanConfig config = small_ward();
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 0.01;
  config.roster.resize(2);
  config.roster[1].storage = hw::StorageParams{};  // node2 on the bench

  core::BanNetwork network{config};
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(15));

  const fault::StorageDriver* driver = network.storage_driver();
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->node_count(), 1u);  // only node1 registered
  EXPECT_EQ(driver->stats().depletion_deaths, 1u);
  EXPECT_EQ(network.node(0).mac().stats().crashes, 1u);
  EXPECT_EQ(network.node(1).mac().stats().crashes, 0u);
  EXPECT_EQ(network.node(1).energy_store(), nullptr);
}

}  // namespace
}  // namespace bansim
