// Cross-validation of the assembly beat-detector firmware against the C++
// RpeakDetector on identical synthetic ECG streams.
#include "isa/firmware.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/ecg_synthesizer.hpp"
#include "apps/rpeak_detector.hpp"
#include "sim/rng.hpp"

namespace bansim::isa::firmware {
namespace {

using sim::Duration;
using sim::TimePoint;

std::vector<std::uint16_t> ecg_codes(double bpm, double seconds,
                                     std::uint64_t seed) {
  apps::EcgConfig cfg;
  cfg.heart_rate_bpm = bpm;
  apps::EcgSynthesizer ecg{cfg, sim::Rng::stream(seed, "fw/ecg")};
  std::vector<std::uint16_t> codes;
  const double fs = 200.0;
  for (int n = 0; n < static_cast<int>(seconds * fs); ++n) {
    const double v = ecg.sample(TimePoint::zero() +
                                Duration::from_seconds(n / fs));
    codes.push_back(static_cast<std::uint16_t>(
        std::lround(std::clamp(v / 2.5, 0.0, 1.0) * 4095.0)));
  }
  return codes;
}

TEST(Firmware, DetectsBeatsAt75Bpm) {
  const auto codes = ecg_codes(75.0, 20.0, 3);
  const RpeakRun run = run_rpeak(codes);
  // 20 s at 75 bpm = 25 beats.
  EXPECT_NEAR(static_cast<double>(run.beat_indices.size()), 25.0, 3.0);
  EXPECT_GT(run.instructions, 10000u);
  EXPECT_GT(run.energy_joules, 0.0);
}

TEST(Firmware, RefractoryHoldsBetweenDetections) {
  const auto codes = ecg_codes(75.0, 20.0, 4);
  const RpeakRun run = run_rpeak(codes);
  ASSERT_GT(run.beat_indices.size(), 3u);
  for (std::size_t i = 1; i < run.beat_indices.size(); ++i) {
    EXPECT_GT(run.beat_indices[i] - run.beat_indices[i - 1], 50u);
  }
}

TEST(Firmware, FlatStreamDetectsNothing) {
  std::vector<std::uint16_t> codes(2000, 2048);
  const RpeakRun run = run_rpeak(codes);
  EXPECT_TRUE(run.beat_indices.empty());
}

class FirmwareCrossValidation : public ::testing::TestWithParam<double> {};

TEST_P(FirmwareCrossValidation, AgreesWithCppDetector) {
  const double bpm = GetParam();
  const auto codes = ecg_codes(bpm, 30.0, 11);

  // C++ reference detector on the same codes.
  apps::RpeakDetector reference{200.0};
  std::vector<std::uint32_t> cpp_beats;
  for (std::size_t n = 0; n < codes.size(); ++n) {
    const auto r = reference.step(codes[n]);
    if (r.beat_samples_ago > 0) {
      cpp_beats.push_back(static_cast<std::uint32_t>(n) - r.beat_samples_ago);
    }
  }

  const RpeakRun fw = run_rpeak(codes);

  // Both implementations see essentially the same beat train.
  ASSERT_GT(cpp_beats.size(), 5u);
  EXPECT_NEAR(static_cast<double>(fw.beat_indices.size()),
              static_cast<double>(cpp_beats.size()),
              0.2 * static_cast<double>(cpp_beats.size()) + 2.0);

  // And the positions align: every firmware beat is within 40 samples
  // (200 ms) of a C++ detection.
  std::size_t matched = 0;
  for (const std::uint16_t fw_beat : fw.beat_indices) {
    for (const std::uint32_t cpp_beat : cpp_beats) {
      if (std::abs(static_cast<int>(fw_beat) - static_cast<int>(cpp_beat)) <=
          40) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(static_cast<double>(matched),
            0.85 * static_cast<double>(fw.beat_indices.size()));
}

INSTANTIATE_TEST_SUITE_P(HeartRates, FirmwareCrossValidation,
                         ::testing::Values(60.0, 75.0, 95.0));

TEST(Firmware, PerSampleCostMatchesCalibrationOrder) {
  // The OS-level model charges ~460-520 cycles per rpeak step; the real
  // fixed-point firmware must be the same order of magnitude per sample.
  const auto codes = ecg_codes(75.0, 10.0, 7);
  const RpeakRun run = run_rpeak(codes);
  const double cycles_per_sample =
      static_cast<double>(run.cycles) / static_cast<double>(codes.size());
  EXPECT_GT(cycles_per_sample, 30.0);
  EXPECT_LT(cycles_per_sample, 500.0);
}

}  // namespace
}  // namespace bansim::isa::firmware
