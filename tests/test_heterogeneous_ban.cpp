// Heterogeneous-BAN regression: one TDMA cell mixing raw ECG streamers,
// on-node R-peak detectors and an EEG monitor, composed from a parsed
// INI roster the way bansim_cli does it.  This is the end-to-end test of
// the NodeSpec/NodeStack/NetworkBuilder composition path: every node
// kind joins the same cell, the base station demultiplexes their very
// different traffic, and the whole thing is deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/bansim.hpp"
#include "core/config_io.hpp"

namespace bansim::core {
namespace {

using sim::Duration;
using sim::TimePoint;

constexpr const char* kMixedWard = R"(
  [network]
  nodes = 5
  seed = 42
  app = ecg_streaming

  [tdma]
  variant = static
  max_slots = 5
  cycle_ms = 30

  [streaming]
  sample_rate_hz = 205

  [node.2]
  app = rpeak
  rpeak.sample_rate_hz = 250

  [node.4]
  app = rpeak
)";

/// Runs the parsed ward for `seconds` past join; returns the network so
/// tests can inspect BS-side state.
std::unique_ptr<BanNetwork> run_ward(const std::string& ini, int seconds) {
  auto network = std::make_unique<BanNetwork>(parse_config(ini));
  network->start();
  EXPECT_TRUE(network->run_until_joined(
      Duration::seconds(1), TimePoint::zero() + Duration::seconds(30)));
  network->run_until(network->simulator().now() + Duration::seconds(seconds));
  return network;
}

TEST(HeterogeneousBan, MixedEcgRpeakWardJoinsAndDelivers) {
  auto network = run_ward(kMixedWard, 10);
  ASSERT_EQ(network->num_nodes(), 5u);
  EXPECT_TRUE(network->all_joined());

  // Roster kinds landed on the right stacks.
  EXPECT_EQ(network->node(0).app_kind(), AppKind::kEcgStreaming);
  EXPECT_EQ(network->node(1).app_kind(), AppKind::kRpeak);
  EXPECT_EQ(network->node(2).app_kind(), AppKind::kEcgStreaming);
  EXPECT_EQ(network->node(3).app_kind(), AppKind::kRpeak);
  EXPECT_EQ(network->node(4).app_kind(), AppKind::kEcgStreaming);

  // Every node delivered data to the base station.
  const auto& traffic = network->base_station_app().per_node();
  ASSERT_EQ(traffic.size(), 5u);
  for (net::NodeId addr = 1; addr <= 5; ++addr) {
    ASSERT_TRUE(traffic.count(addr)) << "node address " << addr;
    EXPECT_GT(traffic.at(addr).packets, 0u) << "node address " << addr;
  }

  // Streamers ship every sample; detectors only ship beat events, so
  // their packet rates sit far apart.
  const std::uint64_t streamer_packets = traffic.at(1).packets;
  const std::uint64_t detector_packets = traffic.at(2).packets;
  EXPECT_GT(streamer_packets, 5 * detector_packets);

  // Beat events decode, and only from the R-peak addresses.
  const auto& beats = network->base_station_app().beats();
  EXPECT_GT(beats.size(), 5u);  // ~75 bpm over 10 s, two detectors
  for (const auto& [addr, when] : beats) {
    EXPECT_TRUE(addr == 2 || addr == 4) << "beat from node " << addr;
  }

  // All five radios burned energy, and the sparse detectors burned less
  // radio than the streamers sharing their cell.
  const auto snapshot = network->energy_snapshot();
  ASSERT_EQ(snapshot.size(), 6u);  // 5 nodes + bs
  for (const auto& node : snapshot) {
    EXPECT_GT(node.total_joules(), 0.0) << node.node;
  }
  EXPECT_LT(snapshot[1].component_joules("radio"),
            snapshot[0].component_joules("radio"));
  EXPECT_LT(snapshot[3].component_joules("radio"),
            snapshot[2].component_joules("radio"));
}

TEST(HeterogeneousBan, ThreeAppKindsShareOneCell) {
  const std::string ini = std::string{kMixedWard} +
                          "\n[node.5]\napp = eeg_monitoring\n";
  auto network = run_ward(ini, 10);
  EXPECT_EQ(network->node(4).app_kind(), AppKind::kEegMonitoring);

  // The EEG node's fragments reassemble into decoded blocks at the BS.
  apps::EegCollector* collector = network->eeg_collector(5);
  ASSERT_NE(collector, nullptr);
  EXPECT_GT(collector->blocks_decoded(), 0u);
  EXPECT_EQ(collector->decode_failures(), 0u);
  // No collector exists for the non-EEG nodes.
  EXPECT_EQ(network->eeg_collector(1), nullptr);
  EXPECT_EQ(network->eeg_collector(2), nullptr);

  // Beat decoding still works next to EEG traffic (EEG fragments are
  // never 5 bytes, so they cannot alias as beat events).
  const auto& beats = network->base_station_app().beats();
  EXPECT_GT(beats.size(), 5u);
  for (const auto& [addr, when] : beats) {
    EXPECT_TRUE(addr == 2 || addr == 4) << "beat from node " << addr;
  }
}

TEST(HeterogeneousBan, MixedWardIsDeterministic) {
  auto a = run_ward(kMixedWard, 5);
  auto b = run_ward(kMixedWard, 5);
  const auto sa = a->energy_snapshot();
  const auto sb = b->energy_snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].node, sb[i].node);
    EXPECT_EQ(sa[i].total_joules(), sb[i].total_joules()) << sa[i].node;
  }
  EXPECT_EQ(a->base_station_app().total_packets(),
            b->base_station_app().total_packets());
  EXPECT_EQ(a->base_station_app().beats().size(),
            b->base_station_app().beats().size());
}

// Per-node fidelity: the whole cell at reference except one node running
// the estimator's simplified hardware model — the refactor made fidelity
// a per-spec knob, so both kinds must coexist in one cell.
TEST(HeterogeneousBan, PerNodeFidelityOverrideRuns) {
  const std::string ini = std::string{kMixedWard} +
                          "\n[node.3]\nfidelity = model\n";
  auto network = run_ward(ini, 5);
  EXPECT_TRUE(network->all_joined());
  const auto& traffic = network->base_station_app().per_node();
  ASSERT_TRUE(traffic.count(3));
  EXPECT_GT(traffic.at(3).packets, 0u);
}

}  // namespace
}  // namespace bansim::core
