// energy::LifetimeReport math/formatting plus the lifetime campaign
// end-to-end, including the golden Table-1 pin: the paper's 5-node ECG
// static-TDMA cell on the default 160 mAh patch cell projects a fixed,
// exactly reproducible deployment lifetime.
#include <gtest/gtest.h>

#include <cmath>

#include "check/fault_campaign.hpp"
#include "core/bansim.hpp"
#include "core/paper_experiments.hpp"
#include "energy/lifetime.hpp"

namespace bansim {
namespace {

using sim::Duration;
using sim::TimePoint;

energy::LifetimeReport sample_report() {
  energy::LifetimeReport report;
  report.window_seconds = 10.0;
  energy::LifetimeRow a;
  a.node = "node1";
  a.average_watts = 0.020;
  a.projected_hours = 16.0;
  energy::LifetimeRow b;
  b.node = "node2";
  b.average_watts = 0.022;
  b.died = true;
  b.died_at_hours = 2.0;
  b.projected_hours = 14.0;  // superseded by the observed death
  energy::LifetimeRow c;
  c.node = "node3";
  c.average_watts = 0.004;
  c.projected_hours = std::numeric_limits<double>::infinity();
  report.rows = {a, b, c};
  return report;
}

TEST(LifetimeReport, ObservedDeathTrumpsProjection) {
  const energy::LifetimeReport report = sample_report();
  EXPECT_DOUBLE_EQ(report.rows[1].lifetime_hours(), 2.0);
  EXPECT_DOUBLE_EQ(report.rows[0].lifetime_hours(), 16.0);
  EXPECT_DOUBLE_EQ(report.first_death_hours(), 2.0);
}

TEST(LifetimeReport, PercentilesAreNearestRank) {
  const energy::LifetimeReport report = sample_report();
  EXPECT_DOUBLE_EQ(report.percentile_hours(0.0), 2.0);
  EXPECT_DOUBLE_EQ(report.percentile_hours(0.5), 16.0);
  EXPECT_TRUE(std::isinf(report.percentile_hours(1.0)));
}

TEST(LifetimeReport, CdfIsSortedAndReachesOne) {
  const auto cdf = sample_report().lifetime_cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 2.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[1].first, 16.0);
  EXPECT_NEAR(cdf[1].second, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(std::isinf(cdf[2].first));
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(LifetimeReport, EmptyReportIsImmortal) {
  const energy::LifetimeReport report;
  EXPECT_TRUE(std::isinf(report.first_death_hours()));
  EXPECT_TRUE(report.lifetime_cdf().empty());
}

TEST(LifetimeReport, RenderAndCsvCarryEveryRow) {
  const energy::LifetimeReport report = sample_report();
  const std::string table = report.render();
  EXPECT_NE(table.find("node1"), std::string::npos);
  EXPECT_NE(table.find("node3"), std::string::npos);
  EXPECT_NE(table.find("inf"), std::string::npos);
  const std::string csv = report.render_csv();
  EXPECT_NE(csv.find("node,avg_mw,harvest_mw,soc,lifetime_h,died,died_at_h"),
            std::string::npos);
  EXPECT_NE(csv.find("node2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

TEST(LifetimeCampaign, StopsAtFirstDeathAndReportsIt) {
  core::BanConfig config;
  config.num_nodes = 2;
  config.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 0.01;  // dies within seconds

  check::LifetimeCampaignOptions options;
  options.horizon = Duration::seconds(60);
  const check::LifetimeOutcome outcome =
      check::run_lifetime_campaign(config, options);

  EXPECT_TRUE(outcome.death_observed);
  EXPECT_LT(outcome.simulated, Duration::seconds(60));
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  ASSERT_EQ(outcome.report.rows.size(), 2u);
  bool any_died = false;
  for (const auto& row : outcome.report.rows) any_died |= row.died;
  EXPECT_TRUE(any_died);
  EXPECT_LE(outcome.report.first_death_hours(),
            outcome.simulated.to_seconds() / 3600.0 + 1e-12);
}

TEST(LifetimeCampaign, DeathFreeRunProjectsFromMeasuredPower) {
  core::BanConfig config;
  config.num_nodes = 2;
  config.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;
  config.storage.enabled = true;  // default 160 mAh: outlives any test run

  check::LifetimeCampaignOptions options;
  options.horizon = Duration::seconds(5);
  const check::LifetimeOutcome outcome =
      check::run_lifetime_campaign(config, options);

  EXPECT_FALSE(outcome.death_observed);
  EXPECT_EQ(outcome.simulated, Duration::seconds(5));
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  for (const auto& row : outcome.report.rows) {
    EXPECT_FALSE(row.died);
    EXPECT_GT(row.average_watts, 0.0);
    EXPECT_GT(row.projected_hours, 1.0) << row.node;
    EXPECT_TRUE(std::isfinite(row.projected_hours)) << row.node;
    EXPECT_NEAR(row.state_of_charge, 1.0, 1e-3) << row.node;
  }
}

/// Golden Table-1 lifetime pin: the paper's 5-node ECG streaming cell,
/// static 30 ms TDMA, each node on the default 160 mAh / 3.0 V patch cell.
/// The measured draw and hence the projection are deterministic, so the
/// hours are pinned exactly; any drift in the MAC, the meters or the
/// battery model shows up here.
TEST(LifetimeCampaign, GoldenTable1EcgStaticLifetime) {
  core::PaperSetup setup;
  core::BanConfig config =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  config.storage.enabled = true;  // default BatteryParams: 160 mAh cell

  check::LifetimeCampaignOptions options;
  options.horizon = Duration::seconds(10);
  const check::LifetimeOutcome outcome =
      check::run_lifetime_campaign(config, options);

  EXPECT_FALSE(outcome.death_observed);
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  ASSERT_EQ(outcome.report.rows.size(), 5u);

  // Usable charge of the default cell: 12/17 of 1728 J.
  const double usable = 1728.0 * 12.0 / 17.0;
  for (const auto& row : outcome.report.rows) {
    // The draw is ~20 mW, well under 1 C, so no Peukert derate applies and
    // the projection is exactly usable / load.
    EXPECT_DOUBLE_EQ(row.projected_hours,
                     usable / row.average_watts / 3600.0)
        << row.node;
    // Table-1 scale check: an ECG streamer at ~20 mW lasts 13-19 h on the
    // 160 mAh patch cell.
    EXPECT_GT(row.projected_hours, 13.0) << row.node;
    EXPECT_LT(row.projected_hours, 19.0) << row.node;
  }
}

}  // namespace
}  // namespace bansim
