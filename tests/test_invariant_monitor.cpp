// The checking layer itself: a clean network run raises no violations and
// leaves energies bit-identical, injected breaches are caught, and the
// fuzzer's config generator is deterministic.
#include <gtest/gtest.h>

#include "check/invariant_monitor.hpp"
#include "check/scenario_fuzzer.hpp"
#include "core/ban_network.hpp"
#include "core/config_io.hpp"
#include "hw/mcu.hpp"
#include "hw/radio_nrf2401.hpp"

namespace bansim {
namespace {

core::BanConfig small_config() {
  core::BanConfig config;
  config.num_nodes = 3;
  config.tdma.variant = mac::TdmaVariant::kDynamic;
  config.seed = 7;
  return config;
}

/// Runs `config` to a joined steady state; returns the energy snapshot.
std::vector<energy::NodeEnergy> run_network(
    const core::BanConfig& config, check::InvariantMonitor* monitor) {
  core::BanNetwork network{config};
  if (monitor != nullptr) monitor->watch_network(network);
  network.start();
  EXPECT_TRUE(network.run_until_joined(
      sim::Duration::milliseconds(200),
      sim::TimePoint::zero() + sim::Duration::seconds(12)));
  network.run_until(network.simulator().now() +
                    sim::Duration::milliseconds(400));
  if (monitor != nullptr) monitor->final_audit(network.simulator().now());
  return network.energy_snapshot();
}

TEST(InvariantMonitor, CleanRunHasNoViolations) {
  const core::BanConfig config = small_config();
  core::BanNetwork network{config};
  check::InvariantMonitor monitor{network.context()};
  monitor.watch_network(network);
  network.start();
  ASSERT_TRUE(network.run_until_joined(
      sim::Duration::milliseconds(200),
      sim::TimePoint::zero() + sim::Duration::seconds(12)));
  monitor.audit(network.simulator().now());
  EXPECT_TRUE(monitor.ok()) << monitor.report();

  network.run_until(network.simulator().now() +
                    sim::Duration::milliseconds(400));
  monitor.final_audit(network.simulator().now());
  EXPECT_TRUE(monitor.ok()) << monitor.report();
  EXPECT_GT(monitor.hook_events(), 0u);
  EXPECT_TRUE(monitor.report().empty());
}

TEST(InvariantMonitor, MonitorOnOffEnergiesBitIdentical) {
  const core::BanConfig config = small_config();

  std::vector<energy::NodeEnergy> monitored;
  {
    core::BanNetwork network{config};
    check::InvariantMonitor monitor{network.context()};
    monitor.watch_network(network);
    network.start();
    ASSERT_TRUE(network.run_until_joined(
        sim::Duration::milliseconds(200),
        sim::TimePoint::zero() + sim::Duration::seconds(12)));
    network.run_until(network.simulator().now() +
                      sim::Duration::milliseconds(400));
    monitor.final_audit(network.simulator().now());
    EXPECT_TRUE(monitor.ok()) << monitor.report();
    monitored = network.energy_snapshot();
  }
  const std::vector<energy::NodeEnergy> plain = run_network(config, nullptr);

  ASSERT_EQ(monitored.size(), plain.size());
  for (std::size_t n = 0; n < monitored.size(); ++n) {
    EXPECT_EQ(monitored[n].node, plain[n].node);
    ASSERT_EQ(monitored[n].components.size(), plain[n].components.size());
    for (std::size_t c = 0; c < monitored[n].components.size(); ++c) {
      const auto& mon = monitored[n].components[c];
      const auto& ref = plain[n].components[c];
      EXPECT_EQ(mon.component, ref.component);
      EXPECT_EQ(mon.joules, ref.joules)
          << monitored[n].node << "/" << mon.component;
      ASSERT_EQ(mon.per_state.size(), ref.per_state.size());
      for (std::size_t s = 0; s < mon.per_state.size(); ++s) {
        EXPECT_EQ(mon.per_state[s].second, ref.per_state[s].second)
            << monitored[n].node << "/" << mon.component << "/"
            << mon.per_state[s].first;
      }
    }
  }
}

TEST(InvariantMonitor, IllegalRadioTransitionIsCaught) {
  core::BanNetwork network{small_config()};
  check::InvariantMonitor monitor{network.context()};
  monitor.watch_network(network);

  const void* radio = &network.node(0).board().radio();
  // kPowerDown -> kTxAir skips power-up, clock-in and settling.
  monitor.on_radio_state(radio, static_cast<int>(hw::RadioState::kPowerDown),
                         static_cast<int>(hw::RadioState::kTxAir),
                         network.simulator().now());
  EXPECT_FALSE(monitor.ok());
  EXPECT_NE(monitor.report().find("radio"), std::string::npos)
      << monitor.report();
}

TEST(InvariantMonitor, ShortTxSettleIsCaught) {
  core::BanNetwork network{small_config()};
  check::InvariantMonitor monitor{network.context()};
  monitor.watch_network(network);

  const void* radio = &network.node(0).board().radio();
  const sim::TimePoint t0 = network.simulator().now();
  monitor.on_radio_state(radio, static_cast<int>(hw::RadioState::kPowerDown),
                         static_cast<int>(hw::RadioState::kPoweringUp), t0);
  // Claim standby after only 1 ms instead of the 3 ms crystal start-up.
  monitor.on_radio_state(radio, static_cast<int>(hw::RadioState::kPoweringUp),
                         static_cast<int>(hw::RadioState::kStandby),
                         t0 + sim::Duration::milliseconds(1));
  EXPECT_FALSE(monitor.ok());
}

TEST(InvariantMonitor, UnknownFrameRetireIsCaught) {
  core::BanNetwork network{small_config()};
  check::InvariantMonitor monitor{network.context()};
  monitor.watch_network(network);

  // Frame id far beyond anything transmitted (and beyond the pre-watch
  // baseline) retiring out of nowhere breaks conservation.
  monitor.on_frame_retired(&network.channel(), 1'000'000u,
                           /*corrupted=*/false);
  EXPECT_FALSE(monitor.ok());
  EXPECT_NE(monitor.report().find("conservation"), std::string::npos)
      << monitor.report();
}

TEST(InvariantMonitor, PhantomMeterTransitionBreaksEnergyClosure) {
  core::BanNetwork network{small_config()};
  check::InvariantMonitor monitor{network.context()};
  monitor.watch_network(network);
  network.start();
  network.run_until(sim::TimePoint::zero() + sim::Duration::milliseconds(50));

  // A transition notification the meter never performed desynchronizes the
  // monitor's shadow ledger; the next audit must notice.
  energy::EnergyMeter& meter = network.node(0).board().mcu().meter();
  monitor.on_meter_transition(&meter, static_cast<int>(hw::McuMode::kLpm3),
                              network.simulator().now());
  network.run_until(network.simulator().now() +
                    sim::Duration::milliseconds(50));
  monitor.audit(network.simulator().now());
  EXPECT_FALSE(monitor.ok());
}

TEST(ScenarioFuzzer, ConfigGenerationIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const core::BanConfig a = check::make_fuzz_config(seed);
    const core::BanConfig b = check::make_fuzz_config(seed);
    EXPECT_EQ(core::serialize_config(a), core::serialize_config(b));
    EXPECT_GE(a.effective_nodes(), 1u);
    EXPECT_LE(a.effective_nodes(), 6u);
    if (a.tdma.variant == mac::TdmaVariant::kStatic) {
      EXPECT_GE(a.tdma.max_slots, a.effective_nodes());
    }
  }
  // Different seeds must not collapse onto one configuration.
  EXPECT_NE(core::serialize_config(check::make_fuzz_config(1)),
            core::serialize_config(check::make_fuzz_config(2)));
}

TEST(ScenarioFuzzer, SmallBatteryPasses) {
  check::FuzzOptions options;
  options.start_seed = 1;
  options.num_seeds = 3;
  options.parallel_oracle_seeds = 2;
  options.measure = sim::Duration::milliseconds(200);
  const check::ScenarioFuzzer fuzzer{options};
  const check::FuzzSummary summary = fuzzer.run();
  EXPECT_EQ(summary.cases_run, 3u);
  EXPECT_TRUE(summary.ok()) << (summary.failed.empty()
                                    ? summary.parallel_oracle_detail
                                    : summary.failed.front().failure);
}

}  // namespace
}  // namespace bansim
