// Unit tests of the TinyOS radio driver: MCU cost accounting for SPI
// transfers, probe event publication, and the single-outstanding-send
// contract.
#include "os/radio_driver.hpp"

#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <vector>

#include "os/node_os.hpp"
#include "phy/channel.hpp"

namespace bansim::os {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

/// Probe recording radio events with timestamps.
class RecordingProbe final : public ModelProbe {
 public:
  struct Event {
    std::string kind;
    TimePoint when;
    std::size_t bytes{0};
  };
  void on_task(std::string_view, std::string_view, TimePoint) override {}
  void on_radio_rx_on(std::string_view, TimePoint when) override {
    events.push_back({"rx_on", when, 0});
  }
  void on_radio_rx_off(std::string_view, TimePoint when) override {
    events.push_back({"rx_off", when, 0});
  }
  void on_radio_tx(std::string_view, std::size_t bytes, TimePoint when) override {
    events.push_back({"tx", when, bytes});
  }
  void on_packet(std::string_view, net::PacketType type, bool transmit,
                 TimePoint when) override {
    events.push_back({std::string(transmit ? "pkt_tx_" : "pkt_rx_") +
                          net::to_string(type),
                      when, 0});
  }
  std::vector<Event> events;
};

struct DriverFixture : ::testing::Test {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  sim::Tracer& tracer = context.tracer;
  phy::Channel channel{context};
  hw::BoardParams params;
  RecordingProbe probe;
  hw::Board board{context, channel, "n1", params, 0.0};
  hw::Board peer_board{context, channel, "n2", params, 0.0};
  NodeOs node{context, board, probe};
  NullProbe null_probe;
  NodeOs peer{context, peer_board, null_probe};

  void init_both() {
    board.radio().set_local_address(1);
    peer_board.radio().set_local_address(2);
    bool a = false, b = false;
    node.radio().init([&] { a = true; });
    peer.radio().init([&] { b = true; });
    simulator.run_until(simulator.now() + 5_ms);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
  }

  net::Packet packet_to_peer(std::size_t len) {
    net::Packet p;
    p.header.dest = 2;
    p.header.src = 1;
    p.header.type = net::PacketType::kData;
    p.payload.assign(len, 0x42);
    return p;
  }
};

TEST_F(DriverFixture, SendPublishesTxAndPacketEvents) {
  init_both();
  bool done = false;
  node.radio().send(packet_to_peer(18), [&] { done = true; });
  simulator.run_until(simulator.now() + 5_ms);
  EXPECT_TRUE(done);

  ASSERT_GE(probe.events.size(), 2u);
  EXPECT_EQ(probe.events[0].kind, "tx");
  EXPECT_EQ(probe.events[0].bytes, 26u);  // 18 + header + CRC
  EXPECT_EQ(probe.events[1].kind, "pkt_tx_DATA");
}

TEST_F(DriverFixture, ListenPublishesWindowEvents) {
  init_both();
  node.radio().start_listen();
  simulator.run_until(simulator.now() + 2_ms);
  node.radio().stop_listen();
  ASSERT_EQ(probe.events.size(), 2u);
  EXPECT_EQ(probe.events[0].kind, "rx_on");
  EXPECT_EQ(probe.events[1].kind, "rx_off");
  EXPECT_EQ(probe.events[1].when - probe.events[0].when, 2_ms);
}

TEST_F(DriverFixture, ClockInChargesMcuConcurrently) {
  init_both();
  const TimePoint t0 = simulator.now();
  const double active_before =
      board.mcu()
          .meter()
          .time_in(static_cast<int>(hw::McuMode::kActive), t0)
          .to_seconds();
  node.radio().send(packet_to_peer(18), nullptr);
  simulator.run_until(simulator.now() + 5_ms);
  const double active =
      board.mcu()
          .meter()
          .time_in(static_cast<int>(hw::McuMode::kActive), simulator.now())
          .to_seconds() -
      active_before;
  // 26 bytes * 64 cycles at 8 MHz = 208 us of bit-banging.
  EXPECT_NEAR(active, 26 * 64 / 8e6, 30e-6);
}

TEST_F(DriverFixture, ReceiverDispatchDeliversToHandler) {
  init_both();
  std::vector<net::Packet> received;
  peer.radio().set_receive_handler(
      [&](const net::Packet& p) { received.push_back(p); });
  peer.radio().start_listen();
  simulator.run_until(simulator.now() + 1_ms);
  node.radio().send(packet_to_peer(10), nullptr);
  simulator.run_until(simulator.now() + 5_ms);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].payload.size(), 10u);
  EXPECT_TRUE(peer.radio().listening());  // back to listen after clock-out
}

TEST_F(DriverFixture, ListeningQueryCoversAllRxPhases) {
  init_both();
  EXPECT_FALSE(node.radio().listening());
  node.radio().start_listen();
  EXPECT_TRUE(node.radio().listening());  // settle phase counts
  simulator.run_until(simulator.now() + 1_ms);
  EXPECT_TRUE(node.radio().listening());  // listen phase
  node.radio().stop_listen();
  EXPECT_FALSE(node.radio().listening());
}

TEST_F(DriverFixture, SendingFlagTracksTransaction) {
  init_both();
  EXPECT_FALSE(node.radio().sending());
  node.radio().send(packet_to_peer(4), nullptr);
  EXPECT_TRUE(node.radio().sending());
  simulator.run_until(simulator.now() + 5_ms);
  EXPECT_FALSE(node.radio().sending());
}

}  // namespace
}  // namespace bansim::os
