// Integration tests of the static TDMA MAC over the full stack
// (hardware + OS + channel), using BanNetwork as the assembly.
#include <gtest/gtest.h>

#include <set>

#include "core/ban_network.hpp"

namespace bansim::mac {
namespace {

using namespace bansim::sim::literals;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::TimePoint;

BanConfig static_config(std::size_t nodes, int cycle_ms,
                        std::uint8_t slots = 5) {
  BanConfig cfg;
  cfg.num_nodes = nodes;
  cfg.tdma = TdmaConfig::static_plan(Duration::milliseconds(cycle_ms), slots);
  cfg.app = AppKind::kNone;
  cfg.seed = 7;
  return cfg;
}

TEST(StaticTdma, AllNodesJoinFixedCycle) {
  BanNetwork net{static_config(5, 60)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 5u);
  // Static cycle never changes.
  EXPECT_EQ(net.base_station_mac().current_cycle(), 60_ms);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(net.node(i).mac().known_cycle(), 60_ms);
  }
}

TEST(StaticTdma, SlotAssignmentsAreExclusive) {
  BanNetwork net{static_config(5, 60)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  std::set<int> slots;
  for (std::size_t i = 0; i < 5; ++i) {
    const int slot = net.node(i).mac().slot_index();
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 5);
    slots.insert(slot);
  }
  EXPECT_EQ(slots.size(), 5u);  // no slot shared

  const auto& owners = net.base_station_mac().slot_owners();
  std::set<net::NodeId> owner_set{owners.begin(), owners.end()};
  EXPECT_EQ(owner_set.size(), 5u);
}

TEST(StaticTdma, RejectsNodesBeyondTableSize) {
  // 6 nodes contending for 4 slots: the network fills and stays full.
  BanConfig cfg = static_config(6, 50, 4);
  BanNetwork net{cfg};
  net.start();
  net.run_until(TimePoint::zero() + 20_s);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 4u);
  std::size_t joined = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (net.node(i).mac().joined()) ++joined;
  }
  EXPECT_EQ(joined, 4u);
  EXPECT_GT(net.base_station_mac().stats().requests_rejected, 0u);
}

TEST(StaticTdma, BeaconCadenceMatchesCycle) {
  BanNetwork net{static_config(2, 30)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  const auto before = net.base_station_mac().stats().beacons_sent;
  net.run_until(net.simulator().now() + 3_s);
  const auto sent = net.base_station_mac().stats().beacons_sent - before;
  EXPECT_NEAR(static_cast<double>(sent), 100.0, 2.0);  // 3 s / 30 ms
}

TEST(StaticTdma, NodesReceiveAlmostEveryBeacon) {
  BanNetwork net{static_config(5, 60)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  const auto rx0 = net.node(0).mac().stats().beacons_received;
  net.run_until(net.simulator().now() + 6_s);
  const auto got = net.node(0).mac().stats().beacons_received - rx0;
  EXPECT_NEAR(static_cast<double>(got), 100.0, 3.0);  // 6 s / 60 ms
  EXPECT_EQ(net.node(0).mac().stats().beacons_missed, 0u);
}

TEST(StaticTdma, QueuedPayloadIsDeliveredToBaseStation) {
  BanNetwork net{static_config(3, 60)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  net.node(1).mac().queue_payload({0xAB, 0xCD});
  net.run_until(net.simulator().now() + 200_ms);
  const auto& traffic = net.base_station_app().per_node();
  const auto it = traffic.find(net.node(1).address());
  ASSERT_NE(it, traffic.end());
  EXPECT_EQ(it->second.packets, 1u);
  EXPECT_EQ(it->second.bytes, 2u);
}

TEST(StaticTdma, OnePayloadPerCycle) {
  BanNetwork net{static_config(1, 30)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  for (int i = 0; i < 3; ++i) net.node(0).mac().queue_payload({1});
  EXPECT_EQ(net.node(0).mac().queue_depth(), 3u);
  net.run_until(net.simulator().now() + 35_ms);
  EXPECT_EQ(net.node(0).mac().queue_depth(), 2u);  // one drained per cycle
  net.run_until(net.simulator().now() + 70_ms);
  EXPECT_EQ(net.node(0).mac().queue_depth(), 0u);
}

TEST(StaticTdma, QueueBoundDropsOldest) {
  BanNetwork net{static_config(1, 30)};
  net.start();
  for (std::size_t i = 0; i < NodeMac::kMaxQueue + 3; ++i) {
    net.node(0).mac().queue_payload({static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(net.node(0).mac().queue_depth(), NodeMac::kMaxQueue);
  EXPECT_EQ(net.node(0).mac().stats().payloads_dropped, 3u);
}

TEST(StaticTdma, SurvivesBeaconLossByDeadReckoning) {
  BanNetwork net{static_config(2, 30)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));

  // Sever node1 <- bs for a few cycles: node must dead-reckon, not rejoin.
  const auto resyncs_before = net.node(0).mac().stats().resyncs;
  net.channel().set_link(0 /*bs attaches first*/, 1, false);
  net.run_until(net.simulator().now() + 70_ms);  // ~2 lost beacons
  net.channel().set_link(0, 1, true);
  net.run_until(net.simulator().now() + 200_ms);

  EXPECT_TRUE(net.node(0).mac().joined());
  EXPECT_GE(net.node(0).mac().stats().beacons_missed, 1u);
  EXPECT_EQ(net.node(0).mac().stats().resyncs, resyncs_before);
}

TEST(StaticTdma, FallsBackToSearchAfterSustainedLoss) {
  BanNetwork net{static_config(2, 30)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  const auto resyncs_before = net.node(0).mac().stats().resyncs;

  net.channel().set_link(0, 1, false);
  // Lose far more than missed_beacon_limit beacons.
  net.run_until(net.simulator().now() + 1_s);
  EXPECT_GT(net.node(0).mac().stats().resyncs, resyncs_before);

  // Reconnect: the node re-syncs and keeps its old slot (the BS never
  // evicted it).
  net.channel().set_link(0, 1, true);
  net.run_until(net.simulator().now() + 1_s);
  EXPECT_TRUE(net.node(0).mac().joined());
}

TEST(StaticTdma, DataSlotTransmissionsDoNotCollide) {
  core::BanConfig cfg = static_config(5, 30);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 205;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  const auto collisions_before = net.channel().collisions();
  net.run_until(net.simulator().now() + 5_s);
  // Steady state: slotted transmissions never overlap.
  EXPECT_EQ(net.channel().collisions(), collisions_before);
}

TEST(StaticTdma, StatsToStringStates) {
  EXPECT_STREQ(to_string(NodeMacState::kSearching), "searching");
  EXPECT_STREQ(to_string(NodeMacState::kJoined), "joined");
  EXPECT_STREQ(to_string(TdmaVariant::kStatic), "static");
  EXPECT_STREQ(to_string(TdmaVariant::kDynamic), "dynamic");
}

}  // namespace
}  // namespace bansim::mac
