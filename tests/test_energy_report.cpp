// Energy/validation CSV serialization round-trips through their parsers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "energy/energy_report.hpp"

namespace bansim::energy {
namespace {

// render_energy_csv prints %.6f millijoules, so round-tripped joules are
// exact to 1e-6 mJ == 1e-9 J.
constexpr double kCsvJouleTol = 1.0e-9;

std::vector<NodeEnergy> sample_nodes() {
  NodeEnergy node1;
  node1.node = "node1";
  node1.components.push_back(
      {"radio", 0.00531,
       {{"standby", 0.00011}, {"tx_air", 0.0052}}});
  node1.components.push_back({"mcu", 0.0123, {{"active", 0.0123}}});
  NodeEnergy bs;
  bs.node = "bs";
  bs.components.push_back(
      {"radio", 0.0405, {{"rx_listen", 0.04}, {"tx_air", 0.0005}}});
  return {node1, bs};
}

TEST(EnergyReportCsv, RoundTripsNodesComponentsAndStates) {
  const std::vector<NodeEnergy> nodes = sample_nodes();
  const std::vector<NodeEnergy> parsed =
      parse_energy_csv(render_energy_csv(nodes));

  ASSERT_EQ(parsed.size(), nodes.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    EXPECT_EQ(parsed[n].node, nodes[n].node);
    ASSERT_EQ(parsed[n].components.size(), nodes[n].components.size());
    for (std::size_t c = 0; c < nodes[n].components.size(); ++c) {
      const auto& in = nodes[n].components[c];
      const auto& out = parsed[n].components[c];
      EXPECT_EQ(out.component, in.component);
      // Component joules are recomputed as the per-state sum.
      EXPECT_NEAR(out.joules, in.joules, kCsvJouleTol * in.per_state.size());
      ASSERT_EQ(out.per_state.size(), in.per_state.size());
      for (std::size_t s = 0; s < in.per_state.size(); ++s) {
        EXPECT_EQ(out.per_state[s].first, in.per_state[s].first);
        EXPECT_NEAR(out.per_state[s].second, in.per_state[s].second,
                    kCsvJouleTol);
      }
    }
  }
  EXPECT_NEAR(parsed[0].total_joules(), nodes[0].total_joules(),
              3 * kCsvJouleTol);
}

TEST(EnergyReportCsv, SecondRenderIsAFixedPoint) {
  const std::string once = render_energy_csv(sample_nodes());
  EXPECT_EQ(render_energy_csv(parse_energy_csv(once)), once);
}

TEST(EnergyReportCsv, RejectsMalformedInput) {
  EXPECT_THROW(parse_energy_csv(""), std::invalid_argument);
  EXPECT_THROW(parse_energy_csv("wrong,header\n"), std::invalid_argument);
  EXPECT_THROW(parse_energy_csv("node,component,state,energy_mj\na,b,c\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_energy_csv("node,component,state,energy_mj\na,b,c,not-a-number\n"),
      std::invalid_argument);
}

ValidationTable sample_table() {
  ValidationTable table;
  table.title = "Table 1";
  table.parameter_name = "Sampling (Hz)";
  table.rows.push_back({"205", 52.4, 1.832, 1.851, 3.217, 3.264});
  table.rows.push_back({"410", 26.2, 2.916, 2.958, 4.012, 4.118});
  return table;
}

TEST(ValidationCsv, RoundTripsValueColumns) {
  const ValidationTable table = sample_table();
  const ValidationTable parsed = parse_validation_csv(table.render_csv());

  // Title / parameter name are not part of the CSV.
  EXPECT_TRUE(parsed.title.empty());
  ASSERT_EQ(parsed.rows.size(), table.rows.size());
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const auto& in = table.rows[i];
    const auto& out = parsed.rows[i];
    EXPECT_EQ(out.parameter, in.parameter);
    EXPECT_NEAR(out.cycle_ms, in.cycle_ms, 0.05);        // %.1f
    EXPECT_NEAR(out.radio_real_mj, in.radio_real_mj, 5e-4);  // %.3f
    EXPECT_NEAR(out.radio_sim_mj, in.radio_sim_mj, 5e-4);
    EXPECT_NEAR(out.mcu_real_mj, in.mcu_real_mj, 5e-4);
    EXPECT_NEAR(out.mcu_sim_mj, in.mcu_sim_mj, 5e-4);
    // Error columns are derived, never parsed back.
    EXPECT_NEAR(out.radio_error(), in.radio_error(), 1e-3);
    EXPECT_NEAR(out.mcu_error(), in.mcu_error(), 1e-3);
  }
  EXPECT_NEAR(parsed.avg_radio_error(), table.avg_radio_error(), 1e-3);
}

TEST(ValidationCsv, SecondRenderIsAFixedPoint) {
  const std::string once = sample_table().render_csv();
  EXPECT_EQ(parse_validation_csv(once).render_csv(), once);
}

TEST(ValidationCsv, RejectsMalformedInput) {
  EXPECT_THROW(parse_validation_csv("bogus\n"), std::invalid_argument);
  const std::string header =
      "parameter,cycle_ms,radio_real_mj,radio_sim_mj,mcu_real_mj,mcu_sim_mj,"
      "radio_err,mcu_err\n";
  EXPECT_THROW(parse_validation_csv(header + "205,52.4,1.8\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_validation_csv(header + "205,x,1.8,1.8,3.2,3.2,0.01,0.01\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace bansim::energy
