// ScenarioRunner: parallel sweep execution must be indistinguishable from
// serial execution except for wall-clock time — per-scenario isolation means
// bit-identical results, index-ordered.
#include "sim/scenario_runner.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bansim.hpp"

namespace bansim {
namespace {

using sim::Duration;
using sim::ScenarioRunner;

TEST(ScenarioRunner, ResolveJobs) {
  EXPECT_GE(sim::resolve_jobs(0), 1u);
  EXPECT_EQ(sim::resolve_jobs(3), 3u);
}

TEST(ScenarioRunner, ConsumeJobsFlag) {
  const char* raw[] = {"prog", "--foo", "--jobs", "4", "--bar", nullptr};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = 5;
  EXPECT_EQ(sim::consume_jobs_flag(argc, argv.data()), 4u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--foo");
  EXPECT_STREQ(argv[2], "--bar");
  EXPECT_EQ(argv[3], nullptr);
}

TEST(ScenarioRunner, ConsumeJobsFlagEqualsFormAndDefaults) {
  {
    const char* raw[] = {"prog", "--jobs=7", nullptr};
    std::vector<char*> argv{const_cast<char*>(raw[0]),
                            const_cast<char*>(raw[1]), nullptr};
    int argc = 2;
    EXPECT_EQ(sim::consume_jobs_flag(argc, argv.data()), 7u);
    EXPECT_EQ(argc, 1);
  }
  {
    const char* raw[] = {"prog", nullptr};
    std::vector<char*> argv{const_cast<char*>(raw[0]), nullptr};
    int argc = 1;
    EXPECT_EQ(sim::consume_jobs_flag(argc, argv.data(), 9), 9u);
  }
  {  // malformed value falls back to serial rather than aborting the bench
    const char* raw[] = {"prog", "--jobs", "four", nullptr};
    std::vector<char*> argv{const_cast<char*>(raw[0]),
                            const_cast<char*>(raw[1]),
                            const_cast<char*>(raw[2]), nullptr};
    int argc = 3;
    EXPECT_EQ(sim::consume_jobs_flag(argc, argv.data()), 1u);
  }
}

TEST(ScenarioRunner, ResultsOrderedByIndex) {
  std::vector<std::function<int()>> scenarios;
  for (int i = 0; i < 64; ++i) {
    scenarios.push_back([i] { return i * i; });
  }
  ScenarioRunner runner{4};
  const std::vector<int> results = runner.run(scenarios);
  ASSERT_EQ(results.size(), scenarios.size());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  EXPECT_GE(runner.last_wall_seconds(), 0.0);
}

TEST(ScenarioRunner, EmptyAndSingle) {
  ScenarioRunner runner{8};
  EXPECT_TRUE(runner.run(std::vector<std::function<int()>>{}).empty());
  std::vector<std::function<int()>> one{[] { return 41; }};
  EXPECT_EQ(runner.run(one), std::vector<int>{41});
}

TEST(ScenarioRunner, FirstExceptionByIndexPropagates) {
  std::vector<std::function<int()>> scenarios;
  for (int i = 0; i < 8; ++i) {
    scenarios.push_back([i]() -> int {
      if (i == 2 || i == 5) throw std::runtime_error("scenario " + std::to_string(i));
      return i;
    });
  }
  ScenarioRunner runner{4};
  try {
    (void)runner.run(scenarios);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "scenario 2");
  }
}

TEST(ScenarioRunner, TimedResultsReportPerScenarioSeconds) {
  std::vector<std::function<int()>> scenarios{[] { return 1; }, [] { return 2; }};
  ScenarioRunner runner{2};
  const auto timed = runner.run_timed(scenarios);
  ASSERT_EQ(timed.size(), 2u);
  EXPECT_EQ(timed[0].value, 1);
  EXPECT_EQ(timed[1].value, 2);
  for (const auto& t : timed) EXPECT_GE(t.seconds, 0.0);
}

// The tentpole guarantee: running full BAN simulations in parallel yields
// bit-identical energy results to serial execution, because every scenario
// owns its entire Simulator + node stack.
TEST(ScenarioRunner, ParallelBanScenariosBitIdenticalToSerial) {
  auto make_scenarios = [] {
    std::vector<std::function<core::ScenarioResult()>> scenarios;
    for (const std::uint64_t seed : {3ull, 17ull, 101ull, 2024ull}) {
      scenarios.push_back([seed] {
        core::PaperSetup setup;
        setup.seed = seed;
        setup.measure = Duration::seconds(3);
        core::BanConfig cfg =
            core::streaming_static_config(setup, Duration::milliseconds(30));
        core::MeasurementProtocol protocol;
        protocol.measure = setup.measure;
        return core::run_scenario(cfg, protocol);
      });
    }
    return scenarios;
  };

  ScenarioRunner serial{1};
  ScenarioRunner parallel{4};
  const auto a = serial.run(make_scenarios());
  const auto b = parallel.run(make_scenarios());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].joined);
    // Exact floating-point equality on purpose: not "close", identical.
    EXPECT_EQ(a[i].radio_mj, b[i].radio_mj) << "scenario " << i;
    EXPECT_EQ(a[i].mcu_mj, b[i].mcu_mj) << "scenario " << i;
    EXPECT_EQ(a[i].asic_mj, b[i].asic_mj) << "scenario " << i;
    EXPECT_EQ(a[i].total_mj, b[i].total_mj) << "scenario " << i;
    EXPECT_EQ(a[i].data_packets, b[i].data_packets) << "scenario " << i;
    EXPECT_EQ(a[i].events, b[i].events) << "scenario " << i;
  }
}

}  // namespace
}  // namespace bansim
