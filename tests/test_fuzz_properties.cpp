// Property and fuzz tests: random-but-legal workloads hammering the
// kernel, the radio state machine and the OS scheduler, checking the
// invariants that every higher layer silently relies on.
#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <map>
#include <vector>

#include "hw/radio_nrf2401.hpp"
#include "os/task_scheduler.hpp"
#include "os/timer_service.hpp"
#include "phy/channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace bansim {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::Rng;
using sim::TimePoint;

// --- Event-queue model check ------------------------------------------------

class EventQueueModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModelCheck, MatchesReferenceModel) {
  // Random schedule/cancel/pop against a multimap reference.
  Rng rng{GetParam()};
  sim::EventQueue queue;
  std::multimap<std::int64_t, int> model;  // time -> tag (FIFO by emplace)
  std::vector<std::pair<sim::EventHandle, std::pair<std::int64_t, int>>> live;
  std::vector<int> popped_tags;
  int next_tag = 0;

  for (int step = 0; step < 3000; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.5) {
      const std::int64_t when = rng.uniform_int(0, 1000);
      const int tag = next_tag++;
      auto handle = queue.schedule(
          TimePoint::zero() + Duration::milliseconds(when),
          [tag, &popped_tags] { popped_tags.push_back(tag); });
      model.emplace(when, tag);
      live.emplace_back(std::move(handle), std::make_pair(when, tag));
    } else if (dice < 0.65 && !live.empty()) {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      if (live[victim].first.pending()) {
        live[victim].first.cancel();
        // Erase the matching (time, tag) pair from the model.
        auto [lo, hi] = model.equal_range(live[victim].second.first);
        for (auto it = lo; it != hi; ++it) {
          if (it->second == live[victim].second.second) {
            model.erase(it);
            break;
          }
        }
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (!queue.empty()) {
      auto [when, action] = queue.pop();
      action();
      // The reference model's earliest time must match; FIFO among equal
      // times is guaranteed by the queue but the multimap preserves
      // insertion order for equal keys too, so tags must agree.
      ASSERT_FALSE(model.empty());
      ASSERT_EQ(model.begin()->first,
                when.since_epoch().ticks() / 1'000'000);
      ASSERT_EQ(model.begin()->second, popped_tags.back());
      model.erase(model.begin());
    }
  }
  // size() is an upper bound while cancelled entries sit below the top.
  EXPECT_GE(queue.size(), model.size());

  // Drain both completely: every remaining event must match in order.
  while (!queue.empty()) {
    auto [when, action] = queue.pop();
    action();
    ASSERT_FALSE(model.empty());
    EXPECT_EQ(model.begin()->first, when.since_epoch().ticks() / 1'000'000);
    EXPECT_EQ(model.begin()->second, popped_tags.back());
    model.erase(model.begin());
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(queue.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelCheck,
                         ::testing::Values(1ull, 22ull, 333ull, 4444ull));

// --- Radio state-machine fuzz -------------------------------------------------

class RadioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadioFuzz, LegalCommandStormKeepsInvariants) {
  Rng rng{GetParam()};
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  phy::Channel channel{context};
  hw::RadioParams params;
  phy::PhyConfig phy_config;
  hw::RadioNrf2401 a{context, channel, "a", params, phy_config};
  hw::RadioNrf2401 b{context, channel, "b", params, phy_config};
  a.set_local_address(1);
  b.set_local_address(2);

  std::uint64_t delivered = 0;
  hw::RadioNrf2401::Callbacks cb;
  cb.on_receive = [&](const net::Packet&) { ++delivered; };
  b.set_callbacks(cb);

  a.power_up();
  b.power_up();
  simulator.run_until(simulator.now() + 4_ms);

  for (int step = 0; step < 2000; ++step) {
    // Issue a random *legal* command on each radio, advance random time.
    for (hw::RadioNrf2401* radio : {&a, &b}) {
      const double dice = rng.next_double();
      switch (radio->state()) {
        case hw::RadioState::kStandby:
          if (dice < 0.3) {
            net::Packet p;
            p.header.dest = radio == &a ? 2 : 1;
            p.header.src = radio->local_address();
            p.payload.assign(
                static_cast<std::size_t>(rng.uniform_int(0, 18)), 0x77);
            radio->send(p);
          } else if (dice < 0.6) {
            radio->start_rx();
          } else if (dice < 0.65) {
            radio->power_down();
          }
          break;
        case hw::RadioState::kRxListen:
        case hw::RadioState::kRxSettle:
          if (dice < 0.4) radio->stop_rx();
          break;
        case hw::RadioState::kPowerDown:
          if (dice < 0.8) radio->power_up();
          break;
        default:
          break;  // mid-transaction: hands off
      }
    }
    simulator.run_until(simulator.now() +
                        Duration::microseconds(rng.uniform_int(50, 4000)));
  }
  simulator.run();

  const TimePoint now = simulator.now();
  for (const hw::RadioNrf2401* radio : {&a, &b}) {
    // Energy conservation: per-state energies sum to the total and all
    // residencies sum to elapsed time.
    double sum = 0.0;
    Duration time_sum = Duration::zero();
    for (std::size_t s = 0; s < radio->meter().num_states(); ++s) {
      sum += radio->meter().energy_in(static_cast<int>(s), now);
      time_sum += radio->meter().time_in(static_cast<int>(s), now);
    }
    EXPECT_NEAR(sum, radio->meter().total_energy(now), 1e-12);
    EXPECT_EQ(time_sum, now - TimePoint::zero());
    // No stuck transaction.
    EXPECT_TRUE(radio->state() == hw::RadioState::kStandby ||
                radio->state() == hw::RadioState::kPowerDown ||
                radio->state() == hw::RadioState::kRxListen ||
                radio->state() == hw::RadioState::kRxSettle)
        << to_string(radio->state());
  }
  // Traffic flowed and the books balance.
  EXPECT_EQ(b.stats().rx_delivered, delivered);
  EXPECT_LE(b.stats().rx_delivered + b.stats().rx_crc_dropped +
                b.stats().rx_addr_filtered,
            a.stats().tx_frames + b.stats().tx_frames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadioFuzz,
                         ::testing::Values(5ull, 55ull, 555ull));

// --- Scheduler fuzz -----------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, RandomPostingPreservesAccounting) {
  Rng rng{GetParam()};
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  hw::McuParams params;
  hw::Mcu mcu{context, "n", params, 0.0};
  os::PowerManager power;
  power.register_peripheral("timer", os::ClockConstraint::kSmclk);
  os::NullProbe probe;
  os::TaskScheduler scheduler{context, mcu, power, "n", probe};

  std::uint64_t expected_cycles = 0;
  std::uint64_t posted = 0;
  // Drain the boot stretch: the MCU is active from t=0 until the first
  // dispatch puts it to sleep, which must be accounted like any task.
  scheduler.post("boot", 1, nullptr);
  expected_cycles += 1;
  ++posted;
  std::function<void()> maybe_post = [&] {
    while (rng.chance(0.4) && posted < 2000) {
      const auto cycles = static_cast<std::uint64_t>(rng.uniform_int(1, 4000));
      expected_cycles += cycles;
      ++posted;
      if (rng.chance(0.3)) {
        expected_cycles += params.isr_overhead_cycles;
        scheduler.raise_interrupt("fuzz_isr", cycles, maybe_post);
      } else {
        scheduler.post("fuzz_task", cycles, maybe_post);
      }
    }
  };
  // Seed the cascade from a few timer-like external events.
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_in(Duration::microseconds(rng.uniform_int(0, 100000)),
                          [&] {
                            const auto cycles = static_cast<std::uint64_t>(
                                rng.uniform_int(1, 4000));
                            expected_cycles += cycles;
                            ++posted;
                            scheduler.post("fuzz_task", cycles, maybe_post);
                          });
  }
  simulator.run();

  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.tasks_run() + scheduler.interrupts_run(), posted);
  // Active time == executed cycles / f + wakeup stalls.
  const double active_s =
      mcu.meter()
          .time_in(static_cast<int>(hw::McuMode::kActive), simulator.now())
          .to_seconds();
  const double work_s = static_cast<double>(expected_cycles) / params.cpu_hz;
  const double stall_s = static_cast<double>(mcu.wakeups()) *
                         params.wakeup_latency.to_seconds();
  EXPECT_NEAR(active_s, work_s + stall_s, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(9ull, 99ull, 999ull));

}  // namespace
}  // namespace bansim
