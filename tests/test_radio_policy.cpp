// Tests of the radio power-down housekeeping policy.
#include <gtest/gtest.h>

#include "core/ban_network.hpp"

namespace bansim::mac {
namespace {

using namespace bansim::sim::literals;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::TimePoint;

BanConfig rpeak_config(bool power_down) {
  BanConfig cfg;
  cfg.num_nodes = 2;
  cfg.tdma = TdmaConfig::static_plan(240_ms, 5);
  cfg.tdma.radio_power_down = power_down;
  cfg.app = AppKind::kRpeak;
  cfg.seed = 33;
  return cfg;
}

TEST(RadioPowerDown, RadioSpendsTimeInPowerDown) {
  BanNetwork net{rpeak_config(true)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  const auto t0 = net.simulator().now();
  const auto& meter = net.node(0).board().radio().meter();
  const auto pd_before =
      meter.time_in(static_cast<int>(hw::RadioState::kPowerDown), t0);
  net.run_until(t0 + 10_s);
  const auto pd = meter.time_in(static_cast<int>(hw::RadioState::kPowerDown),
                                net.simulator().now()) -
                  pd_before;
  // Most of the 240 ms cycle is idle: power-down should cover > 80 %.
  EXPECT_GT(pd.to_seconds(), 8.0);
}

TEST(RadioPowerDown, ProtocolKeepsWorking) {
  BanNetwork net{rpeak_config(true)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  const auto beacons_before = net.node(0).mac().stats().beacons_received;
  const auto missed_before = net.node(0).mac().stats().beacons_missed;
  net.run_until(net.simulator().now() + 12_s);
  // 12 s / 240 ms = 50 beacons, none missed to late power-ups.
  EXPECT_NEAR(static_cast<double>(net.node(0).mac().stats().beacons_received -
                                  beacons_before),
              50.0, 2.0);
  EXPECT_EQ(net.node(0).mac().stats().beacons_missed - missed_before, 0u);
}

TEST(RadioPowerDown, SavesEnergyOnLongCycles) {
  auto radio_joules = [](bool power_down) {
    BanNetwork net{rpeak_config(power_down)};
    net.start();
    EXPECT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
    const auto t0 = net.simulator().now();
    const double before =
        net.node(0).board().radio().meter().total_energy(t0);
    net.run_until(t0 + 20_s);
    return net.node(0).board().radio().meter().total_energy(
               net.simulator().now()) -
           before;
  };
  const double standby = radio_joules(false);
  const double off = radio_joules(true);
  EXPECT_LT(off, standby);
  // The saving is real but small (idle-current housekeeping).
  EXPECT_LT((standby - off) / standby, 0.06);
}

TEST(RadioPowerDown, SkippedWhenIdleStretchTooShort) {
  // With a (hypothetical) 40 ms crystal start-up, no idle stretch of a
  // 30 ms cycle can amortize a power-down: the policy must not engage.
  BanConfig cfg = rpeak_config(true);
  cfg.tdma = TdmaConfig::static_plan(30_ms, 5);
  cfg.tdma.radio_power_down = true;
  cfg.board.radio.powerup_time = 40_ms;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  const auto t0 = net.simulator().now();
  const auto& meter = net.node(0).board().radio().meter();
  const auto pd_before =
      meter.time_in(static_cast<int>(hw::RadioState::kPowerDown), t0);
  net.run_until(t0 + 5_s);
  const auto pd = meter.time_in(static_cast<int>(hw::RadioState::kPowerDown),
                                net.simulator().now()) -
                  pd_before;
  EXPECT_EQ(pd, sim::Duration::zero());
  // And the protocol still runs.
  EXPECT_TRUE(net.node(0).mac().joined());
}

}  // namespace
}  // namespace bansim::mac
