// Crash-recovery battery for the campaign orchestrator.
//
// Every test pins the same contract from a different failure angle: a
// campaign that is killed, torn, corrupted or split mid-flight and then
// resumed must produce aggregates EXACTLY equal (bit-identical doubles)
// to the same campaign run once, uninterrupted — across all four MAC
// protocols at once (every spec here sweeps static TDMA, dynamic TDMA,
// ALOHA and slotted CSMA/CA as variants).
//
// The binary carries a custom main(): worker children that the
// orchestrator re-execs via /proc/self/exe re-enter through
// maybe_worker_main() before gtest ever initializes, so the forked
// workers run this test build's code.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/orchestrator.hpp"
#include "campaign/report.hpp"
#include "campaign/shard_runner.hpp"
#include "campaign/store.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bansim;

/// The battery's scenario space: all four MAC protocols, 4 patients per
/// variant, one patient per shard (maximum kill granularity) -> 16 shards.
campaign::CampaignSpec battery_spec() {
  campaign::CampaignSpec spec;
  spec.patients = 4;
  spec.shard_size = 1;
  spec.protocols = {mac::Protocol::kStaticTdma, mac::Protocol::kDynamicTdma,
                    mac::Protocol::kAloha, mac::Protocol::kCsmaCa};
  spec.seeds = {11};
  spec.measure = sim::Duration::milliseconds(300);
  spec.settle = sim::Duration::milliseconds(500);
  spec.join_deadline = sim::Duration::seconds(20);
  spec.cdf_bins = 16;
  return spec;
}

core::BanConfig battery_base() {
  core::BanConfig config;
  config.num_nodes = 3;
  config.tdma =
      mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 3);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;
  config.stagger = sim::Duration::milliseconds(2);
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 20.0;  // finite lifetimes
  return config;
}

campaign::CampaignAggregates aggregates_of(const fs::path& dir) {
  return campaign::aggregate(campaign::load_campaign(dir),
                             campaign::collect_results(dir));
}

/// Exact-equality assertion between two stores' aggregates: per-variant
/// columns compare as raw doubles (operator== is elementwise, bit-exact),
/// the lifetime CDFs as integral bin counts + identical edges, and the
/// rendered artifacts byte-for-byte.
void expect_identical_aggregates(const fs::path& reference_dir,
                                 const fs::path& candidate_dir) {
  const campaign::CampaignAggregates a = aggregates_of(reference_dir);
  const campaign::CampaignAggregates b = aggregates_of(candidate_dir);
  ASSERT_TRUE(a.complete());
  ASSERT_TRUE(b.complete());
  ASSERT_EQ(a.variants.size(), b.variants.size());
  for (std::size_t v = 0; v < a.variants.size(); ++v) {
    EXPECT_TRUE(a.variants[v].columns == b.variants[v].columns)
        << "variant " << a.variants[v].variant.label()
        << " columns differ (exact-double comparison)";
    EXPECT_EQ(a.variants[v].failed_joins, b.variants[v].failed_joins);
  }
  EXPECT_EQ(a.lifetime_cdf.bin_count, b.lifetime_cdf.bin_count);
  EXPECT_EQ(a.lifetime_cdf.upper_edge, b.lifetime_cdf.upper_edge);
  EXPECT_EQ(a.lifetime_cdf.count, b.lifetime_cdf.count);
  EXPECT_EQ(a.lifetime_cdf.unbounded, b.lifetime_cdf.unbounded);
  EXPECT_EQ(campaign::render_csv(a), campaign::render_csv(b));
  EXPECT_EQ(campaign::render_report(a), campaign::render_report(b));
}

class CampaignOrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("orch_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Creates and runs the battery campaign start-to-finish in-process —
  /// the uninterrupted reference every chaos scenario compares against.
  fs::path run_reference() {
    const fs::path dir = root_ / "reference";
    campaign::create_campaign(dir, battery_spec(), battery_base());
    campaign::RunCampaignOptions in_process;
    in_process.workers = 0;
    const auto result = campaign::run_campaign(dir, in_process);
    EXPECT_FALSE(result.incomplete);
    return dir;
  }

  fs::path make_campaign(const std::string& name) {
    const fs::path dir = root_ / name;
    campaign::create_campaign(dir, battery_spec(), battery_base());
    return dir;
  }

  fs::path root_;
};

TEST_F(CampaignOrchestratorTest, MultiProcessMatchesInProcess) {
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("multiproc");
  campaign::RunCampaignOptions options;
  options.workers = 3;
  const auto result = campaign::run_campaign(dir, options);
  EXPECT_FALSE(result.incomplete);
  EXPECT_EQ(result.workers_spawned, 3U);
  EXPECT_EQ(result.workers_died, 0U);
  EXPECT_EQ(result.shards_run, 16U);
  expect_identical_aggregates(reference, dir);

  const campaign::VerifyReport verify = campaign::verify_store(dir);
  EXPECT_TRUE(verify.ok) << verify.render();
}

TEST_F(CampaignOrchestratorTest, WorkerSigkilledMidShardAtManyPoints) {
  // The first worker is SIGKILLed at a sweep of shard ordinals before its
  // record lands ("mid").  A respawned worker re-runs the lost shard; the
  // final aggregates must not show a trace of the crash.
  const fs::path reference = run_reference();
  for (const std::size_t ordinal : {1UL, 3UL, 7UL, 16UL}) {
    const fs::path dir =
        make_campaign("kill_mid_" + std::to_string(ordinal));
    campaign::RunCampaignOptions options;
    options.workers = 1;  // every shard flows through the chaos worker
    options.worker_chaos = std::to_string(ordinal) + ":mid";
    const auto result = campaign::run_campaign(dir, options);
    EXPECT_FALSE(result.incomplete) << "ordinal " << ordinal;
    EXPECT_GE(result.workers_died, 1U) << "ordinal " << ordinal;
    expect_identical_aggregates(reference, dir);
  }
}

TEST_F(CampaignOrchestratorTest, WorkerTornWriteAndPostWriteKills) {
  const fs::path reference = run_reference();
  // "torn": killed halfway through the record write — the store gains a
  // torn tail, the shard re-runs.  "post": killed after the record but
  // before reporting — the shard is durable, the orchestrator re-runs it
  // anyway (it cannot know), and last-writer-wins dedups the result.
  for (const std::string mode : {"torn", "post"}) {
    const fs::path dir = make_campaign("kill_" + mode);
    campaign::RunCampaignOptions options;
    options.workers = 2;
    options.worker_chaos = "2:" + mode;
    const auto result = campaign::run_campaign(dir, options);
    EXPECT_FALSE(result.incomplete) << mode;
    EXPECT_GE(result.workers_died, 1U) << mode;
    expect_identical_aggregates(reference, dir);

    const campaign::StoreScan scan = campaign::scan_store(dir);
    if (mode == "torn") {
      EXPECT_TRUE(scan.any_tail_error()) << "torn kill left no torn tail?";
    } else {
      EXPECT_GE(campaign::collect_results(dir).duplicates +
                    campaign::verify_store(dir).duplicates,
                1U)
          << "post kill should leave a duplicate record";
    }
    // Either way the store still verifies complete: torn tails are
    // warnings, duplicates are legal.
    EXPECT_TRUE(campaign::verify_store(dir).ok);
  }
}

TEST_F(CampaignOrchestratorTest, WholeCampaignSigkilledThenResumed) {
  // The outside-in crash: the whole orchestrator process group (parent +
  // workers) is SIGKILLed mid-campaign at a sweep of points, then a fresh
  // process resumes the directory.  This is the scenario the CI smoke
  // drives through the CLI; here it runs in-API via fork().
  const fs::path reference = run_reference();
  for (const std::size_t kill_after : {2UL, 8UL, 15UL}) {
    const fs::path dir =
        make_campaign("sigkill_" + std::to_string(kill_after));
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: run with workers and die_after — run_campaign
      // SIGKILLs the workers and then this process.  Nothing returns.
      campaign::RunCampaignOptions options;
      options.workers = 2;
      options.die_after_shards = kill_after;
      try {
        (void)campaign::run_campaign(dir, options);
      } catch (...) {
      }
      _exit(99);  // only reachable if the kill failed
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited instead of dying (status " << status << ")";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The store is valid but incomplete; resume finishes it.
    const campaign::VerifyReport before = campaign::verify_store(dir);
    EXPECT_FALSE(before.ok);
    EXPECT_GE(before.shards_present, kill_after);
    campaign::RunCampaignOptions resume;
    resume.workers = 2;
    const auto resumed = campaign::run_campaign(dir, resume);
    EXPECT_FALSE(resumed.incomplete);
    EXPECT_GT(resumed.shards_already_complete, 0U);
    expect_identical_aggregates(reference, dir);
    EXPECT_TRUE(campaign::verify_store(dir).ok);
  }
}

TEST_F(CampaignOrchestratorTest, TruncatedStoreTailResumes) {
  // Chop bytes off a finished segment's tail (fs-level damage after a
  // power cut): the truncated records become invisible, resume re-runs
  // exactly those shards, aggregates stay identical.
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("truncate");
  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  (void)campaign::run_campaign(dir, in_process);

  const fs::path segment = campaign::segments_dir(dir) / "gen1-w0.seg";
  ASSERT_TRUE(fs::exists(segment));
  const auto size = fs::file_size(segment);
  fs::resize_file(segment, size - 37);  // tear mid-record

  const campaign::StoreScan scan = campaign::scan_store(dir);
  ASSERT_TRUE(scan.any_tail_error());
  const auto resumed = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_GE(resumed.shards_run, 1U);
  expect_identical_aggregates(reference, dir);
}

TEST_F(CampaignOrchestratorTest, BitFlipPlusDoubleResumeDedupsLastWriterWins) {
  // The nastiest store history we can manufacture: corrupt a mid-segment
  // record (hiding it and everything after), resume (re-runs those shards
  // into generation 2), then REPAIR the flipped bit — now both the old
  // generation-1 records and the new generation-2 records are visible for
  // the same shards.  Last-writer-wins must pick generation 2, and the
  // aggregates must still be bit-identical to the uninterrupted run.
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("bitflip");
  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  (void)campaign::run_campaign(dir, in_process);

  const fs::path segment = campaign::segments_dir(dir) / "gen1-w0.seg";
  const campaign::SegmentScan before = campaign::scan_segment(segment);
  ASSERT_GE(before.records.size(), 16U);

  // Flip a bit inside the 5th record's payload.
  std::uint64_t offset = 24;  // header
  for (int r = 0; r < 4; ++r) offset += 12 + before.records[r].payload.size();
  offset += 30;  // inside record 4's payload
  const auto flip = [&] {
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x08);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
  };
  flip();
  ASSERT_LT(campaign::scan_segment(segment).records.size(), 16U);

  // First resume: re-runs every hidden shard into generation 2.
  const auto resume1 = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resume1.incomplete);
  EXPECT_GE(resume1.shards_run, 1U);

  // Repair the bit: the generation-1 originals reappear as duplicates.
  flip();
  ASSERT_EQ(campaign::scan_segment(segment).records.size(),
            before.records.size());
  const campaign::CollectedResults collected = campaign::collect_results(dir);
  EXPECT_GE(collected.duplicates, 1U);
  expect_identical_aggregates(reference, dir);

  // Second resume: everything is durable, so it must be a no-op...
  const auto resume2 = campaign::run_campaign(dir, in_process);
  EXPECT_EQ(resume2.shards_run, 0U);
  EXPECT_FALSE(resume2.incomplete);
  // ...and the aggregates still hold after the double resume.
  expect_identical_aggregates(reference, dir);
  EXPECT_TRUE(campaign::verify_store(dir).ok);
}

TEST_F(CampaignOrchestratorTest, StopAfterShardsLeavesResumableStore) {
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("stop");
  campaign::RunCampaignOptions stop;
  stop.workers = 0;
  stop.stop_after_shards = 5;
  const auto partial = campaign::run_campaign(dir, stop);
  EXPECT_TRUE(partial.incomplete);
  EXPECT_EQ(partial.shards_run, 5U);

  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  const auto resumed = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_EQ(resumed.shards_already_complete, 5U);
  EXPECT_EQ(resumed.shards_run, 11U);
  expect_identical_aggregates(reference, dir);
}

TEST_F(CampaignOrchestratorTest, WorkerDeathWithoutRespawnReportsIncomplete) {
  const fs::path dir = make_campaign("norespawn");
  campaign::RunCampaignOptions options;
  options.workers = 1;
  options.respawn_dead_workers = false;
  options.worker_chaos = "3:mid";
  const auto result = campaign::run_campaign(dir, options);
  EXPECT_TRUE(result.incomplete);
  EXPECT_EQ(result.workers_died, 1U);
  EXPECT_LT(result.shards_run, result.shards_total);
  EXPECT_FALSE(campaign::verify_store(dir).ok);  // incomplete, by design

  // And a resume with healthy workers completes it.
  campaign::RunCampaignOptions resume;
  resume.workers = 2;
  const auto resumed = campaign::run_campaign(dir, resume);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_TRUE(campaign::verify_store(dir).ok);
}

}  // namespace

// Custom main: the worker hook must run before gtest — orchestrator tests
// re-exec this binary as their worker processes.
int main(int argc, char** argv) {
  if (const int rc = bansim::campaign::maybe_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
