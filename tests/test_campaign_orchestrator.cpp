// Crash-recovery and worker-health battery for the campaign orchestrator.
//
// Every test pins the same contract from a different failure angle: a
// campaign that is killed, torn, corrupted or split mid-flight and then
// resumed must produce aggregates EXACTLY equal (bit-identical doubles)
// to the same campaign run once, uninterrupted — across all four MAC
// protocols at once (every spec here sweeps static TDMA, dynamic TDMA,
// ALOHA and slotted CSMA/CA as variants).
//
// The watchdog half (DESIGN.md §5i) extends the contract to hostile
// shards: hung workers are SIGKILLed within their deadline, poison shards
// are quarantined after exactly `retry_budget` attempts, and a store with
// quarantined gaps renders byte-identically to one that never attempted
// those shards at all.
//
// The binary carries a custom main(): worker children that the
// orchestrator re-execs via /proc/self/exe re-enter through
// maybe_worker_main() before gtest ever initializes, so the forked
// workers run this test build's code.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/orchestrator.hpp"
#include "campaign/report.hpp"
#include "campaign/shard_runner.hpp"
#include "campaign/store.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bansim;

/// The battery's scenario space: all four MAC protocols, 4 patients per
/// variant, one patient per shard (maximum kill granularity) -> 16 shards.
campaign::CampaignSpec battery_spec() {
  campaign::CampaignSpec spec;
  spec.patients = 4;
  spec.shard_size = 1;
  spec.protocols = {mac::Protocol::kStaticTdma, mac::Protocol::kDynamicTdma,
                    mac::Protocol::kAloha, mac::Protocol::kCsmaCa};
  spec.seeds = {11};
  spec.measure = sim::Duration::milliseconds(300);
  spec.settle = sim::Duration::milliseconds(500);
  spec.join_deadline = sim::Duration::seconds(20);
  spec.cdf_bins = 16;
  return spec;
}

/// Smaller space for the watchdog battery (2 protocols -> 8 shards) with
/// tight-but-safe health knobs: a shard here takes milliseconds, so a
/// 1.5 s floor / 4 s ceiling is two orders of magnitude of headroom
/// against sanitizer slowdown while keeping each deliberate hang short.
campaign::CampaignSpec watchdog_spec() {
  campaign::CampaignSpec spec = battery_spec();
  spec.protocols = {mac::Protocol::kStaticTdma, mac::Protocol::kCsmaCa};
  spec.retry_budget = 2;
  spec.deadline_floor_ms = 1500;
  spec.deadline_ceiling_ms = 4000;
  spec.deadline_factor = 8.0;
  return spec;
}

core::BanConfig battery_base() {
  core::BanConfig config;
  config.num_nodes = 3;
  config.tdma =
      mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 3);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;
  config.stagger = sim::Duration::milliseconds(2);
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 20.0;  // finite lifetimes
  return config;
}

campaign::CampaignAggregates aggregates_of(const fs::path& dir) {
  return campaign::aggregate(campaign::load_campaign(dir),
                             campaign::collect_results(dir));
}

/// Exact-equality assertion between two stores' aggregates: per-variant
/// columns compare as raw doubles (operator== is elementwise, bit-exact),
/// the lifetime CDFs as integral bin counts + identical edges, and the
/// rendered artifacts byte-for-byte.
void expect_identical_aggregates(const fs::path& reference_dir,
                                 const fs::path& candidate_dir) {
  const campaign::CampaignAggregates a = aggregates_of(reference_dir);
  const campaign::CampaignAggregates b = aggregates_of(candidate_dir);
  ASSERT_TRUE(a.complete());
  ASSERT_TRUE(b.complete());
  ASSERT_EQ(a.variants.size(), b.variants.size());
  for (std::size_t v = 0; v < a.variants.size(); ++v) {
    EXPECT_TRUE(a.variants[v].columns == b.variants[v].columns)
        << "variant " << a.variants[v].variant.label()
        << " columns differ (exact-double comparison)";
    EXPECT_EQ(a.variants[v].failed_joins, b.variants[v].failed_joins);
  }
  EXPECT_EQ(a.lifetime_cdf.bin_count, b.lifetime_cdf.bin_count);
  EXPECT_EQ(a.lifetime_cdf.upper_edge, b.lifetime_cdf.upper_edge);
  EXPECT_EQ(a.lifetime_cdf.count, b.lifetime_cdf.count);
  EXPECT_EQ(a.lifetime_cdf.unbounded, b.lifetime_cdf.unbounded);
  EXPECT_EQ(campaign::render_csv(a), campaign::render_csv(b));
  EXPECT_EQ(campaign::render_report(a), campaign::render_report(b));
}

/// The quarantine analogue: both stores must be complete EXCEPT for the
/// same quarantined shard set, and the rendered artifacts byte-identical
/// — which only holds because the report renders quarantine gaps from
/// manifest geometry, never from the failure history.
void expect_identical_quarantined_outputs(const fs::path& reference_dir,
                                          const fs::path& candidate_dir) {
  const campaign::CampaignAggregates a = aggregates_of(reference_dir);
  const campaign::CampaignAggregates b = aggregates_of(candidate_dir);
  ASSERT_TRUE(a.complete_except_quarantined());
  ASSERT_TRUE(b.complete_except_quarantined());
  EXPECT_EQ(a.quarantined_shards, b.quarantined_shards);
  EXPECT_EQ(campaign::render_csv(a), campaign::render_csv(b));
  EXPECT_EQ(campaign::render_report(a), campaign::render_report(b));
}

class CampaignOrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("orch_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Creates and runs the battery campaign start-to-finish in-process —
  /// the uninterrupted reference every chaos scenario compares against.
  fs::path run_reference() {
    const fs::path dir = root_ / "reference";
    campaign::create_campaign(dir, battery_spec(), battery_base());
    campaign::RunCampaignOptions in_process;
    in_process.workers = 0;
    const auto result = campaign::run_campaign(dir, in_process);
    EXPECT_FALSE(result.incomplete);
    return dir;
  }

  fs::path make_campaign(const std::string& name) {
    const fs::path dir = root_ / name;
    campaign::create_campaign(dir, battery_spec(), battery_base());
    return dir;
  }

  fs::path make_campaign_with(const std::string& name,
                              const campaign::CampaignSpec& spec) {
    const fs::path dir = root_ / name;
    campaign::create_campaign(dir, spec, battery_base());
    return dir;
  }

  /// In-process reference run for an arbitrary spec (pre-seeded stores
  /// included — quarantined shards are skipped, not failures).
  fs::path run_reference_with(const campaign::CampaignSpec& spec,
                              const std::string& name = "reference") {
    const fs::path dir = make_campaign_with(name, spec);
    campaign::RunCampaignOptions in_process;
    in_process.workers = 0;
    const auto result = campaign::run_campaign(dir, in_process);
    EXPECT_FALSE(result.incomplete);
    return dir;
  }

  fs::path root_;
};

TEST_F(CampaignOrchestratorTest, MultiProcessMatchesInProcess) {
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("multiproc");
  campaign::RunCampaignOptions options;
  options.workers = 3;
  const auto result = campaign::run_campaign(dir, options);
  EXPECT_FALSE(result.incomplete);
  EXPECT_EQ(result.workers_spawned, 3U);
  EXPECT_EQ(result.workers_died, 0U);
  EXPECT_EQ(result.shards_run, 16U);
  expect_identical_aggregates(reference, dir);

  const campaign::VerifyReport verify = campaign::verify_store(dir);
  EXPECT_TRUE(verify.ok) << verify.render();
}

TEST_F(CampaignOrchestratorTest, WorkerSigkilledMidShardAtManyPoints) {
  // The first worker is SIGKILLed at a sweep of shard ordinals before its
  // record lands ("mid").  A respawned worker re-runs the lost shard; the
  // final aggregates must not show a trace of the crash.
  const fs::path reference = run_reference();
  for (const std::size_t ordinal : {1UL, 3UL, 7UL, 16UL}) {
    const fs::path dir =
        make_campaign("kill_mid_" + std::to_string(ordinal));
    campaign::RunCampaignOptions options;
    options.workers = 1;  // every shard flows through the chaos worker
    options.worker_chaos = std::to_string(ordinal) + ":mid";
    const auto result = campaign::run_campaign(dir, options);
    EXPECT_FALSE(result.incomplete) << "ordinal " << ordinal;
    EXPECT_GE(result.workers_died, 1U) << "ordinal " << ordinal;
    expect_identical_aggregates(reference, dir);
  }
}

TEST_F(CampaignOrchestratorTest, WorkerTornWriteAndPostWriteKills) {
  const fs::path reference = run_reference();
  // "torn": killed halfway through the record write — the store gains a
  // torn tail, the shard re-runs.  "post": killed after the record but
  // before reporting — the shard is durable, the orchestrator re-runs it
  // anyway (it cannot know), and last-writer-wins dedups the result.
  for (const std::string mode : {"torn", "post"}) {
    const fs::path dir = make_campaign("kill_" + mode);
    campaign::RunCampaignOptions options;
    options.workers = 2;
    options.worker_chaos = "2:" + mode;
    const auto result = campaign::run_campaign(dir, options);
    EXPECT_FALSE(result.incomplete) << mode;
    EXPECT_GE(result.workers_died, 1U) << mode;
    expect_identical_aggregates(reference, dir);

    const campaign::StoreScan scan = campaign::scan_store(dir);
    if (mode == "torn") {
      EXPECT_TRUE(scan.any_tail_error()) << "torn kill left no torn tail?";
    } else {
      EXPECT_GE(campaign::collect_results(dir).duplicates +
                    campaign::verify_store(dir).duplicates,
                1U)
          << "post kill should leave a duplicate record";
    }
    // Either way the store still verifies complete: torn tails are
    // warnings, duplicates are legal.
    EXPECT_TRUE(campaign::verify_store(dir).ok);
  }
}

TEST_F(CampaignOrchestratorTest, WholeCampaignSigkilledThenResumed) {
  // The outside-in crash: the whole orchestrator process group (parent +
  // workers) is SIGKILLed mid-campaign at a sweep of points, then a fresh
  // process resumes the directory.  This is the scenario the CI smoke
  // drives through the CLI; here it runs in-API via fork().
  const fs::path reference = run_reference();
  for (const std::size_t kill_after : {2UL, 8UL, 15UL}) {
    const fs::path dir =
        make_campaign("sigkill_" + std::to_string(kill_after));
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: run with workers and die_after — run_campaign
      // SIGKILLs the workers and then this process.  Nothing returns.
      campaign::RunCampaignOptions options;
      options.workers = 2;
      options.die_after_shards = kill_after;
      try {
        (void)campaign::run_campaign(dir, options);
      } catch (...) {
      }
      _exit(99);  // only reachable if the kill failed
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited instead of dying (status " << status << ")";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The store is valid but incomplete; resume finishes it.
    const campaign::VerifyReport before = campaign::verify_store(dir);
    EXPECT_FALSE(before.ok);
    EXPECT_GE(before.shards_present, kill_after);
    campaign::RunCampaignOptions resume;
    resume.workers = 2;
    const auto resumed = campaign::run_campaign(dir, resume);
    EXPECT_FALSE(resumed.incomplete);
    EXPECT_GT(resumed.shards_already_complete, 0U);
    expect_identical_aggregates(reference, dir);
    EXPECT_TRUE(campaign::verify_store(dir).ok);
  }
}

TEST_F(CampaignOrchestratorTest, TruncatedStoreTailResumes) {
  // Chop bytes off a finished segment's tail (fs-level damage after a
  // power cut): the truncated records become invisible, resume re-runs
  // exactly those shards, aggregates stay identical.
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("truncate");
  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  (void)campaign::run_campaign(dir, in_process);

  const fs::path segment = campaign::segments_dir(dir) / "gen1-w0.seg";
  ASSERT_TRUE(fs::exists(segment));
  const auto size = fs::file_size(segment);
  fs::resize_file(segment, size - 37);  // tear mid-record

  const campaign::StoreScan scan = campaign::scan_store(dir);
  ASSERT_TRUE(scan.any_tail_error());
  const auto resumed = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_GE(resumed.shards_run, 1U);
  expect_identical_aggregates(reference, dir);
}

TEST_F(CampaignOrchestratorTest, BitFlipPlusDoubleResumeDedupsLastWriterWins) {
  // The nastiest store history we can manufacture: corrupt a mid-segment
  // record (hiding it and everything after), resume (re-runs those shards
  // into generation 2), then REPAIR the flipped bit — now both the old
  // generation-1 records and the new generation-2 records are visible for
  // the same shards.  Last-writer-wins must pick generation 2, and the
  // aggregates must still be bit-identical to the uninterrupted run.
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("bitflip");
  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  (void)campaign::run_campaign(dir, in_process);

  const fs::path segment = campaign::segments_dir(dir) / "gen1-w0.seg";
  const campaign::SegmentScan before = campaign::scan_segment(segment);
  ASSERT_GE(before.records.size(), 16U);

  // Flip a bit inside the 5th record's payload.
  std::uint64_t offset = 24;  // header
  for (int r = 0; r < 4; ++r) offset += 12 + before.records[r].payload.size();
  offset += 30;  // inside record 4's payload
  const auto flip = [&] {
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x08);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
  };
  flip();
  ASSERT_LT(campaign::scan_segment(segment).records.size(), 16U);

  // First resume: re-runs every hidden shard into generation 2.
  const auto resume1 = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resume1.incomplete);
  EXPECT_GE(resume1.shards_run, 1U);

  // Repair the bit: the generation-1 originals reappear as duplicates.
  flip();
  ASSERT_EQ(campaign::scan_segment(segment).records.size(),
            before.records.size());
  const campaign::CollectedResults collected = campaign::collect_results(dir);
  EXPECT_GE(collected.duplicates, 1U);
  expect_identical_aggregates(reference, dir);

  // Second resume: everything is durable, so it must be a no-op...
  const auto resume2 = campaign::run_campaign(dir, in_process);
  EXPECT_EQ(resume2.shards_run, 0U);
  EXPECT_FALSE(resume2.incomplete);
  // ...and the aggregates still hold after the double resume.
  expect_identical_aggregates(reference, dir);
  EXPECT_TRUE(campaign::verify_store(dir).ok);
}

TEST_F(CampaignOrchestratorTest, StopAfterShardsLeavesResumableStore) {
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("stop");
  campaign::RunCampaignOptions stop;
  stop.workers = 0;
  stop.stop_after_shards = 5;
  const auto partial = campaign::run_campaign(dir, stop);
  EXPECT_TRUE(partial.incomplete);
  EXPECT_EQ(partial.shards_run, 5U);

  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  const auto resumed = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_EQ(resumed.shards_already_complete, 5U);
  EXPECT_EQ(resumed.shards_run, 11U);
  expect_identical_aggregates(reference, dir);
}

TEST_F(CampaignOrchestratorTest, WorkerDeathWithoutRespawnReportsIncomplete) {
  const fs::path dir = make_campaign("norespawn");
  campaign::RunCampaignOptions options;
  options.workers = 1;
  options.respawn_dead_workers = false;
  options.worker_chaos = "3:mid";
  const auto result = campaign::run_campaign(dir, options);
  EXPECT_TRUE(result.incomplete);
  EXPECT_EQ(result.workers_died, 1U);
  EXPECT_LT(result.shards_run, result.shards_total);
  EXPECT_FALSE(campaign::verify_store(dir).ok);  // incomplete, by design

  // And a resume with healthy workers completes it.
  campaign::RunCampaignOptions resume;
  resume.workers = 2;
  const auto resumed = campaign::run_campaign(dir, resume);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_TRUE(campaign::verify_store(dir).ok);
}

// ---------------------------------------------------------------------------
// Watchdog, retry-budget, and quarantine battery (DESIGN.md §5i).

TEST_F(CampaignOrchestratorTest, HungWorkerKilledWithinDeadlineAndCompletes) {
  // The first worker wedges forever (SIGTERM-proof infinite loop) at its
  // 2nd shard.  The watchdog must SIGKILL it once its heartbeat gap
  // exceeds the shard deadline, requeue the shard, and the campaign must
  // still complete with aggregates identical to the clean run — a single
  // hang is a retry, never a quarantine with budget 2.
  const fs::path reference = run_reference_with(watchdog_spec());
  const fs::path dir = make_campaign_with("hang", watchdog_spec());
  campaign::RunCampaignOptions options;
  options.workers = 2;
  options.worker_chaos = "2:hang";
  options.backoff_base_ms = 10;
  const auto result = campaign::run_campaign(dir, options);
  EXPECT_FALSE(result.incomplete);
  EXPECT_GE(result.workers_hung, 1U);
  EXPECT_EQ(result.shards_quarantined, 0U);
  EXPECT_EQ(result.shards_run, 8U);
  expect_identical_aggregates(reference, dir);
  EXPECT_TRUE(campaign::verify_store(dir).ok);
}

TEST_F(CampaignOrchestratorTest, PoisonShardCrashQuarantinedAfterExactBudget) {
  // Shard 3 SIGKILLs every worker that touches it.  With retry_budget 2
  // it must be quarantined after exactly 2 attempts while the 7 healthy
  // shards complete, and a resume must skip it without a single retry.
  const campaign::CampaignSpec spec = watchdog_spec();
  const fs::path dir = make_campaign_with("poison", spec);
  campaign::RunCampaignOptions options;
  options.workers = 2;
  options.worker_chaos = "shard=3:crash";
  options.backoff_base_ms = 10;
  const auto result = campaign::run_campaign(dir, options);
  EXPECT_FALSE(result.incomplete);
  EXPECT_TRUE(result.complete_except_quarantined());
  EXPECT_EQ(result.shards_quarantined, 1U);
  EXPECT_EQ(result.shards_run, 7U);
  EXPECT_GE(result.workers_died, 2U);  // one death per attempt

  // The durable quarantine record carries the exact failure history.
  const campaign::StoreScan scan = campaign::scan_store(dir);
  std::size_t quarantine_records = 0;
  for (const campaign::SegmentScan& segment : scan.segments) {
    for (const campaign::Record& record : segment.records) {
      if (record.type != campaign::RecordType::kQuarantine) continue;
      ++quarantine_records;
      const campaign::QuarantineRecord q =
          campaign::decode_quarantine(record.payload);
      EXPECT_EQ(q.shard, 3U);
      EXPECT_EQ(q.attempts, spec.retry_budget);
      EXPECT_EQ(q.reason, campaign::QuarantineRecord::Reason::kCrash);
    }
  }
  EXPECT_EQ(quarantine_records, 1U);

  // Resume (same poison chaos still armed): the quarantined shard is
  // never dispatched, so nothing crashes and nothing re-runs.
  const auto resumed = campaign::run_campaign(dir, options);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_TRUE(resumed.complete_except_quarantined());
  EXPECT_EQ(resumed.shards_already_quarantined, 1U);
  EXPECT_EQ(resumed.shards_already_complete, 7U);
  EXPECT_EQ(resumed.shards_run, 0U);
  EXPECT_EQ(resumed.workers_died, 0U);

  const campaign::VerifyReport verify = campaign::verify_store(dir);
  EXPECT_TRUE(verify.ok) << verify.render();
  EXPECT_EQ(verify.shards_quarantined, 1U);
}

TEST_F(CampaignOrchestratorTest, PoisonHangAndCrashQuarantinedTogether) {
  // The acceptance scenario: one always-hanging and one always-crashing
  // shard in the same campaign.  All 6 healthy shards must complete,
  // exactly those two must be quarantined after their budgets, and a
  // SIGKILL mid-run followed by a resume must converge to byte-identical
  // report/CSV and the identical quarantine set.
  const campaign::CampaignSpec spec = watchdog_spec();
  campaign::RunCampaignOptions options;
  options.workers = 2;
  options.worker_chaos = "shard=2:hang,shard=5:crash";
  options.backoff_base_ms = 10;

  const fs::path straight = make_campaign_with("straight", spec);
  const auto result = campaign::run_campaign(straight, options);
  EXPECT_FALSE(result.incomplete);
  EXPECT_TRUE(result.complete_except_quarantined());
  EXPECT_EQ(result.shards_run, 6U);
  EXPECT_EQ(result.shards_quarantined, 2U);
  EXPECT_GE(result.workers_hung, 2U);  // two attempts on the hang shard
  const campaign::CampaignAggregates straight_agg = aggregates_of(straight);
  EXPECT_EQ(straight_agg.quarantined_shards,
            (std::vector<std::size_t>{2, 5}));
  const campaign::VerifyReport verify = campaign::verify_store(straight);
  EXPECT_TRUE(verify.ok) << verify.render();
  EXPECT_EQ(verify.shards_quarantined, 2U);

  // Same campaign, but the whole orchestrator is SIGKILLed after 3
  // healthy completions, then resumed by a fresh process (poison still
  // armed — it is a property of the input, not of one run).
  const fs::path killed = make_campaign_with("killed", spec);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    campaign::RunCampaignOptions chaos = options;
    chaos.die_after_shards = 3;
    try {
      (void)campaign::run_campaign(killed, chaos);
    } catch (...) {
    }
    _exit(99);  // only reachable if the kill failed
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const auto resumed = campaign::run_campaign(killed, options);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_TRUE(resumed.complete_except_quarantined());
  expect_identical_quarantined_outputs(straight, killed);
}

TEST_F(CampaignOrchestratorTest, QuarantineMatchesRunThatNeverSawPoison) {
  // The determinism contract: aggregates and report must be pure
  // functions of (present results, quarantined indices).  A store whose
  // shard 5 was quarantined up front by hand — the run never even
  // attempted it — must render byte-identically to one whose shard 5
  // fought through 2 crashes and was quarantined organically.
  const campaign::CampaignSpec spec = watchdog_spec();
  const fs::path manual = make_campaign_with("manual", spec);
  {
    campaign::SegmentWriter writer(manual, {1, 999});
    campaign::QuarantineRecord q;
    q.shard = 5;
    q.attempts = 0;
    q.reason = campaign::QuarantineRecord::Reason::kManual;
    writer.append(campaign::RecordType::kQuarantine,
                  campaign::encode_quarantine(q));
  }
  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  const auto manual_result = campaign::run_campaign(manual, in_process);
  EXPECT_FALSE(manual_result.incomplete);
  EXPECT_EQ(manual_result.shards_already_quarantined, 1U);
  EXPECT_EQ(manual_result.shards_run, 7U);
  EXPECT_TRUE(manual_result.complete_except_quarantined());

  const fs::path organic = make_campaign_with("organic", spec);
  campaign::RunCampaignOptions options;
  options.workers = 2;
  options.worker_chaos = "shard=5:crash";
  options.backoff_base_ms = 10;
  const auto organic_result = campaign::run_campaign(organic, options);
  EXPECT_TRUE(organic_result.complete_except_quarantined());

  expect_identical_quarantined_outputs(manual, organic);
}

TEST_F(CampaignOrchestratorTest, QuarantineRecordSurvivesTornTail) {
  // A quarantine record followed by a torn record (the orchestrator
  // SIGKILLed mid-append): the durable record must survive the valid-
  // prefix scan, the torn one must vanish, and a resume must skip only
  // the surviving quarantine.
  const campaign::CampaignSpec spec = watchdog_spec();
  const fs::path dir = make_campaign_with("torn_quarantine", spec);
  {
    campaign::SegmentWriter writer(dir, {1, 0});
    campaign::QuarantineRecord durable;
    durable.shard = 0;
    durable.attempts = 2;
    durable.reason = campaign::QuarantineRecord::Reason::kHang;
    writer.append(campaign::RecordType::kQuarantine,
                  campaign::encode_quarantine(durable));
    campaign::QuarantineRecord torn;
    torn.shard = 1;
    torn.attempts = 2;
    torn.reason = campaign::QuarantineRecord::Reason::kCrash;
    writer.append_torn(campaign::RecordType::kQuarantine,
                       campaign::encode_quarantine(torn), 19);
  }
  const campaign::StoreScan scan = campaign::scan_store(dir);
  ASSERT_EQ(scan.total_records(), 1U);
  EXPECT_TRUE(scan.any_tail_error());
  const campaign::CollectedResults collected = campaign::collect_results(dir);
  ASSERT_EQ(collected.quarantined.size(), 1U);
  EXPECT_EQ(collected.quarantined.count(0), 1U);

  // Resume: shard 0 stays quarantined, shard 1 (its marker torn away)
  // simply re-runs like any other missing shard.
  campaign::RunCampaignOptions in_process;
  in_process.workers = 0;
  const auto resumed = campaign::run_campaign(dir, in_process);
  EXPECT_FALSE(resumed.incomplete);
  EXPECT_EQ(resumed.shards_already_quarantined, 1U);
  EXPECT_EQ(resumed.shards_run, 7U);
  const campaign::VerifyReport verify = campaign::verify_store(dir);
  EXPECT_TRUE(verify.ok) << verify.render();  // torn tail is a warning
  EXPECT_EQ(verify.shards_quarantined, 1U);
  EXPECT_FALSE(verify.warnings.empty());
}

TEST_F(CampaignOrchestratorTest, SigtermShutdownCheckpointsAndResumes) {
  // Operator shutdown: SIGTERM a running multi-worker campaign.  The
  // orchestrator must stop dispatching, drain in-flight shards, and exit
  // by the normal return path; the store must verify error-free with the
  // workers' final checkpoints present, and a resume must reproduce the
  // uninterrupted aggregates bit-identically.
  const fs::path reference = run_reference();
  const fs::path dir = make_campaign("sigterm");
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    campaign::RunCampaignOptions options;
    options.workers = 2;
    options.checkpoint_every = 3;
    try {
      const auto result = campaign::run_campaign(dir, options);
      _exit(result.incomplete ? 3 : 0);
    } catch (...) {
      _exit(77);
    }
  }
  // Let the campaign make some progress before pulling the plug; if it
  // finishes first, the exit-0 branch below still holds.
  bool saw_progress = false;
  for (int i = 0; i < 500 && !saw_progress; ++i) {
    try {
      saw_progress = campaign::scan_store(dir).total_records() >= 1;
    } catch (...) {
    }
    if (!saw_progress) usleep(10 * 1000);
  }
  EXPECT_TRUE(saw_progress);
  ASSERT_EQ(kill(child, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "SIGTERM must be a clean exit, got "
                                 << status;
  const int code = WEXITSTATUS(status);
  EXPECT_TRUE(code == 0 || code == 3) << "exit " << code;

  const campaign::VerifyReport before = campaign::verify_store(dir);
  EXPECT_TRUE(before.errors.empty()) << before.render();
  if (before.shard_records >= 1) {
    // Every worker that executed a shard flushed a cadence or final
    // checkpoint before exiting.
    EXPECT_GE(before.checkpoints, 1U) << before.render();
  }

  campaign::RunCampaignOptions resume;
  resume.workers = 2;
  const auto resumed = campaign::run_campaign(dir, resume);
  EXPECT_FALSE(resumed.incomplete);
  expect_identical_aggregates(reference, dir);
  EXPECT_TRUE(campaign::verify_store(dir).ok);
}

}  // namespace

// Custom main: the worker hook must run before gtest — orchestrator tests
// re-exec this binary as their worker processes.
int main(int argc, char** argv) {
  if (const int rc = bansim::campaign::maybe_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
