// Fault-injection campaigns: crash/reboot re-association, radio lock-up
// recovery, brown-out, burst fading, and the survey-level comparison of
// static vs dynamic TDMA recovery cost.  Every campaign here runs with the
// InvariantMonitor attached and must finish with zero violations — the
// acceptance bar for the fault subsystem is that no injected fault, at any
// point in the MAC's state machine, can drive the stack into an illegal
// radio transition, a double-booked slot, or an energy-ledger leak.
#include <gtest/gtest.h>

#include "check/fault_campaign.hpp"
#include "core/ban_network.hpp"
#include "fault/degradation_report.hpp"

namespace bansim {
namespace {

using namespace bansim::sim::literals;
using check::CampaignOptions;
using check::CampaignOutcome;
using check::run_fault_campaign;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::TimePoint;

/// A hardened cell: bounded dead reckoning, bounded search listens, slot
/// reclaim at the base station — the recovery machinery under test.
BanConfig hardened_config(mac::TdmaVariant variant, std::uint64_t seed) {
  BanConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = seed;
  cfg.app = AppKind::kEcgStreaming;
  if (variant == mac::TdmaVariant::kStatic) {
    // Classic static TDMA: the table is fixed; nobody reclaims anything.
    cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(60), 5);
  } else {
    // Dynamic TDMA shrinks the cycle with the roster, so reclaiming the
    // slots of silent nodes is part of the variant itself.
    cfg.tdma = mac::TdmaConfig::dynamic_plan(Duration::milliseconds(10));
    cfg.tdma.reclaim_after_cycles = 4;
  }
  cfg.tdma.missed_beacon_limit = 2;
  cfg.tdma.search_listen = Duration::milliseconds(150);
  cfg.tdma.search_backoff_base = Duration::milliseconds(40);
  cfg.tdma.search_backoff_max = Duration::milliseconds(400);
  return cfg;
}

fault::FaultPlan burst_fade_plan() {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.fade.enabled = true;
  plan.fade.p_enter = 0.04;
  plan.fade.p_exit = 0.12;
  plan.fade.step = Duration::milliseconds(5);
  plan.fade.fer = 0.85;
  return plan;
}

TEST(FaultCampaign, ScriptedCrashRebootsAndReassociates) {
  BanConfig cfg = hardened_config(mac::TdmaVariant::kStatic, 11);
  cfg.fault_plan.enabled = true;
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.node = 2;
  crash.at = TimePoint::zero() + 5_s;
  crash.down = 400_ms;
  cfg.fault_plan.events.push_back(crash);

  const CampaignOutcome outcome =
      run_fault_campaign(cfg, {.horizon = 12_s, .drain = 3_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  ASSERT_EQ(outcome.run.nodes.size(), 4u);
  const fault::NodeOutcome& victim = outcome.run.nodes[1];
  EXPECT_EQ(victim.crashes, 1u);
  EXPECT_EQ(victim.reboots, 1u);
  // The reboot produced exactly one completed rejoin latency sample, and
  // the node went on delivering data afterwards.
  ASSERT_EQ(victim.rejoin_times.size(), 1u);
  EXPECT_GT(victim.rejoin_times[0], Duration::zero());
  EXPECT_LT(victim.rejoin_times[0], 5_s);
  EXPECT_GT(victim.payloads_delivered, 0u);
  // The other nodes never noticed.
  EXPECT_EQ(outcome.run.nodes[0].crashes, 0u);
  EXPECT_EQ(outcome.run.nodes[2].crashes, 0u);
}

TEST(FaultCampaign, RebootedNodeReassociatesExplicitly) {
  // Watch the handshake itself: after reboot the node must send a slot
  // request even though the beacon still lists its old slot.
  BanConfig cfg = hardened_config(mac::TdmaVariant::kStatic, 3);
  cfg.app = AppKind::kNone;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));

  mac::NodeMac& victim = net.node(0).mac();
  const auto ssr_before = victim.stats().slot_requests_sent;
  victim.crash();
  EXPECT_TRUE(victim.crashed());
  EXPECT_EQ(victim.state(), mac::NodeMacState::kBooting);
  net.run_until(net.simulator().now() + 500_ms);
  victim.reboot();
  net.run_until(net.simulator().now() + 5_s);
  EXPECT_TRUE(victim.joined());
  EXPECT_GT(victim.stats().slot_requests_sent, ssr_before);
  EXPECT_EQ(victim.stats().reboots, 1u);
}

TEST(FaultCampaign, RadioLockupIsClearedByBoundedSearchPowerCycle) {
  // A locked-up receiver hears nothing, so the node dead-reckons to the
  // missed-beacon limit and enters the search; with search_listen bounded
  // the search power-cycles the radio, which clears the latch-up — the
  // recovery path the infinite legacy listen would never reach.
  BanConfig cfg = hardened_config(mac::TdmaVariant::kStatic, 5);
  cfg.fault_plan.enabled = true;
  fault::FaultEvent lockup;
  lockup.kind = fault::FaultKind::kRadioLockup;
  lockup.node = 1;
  lockup.at = TimePoint::zero() + 5_s;
  cfg.fault_plan.events.push_back(lockup);

  const CampaignOutcome outcome =
      run_fault_campaign(cfg, {.horizon = 15_s, .drain = 2_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  const fault::NodeOutcome& victim = outcome.run.nodes[0];
  EXPECT_GE(victim.resyncs, 1u);
  ASSERT_GE(victim.resync_times.size(), 1u);
  // Re-locked onto the beacon after the power cycle and kept delivering.
  EXPECT_GT(victim.payloads_delivered, 0u);
}

TEST(FaultCampaign, ClockSkewStepSurvivesWithoutViolations) {
  BanConfig cfg = hardened_config(mac::TdmaVariant::kStatic, 17);
  cfg.fault_plan.enabled = true;
  fault::FaultEvent skew;
  skew.kind = fault::FaultKind::kSkewStep;
  skew.node = 3;
  skew.at = TimePoint::zero() + 4_s;
  skew.skew_delta = 4.0e-4;  // a violent thermal step, ~3x the guard budget
  cfg.fault_plan.events.push_back(skew);

  const CampaignOutcome outcome =
      run_fault_campaign(cfg, {.horizon = 12_s, .drain = 2_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  // Whether the node rides it out on the guard time or falls back to a
  // resync, it must end the campaign delivering data again.
  EXPECT_GT(outcome.run.nodes[2].payloads_delivered, 0u);
}

TEST(FaultCampaign, BrownoutCrashesThenRecovers) {
  BanConfig cfg = hardened_config(mac::TdmaVariant::kStatic, 23);
  cfg.fault_plan.enabled = true;
  cfg.fault_plan.brownout.enabled = true;
  cfg.fault_plan.brownout.capacity_mah = 0.05;
  cfg.fault_plan.brownout.esr_ohms = 120.0;
  cfg.fault_plan.brownout.brownout_volts = 3.8;
  cfg.fault_plan.brownout.check = 100_ms;
  cfg.fault_plan.brownout.recovery = 800_ms;

  const CampaignOutcome outcome =
      run_fault_campaign(cfg, {.horizon = 15_s, .drain = 3_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  EXPECT_GT(outcome.injector.brownouts, 0u);
  std::uint64_t total_reboots = 0;
  for (const auto& node : outcome.run.nodes) total_reboots += node.reboots;
  EXPECT_GT(total_reboots, 0u);
}

TEST(FaultCampaign, StochasticChurnUnderBurstFadeHoldsInvariants) {
  // The everything-at-once campaign: Gilbert-Elliott fading over the whole
  // medium plus seed-driven crash churn, on the dynamic variant whose slot
  // table breathes with every leave/rejoin.
  BanConfig cfg = hardened_config(mac::TdmaVariant::kDynamic, 29);
  cfg.fault_plan = burst_fade_plan();
  cfg.fault_plan.crashes.enabled = true;
  cfg.fault_plan.crashes.rate_hz = 0.08;
  cfg.fault_plan.crashes.check = 250_ms;
  cfg.fault_plan.crashes.min_down = 300_ms;
  cfg.fault_plan.crashes.max_down = 1200_ms;

  const CampaignOutcome outcome =
      run_fault_campaign(cfg, {.horizon = 20_s, .drain = 4_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  EXPECT_GT(outcome.injector.fade_transitions, 0u);
  EXPECT_GT(outcome.run.delivered(), 0u);
  EXPECT_LT(outcome.run.pdr(), 1.0);  // the faults actually bit
}

TEST(FaultCampaign, CampaignIsDeterministic) {
  BanConfig cfg = hardened_config(mac::TdmaVariant::kDynamic, 31);
  cfg.fault_plan = burst_fade_plan();
  const CampaignOptions opts{.horizon = 10_s, .drain = 2_s};
  const CampaignOutcome a = run_fault_campaign(cfg, opts);
  const CampaignOutcome b = run_fault_campaign(cfg, opts);
  ASSERT_EQ(a.run.nodes.size(), b.run.nodes.size());
  for (std::size_t i = 0; i < a.run.nodes.size(); ++i) {
    // Exact-double energy equality: same seed, same plan, same trajectory.
    EXPECT_EQ(a.run.nodes[i].energy_joules, b.run.nodes[i].energy_joules);
    EXPECT_EQ(a.run.nodes[i].payloads_delivered,
              b.run.nodes[i].payloads_delivered);
    EXPECT_EQ(a.run.nodes[i].crashes, b.run.nodes[i].crashes);
  }
  EXPECT_EQ(a.injector.fade_transitions, b.injector.fade_transitions);
}

TEST(FaultCampaign, DisabledPlanIsExactlyTheBaseline) {
  // A config that carries a fully-populated but disabled plan must run the
  // network bit-identically to one that never heard of faults.
  BanConfig plain = hardened_config(mac::TdmaVariant::kStatic, 41);
  BanConfig carrying = plain;
  carrying.fault_plan = burst_fade_plan();
  carrying.fault_plan.enabled = false;  // master switch off

  const CampaignOptions opts{.horizon = 8_s, .drain = 1_s};
  const CampaignOutcome a = run_fault_campaign(plain, opts);
  const CampaignOutcome b = run_fault_campaign(carrying, opts);
  ASSERT_EQ(a.run.nodes.size(), b.run.nodes.size());
  for (std::size_t i = 0; i < a.run.nodes.size(); ++i) {
    EXPECT_EQ(a.run.nodes[i].energy_joules, b.run.nodes[i].energy_joules);
    EXPECT_EQ(a.run.nodes[i].payloads_delivered,
              b.run.nodes[i].payloads_delivered);
  }
}

TEST(FaultCampaign, DynamicTdmaPaysMoreForRecoveryThanStatic) {
  // The qualitative survey result the subsystem must reproduce: under
  // burst fade, dynamic TDMA's recovery costs more energy than static's.
  // A static node that misses beacons keeps its slot and just resyncs;
  // a dynamic node returns to find the cycle reshaped, defers its slot,
  // re-contends in the ES window and re-runs the grant handshake.
  const CampaignOptions opts{.horizon = 20_s, .drain = 3_s};

  BanConfig static_cfg = hardened_config(mac::TdmaVariant::kStatic, 47);
  BanConfig static_base = static_cfg;
  static_cfg.fault_plan = burst_fade_plan();
  const CampaignOutcome static_faulted = run_fault_campaign(static_cfg, opts);
  const CampaignOutcome static_clean = run_fault_campaign(static_base, opts);
  const auto static_report = fault::DegradationReport::build(
      static_faulted.run, static_clean.run);

  BanConfig dynamic_cfg = hardened_config(mac::TdmaVariant::kDynamic, 47);
  BanConfig dynamic_base = dynamic_cfg;
  dynamic_cfg.fault_plan = burst_fade_plan();
  const CampaignOutcome dynamic_faulted =
      run_fault_campaign(dynamic_cfg, opts);
  const CampaignOutcome dynamic_clean = run_fault_campaign(dynamic_base, opts);
  const auto dynamic_report = fault::DegradationReport::build(
      dynamic_faulted.run, dynamic_clean.run);

  EXPECT_EQ(static_faulted.violations, 0u) << static_faulted.violation_report;
  EXPECT_EQ(dynamic_faulted.violations, 0u)
      << dynamic_faulted.violation_report;
  // Both variants took real damage...
  EXPECT_LT(static_report.faulted_pdr, static_report.baseline_pdr);
  EXPECT_LT(dynamic_report.faulted_pdr, dynamic_report.baseline_pdr);
  // ...but recovering a dynamic cell costs measurably more per payload.
  EXPECT_GT(dynamic_report.recovery_overhead_mj_per_payload,
            static_report.recovery_overhead_mj_per_payload);
}

TEST(FaultCampaign, DynamicSlotReclaimAndRegrant) {
  // Dynamic base station reclaims the slot of a silent node and regrants
  // on rejoin; the cycle shrinks while the node is dead and regrows after.
  // The cell streams data, so only the crashed node ever goes silent.
  BanConfig cfg = hardened_config(mac::TdmaVariant::kDynamic, 53);
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  const auto joined_cycle = net.base_station_mac().current_cycle();
  const auto owners_full = net.base_station_mac().slot_owners().size();
  EXPECT_EQ(owners_full, 4u);

  mac::NodeMac& victim = net.node(2).mac();
  victim.crash();
  net.run_until(net.simulator().now() + 4_s);
  EXPECT_GT(net.base_station_mac().stats().slots_reclaimed, 0u);
  EXPECT_EQ(net.base_station_mac().slot_owners().size(), owners_full - 1);
  EXPECT_LT(net.base_station_mac().current_cycle(), joined_cycle);

  victim.reboot();
  net.run_until(net.simulator().now() + 6_s);
  EXPECT_TRUE(victim.joined());
  EXPECT_EQ(net.base_station_mac().slot_owners().size(), owners_full);
  EXPECT_EQ(net.base_station_mac().current_cycle(), joined_cycle);
  ASSERT_EQ(victim.rejoin_times().size(), 1u);
}

TEST(FaultCampaign, ResyncCountersTrackBoundedSearch) {
  // Satellite regression: the resync/search counters are asserted, not
  // just incremented.  A node that loses enough beacons must record the
  // fall-back search, its power cycles, and a completed resync sample.
  BanConfig cfg = hardened_config(mac::TdmaVariant::kStatic, 59);
  cfg.fault_plan.enabled = true;
  fault::ShadowEpisode blackout;
  blackout.node = 1;
  blackout.start = TimePoint::zero() + 6_s;
  blackout.duration = 2_s;
  blackout.fer = 1.0;  // total shadowing: nothing reaches node 1
  cfg.fault_plan.episodes.push_back(blackout);

  const CampaignOutcome outcome =
      run_fault_campaign(cfg, {.horizon = 14_s, .drain = 2_s});
  EXPECT_EQ(outcome.violations, 0u) << outcome.violation_report;
  const fault::NodeOutcome& victim = outcome.run.nodes[0];
  EXPECT_GE(victim.resyncs, 1u);
  ASSERT_GE(victim.resync_times.size(), 1u);
  for (const Duration& d : victim.resync_times) {
    EXPECT_GT(d, Duration::zero());
  }
}

}  // namespace
}  // namespace bansim
