#include <gtest/gtest.h>

#include <vector>

#include "apps/delta_codec.hpp"
#include "net/fragment.hpp"
#include "sim/rng.hpp"

namespace bansim {
namespace {

using apps::delta_decode;
using apps::delta_encode;
using apps::delta_encoded_size;

TEST(DeltaCodec, EmptyStream) {
  EXPECT_TRUE(delta_encode({}).empty());
  const auto back = delta_decode({});
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
  EXPECT_EQ(delta_encoded_size({}), 0u);
}

TEST(DeltaCodec, SingleSample) {
  const std::vector<std::uint16_t> codes = {0x0ABC};
  const auto bytes = delta_encode(codes);
  EXPECT_EQ(bytes.size(), 2u);
  EXPECT_EQ(delta_decode(bytes), codes);
}

TEST(DeltaCodec, SmoothSignalCompresses) {
  std::vector<std::uint16_t> codes;
  for (int i = 0; i < 100; ++i) {
    codes.push_back(static_cast<std::uint16_t>(2000 + 3 * i));
  }
  const auto bytes = delta_encode(codes);
  EXPECT_EQ(bytes.size(), 2u + 99u);  // 1 byte per delta
  EXPECT_EQ(bytes.size(), delta_encoded_size(codes));
  EXPECT_LT(static_cast<double>(bytes.size()),
            0.75 * static_cast<double>(codes.size()) * 1.5);  // vs pack12
  EXPECT_EQ(delta_decode(bytes), codes);
}

TEST(DeltaCodec, LargeJumpsUseEscape) {
  const std::vector<std::uint16_t> codes = {100, 4000, 50, 51};
  const auto bytes = delta_encode(codes);
  // 2 (first) + 3 (escape) + 3 (escape) + 1 (delta) = 9 bytes.
  EXPECT_EQ(bytes.size(), 9u);
  EXPECT_EQ(delta_decode(bytes), codes);
}

TEST(DeltaCodec, ExactBoundaryDeltas) {
  // +127 and -127 fit in one byte; +128/-128 must escape.
  const std::vector<std::uint16_t> codes = {1000, 1127, 1000, 1128, 1000};
  const auto bytes = delta_encode(codes);
  EXPECT_EQ(delta_decode(bytes), codes);
  EXPECT_EQ(bytes.size(), 2u + 1 + 1 + 3 + 3);
}

TEST(DeltaCodec, RandomRoundTripProperty) {
  sim::Rng rng{808};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint16_t> codes(
        static_cast<std::size_t>(rng.uniform_int(1, 200)));
    std::uint16_t value = static_cast<std::uint16_t>(rng.uniform_int(0, 4095));
    for (auto& c : codes) {
      // Mix small steps with occasional jumps.
      if (rng.chance(0.1)) {
        value = static_cast<std::uint16_t>(rng.uniform_int(0, 4095));
      } else {
        const int step = static_cast<int>(rng.uniform_int(-40, 40));
        value = static_cast<std::uint16_t>(
            std::clamp(static_cast<int>(value) + step, 0, 4095));
      }
      c = value;
    }
    const auto bytes = delta_encode(codes);
    EXPECT_EQ(bytes.size(), delta_encoded_size(codes));
    EXPECT_EQ(delta_decode(bytes), codes) << "trial " << trial;
  }
}

TEST(DeltaCodec, MalformedStreamsRejected) {
  EXPECT_FALSE(delta_decode(std::vector<std::uint8_t>{0x01}).has_value());
  // Truncated escape.
  EXPECT_FALSE(
      delta_decode(std::vector<std::uint8_t>{0x01, 0x00, 0x80}).has_value());
  EXPECT_FALSE(delta_decode(std::vector<std::uint8_t>{0x01, 0x00, 0x80, 0x0F})
                   .has_value());
  // First code out of 12-bit range.
  EXPECT_FALSE(
      delta_decode(std::vector<std::uint8_t>{0xFF, 0xFF}).has_value());
  // Delta walking below zero.
  EXPECT_FALSE(delta_decode(std::vector<std::uint8_t>{
                                0x00, 0x01, static_cast<std::uint8_t>(-5)})
                   .has_value());
}

using net::FragmentError;
using net::Reassembler;

/// Unwraps fragment_block for tests exercising legal geometry.
std::vector<std::vector<std::uint8_t>> fragment_block(
    std::uint8_t block_id, std::span<const std::uint8_t> block,
    std::size_t max_payload) {
  auto frags = net::fragment_block(block_id, block, max_payload);
  EXPECT_TRUE(frags.has_value());
  return std::move(frags).value_or(std::vector<std::vector<std::uint8_t>>{});
}

TEST(Fragmentation, SingleFragmentBlock) {
  const std::vector<std::uint8_t> block = {1, 2, 3};
  const auto frags = fragment_block(7, block, 24);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0][0], 7);  // block id
  EXPECT_EQ(frags[0][1], 0);  // index
  EXPECT_EQ(frags[0][2], 1);  // count

  Reassembler r;
  const auto out = r.feed(frags[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, block);
  EXPECT_EQ(out->block_id, 7);
}

TEST(Fragmentation, MultiFragmentRoundTrip) {
  std::vector<std::uint8_t> block(100);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>(i);
  }
  const auto frags = fragment_block(3, block, 24);
  ASSERT_EQ(frags.size(), 5u);  // 100 bytes / 21-byte chunks
  for (const auto& f : frags) EXPECT_LE(f.size(), 24u);

  Reassembler r;
  std::optional<net::ReassembledBlock> out;
  for (const auto& f : frags) out = r.feed(f);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, block);
  EXPECT_EQ(r.blocks_completed(), 1u);
}

TEST(Fragmentation, OutOfOrderReassembly) {
  std::vector<std::uint8_t> block(60, 0xAB);
  const auto frags = fragment_block(1, block, 24);
  ASSERT_EQ(frags.size(), 3u);
  Reassembler r;
  EXPECT_FALSE(r.feed(frags[2]).has_value());
  EXPECT_FALSE(r.feed(frags[0]).has_value());
  const auto out = r.feed(frags[1]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, block);
}

TEST(Fragmentation, DuplicatesIgnored) {
  std::vector<std::uint8_t> block(40, 1);
  const auto frags = fragment_block(1, block, 24);
  ASSERT_EQ(frags.size(), 2u);
  Reassembler r;
  EXPECT_FALSE(r.feed(frags[0]).has_value());
  EXPECT_FALSE(r.feed(frags[0]).has_value());  // duplicate (ARQ retry)
  EXPECT_EQ(r.duplicates(), 1u);
  EXPECT_TRUE(r.feed(frags[1]).has_value());
}

TEST(Fragmentation, LostFragmentLeavesBlockPending) {
  std::vector<std::uint8_t> block(60, 2);
  const auto frags = fragment_block(1, block, 24);
  Reassembler r;
  r.feed(frags[0]);
  r.feed(frags[2]);  // fragment 1 lost
  EXPECT_EQ(r.blocks_completed(), 0u);
  EXPECT_EQ(r.pending_blocks(), 1u);
}

TEST(Fragmentation, MalformedFragmentsRejected) {
  Reassembler r;
  EXPECT_FALSE(r.feed(std::vector<std::uint8_t>{1, 0}).has_value());
  EXPECT_FALSE(r.feed(std::vector<std::uint8_t>{1, 5, 3, 0}).has_value());
  EXPECT_FALSE(r.feed(std::vector<std::uint8_t>{1, 0, 0, 9}).has_value());
  EXPECT_EQ(r.fragments_rejected(), 3u);
}

TEST(Fragmentation, PendingMemoryIsBounded) {
  Reassembler r;
  // Feed first-fragments of many distinct blocks, never completing any.
  for (std::uint8_t id = 0; id < 20; ++id) {
    std::vector<std::uint8_t> block(60, id);
    r.feed(fragment_block(id, block, 24)[0]);
  }
  EXPECT_LE(r.pending_blocks(), Reassembler::kMaxPending);
  EXPECT_GT(r.blocks_abandoned(), 0u);
}

TEST(Fragmentation, ImpossibleGeometryReportsDistinctErrors) {
  std::vector<std::uint8_t> huge(22 * 300, 0);
  FragmentError error{};
  EXPECT_FALSE(net::fragment_block(1, huge, 24, &error).has_value());
  EXPECT_EQ(error, FragmentError::kTooManyFragments);
  EXPECT_FALSE(net::fragment_block(1, huge, 3, &error).has_value());
  EXPECT_EQ(error, FragmentError::kPayloadTooSmall);
  // Error pointer is optional.
  EXPECT_FALSE(net::fragment_block(1, huge, 3).has_value());
  // An empty block is NOT an error: one header-only fragment.
  const auto empty = net::fragment_block(1, {}, 24, &error);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->size(), 1u);
}

TEST(Fragmentation, StaleRecycledBlockIdRestarts) {
  std::vector<std::uint8_t> old_block(60, 1);   // 3 fragments
  std::vector<std::uint8_t> new_block(40, 2);   // 2 fragments, same id
  Reassembler r;
  r.feed(fragment_block(9, old_block, 24)[0]);
  const auto frags = fragment_block(9, new_block, 24);
  EXPECT_FALSE(r.feed(frags[0]).has_value());
  const auto out = r.feed(frags[1]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, new_block);
  EXPECT_EQ(r.stale_discarded(), 1u);
}

// Regression for the recycled-block-id aliasing bug: with the same fragment
// *count*, the old `chunks.size() != count` check let a stale partial merge
// with the new cycle's fragments.  Fragment 0 of the old cycle survives, the
// new cycle's fragment 0 is lost, and fragments 1..2 of the new cycle used
// to complete the block with the stale chunk 0 spliced in — a corrupted
// block delivered as if intact.
TEST(Fragmentation, RecycledIdWithSameCountDoesNotSpliceStaleChunk) {
  std::vector<std::uint8_t> old_block(60, 0xAA);  // 3 fragments
  std::vector<std::uint8_t> new_block(60, 0xBB);  // 3 fragments, same id
  Reassembler r;
  r.feed(fragment_block(9, old_block, 24)[0]);  // frags 1,2 of old cycle lost

  // The id recycles only after ~255 other blocks flow through; emulate a
  // (shortened) stretch of that traffic so the partial's age shows.
  for (std::uint64_t i = 0; i <= Reassembler::kStaleFeedGap; ++i) {
    ASSERT_TRUE(r.feed(fragment_block(10, {}, 24)[0]).has_value());
  }

  const auto frags = fragment_block(9, new_block, 24);
  EXPECT_FALSE(r.feed(frags[1]).has_value());
  const auto out = r.feed(frags[2]);
  // Old behaviour: completes here with {stale 0xAA chunk, 0xBB, 0xBB}.
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(r.stale_discarded(), 1u);

  // The retransmitted fragment 0 of the *new* cycle completes it cleanly.
  const auto done = r.feed(frags[0]);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->data, new_block);
}

// Same aliasing scenario, but the new cycle's fragment 0 *does* arrive: its
// payload conflicts with the stale chunk already held at index 0, which is
// direct evidence of a recycled id regardless of partial age.
TEST(Fragmentation, RecycledIdConflictingChunkRestartsImmediately) {
  std::vector<std::uint8_t> old_block(60, 0xAA);
  std::vector<std::uint8_t> new_block(60, 0xBB);
  Reassembler r;
  r.feed(fragment_block(9, old_block, 24)[0]);

  const auto frags = fragment_block(9, new_block, 24);
  EXPECT_FALSE(r.feed(frags[0]).has_value());  // conflict -> restart
  EXPECT_EQ(r.stale_discarded(), 1u);
  EXPECT_EQ(r.duplicates(), 0u);  // not misclassified as an ARQ duplicate
  r.feed(frags[1]);
  const auto out = r.feed(frags[2]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, new_block);
}

}  // namespace
}  // namespace bansim
