#include "os/task_scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <vector>

#include "os/cycle_cost_model.hpp"
#include "os/power_manager.hpp"

namespace bansim::os {
namespace {

using namespace bansim::sim::literals;
using hw::McuMode;
using sim::Duration;
using sim::TimePoint;

struct SchedulerFixture : ::testing::Test {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  sim::Tracer& tracer = context.tracer;
  hw::McuParams params;
  hw::Mcu mcu{context, "n", params, 0.0};
  PowerManager power;
  NullProbe probe;
  TaskScheduler scheduler{context, mcu, power, "n", probe};

  SchedulerFixture() {
    // Keep the idle mode at LPM1 like the BAN firmware (timer running).
    power.register_peripheral("timer", ClockConstraint::kSmclk);
  }
};

TEST_F(SchedulerFixture, RunsPostedTaskAfterItsCycles) {
  TimePoint done;
  scheduler.post("t", 8000, [&] { done = simulator.now(); });  // 1 ms at 8 MHz
  simulator.run();
  EXPECT_EQ(done, TimePoint::zero() + 1_ms);
  EXPECT_EQ(scheduler.tasks_run(), 1u);
}

TEST_F(SchedulerFixture, FifoOrderAmongTasks) {
  std::vector<int> order;
  scheduler.post("a", 100, [&] { order.push_back(1); });
  scheduler.post("b", 100, [&] { order.push_back(2); });
  scheduler.post("c", 100, [&] { order.push_back(3); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SchedulerFixture, InterruptJumpsQueue) {
  std::vector<int> order;
  scheduler.post("a", 800, [&] {
    // While "a" runs, queue a task and raise an interrupt: the ISR must
    // dispatch before the queued task.
    scheduler.post("b", 100, [&] { order.push_back(2); });
    scheduler.raise_interrupt("isr", 100, [&] { order.push_back(1); });
  });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(scheduler.interrupts_run(), 1u);
}

TEST_F(SchedulerFixture, SleepsWhenQueueEmpty) {
  scheduler.post("t", 100, nullptr);
  simulator.run();
  EXPECT_EQ(mcu.mode(), McuMode::kLpm1);
  EXPECT_TRUE(scheduler.idle());
}

TEST_F(SchedulerFixture, WakeupLatencyDelaysFirstTask) {
  scheduler.post("sleepmaker", 100, nullptr);
  simulator.run();
  ASSERT_EQ(mcu.mode(), McuMode::kLpm1);

  const TimePoint t0 = simulator.now();
  TimePoint done;
  scheduler.post("t", 8000, [&] { done = simulator.now(); });
  simulator.run();
  // 6 us wake-up + 1 ms task.
  EXPECT_EQ(done, t0 + params.wakeup_latency + 1_ms);
  EXPECT_EQ(mcu.wakeups(), 1u);
}

TEST_F(SchedulerFixture, InterruptPaysOverheadCycles) {
  TimePoint done;
  scheduler.raise_interrupt("isr", 8000, [&] { done = simulator.now(); });
  simulator.run();
  // 8000 + 11 overhead cycles at 8 MHz (MCU already active at t=0).
  const Duration expect = mcu.cycles_to_time(8000 + params.isr_overhead_cycles);
  EXPECT_EQ(done, TimePoint::zero() + expect);
}

TEST_F(SchedulerFixture, BodyPostingKeepsRunning) {
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) scheduler.post("chain", 100, chain);
  };
  scheduler.post("chain", 100, chain);
  simulator.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(scheduler.tasks_run(), 5u);
}

TEST_F(SchedulerFixture, NominalCostModeChargesTableValue) {
  CycleCostModel table;
  table.set("calibrated", 16000);  // 2 ms at 8 MHz
  TaskScheduler model_sched{context, mcu,  power,
                            "n",       probe,  &table};
  TimePoint done;
  model_sched.post("calibrated", 4000 /*actual, ignored*/, [&] {
    done = simulator.now();
  });
  simulator.run();
  EXPECT_EQ(done, TimePoint::zero() + 2_ms);
}

TEST_F(SchedulerFixture, NominalCostModeFallsBackForUnknownTasks) {
  CycleCostModel table;
  TaskScheduler model_sched{context, mcu,  power,
                            "n",       probe,  &table};
  TimePoint done;
  model_sched.post("unknown", 8000, [&] { done = simulator.now(); });
  simulator.run();
  EXPECT_EQ(done, TimePoint::zero() + 1_ms);
}

TEST_F(SchedulerFixture, EnergySplitsActiveAndSleep) {
  scheduler.post("t", 80000, nullptr);  // 10 ms active
  simulator.schedule_in(30_ms, [] {});
  simulator.run();
  const auto now = simulator.now();
  EXPECT_NEAR(
      mcu.meter().energy_in(static_cast<int>(McuMode::kActive), now),
      2e-3 * 2.8 * 0.010, 1e-9);
  EXPECT_NEAR(mcu.meter().energy_in(static_cast<int>(McuMode::kLpm1), now),
              0.66e-3 * 2.8 * 0.020, 1e-9);
}

/// A probe that records task names.
class RecordingProbe final : public ModelProbe {
 public:
  void on_task(std::string_view, std::string_view task,
               sim::TimePoint) override {
    names.emplace_back(task);
  }
  void on_radio_rx_on(std::string_view, sim::TimePoint) override {}
  void on_radio_rx_off(std::string_view, sim::TimePoint) override {}
  void on_radio_tx(std::string_view, std::size_t, sim::TimePoint) override {}
  void on_packet(std::string_view, net::PacketType, bool,
                 sim::TimePoint) override {}
  std::vector<std::string> names;
};

TEST_F(SchedulerFixture, ProbeSeesTaskNames) {
  RecordingProbe recorder;
  TaskScheduler sched{context, mcu, power, "n", recorder};
  sched.post("alpha", 10, nullptr);
  sched.post("beta", 10, nullptr);
  simulator.run();
  EXPECT_EQ(recorder.names, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(PowerManagerTest, DeepestModeRespectsConstraints) {
  PowerManager pm;
  EXPECT_EQ(pm.idle_mode(), hw::McuMode::kLpm4);  // nothing registered
  const auto timer = pm.register_peripheral("timer", ClockConstraint::kSmclk);
  EXPECT_EQ(pm.idle_mode(), hw::McuMode::kLpm1);
  pm.update(timer, ClockConstraint::kAclk);
  EXPECT_EQ(pm.idle_mode(), hw::McuMode::kLpm3);
  pm.update(timer, ClockConstraint::kNone);
  EXPECT_EQ(pm.idle_mode(), hw::McuMode::kLpm4);
}

TEST(PowerManagerTest, StrictestConstraintWins) {
  PowerManager pm;
  pm.register_peripheral("rtc", ClockConstraint::kAclk);
  pm.register_peripheral("timer", ClockConstraint::kSmclk);
  EXPECT_EQ(pm.idle_mode(), hw::McuMode::kLpm1);
}

TEST(CycleCostModelTest, SetLookupHas) {
  CycleCostModel m;
  EXPECT_FALSE(m.has("x"));
  EXPECT_EQ(m.lookup("x", 77), 77u);  // fallback
  m.set("x", 1000);
  EXPECT_TRUE(m.has("x"));
  EXPECT_EQ(m.lookup("x", 77), 1000u);
  m.set("x", 2000);  // overwrite
  EXPECT_EQ(m.lookup("x", 77), 2000u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(CycleCostModelTest, PlatformDefaultsCoverBanTasks) {
  const CycleCostModel m = CycleCostModel::platform_defaults();
  for (const char* task :
       {"radio.clockin", "radio.clockout", "mac.beacon_proc", "app.acq_frame",
        "app.rpeak_step", "app.pack_payload", "mac.prepare_tx"}) {
    EXPECT_TRUE(m.has(task)) << task;
  }
}

}  // namespace
}  // namespace bansim::os
