// Direct unit tests for the mergeable campaign metrics: MetricCdf's
// fixed-range build + exact merge, and CampaignColumns append-order
// invariance — the two properties the campaign store's "resumed equals
// uninterrupted" guarantee reduces to once rows are bit-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "energy/campaign_columns.hpp"

namespace {

using bansim::energy::CampaignColumns;
using bansim::energy::CampaignRunRow;
using bansim::energy::MetricCdf;

constexpr double kInf = std::numeric_limits<double>::infinity();

CampaignRunRow make_row(std::uint64_t i) {
  CampaignRunRow row;
  row.seed = 1000 + i;
  row.total_mj = 30.0 + 0.17 * static_cast<double>(i);
  row.radio_mj = 11.0 + 0.05 * static_cast<double>(i);
  row.mcu_mj = 15.0 + 0.07 * static_cast<double>(i);
  row.asic_mj = row.total_mj - row.radio_mj - row.mcu_mj;
  row.lifetime_hours = (i % 5 == 0) ? kInf : 40.0 + static_cast<double>(i);
  row.join_ms = 80.0 + static_cast<double>(i % 7);
  row.data_packets = 200 + i;
  row.delivered_packets = 190 + i;
  row.joined = true;
  return row;
}

TEST(MetricCdfMerge, ShardMergesEqualWholeColumnBuild) {
  std::vector<double> whole;
  for (int i = 0; i < 97; ++i) {
    whole.push_back(i % 9 == 0 ? kInf : 10.0 + 0.37 * i);
  }
  double lo = kInf, hi = -kInf;
  for (double v : whole) {
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }

  const MetricCdf reference = MetricCdf::build_with_range(whole, lo, hi, 32);

  // Uneven shard split, merged in shard order.
  MetricCdf merged;
  std::size_t off = 0;
  for (std::size_t size : {13UL, 1UL, 40UL, 20UL, 23UL}) {
    const std::vector<double> shard(whole.begin() + static_cast<long>(off),
                                    whole.begin() +
                                        static_cast<long>(off + size));
    merged.merge(MetricCdf::build_with_range(shard, lo, hi, 32));
    off += size;
  }
  ASSERT_EQ(off, whole.size());

  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.unbounded, reference.unbounded);
  EXPECT_EQ(merged.bin_count, reference.bin_count);  // exact integer counts
  EXPECT_EQ(merged.upper_edge, reference.upper_edge);
  EXPECT_EQ(merged.lo, reference.lo);
  EXPECT_EQ(merged.hi, reference.hi);
  for (double q : {0.05, 0.25, 0.50, 0.75, 0.95}) {
    EXPECT_EQ(merged.percentile(q), reference.percentile(q)) << "q=" << q;
  }
}

TEST(MetricCdfMerge, GoldenPercentiles) {
  // 0..99 into 10 equal bins of [0, 99]: percentile(q) interpolates within
  // the bin that crosses q — golden values computed by hand.
  std::vector<double> column;
  for (int i = 0; i < 100; ++i) column.push_back(static_cast<double>(i));
  const MetricCdf cdf = MetricCdf::build_with_range(column, 0.0, 99.0, 10);
  ASSERT_EQ(cdf.count, 100U);
  ASSERT_EQ(cdf.bin_count.size(), 10U);
  EXPECT_EQ(cdf.bin_count[0], 10U);  // 0..9 land in the first bin
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 0.0);
  // q=0.5: cum hits 0.5 exactly at the end of bin 4 -> edge 49.5... the
  // bin spanning (39.6, 49.5] accumulates 0.4 -> 0.5, interpolating to its
  // upper edge.
  EXPECT_NEAR(cdf.percentile(0.5), 49.5, 1e-12);
  EXPECT_NEAR(cdf.percentile(1.0), 99.0, 1e-12);
}

TEST(MetricCdfMerge, UnboundedTailSurvivesMerge) {
  const std::vector<double> finite{1.0, 2.0, 3.0};
  const std::vector<double> unbounded{kInf, kInf};
  MetricCdf merged = MetricCdf::build_with_range(finite, 1.0, 3.0, 4);
  merged.merge(MetricCdf::build_with_range(unbounded, 1.0, 3.0, 4));
  EXPECT_EQ(merged.count, 3U);
  EXPECT_EQ(merged.unbounded, 2U);
  // 3 of 5 entries are finite; q beyond 0.6 reaches into the +inf tail.
  EXPECT_TRUE(std::isinf(merged.percentile(0.9)));
  EXPECT_TRUE(std::isfinite(merged.percentile(0.5)));
}

TEST(MetricCdfMerge, EmptySideAdoptsOther) {
  const std::vector<double> column{5.0, 6.0, 7.0};
  MetricCdf merged;  // no edges yet
  const MetricCdf built = MetricCdf::build_with_range(column, 5.0, 7.0, 8);
  merged.merge(built);
  EXPECT_EQ(merged.bin_count, built.bin_count);
  EXPECT_EQ(merged.count, built.count);

  // And an empty *built* CDF (edges, zero entries) merges as a no-op.
  const std::vector<double> none;
  merged.merge(MetricCdf::build_with_range(none, 5.0, 7.0, 8));
  EXPECT_EQ(merged.count, built.count);
  EXPECT_EQ(merged.bin_count, built.bin_count);
}

TEST(MetricCdfMerge, MismatchedEdgesThrow) {
  const std::vector<double> column{1.0, 2.0};
  MetricCdf a = MetricCdf::build_with_range(column, 0.0, 10.0, 8);
  const MetricCdf other_range = MetricCdf::build_with_range(column, 0.0, 9.0, 8);
  const MetricCdf other_bins = MetricCdf::build_with_range(column, 0.0, 10.0, 4);
  EXPECT_THROW(a.merge(other_range), std::invalid_argument);
  EXPECT_THROW(a.merge(other_bins), std::invalid_argument);
  EXPECT_THROW((void)MetricCdf::build_with_range(column, 5.0, 1.0, 8),
               std::invalid_argument);
}

TEST(MetricCdfMerge, OutOfRangeFiniteEntriesClampIntoEdgeBins) {
  const std::vector<double> column{-100.0, 5.0, 900.0};
  const MetricCdf cdf = MetricCdf::build_with_range(column, 0.0, 10.0, 4);
  EXPECT_EQ(cdf.count, 3U);
  EXPECT_EQ(cdf.bin_count.front(), 1U);  // -100 clamped low
  EXPECT_EQ(cdf.bin_count.back(), 1U);   // 900 clamped high
}

TEST(CampaignColumns, AppendOrderInvariance) {
  // Rows appended in ascending patient order must yield identical columns
  // whether they arrive as one whole stream or as shard-sized chunks
  // appended in shard-index order — the aggregate()'s merge discipline.
  CampaignColumns whole;
  for (std::uint64_t i = 0; i < 60; ++i) whole.append_run(make_row(i));

  CampaignColumns chunked;
  for (std::uint64_t first = 0; first < 60; first += 7) {
    CampaignColumns shard;
    for (std::uint64_t i = first; i < std::min<std::uint64_t>(60, first + 7);
         ++i) {
      shard.append_run(make_row(i));
    }
    chunked.append_columns(shard);
  }
  EXPECT_TRUE(whole == chunked);
}

TEST(CampaignColumns, RowRoundTripIsExact) {
  CampaignColumns columns;
  CampaignRunRow row = make_row(17);
  row.total_mj = 0.1 + 0.2;  // a value with no short decimal form
  row.lifetime_hours = kInf;
  row.joined = false;
  columns.append_run(row);
  const CampaignRunRow back = columns.row(0);
  EXPECT_EQ(back.seed, row.seed);
  EXPECT_EQ(back.total_mj, row.total_mj);  // bit-exact, not approx
  EXPECT_EQ(back.radio_mj, row.radio_mj);
  EXPECT_EQ(back.mcu_mj, row.mcu_mj);
  EXPECT_EQ(back.asic_mj, row.asic_mj);
  EXPECT_TRUE(std::isinf(back.lifetime_hours));
  EXPECT_EQ(back.join_ms, row.join_ms);
  EXPECT_EQ(back.data_packets, row.data_packets);
  EXPECT_EQ(back.delivered_packets, row.delivered_packets);
  EXPECT_FALSE(back.joined);
}

TEST(CampaignColumns, PdrColumnAndGoldenPercentiles) {
  CampaignColumns columns;
  for (std::uint64_t i = 0; i < 10; ++i) {
    CampaignRunRow row = make_row(i);
    row.data_packets = 100;
    row.delivered_packets = 90 + i;  // PDR 0.90 .. 0.99
    columns.append_run(row);
  }
  const std::vector<double> pdr = columns.pdr_column();
  ASSERT_EQ(pdr.size(), 10U);
  std::vector<double> scratch;
  // Nearest-rank: p50 of 10 entries is the 5th smallest = 0.94.
  EXPECT_DOUBLE_EQ(bansim::energy::column_percentile(pdr, 0.50, scratch),
                   0.94);
  EXPECT_DOUBLE_EQ(bansim::energy::column_percentile(pdr, 1.00, scratch),
                   0.99);

  // An idle run (nothing sent) counts as perfect delivery.
  CampaignRunRow idle;
  idle.data_packets = 0;
  idle.delivered_packets = 0;
  EXPECT_DOUBLE_EQ(idle.pdr(), 1.0);
}

}  // namespace
