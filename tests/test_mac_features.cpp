// Tests of the MAC extensions: fast slot grants, link-layer ACK /
// retransmission, and silent-slot reclamation.
#include <gtest/gtest.h>

#include "core/ban_network.hpp"

namespace bansim::mac {
namespace {

using namespace bansim::sim::literals;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::TimePoint;

BanConfig base_config(TdmaVariant variant, std::size_t nodes) {
  BanConfig cfg;
  cfg.num_nodes = nodes;
  cfg.tdma = variant == TdmaVariant::kStatic
                 ? TdmaConfig::static_plan(60_ms, 5)
                 : TdmaConfig::dynamic_plan();
  cfg.app = AppKind::kNone;
  cfg.seed = 21;
  return cfg;
}

TEST(FastGrant, NodesJoinViaDirectedGrant) {
  BanConfig cfg = base_config(TdmaVariant::kStatic, 3);
  cfg.tdma.fast_grant = true;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  EXPECT_GT(net.base_station_mac().stats().grants_sent, 0u);
  std::uint64_t received = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    received += net.node(i).mac().stats().grants_received;
  }
  EXPECT_GT(received, 0u);
}

TEST(FastGrant, JoinsFasterThanBeaconTableAlone) {
  auto join_time = [](bool fast) {
    BanConfig cfg = base_config(TdmaVariant::kStatic, 5);
    cfg.tdma.fast_grant = fast;
    BanNetwork net{cfg};
    net.start();
    EXPECT_TRUE(net.run_until_joined(Duration::zero(),
                                     TimePoint::zero() + 30_s));
    return net.simulator().now();
  };
  // With fast grants a node is joined within the same cycle as its SSR;
  // without, it waits for the next beacon.  (Non-strict: contention noise.)
  EXPECT_LE(join_time(true), join_time(false) + 60_ms);
}

TEST(FastGrant, DisabledMeansNoGrantFrames) {
  BanConfig cfg = base_config(TdmaVariant::kDynamic, 3);
  cfg.tdma.fast_grant = false;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  EXPECT_EQ(net.base_station_mac().stats().grants_sent, 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(net.node(i).mac().stats().grants_received, 0u);
  }
}

TEST(AckMode, AcksFlowAndQueueDrains) {
  BanConfig cfg = base_config(TdmaVariant::kStatic, 2);
  cfg.tdma.ack_data = true;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  net.node(0).mac().queue_payload({1, 2, 3});
  net.node(0).mac().queue_payload({4, 5, 6});
  net.run_until(net.simulator().now() + 300_ms);
  EXPECT_EQ(net.node(0).mac().queue_depth(), 0u);
  EXPECT_EQ(net.node(0).mac().stats().acks_received, 2u);
  EXPECT_GE(net.base_station_mac().stats().acks_sent, 2u);
  EXPECT_EQ(net.node(0).mac().stats().retransmissions, 0u);
}

TEST(AckMode, LostAcksTriggerRetransmission) {
  BanConfig cfg = base_config(TdmaVariant::kStatic, 2);
  cfg.tdma.ack_data = true;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));

  // Sever the downlink only?  The link matrix is symmetric, so severing
  // kills both directions: the data frame itself is lost, which equally
  // exercises the retry path.
  net.channel().set_link(0 /*bs*/, 1 /*node1*/, false);
  net.node(0).mac().queue_payload({9});
  net.run_until(net.simulator().now() + 400_ms);
  EXPECT_GE(net.node(0).mac().stats().retransmissions, 1u);

  // Heal within the retry budget of a fresh payload: delivery resumes.
  net.channel().set_link(0, 1, true);
  net.node(0).mac().queue_payload({7});
  net.run_until(net.simulator().now() + 500_ms);
  EXPECT_EQ(net.node(0).mac().queue_depth(), 0u);
}

TEST(AckMode, GivesUpAfterMaxRetries) {
  BanConfig cfg = base_config(TdmaVariant::kStatic, 2);
  cfg.tdma.ack_data = true;
  cfg.tdma.max_retries = 2;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  net.channel().set_link(0, 1, false);
  net.node(0).mac().queue_payload({9});
  net.run_until(net.simulator().now() + 2_s);
  EXPECT_GE(net.node(0).mac().stats().retry_drops, 1u);
  EXPECT_EQ(net.node(0).mac().queue_depth(), 0u);
}

TEST(AckMode, OffByDefaultMeansNoAcks) {
  BanConfig cfg = base_config(TdmaVariant::kStatic, 2);
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(100_ms, TimePoint::zero() + 20_s));
  net.node(0).mac().queue_payload({1});
  net.run_until(net.simulator().now() + 200_ms);
  EXPECT_EQ(net.base_station_mac().stats().acks_sent, 0u);
  EXPECT_EQ(net.node(0).mac().stats().acks_received, 0u);
}

TEST(Reclamation, DynamicCycleShrinksWhenNodeDies) {
  BanConfig cfg = base_config(TdmaVariant::kDynamic, 3);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 150;  // one payload per 40 ms cycle
  cfg.tdma.reclaim_after_cycles = 25;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  ASSERT_EQ(net.base_station_mac().current_cycle(), 40_ms);

  // Kill node3's RF path entirely.
  const std::uint32_t bs = 0, dead = 3;
  net.channel().set_link(bs, dead, false);
  for (std::uint32_t other = 1; other <= 2; ++other) {
    net.channel().set_link(other, dead, false);
  }
  net.run_until(net.simulator().now() + 5_s);

  EXPECT_GE(net.base_station_mac().stats().slots_reclaimed, 1u);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 2u);
  EXPECT_EQ(net.base_station_mac().current_cycle(), 30_ms);
  // Survivors keep streaming on the shrunk cycle.
  EXPECT_TRUE(net.node(0).mac().joined());
  EXPECT_TRUE(net.node(1).mac().joined());
}

TEST(Reclamation, RevivedNodeRejoins) {
  BanConfig cfg = base_config(TdmaVariant::kDynamic, 2);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 200;
  cfg.tdma.reclaim_after_cycles = 25;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));

  net.channel().set_link(0, 2, false);  // isolate node2
  net.run_until(net.simulator().now() + 5_s);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 1u);

  net.channel().set_link(0, 2, true);
  net.run_until(net.simulator().now() + 5_s);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 2u);
  EXPECT_TRUE(net.node(1).mac().joined());
}

TEST(Reclamation, StaticSlotReopensForNewRequests) {
  BanConfig cfg = base_config(TdmaVariant::kStatic, 2);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 100;
  cfg.tdma.reclaim_after_cycles = 20;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));

  net.channel().set_link(0, 1, false);
  net.run_until(net.simulator().now() + 4_s);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 1u);
  // The freed slot shows up as kFreeSlot in the table again.
  std::size_t free_slots = 0;
  for (const net::NodeId owner : net.base_station_mac().slot_owners()) {
    if (owner == kFreeSlot) ++free_slots;
  }
  EXPECT_EQ(free_slots, 4u);
}

TEST(Reclamation, DisabledByDefault) {
  BanConfig cfg = base_config(TdmaVariant::kDynamic, 2);
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  net.channel().set_link(0, 1, false);
  net.channel().set_link(0, 2, false);
  net.run_until(net.simulator().now() + 5_s);
  // Nobody evicted: silence tolerated indefinitely (Rpeak-style traffic).
  EXPECT_EQ(net.base_station_mac().stats().slots_reclaimed, 0u);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 2u);
}

}  // namespace
}  // namespace bansim::mac
