#include "phy/channel.hpp"

#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <vector>

#include "phy/air_frame.hpp"

namespace bansim::phy {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

/// Records every frame boundary it hears.
class Spy final : public MediumListener {
 public:
  struct Ended {
    std::uint64_t id;
    bool corrupted;
    std::vector<std::uint8_t> bytes;
  };
  void on_frame_start(const AirFrame& frame) override {
    starts.push_back(frame.id);
  }
  void on_frame_end(const AirFrame& frame, bool corrupted) override {
    ends.push_back({frame.id, corrupted, frame.bytes});
  }
  std::vector<std::uint64_t> starts;
  std::vector<Ended> ends;
};

struct ChannelFixture : ::testing::Test {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  sim::Tracer& tracer = context.tracer;
  Channel channel{context};
  Spy a, b, c;
  std::uint32_t ia{0}, ib{0}, ic{0};

  void SetUp() override {
    ia = channel.attach(a);
    ib = channel.attach(b);
    ic = channel.attach(c);
  }
};

TEST_F(ChannelFixture, DeliversToOthersNotSelf) {
  channel.transmit(ia, {1, 2, 3}, 100_us);
  simulator.run();
  EXPECT_TRUE(a.starts.empty());
  EXPECT_EQ(b.starts.size(), 1u);
  EXPECT_EQ(c.starts.size(), 1u);
  ASSERT_EQ(b.ends.size(), 1u);
  EXPECT_FALSE(b.ends[0].corrupted);
  EXPECT_EQ(b.ends[0].bytes, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(ChannelFixture, FrameEndArrivesAfterDuration) {
  channel.transmit(ia, {0}, 250_us);
  TimePoint end_seen;
  simulator.schedule_in(1_ms, [] {});
  simulator.run_until(TimePoint::zero() + 249_us);
  EXPECT_TRUE(b.ends.empty());
  simulator.run_until(TimePoint::zero() + 251_us);
  EXPECT_EQ(b.ends.size(), 1u);
}

TEST_F(ChannelFixture, OverlapCorruptsBothFrames) {
  channel.transmit(ia, {1}, 200_us);
  simulator.run_until(TimePoint::zero() + 50_us);
  channel.transmit(ib, {2}, 200_us);
  simulator.run();
  // c hears both, both corrupted.
  ASSERT_EQ(c.ends.size(), 2u);
  EXPECT_TRUE(c.ends[0].corrupted);
  EXPECT_TRUE(c.ends[1].corrupted);
  EXPECT_EQ(channel.collisions(), 1u);
}

TEST_F(ChannelFixture, NonOverlappingFramesAreClean) {
  channel.transmit(ia, {1}, 100_us);
  simulator.run_until(TimePoint::zero() + 150_us);
  channel.transmit(ib, {2}, 100_us);
  simulator.run();
  ASSERT_EQ(c.ends.size(), 2u);
  EXPECT_FALSE(c.ends[0].corrupted);
  EXPECT_FALSE(c.ends[1].corrupted);
  EXPECT_EQ(channel.collisions(), 0u);
}

TEST_F(ChannelFixture, SeveredLinkBlocksDelivery) {
  channel.set_link(ia, ib, false);
  EXPECT_FALSE(channel.link(ia, ib));
  EXPECT_FALSE(channel.link(ib, ia));
  channel.transmit(ia, {1}, 100_us);
  simulator.run();
  EXPECT_TRUE(b.starts.empty());
  EXPECT_TRUE(b.ends.empty());
  EXPECT_EQ(c.ends.size(), 1u);  // c still connected
}

TEST_F(ChannelFixture, HiddenNodesCollideAtCommonReceiver) {
  // a and b cannot hear each other but both reach c: classic hidden node.
  channel.set_link(ia, ib, false);
  channel.transmit(ia, {1}, 200_us);
  simulator.run_until(TimePoint::zero() + 20_us);
  channel.transmit(ib, {2}, 200_us);
  simulator.run();
  ASSERT_EQ(c.ends.size(), 2u);
  EXPECT_TRUE(c.ends[0].corrupted);
  EXPECT_TRUE(c.ends[1].corrupted);
}

TEST_F(ChannelFixture, FullyIsolatedTransmittersDoNotCollide) {
  // a-b severed AND c unreachable from b: a's frame has no receiver in
  // common with b's, so neither is corrupted.
  channel.set_link(ia, ib, false);
  channel.set_link(ib, ic, false);
  channel.transmit(ia, {1}, 200_us);
  simulator.run_until(TimePoint::zero() + 20_us);
  channel.transmit(ib, {2}, 200_us);
  simulator.run();
  ASSERT_EQ(c.ends.size(), 1u);
  EXPECT_FALSE(c.ends[0].corrupted);
  EXPECT_EQ(channel.collisions(), 0u);
}

TEST_F(ChannelFixture, PropagationDelayShiftsDelivery) {
  channel.set_propagation_delay(3_us);
  channel.transmit(ia, {1}, 100_us);
  simulator.run_until(TimePoint::zero() + 2_us);
  EXPECT_TRUE(b.starts.empty());
  simulator.run_until(TimePoint::zero() + 4_us);
  EXPECT_EQ(b.starts.size(), 1u);
  simulator.run();
  EXPECT_EQ(b.ends.size(), 1u);
}

TEST_F(ChannelFixture, CountsFrames) {
  channel.transmit(ia, {1}, 10_us);
  simulator.run();
  channel.transmit(ib, {2}, 10_us);
  simulator.run();
  EXPECT_EQ(channel.frames_sent(), 2u);
}

TEST_F(ChannelFixture, ThreeWayOverlapCorruptsAll) {
  channel.transmit(ia, {1}, 300_us);
  simulator.run_until(TimePoint::zero() + 10_us);
  channel.transmit(ib, {2}, 300_us);
  simulator.run_until(TimePoint::zero() + 20_us);
  channel.transmit(ic, {3}, 300_us);
  simulator.run();
  // every listener hears the two frames it did not send; all corrupted.
  for (const Spy* spy : {&a, &b, &c}) {
    ASSERT_EQ(spy->ends.size(), 2u);
    EXPECT_TRUE(spy->ends[0].corrupted);
    EXPECT_TRUE(spy->ends[1].corrupted);
  }
}

TEST(AirTime, MatchesBitArithmetic) {
  PhyConfig cfg;  // 1 Mbps, 8 preamble + 40 address + 16 CRC-in-bytes
  // 26 bytes -> 8 + 40 + 208 bits = 256 bits -> 256 us at 1 Mbps.
  EXPECT_EQ(air_time(cfg, 26), Duration::microseconds(256));
  // Zero payload is still preamble + address.
  EXPECT_EQ(air_time(cfg, 0), Duration::microseconds(48));
}

TEST(AirTime, ScalesWithRate) {
  PhyConfig cfg;
  cfg.air_rate_bps = 250'000.0;
  EXPECT_EQ(air_time(cfg, 26), Duration::microseconds(1024));
}

}  // namespace
}  // namespace bansim::phy
