#include "core/timeline.hpp"

#include <gtest/gtest.h>

namespace bansim::core {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;
using sim::TraceCategory;
using sim::TraceRecord;

TimePoint at(std::int64_t ms) {
  return TimePoint::zero() + Duration::milliseconds(ms);
}

/// Shared intern table for hand-built records; lives for the whole test
/// binary so record node_name pointers stay valid.
sim::Tracer& intern_tracer() {
  static sim::Tracer tracer;
  return tracer;
}

TraceRecord make_record(std::int64_t ms, TraceCategory category,
                        std::string_view node, std::string message) {
  const sim::TraceNodeId id = intern_tracer().intern(node);
  return {at(ms), category, id, std::move(message),
          &intern_tracer().node_name(id)};
}

TraceRecord mac(std::int64_t ms, std::string_view node, std::string message) {
  return make_record(ms, TraceCategory::kMac, node, std::move(message));
}

TEST(Timeline, PlacesSymbolsAtTheRightBins) {
  std::vector<TraceRecord> records = {
      mac(0, "bs", "SB beacon seq=0"),
      mac(12, "node1", "SSR (slot 2)"),
      mac(25, "bs", "grant slot 2 to node 1"),
      mac(40, "node1", "Si data tx slot=2 len=18"),
  };
  TimelineOptions options;
  options.start = at(0);
  options.window = 50_ms;
  options.bin = 1_ms;
  const std::string out = render_timeline(records, options);

  // Two rows, labelled.
  EXPECT_NE(out.find("bs"), std::string::npos);
  EXPECT_NE(out.find("node1"), std::string::npos);
  // bs row: B at bin 0, G at bin 25.
  const auto bs_pos = out.find("bs       |");
  ASSERT_NE(bs_pos, std::string::npos);
  EXPECT_EQ(out[bs_pos + 10 + 0], 'B');
  EXPECT_EQ(out[bs_pos + 10 + 25], 'G');
  const auto n1_pos = out.find("node1    |");
  ASSERT_NE(n1_pos, std::string::npos);
  EXPECT_EQ(out[n1_pos + 10 + 12], 'R');
  EXPECT_EQ(out[n1_pos + 10 + 40], 'D');
}

TEST(Timeline, IgnoresOutOfWindowAndNonMacRecords) {
  std::vector<TraceRecord> records = {
      mac(5, "bs", "SB beacon seq=0"),
      mac(500, "bs", "SB beacon seq=1"),  // beyond window
      make_record(6, TraceCategory::kRadio, "bs", "SB beacon imitation"),
      mac(7, "bs", "unrelated message"),
  };
  TimelineOptions options;
  options.start = at(0);
  options.window = 100_ms;
  options.bin = 1_ms;
  const std::string out = render_timeline(records, options);
  // Exactly one B, no symbol at bin 6 or 7.
  const auto bs_pos = out.find("bs       |");
  ASSERT_NE(bs_pos, std::string::npos);
  EXPECT_EQ(out[bs_pos + 10 + 5], 'B');
  EXPECT_EQ(out[bs_pos + 10 + 6], '.');
  EXPECT_EQ(out[bs_pos + 10 + 7], '.');
  EXPECT_EQ(std::count(out.begin(), out.end(), 'B'), 2);  // legend + 1 event
}

TEST(Timeline, RecordsBeforeStartAreSkipped) {
  std::vector<TraceRecord> records = {
      mac(5, "bs", "SB beacon seq=0"),
      mac(55, "bs", "SB beacon seq=1"),
  };
  TimelineOptions options;
  options.start = at(50);
  options.window = 100_ms;
  options.bin = 1_ms;
  const std::string out = render_timeline(records, options);
  const auto bs_pos = out.find("bs       |");
  ASSERT_NE(bs_pos, std::string::npos);
  EXPECT_EQ(out[bs_pos + 10 + 5], 'B');  // 55 ms -> bin 5 relative to start
}

TEST(Timeline, EmptyRecordsGiveHeaderOnly) {
  TimelineOptions options;
  options.start = at(0);
  const std::string out = render_timeline({}, options);
  EXPECT_NE(out.find("timeline from"), std::string::npos);
  EXPECT_EQ(out.find("node"), std::string::npos);
}

}  // namespace
}  // namespace bansim::core
