// End-to-end application tests over the full stack: sampling -> packing ->
// TDMA slots -> air -> base station decoding.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/ecg_streaming_app.hpp"
#include "core/ban_network.hpp"

namespace bansim::apps {
namespace {

using namespace bansim::sim::literals;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::TimePoint;

TEST(StreamingIntegration, PayloadCadenceMatchesSamplingArithmetic) {
  // 205 Hz * 2 ch = 410 codes/s; 12 codes per 18-byte payload -> ~34.2
  // payloads per second.
  BanConfig cfg;
  cfg.num_nodes = 2;
  cfg.tdma = mac::TdmaConfig::static_plan(30_ms, 5);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 205;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));

  const auto before = net.node(0).streaming_app()->payloads_queued();
  net.run_until(net.simulator().now() + 10_s);
  const auto queued = net.node(0).streaming_app()->payloads_queued() - before;
  EXPECT_NEAR(static_cast<double>(queued), 341.7, 6.0);
}

TEST(StreamingIntegration, BaseStationReceivesStreamIntact) {
  BanConfig cfg;
  cfg.num_nodes = 1;
  cfg.tdma = mac::TdmaConfig::static_plan(60_ms, 5);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 105;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  net.run_until(net.simulator().now() + 10_s);

  const auto& traffic = net.base_station_app().per_node();
  const auto it = traffic.find(1);
  ASSERT_NE(it, traffic.end());
  // One 18-byte payload per 60 ms cycle (105 Hz * 2ch fills one per cycle);
  // count over the span the BS actually observed (join settle included).
  const double span_s =
      (it->second.last_arrival - it->second.first_arrival).to_seconds();
  EXPECT_NEAR(static_cast<double>(it->second.packets), span_s / 0.060, 8.0);
  EXPECT_EQ(it->second.bytes, it->second.packets * 18);
  // Slot cadence: inter-arrival ~= one cycle.
  EXPECT_NEAR(it->second.inter_arrival_ms.mean(), 60.0, 1.0);
}

TEST(StreamingIntegration, SamplesSurviveThePipeline) {
  // Unpack every payload at the BS and check the codes look like an ECG
  // around the ADC midscale rather than garbage.
  BanConfig cfg;
  cfg.num_nodes = 1;
  cfg.tdma = mac::TdmaConfig::static_plan(60_ms, 5);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 105;

  std::vector<std::uint16_t> codes;
  BanNetwork net{cfg};
  net.base_station_mac().set_data_handler(
      [&](net::NodeId, std::span<const std::uint8_t> payload, TimePoint) {
        const auto part = unpack12(
            std::vector<std::uint8_t>(payload.begin(), payload.end()));
        codes.insert(codes.end(), part.begin(), part.end());
      });
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  net.run_until(net.simulator().now() + 5_s);

  ASSERT_GT(codes.size(), 500u);
  double mean = 0.0;
  std::uint16_t peak = 0;
  for (const std::uint16_t c : codes) {
    mean += c;
    peak = std::max(peak, c);
  }
  mean /= static_cast<double>(codes.size());
  // Baseline 1.25 V on a 2.5 V ADC -> ~2048; R peaks push well above.
  EXPECT_NEAR(mean, 2080.0, 120.0);
  EXPECT_GT(peak, 2700u);
}

TEST(RpeakIntegration, BaseStationReconstructsBeatTrain) {
  BanConfig cfg;
  cfg.num_nodes = 1;
  cfg.tdma = mac::TdmaConfig::static_plan(120_ms, 5);
  cfg.app = AppKind::kRpeak;
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  const TimePoint t0 = net.simulator().now();
  net.run_until(t0 + 30_s);

  // Ground truth from the node's own synthesizer (both channels carry the
  // same cardiac source, so detections come in channel pairs).
  const auto truth = net.node(0).ecg().beats_until(net.simulator().now());
  std::size_t truth_in_window = 0;
  for (const TimePoint b : truth) {
    if (b > t0) ++truth_in_window;
  }

  const auto& beats = net.base_station_app().beats();
  std::size_t in_window = 0;
  std::size_t matched = 0;
  for (const auto& [node, when] : beats) {
    if (when <= t0) continue;
    ++in_window;
    double best = 1e9;
    for (const TimePoint b : truth) {
      best = std::min(best, std::abs((when - b).to_seconds()));
    }
    // "samples ago" is stamped at detection; the event then waits in the
    // MAC queue for up to ~1.5 TDMA cycles (120 ms each) before its slot,
    // a latency the BS cannot subtract.  Allow that transport slack.
    if (best < 0.35) ++matched;
  }
  ASSERT_GT(in_window, 0u);
  // 2 channels x ~75 bpm: between 1x and 2.3x the single-channel count.
  EXPECT_GE(in_window, truth_in_window);
  EXPECT_LE(in_window, truth_in_window * 23 / 10);
  // Nearly all reconstructed beats align with a true beat.
  EXPECT_GE(static_cast<double>(matched), 0.85 * static_cast<double>(in_window));
}

TEST(RpeakIntegration, RadioLoadFarBelowStreaming) {
  auto run_packets = [](AppKind app) {
    BanConfig cfg;
    cfg.num_nodes = 1;
    cfg.tdma = mac::TdmaConfig::static_plan(30_ms, 5);
    cfg.app = app;
    cfg.streaming.sample_rate_hz = 205;
    BanNetwork net{cfg};
    net.start();
    EXPECT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
    const auto before = net.node(0).mac().stats().data_sent;
    net.run_until(net.simulator().now() + 10_s);
    return net.node(0).mac().stats().data_sent - before;
  };
  const auto streaming = run_packets(AppKind::kEcgStreaming);
  const auto rpeak = run_packets(AppKind::kRpeak);
  EXPECT_GT(streaming, 300u);
  EXPECT_LT(rpeak, streaming / 5);
}

TEST(BaseStationAppTest, TracksPerNodeTrafficAndSummary) {
  BaseStationApp app;
  const std::vector<std::uint8_t> payload(18, 1);
  app.on_data(1, payload, TimePoint::zero() + 10_ms);
  app.on_data(1, payload, TimePoint::zero() + 40_ms);
  app.on_data(2, payload, TimePoint::zero() + 15_ms);
  EXPECT_EQ(app.total_packets(), 3u);
  EXPECT_EQ(app.total_bytes(), 54u);
  const auto& t = app.per_node().at(1);
  EXPECT_EQ(t.packets, 2u);
  EXPECT_NEAR(t.inter_arrival_ms.mean(), 30.0, 1e-9);
  EXPECT_NE(app.render_summary().find("total: 3 packets"), std::string::npos);
}

TEST(BaseStationAppTest, DecodesBeatEventsWhenEnabled) {
  BaseStationApp app;
  app.set_decode_beats(true);
  BeatEvent e;
  e.channel = 0;
  e.samples_ago = 74;
  e.beat_number = 1;
  app.on_data(3, e.serialize(), TimePoint::zero() + 1_s);
  ASSERT_EQ(app.beats().size(), 1u);
  EXPECT_EQ(app.beats()[0].first, 3);
  // 74 samples at 200 Hz = 370 ms before arrival (the paper's example).
  EXPECT_EQ(app.beats()[0].second,
            TimePoint::zero() + 1_s - Duration::milliseconds(370));
}

}  // namespace
}  // namespace bansim::apps
