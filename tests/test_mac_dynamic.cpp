// Integration tests of the dynamic TDMA MAC: the cycle must grow by one
// slot per admitted node, slot requests contend in the ES window, and the
// whole network must converge for any node count.
#include <gtest/gtest.h>

#include <set>

#include "core/ban_network.hpp"

namespace bansim::mac {
namespace {

using namespace bansim::sim::literals;
using core::AppKind;
using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::TimePoint;

BanConfig dynamic_config(std::size_t nodes, std::uint64_t seed = 11) {
  BanConfig cfg;
  cfg.num_nodes = nodes;
  cfg.tdma = TdmaConfig::dynamic_plan();
  cfg.app = AppKind::kNone;
  cfg.seed = seed;
  return cfg;
}

TEST(DynamicTdma, CycleStartsMinimal) {
  BanNetwork net{dynamic_config(0)};
  net.start();
  net.run_until(TimePoint::zero() + 500_ms);
  // No nodes: SB slot only (the ES window lives in its tail).
  EXPECT_EQ(net.base_station_mac().current_cycle(), 10_ms);
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 0u);
}

class DynamicTdmaGrowth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DynamicTdmaGrowth, CycleGrowsWithNetworkSize) {
  const std::size_t nodes = GetParam();
  BanNetwork net{dynamic_config(nodes)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 30_s))
      << nodes << " nodes failed to join";
  EXPECT_EQ(net.base_station_mac().joined_nodes(), nodes);
  EXPECT_EQ(net.base_station_mac().current_cycle(),
            Duration::milliseconds(10 * (1 + static_cast<std::int64_t>(nodes))));
  // Every node learned the final cycle from the beacon.
  for (std::size_t i = 0; i < nodes; ++i) {
    EXPECT_EQ(net.node(i).mac().known_cycle(),
              net.base_station_mac().current_cycle());
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DynamicTdmaGrowth,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(DynamicTdma, SlotsAssignedInJoinOrderAreExclusive) {
  BanNetwork net{dynamic_config(5)};
  net.start();
  ASSERT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 30_s));
  std::set<int> slots;
  for (std::size_t i = 0; i < 5; ++i) {
    slots.insert(net.node(i).mac().slot_index());
  }
  EXPECT_EQ(slots, (std::set<int>{0, 1, 2, 3, 4}));
}

TEST(DynamicTdma, SimultaneousBootStillConverges) {
  // All nodes boot in a tight window: SSR collisions in the ES window are
  // likely, and the random request timing must eventually resolve them.
  BanConfig cfg = dynamic_config(5, /*seed=*/3);
  cfg.stagger = Duration::milliseconds(1);
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 30_s));
  EXPECT_EQ(net.base_station_mac().joined_nodes(), 5u);
}

TEST(DynamicTdma, ConvergesAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    BanConfig cfg = dynamic_config(4, seed);
    cfg.stagger = Duration::milliseconds(5);
    BanNetwork net{cfg};
    net.start();
    EXPECT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 30_s))
        << "seed " << seed;
  }
}

TEST(DynamicTdma, JoinedNodesKeepSlotsWhenOthersJoin) {
  BanConfig cfg = dynamic_config(3);
  cfg.stagger = Duration::milliseconds(400);  // strictly staggered joins
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(200_ms, TimePoint::zero() + 30_s));
  // Join order follows slot order; every node keeps a distinct slot and the
  // owner table matches the nodes' own beliefs.
  const auto& owners = net.base_station_mac().slot_owners();
  ASSERT_EQ(owners.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const int slot = net.node(i).mac().slot_index();
    ASSERT_GE(slot, 0);
    EXPECT_EQ(owners[static_cast<std::size_t>(slot)], net.node(i).address());
  }
}

TEST(DynamicTdma, DataFlowsAfterGrowth) {
  BanConfig cfg = dynamic_config(4);
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 120;  // 18 B per 50 ms cycle
  BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  net.run_until(net.simulator().now() + 5_s);
  // Every node delivers roughly one packet per 50 ms cycle.
  for (const auto& [node, traffic] : net.base_station_app().per_node()) {
    EXPECT_NEAR(static_cast<double>(traffic.packets), 100.0, 10.0)
        << "node " << node;
  }
}

TEST(DynamicTdma, SlotRequestsUseRandomTiming) {
  // Two different seeds must produce different SSR instants; verified
  // indirectly via the beacon-relative arrival of the first data slot
  // request at the BS (statistical: just check both networks converge and
  // produce different slot_request counts under contention).
  BanConfig a = dynamic_config(5, 101);
  a.stagger = Duration::milliseconds(1);
  BanConfig b = dynamic_config(5, 202);
  b.stagger = Duration::milliseconds(1);
  BanNetwork na{a}, nb{b};
  na.start();
  nb.start();
  ASSERT_TRUE(na.run_until_joined(100_ms, TimePoint::zero() + 30_s));
  ASSERT_TRUE(nb.run_until_joined(100_ms, TimePoint::zero() + 30_s));
  // Both converged; contention histories need not match.
  EXPECT_EQ(na.base_station_mac().joined_nodes(), 5u);
  EXPECT_EQ(nb.base_station_mac().joined_nodes(), 5u);
}

}  // namespace
}  // namespace bansim::mac
