#include "os/timer_service.hpp"

#include <gtest/gtest.h>

#include "sim/context.hpp"

#include <vector>

namespace bansim::os {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

struct TimerServiceFixture : ::testing::Test {
  sim::SimContext context;
  sim::Simulator& simulator = context.simulator;
  sim::Tracer& tracer = context.tracer;
  hw::McuParams params;
  double skew{0.0};

  struct Stack {
    hw::Mcu mcu;
    hw::TimerUnit unit;
    PowerManager power;
    NullProbe probe;
    TaskScheduler scheduler;
    TimerService timers;

    Stack(sim::SimContext& context, const hw::McuParams& params, double skew)
        : mcu{context, "n", params, skew},
          unit{context.simulator, mcu},
          scheduler{context, mcu, power, "n", probe},
          timers{context.simulator, mcu, unit, scheduler, power} {}
  };

  Stack make(double node_skew = 0.0) {
    return Stack{context, params, node_skew};
  }
};

TEST_F(TimerServiceFixture, OneShotFiresOnce) {
  auto s = make();
  std::vector<TimePoint> fires;
  s.timers.start_oneshot("t", 5_ms, [&] { fires.push_back(simulator.now()); });
  simulator.run_until(TimePoint::zero() + 100_ms);
  ASSERT_EQ(fires.size(), 1u);
  // Fires at 5 ms + ISR dispatch latency (wake-up + service cycles).
  EXPECT_GE(fires[0], TimePoint::zero() + 5_ms);
  EXPECT_LT(fires[0], TimePoint::zero() + Duration::from_milliseconds(5.1));
}

TEST_F(TimerServiceFixture, PeriodicCadence) {
  auto s = make();
  std::vector<double> fires_ms;
  s.timers.start_periodic("p", 10_ms,
                          [&] { fires_ms.push_back(simulator.now().to_milliseconds()); });
  simulator.run_until(TimePoint::zero() + 100_ms);
  // ~10 firings at ~10, 20, ..., with small dispatch latency each.
  ASSERT_GE(fires_ms.size(), 9u);
  for (std::size_t i = 0; i < fires_ms.size(); ++i) {
    EXPECT_NEAR(fires_ms[i], 10.0 * static_cast<double>(i + 1), 0.2);
  }
}

TEST_F(TimerServiceFixture, PeriodicDoesNotDriftFromDispatchLatency) {
  // Deadlines advance by the period, not by (period + dispatch), so the
  // average cadence over many firings is exactly the period.
  auto s = make();
  int fires = 0;
  s.timers.start_periodic("p", 1_ms, [&] { ++fires; });
  simulator.run_until(TimePoint::zero() + 1_s);
  EXPECT_NEAR(fires, 1000, 2);
}

TEST_F(TimerServiceFixture, SkewStretchesPeriod) {
  auto s = make(+2e-3);
  int fires = 0;
  s.timers.start_periodic("p", 10_ms, [&] { ++fires; });
  simulator.run_until(TimePoint::zero() + 1_s);
  // A +0.2 % slow clock fires ~2 fewer times in a true second.
  EXPECT_NEAR(fires, 99, 1);
}

TEST_F(TimerServiceFixture, StopCancelsPending) {
  auto s = make();
  bool fired = false;
  const auto id = s.timers.start_oneshot("t", 5_ms, [&] { fired = true; });
  EXPECT_TRUE(s.timers.active(id));
  s.timers.stop(id);
  EXPECT_FALSE(s.timers.active(id));
  simulator.run_until(TimePoint::zero() + 20_ms);
  EXPECT_FALSE(fired);
}

TEST_F(TimerServiceFixture, StopOnePeriodicKeepsOthers) {
  auto s = make();
  int a = 0, b = 0;
  const auto ta = s.timers.start_periodic("a", 10_ms, [&] { ++a; });
  s.timers.start_periodic("b", 10_ms, [&] { ++b; });
  simulator.run_until(TimePoint::zero() + 35_ms);
  s.timers.stop(ta);
  simulator.run_until(TimePoint::zero() + 100_ms);
  EXPECT_EQ(a, 3);
  EXPECT_GE(b, 9);
}

TEST_F(TimerServiceFixture, ManyTimersFireInDeadlineOrder) {
  auto s = make();
  std::vector<int> order;
  s.timers.start_oneshot("late", 30_ms, [&] { order.push_back(3); });
  s.timers.start_oneshot("early", 10_ms, [&] { order.push_back(1); });
  s.timers.start_oneshot("mid", 20_ms, [&] { order.push_back(2); });
  simulator.run_until(TimePoint::zero() + 100_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(TimerServiceFixture, SlotReuseAfterStop) {
  auto s = make();
  const auto a = s.timers.start_oneshot("a", 5_ms, [] {});
  s.timers.stop(a);
  const auto b = s.timers.start_oneshot("b", 5_ms, [] {});
  EXPECT_EQ(a, b);  // dead slot recycled
  EXPECT_EQ(s.timers.active_count(), 1u);
}

TEST_F(TimerServiceFixture, OneShotSlotFreedAfterFiring) {
  auto s = make();
  s.timers.start_oneshot("a", 1_ms, [] {});
  simulator.run_until(TimePoint::zero() + 10_ms);
  EXPECT_EQ(s.timers.active_count(), 0u);
}

TEST_F(TimerServiceFixture, ExpiryWakesMcuFromLpm) {
  auto s = make();
  s.power.register_peripheral("x", ClockConstraint::kSmclk);
  s.timers.start_oneshot("t", 10_ms, [] {});
  // The boot path keeps the MCU active until the first task drains.
  s.scheduler.post("boot", 10, nullptr);
  simulator.run_until(TimePoint::zero() + 5_ms);
  EXPECT_EQ(s.mcu.mode(), hw::McuMode::kLpm1);  // asleep while waiting
  simulator.run_until(TimePoint::zero() + 50_ms);
  EXPECT_GE(s.mcu.wakeups(), 1u);
}

TEST_F(TimerServiceFixture, HandlerCanRestartItself) {
  auto s = make();
  int fires = 0;
  std::function<void()> rearm = [&] {
    if (++fires < 4) s.timers.start_oneshot("chain", 5_ms, rearm);
  };
  s.timers.start_oneshot("chain", 5_ms, rearm);
  simulator.run_until(TimePoint::zero() + 200_ms);
  EXPECT_EQ(fires, 4);
}

}  // namespace
}  // namespace bansim::os
