#include <gtest/gtest.h>

#include <cmath>

#include "apps/eeg_app.hpp"
#include "apps/eeg_synthesizer.hpp"
#include "core/ban_network.hpp"

namespace bansim::apps {
namespace {

using namespace bansim::sim::literals;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) {
  return TimePoint::zero() + Duration::from_seconds(s);
}

TEST(EegSynthesizer, DeterministicPerSeedAndChannel) {
  EegConfig cfg;
  EegSynthesizer a{cfg, 5};
  EegSynthesizer b{cfg, 5};
  EegSynthesizer c{cfg, 6};
  bool any_diff_seed = false;
  for (int i = 0; i < 200; ++i) {
    const TimePoint t = at_s(i * 0.01);
    EXPECT_DOUBLE_EQ(a.sample(0, t), b.sample(0, t));
    if (std::abs(a.sample(0, t) - c.sample(0, t)) > 1e-9) any_diff_seed = true;
  }
  EXPECT_TRUE(any_diff_seed);
}

TEST(EegSynthesizer, ChannelsAreDistinct) {
  EegSynthesizer eeg{EegConfig{}, 9};
  bool differ = false;
  for (int i = 0; i < 100; ++i) {
    if (std::abs(eeg.sample(0, at_s(i * 0.01)) - eeg.sample(3, at_s(i * 0.01))) >
        1e-6) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(EegSynthesizer, StaysInFrontEndRange) {
  EegSynthesizer eeg{EegConfig{}, 2};
  for (int i = 0; i < 4000; ++i) {
    const double v = eeg.sample(i % 8u, at_s(i * 0.004));
    EXPECT_GT(v, 0.5);
    EXPECT_LT(v, 2.1);
  }
}

TEST(EegSynthesizer, HasOscillatoryEnergy) {
  // The signal must actually move (alpha-band oscillation), not sit at
  // the baseline.
  EegSynthesizer eeg{EegConfig{}, 3};
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 256; ++i) {
    const double v = eeg.sample(0, at_s(i / 128.0));
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.05);
}

TEST(EegSynthesizer, OutOfRangeChannelIsBaseline) {
  EegConfig cfg;
  EegSynthesizer eeg{cfg, 1};
  EXPECT_DOUBLE_EQ(eeg.sample(200, at_s(1.0)), cfg.baseline_volts);
}

core::BanConfig eeg_network(std::uint32_t channels, double fs) {
  core::BanConfig cfg;
  cfg.num_nodes = 1;
  cfg.tdma = mac::TdmaConfig::dynamic_plan();  // 20 ms cycle at 1 node
  cfg.app = core::AppKind::kEegMonitoring;
  cfg.eeg.channels = channels;
  cfg.eeg.sample_rate_hz = fs;
  cfg.eeg_signal.channels = channels;
  return cfg;
}

TEST(EegAppIntegration, BandwidthArithmetic) {
  core::BanConfig cfg = eeg_network(8, 64.0);
  core::BanNetwork net{cfg};
  auto* app = net.node(0).eeg_app();
  ASSERT_NE(app, nullptr);
  // 8 ch x 64 Hz at ~1.15 B/sample + headers: several hundred B/s.
  EXPECT_GT(app->required_bandwidth_bps(), 400.0);
  EXPECT_LT(app->required_bandwidth_bps(), 1000.0);
  // One 24 B frame per 20 ms = 1200 B/s: fits.
  EXPECT_GT(app->slot_bandwidth_bps(20_ms), app->required_bandwidth_bps());
}

TEST(EegAppIntegration, LosslessRecoveryOverCleanChannel) {
  core::BanConfig cfg = eeg_network(4, 64.0);
  core::BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  net.run_until(net.simulator().now() + 10_s);

  auto* app = net.node(0).eeg_app();
  EXPECT_GT(app->blocks_sent(), 20u);
  EXPECT_EQ(app->blocks_dropped(), 0u);

  auto* collector = net.eeg_collector(1);
  ASSERT_NE(collector, nullptr);
  EXPECT_GT(collector->blocks_decoded(), 20u);
  EXPECT_EQ(collector->decode_failures(), 0u);

  // Recovered codes must exactly match the synthesizer re-quantized:
  // spot-check amplitude statistics per channel.
  const auto& recovered = collector->samples();
  ASSERT_EQ(recovered.size(), 4u);
  for (const auto& channel : recovered) {
    ASSERT_GT(channel.size(), 100u);
    double mean = 0;
    for (const auto c : channel) mean += c;
    mean /= static_cast<double>(channel.size());
    // Baseline 1.25 V on 2.5 V ADC ~ 2048.
    EXPECT_NEAR(mean, 2048.0, 120.0);
  }
}

TEST(EegAppIntegration, OvercommittedConfigurationShedsBlocks) {
  // 24 channels at 128 Hz cannot fit one 24-byte frame per 20 ms.
  core::BanConfig cfg = eeg_network(24, 128.0);
  core::BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 20_s));
  auto* app = net.node(0).eeg_app();
  EXPECT_GT(app->required_bandwidth_bps(), app->slot_bandwidth_bps(20_ms));
  net.run_until(net.simulator().now() + 5_s);
  EXPECT_GT(app->blocks_dropped(), 0u);
  // The shedding is block-atomic: whatever was decoded is still clean.
  auto* collector = net.eeg_collector(1);
  if (collector != nullptr) {
    EXPECT_EQ(collector->decode_failures(), 0u);
  }
}

TEST(EegAppIntegration, MultiNodeEegNetwork) {
  core::BanConfig cfg = eeg_network(4, 64.0);
  cfg.num_nodes = 3;
  core::BanNetwork net{cfg};
  net.start();
  ASSERT_TRUE(net.run_until_joined(500_ms, TimePoint::zero() + 30_s));
  net.run_until(net.simulator().now() + 10_s);
  for (net::NodeId node = 1; node <= 3; ++node) {
    auto* collector = net.eeg_collector(node);
    ASSERT_NE(collector, nullptr) << "node " << node;
    EXPECT_GT(collector->blocks_decoded(), 10u) << "node " << node;
  }
}

}  // namespace
}  // namespace bansim::apps
