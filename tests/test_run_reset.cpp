// Edge cases of the run-reset protocol (DESIGN.md): arena reuse in the
// event queue across seq wraparound, interned trace names surviving reset,
// meters and stores after a mid-run crash, the runner's per-worker cell
// reuse, and the population generator's same-shape sampling contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/bansim.hpp"
#include "energy/campaign_columns.hpp"
#include "sim/event_queue.hpp"
#include "sim/scenario_runner.hpp"

namespace bansim {
namespace {

using core::BanConfig;
using core::BanNetwork;
using sim::Duration;
using sim::EventQueue;
using sim::TimePoint;

std::vector<double> flatten(const std::vector<energy::NodeEnergy>& nodes) {
  std::vector<double> flat;
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      flat.push_back(c.joules);
      for (const auto& [state, joules] : c.per_state) flat.push_back(joules);
    }
  }
  return flat;
}

// --- EventQueue arena across resets and seq wraparound ---------------------

TEST(RunReset, EventQueueOrdersFifoAcrossSeqWraparound) {
  EventQueue queue;
  // Park the stamp so the next six events straddle 2^64.
  queue.set_next_seq_for_test(std::numeric_limits<std::uint64_t>::max() - 2);

  std::vector<int> fired;
  const TimePoint when = TimePoint::zero() + Duration::milliseconds(1);
  for (int i = 0; i < 6; ++i) {
    queue.schedule(when, [i, &fired] { fired.push_back(i); });
  }
  while (!queue.empty()) queue.pop().second();

  // Same-time ties must stay FIFO even though the stamps wrapped.
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(RunReset, EventQueueClearKeepsArenaAndNeverRebasesSeq) {
  EventQueue queue;
  queue.reserve(32);
  const std::size_t warmed = queue.slot_capacity();

  auto handle = queue.schedule(TimePoint::zero() + Duration::seconds(1), [] {});
  const std::uint64_t scheduled = queue.scheduled_total();
  queue.clear();

  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(queue.empty());
  // Warm arena: capacity survives, the stamp counter does not rewind (a
  // rebased stamp would let this stale handle alias the next run's event).
  EXPECT_EQ(queue.slot_capacity(), warmed);
  EXPECT_EQ(queue.scheduled_total(), scheduled);

  for (int run = 0; run < 50; ++run) {
    for (int i = 0; i < 20; ++i) {
      queue.schedule(TimePoint::zero() + Duration::milliseconds(i), [] {});
    }
    queue.clear();
  }
  EXPECT_FALSE(handle.pending());
  EXPECT_EQ(queue.slot_capacity(), warmed);
}

TEST(RunReset, EventQueueWrapsAcrossManyClearedRuns) {
  EventQueue queue;
  // A campaign that parked the counter just below the wrap: every
  // schedule/clear cycle keeps counting through 2^64 without disturbing
  // FIFO order inside any single run.
  queue.set_next_seq_for_test(std::numeric_limits<std::uint64_t>::max() - 40);
  for (int run = 0; run < 20; ++run) {
    std::vector<int> fired;
    const TimePoint when = TimePoint::zero() + Duration::milliseconds(1);
    for (int i = 0; i < 4; ++i) {
      queue.schedule(when, [i, &fired] { fired.push_back(i); });
    }
    while (!queue.empty()) queue.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3})) << "run " << run;
    queue.clear();
  }
}

// --- Tracer interned names across reset ------------------------------------

TEST(RunReset, TracerInternTableSurvivesReset) {
  sim::SimContext context{7};
  const auto id1 = context.tracer.intern("node1");
  const auto id2 = context.tracer.intern("node2");

  context.reset(99);

  // Re-interning after reset returns the same stable ids (components keep
  // their handles across runs) and the reverse mapping is intact.
  EXPECT_EQ(context.tracer.intern("node1"), id1);
  EXPECT_EQ(context.tracer.intern("node2"), id2);
  EXPECT_EQ(context.tracer.node_name(id2), "node2");
  EXPECT_EQ(context.seed(), 99u);
}

// --- Meter + store after a mid-run crash, then reset -----------------------

BanConfig crashy_storage_config(std::uint64_t seed) {
  BanConfig config;
  config.num_nodes = 3;
  config.seed = seed;
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 0.05;
  config.fault_plan.enabled = true;
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.node = 1;
  crash.at = TimePoint::zero() + Duration::milliseconds(600);
  crash.down = Duration::milliseconds(300);
  config.fault_plan.events.push_back(crash);
  return config;
}

TEST(RunReset, MeterAndStoreRewindAfterMidRunCrash) {
  const BanConfig config = crashy_storage_config(21);
  BanNetwork network{config};
  network.start();
  // Stop mid-run with the crash in full swing: node 1 is down, its meters
  // hold a partial stretch, its store has drained.
  network.run_until(TimePoint::zero() + Duration::milliseconds(700));
  ASSERT_GT(flatten(network.energy_snapshot())[0], 0.0);
  const hw::EnergyStore* store = network.node(0).energy_store();
  ASSERT_NE(store, nullptr);
  EXPECT_LT(store->remaining_joules(), store->initial_joules());

  network.reset(config);

  // Clock rewound, books zeroed, store refilled — regardless of the state
  // the crash left everything in.
  EXPECT_EQ(network.simulator().now(), TimePoint::zero());
  for (double joules : flatten(network.energy_snapshot())) {
    EXPECT_EQ(joules, 0.0);
  }
  store = network.node(0).energy_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->remaining_joules(), store->initial_joules());
  EXPECT_EQ(store->total_draw_requested(), 0.0);

  // And the rewound cell replays the run bit-identically.
  network.start();
  network.run_until(TimePoint::zero() + Duration::seconds(2));
  BanNetwork fresh{config};
  fresh.start();
  fresh.run_until(TimePoint::zero() + Duration::seconds(2));
  EXPECT_EQ(flatten(network.energy_snapshot()),
            flatten(fresh.energy_snapshot()));
}

// --- ScenarioRunner per-worker context reuse -------------------------------

TEST(RunReset, RunnerCountsReusedExecutionsSerially) {
  struct Cell {
    int uses{0};
  };
  sim::ScenarioRunner runner{1};
  const std::function<int(Cell&, std::size_t)> scenario =
      [](Cell& cell, std::size_t i) {
        ++cell.uses;
        return static_cast<int>(i) * 10;
      };
  const std::vector<int> results = runner.run_with_context<int, Cell>(
      8, scenario);

  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * 10);
  // One worker, one context: every execution after the first reused it.
  EXPECT_EQ(runner.summary().scenarios, 8u);
  EXPECT_EQ(runner.summary().runs_reused, 7u);
  EXPECT_EQ(runner.summary().workers, 1u);
}

TEST(RunReset, RunnerReuseBoundsHoldInParallel) {
  struct Cell {
    int uses{0};
  };
  sim::ScenarioRunner runner{3};
  const std::function<int(Cell&, std::size_t)> scenario =
      [](Cell& cell, std::size_t) { return ++cell.uses; };
  const auto results = runner.run_with_context<int, Cell>(12, scenario);
  ASSERT_EQ(results.size(), 12u);
  // At least one worker ran something; at most `workers` first-runs.
  EXPECT_GE(runner.summary().runs_reused, 12u - runner.summary().workers);
  EXPECT_LT(runner.summary().runs_reused, 12u);
}

// --- Population sampling: determinism + same-shape contract ----------------

TEST(RunReset, PopulationGeneratorIsDeterministicAndDistinct) {
  BanConfig base;
  base.num_nodes = 3;
  base.seed = 42;
  core::PopulationConfig population;
  const core::PopulationGenerator generator{base, population};

  const BanConfig a = generator.patient(5);
  const BanConfig b = generator.patient(5);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.ecg.heart_rate_bpm, b.ecg.heart_rate_bpm);
  EXPECT_EQ(a.ecg.noise_volts, b.ecg.noise_volts);

  const BanConfig other = generator.patient(6);
  EXPECT_NE(a.seed, other.seed);
  EXPECT_NE(a.ecg.heart_rate_bpm, other.ecg.heart_rate_bpm);
  // Shape invariants: same roster size, same fault activeness.
  EXPECT_EQ(a.effective_nodes(), base.effective_nodes());
  EXPECT_EQ(a.fault_plan.any(), base.fault_plan.any());
}

TEST(RunReset, MotionPopulationAlwaysCarriesAnEpisode) {
  BanConfig base;
  base.num_nodes = 2;
  base.seed = 7;
  core::PopulationConfig population;
  population.motion = true;
  const core::PopulationGenerator generator{base, population};
  for (std::size_t i = 0; i < 40; ++i) {
    const BanConfig patient = generator.patient(i);
    EXPECT_TRUE(patient.fault_plan.enabled);
    EXPECT_GE(patient.fault_plan.episodes.size(), 1u) << "patient " << i;
    EXPECT_TRUE(patient.fault_plan.touches_channel());
  }
}

TEST(RunReset, PopulationCampaignIsWorkerCountInvariant) {
  BanConfig base;
  base.num_nodes = 2;
  base.seed = 11;
  base.storage.enabled = true;
  base.storage.battery.capacity_mah = 0.05;
  const core::PopulationGenerator generator{base, {}};

  core::PopulationCampaignOptions options;
  options.patients = 6;
  options.measure = Duration::milliseconds(400);
  options.settle = Duration::milliseconds(100);

  options.jobs = 1;
  const auto serial = core::run_population_campaign(generator, options);
  options.jobs = 3;
  const auto parallel = core::run_population_campaign(generator, options);

  // Reused cells must not leak state between patients: the parallel
  // campaign (different worker/cell assignment) is bit-identical.
  EXPECT_EQ(serial.columns.total_mj, parallel.columns.total_mj);
  EXPECT_EQ(serial.columns.lifetime_hours, parallel.columns.lifetime_hours);
  EXPECT_EQ(serial.columns.data_packets, parallel.columns.data_packets);
  EXPECT_EQ(serial.columns.seed, parallel.columns.seed);
  EXPECT_EQ(serial.failed_joins, 0u);
  EXPECT_EQ(serial.runs_reused, 5u);
}

// --- Columnar reductions ---------------------------------------------------

TEST(RunReset, MetricCdfPercentilesAndUnboundedTail) {
  std::vector<double> column;
  for (int i = 1; i <= 90; ++i) column.push_back(static_cast<double>(i));
  for (int i = 0; i < 10; ++i) {
    column.push_back(std::numeric_limits<double>::infinity());
  }
  const auto cdf = energy::MetricCdf::build(column, 90);
  EXPECT_EQ(cdf.count, 90u);
  EXPECT_EQ(cdf.unbounded, 10u);
  EXPECT_NEAR(cdf.percentile(0.5), 50.0, 2.0);
  EXPECT_TRUE(std::isinf(cdf.percentile(0.95)));

  std::vector<double> scratch;
  EXPECT_EQ(energy::column_percentile(column, 0.5, scratch), 50.0);
  EXPECT_NEAR(energy::column_mean(column), 45.5, 1e-12);

  const std::string csv = energy::MetricCdf::build(column, 4).render_csv();
  EXPECT_EQ(csv.substr(0, 19), "value,cum_fraction\n");
}

}  // namespace
}  // namespace bansim
