#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

// Counting global allocator: lets the zero-allocation tests below verify
// that the deferred emit path really never touches the heap while tracing
// is disabled.  Replacing the global operator new affects this test binary
// only.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  for (int c = 0; c < static_cast<int>(TraceCategory::kCount); ++c) {
    EXPECT_FALSE(t.enabled(static_cast<TraceCategory>(c)));
  }
}

TEST(Tracer, AttachEnablesRequestedCategories) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac, TraceCategory::kRadio});
  EXPECT_TRUE(t.enabled(TraceCategory::kMac));
  EXPECT_TRUE(t.enabled(TraceCategory::kRadio));
  EXPECT_FALSE(t.enabled(TraceCategory::kApp));
}

TEST(Tracer, EmitReachesSinkWhenEnabled) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac});
  t.emit(TimePoint::zero() + 5_ms, TraceCategory::kMac, "node1", "hello");
  ASSERT_EQ(sink->records().size(), 1u);
  const TraceRecord& r = sink->records().front();
  EXPECT_EQ(r.when, TimePoint::zero() + 5_ms);
  EXPECT_EQ(r.node(), "node1");
  EXPECT_EQ(r.message, "hello");
  EXPECT_EQ(r.category, TraceCategory::kMac);
}

TEST(Tracer, DisabledCategoryIsDropped) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac});
  t.emit(TimePoint::zero(), TraceCategory::kApp, "n", "dropped");
  EXPECT_TRUE(sink->records().empty());
}

TEST(Tracer, SetEnabledTogglesAtRuntime) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kOs});
  t.set_enabled(TraceCategory::kOs, false);
  t.emit(TimePoint::zero(), TraceCategory::kOs, "n", "x");
  EXPECT_TRUE(sink->records().empty());
  t.set_enabled(TraceCategory::kOs, true);
  t.emit(TimePoint::zero(), TraceCategory::kOs, "n", "y");
  EXPECT_EQ(sink->records().size(), 1u);
}

TEST(Tracer, MemorySinkClear) {
  MemorySink sink;
  sink.consume({TimePoint::zero(), TraceCategory::kKernel, 0, "m", nullptr});
  EXPECT_EQ(sink.records().size(), 1u);
  sink.clear();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Tracer, CategoryNames) {
  EXPECT_STREQ(to_string(TraceCategory::kRadio), "radio");
  EXPECT_STREQ(to_string(TraceCategory::kMac), "mac");
  EXPECT_STREQ(to_string(TraceCategory::kEnergy), "energy");
}

TEST(TraceMessage, ComposesTextNumbersAndTimes) {
  TraceMessage m;
  m << "state " << -3 << " -> " << 42u << ' ' << 2.5 << " in "
    << Duration::microseconds(1500);
  EXPECT_EQ(m.view(), "state -3 -> 42 2.5 in 1.500 ms");
}

TEST(TraceMessage, MatchesDurationToString) {
  for (const Duration d :
       {Duration::nanoseconds(950), Duration::microseconds(12),
        Duration::milliseconds(7), Duration::seconds(3)}) {
    TraceMessage m;
    m << d;
    EXPECT_EQ(std::string{m.view()}, d.to_string());
  }
  TraceMessage m;
  m << (TimePoint::zero() + Duration::milliseconds(1));
  EXPECT_EQ(std::string{m.view()},
            (TimePoint::zero() + Duration::milliseconds(1)).to_string());
}

TEST(TraceMessage, TruncatesAtCapacityInsteadOfGrowing) {
  TraceMessage m;
  const std::string long_text(3 * TraceMessage::kCapacity, 'x');
  m << long_text << 12345;
  EXPECT_EQ(m.size(), TraceMessage::kCapacity);
  EXPECT_EQ(m.view(), std::string(TraceMessage::kCapacity, 'x'));
}

TEST(TraceMessage, FormattingAllocatesNothing) {
  const std::size_t before = g_allocations.load();
  TraceMessage m;
  m << "state -> " << 17 << " (" << Duration::microseconds(250) << ", "
    << 0.125 << ")";
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(m.view(), "state -> 17 (250.000 us, 0.125)");
}

TEST(Tracer, LazyEmitReachesSinkWhenEnabled) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac});
  const TraceNodeId node = t.intern("node3");
  t.emit(TimePoint::zero() + 5_ms, TraceCategory::kMac, node,
         [](TraceMessage& m) { m << "slot " << 4; });
  ASSERT_EQ(sink->records().size(), 1u);
  EXPECT_EQ(sink->records().front().message, "slot 4");
  EXPECT_EQ(sink->records().front().node(), "node3");
}

TEST(Tracer, LazyEmitByNameInternsOnlyWhenEnabled) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kApp});
  t.emit(TimePoint::zero(), TraceCategory::kApp, "oneoff",
         [](TraceMessage& m) { m << "x"; });
  ASSERT_EQ(sink->records().size(), 1u);
  EXPECT_EQ(sink->records().front().node(), "oneoff");
}

TEST(Tracer, DisabledLazyEmitNeverInvokesTheBuilderOrAllocates) {
  Tracer t;  // every category disabled: the sweep/bench default
  const TraceNodeId node = t.intern("node1");
  int builds = 0;
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    t.emit(TimePoint::zero(), TraceCategory::kMac, node,
           [&](TraceMessage& m) {
             ++builds;
             m << "state -> " << i;
           });
    t.emit(TimePoint::zero(), TraceCategory::kRadio, node,
           [&](TraceMessage& m) {
             ++builds;
             m << "radio " << i << " -> " << i + 1;
           });
  }
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(builds, 0);
}

TEST(Tracer, ReservePreservesInterning) {
  Tracer t;
  t.reserve(64);
  const TraceNodeId a = t.intern("node1");
  EXPECT_EQ(t.intern("node1"), a);
  EXPECT_EQ(t.node_name(a), "node1");
}

}  // namespace
}  // namespace bansim::sim
