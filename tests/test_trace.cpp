#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace bansim::sim {
namespace {

using namespace bansim::sim::literals;

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  for (int c = 0; c < static_cast<int>(TraceCategory::kCount); ++c) {
    EXPECT_FALSE(t.enabled(static_cast<TraceCategory>(c)));
  }
}

TEST(Tracer, AttachEnablesRequestedCategories) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac, TraceCategory::kRadio});
  EXPECT_TRUE(t.enabled(TraceCategory::kMac));
  EXPECT_TRUE(t.enabled(TraceCategory::kRadio));
  EXPECT_FALSE(t.enabled(TraceCategory::kApp));
}

TEST(Tracer, EmitReachesSinkWhenEnabled) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac});
  t.emit(TimePoint::zero() + 5_ms, TraceCategory::kMac, "node1", "hello");
  ASSERT_EQ(sink->records().size(), 1u);
  const TraceRecord& r = sink->records().front();
  EXPECT_EQ(r.when, TimePoint::zero() + 5_ms);
  EXPECT_EQ(r.node(), "node1");
  EXPECT_EQ(r.message, "hello");
  EXPECT_EQ(r.category, TraceCategory::kMac);
}

TEST(Tracer, DisabledCategoryIsDropped) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kMac});
  t.emit(TimePoint::zero(), TraceCategory::kApp, "n", "dropped");
  EXPECT_TRUE(sink->records().empty());
}

TEST(Tracer, SetEnabledTogglesAtRuntime) {
  Tracer t;
  auto sink = std::make_shared<MemorySink>();
  t.attach(sink, {TraceCategory::kOs});
  t.set_enabled(TraceCategory::kOs, false);
  t.emit(TimePoint::zero(), TraceCategory::kOs, "n", "x");
  EXPECT_TRUE(sink->records().empty());
  t.set_enabled(TraceCategory::kOs, true);
  t.emit(TimePoint::zero(), TraceCategory::kOs, "n", "y");
  EXPECT_EQ(sink->records().size(), 1u);
}

TEST(Tracer, MemorySinkClear) {
  MemorySink sink;
  sink.consume({TimePoint::zero(), TraceCategory::kKernel, 0, "m", nullptr});
  EXPECT_EQ(sink.records().size(), 1u);
  sink.clear();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Tracer, CategoryNames) {
  EXPECT_STREQ(to_string(TraceCategory::kRadio), "radio");
  EXPECT_STREQ(to_string(TraceCategory::kMac), "mac");
  EXPECT_STREQ(to_string(TraceCategory::kEnergy), "energy");
}

}  // namespace
}  // namespace bansim::sim
