#include <gtest/gtest.h>

#include <vector>

#include "net/crc16.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace bansim::net {
namespace {

TEST(Crc16, KnownVector123456789) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const std::vector<std::uint8_t> data = {'1', '2', '3', '4', '5',
                                          '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(data), 0x29B1);
}

TEST(Crc16, EmptyIsInit) {
  EXPECT_EQ(crc16_ccitt({}), 0xFFFF);
}

TEST(Crc16, IncrementalMatchesBulk) {
  const std::vector<std::uint8_t> data = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : data) crc = crc16_ccitt_update(crc, b);
  EXPECT_EQ(crc, crc16_ccitt(data));
}

class CrcErrorDetection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrcErrorDetection, DetectsAllSingleBitErrors) {
  sim::Rng rng{GetParam()};
  std::vector<std::uint8_t> frame(24);
  for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint16_t good = crc16_ccitt(frame);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16_ccitt(frame), good)
          << "single-bit flip at byte " << byte << " bit " << bit;
      frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST_P(CrcErrorDetection, DetectsRandomDoubleBitErrors) {
  sim::Rng rng{GetParam() ^ 0xABCD};
  std::vector<std::uint8_t> frame(24);
  for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint16_t good = crc16_ccitt(frame);
  for (int trial = 0; trial < 200; ++trial) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, 23));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, 23));
    const auto bi = static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const auto bj = static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    if (i == j && bi == bj) continue;
    frame[i] ^= bi;
    frame[j] ^= bj;
    EXPECT_NE(crc16_ccitt(frame), good);
    frame[i] ^= bi;
    frame[j] ^= bj;
  }
}

INSTANTIATE_TEST_SUITE_P(Frames, CrcErrorDetection,
                         ::testing::Values(1ull, 17ull, 999ull));

TEST(Packet, RoundTrip) {
  Packet p;
  p.header.dest = kBaseStationId;
  p.header.src = 3;
  p.header.type = PacketType::kData;
  p.header.seq = 42;
  p.payload = {1, 2, 3, 4, 5};

  const auto bytes = p.serialize();
  EXPECT_EQ(bytes.size(), p.wire_size());

  const auto back = Packet::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header.dest, kBaseStationId);
  EXPECT_EQ(back->header.src, 3);
  EXPECT_EQ(back->header.type, PacketType::kData);
  EXPECT_EQ(back->header.seq, 42);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Packet, EmptyPayloadRoundTrip) {
  Packet p;
  p.header.type = PacketType::kSlotRequest;
  const auto back = Packet::deserialize(p.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Packet, WireSizeIncludesHeaderAndCrc) {
  Packet p;
  p.payload.assign(18, 0xAA);
  EXPECT_EQ(p.wire_size(), 18u + kHeaderBytes + kCrcBytes);
}

TEST(Packet, CorruptedBytesRejected) {
  Packet p;
  p.payload = {9, 8, 7};
  auto bytes = p.serialize();
  bytes[4] ^= 0x01;  // flip a type bit
  EXPECT_FALSE(Packet::deserialize(bytes).has_value());
}

TEST(Packet, TruncatedFrameRejected) {
  Packet p;
  p.payload = {1, 2, 3};
  auto bytes = p.serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(Packet::deserialize(bytes).has_value());
  EXPECT_FALSE(
      Packet::deserialize(std::vector<std::uint8_t>{1, 2, 3}).has_value());
}

TEST(Packet, ToStringNamesType) {
  Packet p;
  p.header.type = PacketType::kBeacon;
  EXPECT_NE(p.to_string().find("BEACON"), std::string::npos);
}

TEST(BeaconPayload, RoundTripWithOwners) {
  BeaconPayload b;
  b.cycle_us = 60000;
  b.num_slots = 5;
  b.slot_us = 10000;
  b.beacon_seq = 17;
  b.pan_id = 3;
  b.slot_owners = {1, 2, 0xFFFE, 4, 5};

  const auto back = BeaconPayload::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cycle_us, 60000u);
  EXPECT_EQ(back->num_slots, 5);
  EXPECT_EQ(back->slot_us, 10000u);
  EXPECT_EQ(back->beacon_seq, 17);
  EXPECT_EQ(back->pan_id, 3);
  EXPECT_EQ(back->slot_owners, b.slot_owners);
}

TEST(BeaconPayload, EmptyOwnersRoundTrip) {
  BeaconPayload b;
  b.cycle_us = 20000;
  const auto back = BeaconPayload::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->slot_owners.empty());
}

TEST(BeaconPayload, TruncatedRejected) {
  BeaconPayload b;
  b.slot_owners = {1, 2, 3};
  auto bytes = b.serialize();
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(BeaconPayload::deserialize(bytes).has_value());
  EXPECT_FALSE(
      BeaconPayload::deserialize(std::vector<std::uint8_t>(5)).has_value());
}

TEST(SlotGrantPayload, RoundTrip) {
  SlotGrantPayload g;
  g.slot_index = 3;
  g.cycle_us = 40000;
  const auto back = SlotGrantPayload::deserialize(g.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->slot_index, 3);
  EXPECT_EQ(back->cycle_us, 40000u);
  EXPECT_FALSE(SlotGrantPayload::deserialize(std::vector<std::uint8_t>(3))
                   .has_value());
}

TEST(PacketTypes, Names) {
  EXPECT_STREQ(to_string(PacketType::kBeacon), "BEACON");
  EXPECT_STREQ(to_string(PacketType::kSlotRequest), "SLOT_REQ");
  EXPECT_STREQ(to_string(PacketType::kData), "DATA");
  EXPECT_STREQ(to_string(PacketType::kCycleUpdate), "CYCLE_UPD");
  EXPECT_STREQ(to_string(PacketType::kSlotGrant), "SLOT_GRANT");
}

}  // namespace
}  // namespace bansim::net
