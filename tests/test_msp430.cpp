// Instruction-level tests of the MSP430 core and its assembler: semantics
// and flags of every instruction class, all addressing modes, the constant
// generators, byte operations, interrupts and the CPUOFF low-power path.
#include <gtest/gtest.h>

#include "isa/msp430_asm.hpp"
#include "isa/msp430_core.hpp"

namespace bansim::isa {
namespace {

/// Assembles, loads at 0x4000 with SP at 0x3FFE, runs <= `max` instructions.
struct Machine {
  Msp430Core core;
  Msp430Assembler assembler;

  StepResult run(const std::string& source, std::uint64_t max = 10000) {
    core.reset();
    const auto words = assembler.assemble(source);
    core.load(0x4000, words);
    core.set_reg(kSp, 0x3FFE);
    return core.run(max);
  }

  [[nodiscard]] std::uint16_t r(int reg) const { return core.reg(reg); }
};

TEST(Msp430, MovImmediateToRegister) {
  Machine m;
  m.run("mov #0x1234, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x1234);
}

TEST(Msp430, ConstantGeneratorsAssembleToOneWord) {
  Msp430Assembler assembler;
  for (const char* source : {"mov #0, r4", "mov #1, r4", "mov #2, r4",
                             "mov #4, r4", "mov #8, r4", "mov #-1, r4"}) {
    EXPECT_EQ(assembler.assemble(source).size(), 1u) << source;
  }
  EXPECT_EQ(assembler.assemble("mov #3, r4").size(), 2u);
}

TEST(Msp430, ConstantGeneratorValues) {
  Machine m;
  m.run(R"(
    mov #0, r4
    mov #1, r5
    mov #2, r6
    mov #4, r7
    mov #8, r8
    mov #-1, r9
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0);
  EXPECT_EQ(m.r(5), 1);
  EXPECT_EQ(m.r(6), 2);
  EXPECT_EQ(m.r(7), 4);
  EXPECT_EQ(m.r(8), 8);
  EXPECT_EQ(m.r(9), 0xFFFF);
}

TEST(Msp430, AddSetsCarryAndOverflow) {
  Machine m;
  m.run("mov #0xFFFF, r4\n add #1, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0);
  EXPECT_TRUE(m.core.flag(kSrC));
  EXPECT_TRUE(m.core.flag(kSrZ));
  EXPECT_FALSE(m.core.flag(kSrV));

  m.run("mov #0x7FFF, r4\n add #1, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x8000);
  EXPECT_TRUE(m.core.flag(kSrV));  // positive + positive -> negative
  EXPECT_TRUE(m.core.flag(kSrN));
  EXPECT_FALSE(m.core.flag(kSrC));
}

TEST(Msp430, AddcUsesCarry) {
  Machine m;
  m.run(R"(
    mov #0xFFFF, r4
    add #1, r4      ; sets C
    mov #5, r5
    addc #0, r5     ; r5 = 5 + 0 + C = 6
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(5), 6);
}

TEST(Msp430, SubAndCmpSemantics) {
  Machine m;
  m.run("mov #10, r4\n sub #3, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 7);
  EXPECT_TRUE(m.core.flag(kSrC));  // no borrow

  m.run("mov #3, r4\n sub #10, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), static_cast<std::uint16_t>(-7));
  EXPECT_FALSE(m.core.flag(kSrC));  // borrow
  EXPECT_TRUE(m.core.flag(kSrN));

  m.run("mov #7, r4\n cmp #7, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 7);  // CMP does not store
  EXPECT_TRUE(m.core.flag(kSrZ));
}

TEST(Msp430, SubcChain32Bit) {
  // 32-bit subtraction via SUB/SUBC: (r5:r4) -= (r7:r6).
  Machine m;
  m.run(R"(
    mov #0x0000, r4  ; low
    mov #0x0002, r5  ; high  -> 0x00020000
    mov #0x0001, r6  ; low
    mov #0x0000, r7  ; high  -> 0x00000001
    sub r6, r4
    subc r7, r5
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0xFFFF);
  EXPECT_EQ(m.r(5), 0x0001);
}

TEST(Msp430, DaddBcd) {
  Machine m;
  m.run(R"(
    bic #1, sr       ; clear carry
    mov #0x1299, r4
    mov #0x0001, r5
    dadd r5, r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0x1300);
  m.run(R"(
    bic #1, sr
    mov #0x9999, r4
    mov #0x0001, r5
    dadd r5, r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0x0000);
  EXPECT_TRUE(m.core.flag(kSrC));
}

TEST(Msp430, LogicOps) {
  Machine m;
  m.run(R"(
    mov #0x0FF0, r4
    mov #0x00FF, r5
    and r5, r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0x00F0);
  EXPECT_TRUE(m.core.flag(kSrC));  // result non-zero
  EXPECT_FALSE(m.core.flag(kSrV));

  m.run("mov #0x0F0F, r4\n bis #0x00F0, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x0FFF);

  m.run("mov #0x0FFF, r4\n bic #0x00F0, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x0F0F);

  m.run("mov #0xAAAA, r4\n xor #0xFFFF, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x5555);
  EXPECT_TRUE(m.core.flag(kSrV));  // both operands negative
}

TEST(Msp430, BitTestDoesNotStore) {
  Machine m;
  m.run("mov #0x00F0, r4\n bit #0x0010, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x00F0);
  EXPECT_FALSE(m.core.flag(kSrZ));
  m.run("mov #0x00F0, r4\n bit #0x0001, r4\n bis #0x10, sr");
  EXPECT_TRUE(m.core.flag(kSrZ));
}

TEST(Msp430, ByteOperationsClearHighByte) {
  Machine m;
  m.run("mov #0x1234, r4\n add.b #0x10, r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x0044);  // byte op on register clears the high byte
}

TEST(Msp430, ByteMemoryAccess) {
  Machine m;
  m.run(R"(
    mov #0xAB, r4
    mov.b r4, &0x0200
    mov.b &0x0200, r5
    bis #0x10, sr
  )");
  EXPECT_EQ(m.core.read8(0x0200), 0xAB);
  EXPECT_EQ(m.r(5), 0x00AB);
}

TEST(Msp430, IndexedAndIndirectModes) {
  Machine m;
  m.run(R"(
    mov #0x0200, r4
    mov #0x1111, 0(r4)
    mov #0x2222, 2(r4)
    mov @r4, r5
    mov #0x0200, r6
    mov @r6+, r7
    mov @r6+, r8
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(5), 0x1111);
  EXPECT_EQ(m.r(7), 0x1111);
  EXPECT_EQ(m.r(8), 0x2222);
  EXPECT_EQ(m.r(6), 0x0204);  // autoincrement twice
}

TEST(Msp430, AutoIncrementByteIsOne) {
  Machine m;
  m.run(R"(
    mov #0x0200, r4
    mov.b #0x01, 0(r4)
    mov.b #0x02, 1(r4)
    mov #0x0200, r5
    mov.b @r5+, r6
    mov.b @r5+, r7
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(6), 1);
  EXPECT_EQ(m.r(7), 2);
  EXPECT_EQ(m.r(5), 0x0202);
}

TEST(Msp430, SymbolicAddressing) {
  Machine m;
  m.run(R"(
    mov data, r4        ; symbolic source
    mov r4, result      ; symbolic destination
    bis #0x10, sr
  data:
    .word 0xBEEF
  result:
    .word 0
  )");
  EXPECT_EQ(m.r(4), 0xBEEF);
  EXPECT_EQ(m.core.read16(m.assembler.label("result")), 0xBEEF);
}

TEST(Msp430, JumpsConditionMatrix) {
  Machine m;
  // Count down from 5: loop runs exactly 5 times.
  m.run(R"(
    mov #5, r4
    clr r5
  loop:
    inc r5
    dec r4
    jnz loop
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(5), 5);
  EXPECT_EQ(m.r(4), 0);
}

TEST(Msp430, SignedJumps) {
  Machine m;
  // JGE/JL over a signed comparison: -5 < 3.
  m.run(R"(
    mov #-5, r4
    cmp #3, r4       ; r4 - 3
    jge was_ge
    mov #111, r5
    jmp done
  was_ge:
    mov #222, r5
  done:
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(5), 111);
}

TEST(Msp430, ShiftsAndRotates) {
  Machine m;
  m.run("mov #0x8003, r4\n rra r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0xC001);  // arithmetic: sign preserved
  EXPECT_TRUE(m.core.flag(kSrC));

  m.run(R"(
    bic #1, sr
    mov #0x0003, r4
    rrc r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0x0001);
  EXPECT_TRUE(m.core.flag(kSrC));

  m.run(R"(
    bis #1, sr       ; set carry
    mov #0x0000, r4
    rrc r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 0x8000);  // carry rotated into msb
}

TEST(Msp430, SwpbAndSxt) {
  Machine m;
  m.run("mov #0x1234, r4\n swpb r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x3412);
  m.run("mov #0x0080, r4\n sxt r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0xFF80);
  EXPECT_TRUE(m.core.flag(kSrN));
  m.run("mov #0x007F, r4\n sxt r4\n bis #0x10, sr");
  EXPECT_EQ(m.r(4), 0x007F);
}

TEST(Msp430, PushPopCallRet) {
  Machine m;
  m.run(R"(
    mov #0x1111, r4
    push r4
    mov #0x2222, r4
    call #double_r4
    mov @sp+, r5     ; pop the old value
    bis #0x10, sr
  double_r4:
    add r4, r4
    ret
  )");
  EXPECT_EQ(m.r(4), 0x4444);
  EXPECT_EQ(m.r(5), 0x1111);
  EXPECT_EQ(m.core.sp(), 0x3FFE);  // balanced
}

TEST(Msp430, CpuOffHaltsAndReportsState) {
  Machine m;
  const StepResult result = m.run("mov #7, r4\n bis #0x10, sr\n mov #9, r4");
  EXPECT_EQ(result, StepResult::kCpuOff);
  EXPECT_EQ(m.r(4), 7);  // the instruction after LPM never ran
}

TEST(Msp430, InterruptServiceAndReti) {
  Machine m;
  m.core.reset();
  Msp430Assembler assembler;
  const auto program = assembler.assemble(R"(
    mov #0, r4
    bis #8, sr        ; GIE
  spin:
    inc r5
    cmp #100, r5
    jne spin
    bis #0x10, sr     ; sleep if the ISR never fired
  isr:
    mov #0xAA, r4
    reti
  )");
  m.core.load(0x4000, program);
  m.core.set_reg(kSp, 0x3FFE);
  // Vector at 0xFFF0 points at the ISR.
  m.core.write16(0xFFF0, assembler.label("isr"));

  // Run a few instructions, then assert the interrupt.
  for (int i = 0; i < 5; ++i) m.core.step();
  const std::uint16_t r5_before = m.core.reg(5);
  m.core.request_interrupt(0xFFF0);
  m.core.step();  // takes the interrupt + first ISR instruction boundary
  m.core.step();
  EXPECT_EQ(m.core.reg(4), 0xAA);
  m.core.step();  // RETI
  // Execution resumes in the spin loop with GIE restored.
  EXPECT_TRUE(m.core.flag(kSrGie));
  m.core.run(10000);
  EXPECT_GT(m.core.reg(5), r5_before);
}

TEST(Msp430, IllegalOpcodeReported) {
  Machine m;
  m.core.reset();
  m.core.load(0x4000, {0x0000});
  EXPECT_EQ(m.core.step(), StepResult::kIllegal);
  EXPECT_EQ(m.core.step(), StepResult::kIllegal);  // sticky
}

TEST(Msp430, CycleCountsFollowAddressingModes) {
  Machine m;
  // MOV Rn, Rm = 1 cycle.
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("mov r4, r5"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 1u);

  // MOV #imm, Rm = 2 cycles (autoincrement-class source).
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("mov #0x1234, r5"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 2u);

  // MOV x(Rn), Rm = 3 cycles.
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("mov 2(r4), r5"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 3u);

  // MOV Rn, x(Rm) = 4 cycles; MOV x(Rn), x(Rm) = 6.
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("mov r4, 2(r5)"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 4u);
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("mov 2(r4), 2(r5)"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 6u);

  // Jumps are always 2.
  m.core.reset();
  m.core.load(0x4000, m.assembler.assemble("jmp 0x4000"));
  m.core.step();
  EXPECT_EQ(m.core.cycles(), 2u);
}

TEST(Msp430, EnergyAccounting) {
  Machine m;
  m.run(R"(
    mov #1000, r4
  loop:
    dec r4
    jnz loop
    bis #0x10, sr
  )");
  // 1 + 1000*(1+2) + ... instructions: ~2002.
  EXPECT_NEAR(static_cast<double>(m.core.instructions()), 2002.0, 3.0);
  // 0.6 nJ per instruction (the paper's figure).
  EXPECT_NEAR(m.core.energy_joules(), 2002 * 0.6e-9, 5e-9);
  // The cycle model agrees within 2x (different abstraction).
  EXPECT_GT(m.core.energy_joules_cycle_model(), m.core.energy_joules() * 0.5);
  EXPECT_LT(m.core.energy_joules_cycle_model(), m.core.energy_joules() * 4.0);
}

TEST(Msp430, FibonacciProgram) {
  Machine m;
  m.run(R"(
    mov #0, r4       ; fib(0)
    mov #1, r5       ; fib(1)
    mov #10, r6      ; iterations
  loop:
    mov r5, r7
    add r4, r5
    mov r7, r4
    dec r6
    jnz loop
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 55);  // fib(10)
  EXPECT_EQ(m.r(5), 89);  // fib(11)
}

TEST(Msp430, ArraySumProgram) {
  Machine m;
  m.run(R"(
    mov #data, r4
    mov #4, r5
    clr r6
  loop:
    add @r4+, r6
    dec r5
    jnz loop
    bis #0x10, sr
  data:
    .word 10, 20, 30, 40
  )");
  EXPECT_EQ(m.r(6), 100);
}

TEST(Msp430, AssemblerErrors) {
  Msp430Assembler assembler;
  EXPECT_THROW(assembler.assemble("frobnicate r4"), AsmError);
  EXPECT_THROW(assembler.assemble("mov r4"), AsmError);
  EXPECT_THROW(assembler.assemble("jmp nowhere"), AsmError);
  EXPECT_THROW(assembler.assemble("mov r4, #5"), AsmError);
  EXPECT_THROW(assembler.assemble("mov r4, @r5"), AsmError);
}

TEST(Msp430, BranchPseudoOp) {
  Machine m;
  m.run(R"(
    br #target
    mov #1, r4      ; skipped
  target:
    mov #2, r4
    bis #0x10, sr
  )");
  EXPECT_EQ(m.r(4), 2);
}

}  // namespace
}  // namespace bansim::isa
