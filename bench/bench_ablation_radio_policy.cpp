// Ablation C: radio housekeeping policy — standby vs power-down between
// MAC activities.
//
// The nRF2401 offers a 1 uA power-down mode below its 12 uA standby; the
// paper notes the platform can "switch-off the radio when not used".  This
// bench quantifies the choice across TDMA cycle lengths: the saving is the
// standby-vs-power-down current over the idle stretch minus the extra
// crystal start-ups, and it is dwarfed by the beacon listen windows — the
// reason the paper's model can neglect standby current entirely ("lower
// than the resolution of our measurement set-up").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

double radio_mj(int cycle_ms, bool power_down) {
  core::PaperSetup setup;
  setup.measure = Duration::seconds(60);
  core::BanConfig cfg = core::rpeak_static_config(
      setup, Duration::milliseconds(cycle_ms));
  cfg.tdma.radio_power_down = power_down;
  core::MeasurementProtocol protocol;
  protocol.measure = setup.measure;
  const core::ScenarioResult r = core::run_scenario(cfg, protocol);
  return r.joined ? r.radio_mj : -1.0;
}

void print_reproduction() {
  std::printf(
      "Ablation C: radio standby vs power-down between TDMA activities\n"
      "(Rpeak app, 5-node static TDMA, node radio energy over 60 s)\n\n");
  std::printf("%10s | %14s %14s %12s\n", "cycle(ms)", "standby (mJ)",
              "power-down(mJ)", "saving");
  for (const int cycle_ms : {60, 120, 240, 480}) {
    const double standby = radio_mj(cycle_ms, false);
    const double off = radio_mj(cycle_ms, true);
    std::printf("%10d | %14.2f %14.2f %11.2f%%\n", cycle_ms, standby, off,
                100.0 * (standby - off) / standby);
  }
  std::printf(
      "\n(Sub-percent savings: idle-mode housekeeping is negligible next to "
      "the guard/listen\n windows, which is why the paper neglects standby "
      "current in its model.)\n\n");
}

void BM_RadioPolicy(benchmark::State& state) {
  const bool power_down = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio_mj(120, power_down));
  }
}

BENCHMARK(BM_RadioPolicy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
