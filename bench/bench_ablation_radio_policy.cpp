// Ablation C: radio housekeeping policy — standby vs power-down between
// MAC activities.
//
// The nRF2401 offers a 1 uA power-down mode below its 12 uA standby; the
// paper notes the platform can "switch-off the radio when not used".  This
// bench quantifies the choice across TDMA cycle lengths: the saving is the
// standby-vs-power-down current over the idle stretch minus the extra
// crystal start-ups, and it is dwarfed by the beacon listen windows — the
// reason the paper's model can neglect standby current entirely ("lower
// than the resolution of our measurement set-up").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <vector>

#include "core/bansim.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace bansim;
using sim::Duration;

core::ScenarioResult run_policy(int cycle_ms, bool power_down) {
  core::PaperSetup setup;
  setup.measure = Duration::seconds(60);
  core::BanConfig cfg = core::rpeak_static_config(
      setup, Duration::milliseconds(cycle_ms));
  cfg.tdma.radio_power_down = power_down;
  core::MeasurementProtocol protocol;
  protocol.measure = setup.measure;
  return core::run_scenario(cfg, protocol);
}

double radio_mj(int cycle_ms, bool power_down) {
  const core::ScenarioResult r = run_policy(cycle_ms, power_down);
  return r.joined ? r.radio_mj : -1.0;
}

void print_reproduction(unsigned jobs) {
  std::printf(
      "Ablation C: radio standby vs power-down between TDMA activities\n"
      "(Rpeak app, 5-node static TDMA, node radio energy over 60 s)\n\n");
  std::printf("%10s | %14s %14s %12s\n", "cycle(ms)", "standby (mJ)",
              "power-down(mJ)", "saving");

  // 4 cycles x 2 policies = 8 isolated simulations, fanned across cores;
  // scenario 2i is standby and 2i+1 power-down for cycle i.
  const std::vector<int> cycles = {60, 120, 240, 480};
  std::vector<std::function<core::ScenarioResult()>> scenarios;
  for (const int cycle_ms : cycles) {
    scenarios.push_back([cycle_ms] { return run_policy(cycle_ms, false); });
    scenarios.push_back([cycle_ms] { return run_policy(cycle_ms, true); });
  }
  sim::ScenarioRunner runner{jobs};
  const auto results = runner.run(scenarios);

  std::uint64_t events = 0;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const core::ScenarioResult& sb = results[2 * i];
    const core::ScenarioResult& pd = results[2 * i + 1];
    events += sb.events + pd.events;
    const double standby = sb.joined ? sb.radio_mj : -1.0;
    const double off = pd.joined ? pd.radio_mj : -1.0;
    std::printf("%10d | %14.2f %14.2f %11.2f%%\n", cycles[i], standby, off,
                100.0 * (standby - off) / standby);
  }
  std::printf(
      "\nsweep: %zu scenarios, %llu kernel events, %.2f s wall (jobs=%u), "
      "%.2f Mevents/s\n",
      results.size(), static_cast<unsigned long long>(events),
      runner.last_wall_seconds(), runner.jobs(),
      static_cast<double>(events) / runner.last_wall_seconds() / 1e6);
  std::printf(
      "\n(Sub-percent savings: idle-mode housekeeping is negligible next to "
      "the guard/listen\n windows, which is why the paper neglects standby "
      "current in its model.)\n\n");
}

void BM_RadioPolicy(benchmark::State& state) {
  const bool power_down = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio_mj(120, power_down));
  }
}

BENCHMARK(BM_RadioPolicy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bansim::sim::consume_jobs_flag(argc, argv, 0);
  print_reproduction(jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
