// Reproduces Figure 4: total node energy of ECG streaming (30 ms static
// TDMA cycle) vs the Rpeak application (120 ms cycle), Real and Sim bars,
// plus the energy saving of on-node preprocessing (paper: 65 %).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bansim.hpp"

namespace {

using namespace bansim;

void print_reproduction() {
  const core::Figure4Result fig = core::figure4();
  std::printf("%s\n", fig.render().c_str());
  std::printf(
      "Paper Figure 4: streaming Real 540.6+170.2=710.8 mJ, Sim "
      "502.9+161.2=664.1 mJ;\n"
      "                Rpeak     Real 113.1+133.1=246.2 mJ, Sim "
      "116.7+132.8=249.5 mJ; saving 65%%\n\n");

  // ASCII bars (10 mJ per character) for terminal-side comparison.
  auto bar = [](const char* label, double radio, double mcu) {
    std::printf("  %-22s|", label);
    const auto r = static_cast<int>(radio / 10.0);
    const auto m = static_cast<int>(mcu / 10.0);
    for (int i = 0; i < r; ++i) std::printf("R");
    for (int i = 0; i < m; ++i) std::printf("u");
    std::printf("  %.1f mJ\n", radio + mcu);
  };
  bar("ECG streaming Real", fig.streaming_real_radio_mj,
      fig.streaming_real_mcu_mj);
  bar("ECG streaming Sim", fig.streaming_sim_radio_mj,
      fig.streaming_sim_mcu_mj);
  bar("Rpeak Real", fig.rpeak_real_radio_mj, fig.rpeak_real_mcu_mj);
  bar("Rpeak Sim", fig.rpeak_sim_radio_mj, fig.rpeak_sim_mcu_mj);
  std::printf("\n");
}

void BM_Figure4(benchmark::State& state) {
  for (auto _ : state) {
    const core::Figure4Result fig = core::figure4();
    benchmark::DoNotOptimize(fig.saving_fraction());
  }
}

BENCHMARK(BM_Figure4)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
