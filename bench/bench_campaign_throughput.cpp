// Campaign-unit throughput: rebuild-per-run vs reset-per-run vs
// reset+columnar, across population sizes.
//
// A population campaign executes the same short "snapshot" unit thousands
// of times: derive patient i's config, run the ward briefly, collect a few
// scalars.  At that grain the unit's cost is dominated by setup and
// collection, not simulation — which is exactly what the run-reset
// protocol and the columnar accumulators remove.  Three modes:
//   rebuild   construct a fresh BanNetwork per patient, collect the legacy
//             per-run NodeEnergy report (strings + per-state vectors)
//   reset     one warmed cell, reset per patient, same legacy report
//   columnar  one warmed cell, reset per patient, scalars appended to
//             CampaignColumns straight from the meters
// The arg is the population size the patient index cycles through (how
// many distinct configs the generator derives).  runs/sec is the metric
// scripts/bench_campaign.sh records in BENCH_campaign.json.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/bansim.hpp"
#include "energy/campaign_columns.hpp"

namespace {

using namespace bansim;
using sim::Duration;
using sim::TimePoint;

/// The default ECG ward: 5 streaming nodes, static TDMA, 30 ms cycle.
/// Boot stagger is pulled inside the snapshot window so every node is up.
core::BanConfig ward_config() {
  core::BanConfig cfg;
  cfg.num_nodes = 5;
  cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  cfg.app = core::AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 205;
  cfg.stagger = Duration::milliseconds(2);
  return cfg;
}

constexpr Duration kSnapshotHorizon = Duration::milliseconds(3);

core::PopulationGenerator make_generator() {
  return core::PopulationGenerator{ward_config(), core::PopulationConfig{}};
}

void BM_CampaignRebuildPerRun(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  const auto population = static_cast<std::size_t>(state.range(0));
  std::size_t index = 0;
  for (auto _ : state) {
    const core::BanConfig cfg = generator.patient(index++ % population);
    core::BanNetwork network{cfg};
    network.start();
    network.run_until(TimePoint::zero() + kSnapshotHorizon);
    const auto report = network.energy_snapshot();
    benchmark::DoNotOptimize(report.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("rebuild");
}

void BM_CampaignResetPerRun(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  const auto population = static_cast<std::size_t>(state.range(0));
  core::BanNetwork network{generator.patient(0)};
  std::size_t index = 0;
  for (auto _ : state) {
    network.reset(generator.patient(index++ % population));
    network.start();
    network.run_until(TimePoint::zero() + kSnapshotHorizon);
    const auto report = network.energy_snapshot();
    benchmark::DoNotOptimize(report.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("reset");
}

void BM_CampaignResetColumnar(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  const auto population = static_cast<std::size_t>(state.range(0));
  core::BanNetwork network{generator.patient(0)};
  energy::CampaignColumns columns;
  columns.reserve(population);
  std::size_t index = 0;
  for (auto _ : state) {
    const core::BanConfig cfg = generator.patient(index++ % population);
    network.reset(cfg);
    network.start();
    network.run_until(TimePoint::zero() + kSnapshotHorizon);
    const TimePoint now = network.simulator().now();
    double mcu = 0, radio = 0, asic = 0;
    std::uint64_t packets = 0;
    for (std::size_t n = 0; n < network.num_nodes(); ++n) {
      hw::Board& board = network.node(n).board();
      mcu += board.mcu().meter().total_energy(now);
      radio += board.radio().meter().total_energy(now);
      asic += board.asic().energy(now);
      packets += network.node(n).mac_base().stats_snapshot().data_sent;
    }
    if (columns.runs() >= population) columns.clear();
    energy::CampaignRunRow row;
    row.seed = cfg.seed;
    row.total_mj = (mcu + radio + asic) * 1e3;
    row.radio_mj = radio * 1e3;
    row.mcu_mj = mcu * 1e3;
    row.asic_mj = asic * 1e3;
    row.lifetime_hours = 0.0;
    row.data_packets = packets;
    row.joined = true;
    columns.append_run(row);
    benchmark::DoNotOptimize(columns.total_mj.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("reset_columnar");
}

// Cost-split probes: where a campaign unit's time actually goes (patient
// derivation / reset / reset+start / legacy snapshot / construct+start).
// These pinned the EEG-synth reset as the dominant per-node reset cost and
// keep future regressions diagnosable from BENCH_campaign.json alone.
void BM_ProbePatientOnly(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  std::size_t index = 0;
  for (auto _ : state) {
    const core::BanConfig cfg = generator.patient(index++ % 16);
    benchmark::DoNotOptimize(cfg.seed);
  }
}
BENCHMARK(BM_ProbePatientOnly)->Unit(benchmark::kMicrosecond);

void BM_ProbeResetStartOnly(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  core::BanNetwork network{generator.patient(0)};
  std::size_t index = 0;
  for (auto _ : state) {
    network.reset(generator.patient(index++ % 16));
    network.start();
  }
}
BENCHMARK(BM_ProbeResetStartOnly)->Unit(benchmark::kMicrosecond);

void BM_ProbeResetNoStart(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  core::BanNetwork network{generator.patient(0)};
  std::size_t index = 0;
  for (auto _ : state) {
    network.reset(generator.patient(index++ % 16));
  }
}
BENCHMARK(BM_ProbeResetNoStart)->Unit(benchmark::kMicrosecond);

void BM_ProbeSnapshotOnly(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  core::BanNetwork network{generator.patient(0)};
  network.start();
  network.run_until(TimePoint::zero() + kSnapshotHorizon);
  for (auto _ : state) {
    const auto report = network.energy_snapshot();
    benchmark::DoNotOptimize(report.data());
  }
}
BENCHMARK(BM_ProbeSnapshotOnly)->Unit(benchmark::kMicrosecond);

void BM_ProbeConstructOnly(benchmark::State& state) {
  const core::PopulationGenerator generator = make_generator();
  std::size_t index = 0;
  for (auto _ : state) {
    core::BanNetwork network{generator.patient(index++ % 16)};
    network.start();
    benchmark::DoNotOptimize(&network);
  }
}
BENCHMARK(BM_ProbeConstructOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK(BM_CampaignRebuildPerRun)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CampaignResetPerRun)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CampaignResetColumnar)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
