// Instruction-level vs OS-level simulation (the paper's Section 2
// argument, quantified).
//
// Runs a realistic signal-processing firmware (derivative + shift-add
// square + threshold, the Rpeak inner loop) on the MSP430 ISS, measures
// simulated-instructions per wall-clock second, and projects what
// simulating the paper's 5-node BAN for 60 s at instruction level would
// cost — against the measured wall-clock of the OS-level model doing the
// same scenario.  This is why the paper builds on TOSSIM-style OS events
// rather than Atemu/Simulavr-style instruction interpretation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "apps/ecg_synthesizer.hpp"
#include "core/bansim.hpp"
#include "isa/msp430_asm.hpp"
#include "isa/msp430_core.hpp"

namespace {

using namespace bansim;

/// Builds the per-sample processing firmware over `n` ECG samples.
std::string firmware_source(std::size_t n) {
  apps::EcgConfig ecg_cfg;
  apps::EcgSynthesizer ecg{ecg_cfg, sim::Rng::stream(7, "iss/ecg")};
  std::string data;
  for (std::size_t i = 0; i < n; ++i) {
    const double volts =
        ecg.sample(sim::TimePoint::zero() +
                   sim::Duration::from_seconds(static_cast<double>(i) / 200.0));
    const auto code = static_cast<int>(volts / 2.5 * 4095.0);
    data += "  .word " + std::to_string(code) + "\n";
  }
  return R"(
  start:
    mov #data, r10
    mov #)" + std::to_string(n) + R"(, r11
    clr r12
    clr r13
  loop:
    mov @r10+, r4
    mov r4, r5
    sub r12, r5        ; derivative
    mov r4, r12
    tst r5
    jge positive
    clr r6
    sub r5, r6
    mov r6, r5         ; |derivative|
  positive:
    clr r6
    mov r5, r7
    mov r5, r8
  mul_loop:            ; r6 = r5 * r5 by shift-add
    tst r8
    jz mul_done
    bit #1, r8
    jz no_add
    add r7, r6
  no_add:
    add r7, r7
    rra r8
    jmp mul_loop
  mul_done:
    cmp #2000, r6      ; moving threshold stand-in
    jl below
    inc r13
  below:
    dec r11
    jnz loop
    bis #0x10, sr      ; LPM0: frame done
  data:
)" + data;
}

struct IssRun {
  std::uint64_t instructions;
  std::uint64_t cycles;
  double wall_seconds;
  std::uint16_t detections;
};

IssRun run_firmware(std::size_t samples) {
  isa::Msp430Assembler assembler;
  isa::Msp430Core core;
  const auto words = assembler.assemble(firmware_source(samples));
  core.load(0x4000, words);
  core.set_reg(isa::kSp, 0x3FFE);
  const auto start = std::chrono::steady_clock::now();
  core.run(100'000'000);
  const auto end = std::chrono::steady_clock::now();
  return {core.instructions(), core.cycles(),
          std::chrono::duration<double>(end - start).count(), core.reg(13)};
}

void print_reproduction() {
  const std::size_t samples = 512;
  const IssRun iss = run_firmware(samples);
  const double iss_rate =
      static_cast<double>(iss.instructions) / iss.wall_seconds;

  // The OS-level model simulating the full 5-node 60 s scenario.
  core::PaperSetup setup;
  const core::BanConfig cfg =
      core::streaming_static_config(setup, sim::Duration::milliseconds(30));
  core::MeasurementProtocol protocol;
  const auto t0 = std::chrono::steady_clock::now();
  const core::ScenarioResult result = core::run_scenario(cfg, protocol);
  const double model_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Projection.  An instruction-level node simulator cannot skip time: it
  // executes every active cycle of every node's firmware (the 205 Hz
  // scenario keeps the MCU ~26 % active, see Table 1) and additionally
  // emulates the peripherals (timers, USART, ADC) cycle by cycle, which
  // slows Atemu/Simulavr-class tools well below a bare interpreter.
  const double avg_cpi = static_cast<double>(iss.cycles) /
                         static_cast<double>(iss.instructions);
  const double active_fraction = 0.26;
  const double silicon_instr_per_s = 8.0e6 / avg_cpi;
  const double projected_instr =
      silicon_instr_per_s * active_fraction * 60.0 * 5.0;
  const double bare_wall = projected_instr / iss_rate;
  const double peripheral_factor = 10.0;  // typical full-system emulation tax

  std::printf(
      "Instruction-level vs OS-level simulation of the 5-node BAN (60 s)\n\n"
      "  ISS firmware (Rpeak inner loop, %zu samples):\n"
      "    %llu instructions, %llu cycles (CPI %.2f), %u threshold crossings\n"
      "    %.2f Minstr/s interpreted\n"
      "    firmware energy: %.2f uJ (0.6 nJ/instr)  |  %.2f uJ (cycle model)\n\n"
      "  projected instruction-level cost of the paper scenario (5 nodes,\n"
      "  60 s, ~26%% MCU duty): %.0fM instructions\n"
      "    bare interpreter:            %6.1f s\n"
      "    with peripheral emulation:   %6.1f s (x%.0f, Atemu-class)\n"
      "  measured OS-level model run:   %6.2f s\n"
      "  OS-level speedup: %.0fx bare, %.0fx vs full-system emulation\n\n"
      "  (node1 energy from the OS-level run: radio %.1f mJ, uC %.1f mJ)\n\n",
      samples, static_cast<unsigned long long>(iss.instructions),
      static_cast<unsigned long long>(iss.cycles), avg_cpi, iss.detections,
      iss_rate / 1e6,
      static_cast<double>(iss.instructions) * 0.6e-9 * 1e6,
      static_cast<double>(iss.cycles) / 8.0e6 * 2.0e-3 * 2.8 * 1e6,
      projected_instr / 1e6, bare_wall, bare_wall * peripheral_factor,
      peripheral_factor, model_wall, bare_wall / model_wall,
      bare_wall * peripheral_factor / model_wall, result.radio_mj,
      result.mcu_mj);
}

void BM_IssThroughput(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const IssRun run = run_firmware(samples);
    instructions += run.instructions;
    benchmark::DoNotOptimize(run.detections);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}

BENCHMARK(BM_IssThroughput)->Arg(128)->Arg(512)->Arg(2048);

void BM_OsLevelModel60s(benchmark::State& state) {
  core::PaperSetup setup;
  const core::BanConfig cfg =
      core::streaming_static_config(setup, sim::Duration::milliseconds(30));
  core::MeasurementProtocol protocol;
  for (auto _ : state) {
    const core::ScenarioResult r = core::run_scenario(cfg, protocol);
    benchmark::DoNotOptimize(r.radio_mj);
  }
}

BENCHMARK(BM_OsLevelModel60s)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
