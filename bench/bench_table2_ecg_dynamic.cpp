// Reproduces Table 2: ECG streaming application over dynamic TDMA with
// 10 ms slots, network size swept over 1..5 nodes (cycle 20..60 ms), node
// energy over 60 s, reference ("Real") vs estimation model ("Sim").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bansim.hpp"

namespace {

using namespace bansim;

void print_reproduction() {
  const energy::ValidationTable table = core::table2();
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", core::paper_table(2).render().c_str());
  std::printf("reproduction CSV:\n%s\n", table.render_csv().c_str());
}

void BM_Table2Row(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  core::PaperSetup setup;
  const core::BanConfig cfg = core::streaming_dynamic_config(setup, nodes);
  core::MeasurementProtocol protocol;
  for (auto _ : state) {
    const core::ScenarioResult r = core::run_scenario(cfg, protocol);
    benchmark::DoNotOptimize(r.radio_mj);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

BENCHMARK(BM_Table2Row)->DenseRange(1, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
