// Reproduces Table 1: ECG streaming application over static TDMA, sampling
// frequency swept over {205, 105, 70, 55} Hz (TDMA cycle {30,60,90,120} ms),
// node energy over 60 s, reference ("Real") vs estimation model ("Sim").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bansim.hpp"

namespace {

using namespace bansim;

void print_reproduction() {
  const energy::ValidationTable table = core::table1();
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", core::paper_table(1).render().c_str());
  std::printf("reproduction CSV:\n%s\n", table.render_csv().c_str());
}

void BM_Table1Row(benchmark::State& state) {
  const int cycle_ms = static_cast<int>(state.range(0));
  core::PaperSetup setup;
  core::BanConfig cfg = core::streaming_static_config(
      setup, sim::Duration::milliseconds(cycle_ms));
  core::MeasurementProtocol protocol;
  for (auto _ : state) {
    const core::ScenarioResult r = core::run_scenario(cfg, protocol);
    benchmark::DoNotOptimize(r.radio_mj);
  }
  state.counters["cycle_ms"] = cycle_ms;
}

BENCHMARK(BM_Table1Row)->Arg(30)->Arg(60)->Arg(90)->Arg(120)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
