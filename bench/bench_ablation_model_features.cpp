// Ablation A: which modelling ingredients does the energy model need?
//
// The paper argues (Section 4.2) that an accurate BAN energy model must
// account for collisions (hardware CRC), idle listening, overhearing and
// control-packet overhead — the things plain PowerTOSSIM-style accounting
// simplifies.  This bench runs the reference 5-node streaming scenario with
// a PowerTOSSIM-style analytical estimator attached and reports its radio
// estimation error with each ingredient toggled off, alongside the full
// dual-run model's error.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <vector>

#include "baseline/powertossim_estimator.hpp"
#include "core/bansim.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace bansim;
using sim::Duration;

struct AblationRow {
  const char* label;
  baseline::EstimatorOptions options;
};

struct AblationResult {
  double est_radio_mj{0};
  double est_mcu_mj{0};
  double ref_radio_mj{0};
  double ref_mcu_mj{0};
  std::uint64_t events{0};
  bool joined{false};
};

AblationResult run_variant(const core::BanConfig& cfg,
                           const core::MeasurementProtocol& protocol,
                           const baseline::EstimatorOptions& options) {
  baseline::PowerTossimEstimator estimator{
      cfg.board.mcu, cfg.board.radio, cfg.board.phy,
      os::CycleCostModel::platform_defaults(), options};

  core::BanNetwork network{cfg, &estimator};
  // Measure from t=0 so the join phase (SSR control traffic, searching
  // listen) is inside the window; steady state then dominates the tail.
  estimator.begin_measurement(sim::TimePoint::zero());
  network.start();
  AblationResult result;
  result.joined = network.run_until_joined(
      protocol.settle, sim::TimePoint::zero() + protocol.join_deadline);
  if (!result.joined) return result;

  network.run_until(network.simulator().now() + protocol.measure);
  const sim::TimePoint t1 = network.simulator().now();
  const auto after = network.node(0).board().breakdown(t1);

  auto component = [](const std::vector<energy::ComponentEnergy>& rows_,
                      const char* name) {
    for (const auto& c : rows_) {
      if (c.component == name) return c.joules;
    }
    return 0.0;
  };
  result.ref_radio_mj = component(after, "radio") * 1e3;
  result.ref_mcu_mj = component(after, "mcu") * 1e3;

  const auto estimates = estimator.finalize(t1);
  const auto it = estimates.find("node1");
  result.est_radio_mj =
      it != estimates.end() ? it->second.radio_joules * 1e3 : 0.0;
  result.est_mcu_mj = it != estimates.end() ? it->second.mcu_joules * 1e3 : 0.0;
  result.events = network.simulator().events_executed();
  return result;
}

void print_reproduction(unsigned jobs) {
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  cfg.streaming.sample_rate_hz = 205;
  core::MeasurementProtocol protocol;

  const std::vector<AblationRow> rows = {
      {"full analytical model", {true, true, true}},
      {"- control packets", {false, true, true}},
      {"- listen windows (idle listening + beacons)", {true, false, true}},
      {"- MCU task accounting", {true, true, false}},
  };

  std::printf(
      "Ablation A: analytical (PowerTOSSIM-style) radio/uC estimates vs the "
      "reference platform,\n5-node ECG streaming, static TDMA 30 ms, 60 s "
      "window\n\n");
  std::printf("%-46s %12s %12s %10s %10s\n", "estimator variant",
              "radio (mJ)", "uC (mJ)", "radio err", "uC err");

  // Each estimator variant re-runs the whole reference scenario with its
  // own network and estimator — independent, so they fan out across cores.
  std::vector<std::function<AblationResult()>> scenarios;
  for (const AblationRow& row : rows) {
    scenarios.push_back(
        [cfg, protocol, options = row.options] {
          return run_variant(cfg, protocol, options);
        });
  }
  sim::ScenarioRunner runner{jobs};
  const auto results = runner.run(scenarios);

  std::uint64_t events = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationResult& r = results[i];
    events += r.events;
    if (!r.joined) continue;
    std::printf("%-46s %12.1f %12.1f %9.1f%% %9.1f%%\n", rows[i].label,
                r.est_radio_mj, r.est_mcu_mj,
                100.0 * (r.est_radio_mj - r.ref_radio_mj) / r.ref_radio_mj,
                100.0 * (r.est_mcu_mj - r.ref_mcu_mj) / r.ref_mcu_mj);
  }
  std::printf(
      "\nsweep: %zu scenarios, %llu kernel events, %.2f s wall (jobs=%u), "
      "%.2f Mevents/s\n",
      results.size(), static_cast<unsigned long long>(events),
      runner.last_wall_seconds(), runner.jobs(),
      static_cast<double>(events) / runner.last_wall_seconds() / 1e6);
  std::printf(
      "\n(reference radio/uC come from the platform meters; a negative error "
      "is underestimation.\n On the node side, control-frame TX (SSRs) is "
      "sub-mJ — the control overhead the paper\n warns about is dominated by "
      "the beacon *listen* windows, which the third row removes:\n dropping "
      "them collapses the radio estimate, exactly why idle-listening/beacon "
      "accounting\n is mandatory for BAN energy models.)\n\n");
}

void BM_AblationRun(benchmark::State& state) {
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  core::MeasurementProtocol protocol;
  for (auto _ : state) {
    baseline::PowerTossimEstimator estimator{
        cfg.board.mcu, cfg.board.radio, cfg.board.phy,
        os::CycleCostModel::platform_defaults(), {}};
    core::BanNetwork network{cfg, &estimator};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(5));
    benchmark::DoNotOptimize(network.channel().frames_sent());
  }
}

BENCHMARK(BM_AblationRun)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bansim::sim::consume_jobs_flag(argc, argv, 0);
  print_reproduction(jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
