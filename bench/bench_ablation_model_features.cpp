// Ablation A: which modelling ingredients does the energy model need?
//
// The paper argues (Section 4.2) that an accurate BAN energy model must
// account for collisions (hardware CRC), idle listening, overhearing and
// control-packet overhead — the things plain PowerTOSSIM-style accounting
// simplifies.  This bench runs the reference 5-node streaming scenario with
// a PowerTOSSIM-style analytical estimator attached and reports its radio
// estimation error with each ingredient toggled off, alongside the full
// dual-run model's error.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/powertossim_estimator.hpp"
#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

struct AblationRow {
  const char* label;
  baseline::EstimatorOptions options;
};

void print_reproduction() {
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  cfg.streaming.sample_rate_hz = 205;
  core::MeasurementProtocol protocol;

  const AblationRow rows[] = {
      {"full analytical model", {true, true, true}},
      {"- control packets", {false, true, true}},
      {"- listen windows (idle listening + beacons)", {true, false, true}},
      {"- MCU task accounting", {true, true, false}},
  };

  std::printf(
      "Ablation A: analytical (PowerTOSSIM-style) radio/uC estimates vs the "
      "reference platform,\n5-node ECG streaming, static TDMA 30 ms, 60 s "
      "window\n\n");
  std::printf("%-46s %12s %12s %10s %10s\n", "estimator variant",
              "radio (mJ)", "uC (mJ)", "radio err", "uC err");

  for (const AblationRow& row : rows) {
    baseline::PowerTossimEstimator estimator{
        cfg.board.mcu, cfg.board.radio, cfg.board.phy,
        os::CycleCostModel::platform_defaults(), row.options};

    core::BanNetwork network{cfg, &estimator};
    // Measure from t=0 so the join phase (SSR control traffic, searching
    // listen) is inside the window; steady state then dominates the tail.
    estimator.begin_measurement(sim::TimePoint::zero());
    network.start();
    const bool joined = network.run_until_joined(
        protocol.settle, sim::TimePoint::zero() + protocol.join_deadline);
    if (!joined) continue;

    network.run_until(network.simulator().now() + protocol.measure);
    const sim::TimePoint t1 = network.simulator().now();
    const auto after = network.node(0).board().breakdown(t1);

    auto component = [](const std::vector<energy::ComponentEnergy>& rows_,
                        const char* name) {
      for (const auto& c : rows_) {
        if (c.component == name) return c.joules;
      }
      return 0.0;
    };
    const double ref_radio = component(after, "radio") * 1e3;
    const double ref_mcu = component(after, "mcu") * 1e3;

    const auto estimates = estimator.finalize(t1);
    const auto it = estimates.find("node1");
    const double est_radio =
        it != estimates.end() ? it->second.radio_joules * 1e3 : 0.0;
    const double est_mcu =
        it != estimates.end() ? it->second.mcu_joules * 1e3 : 0.0;

    std::printf("%-46s %12.1f %12.1f %9.1f%% %9.1f%%\n", row.label, est_radio,
                est_mcu, 100.0 * (est_radio - ref_radio) / ref_radio,
                100.0 * (est_mcu - ref_mcu) / ref_mcu);
  }
  std::printf(
      "\n(reference radio/uC come from the platform meters; a negative error "
      "is underestimation.\n On the node side, control-frame TX (SSRs) is "
      "sub-mJ — the control overhead the paper\n warns about is dominated by "
      "the beacon *listen* windows, which the third row removes:\n dropping "
      "them collapses the radio estimate, exactly why idle-listening/beacon "
      "accounting\n is mandatory for BAN energy models.)\n\n");
}

void BM_AblationRun(benchmark::State& state) {
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  core::MeasurementProtocol protocol;
  for (auto _ : state) {
    baseline::PowerTossimEstimator estimator{
        cfg.board.mcu, cfg.board.radio, cfg.board.phy,
        os::CycleCostModel::platform_defaults(), {}};
    core::BanNetwork network{cfg, &estimator};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(5));
    benchmark::DoNotOptimize(network.channel().frames_sent());
  }
}

BENCHMARK(BM_AblationRun)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
