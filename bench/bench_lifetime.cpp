// Storage-driver overhead and lifetime-campaign throughput.
//
// The storage driver is a recurring sampler riding on the event kernel —
// every check interval it reads each board's meters and moves joules
// through the node's store.  BM_StorageOverhead bounds what that costs
// against the identical bench-supplied ward at several check rates (the
// stores are sized so nothing depletes: the bench measures pure
// accounting, not crash/reboot churn).  BM_LifetimeCampaign measures the
// run-until-first-death loop end to end, batteries sized to die inside
// the horizon.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "check/fault_campaign.hpp"
#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

core::BanConfig ward_config() {
  core::BanConfig cfg;
  cfg.num_nodes = 5;
  cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  cfg.app = core::AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = 205;
  return cfg;
}

/// Full-stack cost of the storage sampler: check_ms 0 disables storage
/// entirely (the baseline every other arg is read against).
void BM_StorageOverhead(benchmark::State& state) {
  const auto check_ms = static_cast<std::int64_t>(state.range(0));
  core::BanConfig cfg = ward_config();
  if (check_ms > 0) {
    cfg.storage.enabled = true;
    cfg.storage.kind = hw::StorageKind::kBattery;
    cfg.storage.battery.capacity_mah = 160.0;  // never depletes in-window
    cfg.storage.check = Duration::milliseconds(check_ms);
  }
  for (auto _ : state) {
    core::BanNetwork network{cfg};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(10));
    benchmark::DoNotOptimize(network.simulator().events_executed());
  }
  state.SetLabel(check_ms > 0 ? "storage_on" : "storage_off");
  state.counters["check_ms"] = static_cast<double>(check_ms);
}

BENCHMARK(BM_StorageOverhead)->Arg(0)->Arg(100)->Arg(10)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Run-until-first-death campaign, stores sized to die inside the horizon.
void BM_LifetimeCampaign(benchmark::State& state) {
  core::BanConfig cfg = ward_config();
  cfg.storage.enabled = true;
  cfg.storage.kind = hw::StorageKind::kBattery;
  cfg.storage.battery.capacity_mah = 0.05;  // ~20 s at a streaming draw
  cfg.storage.check = Duration::milliseconds(100);
  check::LifetimeCampaignOptions options;
  options.horizon = Duration::seconds(60);
  options.monitor = state.range(0) != 0;
  std::uint64_t deaths = 0;
  for (auto _ : state) {
    const check::LifetimeOutcome outcome =
        check::run_lifetime_campaign(cfg, options);
    deaths += outcome.storage.depletion_deaths;
    benchmark::DoNotOptimize(outcome.report.rows.size());
  }
  state.SetLabel(options.monitor ? "monitored" : "bare");
  state.counters["deaths"] =
      static_cast<double>(deaths) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_LifetimeCampaign)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
