// Baseline comparison: the paper's TDMA MAC vs the contention side of the
// zoo — pure ALOHA and beacon-enabled slotted CSMA/CA — on identical
// hardware, swept over offered load.
//
// The artifact the sweep produces is the crossover the paper's design
// implies but never plots: at sparse event traffic the contention MACs
// win on node energy (little or no coordination overhead), while as
// offered load grows their delivery collapses under collisions and their
// retransmission energy climbs — TDMA delivery stays at 100 % for a flat,
// predictable cost.  Slotted CSMA/CA sits between the extremes: it pays
// the TDMA-style beacon-tracking cost but defers to carrier sensing
// instead of a schedule, so it degrades gracefully rather than
// chaotically.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "core/aloha_network.hpp"
#include "core/bansim.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace bansim;
using sim::Duration;
using sim::TimePoint;

struct MacResult {
  double radio_mj_per_min{0};
  double delivery{0};  ///< unique payloads delivered / generated
  std::uint64_t events{0};
};

MacResult run_aloha(int interval_ms, double seconds) {
  core::AlohaNetworkConfig cfg;
  cfg.num_nodes = 5;
  cfg.payload_interval = Duration::milliseconds(interval_ms);
  cfg.seed = 5;
  core::AlohaNetwork net{cfg};
  net.start();
  net.run_until(TimePoint::zero() + Duration::from_seconds(seconds));

  std::uint64_t generated = 0, lost = 0, queued = 0;
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    generated += net.payloads_generated(i);
    lost += net.node_mac(i).stats().retry_drops +
            net.node_mac(i).stats().payloads_dropped;
    queued += net.node_mac(i).queue_depth();
  }
  MacResult result;
  const double joules = net.node_board(0).radio().meter().total_energy(
      net.simulator().now());
  result.radio_mj_per_min = joules * 1e3 * 60.0 / seconds;
  result.delivery =
      generated > 0 ? 1.0 - static_cast<double>(lost + queued) /
                                static_cast<double>(generated)
                    : 0.0;
  result.events = net.simulator().events_executed();
  return result;
}

MacResult run_tdma(int interval_ms, double seconds) {
  // TDMA carries the same offered load from the same lightweight payload
  // generator ALOHA uses (no sampling app — this is a MAC-layer contest).
  // Its natural operating point couples the cycle to the interval; the
  // cycle floor (one slot wide enough for a burst) caps its capacity.
  core::BanConfig cfg;
  cfg.num_nodes = 5;
  // 30 ms is the shortest cycle whose guard window stays clear of the
  // last data slot; beyond that offered load, TDMA saturates at one frame
  // per cycle and sheds the excess from the queue.
  const int cycle_ms = std::max(30, interval_ms);
  cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(cycle_ms), 5);
  cfg.app = core::AppKind::kNone;
  cfg.seed = 5;
  core::BanNetwork net{cfg};
  net.start();
  if (!net.run_until_joined(Duration::seconds(1),
                            TimePoint::zero() + Duration::seconds(30))) {
    return {};
  }
  const TimePoint t0 = net.simulator().now();
  const double radio_before =
      net.node(0).board().radio().meter().total_energy(t0);

  // Fixed-rate generator per node, on the simulator clock.
  std::uint64_t generated0 = 0;
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&net, i, tick, interval_ms, &generated0] {
      if (i == 0) ++generated0;
      net.node(i).mac().queue_payload(std::vector<std::uint8_t>(18, 0xEC));
      net.simulator().schedule_in(Duration::milliseconds(interval_ms),
                                  *tick);
    };
    net.simulator().schedule_in(Duration::milliseconds(interval_ms), *tick);
  }
  const auto sent_before = net.node(0).mac().stats().data_sent;
  net.run_until(t0 + Duration::from_seconds(seconds));

  MacResult result;
  const double joules = net.node(0).board().radio().meter().total_energy(
                            net.simulator().now()) -
                        radio_before;
  result.radio_mj_per_min = joules * 1e3 * 60.0 / seconds;
  const auto sent = net.node(0).mac().stats().data_sent - sent_before;
  result.delivery =
      generated0 > 0 ? std::min(1.0, static_cast<double>(sent) /
                                         static_cast<double>(generated0))
                     : 1.0;
  result.events = net.simulator().events_executed();
  return result;
}

MacResult run_csma(int interval_ms, double seconds) {
  // Slotted CSMA/CA through the same mac::NodeMacBase seam TDMA uses,
  // carrying the identical fixed-rate generator.  Default superframe
  // geometry (30 ms beacons, CAP only — no GTS) so the contention path
  // itself is what the sweep measures.
  core::BanConfig cfg;
  cfg.num_nodes = 5;
  cfg.mac = core::MacKind::kCsmaCa;
  cfg.app = core::AppKind::kNone;
  cfg.seed = 5;
  core::BanNetwork net{cfg};
  net.start();
  if (!net.run_until_joined(Duration::seconds(1),
                            TimePoint::zero() + Duration::seconds(30))) {
    return {};
  }
  const TimePoint t0 = net.simulator().now();
  const double radio_before =
      net.node(0).board().radio().meter().total_energy(t0);

  std::uint64_t generated0 = 0;
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&net, i, tick, interval_ms, &generated0] {
      if (i == 0) ++generated0;
      net.node(i).mac_base().queue_payload(
          std::vector<std::uint8_t>(18, 0xEC));
      net.simulator().schedule_in(Duration::milliseconds(interval_ms),
                                  *tick);
    };
    net.simulator().schedule_in(Duration::milliseconds(interval_ms), *tick);
  }
  const auto sent_before = net.node(0).mac_base().stats_snapshot().data_sent;
  net.run_until(t0 + Duration::from_seconds(seconds));

  MacResult result;
  const double joules = net.node(0).board().radio().meter().total_energy(
                            net.simulator().now()) -
                        radio_before;
  result.radio_mj_per_min = joules * 1e3 * 60.0 / seconds;
  const auto sent =
      net.node(0).mac_base().stats_snapshot().data_sent - sent_before;
  result.delivery =
      generated0 > 0 ? std::min(1.0, static_cast<double>(sent) /
                                         static_cast<double>(generated0))
                     : 1.0;
  result.events = net.simulator().events_executed();
  return result;
}

void print_reproduction(unsigned jobs) {
  std::printf(
      "MAC comparison: static TDMA (paper) vs slotted CSMA/CA vs ALOHA\n"
      "5 nodes, 18-byte payloads, node radio energy normalized to mJ/min\n\n");
  std::printf("%14s | %12s %9s | %12s %9s | %12s %9s\n", "payload every",
              "TDMA mJ/min", "delivery", "CSMA mJ/min", "delivery",
              "ALOHA mJ/min", "delivery");
  std::printf("%s\n", std::string(90, '-').c_str());

  // Every (interval, MAC) triple is an isolated simulation; scenario 3i is
  // TDMA, 3i+1 CSMA/CA, and 3i+2 ALOHA for interval i, so the printed
  // table is identical for any worker count.
  const std::vector<int> intervals = {200, 100, 60, 30, 12, 6};
  std::vector<std::function<MacResult()>> scenarios;
  for (const int interval_ms : intervals) {
    scenarios.push_back([interval_ms] { return run_tdma(interval_ms, 30.0); });
    scenarios.push_back([interval_ms] { return run_csma(interval_ms, 30.0); });
    scenarios.push_back([interval_ms] { return run_aloha(interval_ms, 30.0); });
  }
  sim::ScenarioRunner runner{jobs};
  const auto results = runner.run(scenarios);

  std::uint64_t events = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const MacResult& tdma = results[3 * i];
    const MacResult& csma = results[3 * i + 1];
    const MacResult& aloha = results[3 * i + 2];
    events += tdma.events + csma.events + aloha.events;
    std::printf("%11d ms | %12.1f %8.1f%% | %12.1f %8.1f%% | %12.1f %8.1f%%\n",
                intervals[i], tdma.radio_mj_per_min, tdma.delivery * 100,
                csma.radio_mj_per_min, csma.delivery * 100,
                aloha.radio_mj_per_min, aloha.delivery * 100);
  }
  std::printf(
      "\nsweep: %zu scenarios, %llu kernel events, %.2f s wall (jobs=%u), "
      "%.2f Mevents/s\n",
      results.size(), static_cast<unsigned long long>(events),
      runner.last_wall_seconds(), runner.jobs(),
      static_cast<double>(events) / runner.last_wall_seconds() / 1e6);
  std::printf(
      "\n(TDMA pays a flat beacon-tracking cost, keeps ~100%% delivery up to "
      "its slot capacity\n (one frame per 30 ms cycle) and sheds excess load "
      "deterministically; slotted CSMA/CA\n pays the same beacon tax plus a "
      "backoff lottery per frame, degrading gracefully as\n the CAP "
      "saturates; ALOHA is cheapest for sparse event traffic but collapses\n "
      "chaotically under load, burning more energy per delivered frame.  The "
      "BAN streaming\n workload sits on the TDMA side of both crossovers — "
      "the paper's design choice.)\n\n");
}

void BM_TdmaPoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_tdma(static_cast<int>(state.range(0)), 10.0));
  }
}
BENCHMARK(BM_TdmaPoint)->Arg(60)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_CsmaPoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_csma(static_cast<int>(state.range(0)), 10.0));
  }
}
BENCHMARK(BM_CsmaPoint)->Arg(60)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_AlohaPoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_aloha(static_cast<int>(state.range(0)), 10.0));
  }
}
BENCHMARK(BM_AlohaPoint)->Arg(60)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bansim::sim::consume_jobs_flag(argc, argv, 0);
  // JSON mode feeds scripts/bench_mac.sh; keep stdout machine-parseable by
  // skipping the human-facing reproduction table.
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_format=json", 23) == 0) {
      json = true;
    }
  }
  if (!json) {
    print_reproduction(jobs);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
