// Sensitivity analysis: which platform/protocol parameter actually owns
// the node's energy budget?
//
// Perturbs one parameter at a time by ±20 % around the paper's headline
// operating point (5-node streaming, 30 ms static TDMA) and reports the
// elasticity of the validated node energy (radio + MCU):
//   elasticity = (dE/E) / (dp/p)
// An elasticity near 1 means the parameter linearly owns the budget; near
// 0 means the model is insensitive to it — exactly the information a
// designer needs before spending engineering effort on a knob, and the
// reason the paper's measured-currents-plus-duty-cycle model works.
//
// The 17 scenario points (baseline + 8 knobs x 2 directions) are
// independent simulations, so they fan out across cores through
// sim::ScenarioRunner; pass --jobs N to control the worker count
// (--jobs 1 reproduces the old serial run bit for bit).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "core/bansim.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace bansim;
using sim::Duration;

core::ScenarioResult run_point(const core::BanConfig& cfg) {
  core::MeasurementProtocol protocol;
  protocol.measure = Duration::seconds(30);
  return core::run_scenario(cfg, protocol);
}

double node_energy_mj(const core::ScenarioResult& r) {
  return r.joined ? r.total_mj : -1.0;
}

struct Knob {
  const char* name;
  std::function<void(core::BanConfig&, double factor)> apply;
};

void print_reproduction(unsigned jobs) {
  core::PaperSetup setup;
  const core::BanConfig baseline =
      core::streaming_static_config(setup, Duration::milliseconds(30));

  const Knob knobs[] = {
      {"radio RX current",
       [](core::BanConfig& c, double f) { c.board.radio.rx_current_amps *= f; }},
      {"radio TX current",
       [](core::BanConfig& c, double f) { c.board.radio.tx_current_amps *= f; }},
      {"radio settle time",
       [](core::BanConfig& c, double f) {
         c.board.radio.settle_time = c.board.radio.settle_time.scaled(f);
       }},
      {"MCU active current",
       [](core::BanConfig& c, double f) { c.board.mcu.active_current_amps *= f; }},
      {"MCU sleep current",
       [](core::BanConfig& c, double f) { c.board.mcu.lpm_current_amps *= f; }},
      {"guard time (fixed)",
       [](core::BanConfig& c, double f) {
         c.tdma.guard_fixed = c.tdma.guard_fixed.scaled(f);
       }},
      {"SPI clock-in rate",
       [](core::BanConfig& c, double f) { c.board.radio.spi_rate_bps *= f; }},
      {"air data rate",
       [](core::BanConfig& c, double f) { c.board.phy.air_rate_bps *= f; }},
  };

  // Scenario 0 is the baseline; knob k contributes scenarios 1+2k (-20 %)
  // and 2+2k (+20 %).  Each factory owns a full config copy, so the sweep
  // is embarrassingly parallel and its results are index-ordered.
  std::vector<std::function<core::ScenarioResult()>> scenarios;
  scenarios.push_back([baseline] { return run_point(baseline); });
  for (const Knob& knob : knobs) {
    for (const double factor : {0.8, 1.2}) {
      core::BanConfig cfg = baseline;
      knob.apply(cfg, factor);
      scenarios.push_back([cfg] { return run_point(cfg); });
    }
  }

  sim::ScenarioRunner runner{jobs};
  const auto results = runner.run(scenarios);
  const double base_mj = node_energy_mj(results[0]);

  std::printf(
      "Parameter sensitivity of validated node energy (radio + uC)\n"
      "5-node ECG streaming, 30 ms static TDMA; baseline %.1f mJ / 30 s\n\n",
      base_mj);
  std::printf("%-22s | %11s %11s | %10s\n", "parameter", "-20% -> mJ",
              "+20% -> mJ", "elasticity");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (std::size_t k = 0; k < std::size(knobs); ++k) {
    const double lo_mj = node_energy_mj(results[1 + 2 * k]);
    const double hi_mj = node_energy_mj(results[2 + 2 * k]);
    const double elasticity = (hi_mj - lo_mj) / base_mj / 0.4;
    std::printf("%-22s | %11.1f %11.1f | %+10.2f\n", knobs[k].name, lo_mj,
                hi_mj, elasticity);
  }

  std::uint64_t events = 0;
  for (const auto& r : results) events += r.events;
  std::printf(
      "\nsweep: %zu scenarios, %llu kernel events, %.2f s wall (jobs=%u), "
      "%.2f Mevents/s\n",
      results.size(), static_cast<unsigned long long>(events),
      runner.last_wall_seconds(), runner.jobs(),
      static_cast<double>(events) / runner.last_wall_seconds() / 1e6);
  std::printf(
      "\n(RX current and the guard window dominate — they set the beacon "
      "listen cost;\n faster air/SPI rates barely matter because the data "
      "burst is already short.\n This is why the paper's model needs exact "
      "RX-window timing but tolerates\n a coarse CPU-cycle mapping.)\n\n");
}

void BM_SensitivityPoint(benchmark::State& state) {
  core::PaperSetup setup;
  const core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(node_energy_mj(run_point(cfg)));
  }
}

BENCHMARK(BM_SensitivityPoint)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bansim::sim::consume_jobs_flag(argc, argv, 0);
  print_reproduction(jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
