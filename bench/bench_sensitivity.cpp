// Sensitivity analysis: which platform/protocol parameter actually owns
// the node's energy budget?
//
// Perturbs one parameter at a time by ±20 % around the paper's headline
// operating point (5-node streaming, 30 ms static TDMA) and reports the
// elasticity of the validated node energy (radio + MCU):
//   elasticity = (dE/E) / (dp/p)
// An elasticity near 1 means the parameter linearly owns the budget; near
// 0 means the model is insensitive to it — exactly the information a
// designer needs before spending engineering effort on a knob, and the
// reason the paper's measured-currents-plus-duty-cycle model works.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

double node_energy_mj(const core::BanConfig& cfg) {
  core::MeasurementProtocol protocol;
  protocol.measure = Duration::seconds(30);
  const core::ScenarioResult r = core::run_scenario(cfg, protocol);
  return r.joined ? r.total_mj : -1.0;
}

struct Knob {
  const char* name;
  std::function<void(core::BanConfig&, double factor)> apply;
};

void print_reproduction() {
  core::PaperSetup setup;
  const core::BanConfig baseline =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  const double base_mj = node_energy_mj(baseline);

  const Knob knobs[] = {
      {"radio RX current",
       [](core::BanConfig& c, double f) { c.board.radio.rx_current_amps *= f; }},
      {"radio TX current",
       [](core::BanConfig& c, double f) { c.board.radio.tx_current_amps *= f; }},
      {"radio settle time",
       [](core::BanConfig& c, double f) {
         c.board.radio.settle_time = c.board.radio.settle_time.scaled(f);
       }},
      {"MCU active current",
       [](core::BanConfig& c, double f) { c.board.mcu.active_current_amps *= f; }},
      {"MCU sleep current",
       [](core::BanConfig& c, double f) { c.board.mcu.lpm_current_amps *= f; }},
      {"guard time (fixed)",
       [](core::BanConfig& c, double f) {
         c.tdma.guard_fixed = c.tdma.guard_fixed.scaled(f);
       }},
      {"SPI clock-in rate",
       [](core::BanConfig& c, double f) { c.board.radio.spi_rate_bps *= f; }},
      {"air data rate",
       [](core::BanConfig& c, double f) { c.board.phy.air_rate_bps *= f; }},
  };

  std::printf(
      "Parameter sensitivity of validated node energy (radio + uC)\n"
      "5-node ECG streaming, 30 ms static TDMA; baseline %.1f mJ / 30 s\n\n",
      base_mj);
  std::printf("%-22s | %11s %11s | %10s\n", "parameter", "-20% -> mJ",
              "+20% -> mJ", "elasticity");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const Knob& knob : knobs) {
    core::BanConfig lo = baseline;
    knob.apply(lo, 0.8);
    core::BanConfig hi = baseline;
    knob.apply(hi, 1.2);
    const double lo_mj = node_energy_mj(lo);
    const double hi_mj = node_energy_mj(hi);
    const double elasticity = (hi_mj - lo_mj) / base_mj / 0.4;
    std::printf("%-22s | %11.1f %11.1f | %+10.2f\n", knob.name, lo_mj, hi_mj,
                elasticity);
  }
  std::printf(
      "\n(RX current and the guard window dominate — they set the beacon "
      "listen cost;\n faster air/SPI rates barely matter because the data "
      "burst is already short.\n This is why the paper's model needs exact "
      "RX-window timing but tolerates\n a coarse CPU-cycle mapping.)\n\n");
}

void BM_SensitivityPoint(benchmark::State& state) {
  core::PaperSetup setup;
  const core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(node_energy_mj(cfg));
  }
}

BENCHMARK(BM_SensitivityPoint)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
