// Reproduces Figures 2 and 3: the protocol timelines of the static and
// dynamic TDMA MACs — SB beacons from the base station, SSR slot requests
// from joining nodes, grants, and the data slots of the steady state.  The
// dynamic timeline shows the cycle stretching as nodes are admitted.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

std::string capture_timeline(mac::TdmaVariant variant) {
  core::BanConfig cfg;
  cfg.num_nodes = 3;
  cfg.app = core::AppKind::kEcgStreaming;
  if (variant == mac::TdmaVariant::kStatic) {
    cfg.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(60), 5);
    cfg.streaming.sample_rate_hz = 105;
  } else {
    cfg.tdma = mac::TdmaConfig::dynamic_plan();
    cfg.streaming.sample_rate_hz = 100;
  }
  cfg.stagger = Duration::milliseconds(150);  // spread the joins out

  core::BanNetwork network{cfg};
  auto sink = std::make_shared<sim::MemorySink>();
  network.tracer().attach(sink, {sim::TraceCategory::kMac});

  network.start();
  network.run_until(sim::TimePoint::zero() + Duration::milliseconds(700));

  core::TimelineOptions options;
  options.start = sim::TimePoint::zero() + Duration::milliseconds(0);
  options.window = Duration::milliseconds(640);
  options.bin = Duration::milliseconds(4);
  return core::render_timeline(sink->records(), options);
}

void print_reproduction() {
  std::printf("Figure 2 (static TDMA: fixed cycle, SSR in free slots):\n%s\n",
              capture_timeline(mac::TdmaVariant::kStatic).c_str());
  std::printf(
      "Figure 3 (dynamic TDMA: cycle grows as nodes join; SSR in ES):\n%s\n",
      capture_timeline(mac::TdmaVariant::kDynamic).c_str());
}

void BM_TimelineCapture(benchmark::State& state) {
  const auto variant = state.range(0) == 0 ? mac::TdmaVariant::kStatic
                                           : mac::TdmaVariant::kDynamic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture_timeline(variant));
  }
}

BENCHMARK(BM_TimelineCapture)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
