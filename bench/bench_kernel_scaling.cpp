// Ablation B: simulator throughput and scaling.
//
// The paper's motivation for an OS-level (rather than instruction-level)
// model is simulation speed at network scale (Section 2).  This bench
// measures raw event-kernel throughput (schedule/fire churn, cancel-heavy
// churn exercising the lazy-prune path) and how wall-clock cost of a full
// BAN simulation scales with node count, simulated time, and tracing.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

/// Self-rescheduling chain link.  Trivially copyable and 24 bytes, so the
/// kernel stores it in the slot arena's inline buffer: one schedule is one
/// heap-key push plus a small memcpy, no allocation.
struct ChainTick {
  sim::Simulator* simulator;
  std::uint64_t* fired;
  std::uint64_t target;

  void operator()() const {
    if (++*fired < target) {
      simulator->schedule_in(Duration::microseconds(1), *this);
    }
  }
};

/// Raw kernel: schedule/execute churn with self-rescheduling event chains.
void BM_KernelEventChurn(benchmark::State& state) {
  const auto chain_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    const std::uint64_t target = chain_count * 1000;
    for (std::size_t i = 0; i < chain_count; ++i) {
      simulator.schedule_in(Duration::microseconds(1),
                            ChainTick{&simulator, &fired, target});
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain_count) * 1000);
}

BENCHMARK(BM_KernelEventChurn)->Arg(1)->Arg(8)->Arg(64);

/// Schedule/cancel churn: most handles are cancelled before firing, so the
/// heap fills with dead keys that the lazy-prune path must skip.  This is
/// the MAC's steady-state pattern (guard timers and ACK timeouts are
/// usually cancelled by the event they guard against).
void BM_KernelScheduleCancelChurn(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventHandle> handles(batch);
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    for (int round = 0; round < 100; ++round) {
      for (std::size_t i = 0; i < batch; ++i) {
        handles[i] = simulator.schedule_in(
            Duration::microseconds(static_cast<std::int64_t>(i + 1)),
            [&fired] { ++fired; });
      }
      // Cancel three out of four before they fire; survivors run.
      for (std::size_t i = 0; i < batch; ++i) {
        if (i % 4 != 0) handles[i].cancel();
      }
      simulator.run();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(batch));
}

BENCHMARK(BM_KernelScheduleCancelChurn)->Arg(16)->Arg(256);

/// Full-stack scaling with network size (dynamic TDMA admits any count).
void BM_BanScaling_Nodes(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::BanConfig cfg;
    cfg.num_nodes = nodes;
    cfg.tdma = mac::TdmaConfig::dynamic_plan();
    cfg.app = core::AppKind::kRpeak;
    cfg.stagger = Duration::milliseconds(40 * static_cast<std::int64_t>(nodes));
    core::BanNetwork network{cfg};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(10));
    benchmark::DoNotOptimize(network.simulator().events_executed());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

BENCHMARK(BM_BanScaling_Nodes)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// Full-stack scaling with simulated time (5-node paper network).
void BM_BanScaling_SimTime(benchmark::State& state) {
  const auto seconds = static_cast<std::int64_t>(state.range(0));
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  for (auto _ : state) {
    core::BanNetwork network{cfg};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(seconds));
    benchmark::DoNotOptimize(network.simulator().events_executed());
  }
  state.counters["sim_seconds"] = static_cast<double>(seconds);
}

BENCHMARK(BM_BanScaling_SimTime)->Arg(1)->Arg(10)->Arg(60)
    ->Unit(benchmark::kMillisecond);

/// Tracing cost on the full stack: the tracing-off case is the sweep/bench
/// default and must pay only the category check per call site (deferred
/// formatting); the tracing-on case bounds what enabling a sink costs.
void BM_BanFullStack_Tracing(benchmark::State& state) {
  const bool tracing_on = state.range(0) != 0;
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  for (auto _ : state) {
    core::BanNetwork network{cfg};
    std::shared_ptr<sim::MemorySink> sink;
    if (tracing_on) {
      sink = std::make_shared<sim::MemorySink>();
      network.context().tracer.attach(
          sink, {sim::TraceCategory::kOs, sim::TraceCategory::kMcu,
                 sim::TraceCategory::kRadio, sim::TraceCategory::kChannel,
                 sim::TraceCategory::kMac});
    }
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(2));
    benchmark::DoNotOptimize(network.simulator().events_executed());
    if (sink) benchmark::DoNotOptimize(sink->records().size());
  }
  state.SetLabel(tracing_on ? "tracing_on" : "tracing_off");
}

BENCHMARK(BM_BanFullStack_Tracing)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
