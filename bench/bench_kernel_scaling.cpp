// Ablation B: simulator throughput and scaling.
//
// The paper's motivation for an OS-level (rather than instruction-level)
// model is simulation speed at network scale (Section 2).  This bench
// measures raw event-kernel throughput and how wall-clock cost of a full
// BAN simulation scales with node count and with simulated time.
#include <benchmark/benchmark.h>

#include "core/bansim.hpp"

namespace {

using namespace bansim;
using sim::Duration;

/// Raw kernel: schedule/execute churn with a self-rescheduling event chain.
void BM_KernelEventChurn(benchmark::State& state) {
  const auto chain_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    const std::uint64_t target = chain_count * 1000;
    // Each executed event re-arms itself until the global budget drains;
    // `tick` outlives run(), so capturing it by reference is safe.
    std::function<void()> tick;
    tick = [&simulator, &tick, &fired, target] {
      ++fired;
      if (fired < target) {
        simulator.schedule_in(sim::Duration::microseconds(1), tick);
      }
    };
    for (std::size_t i = 0; i < chain_count; ++i) {
      simulator.schedule_in(sim::Duration::microseconds(1), tick);
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain_count) * 1000);
}

BENCHMARK(BM_KernelEventChurn)->Arg(1)->Arg(8)->Arg(64);

/// Full-stack scaling with network size (dynamic TDMA admits any count).
void BM_BanScaling_Nodes(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::BanConfig cfg;
    cfg.num_nodes = nodes;
    cfg.tdma = mac::TdmaConfig::dynamic_plan();
    cfg.app = core::AppKind::kRpeak;
    cfg.stagger = Duration::milliseconds(40 * static_cast<std::int64_t>(nodes));
    core::BanNetwork network{cfg};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(10));
    benchmark::DoNotOptimize(network.simulator().events_executed());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

BENCHMARK(BM_BanScaling_Nodes)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// Full-stack scaling with simulated time (5-node paper network).
void BM_BanScaling_SimTime(benchmark::State& state) {
  const auto seconds = static_cast<std::int64_t>(state.range(0));
  core::PaperSetup setup;
  core::BanConfig cfg =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  for (auto _ : state) {
    core::BanNetwork network{cfg};
    network.start();
    network.run_until(sim::TimePoint::zero() + Duration::seconds(seconds));
    benchmark::DoNotOptimize(network.simulator().events_executed());
  }
  state.counters["sim_seconds"] = static_cast<double>(seconds);
}

BENCHMARK(BM_BanScaling_SimTime)->Arg(1)->Arg(10)->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
