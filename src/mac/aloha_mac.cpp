#include "mac/aloha_mac.hpp"

namespace bansim::mac {

AlohaNodeMac::AlohaNodeMac(sim::SimContext& context, os::NodeOs& node_os,
                           const AlohaConfig& config, net::NodeId self,
                           sim::Rng rng)
    : simulator_{context.simulator}, tracer_{context.tracer}, os_{node_os},
      config_{config}, self_{self}, rng_{rng} {
  os_.radio().radio().set_local_address(self_);
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void AlohaNodeMac::start() {
  os_.radio().init([this] {
    ready_ = true;
    kick();
  });
}

void AlohaNodeMac::queue_payload(std::vector<std::uint8_t> payload) {
  if (tx_queue_.size() >= kMaxQueue) {
    tx_queue_.pop_front();
    ++stats_.payloads_dropped;
  }
  tx_queue_.push_back(std::move(payload));
  kick();
}

void AlohaNodeMac::kick() {
  if (!ready_ || attempt_pending_ || awaiting_ack_ || tx_queue_.empty()) {
    return;
  }
  attempt_pending_ = true;
  const double dither_s =
      rng_.uniform(0.0, config_.initial_dither.to_seconds());
  os_.timers().start_oneshot("aloha.dither",
                             sim::Duration::from_seconds(dither_s),
                             [this] { attempt(); });
}

void AlohaNodeMac::attempt() {
  attempt_pending_ = false;
  if (tx_queue_.empty()) return;
  if (os_.radio().sending() || os_.radio().listening()) {
    // Radio mid-transaction (shouldn't happen in this MAC): retry shortly.
    kick();
    return;
  }
  const std::vector<std::uint8_t> payload = tx_queue_.front();
  if (!config_.ack_data) tx_queue_.pop_front();

  const std::uint64_t cycles = 240 + 6 * payload.size();
  os_.scheduler().post("mac.prepare_tx", cycles, [this, payload] {
    if (os_.radio().sending() || os_.radio().listening()) return;
    net::Packet data;
    data.header.dest = net::kBaseStationId;
    data.header.src = self_;
    data.header.type = net::PacketType::kData;
    data.header.seq = seq_++;
    data.payload = payload;
    ++stats_.data_sent;
    if (retries_ > 0) ++stats_.retransmissions;
    os_.radio().send(data, [this] {
      if (!config_.ack_data) {
        kick();
        return;
      }
      awaiting_ack_ = true;
      os_.radio().start_listen();
      ack_timer_ = os_.timers().start_oneshot(
          "aloha.ack_timeout", config_.ack_wait, [this] { on_ack_timeout(); });
    });
  });
}

void AlohaNodeMac::on_packet(const net::Packet& packet) {
  if (packet.header.type != net::PacketType::kAck || !awaiting_ack_) return;
  awaiting_ack_ = false;
  ++stats_.acks_received;
  if (ack_timer_ != os::TimerService::kInvalidTimer) {
    os_.timers().stop(ack_timer_);
    ack_timer_ = os::TimerService::kInvalidTimer;
  }
  if (os_.radio().listening()) os_.radio().stop_listen();
  if (!tx_queue_.empty()) tx_queue_.pop_front();
  retries_ = 0;
  kick();
}

void AlohaNodeMac::on_ack_timeout() {
  ack_timer_ = os::TimerService::kInvalidTimer;
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  if (os_.radio().listening() &&
      os_.radio().radio().state() != hw::RadioState::kRxClockOut) {
    os_.radio().stop_listen();
  }
  if (++retries_ > config_.max_retries) {
    if (!tx_queue_.empty()) tx_queue_.pop_front();
    ++stats_.retry_drops;
    retries_ = 0;
    kick();
    return;
  }
  // Exponential backoff: window doubles with every retry.
  const double window_s = config_.backoff_base.to_seconds() *
                          static_cast<double>(1u << (retries_ - 1));
  attempt_pending_ = true;
  os_.timers().start_oneshot(
      "aloha.backoff",
      sim::Duration::from_seconds(rng_.uniform(0.0, window_s)),
      [this] { attempt(); });
}

AlohaBaseStation::AlohaBaseStation(sim::SimContext& context,
                                   os::NodeOs& node_os,
                                   const AlohaConfig& config)
    : simulator_{context.simulator}, tracer_{context.tracer}, os_{node_os},
      config_{config} {
  os_.radio().radio().set_local_address(net::kBaseStationId);
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void AlohaBaseStation::start() {
  os_.radio().init([this] { os_.radio().start_listen(); });
}

void AlohaBaseStation::on_packet(const net::Packet& packet) {
  if (packet.header.type != net::PacketType::kData) return;
  ++data_received_;
  if (config_.ack_data) {
    net::Packet ack;
    ack.header.dest = packet.header.src;
    ack.header.src = net::kBaseStationId;
    ack.header.type = net::PacketType::kAck;
    ack.header.seq = packet.header.seq;
    os_.scheduler().post("bs.send_ack", 120, [this, ack] {
      if (os_.radio().sending()) return;
      if (os_.radio().listening()) os_.radio().stop_listen();
      ++acks_sent_;
      os_.radio().send(ack, [this] { os_.radio().start_listen(); });
    });
  }
  os_.scheduler().post("bs.handle_rx", 260 + 8 * packet.payload.size(),
                       [this, packet] {
                         if (handler_) {
                           handler_(packet.header.src, packet.payload,
                                    simulator_.now());
                         }
                       });
}

}  // namespace bansim::mac
