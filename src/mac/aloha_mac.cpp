#include "mac/aloha_mac.hpp"

#include <algorithm>

namespace bansim::mac {

AlohaNodeMac::AlohaNodeMac(sim::SimContext& context, os::NodeOs& node_os,
                           const AlohaConfig& config, net::NodeId self,
                           sim::Rng rng)
    : simulator_{context.simulator}, tracer_{context.tracer},
      trace_node_{tracer_.intern(node_os.node_name())}, os_{node_os},
      config_{config}, self_{self}, rng_{rng} {
  os_.radio().radio().set_local_address(self_);
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void AlohaNodeMac::start() {
  const std::uint64_t epoch = boot_epoch_;
  os_.radio().init([this, epoch] {
    if (boot_epoch_ != epoch) return;
    ready_ = true;
    kick();
  });
}

void AlohaNodeMac::queue_payload(std::vector<std::uint8_t> payload) {
  ++stats_.payloads_queued;
  if (crashed_) {
    // A dead node's sensing pipeline is dead too, but defend against
    // application timers still draining through the scheduler.
    ++stats_.payloads_dropped;
    return;
  }
  if (tx_queue_.size() >= kMaxQueue) {
    tx_queue_.pop_front();
    ++stats_.payloads_dropped;
  }
  tx_queue_.push_back(std::move(payload));
  kick();
}

void AlohaNodeMac::stop_timer(os::TimerService::TimerId& id) {
  if (id != os::TimerService::kInvalidTimer) {
    os_.timers().stop(id);
    id = os::TimerService::kInvalidTimer;
  }
}

void AlohaNodeMac::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  // Posted tasks and armed callbacks belong to the old life; the epoch bump
  // no-ops whatever teardown cannot reach.
  ++boot_epoch_;
  stop_timer(ack_timer_);
  stop_timer(attempt_timer_);
  tx_queue_.clear();
  ready_ = false;
  attempt_pending_ = false;
  awaiting_ack_ = false;
  retries_ = 0;
  seq_ = 0;
  // The driver forgets its in-flight send; the chip is cut mid-state (a
  // forced power-down is legal from anywhere and drops any latched frame).
  os_.radio().reset();
  os_.radio().radio().power_down();
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "CRASH: mac state lost"; });
}

void AlohaNodeMac::reboot() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.reboots;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "reboot: cold start"; });
  start();
}

void AlohaNodeMac::reset_for_reuse(sim::Rng rng) {
  rng_ = rng;
  tx_queue_.clear();
  attempt_pending_ = false;
  awaiting_ack_ = false;
  retries_ = 0;
  seq_ = 0;
  ready_ = false;
  ack_timer_ = os::TimerService::kInvalidTimer;
  attempt_timer_ = os::TimerService::kInvalidTimer;
  boot_epoch_ = 0;
  crashed_ = false;
  stats_ = AlohaNodeStats{};
}

MacStatsSnapshot AlohaNodeMac::stats_snapshot() const {
  MacStatsSnapshot snap;
  snap.payloads_queued = stats_.payloads_queued;
  snap.payloads_dropped = stats_.payloads_dropped;
  snap.data_sent = stats_.data_sent;
  snap.acks_received = stats_.acks_received;
  snap.retransmissions = stats_.retransmissions;
  snap.retry_drops = stats_.retry_drops;
  snap.crashes = stats_.crashes;
  snap.reboots = stats_.reboots;
  return snap;
}

void AlohaNodeMac::kick() {
  if (!ready_ || attempt_pending_ || awaiting_ack_ || tx_queue_.empty()) {
    return;
  }
  attempt_pending_ = true;
  const double dither_s =
      rng_.uniform(0.0, config_.initial_dither.to_seconds());
  attempt_timer_ = os_.timers().start_oneshot(
      "aloha.dither", sim::Duration::from_seconds(dither_s),
      [this] { attempt(); });
}

void AlohaNodeMac::attempt() {
  attempt_timer_ = os::TimerService::kInvalidTimer;
  attempt_pending_ = false;
  if (tx_queue_.empty()) return;
  if (os_.radio().sending() || os_.radio().listening()) {
    // Radio mid-transaction (shouldn't happen in this MAC): retry shortly.
    kick();
    return;
  }
  const std::vector<std::uint8_t> payload = tx_queue_.front();
  if (!config_.ack_data) tx_queue_.pop_front();

  const std::uint64_t cycles = 240 + 6 * payload.size();
  const std::uint64_t epoch = boot_epoch_;
  os_.scheduler().post("mac.prepare_tx", cycles, [this, payload, epoch] {
    if (boot_epoch_ != epoch) return;
    if (os_.radio().sending() || os_.radio().listening()) return;
    net::Packet data;
    data.header.dest = net::kBaseStationId;
    data.header.src = self_;
    data.header.type = net::PacketType::kData;
    data.header.seq = seq_++;
    data.payload = payload;
    ++stats_.data_sent;
    if (retries_ > 0) ++stats_.retransmissions;
    os_.radio().send(data, [this, epoch] {
      if (boot_epoch_ != epoch) return;
      if (!config_.ack_data) {
        kick();
        return;
      }
      awaiting_ack_ = true;
      os_.radio().start_listen();
      ack_timer_ = os_.timers().start_oneshot(
          "aloha.ack_timeout", config_.ack_wait, [this] { on_ack_timeout(); });
    });
  });
}

void AlohaNodeMac::on_packet(const net::Packet& packet) {
  if (crashed_) return;
  if (packet.header.type != net::PacketType::kAck || !awaiting_ack_) return;
  awaiting_ack_ = false;
  ++stats_.acks_received;
  stop_timer(ack_timer_);
  if (os_.radio().listening()) os_.radio().stop_listen();
  if (!tx_queue_.empty()) tx_queue_.pop_front();
  retries_ = 0;
  kick();
}

void AlohaNodeMac::on_ack_timeout() {
  ack_timer_ = os::TimerService::kInvalidTimer;
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  if (os_.radio().listening() &&
      os_.radio().radio().state() != hw::RadioState::kRxClockOut) {
    os_.radio().stop_listen();
  }
  if (++retries_ > config_.max_retries) {
    if (!tx_queue_.empty()) tx_queue_.pop_front();
    ++stats_.retry_drops;
    retries_ = 0;
    kick();
    return;
  }
  // Exponential backoff: window doubles with every retry.
  const double window_s = config_.backoff_base.to_seconds() *
                          static_cast<double>(1u << (retries_ - 1));
  attempt_pending_ = true;
  attempt_timer_ = os_.timers().start_oneshot(
      "aloha.backoff",
      sim::Duration::from_seconds(rng_.uniform(0.0, window_s)),
      [this] { attempt(); });
}

AlohaBaseStation::AlohaBaseStation(sim::SimContext& context,
                                   os::NodeOs& node_os,
                                   const AlohaConfig& config)
    : simulator_{context.simulator}, tracer_{context.tracer}, os_{node_os},
      config_{config} {
  os_.radio().radio().set_local_address(net::kBaseStationId);
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void AlohaBaseStation::start() {
  os_.radio().init([this] { os_.radio().start_listen(); });
}

void AlohaBaseStation::reset_for_reuse() {
  sources_heard_.clear();
  data_received_ = 0;
  acks_sent_ = 0;
}

void AlohaBaseStation::on_packet(const net::Packet& packet) {
  if (packet.header.type != net::PacketType::kData) return;
  ++data_received_;
  const auto it = std::lower_bound(sources_heard_.begin(),
                                   sources_heard_.end(), packet.header.src);
  if (it == sources_heard_.end() || *it != packet.header.src) {
    sources_heard_.insert(it, packet.header.src);
  }
  if (config_.ack_data) {
    net::Packet ack;
    ack.header.dest = packet.header.src;
    ack.header.src = net::kBaseStationId;
    ack.header.type = net::PacketType::kAck;
    ack.header.seq = packet.header.seq;
    os_.scheduler().post("bs.send_ack", 120, [this, ack] {
      if (os_.radio().sending()) return;
      if (os_.radio().listening()) os_.radio().stop_listen();
      ++acks_sent_;
      os_.radio().send(ack, [this] { os_.radio().start_listen(); });
    });
  }
  os_.scheduler().post("bs.handle_rx", 260 + 8 * packet.payload.size(),
                       [this, packet] {
                         if (handler_) {
                           handler_(packet.header.src, packet.payload,
                                    simulator_.now());
                         }
                       });
}

}  // namespace bansim::mac
