#include "mac/mac_base.hpp"

namespace bansim::mac {

const std::vector<sim::Duration> NodeMacBase::kNoDurations{};

}  // namespace bansim::mac
