#include "mac/node_mac.hpp"

#include <algorithm>
#include <cassert>

#include "phy/air_frame.hpp"

namespace bansim::mac {

const char* to_string(NodeMacState s) {
  switch (s) {
    case NodeMacState::kBooting: return "booting";
    case NodeMacState::kSearching: return "searching";
    case NodeMacState::kJoining: return "joining";
    case NodeMacState::kJoined: return "joined";
  }
  return "?";
}

MacStatsSnapshot NodeMac::stats_snapshot() const {
  MacStatsSnapshot s;
  s.payloads_queued = stats_.payloads_queued;
  s.payloads_dropped = stats_.payloads_dropped;
  s.data_sent = stats_.data_sent;
  s.acks_received = stats_.acks_received;
  s.retransmissions = stats_.retransmissions;
  s.retry_drops = stats_.retry_drops;
  s.beacons_received = stats_.beacons_received;
  s.beacons_missed = stats_.beacons_missed;
  s.resyncs = stats_.resyncs;
  s.crashes = stats_.crashes;
  s.reboots = stats_.reboots;
  return s;
}

NodeMac::NodeMac(sim::SimContext& context, os::NodeOs& node_os,
                 const TdmaConfig& config, net::NodeId self, sim::Rng rng)
    : simulator_{context.simulator}, tracer_{context.tracer},
      trace_node_{tracer_.intern(node_os.node_name())}, os_{node_os},
      config_{config}, self_{self}, rng_{rng},
      bs_address_{TdmaConfig::bs_address(config.pan_id)} {
  assert(self_ != bs_address_ && self_ != net::kBroadcastId &&
         self_ != kFreeSlot);
  os_.radio().radio().set_local_address(self_);
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void NodeMac::start() {
  os_.radio().init([this, epoch = boot_epoch_] {
    if (epoch == boot_epoch_) enter_search();
  });
}

void NodeMac::stop_timer(os::TimerService::TimerId& id) {
  if (id != os::TimerService::kInvalidTimer) {
    os_.timers().stop(id);
    id = os::TimerService::kInvalidTimer;
  }
}

void NodeMac::cancel_cycle_timers() {
  stop_timer(slot_timer_);
  stop_timer(wake_timer_);
}

void NodeMac::cancel_all_timers() {
  cancel_cycle_timers();
  stop_timer(timeout_timer_);
  stop_timer(grant_timer_);
  stop_timer(ack_timer_);
  stop_timer(ssr_timer_);
  stop_timer(powerup_timer_);
  stop_timer(search_timer_);
}

void NodeMac::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  // Posted tasks and armed callbacks belong to the old life; the epoch bump
  // no-ops whatever teardown cannot reach.
  ++boot_epoch_;
  cancel_all_timers();
  tx_queue_.clear();
  state_ = NodeMacState::kBooting;
  my_slot_ = -1;
  missed_ = 0;
  cycle_ = sim::Duration::zero();
  slot_width_ = sim::Duration::zero();
  owners_.clear();
  last_beacon_wire_bytes_ = 0;
  retries_ = 0;
  awaiting_ack_ = false;
  data_seq_ = 0;
  search_backoff_level_ = 0;
  search_pending_ = false;
  rejoin_pending_ = false;
  // The driver forgets its in-flight send; the chip is cut mid-state (a
  // forced power-down is legal from anywhere and drops any latched frame).
  os_.radio().reset();
  os_.radio().radio().power_down();
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "CRASH: mac state lost"; });
}

void NodeMac::reboot() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.reboots;
  must_reassociate_ = true;
  reboot_at_ = simulator_.now();
  rejoin_pending_ = true;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "reboot: cold start"; });
  start();
}

void NodeMac::reset_for_reuse(sim::Rng rng) {
  rng_ = rng;
  state_ = NodeMacState::kBooting;
  tx_queue_.clear();
  data_seq_ = 0;
  cycle_ = sim::Duration::zero();
  slot_width_ = sim::Duration::zero();
  owners_.clear();
  my_slot_ = -1;
  last_cycle_start_ = sim::TimePoint{};
  last_beacon_wire_bytes_ = 0;
  missed_ = 0;
  timeout_timer_ = os::TimerService::kInvalidTimer;
  grant_timer_ = os::TimerService::kInvalidTimer;
  ack_timer_ = os::TimerService::kInvalidTimer;
  slot_timer_ = os::TimerService::kInvalidTimer;
  wake_timer_ = os::TimerService::kInvalidTimer;
  ssr_timer_ = os::TimerService::kInvalidTimer;
  powerup_timer_ = os::TimerService::kInvalidTimer;
  search_timer_ = os::TimerService::kInvalidTimer;
  retries_ = 0;
  awaiting_ack_ = false;
  boot_epoch_ = 0;
  must_reassociate_ = false;
  crashed_ = false;
  search_backoff_level_ = 0;
  search_started_ = sim::TimePoint{};
  search_pending_ = false;
  reboot_at_ = sim::TimePoint{};
  rejoin_pending_ = false;
  resync_times_.clear();
  rejoin_times_.clear();
  stats_ = NodeMacStats{};
}

void NodeMac::queue_payload(std::vector<std::uint8_t> payload) {
  assert(payload.size() <= net::kMaxPayloadBytes);
  ++stats_.payloads_queued;
  if (crashed_) {
    // A dead node's sensing pipeline is dead too, but defend against
    // application timers still draining through the scheduler.
    ++stats_.payloads_dropped;
    return;
  }
  if (tx_queue_.size() >= config_.tx_queue_cap) {
    tx_queue_.pop_front();
    ++stats_.payloads_dropped;
  }
  tx_queue_.push_back(std::move(payload));
}

void NodeMac::enter_search() {
  state_ = NodeMacState::kSearching;
  ++stats_.resyncs;
  missed_ = 0;
  my_slot_ = -1;
  cancel_cycle_timers();
  stop_timer(timeout_timer_);
  search_started_ = simulator_.now();
  search_pending_ = true;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "searching for beacon"; });
  if (config_.search_listen.is_zero()) {
    // Legacy: listen until a beacon arrives, however long that takes.
    if (!os_.radio().listening()) os_.radio().start_listen();
    return;
  }
  search_backoff_level_ = 0;
  begin_search_listen();
}

void NodeMac::begin_search_listen() {
  if (!os_.radio().listening() && !os_.radio().sending()) {
    os_.radio().start_listen();
  }
  search_timer_ = os_.timers().start_oneshot(
      "mac.search_window", config_.search_listen,
      [this] { on_search_window_elapsed(); });
}

void NodeMac::on_search_window_elapsed() {
  search_timer_ = os::TimerService::kInvalidTimer;
  if (state_ != NodeMacState::kSearching) return;
  if (os_.radio().radio().state() == hw::RadioState::kRxClockOut) {
    // A frame (maybe our beacon) is clocking out right now; let it finish.
    search_timer_ = os_.timers().start_oneshot(
        "mac.search_window", sim::Duration::from_microseconds(500),
        [this] { on_search_window_elapsed(); });
    return;
  }
  // No beacon inside the window: power-cycle the radio — which also clears
  // a locked-up receiver, the recovery path for that fault — and back off
  // before burning RX current again.
  if (os_.radio().listening()) os_.radio().stop_listen();
  os_.radio().radio().power_down();
  ++stats_.search_power_cycles;
  sim::Duration backoff = config_.search_backoff_base;
  for (std::uint32_t i = 0; i < search_backoff_level_; ++i) {
    backoff = backoff.scaled(config_.search_backoff_factor);
    if (backoff >= config_.search_backoff_max) break;
  }
  if (backoff > config_.search_backoff_max) backoff = config_.search_backoff_max;
  ++search_backoff_level_;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "search window empty, backoff " << backoff;
               });
  search_timer_ = os_.timers().start_oneshot(
      "mac.search_backoff", backoff, [this] {
        search_timer_ = os::TimerService::kInvalidTimer;
        if (state_ != NodeMacState::kSearching) return;
        begin_search_listen();  // start_listen re-powers the radio if needed
      });
}

sim::Duration NodeMac::beacon_air_estimate() const {
  const std::size_t bytes = last_beacon_wire_bytes_ != 0
                                ? last_beacon_wire_bytes_
                                : net::kHeaderBytes + 12 + net::kCrcBytes;
  return phy::air_time(os_.radio().radio().phy_config(), bytes);
}

void NodeMac::on_packet(const net::Packet& packet) {
  // A frame clocked out just before the crash can still drain through the
  // OS dispatch queue; the dead MAC must not act on it.
  if (crashed_) return;
  switch (packet.header.type) {
    case net::PacketType::kSlotGrant:
      // Directed frames from a foreign base station (a co-located BAN with
      // a node sharing our short address) must not be honoured.
      if (packet.header.src == bs_address_) process_grant(packet);
      return;
    case net::PacketType::kAck:
      if (packet.header.src == bs_address_) process_ack(packet);
      return;
    case net::PacketType::kBeacon:
      if (packet.header.src != bs_address_) {
        ++stats_.foreign_beacons;
        return;  // another PAN's beacon: keep listening for ours
      }
      break;
    default:
      return;
  }
  const sim::TimePoint rx_time = simulator_.now();

  // The beacon is in hand: the receiver's job this cycle is done.
  stop_timer(timeout_timer_);
  stop_timer(search_timer_);
  if (os_.radio().listening()) os_.radio().stop_listen();

  const std::uint64_t cycles =
      350 + 14 * (packet.payload.size() > 11
                      ? (packet.payload.size() - 11) / 2
                      : 0);
  os_.scheduler().post("mac.beacon_proc", cycles,
                       [this, packet, rx_time, epoch = boot_epoch_] {
                         if (epoch != boot_epoch_) return;
                         process_beacon(packet, rx_time);
                       });
}

void NodeMac::process_beacon(const net::Packet& packet,
                             sim::TimePoint rx_time) {
  auto payload = net::BeaconPayload::deserialize(packet.payload);
  if (!payload) return;

  ++stats_.beacons_received;
  missed_ = 0;
  search_backoff_level_ = 0;
  if (search_pending_) {
    resync_times_.push_back(simulator_.now() - search_started_);
    search_pending_ = false;
  }
  cycle_ = sim::Duration::microseconds(payload->cycle_us);
  slot_width_ = sim::Duration::microseconds(payload->slot_us);
  owners_ = payload->slot_owners;
  last_beacon_wire_bytes_ = packet.wire_size();

  const auto mine = std::find(owners_.begin(), owners_.end(), self_);
  my_slot_ = mine == owners_.end()
                 ? -1
                 : static_cast<int>(mine - owners_.begin());
  // After a reboot the table may still carry the pre-crash slot, but the
  // base station has not heard from this incarnation: re-associate
  // explicitly instead of silently resuming a grant that may be reclaimed
  // mid-cycle.  The flag clears once our own SSR is on the air.
  if (must_reassociate_) my_slot_ = -1;

  const NodeMacState before = state_;
  state_ = my_slot_ >= 0 ? NodeMacState::kJoined
                         : (state_ == NodeMacState::kJoined
                                ? NodeMacState::kSearching
                                : state_);
  if (state_ != before) {
    tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                 [&](sim::TraceMessage& m) {
                   m << "state " << to_string(before) << " -> "
                     << to_string(state_);
                 });
  }
  if (state_ == NodeMacState::kJoined && rejoin_pending_) {
    rejoin_times_.push_back(simulator_.now() - reboot_at_);
    rejoin_pending_ = false;
  }

  // Anchor the cycle at the instant the beacon's first bit hit the air.
  last_cycle_start_ = rx_time - beacon_air_estimate();
  schedule_cycle(last_cycle_start_);
}

void NodeMac::schedule_cycle(sim::TimePoint cycle_start) {
  const sim::TimePoint now = simulator_.now();
  sim::TimePoint earliest_radio_use = sim::TimePoint::max();

  // A re-anchored plan supersedes whatever the previous cycle armed: a
  // slot_tx left over from a dead-reckoned cycle keeps the stale anchor
  // and would fire inside someone else's slot.
  cancel_cycle_timers();

  // 1. Our data slot, if we own one and have something to say.  Data slot i
  //    occupies [cycle_start + (1+i)*slot, +slot).  On a dead-reckoned
  //    cycle the slot layout may have changed behind our back wherever the
  //    base station can move slots (dynamic cycles shrink when a slot is
  //    reclaimed, shifting every later index; static reclamation regrants
  //    freed slots): transmitting on the stale layout would land inside
  //    someone else's slot, so the payload waits for a confirmed beacon.
  const bool layout_may_shift =
      config_.variant == TdmaVariant::kDynamic ||
      config_.reclaim_after_cycles > 0;
  const bool stale_layout = missed_ > 0 && layout_may_shift;
  if (stale_layout && my_slot_ >= 0 && !tx_queue_.empty()) {
    ++stats_.slot_tx_deferred;
    tracer_.emit(now, sim::TraceCategory::kMac, trace_node_,
                 [](sim::TraceMessage& m) {
                   m << "slot tx deferred (dead-reckoned layout)";
                 });
  }
  if (my_slot_ >= 0 && !tx_queue_.empty() && !stale_layout) {
    const sim::TimePoint slot_start =
        cycle_start + slot_width_ * (1 + my_slot_);
    if (slot_start > now) {
      slot_timer_ = os_.timers().start_oneshot(
          "mac.slot_tx", slot_start - now, [this] {
            slot_timer_ = os::TimerService::kInvalidTimer;
            transmit_queued();
          });
      earliest_radio_use = std::min(earliest_radio_use, slot_start);
    }
  }

  // 2. Slot request when we are not (yet) in the table.
  if (my_slot_ < 0 && (state_ == NodeMacState::kSearching ||
                       state_ == NodeMacState::kJoining)) {
    send_slot_request(cycle_start);
    earliest_radio_use = now;  // SSR timing is internal; skip power-down
  }

  // 3. Next beacon wake-up, guard time ahead of the expectation.
  const sim::TimePoint expected_next = cycle_start + cycle_;
  const sim::Duration guard = config_.guard(cycle_);
  const sim::TimePoint wake = expected_next - guard;
  if (wake > now) {
    wake_timer_ = os_.timers().start_oneshot(
        "mac.beacon_wake", wake - now, [this] {
          wake_timer_ = os::TimerService::kInvalidTimer;
          wake_for_beacon();
        });
    earliest_radio_use = std::min(earliest_radio_use, wake);
  } else {
    // Degenerate guard (cycle shorter than guard): stay listening.
    wake_for_beacon();
    earliest_radio_use = now;
  }

  if (earliest_radio_use > now) plan_power_down(earliest_radio_use);
}

void NodeMac::plan_power_down(sim::TimePoint next_use) {
  if (!config_.radio_power_down) return;
  auto& radio = os_.radio().radio();
  if (os_.radio().listening() || os_.radio().sending()) return;
  if (radio.state() != hw::RadioState::kStandby) return;

  const sim::TimePoint now = simulator_.now();
  const sim::Duration lead =
      radio.params().powerup_time + config_.power_up_margin;
  // Not worth the crystal restart when the idle stretch is too short.
  if (next_use - now <= lead + config_.power_up_margin) return;

  radio.power_down();
  stop_timer(powerup_timer_);  // stale wake-up from a superseded plan
  powerup_timer_ = os_.timers().start_oneshot(
      "mac.radio_powerup", (next_use - now) - lead, [this] {
        powerup_timer_ = os::TimerService::kInvalidTimer;
        auto& r = os_.radio().radio();
        if (r.state() == hw::RadioState::kPowerDown) {
          r.power_up();
        }
      });
}

void NodeMac::send_slot_request(sim::TimePoint cycle_start) {
  const sim::TimePoint now = simulator_.now();
  // ~1 ms after TX kickoff covers FIFO clock-in + settling + the burst.
  const sim::Duration tx_window = sim::Duration::milliseconds(1);

  std::uint8_t wanted = 0xFF;
  sim::TimePoint ssr_at;

  if (config_.variant == TdmaVariant::kStatic) {
    // Pick a random free slot and a random jitter inside it.  A rebooted
    // node still listed in the table may also re-request its own old slot —
    // otherwise a full network would leave it no slot to re-associate
    // through (the base station answers by repeating the existing grant).
    std::vector<std::uint8_t> free_slots;
    for (std::size_t i = 0; i < owners_.size(); ++i) {
      if (owners_[i] == kFreeSlot ||
          (must_reassociate_ && owners_[i] == self_)) {
        free_slots.push_back(static_cast<std::uint8_t>(i));
      }
    }
    if (free_slots.empty()) return;  // network full: stay searching
    wanted = free_slots[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(free_slots.size()) - 1))];
    const sim::TimePoint slot_start =
        cycle_start + slot_width_ * (1 + wanted);
    const double span =
        (slot_width_ - tx_window).to_seconds();
    ssr_at = slot_start +
             sim::Duration::from_seconds(rng_.uniform(0.0, std::max(0.0, span)));
  } else {
    // Dynamic: random instant inside the ES window (tail of slot 0).
    const sim::TimePoint es_start =
        cycle_start + beacon_air_estimate() +
        sim::Duration::from_microseconds(200);
    const sim::TimePoint es_end = cycle_start + slot_width_;
    const double span = (es_end - es_start - tx_window).to_seconds();
    if (span <= 0) return;
    ssr_at = es_start + sim::Duration::from_seconds(rng_.uniform(0.0, span));
  }

  if (ssr_at <= now) return;  // window already passed this cycle

  state_ = NodeMacState::kJoining;
  stop_timer(ssr_timer_);  // one pending request at a time
  ssr_timer_ = os_.timers().start_oneshot("mac.ssr", ssr_at - now, [this, wanted] {
    ssr_timer_ = os::TimerService::kInvalidTimer;
    os_.scheduler().post("mac.join", 500, [this, wanted, epoch = boot_epoch_] {
      if (epoch != boot_epoch_) return;
      if (os_.radio().sending() || os_.radio().listening()) return;
      net::Packet req;
      req.header.dest = bs_address_;
      req.header.src = self_;
      req.header.type = net::PacketType::kSlotRequest;
      req.header.seq = data_seq_++;
      req.payload = {wanted};
      ++stats_.slot_requests_sent;
      // The re-association handshake is this SSR: once it is on the air the
      // node may trust the table again (the base station repeats the grant
      // of a slot it still holds).
      must_reassociate_ = false;
      tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                   [&](sim::TraceMessage& m) {
                     m << "SSR (slot " << wanted << ")";
                   });
      os_.radio().send(req, [this] {
        if (!config_.fast_grant) return;
        // Keep the receiver open briefly: the base station answers an
        // accepted request with a directed SlotGrant right away.
        os_.radio().start_listen();
        grant_timer_ = os_.timers().start_oneshot(
            "mac.grant_timeout", config_.grant_wait, [this] {
              grant_timer_ = os::TimerService::kInvalidTimer;
              if (os_.radio().listening() &&
                  os_.radio().radio().state() != hw::RadioState::kRxClockOut) {
                os_.radio().stop_listen();
              }
            });
      });
    });
  });
}

void NodeMac::process_grant(const net::Packet& packet) {
  const auto grant = net::SlotGrantPayload::deserialize(packet.payload);
  if (!grant) return;
  ++stats_.grants_received;
  if (grant_timer_ != os::TimerService::kInvalidTimer) {
    os_.timers().stop(grant_timer_);
    grant_timer_ = os::TimerService::kInvalidTimer;
  }
  if (os_.radio().listening()) os_.radio().stop_listen();

  my_slot_ = grant->slot_index;
  state_ = NodeMacState::kJoined;
  if (rejoin_pending_) {
    rejoin_times_.push_back(simulator_.now() - reboot_at_);
    rejoin_pending_ = false;
  }
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "fast grant: slot " << my_slot_;
               });

  // In the static variant the granted slot may still lie ahead inside the
  // current cycle; use it.  (Dynamic grants extend the cycle beyond the
  // in-flight one, so the first transmission waits for the next beacon.)
  if (config_.variant == TdmaVariant::kStatic && !tx_queue_.empty() &&
      !cycle_.is_zero()) {
    const sim::TimePoint slot_start =
        last_cycle_start_ + slot_width_ * (1 + my_slot_);
    const sim::TimePoint now = simulator_.now();
    if (slot_start > now && slot_timer_ == os::TimerService::kInvalidTimer) {
      slot_timer_ = os_.timers().start_oneshot(
          "mac.slot_tx", slot_start - now, [this] {
            slot_timer_ = os::TimerService::kInvalidTimer;
            transmit_queued();
          });
    }
  }
}

void NodeMac::process_ack(const net::Packet&) {
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  ++stats_.acks_received;
  if (ack_timer_ != os::TimerService::kInvalidTimer) {
    os_.timers().stop(ack_timer_);
    ack_timer_ = os::TimerService::kInvalidTimer;
  }
  if (os_.radio().listening()) os_.radio().stop_listen();
  // Delivery confirmed: retire the frame at the head of the queue.
  if (!tx_queue_.empty()) tx_queue_.pop_front();
  retries_ = 0;
}

void NodeMac::on_ack_timeout() {
  ack_timer_ = os::TimerService::kInvalidTimer;
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  if (os_.radio().listening() &&
      os_.radio().radio().state() != hw::RadioState::kRxClockOut) {
    os_.radio().stop_listen();
  }
  if (++retries_ > config_.max_retries) {
    // Give up on this payload; the next one gets a fresh attempt budget.
    if (!tx_queue_.empty()) tx_queue_.pop_front();
    ++stats_.retry_drops;
    retries_ = 0;
  }
}

void NodeMac::transmit_queued() {
  if (tx_queue_.empty() || my_slot_ < 0) return;
  // In ACK mode the payload stays at the head until it is acknowledged
  // (or abandoned); otherwise transmission is fire-and-forget.
  std::vector<std::uint8_t> payload = tx_queue_.front();
  if (!config_.ack_data) tx_queue_.pop_front();

  const std::uint64_t cycles = 260 + 6 * payload.size();
  os_.scheduler().post(
      "mac.prepare_tx", cycles,
      [this, payload = std::move(payload), epoch = boot_epoch_] {
        if (epoch != boot_epoch_) return;
        if (os_.radio().sending() || os_.radio().listening()) return;
        net::Packet data;
        data.header.dest = bs_address_;
        data.header.src = self_;
        data.header.type = net::PacketType::kData;
        data.header.seq = data_seq_++;
        data.payload = payload;
        ++stats_.data_sent;
        if (config_.ack_data && retries_ > 0) ++stats_.retransmissions;
        tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                     [&](sim::TraceMessage& m) {
                       m << "Si data tx slot=" << my_slot_
                         << " len=" << data.payload.size();
                     });
        os_.radio().send(data, [this] {
          if (!config_.ack_data) return;
          // Hold the receiver open for the in-slot acknowledgement.
          awaiting_ack_ = true;
          os_.radio().start_listen();
          ack_timer_ = os_.timers().start_oneshot(
              "mac.ack_timeout", config_.ack_wait, [this] { on_ack_timeout(); });
        });
      });
}

void NodeMac::wake_for_beacon() {
  if (state_ == NodeMacState::kBooting) return;
  if (!os_.radio().listening() && !os_.radio().sending()) {
    os_.radio().start_listen();
  }
  // Declare the beacon missed if it has not arrived by
  // guard (to the expectation) + guard (symmetric late bound) + air + margin.
  const sim::Duration guard = config_.guard(cycle_);
  const sim::Duration timeout =
      guard + guard + beacon_air_estimate() + config_.beacon_timeout_margin;
  timeout_timer_ = os_.timers().start_oneshot(
      "mac.beacon_timeout", timeout, [this] { on_beacon_timeout(); });
}

void NodeMac::on_beacon_timeout() {
  timeout_timer_ = os::TimerService::kInvalidTimer;
  if (os_.radio().radio().state() == hw::RadioState::kRxClockOut) {
    // The beacon is being clocked out of the FIFO right now; give it the
    // benefit of the doubt.
    timeout_timer_ = os_.timers().start_oneshot(
        "mac.beacon_timeout", sim::Duration::from_microseconds(500),
        [this] { on_beacon_timeout(); });
    return;
  }

  ++stats_.beacons_missed;
  ++missed_;
  if (os_.radio().listening()) os_.radio().stop_listen();

  if (missed_ > config_.missed_beacon_limit || cycle_.is_zero()) {
    enter_search();
    return;
  }

  // Dead reckoning: assume the beacon fired exactly on schedule and plan
  // the cycle from the expectation.
  last_cycle_start_ = last_cycle_start_ + cycle_;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "beacon missed (" << missed_ << "), dead reckoning";
               });
  schedule_cycle(last_cycle_start_);
}

}  // namespace bansim::mac
