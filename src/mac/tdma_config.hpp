// Configuration of the TDMA MAC (Section 3.2.2).
//
// Two variants share one parameter set:
//  * static TDMA (Figure 2): the cycle holds a beacon slot (SB) plus a
//    fixed number of data slots; nodes request a specific free slot (SSR)
//    and keep it.  Cycle length = slot * (1 + max_slots) is a compile-time
//    property of the deployment.
//  * dynamic TDMA (Figure 3): the cycle starts as SB + empty-slot window
//    (ES) and grows by one data slot per admitted node, so cycle length =
//    slot * (1 + joined_nodes).  Slot requests are transmitted at a random
//    time inside ES to decorrelate contenders.
//
// Slot 0 is always the beacon slot; its leading part carries the beacon on
// the air and (dynamic variant) the remainder is the ES request window.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace bansim::mac {

enum class TdmaVariant : std::uint8_t { kStatic, kDynamic };

[[nodiscard]] constexpr const char* to_string(TdmaVariant v) {
  return v == TdmaVariant::kStatic ? "static" : "dynamic";
}

struct TdmaConfig {
  TdmaVariant variant{TdmaVariant::kStatic};

  /// BAN/cell identifier for coexistence: beacons carry it, nodes ignore
  /// beacons of foreign cells, and the base station's radio address is
  /// derived from it so co-located BANs do not cross-deliver.
  std::uint8_t pan_id{0};

  /// Radio address the base station of `pan` listens on.
  [[nodiscard]] static net::NodeId bs_address(std::uint8_t pan) {
    return static_cast<net::NodeId>(net::kBaseStationId +
                                    (static_cast<net::NodeId>(pan) << 8));
  }

  /// Width of every slot (beacon slot included).
  sim::Duration slot{sim::Duration::milliseconds(10)};

  /// Static variant only: number of data slots in the (fixed) cycle.
  std::uint8_t max_slots{5};

  /// Beacon-tracking guard: a node wakes its receiver
  ///   guard_fixed + guard_fraction * cycle
  /// before the expected beacon.  The fixed part absorbs scheduling and
  /// settling jitter; the proportional part covers worst-case mutual DCO
  /// drift accumulated over one cycle.
  sim::Duration guard_fixed{sim::Duration::from_milliseconds(2.5)};
  double guard_fraction{0.005};

  /// Consecutive beacon losses tolerated (dead reckoning) before the node
  /// falls back to a full resynchronization listen.
  std::uint8_t missed_beacon_limit{4};

  /// Extra listen time after the expected beacon end before declaring the
  /// beacon missed.
  sim::Duration beacon_timeout_margin{sim::Duration::from_milliseconds(0.5)};

  /// Fast grants: after accepting an SSR the base station immediately
  /// transmits a directed SlotGrant, and a requesting node keeps its
  /// receiver open for `grant_wait` after the SSR to catch it — joining one
  /// cycle earlier at a small one-off listen cost.  With this off, grants
  /// are learned from the next beacon's slot table only.
  bool fast_grant{true};
  sim::Duration grant_wait{sim::Duration::milliseconds(3)};

  /// Link-layer acknowledgements for data frames: the base station answers
  /// every data frame with a short directed ACK inside the same slot; the
  /// node holds the payload until the ACK and retries it in its next slot
  /// otherwise (up to `max_retries` attempts).  Off by default — the
  /// paper's validation tables run without ARQ.
  bool ack_data{false};
  sim::Duration ack_wait{sim::Duration::from_milliseconds(1.5)};
  std::uint8_t max_retries{3};

  /// Power the radio fully down (1 uA) instead of leaving it in standby
  /// (12 uA) between MAC activities, paying the 3 ms crystal start-up
  /// ahead of each use.  The paper's platform exposes exactly this knob
  /// ("built-in power down modes allow to switch-off the radio when not
  /// used"); the ablation bench quantifies how little it matters next to
  /// the listen windows.
  bool radio_power_down{false};
  sim::Duration power_up_margin{sim::Duration::from_milliseconds(0.5)};

  /// Dynamic-variant slot reclamation: a slot whose owner has been silent
  /// for this many consecutive cycles is released (the cycle shrinks, and
  /// in the static variant the slot reopens for requests).  0 disables
  /// reclamation; leave it off for sparse-traffic applications (Rpeak)
  /// where silence does not mean death.
  std::uint32_t reclaim_after_cycles{0};

  /// Bound on the transmit queue: oldest payloads are dropped beyond it.
  std::size_t tx_queue_cap{8};

  /// Bounded resynchronization search.  Zero keeps the legacy behaviour
  /// (listen continuously until a beacon arrives).  Non-zero: the node
  /// listens for `search_listen`, then power-cycles the radio (which also
  /// clears a locked-up receiver) and sleeps a backoff that grows by
  /// `search_backoff_factor` from `search_backoff_base` up to
  /// `search_backoff_max` before the next listen window.  The bound is what
  /// keeps a node with a dead base station (or a wedged receiver) from
  /// burning its battery in RX forever.
  sim::Duration search_listen{sim::Duration::zero()};
  sim::Duration search_backoff_base{sim::Duration::milliseconds(50)};
  double search_backoff_factor{2.0};
  sim::Duration search_backoff_max{sim::Duration::milliseconds(800)};

  /// Static variant: the full cycle length implied by the slot plan.
  [[nodiscard]] sim::Duration static_cycle() const {
    return slot * (1 + static_cast<std::int64_t>(max_slots));
  }

  /// Guard ahead of the expected beacon for a given cycle length.
  [[nodiscard]] sim::Duration guard(sim::Duration cycle) const {
    return guard_fixed + cycle.scaled(guard_fraction);
  }

  /// Convenience: a static-TDMA plan with `data_slots` slots fitting a
  /// target cycle length (the paper states cycles, e.g. 30 ms for 5 nodes).
  [[nodiscard]] static TdmaConfig static_plan(sim::Duration cycle,
                                              std::uint8_t data_slots) {
    TdmaConfig cfg;
    cfg.variant = TdmaVariant::kStatic;
    cfg.max_slots = data_slots;
    cfg.slot = cycle / (1 + static_cast<std::int64_t>(data_slots));
    return cfg;
  }

  /// Convenience: the paper's dynamic plan (10 ms slots).
  [[nodiscard]] static TdmaConfig dynamic_plan(
      sim::Duration slot_width = sim::Duration::milliseconds(10)) {
    TdmaConfig cfg;
    cfg.variant = TdmaVariant::kDynamic;
    cfg.slot = slot_width;
    cfg.max_slots = 0;  // unused by the dynamic variant
    return cfg;
  }

  /// Sanity-checks the parameter set; returns an empty string when valid,
  /// otherwise a description of the first problem found.  Degenerate values
  /// here used to be accepted silently and produce nodes that join but can
  /// never deliver (max_retries = 0 with ACKs, a zero-capacity queue) or
  /// protocol hazards (a dead-reckoner outliving the reclaim horizon can
  /// transmit into a slot the base station has already regranted).
  [[nodiscard]] std::string validate() const {
    if (slot <= sim::Duration::zero()) return "tdma: slot width must be > 0";
    if (variant == TdmaVariant::kStatic && max_slots == 0) {
      return "tdma: static variant needs max_slots >= 1";
    }
    if (tx_queue_cap == 0) {
      return "tdma: tx_queue_cap = 0 drops every payload before transmission";
    }
    if (ack_data && max_retries == 0) {
      return "tdma: ack_data with max_retries = 0 abandons every payload on "
             "the first lost ACK; use max_retries >= 1 or disable ack_data";
    }
    if (guard_fraction < 0.0 || guard_fraction >= 0.5) {
      return "tdma: guard_fraction must be in [0, 0.5)";
    }
    if (reclaim_after_cycles != 0 &&
        reclaim_after_cycles <= missed_beacon_limit) {
      return "tdma: reclaim_after_cycles must exceed missed_beacon_limit (a "
             "dead-reckoning node may transmit for missed_beacon_limit "
             "cycles after its last beacon; reclaiming sooner regrants a "
             "slot that is still in use)";
    }
    if (!search_listen.is_zero()) {
      if (search_backoff_base <= sim::Duration::zero()) {
        return "tdma: search_backoff_base must be > 0";
      }
      if (search_backoff_factor < 1.0) {
        return "tdma: search_backoff_factor must be >= 1";
      }
      if (search_backoff_max < search_backoff_base) {
        return "tdma: search_backoff_max must be >= search_backoff_base";
      }
    }
    return {};
  }
};

/// Owner value of a free slot in the beacon's slot table.
inline constexpr std::uint16_t kFreeSlot = 0xFFFE;

}  // namespace bansim::mac
