// The MAC seam: every protocol pair (node + base station) in the zoo
// implements these interfaces, so the node composition layer
// (core::NodeStack / core::BaseStationStack), the fault subsystem and the
// campaign runners hold one polymorphic MAC instead of one member per
// protocol.
//
// Contract notes (see DESIGN.md "MAC seam & protocol zoo"):
//  * start() is called exactly once, at the node's staggered boot instant.
//  * queue_payload() never blocks; a full queue or a crashed MAC counts the
//    payload as queued-then-dropped, so PDR accounting stays conservative.
//  * crash()/reboot() are the fault subsystem's routing points.  A crashed
//    MAC must go quiet immediately (timers stopped, radio powered down,
//    queue cleared) and must tolerate scheduler closures from before the
//    crash firing afterwards (the boot-epoch pattern — posted tasks cannot
//    be cancelled).  reboot() restarts the protocol's own association
//    procedure from scratch.
//  * stats_snapshot() is the protocol-neutral projection of the per-MAC
//    stats struct.  Counters a protocol has no notion of (beacons for
//    ALOHA, say) stay zero; campaign reports treat zero as "not a thing
//    here", not "never happened".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace bansim::mac {

/// Wire protocol a cell speaks.  The TDMA static/dynamic split is a real
/// protocol difference (slot-request semantics change), so it is part of
/// the tag rather than hidden behind kTdma.
enum class Protocol : std::uint8_t {
  kStaticTdma,
  kDynamicTdma,
  kAloha,
  kCsmaCa,
};

[[nodiscard]] constexpr const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kStaticTdma: return "static_tdma";
    case Protocol::kDynamicTdma: return "dynamic_tdma";
    case Protocol::kAloha: return "aloha";
    case Protocol::kCsmaCa: return "csma_ca";
  }
  return "?";
}

/// True for protocols that arbitrate the medium by contention (collisions
/// between data frames are legal outcomes, not invariant violations).
[[nodiscard]] constexpr bool is_contention(Protocol p) {
  return p == Protocol::kAloha || p == Protocol::kCsmaCa;
}

/// Protocol-neutral stats projection; the campaign runners and the fuzzer
/// oracles read this instead of downcasting to a per-protocol stats struct.
struct MacStatsSnapshot {
  std::uint64_t payloads_queued{0};
  std::uint64_t payloads_dropped{0};
  std::uint64_t data_sent{0};
  std::uint64_t acks_received{0};
  std::uint64_t retransmissions{0};
  std::uint64_t retry_drops{0};
  std::uint64_t beacons_received{0};
  std::uint64_t beacons_missed{0};
  std::uint64_t resyncs{0};
  std::uint64_t crashes{0};
  std::uint64_t reboots{0};
};

class NodeMacBase {
 public:
  virtual ~NodeMacBase() = default;

  virtual void start() = 0;
  virtual void queue_payload(std::vector<std::uint8_t> payload) = 0;

  /// Associated with its base station.  Beaconed protocols report sync
  /// state; protocols with no association procedure report readiness.
  [[nodiscard]] virtual bool joined() const = 0;

  [[nodiscard]] virtual std::size_t queue_depth() const = 0;
  [[nodiscard]] virtual std::size_t queue_capacity() const = 0;

  // Fault-routing hooks.
  virtual void crash() = 0;
  virtual void reboot() = 0;
  [[nodiscard]] virtual bool crashed() const = 0;

  /// Run-reset hook of the cell reuse protocol (DESIGN.md "Run reset
  /// protocol"): restores every run-mutable member to its constructed
  /// value — unlike reboot(), which models a fault and keeps latency
  /// samples, stats and the boot epoch.  `rng` is this node's freshly
  /// derived per-protocol stream for the new run's seed; the caller has
  /// already cleared the event queue and reset OS + board underneath.
  /// start() may be called again afterwards, exactly once.
  virtual void reset_for_reuse(sim::Rng rng) = 0;

  [[nodiscard]] virtual Protocol protocol() const = 0;
  [[nodiscard]] virtual MacStatsSnapshot stats_snapshot() const = 0;

  /// Recovery latency observations (beacon reacquisition after a loss-of-
  /// sync, re-association after a reboot).  Protocols without the notion
  /// return empty vectors.
  [[nodiscard]] virtual const std::vector<sim::Duration>& resync_times() const {
    return kNoDurations;
  }
  [[nodiscard]] virtual const std::vector<sim::Duration>& rejoin_times() const {
    return kNoDurations;
  }

 protected:
  static const std::vector<sim::Duration> kNoDurations;
};

class BaseStationMacBase {
 public:
  /// Payload delivery upcall shared by every protocol: source node, payload
  /// bytes, arrival time.
  using DataHandler = std::function<void(net::NodeId, std::span<const std::uint8_t>,
                                         sim::TimePoint)>;

  virtual ~BaseStationMacBase() = default;

  virtual void start() = 0;
  virtual void set_data_handler(DataHandler handler) = 0;

  /// Run-reset (see NodeMacBase::reset_for_reuse).  The data handler
  /// survives — it is the owner's wiring, not run state.
  virtual void reset_for_reuse() = 0;

  /// Nodes currently associated.  Contention protocols with no explicit
  /// association report the number of distinct sources heard from.
  [[nodiscard]] virtual std::size_t joined_nodes() const = 0;

  [[nodiscard]] virtual Protocol protocol() const = 0;
};

}  // namespace bansim::mac
