// Unslotted random-access MAC (pure-ALOHA class) — the baseline TDMA is
// judged against.
//
// The nRF2401 has no clear-channel assessment, so the only contention MAC
// it can run is transmit-and-hope: a node sends a queued payload after a
// random dither, optionally waits for the base station's ACK, and backs
// off exponentially on silence.  No beacons, no synchronization, no listen
// windows — transmit-only radio duty on the nodes.
//
// The comparison bench shows the trade the paper's TDMA design makes: the
// random-access node spends *less* radio energy at low load (no beacon
// tracking) but collapses in delivery as offered load grows, while TDMA
// delivery stays at 100 % for a constant, predictable energy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "mac/tdma_config.hpp"
#include "net/packet.hpp"
#include "os/node_os.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::mac {

struct AlohaConfig {
  /// Uniform dither before every first transmission attempt.
  sim::Duration initial_dither{sim::Duration::milliseconds(2)};
  /// ACK-based retransmission (without it, fire and forget).
  bool ack_data{true};
  sim::Duration ack_wait{sim::Duration::from_milliseconds(1.5)};
  std::uint8_t max_retries{5};
  /// Backoff window doubles per retry, starting here.
  sim::Duration backoff_base{sim::Duration::milliseconds(4)};
};

struct AlohaNodeStats {
  std::uint64_t data_sent{0};
  std::uint64_t acks_received{0};
  std::uint64_t retransmissions{0};
  std::uint64_t retry_drops{0};
  std::uint64_t payloads_dropped{0};
};

/// Sensor-node side.
class AlohaNodeMac {
 public:
  AlohaNodeMac(sim::SimContext& context, os::NodeOs& node_os,
               const AlohaConfig& config, net::NodeId self, sim::Rng rng);

  void start();
  void queue_payload(std::vector<std::uint8_t> payload);

  [[nodiscard]] std::size_t queue_depth() const { return tx_queue_.size(); }
  [[nodiscard]] const AlohaNodeStats& stats() const { return stats_; }

  static constexpr std::size_t kMaxQueue = 16;

 private:
  void kick();            ///< schedules the next attempt if idle
  void attempt();         ///< transmits the head-of-queue payload
  void on_packet(const net::Packet& packet);
  void on_ack_timeout();

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  os::NodeOs& os_;
  AlohaConfig config_;
  net::NodeId self_;
  sim::Rng rng_;
  std::deque<std::vector<std::uint8_t>> tx_queue_;
  bool attempt_pending_{false};
  bool awaiting_ack_{false};
  std::uint8_t retries_{0};
  std::uint8_t seq_{0};
  bool ready_{false};
  os::TimerService::TimerId ack_timer_{os::TimerService::kInvalidTimer};
  AlohaNodeStats stats_;
};

/// Base-station side: always listening, ACKs every data frame.
class AlohaBaseStation {
 public:
  using DataHandler = std::function<void(
      net::NodeId, std::span<const std::uint8_t>, sim::TimePoint)>;

  AlohaBaseStation(sim::SimContext& context, os::NodeOs& node_os,
                   const AlohaConfig& config);

  void set_data_handler(DataHandler handler) { handler_ = std::move(handler); }
  void start();

  [[nodiscard]] std::uint64_t data_received() const { return data_received_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  void on_packet(const net::Packet& packet);

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  os::NodeOs& os_;
  AlohaConfig config_;
  DataHandler handler_;
  std::uint64_t data_received_{0};
  std::uint64_t acks_sent_{0};
};

}  // namespace bansim::mac
