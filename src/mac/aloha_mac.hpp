// Unslotted random-access MAC (pure-ALOHA class) — the baseline TDMA is
// judged against.
//
// The nRF2401 has no clear-channel assessment, so the only contention MAC
// it can run is transmit-and-hope: a node sends a queued payload after a
// random dither, optionally waits for the base station's ACK, and backs
// off exponentially on silence.  No beacons, no synchronization, no listen
// windows — transmit-only radio duty on the nodes.
//
// The comparison bench shows the trade the paper's TDMA design makes: the
// random-access node spends *less* radio energy at low load (no beacon
// tracking) but collapses in delivery as offered load grows, while TDMA
// delivery stays at 100 % for a constant, predictable energy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "mac/mac_base.hpp"
#include "mac/tdma_config.hpp"
#include "net/packet.hpp"
#include "os/node_os.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::mac {

struct AlohaConfig {
  /// Uniform dither before every first transmission attempt.
  sim::Duration initial_dither{sim::Duration::milliseconds(2)};
  /// ACK-based retransmission (without it, fire and forget).
  bool ack_data{true};
  sim::Duration ack_wait{sim::Duration::from_milliseconds(1.5)};
  std::uint8_t max_retries{5};
  /// Backoff window doubles per retry, starting here.
  sim::Duration backoff_base{sim::Duration::milliseconds(4)};
};

struct AlohaNodeStats {
  std::uint64_t data_sent{0};
  std::uint64_t acks_received{0};
  std::uint64_t retransmissions{0};
  std::uint64_t retry_drops{0};
  std::uint64_t payloads_queued{0};
  std::uint64_t payloads_dropped{0};
  std::uint64_t crashes{0};
  std::uint64_t reboots{0};
};

/// Sensor-node side.
class AlohaNodeMac final : public NodeMacBase {
 public:
  AlohaNodeMac(sim::SimContext& context, os::NodeOs& node_os,
               const AlohaConfig& config, net::NodeId self, sim::Rng rng);

  void start() override;
  void queue_payload(std::vector<std::uint8_t> payload) override;

  /// There is no association handshake: a node is "joined" as soon as its
  /// radio finished the cold-boot power-up.
  [[nodiscard]] bool joined() const override { return ready_; }
  [[nodiscard]] std::size_t queue_depth() const override {
    return tx_queue_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const override {
    return kMaxQueue;
  }
  [[nodiscard]] const AlohaNodeStats& stats() const { return stats_; }

  [[nodiscard]] Protocol protocol() const override { return Protocol::kAloha; }
  [[nodiscard]] MacStatsSnapshot stats_snapshot() const override;

  // --- Fault interface -----------------------------------------------------

  /// Hard fault: queue, retry state and armed timers are lost, posted MAC
  /// work is invalidated, the radio is cut to power-down.
  void crash() override;
  /// Cold boot after crash(): powers the radio back up; transmission
  /// resumes as soon as the application queues the next payload.
  void reboot() override;
  [[nodiscard]] bool crashed() const override { return crashed_; }

  void reset_for_reuse(sim::Rng rng) override;

  static constexpr std::size_t kMaxQueue = 16;

 private:
  void kick();            ///< schedules the next attempt if idle
  void attempt();         ///< transmits the head-of-queue payload
  void on_packet(const net::Packet& packet);
  void on_ack_timeout();
  void stop_timer(os::TimerService::TimerId& id);

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  sim::TraceNodeId trace_node_;
  os::NodeOs& os_;
  AlohaConfig config_;
  net::NodeId self_;
  sim::Rng rng_;
  std::deque<std::vector<std::uint8_t>> tx_queue_;
  bool attempt_pending_{false};
  bool awaiting_ack_{false};
  std::uint8_t retries_{0};
  std::uint8_t seq_{0};
  bool ready_{false};
  os::TimerService::TimerId ack_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId attempt_timer_{os::TimerService::kInvalidTimer};
  /// Crash teardown cannot cancel already-posted scheduler tasks; every
  /// posted closure captures the epoch at post time and no-ops if a crash
  /// bumped it since (see NodeMac::boot_epoch_).
  std::uint64_t boot_epoch_{0};
  bool crashed_{false};
  AlohaNodeStats stats_;
};

/// Base-station side: always listening, ACKs every data frame.
class AlohaBaseStation final : public BaseStationMacBase {
 public:
  using DataHandler = BaseStationMacBase::DataHandler;

  AlohaBaseStation(sim::SimContext& context, os::NodeOs& node_os,
                   const AlohaConfig& config);

  void set_data_handler(DataHandler handler) override {
    handler_ = std::move(handler);
  }
  void start() override;

  void reset_for_reuse() override;

  [[nodiscard]] std::uint64_t data_received() const { return data_received_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

  /// Distinct sources heard so far — contention MACs have no association
  /// table, so "joined" means "has gotten at least one frame through".
  [[nodiscard]] std::size_t joined_nodes() const override {
    return sources_heard_.size();
  }
  [[nodiscard]] Protocol protocol() const override { return Protocol::kAloha; }

 private:
  void on_packet(const net::Packet& packet);

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  os::NodeOs& os_;
  AlohaConfig config_;
  DataHandler handler_;
  std::vector<net::NodeId> sources_heard_;  ///< sorted, distinct
  std::uint64_t data_received_{0};
  std::uint64_t acks_sent_{0};
};

}  // namespace bansim::mac
