// Beacon-enabled slotted CSMA/CA in the 802.15.4 style — the contention
// protocol that proves the MAC seam.
//
// Superframe layout (anchored, like TDMA, at the instant the beacon's
// first bit hits the air):
//
//   | beacon | CAP (contention, slotted CSMA/CA) | CFP (GTS slots) | guard |
//
// Nodes synchronize to the beacon exactly as the TDMA MAC does (guard-time
// wake-up, dead reckoning up to a missed-beacon limit, search fallback).
// Inside the CAP a node with a queued payload runs the standard slotted
// CSMA/CA algorithm: NB=0, BE=macMinBE; delay a random number of backoff
// units in [0, 2^BE-1] aligned to the CAP's backoff-slot boundaries, then
// perform a CCA; on a busy channel NB++ and BE=min(BE+1, macMaxBE) until
// NB exceeds macMaxCSMABackoffs (channel-access failure).  Every random
// draw comes from the node's named SimContext RNG stream, so a run is
// bit-identical between serial and parallel replay.
//
// The nRF2401 itself has no CCA (see aloha_mac.hpp); this MAC models the
// CCA-capable radio the 802.15.4 comparison needs as an energy-detect
// sample of the medium while the receiver is on — the simulator's channel
// answers whether any audible frame is in flight.  The RX current burned
// during backoff + CCA is exactly the contention cost the energy model is
// supposed to expose.
//
// The optional CFP reuses the TDMA grant machinery verbatim: a node asks
// with kSlotRequest (sent through CSMA contention), the base station
// answers with kSlotGrant, and the beacon's slot-owner table announces the
// GTS layout — a granted node transmits in its GTS slot and skips the CAP.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mac/mac_base.hpp"
#include "mac/tdma_config.hpp"
#include "net/packet.hpp"
#include "os/node_os.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::mac {

struct CsmaConfig {
  /// PAN identity; the base station address derives from it exactly as in
  /// TDMA so foreign-cell filtering works unchanged.
  std::uint16_t pan_id{0};

  /// Superframe (beacon-to-beacon) length, CAP + CFP + guard included.
  sim::Duration cycle{sim::Duration::milliseconds(30)};

  /// aUnitBackoffPeriod: the CAP's backoff-slot width.
  sim::Duration backoff_unit{sim::Duration::from_microseconds(320)};
  std::uint8_t min_be{3};        ///< macMinBE
  std::uint8_t max_be{5};        ///< macMaxBE
  std::uint8_t max_backoffs{4};  ///< macMaxCSMABackoffs
  /// CCA energy-detect window (8 symbols at 802.15.4 rates).
  sim::Duration cca{sim::Duration::from_microseconds(128)};

  /// Link-layer acknowledgements + retransmission budget per payload.
  bool ack_data{true};
  sim::Duration ack_wait{sim::Duration::from_milliseconds(1.5)};
  std::uint8_t max_retries{3};

  /// Contention-free period: GTS slot count (0 disables the CFP) and width.
  std::uint8_t gts_slots{0};
  sim::Duration gts_slot{sim::Duration::milliseconds(5)};

  /// Beacon-tracking guard, mirroring TdmaConfig::guard().
  sim::Duration guard_fixed{sim::Duration::from_microseconds(2500)};
  double guard_fraction{0.005};
  std::uint8_t missed_beacon_limit{4};
  sim::Duration beacon_timeout_margin{sim::Duration::from_microseconds(500)};

  std::size_t tx_queue_cap{8};

  [[nodiscard]] sim::Duration guard() const {
    return guard_fixed + cycle.scaled(guard_fraction);
  }
  [[nodiscard]] sim::Duration cfp() const {
    return gts_slot * static_cast<std::int64_t>(gts_slots);
  }
  [[nodiscard]] static net::NodeId bs_address(std::uint16_t pan) {
    return TdmaConfig::bs_address(pan);
  }

  /// Hard-errors (throws std::invalid_argument) on an unusable geometry.
  void validate() const;
};

struct CsmaNodeStats {
  std::uint64_t beacons_received{0};
  std::uint64_t beacons_missed{0};
  std::uint64_t foreign_beacons{0};
  std::uint64_t resyncs{0};
  std::uint64_t data_sent{0};
  std::uint64_t payloads_queued{0};
  std::uint64_t payloads_dropped{0};
  std::uint64_t acks_received{0};
  std::uint64_t retransmissions{0};
  std::uint64_t retry_drops{0};
  std::uint64_t cca_attempts{0};   ///< CCA samples taken
  std::uint64_t cca_busy{0};       ///< samples that found the medium busy
  std::uint64_t cca_failures{0};   ///< NB exhausted (channel-access failure)
  std::uint64_t cap_deferrals{0};  ///< attempt pushed to the next superframe
  std::uint64_t gts_requests_sent{0};
  std::uint64_t grants_received{0};
  std::uint64_t gts_tx{0};         ///< data frames sent inside an owned GTS
  std::uint64_t crashes{0};
  std::uint64_t reboots{0};
};

class CsmaNodeMac final : public NodeMacBase {
 public:
  /// `use_gts`: request a guaranteed slot and transmit contention-free once
  /// granted (requires config.gts_slots > 0); otherwise pure CAP contention.
  CsmaNodeMac(sim::SimContext& context, os::NodeOs& node_os,
              const CsmaConfig& config, net::NodeId self, sim::Rng rng,
              bool use_gts = false);

  void start() override;
  void queue_payload(std::vector<std::uint8_t> payload) override;
  [[nodiscard]] bool joined() const override { return synced_; }
  [[nodiscard]] std::size_t queue_depth() const override {
    return tx_queue_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const override {
    return config_.tx_queue_cap;
  }
  void crash() override;
  void reboot() override;
  [[nodiscard]] bool crashed() const override { return crashed_; }
  void reset_for_reuse(sim::Rng rng) override;
  [[nodiscard]] Protocol protocol() const override { return Protocol::kCsmaCa; }
  [[nodiscard]] MacStatsSnapshot stats_snapshot() const override;
  [[nodiscard]] const std::vector<sim::Duration>& resync_times() const override {
    return resync_times_;
  }
  [[nodiscard]] const std::vector<sim::Duration>& rejoin_times() const override {
    return rejoin_times_;
  }

  [[nodiscard]] const CsmaNodeStats& stats() const { return stats_; }
  [[nodiscard]] int gts_slot_index() const { return my_gts_; }
  [[nodiscard]] bool uses_gts() const { return use_gts_; }

 private:
  void on_packet(const net::Packet& packet);
  void process_beacon(const net::Packet& packet, sim::TimePoint rx_time);
  void process_grant(const net::Packet& packet);
  void process_ack(const net::Packet& packet);
  void on_ack_timeout();

  /// Plans this superframe from the (estimated) beacon air-start instant:
  /// CAP contention or GTS transmission, GTS request if wanted, next wake.
  void schedule_cycle(sim::TimePoint cycle_start);
  void wake_for_beacon();
  void on_beacon_timeout();
  void enter_search();

  /// Starts a fresh CSMA/CA attempt (NB=0, BE=macMinBE) for the frame at
  /// the head of the queue — or the pending GTS request.
  void begin_attempt();
  /// Draws the backoff, aligns it to the next CAP backoff boundary and arms
  /// the CCA; defers to the next superframe when the CAP cannot fit the
  /// transmission any more.
  void next_backoff();
  void on_cca(sim::TimePoint boundary);
  void escalate_backoff();
  void transmit_head();
  void transmit_gts();
  void send_gts_request();

  void cancel_cycle_timers();
  void cancel_all_timers();
  void stop_timer(os::TimerService::TimerId& id);

  [[nodiscard]] sim::Duration beacon_air_estimate() const;
  [[nodiscard]] sim::Duration tx_air_estimate(std::size_t payload_bytes) const;
  /// End of the CAP in this superframe (CFP and guard excluded).
  [[nodiscard]] sim::TimePoint cap_end() const;

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  sim::TraceNodeId trace_node_;
  os::NodeOs& os_;
  CsmaConfig config_;
  net::NodeId self_;
  sim::Rng rng_;
  bool use_gts_;

  net::NodeId bs_address_;
  std::deque<std::vector<std::uint8_t>> tx_queue_;
  std::uint8_t data_seq_{0};

  bool synced_{false};
  bool searching_{true};
  sim::Duration cycle_known_{sim::Duration::zero()};  ///< from the last beacon
  sim::TimePoint last_cycle_start_;
  sim::TimePoint cap_start_;       ///< first backoff boundary this superframe
  std::size_t last_beacon_wire_bytes_{0};
  std::uint8_t missed_{0};
  /// GTS geometry as announced by the last beacon.
  std::uint8_t beacon_gts_slots_{0};
  sim::Duration beacon_gts_slot_{sim::Duration::zero()};
  int my_gts_{-1};

  // One CSMA/CA attempt in flight at a time.
  bool attempt_active_{false};
  bool attempt_is_request_{false};  ///< attempt carries the GTS request
  std::uint8_t nb_{0};
  std::uint8_t be_{0};
  std::uint8_t retries_{0};
  bool awaiting_ack_{false};
  bool awaiting_grant_{false};

  os::TimerService::TimerId wake_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId timeout_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId backoff_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId cca_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId ack_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId grant_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId gts_timer_{os::TimerService::kInvalidTimer};

  /// Boot-epoch guard, exactly the NodeMac pattern: posted closures capture
  /// the epoch and no-op if a crash bumped it since.
  std::uint64_t boot_epoch_{0};
  bool must_reassociate_{false};
  bool crashed_{false};
  sim::TimePoint search_started_{};
  bool search_pending_{false};
  sim::TimePoint reboot_at_{};
  bool rejoin_pending_{false};
  std::vector<sim::Duration> resync_times_;
  std::vector<sim::Duration> rejoin_times_;
  CsmaNodeStats stats_;
};

struct CsmaBaseStationStats {
  std::uint64_t beacons_sent{0};
  std::uint64_t data_received{0};
  std::uint64_t gts_requests{0};
  std::uint64_t gts_granted{0};
  std::uint64_t requests_rejected{0};
  std::uint64_t grants_sent{0};
  std::uint64_t acks_sent{0};
};

class CsmaBaseStationMac final : public BaseStationMacBase {
 public:
  CsmaBaseStationMac(sim::SimContext& context, os::NodeOs& node_os,
                     const CsmaConfig& config);

  void start() override;
  void set_data_handler(DataHandler handler) override {
    data_handler_ = std::move(handler);
  }
  void reset_for_reuse() override;
  [[nodiscard]] std::size_t joined_nodes() const override {
    return sources_heard_.size();
  }
  [[nodiscard]] Protocol protocol() const override { return Protocol::kCsmaCa; }

  [[nodiscard]] const CsmaBaseStationStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<net::NodeId>& gts_owners() const {
    return gts_owners_;
  }

 private:
  void begin_cycle();
  void emit_beacon();
  void on_packet(const net::Packet& packet);
  void handle_gts_request(const net::Packet& packet);
  /// One control frame (grant/ACK) squeezed into the listen period; frames
  /// that cannot drain before the next beacon are skipped (TDMA's rule).
  void send_control(net::Packet packet, std::uint64_t prep_cycles);
  [[nodiscard]] net::Packet make_beacon();

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  sim::TraceNodeId trace_node_;
  os::NodeOs& os_;
  CsmaConfig config_;
  DataHandler data_handler_;
  std::vector<net::NodeId> gts_owners_;  ///< size == config.gts_slots
  std::vector<net::NodeId> sources_heard_;  ///< distinct data sources (sorted)
  std::uint8_t beacon_seq_{0};
  sim::TimePoint next_cycle_at_;
  CsmaBaseStationStats stats_;
};

}  // namespace bansim::mac
