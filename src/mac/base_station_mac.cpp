#include "mac/base_station_mac.hpp"

#include <algorithm>
#include <cassert>

#include "phy/air_frame.hpp"

namespace bansim::mac {

BaseStationMac::BaseStationMac(sim::SimContext& context, os::NodeOs& node_os,
                               const TdmaConfig& config)
    : simulator_{context.simulator}, tracer_{context.tracer},
      trace_node_{tracer_.intern(node_os.node_name())}, os_{node_os},
      config_{config} {
  if (config_.variant == TdmaVariant::kStatic) {
    slot_owners_.assign(config_.max_slots, kFreeSlot);
    silent_cycles_.assign(config_.max_slots, 0);
  }
  os_.radio().radio().set_local_address(
      TdmaConfig::bs_address(config_.pan_id));
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

sim::Duration BaseStationMac::current_cycle() const {
  if (config_.variant == TdmaVariant::kStatic) return config_.static_cycle();
  // Dynamic: beacon slot + one slot per admitted node; the empty-slot
  // request window (ES) lives in the tail of the beacon slot.
  return config_.slot *
         (1 + static_cast<std::int64_t>(slot_owners_.size()));
}

std::size_t BaseStationMac::joined_nodes() const {
  return static_cast<std::size_t>(
      std::count_if(slot_owners_.begin(), slot_owners_.end(),
                    [](net::NodeId id) { return id != kFreeSlot; }));
}

void BaseStationMac::reset_for_reuse() {
  if (config_.variant == TdmaVariant::kStatic) {
    slot_owners_.assign(config_.max_slots, kFreeSlot);
    silent_cycles_.assign(config_.max_slots, 0);
  } else {
    slot_owners_.clear();
    silent_cycles_.clear();
  }
  beacon_seq_ = 0;
  next_cycle_at_ = sim::TimePoint{};
  stats_ = BaseStationStats{};
}

void BaseStationMac::start() {
  os_.radio().init([this] { begin_cycle(); });
}

net::Packet BaseStationMac::make_beacon() {
  net::BeaconPayload payload;
  payload.cycle_us =
      static_cast<std::uint32_t>(current_cycle().to_microseconds());
  payload.num_slots = static_cast<std::uint8_t>(slot_owners_.size());
  payload.slot_us = static_cast<std::uint32_t>(config_.slot.to_microseconds());
  payload.beacon_seq = beacon_seq_++;
  payload.pan_id = config_.pan_id;
  payload.slot_owners = slot_owners_;

  net::Packet beacon;
  beacon.header.dest = net::kBroadcastId;
  beacon.header.src = TdmaConfig::bs_address(config_.pan_id);
  beacon.header.type = net::PacketType::kBeacon;
  beacon.header.seq = payload.beacon_seq;
  beacon.payload = payload.serialize();
  return beacon;
}

void BaseStationMac::begin_cycle() {
  reclaim_silent_slots();

  // The cycle length for *this* cycle is fixed at beacon time; admissions
  // during the cycle take effect from the next beacon.
  const sim::Duration cycle = current_cycle();

  if (os_.radio().listening()) os_.radio().stop_listen();

  next_cycle_at_ = simulator_.now() + cycle;
  os_.scheduler().post("bs.emit_beacon", 380, [this] { emit_beacon(); });

  os_.timers().start_oneshot("mac.cycle", cycle, [this] { begin_cycle(); });
}

void BaseStationMac::emit_beacon() {
  if (os_.radio().sending()) {
    // A control frame is still draining out of the half-duplex radio;
    // the beacon goes out (slightly late) the moment it is free.
    os_.timers().start_oneshot("bs.beacon_defer",
                               sim::Duration::from_microseconds(100),
                               [this] { emit_beacon(); });
    return;
  }
  // The control frame's completion restarted the listen; undo it.
  if (os_.radio().listening()) os_.radio().stop_listen();

  net::Packet beacon = make_beacon();
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "SB beacon seq=" << beacon.header.seq
                   << " slots=" << slot_owners_.size()
                   << " cycle=" << current_cycle();
               });
  os_.radio().send(beacon, [this] {
    // Beacon is gone: listen for the whole remainder of the cycle — the
    // ES/contention window and every data slot (the "R" region).
    ++stats_.beacons_sent;
    os_.radio().start_listen();
  });
}

void BaseStationMac::send_control(net::Packet packet,
                                  std::uint64_t prep_cycles) {
  if (os_.radio().sending()) return;  // half duplex: one frame at a time

  // Started too close to the cycle turn, the frame would still be in the
  // air when the beacon is due.  Skip it: the node re-requests next cycle
  // and its grant/ACK is simply repeated.
  const auto& radio = os_.radio().radio();
  const std::size_t wire = packet.wire_size();
  const sim::Duration tx_estimate =
      radio.spi_time(wire) + radio.params().settle_time +
      phy::air_time(radio.phy_config(), wire) +
      sim::Duration::milliseconds(1);  // prep/dispatch + clock-skew margin
  if (simulator_.now() + tx_estimate >= next_cycle_at_) return;

  os_.scheduler().post(
      "bs.send_control", prep_cycles, [this, packet = std::move(packet)] {
        if (os_.radio().sending()) return;
        if (os_.radio().listening()) os_.radio().stop_listen();
        os_.radio().send(packet, [this] { os_.radio().start_listen(); });
      });
}

void BaseStationMac::note_activity(net::NodeId node) {
  for (std::size_t i = 0; i < slot_owners_.size(); ++i) {
    if (slot_owners_[i] == node) silent_cycles_[i] = 0;
  }
}

void BaseStationMac::reclaim_silent_slots() {
  if (config_.reclaim_after_cycles == 0) return;
  for (std::size_t i = slot_owners_.size(); i-- > 0;) {
    if (slot_owners_[i] == kFreeSlot) continue;
    if (++silent_cycles_[i] <= config_.reclaim_after_cycles) continue;
    tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                 [&](sim::TraceMessage& m) {
                   m << "reclaim slot " << i << " from node "
                     << slot_owners_[i];
                 });
    ++stats_.slots_reclaimed;
    if (config_.variant == TdmaVariant::kStatic) {
      slot_owners_[i] = kFreeSlot;
      silent_cycles_[i] = 0;
    } else {
      // Dynamic: drop the slot entirely; the cycle shrinks and later
      // owners shift down, which the next beacon's table announces.
      slot_owners_.erase(slot_owners_.begin() + static_cast<std::ptrdiff_t>(i));
      silent_cycles_.erase(silent_cycles_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
  }
}

void BaseStationMac::on_packet(const net::Packet& packet) {
  note_activity(packet.header.src);
  switch (packet.header.type) {
    case net::PacketType::kSlotRequest:
      handle_slot_request(packet);
      break;
    case net::PacketType::kData:
      ++stats_.data_received;
      if (config_.ack_data) {
        net::Packet ack;
        ack.header.dest = packet.header.src;
        ack.header.src = TdmaConfig::bs_address(config_.pan_id);
        ack.header.type = net::PacketType::kAck;
        ack.header.seq = packet.header.seq;
        ++stats_.acks_sent;
        send_control(std::move(ack), 120);
      }
      os_.scheduler().post("bs.handle_rx", 260 + 8 * packet.payload.size(),
                           [this, packet] {
                             if (data_handler_) {
                               data_handler_(packet.header.src, packet.payload,
                                             simulator_.now());
                             }
                           });
      break;
    default:
      break;  // beacons/grants from other cells would be filtered upstream
  }
}

void BaseStationMac::handle_slot_request(const net::Packet& packet) {
  ++stats_.slot_requests;
  const net::NodeId requester = packet.header.src;

  const auto send_grant = [this, requester](std::uint8_t slot) {
    if (!config_.fast_grant) return;
    net::SlotGrantPayload grant;
    grant.slot_index = slot;
    grant.cycle_us =
        static_cast<std::uint32_t>(current_cycle().to_microseconds());
    net::Packet reply;
    reply.header.dest = requester;
    reply.header.src = TdmaConfig::bs_address(config_.pan_id);
    reply.header.type = net::PacketType::kSlotGrant;
    reply.payload = grant.serialize();
    ++stats_.grants_sent;
    send_control(std::move(reply), 220);
  };

  // A node already holding a slot re-requesting (it may have missed the
  // beacon or grant) is answered by repeating its grant.
  const auto already =
      std::find(slot_owners_.begin(), slot_owners_.end(), requester);
  if (already != slot_owners_.end()) {
    send_grant(static_cast<std::uint8_t>(already - slot_owners_.begin()));
    return;
  }

  if (config_.variant == TdmaVariant::kStatic) {
    const std::uint8_t wanted =
        packet.payload.empty() ? 0xFF : packet.payload.front();
    if (wanted < slot_owners_.size() && slot_owners_[wanted] == kFreeSlot) {
      slot_owners_[wanted] = requester;
      silent_cycles_[wanted] = 0;
      ++stats_.slots_granted;
      tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                   [&](sim::TraceMessage& m) {
                     m << "grant slot " << wanted << " to node " << requester;
                   });
      send_grant(wanted);
    } else {
      ++stats_.requests_rejected;
    }
  } else {
    // Dynamic: append a new slot; the cycle grows by one slot width and
    // every node learns the new layout from the next beacon.
    if (slot_owners_.size() >= 250) {
      ++stats_.requests_rejected;
      return;
    }
    slot_owners_.push_back(requester);
    silent_cycles_.push_back(0);
    ++stats_.slots_granted;
    tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                 [&](sim::TraceMessage& m) {
                   m << "new slot " << slot_owners_.size() - 1 << " for node "
                     << requester << ", cycle -> " << current_cycle();
                 });
    send_grant(static_cast<std::uint8_t>(slot_owners_.size() - 1));
  }
}

}  // namespace bansim::mac
