#include "mac/csma_mac.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "phy/air_frame.hpp"

namespace bansim::mac {

void CsmaConfig::validate() const {
  if (!cycle.is_positive()) {
    throw std::invalid_argument("csma.cycle_ms must be positive");
  }
  if (!backoff_unit.is_positive()) {
    throw std::invalid_argument("csma.backoff_unit_us must be positive");
  }
  if (min_be > max_be) {
    throw std::invalid_argument("csma.min_be must not exceed csma.max_be");
  }
  if (max_be > 10) {
    throw std::invalid_argument("csma.max_be out of range (max 10)");
  }
  if (!cca.is_positive() || cca > backoff_unit) {
    throw std::invalid_argument(
        "csma.cca_us must be positive and fit one backoff unit");
  }
  if (ack_data && !ack_wait.is_positive()) {
    throw std::invalid_argument("csma.ack_wait_ms must be positive");
  }
  if (gts_slots > 0 && !gts_slot.is_positive()) {
    throw std::invalid_argument("csma.gts_slot_ms must be positive");
  }
  if (tx_queue_cap == 0) {
    throw std::invalid_argument("csma.tx_queue_cap must be at least 1");
  }
  // The CAP needs room for at least a beacon, a handful of backoff units
  // and one maximum-length frame; a superframe swallowed whole by the CFP
  // and guard can never carry contention traffic.
  const sim::Duration floor =
      cfp() + guard() + sim::Duration::milliseconds(2);
  if (cycle <= floor) {
    throw std::invalid_argument(
        "csma.cycle_ms leaves no contention access period (CFP + guard "
        "consume the superframe)");
  }
}

CsmaNodeMac::CsmaNodeMac(sim::SimContext& context, os::NodeOs& node_os,
                         const CsmaConfig& config, net::NodeId self,
                         sim::Rng rng, bool use_gts)
    : simulator_{context.simulator}, tracer_{context.tracer},
      trace_node_{tracer_.intern(node_os.node_name())}, os_{node_os},
      config_{config}, self_{self}, rng_{rng}, use_gts_{use_gts},
      bs_address_{CsmaConfig::bs_address(config.pan_id)} {
  assert(self_ != bs_address_ && self_ != net::kBroadcastId);
  os_.radio().radio().set_local_address(self_);
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void CsmaNodeMac::start() {
  os_.radio().init([this, epoch = boot_epoch_] {
    if (epoch == boot_epoch_) enter_search();
  });
}

void CsmaNodeMac::stop_timer(os::TimerService::TimerId& id) {
  if (id != os::TimerService::kInvalidTimer) {
    os_.timers().stop(id);
    id = os::TimerService::kInvalidTimer;
  }
}

void CsmaNodeMac::cancel_cycle_timers() {
  stop_timer(wake_timer_);
  stop_timer(backoff_timer_);
  stop_timer(cca_timer_);
  stop_timer(gts_timer_);
}

void CsmaNodeMac::cancel_all_timers() {
  cancel_cycle_timers();
  stop_timer(timeout_timer_);
  stop_timer(ack_timer_);
  stop_timer(grant_timer_);
}

void CsmaNodeMac::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  ++boot_epoch_;  // invalidate posted closures (the NodeMac pattern)
  cancel_all_timers();
  tx_queue_.clear();
  synced_ = false;
  searching_ = false;
  my_gts_ = -1;
  missed_ = 0;
  attempt_active_ = false;
  attempt_is_request_ = false;
  awaiting_ack_ = false;
  awaiting_grant_ = false;
  retries_ = 0;
  nb_ = 0;
  be_ = 0;
  data_seq_ = 0;
  last_beacon_wire_bytes_ = 0;
  beacon_gts_slots_ = 0;
  beacon_gts_slot_ = sim::Duration::zero();
  search_pending_ = false;
  rejoin_pending_ = false;
  os_.radio().reset();
  os_.radio().radio().power_down();
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "CRASH: mac state lost"; });
}

void CsmaNodeMac::reboot() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.reboots;
  must_reassociate_ = true;
  reboot_at_ = simulator_.now();
  rejoin_pending_ = true;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "reboot: cold start"; });
  start();
}

void CsmaNodeMac::reset_for_reuse(sim::Rng rng) {
  rng_ = rng;
  tx_queue_.clear();
  data_seq_ = 0;
  synced_ = false;
  searching_ = true;
  cycle_known_ = sim::Duration::zero();
  last_cycle_start_ = sim::TimePoint{};
  cap_start_ = sim::TimePoint{};
  last_beacon_wire_bytes_ = 0;
  missed_ = 0;
  beacon_gts_slots_ = 0;
  beacon_gts_slot_ = sim::Duration::zero();
  my_gts_ = -1;
  attempt_active_ = false;
  attempt_is_request_ = false;
  nb_ = 0;
  be_ = 0;
  retries_ = 0;
  awaiting_ack_ = false;
  awaiting_grant_ = false;
  wake_timer_ = os::TimerService::kInvalidTimer;
  timeout_timer_ = os::TimerService::kInvalidTimer;
  backoff_timer_ = os::TimerService::kInvalidTimer;
  cca_timer_ = os::TimerService::kInvalidTimer;
  ack_timer_ = os::TimerService::kInvalidTimer;
  grant_timer_ = os::TimerService::kInvalidTimer;
  gts_timer_ = os::TimerService::kInvalidTimer;
  boot_epoch_ = 0;
  must_reassociate_ = false;
  crashed_ = false;
  search_started_ = sim::TimePoint{};
  search_pending_ = false;
  reboot_at_ = sim::TimePoint{};
  rejoin_pending_ = false;
  resync_times_.clear();
  rejoin_times_.clear();
  stats_ = CsmaNodeStats{};
}

void CsmaNodeMac::queue_payload(std::vector<std::uint8_t> payload) {
  assert(payload.size() <= net::kMaxPayloadBytes);
  ++stats_.payloads_queued;
  if (crashed_) {
    ++stats_.payloads_dropped;
    return;
  }
  if (tx_queue_.size() >= config_.tx_queue_cap) {
    tx_queue_.pop_front();
    ++stats_.payloads_dropped;
  }
  tx_queue_.push_back(std::move(payload));
  // A CAP node may contend right away; a GTS node's payload waits for its
  // slot (armed at beacon time, exactly like the TDMA slot transmission).
  if (synced_ && !use_gts_ && !attempt_active_ && !awaiting_ack_) {
    attempt_is_request_ = false;
    begin_attempt();
  }
}

MacStatsSnapshot CsmaNodeMac::stats_snapshot() const {
  MacStatsSnapshot s;
  s.payloads_queued = stats_.payloads_queued;
  s.payloads_dropped = stats_.payloads_dropped;
  s.data_sent = stats_.data_sent;
  s.acks_received = stats_.acks_received;
  s.retransmissions = stats_.retransmissions;
  s.retry_drops = stats_.retry_drops;
  s.beacons_received = stats_.beacons_received;
  s.beacons_missed = stats_.beacons_missed;
  s.resyncs = stats_.resyncs;
  s.crashes = stats_.crashes;
  s.reboots = stats_.reboots;
  return s;
}

sim::Duration CsmaNodeMac::beacon_air_estimate() const {
  const std::size_t bytes = last_beacon_wire_bytes_ != 0
                                ? last_beacon_wire_bytes_
                                : net::kHeaderBytes + 12 + net::kCrcBytes;
  return phy::air_time(os_.radio().radio().phy_config(), bytes);
}

sim::Duration CsmaNodeMac::tx_air_estimate(std::size_t payload_bytes) const {
  const auto& radio = os_.radio().radio();
  const std::size_t wire = net::kHeaderBytes + payload_bytes + net::kCrcBytes;
  return radio.spi_time(wire) + radio.params().settle_time +
         phy::air_time(radio.phy_config(), wire) +
         sim::Duration::milliseconds(1);  // prep/dispatch + skew margin
}

sim::TimePoint CsmaNodeMac::cap_end() const {
  const sim::Duration cfp =
      beacon_gts_slot_ * static_cast<std::int64_t>(beacon_gts_slots_);
  return last_cycle_start_ + cycle_known_ - cfp - config_.guard();
}

void CsmaNodeMac::enter_search() {
  synced_ = false;
  searching_ = true;
  ++stats_.resyncs;
  missed_ = 0;
  my_gts_ = -1;
  attempt_active_ = false;
  cancel_cycle_timers();
  stop_timer(timeout_timer_);
  search_started_ = simulator_.now();
  search_pending_ = true;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [](sim::TraceMessage& m) { m << "searching for beacon"; });
  if (!os_.radio().listening()) os_.radio().start_listen();
}

void CsmaNodeMac::on_packet(const net::Packet& packet) {
  if (crashed_) return;
  switch (packet.header.type) {
    case net::PacketType::kSlotGrant:
      if (packet.header.src == bs_address_) process_grant(packet);
      return;
    case net::PacketType::kAck:
      if (packet.header.src == bs_address_) process_ack(packet);
      return;
    case net::PacketType::kBeacon:
      if (packet.header.src != bs_address_) {
        ++stats_.foreign_beacons;
        return;
      }
      break;
    default:
      return;
  }
  const sim::TimePoint rx_time = simulator_.now();
  stop_timer(timeout_timer_);
  if (os_.radio().listening()) os_.radio().stop_listen();

  const std::uint64_t cycles =
      350 + 14 * (packet.payload.size() > 11
                      ? (packet.payload.size() - 11) / 2
                      : 0);
  os_.scheduler().post("mac.beacon_proc", cycles,
                       [this, packet, rx_time, epoch = boot_epoch_] {
                         if (epoch != boot_epoch_) return;
                         process_beacon(packet, rx_time);
                       });
}

void CsmaNodeMac::process_beacon(const net::Packet& packet,
                                 sim::TimePoint rx_time) {
  auto payload = net::BeaconPayload::deserialize(packet.payload);
  if (!payload) return;

  ++stats_.beacons_received;
  missed_ = 0;
  searching_ = false;
  if (search_pending_) {
    resync_times_.push_back(simulator_.now() - search_started_);
    search_pending_ = false;
  }
  cycle_known_ = sim::Duration::microseconds(payload->cycle_us);
  beacon_gts_slots_ = payload->num_slots;
  beacon_gts_slot_ = sim::Duration::microseconds(payload->slot_us);
  last_beacon_wire_bytes_ = packet.wire_size();

  const auto mine = std::find(payload->slot_owners.begin(),
                              payload->slot_owners.end(), self_);
  my_gts_ = mine == payload->slot_owners.end()
                ? -1
                : static_cast<int>(mine - payload->slot_owners.begin());
  // A rebooted incarnation re-requests its GTS even if the table still
  // carries it (same rule as the TDMA re-association handshake).
  if (must_reassociate_) my_gts_ = -1;

  const bool was_synced = synced_;
  synced_ = true;
  if (!was_synced) {
    tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                 [](sim::TraceMessage& m) { m << "synced to beacon"; });
  }
  if (rejoin_pending_) {
    rejoin_times_.push_back(simulator_.now() - reboot_at_);
    rejoin_pending_ = false;
  }

  last_cycle_start_ = rx_time - beacon_air_estimate();
  cap_start_ = last_cycle_start_ + beacon_air_estimate();
  schedule_cycle(last_cycle_start_);
}

void CsmaNodeMac::schedule_cycle(sim::TimePoint cycle_start) {
  const sim::TimePoint now = simulator_.now();
  cancel_cycle_timers();
  attempt_active_ = false;

  if (use_gts_ && config_.gts_slots > 0) {
    if (my_gts_ >= 0 && my_gts_ < beacon_gts_slots_) {
      // Contention-free transmission in the owned GTS slot.
      if (!tx_queue_.empty()) {
        const sim::Duration cfp =
            beacon_gts_slot_ * static_cast<std::int64_t>(beacon_gts_slots_);
        const sim::TimePoint slot_start = cycle_start + cycle_known_ - cfp +
                                          beacon_gts_slot_ * my_gts_;
        if (slot_start > now) {
          gts_timer_ = os_.timers().start_oneshot(
              "csma.gts_tx", slot_start - now, [this] {
                gts_timer_ = os::TimerService::kInvalidTimer;
                transmit_gts();
              });
        }
      }
    } else if (!awaiting_grant_) {
      // No slot yet: contend in the CAP for a GTS request.
      attempt_is_request_ = true;
      begin_attempt();
    }
  } else if (!tx_queue_.empty() && !awaiting_ack_) {
    attempt_is_request_ = false;
    begin_attempt();
  }

  const sim::TimePoint wake = cycle_start + cycle_known_ - config_.guard();
  if (wake > now) {
    wake_timer_ = os_.timers().start_oneshot(
        "csma.beacon_wake", wake - now, [this] {
          wake_timer_ = os::TimerService::kInvalidTimer;
          wake_for_beacon();
        });
  } else {
    wake_for_beacon();
  }
}

void CsmaNodeMac::wake_for_beacon() {
  if (crashed_) return;
  if (!os_.radio().listening() && !os_.radio().sending()) {
    os_.radio().start_listen();
  }
  const sim::Duration guard = config_.guard();
  const sim::Duration timeout =
      guard + guard + beacon_air_estimate() + config_.beacon_timeout_margin;
  timeout_timer_ = os_.timers().start_oneshot(
      "csma.beacon_timeout", timeout, [this] { on_beacon_timeout(); });
}

void CsmaNodeMac::on_beacon_timeout() {
  timeout_timer_ = os::TimerService::kInvalidTimer;
  if (os_.radio().radio().state() == hw::RadioState::kRxClockOut) {
    timeout_timer_ = os_.timers().start_oneshot(
        "csma.beacon_timeout", sim::Duration::from_microseconds(500),
        [this] { on_beacon_timeout(); });
    return;
  }

  ++stats_.beacons_missed;
  ++missed_;
  if (os_.radio().listening()) os_.radio().stop_listen();

  if (missed_ > config_.missed_beacon_limit || cycle_known_.is_zero()) {
    enter_search();
    return;
  }

  // Dead reckoning: the GTS table cannot shift (fixed-size, no reclaim),
  // so both CAP and GTS activity may run on the extrapolated anchor.
  last_cycle_start_ = last_cycle_start_ + cycle_known_;
  cap_start_ = last_cycle_start_ + beacon_air_estimate();
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "beacon missed (" << missed_ << "), dead reckoning";
               });
  schedule_cycle(last_cycle_start_);
}

void CsmaNodeMac::begin_attempt() {
  if (crashed_ || attempt_active_) return;
  if (!attempt_is_request_ && tx_queue_.empty()) return;
  attempt_active_ = true;
  nb_ = 0;
  be_ = config_.min_be;
  next_backoff();
}

void CsmaNodeMac::next_backoff() {
  const sim::TimePoint now = simulator_.now();
  // Random delay of 0..2^BE-1 backoff units, aligned up to the next CAP
  // backoff-slot boundary (slotted CSMA/CA).
  const std::int64_t units =
      rng_.uniform_int(0, (std::int64_t{1} << be_) - 1);
  const sim::TimePoint candidate = now + config_.backoff_unit * units;
  sim::TimePoint boundary = candidate;
  const sim::Duration off = candidate - cap_start_;
  if (off.is_negative()) {
    boundary = cap_start_;
  } else {
    const sim::Duration rem = off.mod(config_.backoff_unit);
    if (!rem.is_zero()) boundary = candidate + (config_.backoff_unit - rem);
  }

  const std::size_t payload_bytes =
      attempt_is_request_ ? 1 : tx_queue_.front().size();
  if (boundary + config_.cca + tx_air_estimate(payload_bytes) >= cap_end()) {
    // The CAP cannot fit this transmission any more; resume next beacon.
    ++stats_.cap_deferrals;
    attempt_active_ = false;
    if (os_.radio().listening()) os_.radio().stop_listen();
    tracer_.emit(now, sim::TraceCategory::kMac, trace_node_,
                 [](sim::TraceMessage& m) {
                   m << "CAP exhausted, attempt deferred";
                 });
    return;
  }

  // The receiver stays on through the backoff countdown: the CCA is an
  // energy-detect sample and needs the LNA powered — this RX residency is
  // the contention cost TDMA does not pay.
  if (!os_.radio().listening() && !os_.radio().sending()) {
    os_.radio().start_listen();
  }
  backoff_timer_ = os_.timers().start_oneshot(
      "csma.backoff", boundary - now,
      [this, boundary] {
        backoff_timer_ = os::TimerService::kInvalidTimer;
        on_cca(boundary);
      });
}

void CsmaNodeMac::on_cca(sim::TimePoint boundary) {
  if (crashed_ || !attempt_active_) return;
  ++stats_.cca_attempts;
  if (os_.radio().radio().channel_busy()) {
    ++stats_.cca_busy;
    escalate_backoff();
    return;
  }
  // The energy-detect window: the medium must stay clear for the full CCA.
  cca_timer_ = os_.timers().start_oneshot(
      "csma.cca", config_.cca, [this, boundary] {
        cca_timer_ = os::TimerService::kInvalidTimer;
        if (crashed_ || !attempt_active_) return;
        (void)boundary;
        if (os_.radio().radio().channel_busy()) {
          ++stats_.cca_busy;
          escalate_backoff();
          return;
        }
        transmit_head();
      });
}

void CsmaNodeMac::escalate_backoff() {
  ++nb_;
  be_ = std::min<std::uint8_t>(static_cast<std::uint8_t>(be_ + 1),
                               config_.max_be);
  if (nb_ > config_.max_backoffs) {
    // Channel-access failure.  The payload keeps its place at the head of
    // the queue but burns one retry; the next superframe gets a fresh NB.
    ++stats_.cca_failures;
    attempt_active_ = false;
    if (os_.radio().listening()) os_.radio().stop_listen();
    if (!attempt_is_request_) {
      if (++retries_ > config_.max_retries) {
        if (!tx_queue_.empty()) tx_queue_.pop_front();
        ++stats_.retry_drops;
        retries_ = 0;
      }
    }
    tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                 [](sim::TraceMessage& m) {
                   m << "CSMA channel-access failure";
                 });
    return;
  }
  next_backoff();
}

void CsmaNodeMac::transmit_head() {
  if (os_.radio().listening()) os_.radio().stop_listen();
  if (attempt_is_request_) {
    send_gts_request();
    return;
  }
  if (tx_queue_.empty()) {
    attempt_active_ = false;
    return;
  }
  std::vector<std::uint8_t> payload = tx_queue_.front();
  if (!config_.ack_data) tx_queue_.pop_front();

  const std::uint64_t cycles = 260 + 6 * payload.size();
  os_.scheduler().post(
      "mac.prepare_tx", cycles,
      [this, payload = std::move(payload), epoch = boot_epoch_] {
        if (epoch != boot_epoch_) return;
        if (os_.radio().sending() || os_.radio().listening()) return;
        net::Packet data;
        data.header.dest = bs_address_;
        data.header.src = self_;
        data.header.type = net::PacketType::kData;
        data.header.seq = data_seq_++;
        data.payload = payload;
        ++stats_.data_sent;
        if (config_.ack_data && retries_ > 0) ++stats_.retransmissions;
        tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                     [&](sim::TraceMessage& m) {
                       m << "CAP data tx len=" << data.payload.size();
                     });
        os_.radio().send(data, [this] {
          attempt_active_ = false;
          if (!config_.ack_data) {
            if (!tx_queue_.empty() && synced_) {
              attempt_is_request_ = false;
              begin_attempt();
            }
            return;
          }
          awaiting_ack_ = true;
          os_.radio().start_listen();
          ack_timer_ = os_.timers().start_oneshot(
              "csma.ack_timeout", config_.ack_wait,
              [this] { on_ack_timeout(); });
        });
      });
}

void CsmaNodeMac::transmit_gts() {
  if (crashed_ || tx_queue_.empty() || my_gts_ < 0) return;
  std::vector<std::uint8_t> payload = tx_queue_.front();
  if (!config_.ack_data) tx_queue_.pop_front();

  const std::uint64_t cycles = 260 + 6 * payload.size();
  os_.scheduler().post(
      "mac.prepare_tx", cycles,
      [this, payload = std::move(payload), epoch = boot_epoch_] {
        if (epoch != boot_epoch_) return;
        if (os_.radio().sending() || os_.radio().listening()) return;
        net::Packet data;
        data.header.dest = bs_address_;
        data.header.src = self_;
        data.header.type = net::PacketType::kData;
        data.header.seq = data_seq_++;
        data.payload = payload;
        ++stats_.data_sent;
        ++stats_.gts_tx;
        if (config_.ack_data && retries_ > 0) ++stats_.retransmissions;
        tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                     [&](sim::TraceMessage& m) {
                       m << "GTS data tx slot=" << my_gts_
                         << " len=" << data.payload.size();
                     });
        os_.radio().send(data, [this] {
          if (!config_.ack_data) return;
          awaiting_ack_ = true;
          os_.radio().start_listen();
          ack_timer_ = os_.timers().start_oneshot(
              "csma.ack_timeout", config_.ack_wait,
              [this] { on_ack_timeout(); });
        });
      });
}

void CsmaNodeMac::send_gts_request() {
  os_.scheduler().post("mac.join", 500, [this, epoch = boot_epoch_] {
    if (epoch != boot_epoch_) return;
    if (os_.radio().sending() || os_.radio().listening()) return;
    net::Packet req;
    req.header.dest = bs_address_;
    req.header.src = self_;
    req.header.type = net::PacketType::kSlotRequest;
    req.header.seq = data_seq_++;
    req.payload = {0xFF};  // any free GTS slot
    ++stats_.gts_requests_sent;
    // This request is the re-association handshake after a reboot.
    must_reassociate_ = false;
    tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
                 [](sim::TraceMessage& m) { m << "GTS request"; });
    os_.radio().send(req, [this] {
      attempt_active_ = false;
      // Catch the immediate grant the base station answers with.
      awaiting_grant_ = true;
      os_.radio().start_listen();
      grant_timer_ = os_.timers().start_oneshot(
          "csma.grant_wait", config_.ack_wait, [this] {
            grant_timer_ = os::TimerService::kInvalidTimer;
            if (!awaiting_grant_) return;
            awaiting_grant_ = false;
            if (os_.radio().listening() &&
                os_.radio().radio().state() != hw::RadioState::kRxClockOut) {
              os_.radio().stop_listen();
            }
          });
    });
  });
}

void CsmaNodeMac::process_grant(const net::Packet& packet) {
  const auto grant = net::SlotGrantPayload::deserialize(packet.payload);
  if (!grant) return;
  ++stats_.grants_received;
  awaiting_grant_ = false;
  stop_timer(grant_timer_);
  if (os_.radio().listening()) os_.radio().stop_listen();
  my_gts_ = grant->slot_index;
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "GTS grant: slot " << my_gts_;
               });
  // The granted slot lies in this superframe's CFP — use it right away if
  // the beacon already announced a CFP geometry that covers it.
  if (!tx_queue_.empty() && my_gts_ < beacon_gts_slots_ &&
      gts_timer_ == os::TimerService::kInvalidTimer) {
    const sim::Duration cfp =
        beacon_gts_slot_ * static_cast<std::int64_t>(beacon_gts_slots_);
    const sim::TimePoint slot_start = last_cycle_start_ + cycle_known_ - cfp +
                                      beacon_gts_slot_ * my_gts_;
    const sim::TimePoint now = simulator_.now();
    if (slot_start > now) {
      gts_timer_ = os_.timers().start_oneshot(
          "csma.gts_tx", slot_start - now, [this] {
            gts_timer_ = os::TimerService::kInvalidTimer;
            transmit_gts();
          });
    }
  }
}

void CsmaNodeMac::process_ack(const net::Packet&) {
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  ++stats_.acks_received;
  stop_timer(ack_timer_);
  if (os_.radio().listening()) os_.radio().stop_listen();
  if (!tx_queue_.empty()) tx_queue_.pop_front();
  retries_ = 0;
  // More to say and CAP time (maybe) left: contend again; the fit check in
  // next_backoff() defers to the next superframe when the CAP is spent.
  if (!use_gts_ && !tx_queue_.empty() && synced_ && !attempt_active_) {
    attempt_is_request_ = false;
    begin_attempt();
  }
}

void CsmaNodeMac::on_ack_timeout() {
  ack_timer_ = os::TimerService::kInvalidTimer;
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  if (os_.radio().listening() &&
      os_.radio().radio().state() != hw::RadioState::kRxClockOut) {
    os_.radio().stop_listen();
  }
  if (++retries_ > config_.max_retries) {
    if (!tx_queue_.empty()) tx_queue_.pop_front();
    ++stats_.retry_drops;
    retries_ = 0;
  }
  // Retransmission restarts CSMA/CA from scratch (fresh NB and BE).
  if (!use_gts_ && !tx_queue_.empty() && synced_ && !attempt_active_) {
    attempt_is_request_ = false;
    begin_attempt();
  }
}

CsmaBaseStationMac::CsmaBaseStationMac(sim::SimContext& context,
                                       os::NodeOs& node_os,
                                       const CsmaConfig& config)
    : simulator_{context.simulator}, tracer_{context.tracer},
      trace_node_{tracer_.intern(node_os.node_name())}, os_{node_os},
      config_{config} {
  gts_owners_.assign(config_.gts_slots, kFreeSlot);
  os_.radio().radio().set_local_address(
      CsmaConfig::bs_address(config_.pan_id));
  os_.radio().set_receive_handler(
      [this](const net::Packet& p) { on_packet(p); });
}

void CsmaBaseStationMac::reset_for_reuse() {
  gts_owners_.assign(config_.gts_slots, kFreeSlot);
  sources_heard_.clear();
  beacon_seq_ = 0;
  next_cycle_at_ = sim::TimePoint{};
  stats_ = CsmaBaseStationStats{};
}

void CsmaBaseStationMac::start() {
  os_.radio().init([this] { begin_cycle(); });
}

net::Packet CsmaBaseStationMac::make_beacon() {
  net::BeaconPayload payload;
  payload.cycle_us =
      static_cast<std::uint32_t>(config_.cycle.to_microseconds());
  payload.num_slots = static_cast<std::uint8_t>(gts_owners_.size());
  payload.slot_us =
      static_cast<std::uint32_t>(config_.gts_slot.to_microseconds());
  payload.beacon_seq = beacon_seq_++;
  payload.pan_id = config_.pan_id;
  payload.slot_owners = gts_owners_;

  net::Packet beacon;
  beacon.header.dest = net::kBroadcastId;
  beacon.header.src = CsmaConfig::bs_address(config_.pan_id);
  beacon.header.type = net::PacketType::kBeacon;
  beacon.header.seq = payload.beacon_seq;
  beacon.payload = payload.serialize();
  return beacon;
}

void CsmaBaseStationMac::begin_cycle() {
  if (os_.radio().listening()) os_.radio().stop_listen();
  next_cycle_at_ = simulator_.now() + config_.cycle;
  os_.scheduler().post("bs.emit_beacon", 380, [this] { emit_beacon(); });
  os_.timers().start_oneshot("mac.cycle", config_.cycle,
                             [this] { begin_cycle(); });
}

void CsmaBaseStationMac::emit_beacon() {
  if (os_.radio().sending()) {
    os_.timers().start_oneshot("bs.beacon_defer",
                               sim::Duration::from_microseconds(100),
                               [this] { emit_beacon(); });
    return;
  }
  if (os_.radio().listening()) os_.radio().stop_listen();

  net::Packet beacon = make_beacon();
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "CSMA beacon seq=" << beacon.header.seq
                   << " gts=" << gts_owners_.size();
               });
  os_.radio().send(beacon, [this] {
    // Listen through the whole CAP and CFP.
    ++stats_.beacons_sent;
    os_.radio().start_listen();
  });
}

void CsmaBaseStationMac::send_control(net::Packet packet,
                                      std::uint64_t prep_cycles) {
  if (os_.radio().sending()) return;
  const auto& radio = os_.radio().radio();
  const std::size_t wire = packet.wire_size();
  const sim::Duration tx_estimate =
      radio.spi_time(wire) + radio.params().settle_time +
      phy::air_time(radio.phy_config(), wire) +
      sim::Duration::milliseconds(1);
  if (simulator_.now() + tx_estimate >= next_cycle_at_) return;

  os_.scheduler().post(
      "bs.send_control", prep_cycles, [this, packet = std::move(packet)] {
        if (os_.radio().sending()) return;
        if (os_.radio().listening()) os_.radio().stop_listen();
        os_.radio().send(packet, [this] { os_.radio().start_listen(); });
      });
}

void CsmaBaseStationMac::on_packet(const net::Packet& packet) {
  switch (packet.header.type) {
    case net::PacketType::kSlotRequest:
      handle_gts_request(packet);
      break;
    case net::PacketType::kData: {
      ++stats_.data_received;
      const auto at = std::lower_bound(sources_heard_.begin(),
                                       sources_heard_.end(),
                                       packet.header.src);
      if (at == sources_heard_.end() || *at != packet.header.src) {
        sources_heard_.insert(at, packet.header.src);
      }
      if (config_.ack_data) {
        net::Packet ack;
        ack.header.dest = packet.header.src;
        ack.header.src = CsmaConfig::bs_address(config_.pan_id);
        ack.header.type = net::PacketType::kAck;
        ack.header.seq = packet.header.seq;
        ++stats_.acks_sent;
        send_control(std::move(ack), 120);
      }
      os_.scheduler().post("bs.handle_rx", 260 + 8 * packet.payload.size(),
                           [this, packet] {
                             if (data_handler_) {
                               data_handler_(packet.header.src, packet.payload,
                                             simulator_.now());
                             }
                           });
      break;
    }
    default:
      break;
  }
}

void CsmaBaseStationMac::handle_gts_request(const net::Packet& packet) {
  ++stats_.gts_requests;
  const net::NodeId requester = packet.header.src;

  const auto send_grant = [this, requester](std::uint8_t slot) {
    net::SlotGrantPayload grant;
    grant.slot_index = slot;
    grant.cycle_us =
        static_cast<std::uint32_t>(config_.cycle.to_microseconds());
    net::Packet reply;
    reply.header.dest = requester;
    reply.header.src = CsmaConfig::bs_address(config_.pan_id);
    reply.header.type = net::PacketType::kSlotGrant;
    reply.payload = grant.serialize();
    ++stats_.grants_sent;
    send_control(std::move(reply), 220);
  };

  // A node re-requesting its own GTS (post-reboot handshake, lost grant) is
  // answered by repeating the existing grant.
  const auto already =
      std::find(gts_owners_.begin(), gts_owners_.end(), requester);
  if (already != gts_owners_.end()) {
    send_grant(static_cast<std::uint8_t>(already - gts_owners_.begin()));
    return;
  }

  const auto free =
      std::find(gts_owners_.begin(), gts_owners_.end(), kFreeSlot);
  if (free == gts_owners_.end()) {
    ++stats_.requests_rejected;  // CFP full (or disabled)
    return;
  }
  *free = requester;
  ++stats_.gts_granted;
  const auto index = static_cast<std::uint8_t>(free - gts_owners_.begin());
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMac, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "GTS slot " << index << " to node " << requester;
               });
  send_grant(index);
}

}  // namespace bansim::mac
