// Sensor-node side of the TDMA MAC.
//
// A node's life cycle (Figures 2 and 3):
//   searching -> it listens continuously until a beacon arrives;
//   joining   -> it transmits a slot request (SSR): in the static variant
//                inside a randomly chosen *free* data slot, in the dynamic
//                variant at a random instant inside the ES window;
//   joined    -> every cycle it wakes shortly before the expected beacon
//                (guard time covering mutual clock drift), receives the
//                beacon (RB), resynchronizes, transmits at most one queued
//                payload in its own slot, and sleeps the rest of the cycle.
// Missed beacons are tolerated by dead reckoning up to a limit, after which
// the node falls back to a full resynchronization listen.
//
// All waiting is done through the OS timer service, so every wake-up goes
// through the real interrupt path and the node's DCO skew stretches every
// interval — the physical mechanism behind the guard-time requirement.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mac/mac_base.hpp"
#include "mac/tdma_config.hpp"
#include "net/packet.hpp"
#include "os/node_os.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::mac {

enum class NodeMacState : std::uint8_t {
  kBooting,
  kSearching,
  kJoining,
  kJoined,
};

[[nodiscard]] const char* to_string(NodeMacState s);

struct NodeMacStats {
  std::uint64_t beacons_received{0};
  std::uint64_t beacons_missed{0};
  std::uint64_t foreign_beacons{0};  ///< other-PAN beacons heard and ignored
  std::uint64_t resyncs{0};          ///< fell back to a resync search
  std::uint64_t slot_requests_sent{0};
  std::uint64_t data_sent{0};
  std::uint64_t payloads_queued{0};  ///< application payloads offered (PDR denominator)
  std::uint64_t payloads_dropped{0}; ///< queue overflow (producer too fast)
  std::uint64_t grants_received{0};  ///< fast grants caught after an SSR
  std::uint64_t acks_received{0};    ///< link-layer ACKs (ack_data mode)
  std::uint64_t retransmissions{0};  ///< data frames retried after ACK loss
  std::uint64_t retry_drops{0};      ///< payloads dropped after max_retries
  std::uint64_t slot_tx_deferred{0}; ///< slot skipped: layout may have shifted
  std::uint64_t search_power_cycles{0};  ///< bounded-search radio power-cycles
  std::uint64_t crashes{0};          ///< hard faults injected into this MAC
  std::uint64_t reboots{0};          ///< cold boots after a crash
};

class NodeMac final : public NodeMacBase {
 public:
  NodeMac(sim::SimContext& context, os::NodeOs& node_os,
          const TdmaConfig& config, net::NodeId self, sim::Rng rng);

  /// Powers the radio and begins searching for the network.
  void start() override;

  // --- Application interface -----------------------------------------------

  /// Queues a payload for transmission in this node's next owned slot (one
  /// frame per cycle).  Oldest entries are dropped beyond the queue bound.
  void queue_payload(std::vector<std::uint8_t> payload) override;

  [[nodiscard]] bool joined() const override {
    return state_ == NodeMacState::kJoined;
  }
  [[nodiscard]] NodeMacState state() const { return state_; }
  [[nodiscard]] int slot_index() const { return my_slot_; }
  [[nodiscard]] sim::Duration known_cycle() const { return cycle_; }
  [[nodiscard]] std::size_t queue_depth() const override {
    return tx_queue_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const override {
    return config_.tx_queue_cap;
  }
  [[nodiscard]] const NodeMacStats& stats() const { return stats_; }

  [[nodiscard]] Protocol protocol() const override {
    return config_.variant == TdmaVariant::kStatic ? Protocol::kStaticTdma
                                                   : Protocol::kDynamicTdma;
  }
  [[nodiscard]] MacStatsSnapshot stats_snapshot() const override;

  /// Default transmit-queue bound (TdmaConfig::tx_queue_cap overrides).
  static constexpr std::size_t kMaxQueue = 8;

  // --- Fault interface -----------------------------------------------------

  /// Hard fault: every piece of protocol state — timers, queued payloads,
  /// the slot, the schedule — is lost, posted MAC work is invalidated, and
  /// the radio is cut to power-down mid-whatever-it-was-doing.  The node
  /// stays dead until reboot().
  void crash() override;

  /// Cold boot after crash(): powers the radio back up and re-enters the
  /// search.  The node re-associates explicitly — even if the next beacon
  /// still lists its old slot it requests again, so the base station
  /// re-confirms ownership before the node transmits data.
  void reboot() override;

  [[nodiscard]] bool crashed() const override { return crashed_; }

  void reset_for_reuse(sim::Rng rng) override;

  /// Search -> beacon latencies (one entry per completed resync) and
  /// reboot -> joined latencies (one entry per completed rejoin); the raw
  /// material of a campaign's recovery-time distributions.
  [[nodiscard]] const std::vector<sim::Duration>& resync_times() const override {
    return resync_times_;
  }
  [[nodiscard]] const std::vector<sim::Duration>& rejoin_times() const override {
    return rejoin_times_;
  }

 private:
  void on_packet(const net::Packet& packet);
  void process_beacon(const net::Packet& packet, sim::TimePoint rx_time);
  void process_grant(const net::Packet& packet);
  void process_ack(const net::Packet& packet);
  void on_ack_timeout();

  /// Plans the current cycle from an (estimated) beacon air-start time:
  /// slot transmission, SSR if still unjoined, next beacon wake-up.
  void schedule_cycle(sim::TimePoint cycle_start);

  /// Stops any armed slot_tx / beacon_wake one-shots from a previous plan.
  void cancel_cycle_timers();
  /// Stops every timer this MAC may have armed (crash teardown).
  void cancel_all_timers();
  void stop_timer(os::TimerService::TimerId& id);

  void send_slot_request(sim::TimePoint cycle_start);
  void transmit_queued();
  void wake_for_beacon();

  /// radio_power_down policy: drops the radio into power-down now and
  /// schedules the crystal start-up so standby is reached by `next_use`.
  void plan_power_down(sim::TimePoint next_use);
  void on_beacon_timeout();
  void enter_search();
  /// One bounded search window (search_listen > 0): listen, and on expiry
  /// power-cycle the radio and back off before the next window.
  void begin_search_listen();
  void on_search_window_elapsed();

  [[nodiscard]] sim::Duration beacon_air_estimate() const;

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  sim::TraceNodeId trace_node_;
  os::NodeOs& os_;
  TdmaConfig config_;
  net::NodeId self_;
  sim::Rng rng_;

  NodeMacState state_{NodeMacState::kBooting};
  std::deque<std::vector<std::uint8_t>> tx_queue_;
  std::uint8_t data_seq_{0};
  net::NodeId bs_address_;  ///< derived from the configured PAN

  // Last known schedule (from the most recent beacon).
  sim::Duration cycle_{sim::Duration::zero()};
  sim::Duration slot_width_{sim::Duration::zero()};
  std::vector<net::NodeId> owners_;
  int my_slot_{-1};
  sim::TimePoint last_cycle_start_;
  std::size_t last_beacon_wire_bytes_{0};
  std::uint8_t missed_{0};

  os::TimerService::TimerId timeout_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId grant_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId ack_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId slot_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId wake_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId ssr_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId powerup_timer_{os::TimerService::kInvalidTimer};
  os::TimerService::TimerId search_timer_{os::TimerService::kInvalidTimer};
  std::uint8_t retries_{0};         ///< attempts for the frame at queue front
  bool awaiting_ack_{false};

  /// Crash teardown cannot cancel already-posted scheduler tasks (they sit
  /// in the OS run queue like real RAM-resident task records would survive
  /// in name only); every posted closure captures the epoch at post time
  /// and no-ops if a crash bumped it since.
  std::uint64_t boot_epoch_{0};
  /// Forces an explicit re-association after reboot: the old slot in the
  /// beacon table is ignored until this node's own SSR has gone out.
  bool must_reassociate_{false};
  bool crashed_{false};
  std::uint32_t search_backoff_level_{0};
  sim::TimePoint search_started_{};
  bool search_pending_{false};   ///< a resync-latency sample is open
  sim::TimePoint reboot_at_{};
  bool rejoin_pending_{false};   ///< a rejoin-latency sample is open
  std::vector<sim::Duration> resync_times_;
  std::vector<sim::Duration> rejoin_times_;
  NodeMacStats stats_;
};

}  // namespace bansim::mac
