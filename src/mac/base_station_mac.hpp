// Base-station side of the TDMA MAC.
//
// The base station regulates all protocol timing (Section 3.2.2): it
// broadcasts a beacon at the top of every cycle, listens for the rest of
// the cycle (slot requests in the contention window, data in owned slots),
// and manages the slot table.  In the static variant the table has a fixed
// number of slots and nodes ask for a specific free one; in the dynamic
// variant the table grows by one slot per admitted node and the cycle
// length follows it.  Nodes learn the entire schedule from the beacon's
// slot-owner table, which also serves as the "inform all the other nodes of
// the updated cycle time" mechanism of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mac/mac_base.hpp"
#include "mac/tdma_config.hpp"
#include "net/packet.hpp"
#include "os/node_os.hpp"
#include "sim/context.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::mac {

/// Counters exposed for validation and tests.
struct BaseStationStats {
  std::uint64_t beacons_sent{0};
  std::uint64_t data_received{0};
  std::uint64_t slot_requests{0};
  std::uint64_t slots_granted{0};
  std::uint64_t requests_rejected{0};  ///< table full / slot taken
  std::uint64_t grants_sent{0};        ///< fast-grant frames transmitted
  std::uint64_t acks_sent{0};          ///< link-layer ACK frames
  std::uint64_t slots_reclaimed{0};    ///< silent owners evicted
};

class BaseStationMac final : public BaseStationMacBase {
 public:
  /// Called for every data frame: (source, payload, arrival time).
  using DataHandler = BaseStationMacBase::DataHandler;

  BaseStationMac(sim::SimContext& context, os::NodeOs& node_os,
                 const TdmaConfig& config);

  void set_data_handler(DataHandler handler) override {
    data_handler_ = std::move(handler);
  }

  /// Powers the radio and begins the beacon cycle.
  void start() override;

  void reset_for_reuse() override;

  [[nodiscard]] const std::vector<net::NodeId>& slot_owners() const {
    return slot_owners_;
  }
  [[nodiscard]] sim::Duration current_cycle() const;
  [[nodiscard]] const BaseStationStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t joined_nodes() const override;
  [[nodiscard]] Protocol protocol() const override {
    return config_.variant == TdmaVariant::kStatic ? Protocol::kStaticTdma
                                                   : Protocol::kDynamicTdma;
  }

 private:
  void begin_cycle();
  /// Builds and transmits the cycle's beacon; if a control frame is still
  /// draining out of the half-duplex radio, retries shortly after.
  void emit_beacon();
  void on_packet(const net::Packet& packet);
  void handle_slot_request(const net::Packet& packet);
  [[nodiscard]] net::Packet make_beacon();

  /// Interrupts the listen period to transmit one control frame (fast
  /// grant or ACK), then resumes listening.  The radio is half duplex, so
  /// frames arriving during the transmission are lost, as on the platform.
  /// Frames that cannot drain before the next beacon are not started: a
  /// node that misses its grant or ACK simply retries next cycle.
  void send_control(net::Packet packet, std::uint64_t prep_cycles);

  /// Marks activity from the owner of `node` (resets its silence count).
  void note_activity(net::NodeId node);

  /// Releases slots whose owners exceeded the silence bound.
  void reclaim_silent_slots();

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  sim::TraceNodeId trace_node_;
  os::NodeOs& os_;
  TdmaConfig config_;
  DataHandler data_handler_;
  std::vector<net::NodeId> slot_owners_;
  std::vector<std::uint32_t> silent_cycles_;  ///< parallel to slot_owners_
  std::uint8_t beacon_seq_{0};
  sim::TimePoint next_cycle_at_;  ///< expected start of the next cycle
  BaseStationStats stats_;
};

}  // namespace bansim::mac
