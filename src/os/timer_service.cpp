#include "os/timer_service.hpp"

#include <algorithm>
#include <limits>

namespace bansim::os {

TimerService::TimerService(sim::Simulator& simulator, hw::Mcu& mcu,
                           hw::TimerUnit& unit, TaskScheduler& scheduler,
                           PowerManager& power)
    : simulator_{simulator}, mcu_{mcu}, unit_{unit}, scheduler_{scheduler},
      power_handle_{power.register_peripheral("timer_a", ClockConstraint::kNone)},
      power_{power} {}

std::int64_t TimerService::local_now_ns() const {
  // Piecewise-affine read: survives fault-injected skew steps without
  // rescaling deadlines that are already armed in absolute local time.
  return mcu_.local_clock(simulator_.now()).ticks();
}

TimerService::TimerId TimerService::insert(Entry entry) {
  // Reuse a dead slot so per-cycle one-shots don't grow the table without
  // bound; ids of stopped timers are therefore recycled.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].active) {
      entries_[i] = std::move(entry);
      return i;
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

TimerService::TimerId TimerService::start_periodic(std::string name,
                                                   sim::Duration period,
                                                   std::function<void()> handler) {
  Entry e;
  e.name = std::move(name);
  e.period_local_ns = period.ticks();
  e.deadline_local_ns = local_now_ns() + period.ticks();
  e.handler = std::move(handler);
  e.active = true;
  const TimerId id = insert(std::move(e));
  power_.update(power_handle_, ClockConstraint::kSmclk);
  arm();
  return id;
}

TimerService::TimerId TimerService::start_oneshot(std::string name,
                                                  sim::Duration delay,
                                                  std::function<void()> handler) {
  Entry e;
  e.name = std::move(name);
  e.period_local_ns = 0;
  e.deadline_local_ns = local_now_ns() + delay.ticks();
  e.handler = std::move(handler);
  e.active = true;
  const TimerId id = insert(std::move(e));
  power_.update(power_handle_, ClockConstraint::kSmclk);
  arm();
  return id;
}

void TimerService::reset() {
  entries_.clear();
  power_.update(power_handle_, ClockConstraint::kNone);
}

void TimerService::stop(TimerId id) {
  if (id >= entries_.size()) return;
  entries_[id].active = false;
  if (active_count() == 0) {
    power_.update(power_handle_, ClockConstraint::kNone);
    unit_.cancel();
  } else {
    arm();
  }
}

bool TimerService::active(TimerId id) const {
  return id < entries_.size() && entries_[id].active;
}

std::size_t TimerService::active_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return e.active; }));
}

void TimerService::arm() {
  std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
  for (const Entry& e : entries_) {
    if (e.active) earliest = std::min(earliest, e.deadline_local_ns);
  }
  if (earliest == std::numeric_limits<std::int64_t>::max()) return;
  const std::int64_t delay = std::max<std::int64_t>(0, earliest - local_now_ns());
  unit_.set_alarm(sim::Duration::nanoseconds(delay), [this] { on_compare(); });
}

void TimerService::on_compare() {
  const std::int64_t now_local = local_now_ns();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (!e.active || e.deadline_local_ns > now_local) continue;
    if (e.period_local_ns > 0) {
      e.deadline_local_ns += e.period_local_ns;
    } else {
      e.active = false;
    }
    // Deliver the expiry as an interrupt: wake-up + ISR overhead + the
    // virtualization bookkeeping, then the handler body.
    scheduler_.raise_interrupt(e.name, kServiceCycles, e.handler);
  }
  if (active_count() == 0) {
    power_.update(power_handle_, ClockConstraint::kNone);
  } else {
    arm();
  }
}

}  // namespace bansim::os
