// Observation interface of the energy estimation model.
//
// The paper's estimator does not watch the silicon; it watches the *OS-level
// event stream* of the TOSSIM simulation: which tasks ran, when the MAC
// commanded the radio on and off, which packets crossed the air.  ModelProbe
// is that event stream.  The OS, driver and MAC layers publish coarse
// semantic events here, and core::EnergyEstimator turns them into the
// paper's E = I * Vdd * t model — without ever seeing settle phases, wake-up
// transients, clock skew or data-dependent cycle counts.  The gap between
// the estimate and the Board meters is therefore structural, exactly like
// the paper's Sim-vs-Real gap.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace bansim::os {

class ModelProbe {
 public:
  virtual ~ModelProbe() = default;

  /// A named OS task or interrupt handler was executed.
  virtual void on_task(std::string_view node, std::string_view task,
                       sim::TimePoint when) = 0;

  /// The MAC/driver commanded the receiver on (start of a listen window).
  virtual void on_radio_rx_on(std::string_view node, sim::TimePoint when) = 0;

  /// The MAC/driver commanded the receiver off.
  virtual void on_radio_rx_off(std::string_view node, sim::TimePoint when) = 0;

  /// A frame of `frame_bytes` serialized bytes was handed to the radio for
  /// transmission.
  virtual void on_radio_tx(std::string_view node, std::size_t frame_bytes,
                           sim::TimePoint when) = 0;

  /// A frame crossed the stack boundary (sent or received by this node);
  /// lets the estimator account control-packet overhead separately.
  virtual void on_packet(std::string_view node, net::PacketType type,
                         bool transmit, sim::TimePoint when) = 0;
};

/// Discards everything; used when no estimator is attached.
class NullProbe final : public ModelProbe {
 public:
  void on_task(std::string_view, std::string_view, sim::TimePoint) override {}
  void on_radio_rx_on(std::string_view, sim::TimePoint) override {}
  void on_radio_rx_off(std::string_view, sim::TimePoint) override {}
  void on_radio_tx(std::string_view, std::size_t, sim::TimePoint) override {}
  void on_packet(std::string_view, net::PacketType, bool, sim::TimePoint) override {}
};

}  // namespace bansim::os
