// TinyOS-style task scheduler.
//
// TinyOS executes posted tasks from a FIFO queue, run-to-completion, and
// drops the MCU into a low-power mode when the queue drains.  Interrupts
// (radio data-ready, timer compare, ADC done) wake the MCU, run their
// handler, and usually post tasks.  This scheduler reproduces that
// behaviour on the event kernel and is the single place where MCU power
// states are switched, so the Board's MCU meter sees exactly the residency
// a real node would have:
//   * every LPM exit costs the 6 us wake-up latency in active mode,
//   * every interrupt pays the hardware entry/RETI overhead cycles,
//   * task bodies cost their *actual*, data-dependent cycle counts,
// while the ModelProbe only learns "task X ran", which is all the paper's
// estimator gets from TOSSIM.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "hw/mcu.hpp"
#include "os/cycle_cost_model.hpp"
#include "os/power_manager.hpp"
#include "os/probe.hpp"
#include "sim/context.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::os {

class TaskScheduler {
 public:
  /// `nominal_costs` switches the scheduler into estimation-model mode:
  /// when non-null, every task is charged the table's nominal cycles
  /// instead of the caller-supplied actual count (PowerTOSSIM-style
  /// basic-block accounting).  Pass nullptr for the reference platform.
  TaskScheduler(sim::SimContext& context, hw::Mcu& mcu, PowerManager& power,
                std::string node_name, ModelProbe& probe,
                const CycleCostModel* nominal_costs = nullptr);

  /// Posts a task.  `cycles` is the actual cost of this execution (may be
  /// data dependent); `body` runs when the task completes.
  void post(std::string name, std::uint64_t cycles, std::function<void()> body);

  /// Raises a hardware interrupt: jumps the queue, pays the ISR
  /// entry/exit overhead on top of `cycles`, wakes the MCU if asleep.
  void raise_interrupt(std::string name, std::uint64_t cycles,
                       std::function<void()> handler);

  [[nodiscard]] bool idle() const { return !running_ && queue_.empty(); }
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::uint64_t interrupts_run() const { return interrupts_run_; }

  /// Run-reset: drops queued work and zeroes the dispatch counters.  The
  /// in-flight completion event (if any) died with the event queue.
  void reset() {
    queue_.clear();
    running_ = false;
    tasks_run_ = 0;
    interrupts_run_ = 0;
  }

 private:
  struct Entry {
    std::string name;
    std::uint64_t cycles;
    std::function<void()> body;
    bool is_interrupt;
  };

  void dispatch_next();

  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  hw::Mcu& mcu_;
  PowerManager& power_;
  std::string node_;
  sim::TraceNodeId trace_node_;
  ModelProbe& probe_;
  const CycleCostModel* nominal_costs_;
  std::deque<Entry> queue_;
  bool running_{false};
  std::uint64_t tasks_run_{0};
  std::uint64_t interrupts_run_{0};
};

}  // namespace bansim::os
