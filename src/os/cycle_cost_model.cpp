#include "os/cycle_cost_model.hpp"

namespace bansim::os {

void CycleCostModel::set(std::string task, std::uint64_t cycles) {
  for (auto& [name, cost] : table_) {
    if (name == task) {
      cost = cycles;
      return;
    }
  }
  table_.emplace_back(std::move(task), cycles);
}

std::uint64_t CycleCostModel::lookup(std::string_view task,
                                     std::uint64_t actual) const {
  for (const auto& [name, cost] : table_) {
    if (name == task) return cost;
  }
  return actual;
}

bool CycleCostModel::has(std::string_view task) const {
  for (const auto& [name, cost] : table_) {
    if (name == task) return true;
  }
  return false;
}

CycleCostModel CycleCostModel::platform_defaults() {
  // Calibrated averages, in the spirit of PowerTOSSIM's basic-block map:
  // each entry is the mean cost observed on the bench for that code path,
  // rounded up a little for safety margin.  The real executions are data
  // dependent, which is precisely why the estimates are not exact.
  CycleCostModel m;
  m.set("radio.clockin", 1600);
  m.set("radio.clockout", 1750);
  m.set("radio.rx_dispatch", 300);
  m.set("mac.beacon_proc", 430);
  m.set("mac.prepare_tx", 350);
  m.set("mac.join", 500);
  m.set("app.acq_frame", 8450);
  m.set("app.rpeak_step", 460);
  m.set("app.pack_payload", 260);
  m.set("bs.handle_rx", 420);
  m.set("bs.emit_beacon", 380);
  return m;
}

}  // namespace bansim::os
