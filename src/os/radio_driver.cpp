#include "os/radio_driver.hpp"

#include <cassert>
#include <utility>

namespace bansim::os {

RadioDriver::RadioDriver(sim::Simulator& simulator, hw::RadioNrf2401& radio,
                         TaskScheduler& scheduler, ModelProbe& probe,
                         std::string node_name)
    : simulator_{simulator}, radio_{radio}, scheduler_{scheduler},
      probe_{probe}, node_{std::move(node_name)} {
  hw::RadioNrf2401::Callbacks callbacks;
  callbacks.on_clockout_start = [this](std::size_t frame_bytes) {
    // DR1 asserted: the MCU wakes on the data-ready interrupt and clocks
    // the frame out of the FIFO.
    scheduler_.raise_interrupt("radio.clockout",
                               kCyclesPerSpiByte * frame_bytes, nullptr);
  };
  callbacks.on_receive = [this](const net::Packet& packet) {
    probe_.on_packet(node_, packet.header.type, /*transmit=*/false,
                     simulator_.now());
    const std::uint64_t cycles = 180 + 8 * packet.payload.size();
    scheduler_.post("radio.rx_dispatch", cycles, [this, packet] {
      if (receive_handler_) receive_handler_(packet);
    });
  };
  callbacks.on_send_done = [this] {
    send_in_progress_ = false;
    if (auto done = std::exchange(send_done_, nullptr)) done();
  };
  radio_.set_callbacks(std::move(callbacks));
}

void RadioDriver::init(std::function<void()> ready) {
  radio_.power_up();
  // Poll-free: the crystal start-up takes the datasheet time; model the
  // readiness notification as a one-shot at that horizon.
  simulator_.schedule_in(radio_.params().powerup_time,
                         [ready = std::move(ready)] {
                           if (ready) ready();
                         });
}

void RadioDriver::send(const net::Packet& packet, std::function<void()> done) {
  assert(!send_in_progress_ && "driver supports one outstanding send");
  send_in_progress_ = true;
  send_done_ = std::move(done);

  const auto frame_bytes = packet.wire_size();
  probe_.on_radio_tx(node_, frame_bytes, simulator_.now());
  probe_.on_packet(node_, packet.header.type, /*transmit=*/true,
                   simulator_.now());

  // The MCU bit-bangs the FIFO while the radio clocks it in: both devices
  // are busy for the same stretch, so the cost is charged concurrently.
  scheduler_.post("radio.clockin", kCyclesPerSpiByte * frame_bytes, nullptr);
  radio_.send(packet);
}

void RadioDriver::start_listen() {
  probe_.on_radio_rx_on(node_, simulator_.now());
  radio_.start_rx();
}

void RadioDriver::stop_listen() {
  probe_.on_radio_rx_off(node_, simulator_.now());
  radio_.stop_rx();
}

bool RadioDriver::listening() const {
  const auto s = radio_.state();
  return s == hw::RadioState::kRxSettle || s == hw::RadioState::kRxListen ||
         s == hw::RadioState::kRxClockOut;
}

}  // namespace bansim::os
