// TinyOS power management.
//
// When the task queue drains, TinyOS selects the deepest low-power mode
// compatible with the peripherals still in use ("the TinyOS scheduler
// calculates in which of the 5 available power save modes the
// microcontroller will be put", Section 4.1).  Peripherals register clock
// constraints; the manager picks the deepest mode that keeps every required
// clock alive.  Because the BAN applications always keep the Timer_A
// compare unit running on SMCLK, the chosen mode is in practice always
// LPM1 — matching the paper's observation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/mcu.hpp"

namespace bansim::os {

/// Clock resources a peripheral can pin.
enum class ClockConstraint : std::uint8_t {
  kNone = 0,      ///< no clock needed; LPM4 acceptable
  kAclk = 1,      ///< 32 kHz crystal; LPM3 acceptable
  kSmclk = 2,     ///< sub-main clock (DCO); at most LPM1
};

class PowerManager {
 public:
  /// Declares a named constraint; returns a handle for updates.
  std::size_t register_peripheral(std::string name, ClockConstraint needs);

  /// Updates a peripheral's requirement (e.g. timer stopped -> kNone).
  void update(std::size_t handle, ClockConstraint needs);

  /// The deepest mode compatible with every current constraint.
  [[nodiscard]] hw::McuMode idle_mode() const;

 private:
  std::vector<std::pair<std::string, ClockConstraint>> peripherals_;
};

}  // namespace bansim::os
