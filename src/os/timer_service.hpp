// Virtualized timers (the TinyOS Timer component).
//
// Applications and the MAC ask for many logical timers; the service
// multiplexes them onto the single hardware compare unit.  All intervals
// are specified in *local* node time: a node with a fast DCO fires early in
// true time, which is how two nodes programmed with the same TDMA cycle
// drift apart between beacons.  Each expiry is delivered as a hardware
// interrupt through the task scheduler, so timers wake the MCU and pay ISR
// overhead like the real platform.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/mcu.hpp"
#include "hw/timer_unit.hpp"
#include "os/power_manager.hpp"
#include "os/task_scheduler.hpp"
#include "sim/simulator.hpp"

namespace bansim::os {

class TimerService {
 public:
  using TimerId = std::size_t;
  static constexpr TimerId kInvalidTimer = static_cast<TimerId>(-1);

  TimerService(sim::Simulator& simulator, hw::Mcu& mcu, hw::TimerUnit& unit,
               TaskScheduler& scheduler, PowerManager& power);

  /// Fires `handler` every `period` of local time until stopped.
  TimerId start_periodic(std::string name, sim::Duration period,
                         std::function<void()> handler);

  /// Fires `handler` once after `delay` of local time.
  TimerId start_oneshot(std::string name, sim::Duration delay,
                        std::function<void()> handler);

  /// Stops a timer; its pending expiry (if any) is discarded.  Ids of
  /// stopped timers are recycled by later start_* calls, so callers must
  /// not stop an id twice after restarting timers.
  void stop(TimerId id);

  [[nodiscard]] bool active(TimerId id) const;
  [[nodiscard]] std::size_t active_count() const;

  /// Run-reset: every timer (and the ids referring to them) is forgotten
  /// and the power constraint returns to the ctor-time kNone.  The table's
  /// capacity survives for the next run.  The hardware compare event died
  /// with the cleared event queue; the TimerUnit is reset by its board.
  void reset();

  /// Cycle cost charged for servicing one expiry interrupt.
  static constexpr std::uint64_t kServiceCycles = 90;

 private:
  struct Entry {
    std::string name;
    std::int64_t deadline_local_ns;
    std::int64_t period_local_ns;  ///< 0 for one-shot
    std::function<void()> handler;
    bool active{false};
  };

  /// Local clock reading (ns since boot on this node's crystal).
  [[nodiscard]] std::int64_t local_now_ns() const;

  /// Places an entry into the table, reusing dead slots.
  TimerId insert(Entry entry);

  /// Programs the hardware alarm for the earliest active deadline.
  void arm();

  /// Hardware compare fired: dispatch every due entry, re-arm.
  void on_compare();

  sim::Simulator& simulator_;
  hw::Mcu& mcu_;
  hw::TimerUnit& unit_;
  TaskScheduler& scheduler_;
  std::vector<Entry> entries_;
  std::size_t power_handle_;
  PowerManager& power_;
};

}  // namespace bansim::os
