// TinyOS driver for the nRF2401 radio.
//
// Sits between the MAC and the radio chip, doing what the platform's
// hand-written driver does (Section 3.2): bit-banging frames into the
// ShockBurst FIFO (which costs MCU active cycles concurrently with the
// radio's clock-in phase), servicing the data-ready interrupt, and
// dispatching received packets up the stack as posted tasks.  It also
// publishes the coarse radio events the estimation model consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "hw/radio_nrf2401.hpp"
#include "net/packet.hpp"
#include "os/probe.hpp"
#include "os/task_scheduler.hpp"
#include "sim/simulator.hpp"

namespace bansim::os {

class RadioDriver {
 public:
  using ReceiveHandler = std::function<void(const net::Packet&)>;

  RadioDriver(sim::Simulator& simulator, hw::RadioNrf2401& radio,
              TaskScheduler& scheduler, ModelProbe& probe,
              std::string node_name);

  /// Powers the chip out of power-down; `ready` fires when standby is
  /// reached (crystal start-up time later).
  void init(std::function<void()> ready);

  void set_receive_handler(ReceiveHandler handler) {
    receive_handler_ = std::move(handler);
  }

  /// Transmits `packet`; `done` fires when the burst has left the antenna
  /// and the radio is back in standby.  Requires the radio idle (standby).
  void send(const net::Packet& packet, std::function<void()> done);

  /// Opens / closes a listen window.
  void start_listen();
  void stop_listen();

  /// Hard-fault recovery: forgets any in-flight send (its completion
  /// callback is dropped, never invoked) so the driver accepts commands
  /// again after a reboot.  The chip itself is reset separately — callers
  /// pair this with radio().power_down().
  void reset() {
    send_in_progress_ = false;
    send_done_ = nullptr;
  }

  [[nodiscard]] bool listening() const;
  [[nodiscard]] bool sending() const { return send_in_progress_; }
  [[nodiscard]] hw::RadioNrf2401& radio() { return radio_; }

  /// MCU cycles to shuttle one byte over the bit-banged SPI (8 bits at
  /// 1 cycle/bit plus loop overhead, 8 MHz core vs 1 Mbps SPI).
  static constexpr std::uint64_t kCyclesPerSpiByte = 64;

 private:
  sim::Simulator& simulator_;
  hw::RadioNrf2401& radio_;
  TaskScheduler& scheduler_;
  ModelProbe& probe_;
  std::string node_;
  ReceiveHandler receive_handler_;
  std::function<void()> send_done_;
  bool send_in_progress_{false};
};

}  // namespace bansim::os
