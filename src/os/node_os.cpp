#include "os/node_os.hpp"

namespace bansim::os {

NodeOs::NodeOs(sim::SimContext& context, hw::Board& board, ModelProbe& probe,
               const CycleCostModel* nominal_costs)
    : board_{board},
      power_{},
      scheduler_{context, board.mcu(), power_, board.name(), probe,
                 nominal_costs},
      timers_{context.simulator, board.mcu(), board.timer(), scheduler_,
              power_},
      radio_driver_{context.simulator, board.radio(), scheduler_, probe,
                    board.name()} {}

}  // namespace bansim::os
