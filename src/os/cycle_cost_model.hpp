// Task-name -> nominal-cycle-count mapping.
//
// PowerTOSSIM estimates CPU time by mapping basic blocks to fixed cycle
// counts; the paper reuses that idea (Section 4.1) and inherits its main
// weakness: the mapping is a calibrated average, while the silicon executes
// data-dependent paths.  In this reproduction the *reference* ("Real")
// scheduler charges each task its actual, data-dependent cycles, while the
// *model* ("Sim") scheduler consults this table — so the µC estimation
// error has the same structural cause as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bansim::os {

class CycleCostModel {
 public:
  /// Registers (or overwrites) the nominal cost of `task`.
  void set(std::string task, std::uint64_t cycles);

  /// Nominal cost of `task`; falls back to `actual` when the task was never
  /// calibrated (the mapping tool saw no such block).
  [[nodiscard]] std::uint64_t lookup(std::string_view task,
                                     std::uint64_t actual) const;

  [[nodiscard]] bool has(std::string_view task) const;
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// The calibration table shipped with the simulator: averages measured on
  /// the reference platform for every task the BAN software posts.
  [[nodiscard]] static CycleCostModel platform_defaults();

 private:
  std::vector<std::pair<std::string, std::uint64_t>> table_;
};

}  // namespace bansim::os
