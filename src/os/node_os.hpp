// The embedded OS instance of one node: TinyOS kernel (task scheduler +
// power manager), virtual timers and the radio driver, bound to a Board.
// Everything above this facade (MAC, applications) is hardware-independent,
// mirroring the layered architecture of Figure 1.
#pragma once

#include <string>

#include "hw/board.hpp"
#include "os/cycle_cost_model.hpp"
#include "os/power_manager.hpp"
#include "os/probe.hpp"
#include "os/radio_driver.hpp"
#include "os/task_scheduler.hpp"
#include "os/timer_service.hpp"
#include "sim/context.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::os {

class NodeOs {
 public:
  /// `nominal_costs` non-null selects estimation-model task accounting
  /// (see TaskScheduler); null is the reference platform.
  NodeOs(sim::SimContext& context, hw::Board& board, ModelProbe& probe,
         const CycleCostModel* nominal_costs = nullptr);

  [[nodiscard]] hw::Board& board() { return board_; }
  [[nodiscard]] TaskScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] TimerService& timers() { return timers_; }
  [[nodiscard]] RadioDriver& radio() { return radio_driver_; }
  [[nodiscard]] PowerManager& power() { return power_; }
  [[nodiscard]] const std::string& node_name() const { return board_.name(); }

  /// Run-reset: scheduler queue, timer table and radio driver back to
  /// boot state.  TimerService::reset restores the only registered power
  /// constraint, so the power manager needs no separate step.  The board
  /// is reset by its owner (it is not owned here).
  void reset() {
    scheduler_.reset();
    timers_.reset();
    radio_driver_.reset();
  }

 private:
  hw::Board& board_;
  PowerManager power_;
  TaskScheduler scheduler_;
  TimerService timers_;
  RadioDriver radio_driver_;
};

}  // namespace bansim::os
