#include "os/power_manager.hpp"

namespace bansim::os {

std::size_t PowerManager::register_peripheral(std::string name,
                                              ClockConstraint needs) {
  peripherals_.emplace_back(std::move(name), needs);
  return peripherals_.size() - 1;
}

void PowerManager::update(std::size_t handle, ClockConstraint needs) {
  peripherals_[handle].second = needs;
}

hw::McuMode PowerManager::idle_mode() const {
  ClockConstraint strictest = ClockConstraint::kNone;
  for (const auto& [name, needs] : peripherals_) {
    if (static_cast<int>(needs) > static_cast<int>(strictest)) strictest = needs;
  }
  switch (strictest) {
    case ClockConstraint::kSmclk: return hw::McuMode::kLpm1;
    case ClockConstraint::kAclk: return hw::McuMode::kLpm3;
    case ClockConstraint::kNone: return hw::McuMode::kLpm4;
  }
  return hw::McuMode::kLpm1;
}

}  // namespace bansim::os
