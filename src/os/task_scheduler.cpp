#include "os/task_scheduler.hpp"

namespace bansim::os {

TaskScheduler::TaskScheduler(sim::SimContext& context, hw::Mcu& mcu,
                             PowerManager& power, std::string node_name,
                             ModelProbe& probe,
                             const CycleCostModel* nominal_costs)
    : simulator_{context.simulator}, tracer_{context.tracer}, mcu_{mcu},
      power_{power}, node_{std::move(node_name)},
      trace_node_{tracer_.intern(node_)}, probe_{probe},
      nominal_costs_{nominal_costs} {}

void TaskScheduler::post(std::string name, std::uint64_t cycles,
                         std::function<void()> body) {
  queue_.push_back(Entry{std::move(name), cycles, std::move(body), false});
  if (!running_) dispatch_next();
}

void TaskScheduler::raise_interrupt(std::string name, std::uint64_t cycles,
                                    std::function<void()> handler) {
  // Interrupts pre-empt the queue order but not a task already in flight
  // (run-to-completion): the handler is dispatched before any queued task.
  queue_.push_front(Entry{std::move(name), cycles, std::move(handler), true});
  if (!running_) dispatch_next();
}

void TaskScheduler::dispatch_next() {
  if (queue_.empty()) {
    // Nothing to do: the OS drops the MCU into the deepest legal LPM.
    if (mcu_.mode() == hw::McuMode::kActive) {
      mcu_.enter(power_.idle_mode());
    }
    return;
  }

  running_ = true;
  Entry entry = std::move(queue_.front());
  queue_.pop_front();

  // Waking from an LPM stalls execution while clocks restart; the MCU draws
  // active current for that stretch but does no useful work.
  sim::Duration latency = sim::Duration::zero();
  if (mcu_.mode() != hw::McuMode::kActive) {
    latency = mcu_.enter(hw::McuMode::kActive);
  }

  std::uint64_t cycles = entry.cycles;
  if (nominal_costs_) {
    // Estimation-model mode: charge the calibrated average for this code
    // path instead of the data-dependent actual count.
    cycles = nominal_costs_->lookup(entry.name, entry.cycles);
  }
  if (entry.is_interrupt) {
    cycles += mcu_.isr_overhead_cycles();
    ++interrupts_run_;
  } else {
    ++tasks_run_;
  }

  probe_.on_task(node_, entry.name, simulator_.now());
  tracer_.emit(simulator_.now(), sim::TraceCategory::kOs, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << (entry.is_interrupt ? "isr " : "task ") << entry.name
                   << " (" << cycles << " cyc)";
               });

  const sim::Duration busy = latency + mcu_.cycles_to_time(cycles);
  simulator_.schedule_in(busy, [this, body = std::move(entry.body)] {
    // The body runs at completion time: side effects (radio commands,
    // posting follow-up tasks) happen after the computation they model.
    // running_ stays set while the body executes, so anything it posts or
    // raises is enqueued — interrupts at the front — and dispatched next.
    if (body) body();
    running_ = false;
    dispatch_next();
  });
}

}  // namespace bansim::os
