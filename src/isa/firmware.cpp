#include "isa/firmware.hpp"

#include "isa/msp430_asm.hpp"
#include "isa/msp430_core.hpp"

namespace bansim::isa::firmware {

std::string rpeak_source(std::span<const std::uint16_t> codes) {
  std::string data;
  for (const std::uint16_t c : codes) {
    data += "  .word " + std::to_string(c) + "\n";
  }
  std::string beats = "beats:\n";
  for (int i = 0; i < 64; ++i) beats += "  .word 0\n";

  // Register map:
  //   r8  noise floor (IIR)     r9  samples since last beat
  //   r10 sample pointer        r11 remaining samples
  //   r12 previous sample       r13 beat count
  //   r14 output pointer        r15 sample index
  return R"(
  start:
    mov #data, r10
    mov #)" + std::to_string(codes.size()) + R"(, r11
    mov @r10, r12      ; prime "previous" with the first sample
    clr r13
    mov #beats, r14
    mov #1000, r9     ; no refractory lockout at stream start
    clr r8
    clr r15
  loop:
    mov @r10+, r4
    mov r4, r5
    sub r12, r5        ; derivative
    mov r4, r12
    tst r5
    jge pos
    clr r6
    sub r5, r6
    mov r6, r5         ; |derivative|
  pos:
    rra r5
    rra r5
    rra r5
    rra r5             ; scale >>4: QRS slopes land at ~16, square <= 64k
    clr r6
    mov r5, r7
    mov r5, r4
  mul:                 ; r6 = r5^2 (shift-add)
    tst r4
    jz mdone
    bit #1, r4
    jz nadd
    add r7, r6
  nadd:
    add r7, r7
    rra r4
    jmp mul
  mdone:
    mov r8, r7         ; threshold = 8*nf + 64
    add r7, r7
    add r7, r7
    add r7, r7
    add #64, r7
    inc r9
    cmp r7, r6         ; energy under threshold?
    jlo no_beat
    cmp #50, r9        ; 250 ms refractory at 200 Hz
    jlo no_beat
    cmp #64, r13       ; output capacity
    jhs no_beat
    mov r15, 0(r14)
    add #2, r14
    inc r13
    clr r9
  no_beat:
    mov r8, r7         ; nf += (e - nf)/8
    rra r7
    rra r7
    rra r7
    sub r7, r8
    mov r6, r7
    rra r7
    rra r7
    rra r7
    add r7, r8
    inc r15
    dec r11
    jnz loop
    bis #0x10, sr      ; frame processed: LPM0
  data:
)" + data + beats;
}

RpeakRun run_rpeak(std::span<const std::uint16_t> codes) {
  Msp430Assembler assembler;
  Msp430Core core;
  const auto words = assembler.assemble(rpeak_source(codes));
  core.load(0x4000, words);
  core.set_reg(kSp, 0x3FFE);
  core.run(200'000'000);

  RpeakRun run;
  run.instructions = core.instructions();
  run.cycles = core.cycles();
  run.energy_joules = core.energy_joules();
  const std::uint16_t count = core.reg(13);
  const std::uint16_t base = assembler.label("beats");
  for (std::uint16_t i = 0; i < count && i < 64; ++i) {
    run.beat_indices.push_back(
        core.read16(static_cast<std::uint16_t>(base + 2 * i)));
  }
  return run;
}

}  // namespace bansim::isa::firmware
