// MSP430 instruction-set simulator.
//
// The paper positions its OS-level model against instruction-level node
// simulators (Atemu, Simulavr — Section 2): accurate but too slow to scale
// to whole networks.  This core makes that comparison concrete inside the
// repository: a faithful 16-bit MSP430 CPU — all three instruction
// formats, all seven addressing modes, the constant generators, byte/word
// operations, status flags, interrupts and the low-power CPUOFF mechanics
// — with the documented per-addressing-mode cycle costs and the paper's
// 0.6 nJ/instruction active-energy figure.
//
// The bench bench_iss_vs_model runs real firmware on this core and
// measures simulated-instructions-per-wallclock-second against the
// OS-level model's event throughput, reproducing the paper's scalability
// argument quantitatively.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace bansim::isa {

/// Status-register bits.
inline constexpr std::uint16_t kSrC = 0x0001;       ///< carry
inline constexpr std::uint16_t kSrZ = 0x0002;       ///< zero
inline constexpr std::uint16_t kSrN = 0x0004;       ///< negative
inline constexpr std::uint16_t kSrGie = 0x0008;     ///< global interrupt enable
inline constexpr std::uint16_t kSrCpuOff = 0x0010;  ///< LPM: CPU halted
inline constexpr std::uint16_t kSrV = 0x0100;       ///< signed overflow

/// Register aliases.
inline constexpr int kPc = 0;
inline constexpr int kSp = 1;
inline constexpr int kSr = 2;
inline constexpr int kCg2 = 3;

enum class StepResult {
  kOk,          ///< one instruction executed
  kCpuOff,      ///< CPUOFF set: core sleeping, waiting for an interrupt
  kIllegal,     ///< undefined opcode hit
};

class Msp430Core {
 public:
  /// 64 KiB flat memory; RAM/flash distinction is not modelled.
  static constexpr std::size_t kMemoryBytes = 0x10000;

  Msp430Core();

  /// Zeroes registers and memory; PC and SP must then be set.
  void reset();

  // --- Memory -------------------------------------------------------------
  [[nodiscard]] std::uint8_t read8(std::uint16_t addr) const {
    return memory_[addr];
  }
  [[nodiscard]] std::uint16_t read16(std::uint16_t addr) const;
  void write8(std::uint16_t addr, std::uint8_t value) { memory_[addr] = value; }
  void write16(std::uint16_t addr, std::uint16_t value);

  /// Copies a program image to `addr` and points PC at it.
  void load(std::uint16_t addr, const std::vector<std::uint16_t>& words);

  // --- Registers ----------------------------------------------------------
  [[nodiscard]] std::uint16_t reg(int r) const {
    return registers_[static_cast<std::size_t>(r)];
  }
  void set_reg(int r, std::uint16_t value) {
    registers_[static_cast<std::size_t>(r)] = value;
  }
  [[nodiscard]] std::uint16_t pc() const { return reg(kPc); }
  [[nodiscard]] std::uint16_t sp() const { return reg(kSp); }
  [[nodiscard]] std::uint16_t sr() const { return reg(kSr); }
  [[nodiscard]] bool flag(std::uint16_t bit) const { return (sr() & bit) != 0; }

  // --- Execution ----------------------------------------------------------
  /// Executes one instruction (or reports the sleeping/illegal state).
  StepResult step();

  /// Runs until CPUOFF, an illegal opcode, or `max_instructions`.
  StepResult run(std::uint64_t max_instructions);

  /// Asserts an interrupt whose vector lives at `vector_addr`.  Taken
  /// before the next instruction when GIE is set; wakes the core from
  /// CPUOFF (the saved SR keeps CPUOFF — the ISR clears it on the stack to
  /// stay awake after RETI, as real firmware does).
  void request_interrupt(std::uint16_t vector_addr);

  // --- Accounting ---------------------------------------------------------
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Active-mode energy at the paper's figure of 0.6 nJ/instruction.
  [[nodiscard]] double energy_joules() const {
    return static_cast<double>(instructions_) * 0.6e-9;
  }

  /// Alternative accounting from the cycle count (I*V/f, 2 mA @ 2.8 V,
  /// 8 MHz) — the OS-level model's formula, for cross-checking.
  [[nodiscard]] double energy_joules_cycle_model() const {
    return static_cast<double>(cycles_) / 8.0e6 * 2.0e-3 * 2.8;
  }

 private:
  struct Operand {
    bool is_register{false};
    int reg{0};
    std::uint16_t address{0};
    std::uint16_t value{0};   ///< fetched source value
    int cycles{0};            ///< addressing-mode cycle contribution
  };

  [[nodiscard]] std::uint16_t fetch();
  Operand decode_source(int reg, int mode, bool byte_op);
  /// Destination decode for format-I (Ad: 0 register, 1 indexed).
  Operand decode_destination(int reg, int ad, bool byte_op);
  void write_operand(const Operand& op, std::uint16_t value, bool byte_op);

  void execute_format1(std::uint16_t word);
  void execute_format2(std::uint16_t word);
  void execute_jump(std::uint16_t word);
  void service_interrupt();

  void set_flags_logic(std::uint16_t result, bool byte_op);
  void set_flag(std::uint16_t bit, bool on);

  std::array<std::uint16_t, 16> registers_{};
  std::vector<std::uint8_t> memory_;
  std::uint64_t instructions_{0};
  std::uint64_t cycles_{0};
  bool irq_pending_{false};
  std::uint16_t irq_vector_{0};
  bool illegal_{false};
};

}  // namespace bansim::isa
