// Two-pass MSP430 assembler.
//
// Lets the test suite and the ISS benches write firmware in readable
// mnemonics instead of hand-packed words.  Supports the full core
// instruction set, all addressing modes, labels, byte suffixes, the
// constant generators (immediates 0/1/2/4/8/-1 assemble to zero-word
// operands, exactly like TI's assembler), and `.word` data.
//
// Syntax, one statement per line ('；' comments):
//   start:  mov   #0x1234, r4
//           add.b @r5+, 3(r6)
//           cmp   #8, r4        ; constant generator, no extension word
//           jne   start
//           call  #subroutine
//           bis   #0x10, sr     ; LPM0 (CPUOFF)
//   table:  .word 0xBEEF
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace bansim::isa {

/// Thrown on syntax errors, unknown mnemonics or out-of-range jumps.
class AsmError : public std::runtime_error {
 public:
  explicit AsmError(const std::string& message) : std::runtime_error(message) {}
};

class Msp430Assembler {
 public:
  /// Assembles `source` as if loaded at `origin`; returns the word image.
  [[nodiscard]] std::vector<std::uint16_t> assemble(const std::string& source,
                                                    std::uint16_t origin = 0x4000);

  /// Address of a label from the last assemble() call.
  [[nodiscard]] std::uint16_t label(const std::string& name) const;

 private:
  struct Operand {
    int reg{0};
    int mode{0};          ///< As encoding
    bool has_extension{false};
    std::uint16_t extension{0};
    std::string pending_label;  ///< extension resolved in pass 2
    bool pc_relative{false};    ///< symbolic: extension = label - word_addr
  };

  Operand parse_operand(const std::string& text, bool is_destination);
  [[nodiscard]] static std::string trim(const std::string& s);

  std::map<std::string, std::uint16_t> labels_;
};

}  // namespace bansim::isa
