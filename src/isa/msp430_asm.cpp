#include "isa/msp430_asm.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace bansim::isa {

namespace {

struct Statement {
  std::string mnemonic;  ///< lower case, ".b" stripped into byte_op
  bool byte_op{false};
  std::vector<std::string> operands;
  std::uint16_t address{0};  ///< assigned in pass 1
  int line{0};
};

const std::map<std::string, int, std::less<>> kFormat1 = {
    {"mov", 0x4}, {"add", 0x5}, {"addc", 0x6}, {"subc", 0x7},
    {"sub", 0x8}, {"cmp", 0x9}, {"dadd", 0xA}, {"bit", 0xB},
    {"bic", 0xC}, {"bis", 0xD}, {"xor", 0xE}, {"and", 0xF},
};

const std::map<std::string, int, std::less<>> kFormat2 = {
    {"rrc", 0}, {"swpb", 1}, {"rra", 2}, {"sxt", 3}, {"push", 4}, {"call", 5},
};

const std::map<std::string, int, std::less<>> kJumps = {
    {"jne", 0}, {"jnz", 0}, {"jeq", 1}, {"jz", 1}, {"jnc", 2}, {"jlo", 2},
    {"jc", 3},  {"jhs", 3}, {"jn", 4},  {"jge", 5}, {"jl", 6},  {"jmp", 7},
};

int parse_register(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "pc") return 0;
  if (lower == "sp") return 1;
  if (lower == "sr") return 2;
  if (lower == "cg") return 3;
  if (lower.size() >= 2 && lower.size() <= 3 && lower[0] == 'r' &&
      std::all_of(lower.begin() + 1, lower.end(),
                  [](unsigned char c) { return std::isdigit(c); })) {
    const int r = std::stoi(lower.substr(1));
    if (r >= 0 && r <= 15) return r;
  }
  return -1;
}

bool parse_number(const std::string& text, std::int32_t& out) {
  if (text.empty()) return false;
  try {
    std::size_t used = 0;
    out = std::stoi(text, &used, 0);  // handles 0x..., decimal, negatives
    return used == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string Msp430Assembler::trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

Msp430Assembler::Operand Msp430Assembler::parse_operand(
    const std::string& raw, bool is_destination) {
  const std::string text = trim(raw);
  if (text.empty()) throw AsmError("empty operand");
  Operand op;

  if (text[0] == '#') {
    if (is_destination) throw AsmError("immediate destination: " + text);
    const std::string value = text.substr(1);
    std::int32_t number = 0;
    if (parse_number(value, number)) {
      const std::uint16_t v = static_cast<std::uint16_t>(number);
      // Constant generators, as TI's assembler emits them.
      switch (v) {
        case 0: op.reg = 3; op.mode = 0; return op;
        case 1: op.reg = 3; op.mode = 1; return op;
        case 2: op.reg = 3; op.mode = 2; return op;
        case 0xFFFF: op.reg = 3; op.mode = 3; return op;
        case 4: op.reg = 2; op.mode = 2; return op;
        case 8: op.reg = 2; op.mode = 3; return op;
        default:
          op.reg = 0;
          op.mode = 3;
          op.has_extension = true;
          op.extension = v;
          return op;
      }
    }
    // #label: the label's absolute address as an immediate.
    op.reg = 0;
    op.mode = 3;
    op.has_extension = true;
    op.pending_label = value;
    return op;
  }

  if (text[0] == '&') {
    op.reg = 2;
    op.mode = 1;
    op.has_extension = true;
    std::int32_t number = 0;
    if (parse_number(text.substr(1), number)) {
      op.extension = static_cast<std::uint16_t>(number);
    } else {
      op.pending_label = text.substr(1);
    }
    return op;
  }

  if (text[0] == '@') {
    if (is_destination) throw AsmError("indirect destination: " + text);
    const bool autoinc = text.back() == '+';
    const std::string reg_name =
        autoinc ? text.substr(1, text.size() - 2) : text.substr(1);
    const int r = parse_register(reg_name);
    if (r < 0) throw AsmError("bad register: " + text);
    op.reg = r;
    op.mode = autoinc ? 3 : 2;
    return op;
  }

  const auto paren = text.find('(');
  if (paren != std::string::npos && text.back() == ')') {
    const int r = parse_register(
        text.substr(paren + 1, text.size() - paren - 2));
    if (r < 0) throw AsmError("bad register: " + text);
    std::int32_t offset = 0;
    if (!parse_number(text.substr(0, paren), offset)) {
      throw AsmError("bad index: " + text);
    }
    op.reg = r;
    op.mode = 1;
    op.has_extension = true;
    op.extension = static_cast<std::uint16_t>(offset);
    return op;
  }

  const int r = parse_register(text);
  if (r >= 0) {
    op.reg = r;
    op.mode = 0;
    return op;
  }

  // Bare symbol: PC-relative (symbolic) addressing.
  op.reg = 0;
  op.mode = 1;
  op.has_extension = true;
  op.pending_label = text;
  op.pc_relative = true;
  return op;
}

std::vector<std::uint16_t> Msp430Assembler::assemble(const std::string& source,
                                                     std::uint16_t origin) {
  labels_.clear();
  std::vector<Statement> statements;

  // --- Parse ---------------------------------------------------------------
  std::istringstream stream{source};
  std::string line;
  int line_no = 0;
  std::vector<std::pair<std::string, int>> pending_labels;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto comment = line.find(';');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    while (!line.empty()) {
      const auto colon = line.find(':');
      const auto space = line.find_first_of(" \t");
      if (colon != std::string::npos && (space == std::string::npos || colon < space)) {
        pending_labels.emplace_back(trim(line.substr(0, colon)), line_no);
        line = trim(line.substr(colon + 1));
        continue;
      }
      break;
    }
    if (line.empty()) continue;

    Statement st;
    st.line = line_no;
    const auto space = line.find_first_of(" \t");
    std::string mnemonic =
        space == std::string::npos ? line : line.substr(0, space);
    std::transform(mnemonic.begin(), mnemonic.end(), mnemonic.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (mnemonic.size() > 2 && mnemonic.ends_with(".b")) {
      st.byte_op = true;
      mnemonic = mnemonic.substr(0, mnemonic.size() - 2);
    }
    st.mnemonic = mnemonic;
    if (space != std::string::npos) {
      std::string rest = line.substr(space + 1);
      std::size_t start = 0;
      int depth = 0;
      for (std::size_t i = 0; i <= rest.size(); ++i) {
        if (i == rest.size() || (rest[i] == ',' && depth == 0)) {
          st.operands.push_back(trim(rest.substr(start, i - start)));
          start = i + 1;
        } else if (rest[i] == '(') {
          ++depth;
        } else if (rest[i] == ')') {
          --depth;
        }
      }
    }

    statements.push_back(std::move(st));
    // Labels bind to this statement; mark them for pass 1, where the
    // statement's address becomes known.
    for (auto& [name, at_line] : pending_labels) {
      statements.back().operands.push_back("__label__" + name);
    }
    pending_labels.clear();
  }

  // --- Pass 1: sizes and label addresses -----------------------------------
  auto operand_words = [this](const std::string& text, bool dest) {
    return parse_operand(text, dest).has_extension ? 1 : 0;
  };

  std::uint16_t address = origin;
  for (Statement& st : statements) {
    // Pop label markers off the operand tail.
    while (!st.operands.empty() && st.operands.back().rfind("__label__", 0) == 0) {
      labels_[st.operands.back().substr(9)] = address;
      st.operands.pop_back();
    }
    st.address = address;
    int words = 1;
    try {
      if (st.mnemonic == ".word") {
        words = static_cast<int>(st.operands.size());
      } else if (kFormat1.count(st.mnemonic) || st.mnemonic == "br" ||
                 st.mnemonic == "clr" || st.mnemonic == "inc" ||
                 st.mnemonic == "dec" || st.mnemonic == "tst") {
        if (st.mnemonic == "clr" || st.mnemonic == "inc" ||
            st.mnemonic == "dec" || st.mnemonic == "tst") {
          if (st.operands.size() != 1) throw AsmError("needs 1 operand");
          words = 1 + operand_words(st.operands[0], true);
        } else if (st.mnemonic == "br") {
          if (st.operands.size() != 1) throw AsmError("needs 1 operand");
          words = 1 + operand_words(st.operands[0], false);
        } else {
          if (st.operands.size() != 2) throw AsmError("needs 2 operands");
          words = 1 + operand_words(st.operands[0], false) +
                  operand_words(st.operands[1], true);
        }
      } else if (kFormat2.count(st.mnemonic)) {
        if (st.operands.size() != 1) throw AsmError("needs 1 operand");
        words = 1 + operand_words(st.operands[0], false);
      } else if (kJumps.count(st.mnemonic) || st.mnemonic == "reti" ||
                 st.mnemonic == "ret" || st.mnemonic == "nop") {
        words = 1;
      } else {
        throw AsmError("unknown mnemonic: " + st.mnemonic);
      }
    } catch (const AsmError& e) {
      throw AsmError("line " + std::to_string(st.line) + ": " + e.what());
    }
    address = static_cast<std::uint16_t>(address + 2 * words);
  }

  // --- Pass 2: emit ---------------------------------------------------------
  std::vector<std::uint16_t> out;
  auto resolve = [this](Operand& op, std::uint16_t ext_word_addr) {
    if (!op.pending_label.empty()) {
      const auto it = labels_.find(op.pending_label);
      if (it == labels_.end()) throw AsmError("unknown label: " + op.pending_label);
      op.extension = op.pc_relative
                         ? static_cast<std::uint16_t>(it->second -
                                                      (ext_word_addr + 2))
                         : it->second;
    }
  };

  for (Statement& st : statements) {
    try {
      if (st.mnemonic == ".word") {
        for (const std::string& operand : st.operands) {
          std::int32_t v = 0;
          if (parse_number(operand, v)) {
            out.push_back(static_cast<std::uint16_t>(v));
          } else {
            const auto it = labels_.find(operand);
            if (it == labels_.end()) throw AsmError("unknown label: " + operand);
            out.push_back(it->second);
          }
        }
        continue;
      }
      if (st.mnemonic == "nop") {
        out.push_back(0x4303);  // MOV R3, R3
        continue;
      }
      if (st.mnemonic == "ret") {
        out.push_back(0x4130);  // MOV @SP+, PC
        continue;
      }
      if (st.mnemonic == "reti") {
        out.push_back(0x1300);
        continue;
      }
      if (const auto jump = kJumps.find(st.mnemonic); jump != kJumps.end()) {
        if (st.operands.size() != 1) throw AsmError("jump needs a target");
        std::int32_t target = 0;
        if (!parse_number(st.operands[0], target)) {
          const auto it = labels_.find(st.operands[0]);
          if (it == labels_.end()) {
            throw AsmError("unknown label: " + st.operands[0]);
          }
          target = it->second;
        }
        const std::int32_t delta = (target - (st.address + 2)) / 2;
        if (delta < -512 || delta > 511) throw AsmError("jump out of range");
        out.push_back(static_cast<std::uint16_t>(
            0x2000 | (jump->second << 10) | (delta & 0x3FF)));
        continue;
      }

      // Pseudo-ops mapping onto format I.
      std::string mnemonic = st.mnemonic;
      std::vector<std::string> operands = st.operands;
      if (mnemonic == "br") {
        mnemonic = "mov";
        operands = {st.operands[0], "pc"};
      } else if (mnemonic == "clr") {
        mnemonic = "mov";
        operands = {"#0", st.operands[0]};
      } else if (mnemonic == "inc") {
        mnemonic = "add";
        operands = {"#1", st.operands[0]};
      } else if (mnemonic == "dec") {
        mnemonic = "sub";
        operands = {"#1", st.operands[0]};
      } else if (mnemonic == "tst") {
        mnemonic = "cmp";
        operands = {"#0", st.operands[0]};
      }

      if (const auto f1 = kFormat1.find(mnemonic); f1 != kFormat1.end()) {
        Operand src = parse_operand(operands[0], false);
        Operand dst = parse_operand(operands[1], true);
        if (dst.mode != 0 && dst.mode != 1) {
          throw AsmError("illegal destination mode: " + operands[1]);
        }
        const std::uint16_t word = static_cast<std::uint16_t>(
            (f1->second << 12) | (src.reg << 8) | ((dst.mode & 1) << 7) |
            ((st.byte_op ? 1 : 0) << 6) | (src.mode << 4) | dst.reg);
        out.push_back(word);
        if (src.has_extension) {
          resolve(src, static_cast<std::uint16_t>(st.address + 2));
          out.push_back(src.extension);
        }
        if (dst.has_extension) {
          const std::uint16_t at = static_cast<std::uint16_t>(
              st.address + 2 + (src.has_extension ? 2 : 0));
          resolve(dst, at);
          out.push_back(dst.extension);
        }
        continue;
      }

      if (const auto f2 = kFormat2.find(mnemonic); f2 != kFormat2.end()) {
        Operand op = parse_operand(operands.at(0), false);
        const std::uint16_t word = static_cast<std::uint16_t>(
            0x1000 | (f2->second << 7) | ((st.byte_op ? 1 : 0) << 6) |
            (op.mode << 4) | op.reg);
        out.push_back(word);
        if (op.has_extension) {
          resolve(op, static_cast<std::uint16_t>(st.address + 2));
          out.push_back(op.extension);
        }
        continue;
      }
      throw AsmError("unknown mnemonic: " + mnemonic);
    } catch (const AsmError& e) {
      throw AsmError("line " + std::to_string(st.line) + ": " + e.what());
    }
  }
  return out;
}

std::uint16_t Msp430Assembler::label(const std::string& name) const {
  const auto it = labels_.find(name);
  if (it == labels_.end()) throw AsmError("unknown label: " + name);
  return it->second;
}

}  // namespace bansim::isa
