// Firmware library for the MSP430 ISS.
//
// Real node firmware, in assembly, runnable on the instruction-level core:
// currently the beat detector (a fixed-point, IIR-thresholded version of
// the Rpeak algorithm sized for the MSP430's 16-bit ALU — derivative,
// scaled squaring by shift-add, adaptive noise floor, refractory lockout).
// The test suite cross-validates its detections against the C++
// RpeakDetector on identical ADC streams: the same algorithmic contract
// the paper's platform firmware had to meet.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bansim::isa::firmware {

/// Source of the beat-detector firmware with the sample table inlined.
/// Detected beat sample-indices land in the "beats" array (up to 64), the
/// count in r13.
[[nodiscard]] std::string rpeak_source(std::span<const std::uint16_t> codes);

struct RpeakRun {
  std::vector<std::uint16_t> beat_indices;
  std::uint64_t instructions{0};
  std::uint64_t cycles{0};
  double energy_joules{0};  ///< 0.6 nJ/instruction (the paper's figure)
};

/// Assembles and executes the detector over `codes` (12-bit ADC samples at
/// 200 Hz); returns detections and the execution cost.
[[nodiscard]] RpeakRun run_rpeak(std::span<const std::uint16_t> codes);

}  // namespace bansim::isa::firmware
