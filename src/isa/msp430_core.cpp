#include "isa/msp430_core.hpp"

namespace bansim::isa {

namespace {

/// Source addressing classes for the cycle table.
enum class SrcClass { kRegister, kIndexed, kIndirect, kAutoInc };

int format1_cycles(SrcClass src, bool dst_is_register, bool dst_is_pc) {
  if (dst_is_register) {
    if (dst_is_pc) {
      switch (src) {
        case SrcClass::kRegister: return 2;
        case SrcClass::kIndirect: return 2;
        case SrcClass::kAutoInc: return 3;
        case SrcClass::kIndexed: return 3;
      }
    }
    switch (src) {
      case SrcClass::kRegister: return 1;
      case SrcClass::kIndirect: return 2;
      case SrcClass::kAutoInc: return 2;
      case SrcClass::kIndexed: return 3;
    }
  }
  switch (src) {  // indexed/symbolic/absolute destination
    case SrcClass::kRegister: return 4;
    case SrcClass::kIndirect: return 5;
    case SrcClass::kAutoInc: return 5;
    case SrcClass::kIndexed: return 6;
  }
  return 1;
}

std::uint16_t mask_for(bool byte_op) { return byte_op ? 0x00FF : 0xFFFF; }
std::uint16_t sign_bit(bool byte_op) { return byte_op ? 0x0080 : 0x8000; }

}  // namespace

Msp430Core::Msp430Core() : memory_(kMemoryBytes, 0) {}

void Msp430Core::reset() {
  registers_.fill(0);
  std::fill(memory_.begin(), memory_.end(), 0);
  instructions_ = 0;
  cycles_ = 0;
  irq_pending_ = false;
  illegal_ = false;
}

std::uint16_t Msp430Core::read16(std::uint16_t addr) const {
  // Word accesses are even-aligned on silicon; emulate the alignment by
  // clearing bit 0, as the CPU does.
  const std::uint16_t a = addr & 0xFFFE;
  return static_cast<std::uint16_t>(memory_[a] |
                                    (memory_[static_cast<std::uint16_t>(a + 1)]
                                     << 8));
}

void Msp430Core::write16(std::uint16_t addr, std::uint16_t value) {
  const std::uint16_t a = addr & 0xFFFE;
  memory_[a] = static_cast<std::uint8_t>(value & 0xFF);
  memory_[static_cast<std::uint16_t>(a + 1)] =
      static_cast<std::uint8_t>(value >> 8);
}

void Msp430Core::load(std::uint16_t addr, const std::vector<std::uint16_t>& words) {
  std::uint16_t at = addr;
  for (std::uint16_t w : words) {
    write16(at, w);
    at = static_cast<std::uint16_t>(at + 2);
  }
  set_reg(kPc, addr);
}

std::uint16_t Msp430Core::fetch() {
  const std::uint16_t word = read16(pc());
  set_reg(kPc, static_cast<std::uint16_t>(pc() + 2));
  return word;
}

void Msp430Core::set_flag(std::uint16_t bit, bool on) {
  std::uint16_t s = sr();
  if (on) {
    s |= bit;
  } else {
    s = static_cast<std::uint16_t>(s & ~bit);
  }
  set_reg(kSr, s);
}

void Msp430Core::set_flags_logic(std::uint16_t result, bool byte_op) {
  const std::uint16_t r = result & mask_for(byte_op);
  set_flag(kSrZ, r == 0);
  set_flag(kSrN, (r & sign_bit(byte_op)) != 0);
  set_flag(kSrC, r != 0);
  set_flag(kSrV, false);
}

Msp430Core::Operand Msp430Core::decode_source(int r, int mode, bool byte_op) {
  Operand op;

  // Constant generators: R3 always, R2 for modes 2 and 3.
  if (r == kCg2) {
    static constexpr std::uint16_t kCg2Values[] = {0, 1, 2, 0xFFFF};
    op.is_register = true;  // no memory access, register-class timing
    op.reg = r;
    op.value = kCg2Values[mode] & mask_for(byte_op);
    return op;
  }
  if (r == kSr && mode >= 2) {
    op.is_register = true;
    op.reg = r;
    op.value = (mode == 2 ? 4 : 8) & mask_for(byte_op);
    return op;
  }

  switch (mode) {
    case 0:  // register
      op.is_register = true;
      op.reg = r;
      op.value = reg(r) & mask_for(byte_op);
      op.cycles = 0;
      return op;
    case 1: {  // indexed x(Rn); symbolic via PC; absolute via SR
      const std::uint16_t x = fetch();
      const std::uint16_t base = (r == kSr) ? 0 : reg(r);
      op.address = static_cast<std::uint16_t>(base + x);
      op.value = byte_op ? read8(op.address) : read16(op.address);
      op.cycles = 2;
      return op;
    }
    case 2:  // indirect @Rn
      op.address = reg(r);
      op.value = byte_op ? read8(op.address) : read16(op.address);
      op.cycles = 1;
      return op;
    case 3: {  // indirect autoincrement @Rn+ (immediate via PC)
      if (r == kPc) {
        op.value = fetch() & mask_for(byte_op);
        op.is_register = true;  // no further access; immediate
        op.reg = -1;
        op.cycles = 1;
        return op;
      }
      op.address = reg(r);
      op.value = byte_op ? read8(op.address) : read16(op.address);
      set_reg(r, static_cast<std::uint16_t>(reg(r) + (byte_op ? 1 : 2)));
      op.cycles = 1;
      return op;
    }
    default:
      return op;
  }
}

Msp430Core::Operand Msp430Core::decode_destination(int r, int ad, bool byte_op) {
  Operand op;
  if (ad == 0) {
    op.is_register = true;
    op.reg = r;
    op.value = reg(r) & mask_for(byte_op);
    return op;
  }
  const std::uint16_t x = fetch();
  const std::uint16_t base = (r == kSr) ? 0 : reg(r);
  op.address = static_cast<std::uint16_t>(base + x);
  op.value = byte_op ? read8(op.address) : read16(op.address);
  return op;
}

void Msp430Core::write_operand(const Operand& op, std::uint16_t value,
                               bool byte_op) {
  if (op.is_register) {
    if (op.reg < 0) return;  // immediate pseudo-operand
    // Byte writes clear the upper register byte (MSP430 behaviour).
    set_reg(op.reg, value & mask_for(byte_op));
    return;
  }
  if (byte_op) {
    write8(op.address, static_cast<std::uint8_t>(value & 0xFF));
  } else {
    write16(op.address, value);
  }
}

StepResult Msp430Core::step() {
  if (illegal_) return StepResult::kIllegal;
  if (irq_pending_ && flag(kSrGie)) {
    service_interrupt();
  }
  if (flag(kSrCpuOff)) return StepResult::kCpuOff;

  const std::uint16_t word = fetch();
  const std::uint16_t top = word >> 12;

  if (top >= 0x4) {
    execute_format1(word);
  } else if ((word & 0xE000) == 0x2000) {
    execute_jump(word);
  } else if ((word & 0xFC00) == 0x1000) {
    execute_format2(word);
  } else {
    illegal_ = true;
    set_reg(kPc, static_cast<std::uint16_t>(pc() - 2));  // point at offender
    return StepResult::kIllegal;
  }
  ++instructions_;
  return StepResult::kOk;
}

StepResult Msp430Core::run(std::uint64_t max_instructions) {
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    const StepResult result = step();
    if (result != StepResult::kOk) return result;
  }
  return StepResult::kOk;
}

void Msp430Core::request_interrupt(std::uint16_t vector_addr) {
  irq_pending_ = true;
  irq_vector_ = vector_addr;
}

void Msp430Core::service_interrupt() {
  irq_pending_ = false;
  // Hardware sequence: push PC, push SR, clear GIE (CPUOFF stays in the
  // *saved* SR; the live SR clears it so the ISR can run).
  set_reg(kSp, static_cast<std::uint16_t>(sp() - 2));
  write16(sp(), pc());
  set_reg(kSp, static_cast<std::uint16_t>(sp() - 2));
  write16(sp(), sr());
  set_reg(kSr, static_cast<std::uint16_t>(
                   sr() & ~(kSrGie | kSrCpuOff)));
  set_reg(kPc, read16(irq_vector_));
  cycles_ += 6;
}

void Msp430Core::execute_format1(std::uint16_t word) {
  const int opcode = word >> 12;
  const int src_reg = (word >> 8) & 0xF;
  const int ad = (word >> 7) & 0x1;
  const bool byte_op = ((word >> 6) & 0x1) != 0;
  const int as = (word >> 4) & 0x3;
  const int dst_reg = word & 0xF;

  SrcClass src_class = SrcClass::kRegister;
  if (!(src_reg == kCg2 || (src_reg == kSr && as >= 2))) {
    switch (as) {
      case 0: src_class = SrcClass::kRegister; break;
      case 1: src_class = SrcClass::kIndexed; break;
      case 2: src_class = SrcClass::kIndirect; break;
      case 3: src_class = SrcClass::kAutoInc; break;
      default: break;
    }
  }

  const Operand src = decode_source(src_reg, as, byte_op);
  Operand dst = decode_destination(dst_reg, ad, byte_op);
  cycles_ += static_cast<std::uint64_t>(
      format1_cycles(src_class, dst.is_register, dst.is_register && dst_reg == kPc));

  const std::uint16_t mask = mask_for(byte_op);
  const std::uint16_t sbit = sign_bit(byte_op);
  const std::uint16_t s = src.value & mask;
  const std::uint16_t d = dst.value & mask;

  auto add_common = [&](std::uint32_t operand, std::uint32_t carry_in) {
    const std::uint32_t sum =
        static_cast<std::uint32_t>(d) + operand + carry_in;
    const std::uint16_t result = static_cast<std::uint16_t>(sum & mask);
    set_flag(kSrC, sum > mask);
    set_flag(kSrZ, result == 0);
    set_flag(kSrN, (result & sbit) != 0);
    const bool src_neg = (operand & sbit) != 0;
    const bool dst_neg = (d & sbit) != 0;
    const bool res_neg = (result & sbit) != 0;
    set_flag(kSrV, (src_neg == dst_neg) && (res_neg != dst_neg));
    return result;
  };

  switch (opcode) {
    case 0x4:  // MOV
      write_operand(dst, s, byte_op);
      break;
    case 0x5:  // ADD
      write_operand(dst, add_common(s, 0), byte_op);
      break;
    case 0x6:  // ADDC
      write_operand(dst, add_common(s, flag(kSrC) ? 1 : 0), byte_op);
      break;
    case 0x7:  // SUBC: dst + ~src + C
      write_operand(dst, add_common(static_cast<std::uint16_t>(~s) & mask,
                                    flag(kSrC) ? 1 : 0),
                    byte_op);
      break;
    case 0x8:  // SUB: dst + ~src + 1
      write_operand(dst, add_common(static_cast<std::uint16_t>(~s) & mask, 1),
                    byte_op);
      break;
    case 0x9:  // CMP: SUB without store
      add_common(static_cast<std::uint16_t>(~s) & mask, 1);
      break;
    case 0xA: {  // DADD: BCD add with carry
      std::uint32_t carry = flag(kSrC) ? 1 : 0;
      std::uint16_t result = 0;
      const int nibbles = byte_op ? 2 : 4;
      for (int n = 0; n < nibbles; ++n) {
        std::uint32_t digit = ((s >> (4 * n)) & 0xF) + ((d >> (4 * n)) & 0xF) +
                              carry;
        carry = digit >= 10 ? 1 : 0;
        if (digit >= 10) digit -= 10;
        result = static_cast<std::uint16_t>(result | (digit << (4 * n)));
      }
      set_flag(kSrC, carry != 0);
      set_flag(kSrZ, result == 0);
      set_flag(kSrN, (result & sbit) != 0);
      write_operand(dst, result, byte_op);
      break;
    }
    case 0xB: {  // BIT: AND without store
      set_flags_logic(s & d, byte_op);
      break;
    }
    case 0xC:  // BIC: dst &= ~src, flags unaffected
      write_operand(dst, static_cast<std::uint16_t>(d & ~s), byte_op);
      break;
    case 0xD:  // BIS: dst |= src, flags unaffected
      write_operand(dst, static_cast<std::uint16_t>(d | s), byte_op);
      break;
    case 0xE: {  // XOR
      const std::uint16_t result = static_cast<std::uint16_t>((d ^ s) & mask);
      set_flag(kSrZ, result == 0);
      set_flag(kSrN, (result & sbit) != 0);
      set_flag(kSrC, result != 0);
      set_flag(kSrV, ((s & sbit) != 0) && ((d & sbit) != 0));
      write_operand(dst, result, byte_op);
      break;
    }
    case 0xF: {  // AND
      const std::uint16_t result = static_cast<std::uint16_t>(d & s & mask);
      set_flags_logic(result, byte_op);
      write_operand(dst, result, byte_op);
      break;
    }
    default:
      illegal_ = true;
      break;
  }
}

void Msp430Core::execute_format2(std::uint16_t word) {
  const int opcode = (word >> 7) & 0x7;
  const bool byte_op = ((word >> 6) & 0x1) != 0;
  const int as = (word >> 4) & 0x3;
  const int r = word & 0xF;

  if (opcode == 6) {  // RETI
    const std::uint16_t restored_sr = read16(sp());
    set_reg(kSr, restored_sr);
    set_reg(kSp, static_cast<std::uint16_t>(sp() + 2));
    set_reg(kPc, read16(sp()));
    set_reg(kSp, static_cast<std::uint16_t>(sp() + 2));
    cycles_ += 5;
    return;
  }

  Operand op = decode_source(r, as, byte_op);
  const std::uint16_t mask = mask_for(byte_op);
  const std::uint16_t sbit = sign_bit(byte_op);
  const std::uint16_t v = op.value & mask;

  // Cycle table for single-operand instructions.
  const bool is_push = opcode == 4;
  const bool is_call = opcode == 5;
  int cost;
  switch (as) {
    case 0: cost = is_push ? 3 : (is_call ? 4 : 1); break;
    case 1: cost = is_push || is_call ? 5 : 4; break;
    case 2: cost = is_push || is_call ? 4 : 3; break;
    default: cost = is_push ? 4 : (is_call ? 5 : 3); break;
  }
  cycles_ += static_cast<std::uint64_t>(cost);

  switch (opcode) {
    case 0: {  // RRC: rotate right through carry
      const bool new_c = (v & 1) != 0;
      std::uint16_t result = static_cast<std::uint16_t>(v >> 1);
      if (flag(kSrC)) result = static_cast<std::uint16_t>(result | sbit);
      set_flag(kSrC, new_c);
      set_flag(kSrZ, result == 0);
      set_flag(kSrN, (result & sbit) != 0);
      set_flag(kSrV, false);
      write_operand(op, result, byte_op);
      break;
    }
    case 1: {  // SWPB: swap bytes (word only); flags unaffected
      const std::uint16_t result =
          static_cast<std::uint16_t>((op.value << 8) | (op.value >> 8));
      write_operand(op, result, false);
      break;
    }
    case 2: {  // RRA: arithmetic shift right
      const bool new_c = (v & 1) != 0;
      std::uint16_t result =
          static_cast<std::uint16_t>((v >> 1) | (v & sbit));
      set_flag(kSrC, new_c);
      set_flag(kSrZ, result == 0);
      set_flag(kSrN, (result & sbit) != 0);
      set_flag(kSrV, false);
      write_operand(op, result, byte_op);
      break;
    }
    case 3: {  // SXT: sign-extend low byte (word only)
      const std::uint16_t result =
          (op.value & 0x80) ? static_cast<std::uint16_t>(op.value | 0xFF00)
                            : static_cast<std::uint16_t>(op.value & 0x00FF);
      set_flag(kSrZ, result == 0);
      set_flag(kSrN, (result & 0x8000) != 0);
      set_flag(kSrC, result != 0);
      set_flag(kSrV, false);
      write_operand(op, result, false);
      break;
    }
    case 4:  // PUSH
      set_reg(kSp, static_cast<std::uint16_t>(sp() - 2));
      write16(sp(), v);
      break;
    case 5:  // CALL (word only)
      set_reg(kSp, static_cast<std::uint16_t>(sp() - 2));
      write16(sp(), pc());
      set_reg(kPc, op.is_register && op.reg >= 0 ? reg(op.reg) : v);
      break;
    default:
      illegal_ = true;
      break;
  }
}

void Msp430Core::execute_jump(std::uint16_t word) {
  const int condition = (word >> 10) & 0x7;
  std::int16_t offset = static_cast<std::int16_t>(word & 0x3FF);
  if (offset & 0x200) offset = static_cast<std::int16_t>(offset | ~0x3FF);

  bool taken = false;
  switch (condition) {
    case 0: taken = !flag(kSrZ); break;                       // JNE/JNZ
    case 1: taken = flag(kSrZ); break;                        // JEQ/JZ
    case 2: taken = !flag(kSrC); break;                       // JNC
    case 3: taken = flag(kSrC); break;                        // JC
    case 4: taken = flag(kSrN); break;                        // JN
    case 5: taken = flag(kSrN) == flag(kSrV); break;          // JGE
    case 6: taken = flag(kSrN) != flag(kSrV); break;          // JL
    default: taken = true; break;                             // JMP
  }
  if (taken) {
    set_reg(kPc, static_cast<std::uint16_t>(
                     pc() + static_cast<std::uint16_t>(offset * 2)));
  }
  cycles_ += 2;  // jumps always cost 2, taken or not
}

}  // namespace bansim::isa
