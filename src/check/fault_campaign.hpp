// Shared fault-campaign runner: one BanConfig in, raw per-node outcomes
// out, with an InvariantMonitor attached for the whole run.
//
// Both bansim_cli (--fault-plan) and the campaign tests funnel through
// this so "run a campaign" means the same thing everywhere: build the
// cell, run to the horizon, stop the injector's recurring processes, let
// in-flight faults drain (scheduled reboots still fire, so crashed nodes
// come back), then final-audit the conservation invariants.  The faulted
// and fault-free runs of a DegradationReport are two calls with the same
// config, fault plan enabled and disabled.
#pragma once

#include <cstdint>
#include <string>

#include "core/ban_network.hpp"
#include "energy/lifetime.hpp"
#include "fault/degradation_report.hpp"
#include "fault/fault_injector.hpp"
#include "fault/storage_driver.hpp"

namespace bansim::check {

struct CampaignOptions {
  sim::Duration horizon{sim::Duration::seconds(20)};
  /// Extra run time after the injector stops re-arming its processes, so
  /// the final audit sees a quiesced cell (rebooted nodes rejoined, frames
  /// off the air).
  sim::Duration drain{sim::Duration::seconds(2)};
  bool monitor{true};
};

struct CampaignOutcome {
  fault::CampaignRun run;
  fault::FaultInjectorStats injector{};
  fault::StorageDriverStats storage{};
  std::uint64_t violations{0};
  std::string violation_report;
};

[[nodiscard]] CampaignOutcome run_fault_campaign(
    const core::BanConfig& config, const CampaignOptions& options = {});

/// "Run until first node death" options.  The campaign advances the cell
/// in fixed polling chunks (deterministic boundaries) until a store runs
/// dry or the horizon passes, then extrapolates every node's lifetime from
/// its measured average power over the simulated window.
struct LifetimeCampaignOptions {
  sim::Duration horizon{sim::Duration::seconds(30)};
  /// Chunk between death polls; boundaries are fixed multiples, so a run
  /// is bit-identical however fast the stores drain.
  sim::Duration poll{sim::Duration::milliseconds(500)};
  /// Stop at the first depletion (the ward's deployment-ending event)
  /// instead of running the full horizon.
  bool stop_at_first_death{true};
  bool monitor{true};
};

struct LifetimeOutcome {
  energy::LifetimeReport report;
  fault::StorageDriverStats storage{};
  sim::Duration simulated{};      ///< how far the run actually went
  bool death_observed{false};
  sim::TimePoint first_death{};   ///< valid when death_observed
  std::uint64_t violations{0};
  std::string violation_report;
};

[[nodiscard]] LifetimeOutcome run_lifetime_campaign(
    const core::BanConfig& config, const LifetimeCampaignOptions& options = {});

}  // namespace bansim::check
