#include "check/fault_campaign.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "check/invariant_monitor.hpp"

namespace bansim::check {

CampaignOutcome run_fault_campaign(const core::BanConfig& config,
                                   const CampaignOptions& options) {
  core::BanNetwork network{config};
  std::unique_ptr<InvariantMonitor> monitor;
  if (options.monitor) {
    monitor = std::make_unique<InvariantMonitor>(network.context());
    monitor->watch_network(network);
  }

  network.start();
  network.run_until(sim::TimePoint::zero() + options.horizon);
  if (auto* injector = network.fault_injector()) injector->stop();
  if (auto* driver = network.storage_driver()) driver->stop();
  network.run_until(sim::TimePoint::zero() + options.horizon + options.drain);

  const sim::TimePoint end = network.simulator().now();
  if (monitor) monitor->final_audit(end);

  CampaignOutcome outcome;
  outcome.run.duration = end.since_epoch();
  const auto& per_node = network.base_station_app().per_node();
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    core::SensorNode& node = network.node(i);
    fault::NodeOutcome row;
    row.node = node.name();
    const mac::MacStatsSnapshot stats = node.mac_base().stats_snapshot();
    row.payloads_generated = stats.payloads_queued;
    const auto it = per_node.find(node.address());
    row.payloads_delivered = it != per_node.end() ? it->second.packets : 0;
    row.energy_joules = node.energy(end).total_joules();
    row.crashes = stats.crashes;
    row.reboots = stats.reboots;
    row.resyncs = stats.resyncs;
    row.resync_times = node.mac_base().resync_times();
    row.rejoin_times = node.mac_base().rejoin_times();
    outcome.run.nodes.push_back(std::move(row));
  }
  if (auto* injector = network.fault_injector()) {
    outcome.injector = injector->stats();
  }
  if (auto* driver = network.storage_driver()) {
    outcome.storage = driver->stats();
  }
  if (monitor) {
    outcome.violations = monitor->total_violations();
    outcome.violation_report = monitor->report();
  }
  return outcome;
}

LifetimeOutcome run_lifetime_campaign(const core::BanConfig& config,
                                      const LifetimeCampaignOptions& options) {
  core::BanNetwork network{config};
  std::unique_ptr<InvariantMonitor> monitor;
  if (options.monitor) {
    monitor = std::make_unique<InvariantMonitor>(network.context());
    monitor->watch_network(network);
  }

  network.start();
  fault::StorageDriver* driver = network.storage_driver();
  // Chunk boundaries are fixed multiples of poll, so the trajectory is
  // identical whether or not a death cuts the run short.
  sim::TimePoint at = sim::TimePoint::zero();
  const sim::TimePoint deadline = sim::TimePoint::zero() + options.horizon;
  while (at < deadline) {
    at = std::min(at + options.poll, deadline);
    network.run_until(at);
    if (options.stop_at_first_death && driver != nullptr &&
        driver->stats().depletion_deaths > 0) {
      break;
    }
  }
  if (auto* injector = network.fault_injector()) injector->stop();
  if (driver != nullptr) driver->stop();

  const sim::TimePoint end = network.simulator().now();
  if (monitor) monitor->final_audit(end);

  LifetimeOutcome outcome;
  outcome.simulated = end.since_epoch();
  outcome.report.window_seconds = outcome.simulated.to_seconds();
  if (driver != nullptr) {
    outcome.storage = driver->stats();
    outcome.death_observed = driver->stats().depletion_deaths > 0;
    outcome.first_death = driver->first_death();
  }

  const double window_s = outcome.report.window_seconds;
  std::vector<fault::NodeStorageStatus> statuses;
  if (driver != nullptr) statuses = driver->status();
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    core::SensorNode& node = network.node(i);
    energy::LifetimeRow row;
    row.node = node.name();
    row.average_watts =
        window_s > 0.0 ? node.energy(end).total_joules() / window_s : 0.0;
    if (const hw::EnergyStore* store = node.energy_store()) {
      const hw::StorageParams& params = store->params();
      row.harvest_watts =
          params.harvest.enabled ? params.harvest.average_watts() : 0.0;
      row.state_of_charge = store->state_of_charge();
      row.projected_hours =
          hw::projected_hours(params, row.average_watts, row.harvest_watts);
      for (const fault::NodeStorageStatus& s : statuses) {
        if (s.node != row.node) continue;
        row.died = s.dead;
        if (s.deaths > 0) {
          row.died_at_hours = s.died_at.to_seconds() / 3600.0;
        }
        break;
      }
    } else {
      // Bench-supplied node: it never dies, its lifetime is unbounded.
      row.state_of_charge = 1.0;
      row.projected_hours = std::numeric_limits<double>::infinity();
    }
    outcome.report.rows.push_back(std::move(row));
  }
  if (monitor) {
    outcome.violations = monitor->total_violations();
    outcome.violation_report = monitor->report();
  }
  return outcome;
}

}  // namespace bansim::check
