#include "check/fault_campaign.hpp"

#include <memory>

#include "check/invariant_monitor.hpp"

namespace bansim::check {

CampaignOutcome run_fault_campaign(const core::BanConfig& config,
                                   const CampaignOptions& options) {
  core::BanNetwork network{config};
  std::unique_ptr<InvariantMonitor> monitor;
  if (options.monitor) {
    monitor = std::make_unique<InvariantMonitor>(network.context());
    monitor->watch_network(network);
  }

  network.start();
  network.run_until(sim::TimePoint::zero() + options.horizon);
  if (auto* injector = network.fault_injector()) injector->stop();
  network.run_until(sim::TimePoint::zero() + options.horizon + options.drain);

  const sim::TimePoint end = network.simulator().now();
  if (monitor) monitor->final_audit(end);

  CampaignOutcome outcome;
  outcome.run.duration = end.since_epoch();
  const auto& per_node = network.base_station_app().per_node();
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    core::SensorNode& node = network.node(i);
    fault::NodeOutcome row;
    row.node = node.name();
    const mac::NodeMacStats& stats = node.mac().stats();
    row.payloads_generated = stats.payloads_queued;
    const auto it = per_node.find(node.address());
    row.payloads_delivered = it != per_node.end() ? it->second.packets : 0;
    row.energy_joules = node.energy(end).total_joules();
    row.crashes = stats.crashes;
    row.reboots = stats.reboots;
    row.resyncs = stats.resyncs;
    row.resync_times = node.mac().resync_times();
    row.rejoin_times = node.mac().rejoin_times();
    outcome.run.nodes.push_back(std::move(row));
  }
  if (auto* injector = network.fault_injector()) {
    outcome.injector = injector->stats();
  }
  if (monitor) {
    outcome.violations = monitor->total_violations();
    outcome.violation_report = monitor->report();
  }
  return outcome;
}

}  // namespace bansim::check
