#include "check/scenario_fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "check/invariant_monitor.hpp"
#include "core/config_io.hpp"
#include "sim/rng.hpp"
#include "sim/scenario_runner.hpp"

namespace bansim::check {

namespace {

/// Everything evaluate() needs from one simulation.
struct RunOutput {
  bool joined{false};
  std::vector<energy::NodeEnergy> energies;
  std::uint64_t monitor_violations{0};
  std::string monitor_report;
};

std::vector<double> flatten(const std::vector<energy::NodeEnergy>& nodes) {
  std::vector<double> flat;
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      flat.push_back(c.joules);
      for (const auto& [state, joules] : c.per_state) flat.push_back(joules);
    }
  }
  return flat;
}

RunOutput run_config(const core::BanConfig& config, bool monitored,
                     const FuzzOptions& opt) {
  core::BanNetwork network{config};
  std::optional<InvariantMonitor> monitor;
  if (monitored) {
    monitor.emplace(network.context());
    monitor->watch_network(network);
  }
  network.start();
  RunOutput out;
  out.joined = network.run_until_joined(
      opt.settle, sim::TimePoint::zero() + opt.join_deadline);
  network.run_until(network.simulator().now() + opt.measure);
  if (monitor) {
    monitor->final_audit(network.simulator().now());
    out.monitor_violations = monitor->total_violations();
    out.monitor_report = monitor->report();
  }
  out.energies = network.energy_snapshot();
  return out;
}

}  // namespace

core::BanConfig make_fuzz_config(std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "fuzz/config");
  core::BanConfig config;
  config.seed = seed;

  const int nodes = rng.uniform_int(1, 6);
  config.num_nodes = static_cast<std::size_t>(nodes);

  if (rng.chance(0.5)) {
    config.tdma.variant = mac::TdmaVariant::kStatic;
    config.tdma.max_slots =
        static_cast<std::uint8_t>(rng.uniform_int(nodes, 6));
  } else {
    config.tdma.variant = mac::TdmaVariant::kDynamic;
    config.tdma.max_slots = 0;
  }
  config.tdma.slot = sim::Duration::from_milliseconds(rng.uniform(5.0, 15.0));
  config.tdma.pan_id = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  config.tdma.fast_grant = rng.chance(0.7);
  config.tdma.ack_data = rng.chance(0.3);
  config.tdma.radio_power_down = rng.chance(0.3);

  config.stagger = sim::Duration::from_milliseconds(rng.uniform(5.0, 80.0));
  if (rng.chance(0.25)) {
    config.address_offset =
        static_cast<net::NodeId>(rng.uniform_int(0, 200));
  }

  config.roster.resize(config.num_nodes);
  for (auto& spec : config.roster) {
    const double draw = rng.uniform(0.0, 1.0);
    if (draw < 0.50) {
      spec.app = core::AppKind::kEcgStreaming;
    } else if (draw < 0.75) {
      spec.app = core::AppKind::kRpeak;
    } else if (draw < 0.90) {
      spec.app = core::AppKind::kEegMonitoring;
    } else {
      spec.app = core::AppKind::kNone;
    }
    if (rng.chance(0.2)) spec.clock_skew = rng.uniform(-2.0e-3, 2.0e-3);
    if (rng.chance(0.2)) {
      spec.boot_offset =
          sim::Duration::from_milliseconds(rng.uniform(0.0, 40.0));
    }
  }

  // standard_ban_layout covers up to 6 nodes, so the link model is always
  // applicable here.
  config.use_link_model = rng.chance(0.25);
  return config;
}

ScenarioFuzzer::ScenarioFuzzer(FuzzOptions options)
    : options_{std::move(options)} {}

std::vector<double> ScenarioFuzzer::reference_energies(
    const core::BanConfig& config) const {
  return flatten(run_config(config, /*monitored=*/false, options_).energies);
}

std::optional<std::string> ScenarioFuzzer::evaluate(
    const core::BanConfig& config) const {
  // Invariants live under the monitor at reference fidelity.
  const RunOutput monitored = run_config(config, true, options_);
  if (monitored.monitor_violations != 0) {
    return "invariant violations (reference fidelity):\n" +
           monitored.monitor_report;
  }

  // Oracle: monitor-on vs monitor-off, bit-identical energies.
  const RunOutput plain = run_config(config, false, options_);
  const auto mon_flat = flatten(monitored.energies);
  const auto plain_flat = flatten(plain.energies);
  if (mon_flat != plain_flat) {
    for (std::size_t i = 0; i < std::min(mon_flat.size(), plain_flat.size());
         ++i) {
      if (mon_flat[i] != plain_flat[i]) {
        return "monitor-on/off oracle: energy slot " + std::to_string(i) +
               " differs (" + std::to_string(mon_flat[i]) + " J vs " +
               std::to_string(plain_flat[i]) + " J)";
      }
    }
    return "monitor-on/off oracle: energy vector shapes differ";
  }

  // Invariants must also hold at model fidelity (the estimator drives the
  // same state machines with the second-order effects zeroed).
  core::BanConfig model_config = config;
  model_config.fidelity = core::Fidelity::kModel;
  const RunOutput model = run_config(model_config, true, options_);
  if (model.monitor_violations != 0) {
    return "invariant violations (model fidelity):\n" + model.monitor_report;
  }

  // Oracle: bounded ref-vs-model divergence (only comparable when both
  // networks actually formed).
  if (plain.joined && model.joined &&
      plain.energies.size() == model.energies.size()) {
    for (std::size_t i = 0; i < plain.energies.size(); ++i) {
      const double ref_j = plain.energies[i].total_joules();
      const double model_j = model.energies[i].total_joules();
      const double hi = std::max(ref_j, model_j);
      const double lo = std::min(ref_j, model_j);
      if (hi > 5.0 * lo + 5e-3) {
        return "fidelity oracle: node '" + plain.energies[i].node +
               "' diverges (reference " + std::to_string(ref_j * 1e3) +
               " mJ vs model " + std::to_string(model_j * 1e3) + " mJ)";
      }
    }
  }
  return std::nullopt;
}

CaseOutcome ScenarioFuzzer::run_case(std::uint64_t seed) const {
  CaseOutcome outcome;
  outcome.seed = seed;

  core::BanConfig config = make_fuzz_config(seed);
  std::optional<std::string> failure = evaluate(config);
  if (!failure) return outcome;

  if (options_.shrink) {
    // Greedy minimization: keep any single simplification that still fails.
    using Mutation = std::function<bool(core::BanConfig&)>;
    const std::vector<Mutation> mutations = {
        [](core::BanConfig& c) {
          if (c.roster.size() <= 1) return false;
          c.roster.resize((c.roster.size() + 1) / 2);
          c.num_nodes = c.roster.size();
          return true;
        },
        [](core::BanConfig& c) {
          if (!c.use_link_model) return false;
          c.use_link_model = false;
          return true;
        },
        [](core::BanConfig& c) {
          bool changed = false;
          for (auto& spec : c.roster) {
            if (spec.app != core::AppKind::kEcgStreaming ||
                spec.clock_skew || spec.boot_offset) {
              changed = true;
            }
            spec = core::NodeSpec{};
            spec.app = core::AppKind::kEcgStreaming;
          }
          return changed;
        },
        [](core::BanConfig& c) {
          if (!c.tdma.ack_data && !c.tdma.radio_power_down) return false;
          c.tdma.ack_data = false;
          c.tdma.radio_power_down = false;
          return true;
        },
    };
    for (const auto& mutate : mutations) {
      core::BanConfig candidate = config;
      if (!mutate(candidate)) continue;
      if (auto candidate_failure = evaluate(candidate)) {
        config = std::move(candidate);
        failure = std::move(candidate_failure);
      }
    }
  }

  outcome.ok = false;
  outcome.failure = *failure;
  outcome.config_ini = core::serialize_config(config);
  return outcome;
}

FuzzSummary ScenarioFuzzer::run() const {
  FuzzSummary summary;

  std::vector<std::function<CaseOutcome()>> cases;
  cases.reserve(options_.num_seeds);
  for (std::size_t i = 0; i < options_.num_seeds; ++i) {
    const std::uint64_t seed = options_.start_seed + i;
    cases.emplace_back([this, seed] { return run_case(seed); });
  }
  sim::ScenarioRunner runner{options_.jobs};
  const std::vector<CaseOutcome> outcomes = runner.run(cases);
  summary.cases_run = outcomes.size();
  for (const auto& outcome : outcomes) {
    if (!outcome.ok) {
      ++summary.failures;
      summary.failed.push_back(outcome);
    }
  }

  // Serial vs parallel oracle: the same scenario batch through a 1-worker
  // and an N-worker pool must be bit-identical.
  const std::size_t oracle_seeds =
      std::min(options_.parallel_oracle_seeds, options_.num_seeds);
  if (oracle_seeds > 0) {
    std::vector<std::function<std::vector<double>()>> batch;
    batch.reserve(oracle_seeds);
    for (std::size_t i = 0; i < oracle_seeds; ++i) {
      const std::uint64_t seed = options_.start_seed + i;
      batch.emplace_back(
          [this, seed] { return reference_energies(make_fuzz_config(seed)); });
    }
    sim::ScenarioRunner parallel{options_.jobs == 1 ? 0 : options_.jobs};
    sim::ScenarioRunner serial{1};
    const auto parallel_energies = parallel.run(batch);
    const auto serial_energies = serial.run(batch);
    for (std::size_t i = 0; i < oracle_seeds; ++i) {
      if (parallel_energies[i] != serial_energies[i]) {
        summary.parallel_oracle_ok = false;
        summary.parallel_oracle_detail =
            "serial-vs-parallel oracle: seed " +
            std::to_string(options_.start_seed + i) +
            " produced different energies on " +
            std::to_string(parallel.jobs()) + " workers";
        break;
      }
    }
  }
  return summary;
}

}  // namespace bansim::check
