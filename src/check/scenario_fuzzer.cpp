#include "check/scenario_fuzzer.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <utility>

#include "campaign/orchestrator.hpp"
#include "campaign/report.hpp"
#include "check/fault_campaign.hpp"
#include "check/invariant_monitor.hpp"
#include "core/config_io.hpp"
#include "sim/rng.hpp"
#include "sim/scenario_runner.hpp"

namespace bansim::check {

namespace {

/// Everything evaluate() needs from one simulation.
struct RunOutput {
  bool joined{false};
  std::vector<energy::NodeEnergy> energies;
  std::uint64_t monitor_violations{0};
  std::string monitor_report;
};

std::vector<double> flatten(const std::vector<energy::NodeEnergy>& nodes) {
  std::vector<double> flat;
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      flat.push_back(c.joules);
      for (const auto& [state, joules] : c.per_state) flat.push_back(joules);
    }
  }
  return flat;
}

RunOutput run_config(const core::BanConfig& config, bool monitored,
                     const FuzzOptions& opt) {
  core::BanNetwork network{config};
  std::optional<InvariantMonitor> monitor;
  if (monitored) {
    monitor.emplace(network.context());
    monitor->watch_network(network);
  }
  network.start();
  RunOutput out;
  out.joined = network.run_until_joined(
      opt.settle, sim::TimePoint::zero() + opt.join_deadline);
  network.run_until(network.simulator().now() + opt.measure);
  if (monitor) {
    monitor->final_audit(network.simulator().now());
    out.monitor_violations = monitor->total_violations();
    out.monitor_report = monitor->report();
  }
  out.energies = network.energy_snapshot();
  return out;
}

/// The reused-cell leg of the reset-vs-rebuild oracle: builds a cell from
/// a same-shape decoy config (different seed and physiology, identical
/// roster/fault/storage shape), runs it for a while so every arena, meter,
/// store and fault process accumulates state, then resets to `config` and
/// measures exactly as run_config() does.
std::vector<double> run_reset_config(const core::BanConfig& config,
                                     const FuzzOptions& opt) {
  core::BanConfig decoy = config;
  decoy.seed = config.seed ^ 0x9e3779b97f4a7c15ull;
  decoy.ecg.heart_rate_bpm =
      std::min(config.ecg.heart_rate_bpm + 11.0, 180.0);

  core::BanNetwork network{decoy};
  network.start();
  network.run_until(sim::TimePoint::zero() +
                    sim::Duration::milliseconds(150));

  network.reset(config);
  network.start();
  network.run_until_joined(opt.settle,
                           sim::TimePoint::zero() + opt.join_deadline);
  network.run_until(network.simulator().now() + opt.measure);
  return flatten(network.energy_snapshot());
}

}  // namespace

core::BanConfig make_fuzz_config(std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "fuzz/config");
  core::BanConfig config;
  config.seed = seed;

  const int nodes = rng.uniform_int(1, 6);
  config.num_nodes = static_cast<std::size_t>(nodes);

  if (rng.chance(0.5)) {
    config.tdma.variant = mac::TdmaVariant::kStatic;
    config.tdma.max_slots =
        static_cast<std::uint8_t>(rng.uniform_int(nodes, 6));
  } else {
    config.tdma.variant = mac::TdmaVariant::kDynamic;
    config.tdma.max_slots = 0;
  }
  config.tdma.slot = sim::Duration::from_milliseconds(rng.uniform(5.0, 15.0));
  config.tdma.pan_id = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  config.tdma.fast_grant = rng.chance(0.7);
  config.tdma.ack_data = rng.chance(0.3);
  config.tdma.radio_power_down = rng.chance(0.3);

  config.stagger = sim::Duration::from_milliseconds(rng.uniform(5.0, 80.0));
  if (rng.chance(0.25)) {
    config.address_offset =
        static_cast<net::NodeId>(rng.uniform_int(0, 200));
  }

  config.roster.resize(config.num_nodes);
  for (auto& spec : config.roster) {
    const double draw = rng.uniform(0.0, 1.0);
    if (draw < 0.50) {
      spec.app = core::AppKind::kEcgStreaming;
    } else if (draw < 0.75) {
      spec.app = core::AppKind::kRpeak;
    } else if (draw < 0.90) {
      spec.app = core::AppKind::kEegMonitoring;
    } else {
      spec.app = core::AppKind::kNone;
    }
    if (rng.chance(0.2)) spec.clock_skew = rng.uniform(-2.0e-3, 2.0e-3);
    if (rng.chance(0.2)) {
      spec.boot_offset =
          sim::Duration::from_milliseconds(rng.uniform(0.0, 40.0));
    }
  }

  // standard_ban_layout covers up to 6 nodes, so the link model is always
  // applicable here.
  config.use_link_model = rng.chance(0.25);

  // Fault-plan dimension, drawn last so the scenario draws above stay
  // where they were for pre-fault corpora.  Bounds keep every fuzzed fault
  // recoverable: fade never fully blacks out a link (fer <= 0.9) and
  // always exits (p_exit >= 0.2), scripted faults land after the join
  // phase starts settling but inside the campaign oracle's horizon.
  if (rng.chance(0.4)) {
    fault::FaultPlan& plan = config.fault_plan;
    plan.enabled = true;
    // A faulted cell always carries the recovery hardening; the legacy
    // infinite-listen configuration is deliberately out of scope (a fuzzed
    // radio lock-up would hang it by design).
    config.tdma.missed_beacon_limit =
        static_cast<std::uint8_t>(rng.uniform_int(2, 3));
    config.tdma.search_listen =
        sim::Duration::from_milliseconds(rng.uniform(100.0, 250.0));
    config.tdma.search_backoff_base =
        sim::Duration::from_milliseconds(rng.uniform(20.0, 60.0));
    config.tdma.search_backoff_max =
        sim::Duration::from_milliseconds(rng.uniform(300.0, 600.0));
    if (config.tdma.variant == mac::TdmaVariant::kDynamic) {
      config.tdma.reclaim_after_cycles =
          static_cast<std::uint32_t>(rng.uniform_int(4, 6));
    }
    if (rng.chance(0.5)) {
      plan.fade.enabled = true;
      plan.fade.p_enter = rng.uniform(0.01, 0.08);
      plan.fade.p_exit = rng.uniform(0.2, 0.5);
      plan.fade.step =
          sim::Duration::from_milliseconds(rng.uniform(2.0, 10.0));
      plan.fade.fer = rng.uniform(0.3, 0.9);
    }
    if (rng.chance(0.3)) {
      plan.interferer.enabled = true;
      plan.interferer.period =
          sim::Duration::from_milliseconds(rng.uniform(60.0, 200.0));
      plan.interferer.burst =
          sim::Duration::from_milliseconds(rng.uniform(1.0, 8.0));
      plan.interferer.fer = rng.uniform(0.2, 0.9);
    }
    const int episodes = rng.uniform_int(0, 2);
    for (int i = 0; i < episodes; ++i) {
      fault::ShadowEpisode ep;
      ep.node = static_cast<std::uint32_t>(rng.uniform_int(0, nodes));
      ep.start = sim::TimePoint::zero() +
                 sim::Duration::from_milliseconds(rng.uniform(2000.0, 4000.0));
      ep.duration =
          sim::Duration::from_milliseconds(rng.uniform(100.0, 800.0));
      ep.extra_loss_db = rng.uniform(6.0, 30.0);
      ep.fer = rng.uniform(0.0, 0.9);
      plan.episodes.push_back(ep);
    }
    const int events = rng.uniform_int(0, 2);
    for (int i = 0; i < events; ++i) {
      fault::FaultEvent ev;
      const double kind = rng.uniform(0.0, 1.0);
      ev.kind = kind < 0.5   ? fault::FaultKind::kCrash
                : kind < 0.8 ? fault::FaultKind::kRadioLockup
                             : fault::FaultKind::kSkewStep;
      ev.node = static_cast<std::uint32_t>(rng.uniform_int(1, nodes));
      ev.at = sim::TimePoint::zero() +
              sim::Duration::from_milliseconds(rng.uniform(2000.0, 4000.0));
      ev.down = sim::Duration::from_milliseconds(rng.uniform(100.0, 900.0));
      ev.skew_delta = rng.uniform(-1.5e-3, 1.5e-3);
      plan.events.push_back(ev);
    }
    if (rng.chance(0.25)) {
      plan.crashes.enabled = true;
      plan.crashes.rate_hz = rng.uniform(0.02, 0.2);
      plan.crashes.min_down =
          sim::Duration::from_milliseconds(rng.uniform(100.0, 300.0));
      plan.crashes.max_down =
          plan.crashes.min_down +
          sim::Duration::from_milliseconds(rng.uniform(0.0, 900.0));
    }
    if (rng.chance(0.15)) {
      plan.brownout.enabled = true;
      plan.brownout.capacity_mah = rng.uniform(0.02, 0.1);
      plan.brownout.esr_ohms = rng.uniform(40.0, 150.0);
      plan.brownout.brownout_volts = rng.uniform(3.4, 3.8);
      plan.brownout.recovery =
          sim::Duration::from_milliseconds(rng.uniform(300.0, 1200.0));
    }
  }

  // Storage dimension, drawn after the fault dimension for the same
  // reason that one is drawn after the scenario draws: pre-storage corpora
  // keep their meaning.  Stores are sized so depletion lands inside the
  // fuzz window (a node draws ~10-30 mW), and harvest may out-run the load
  // entirely — both the dying and the immortal cases are interesting.
  if (rng.chance(0.3)) {
    hw::StorageParams& storage = config.storage;
    storage.enabled = true;
    storage.check = sim::Duration::from_milliseconds(rng.uniform(20.0, 200.0));
    if (rng.chance(0.5)) {
      storage.kind = hw::StorageKind::kBattery;
      storage.battery.capacity_mah = rng.uniform(0.005, 0.2);
    } else {
      storage.kind = hw::StorageKind::kCapacitor;
      storage.capacitor.capacitance_farads = rng.uniform(0.002, 0.05);
    }
    if (rng.chance(0.4)) {
      hw::HarvestParams& harvest = storage.harvest;
      harvest.enabled = true;
      const double profile = rng.uniform(0.0, 1.0);
      harvest.profile = profile < 0.4 ? hw::HarvestParams::Profile::kConstant
                        : profile < 0.7 ? hw::HarvestParams::Profile::kSine
                                        : hw::HarvestParams::Profile::kSquare;
      harvest.watts = rng.uniform(0.001, 0.03);
      harvest.floor_watts = rng.uniform(-0.005, 0.01);
      harvest.period = sim::Duration::from_milliseconds(rng.uniform(200.0, 2000.0));
      harvest.duty = rng.uniform(0.1, 0.9);
    }
    // One node may opt back onto the bench supply: mixed cells exercise
    // the driver's sparse registration.
    if (rng.chance(0.25) && !config.roster.empty()) {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(config.roster.size()) - 1));
      config.roster[victim].storage = hw::StorageParams{};  // disabled
    }
  }

  // MAC-protocol dimension, drawn last like the two above so pre-seam
  // corpora keep their meaning (a seed that reproduced a TDMA failure
  // still builds the same TDMA cell).  The TDMA draws simply go unused
  // when the cell leaves MacKind::kTdma.
  {
    const double protocol = rng.uniform(0.0, 1.0);
    if (protocol < 0.2) {
      config.mac = core::MacKind::kAloha;
      config.aloha.ack_data = rng.chance(0.7);
      config.aloha.max_retries =
          static_cast<std::uint8_t>(rng.uniform_int(1, 5));
      config.aloha.backoff_base =
          sim::Duration::from_milliseconds(rng.uniform(2.0, 8.0));
    } else if (protocol < 0.4) {
      config.mac = core::MacKind::kCsmaCa;
      config.csma.min_be = static_cast<std::uint8_t>(rng.uniform_int(2, 3));
      config.csma.max_be = static_cast<std::uint8_t>(
          rng.uniform_int(config.csma.min_be, 5));
      config.csma.max_backoffs =
          static_cast<std::uint8_t>(rng.uniform_int(3, 5));
      config.csma.ack_data = rng.chance(0.7);
      config.csma.max_retries =
          static_cast<std::uint8_t>(rng.uniform_int(1, 4));
      if (rng.chance(0.3)) {
        // CFP cells: a long superframe keeps the CAP usable next to the
        // reserved slots, and at least one roster member owns a GTS.
        config.csma.cycle =
            sim::Duration::from_milliseconds(rng.uniform(40.0, 60.0));
        config.csma.gts_slots =
            static_cast<std::uint8_t>(rng.uniform_int(1, 2));
        config.csma.gts_slot =
            sim::Duration::from_milliseconds(rng.uniform(3.0, 5.0));
        bool any_gts = false;
        for (core::NodeSpec& spec : config.roster) {
          if (rng.chance(0.5)) {
            spec.csma_gts = true;
            any_gts = true;
          }
        }
        if (!any_gts) config.roster.front().csma_gts = true;
      } else {
        config.csma.cycle =
            sim::Duration::from_milliseconds(rng.uniform(20.0, 50.0));
      }
    }
  }
  return config;
}

namespace {

bool storage_active(const core::BanConfig& config) {
  if (config.storage.enabled) return true;
  for (const core::NodeSpec& spec : config.roster) {
    if (spec.storage && spec.storage->enabled) return true;
  }
  return false;
}

}  // namespace

ScenarioFuzzer::ScenarioFuzzer(FuzzOptions options)
    : options_{std::move(options)} {}

std::vector<double> ScenarioFuzzer::reference_energies(
    const core::BanConfig& config) const {
  return flatten(run_config(config, /*monitored=*/false, options_).energies);
}

std::optional<std::string> ScenarioFuzzer::evaluate(
    const core::BanConfig& config) const {
  // Invariants live under the monitor at reference fidelity.
  const RunOutput monitored = run_config(config, true, options_);
  if (monitored.monitor_violations != 0) {
    return "invariant violations (reference fidelity):\n" +
           monitored.monitor_report;
  }

  // Oracle: monitor-on vs monitor-off, bit-identical energies.
  const RunOutput plain = run_config(config, false, options_);
  const auto mon_flat = flatten(monitored.energies);
  const auto plain_flat = flatten(plain.energies);
  if (mon_flat != plain_flat) {
    for (std::size_t i = 0; i < std::min(mon_flat.size(), plain_flat.size());
         ++i) {
      if (mon_flat[i] != plain_flat[i]) {
        return "monitor-on/off oracle: energy slot " + std::to_string(i) +
               " differs (" + std::to_string(mon_flat[i]) + " J vs " +
               std::to_string(plain_flat[i]) + " J)";
      }
    }
    return "monitor-on/off oracle: energy vector shapes differ";
  }

  // Oracle: reset-vs-rebuild.  A cell that already ran a same-shape decoy
  // and was reset to `config` must reproduce the fresh build bit-for-bit —
  // including with storage and fault plans active.
  const auto reset_flat = run_reset_config(config, options_);
  if (reset_flat != plain_flat) {
    for (std::size_t i = 0;
         i < std::min(reset_flat.size(), plain_flat.size()); ++i) {
      if (reset_flat[i] != plain_flat[i]) {
        return "reset-vs-rebuild oracle: energy slot " + std::to_string(i) +
               " differs (reset " + std::to_string(reset_flat[i]) +
               " J vs rebuild " + std::to_string(plain_flat[i]) + " J)";
      }
    }
    return "reset-vs-rebuild oracle: energy vector shapes differ";
  }

  // Invariants must also hold at model fidelity (the estimator drives the
  // same state machines with the second-order effects zeroed).
  core::BanConfig model_config = config;
  model_config.fidelity = core::Fidelity::kModel;
  const RunOutput model = run_config(model_config, true, options_);
  if (model.monitor_violations != 0) {
    return "invariant violations (model fidelity):\n" + model.monitor_report;
  }

  // Oracle: bounded ref-vs-model divergence (only comparable when both
  // networks actually formed).  Brown-out and live storage both feed the
  // metered energy back into crash timing, so crash instants — and with
  // them whole radio-on stretches — legitimately differ between
  // fidelities; skip the bound for those plans.
  if (plain.joined && model.joined && !config.fault_plan.brownout.enabled &&
      !storage_active(config) &&
      plain.energies.size() == model.energies.size()) {
    for (std::size_t i = 0; i < plain.energies.size(); ++i) {
      const double ref_j = plain.energies[i].total_joules();
      const double model_j = model.energies[i].total_joules();
      const double hi = std::max(ref_j, model_j);
      const double lo = std::min(ref_j, model_j);
      if (hi > 5.0 * lo + 5e-3) {
        return "fidelity oracle: node '" + plain.energies[i].node +
               "' diverges (reference " + std::to_string(ref_j * 1e3) +
               " mJ vs model " + std::to_string(model_j * 1e3) + " mJ)";
      }
    }
  }

  // Oracle: fault campaigns terminate and conserve.  The campaign runner
  // stops the injector's recurring processes at the horizon, lets the
  // in-flight faults drain (scheduled reboots still fire), then re-audits
  // — a crashed node must not leave frames on the air or joules off the
  // ledger once the cell quiesces.
  if (config.fault_plan.any()) {
    const CampaignOutcome campaign =
        run_fault_campaign(config, {.horizon = sim::Duration::seconds(5),
                                    .drain = sim::Duration::seconds(2)});
    if (campaign.violations != 0) {
      return "fault-campaign oracle: violations after injector drain:\n" +
             campaign.violation_report;
    }
  }

  if (storage_active(config)) {
    // Oracle: the storage driver is a pure observer until a store runs
    // dry.  The same cell with storage stripped and with an effectively
    // infinite battery (nothing ever depletes, no harvest) must meter
    // bit-identical energies — the driver's sampling events interleave
    // with the cell's but may never perturb it.
    core::BanConfig off = config;
    off.storage = hw::StorageParams{};
    for (auto& spec : off.roster) spec.storage.reset();
    core::BanConfig infinite = off;
    infinite.storage.enabled = true;
    infinite.storage.kind = hw::StorageKind::kBattery;
    infinite.storage.battery.capacity_mah = 1.0e9;
    const auto off_flat = flatten(run_config(off, false, options_).energies);
    const auto inf_flat =
        flatten(run_config(infinite, false, options_).energies);
    if (off_flat != inf_flat) {
      return "storage-on/off oracle: an undepleted store perturbed the "
             "cell's energies";
    }

    // Oracle: lifetime campaigns terminate and conserve — the storage
    // closure identities must hold at the instant the first node dies
    // (or at the horizon when nothing does).
    const LifetimeOutcome lifetime = run_lifetime_campaign(
        config, {.horizon = sim::Duration::seconds(5),
                 .poll = sim::Duration::milliseconds(250)});
    if (lifetime.violations != 0) {
      return "lifetime-campaign oracle: violations at stop:\n" +
             lifetime.violation_report;
    }
  }
  return std::nullopt;
}

CaseOutcome ScenarioFuzzer::run_case(std::uint64_t seed) const {
  CaseOutcome outcome;
  outcome.seed = seed;

  core::BanConfig config = make_fuzz_config(seed);
  std::optional<std::string> failure = evaluate(config);
  if (!failure) return outcome;

  if (options_.shrink) {
    // Greedy minimization: keep any single simplification that still fails.
    using Mutation = std::function<bool(core::BanConfig&)>;
    const std::vector<Mutation> mutations = {
        [](core::BanConfig& c) {
          if (c.roster.size() <= 1) return false;
          c.roster.resize((c.roster.size() + 1) / 2);
          c.num_nodes = c.roster.size();
          return true;
        },
        [](core::BanConfig& c) {
          if (!c.fault_plan.any()) return false;
          c.fault_plan = fault::FaultPlan{};
          return true;
        },
        // Downgrade exotic protocols: a failure that survives on static
        // TDMA is a seam bug, not a protocol bug.
        [](core::BanConfig& c) {
          const bool contention = c.mac != core::MacKind::kTdma;
          const bool dynamic =
              c.tdma.variant == mac::TdmaVariant::kDynamic;
          if (!contention && !dynamic) return false;
          c.mac = core::MacKind::kTdma;
          c.tdma.variant = mac::TdmaVariant::kStatic;
          if (c.tdma.max_slots == 0) {
            c.tdma.max_slots = static_cast<std::uint8_t>(
                std::max<std::size_t>(c.effective_nodes(), 1));
          }
          for (core::NodeSpec& spec : c.roster) spec.csma_gts.reset();
          return true;
        },
        [](core::BanConfig& c) {
          if (!c.use_link_model) return false;
          c.use_link_model = false;
          return true;
        },
        [](core::BanConfig& c) {
          bool changed = false;
          for (auto& spec : c.roster) {
            if (spec.app != core::AppKind::kEcgStreaming ||
                spec.clock_skew || spec.boot_offset) {
              changed = true;
            }
            spec = core::NodeSpec{};
            spec.app = core::AppKind::kEcgStreaming;
          }
          return changed;
        },
        [](core::BanConfig& c) {
          if (!c.tdma.ack_data && !c.tdma.radio_power_down) return false;
          c.tdma.ack_data = false;
          c.tdma.radio_power_down = false;
          return true;
        },
        [](core::BanConfig& c) {
          bool changed = c.storage.enabled;
          c.storage = hw::StorageParams{};
          for (auto& spec : c.roster) {
            if (spec.storage) changed = true;
            spec.storage.reset();
          }
          return changed;
        },
    };
    for (const auto& mutate : mutations) {
      core::BanConfig candidate = config;
      if (!mutate(candidate)) continue;
      if (auto candidate_failure = evaluate(candidate)) {
        config = std::move(candidate);
        failure = std::move(candidate_failure);
      }
    }
  }

  outcome.ok = false;
  outcome.failure = *failure;
  outcome.config_ini = core::serialize_config(config);
  return outcome;
}

FuzzSummary ScenarioFuzzer::run() const {
  FuzzSummary summary;

  std::vector<std::function<CaseOutcome()>> cases;
  cases.reserve(options_.num_seeds);
  for (std::size_t i = 0; i < options_.num_seeds; ++i) {
    const std::uint64_t seed = options_.start_seed + i;
    cases.emplace_back([this, seed] { return run_case(seed); });
  }
  sim::ScenarioRunner runner{options_.jobs};
  const std::vector<CaseOutcome> outcomes = runner.run(cases);
  summary.cases_run = outcomes.size();
  for (const auto& outcome : outcomes) {
    if (!outcome.ok) {
      ++summary.failures;
      summary.failed.push_back(outcome);
    }
  }

  // Serial vs parallel oracle: the same scenario batch through a 1-worker
  // and an N-worker pool must be bit-identical.
  const std::size_t oracle_seeds =
      std::min(options_.parallel_oracle_seeds, options_.num_seeds);
  if (oracle_seeds > 0) {
    std::vector<std::function<std::vector<double>()>> batch;
    batch.reserve(oracle_seeds);
    for (std::size_t i = 0; i < oracle_seeds; ++i) {
      const std::uint64_t seed = options_.start_seed + i;
      batch.emplace_back(
          [this, seed] { return reference_energies(make_fuzz_config(seed)); });
    }
    sim::ScenarioRunner parallel{options_.jobs == 1 ? 0 : options_.jobs};
    sim::ScenarioRunner serial{1};
    const auto parallel_energies = parallel.run(batch);
    const auto serial_energies = serial.run(batch);
    for (std::size_t i = 0; i < oracle_seeds; ++i) {
      if (parallel_energies[i] != serial_energies[i]) {
        summary.parallel_oracle_ok = false;
        summary.parallel_oracle_detail =
            "serial-vs-parallel oracle: seed " +
            std::to_string(options_.start_seed + i) +
            " produced different energies on " +
            std::to_string(parallel.jobs()) + " workers";
        break;
      }
    }
  }

  // Shard-resume oracle: one tiny campaign executed whole, a second
  // stopped after a seed-chosen shard count and resumed — the final
  // per-patient rows and lifetime CDF must be bit-identical.  Runs
  // in-process (workers = 0): this pins the store/resume determinism
  // contract, not the process plumbing.
  if (options_.shard_resume_oracle) {
    namespace fs = std::filesystem;
    campaign::CampaignSpec spec;
    spec.patients = 6;
    spec.shard_size = 2;
    spec.protocols = {mac::Protocol::kStaticTdma, mac::Protocol::kAloha};
    spec.seeds = {options_.start_seed};
    spec.measure = options_.measure;
    spec.settle = options_.settle;
    spec.join_deadline = options_.join_deadline;
    core::BanConfig base;
    base.num_nodes = 3;
    base.tdma =
        mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 3);
    base.app = core::AppKind::kEcgStreaming;
    base.storage.enabled = true;
    base.storage.battery.capacity_mah = 20.0;

    const fs::path root =
        fs::temp_directory_path() /
        ("bansim_fuzz_resume_" + std::to_string(::getpid()));
    const fs::path whole_dir = root / "whole";
    const fs::path split_dir = root / "split";
    try {
      fs::remove_all(root);
      const std::size_t total = campaign::plan_shards(spec).size();
      // Seed-chosen split point in [1, total - 1].
      const std::size_t split =
          1 + static_cast<std::size_t>(options_.start_seed % (total - 1));

      campaign::create_campaign(whole_dir, spec, base);
      campaign::RunCampaignOptions in_process;
      in_process.workers = 0;
      (void)campaign::run_campaign(whole_dir, in_process);

      campaign::create_campaign(split_dir, spec, base);
      campaign::RunCampaignOptions stop = in_process;
      stop.stop_after_shards = split;
      const auto partial = campaign::run_campaign(split_dir, stop);
      const auto resumed = campaign::run_campaign(split_dir, in_process);

      const auto aggregates_of = [](const fs::path& dir) {
        return campaign::aggregate(campaign::load_campaign(dir),
                                   campaign::collect_results(dir));
      };
      const campaign::CampaignAggregates whole = aggregates_of(whole_dir);
      const campaign::CampaignAggregates split_agg = aggregates_of(split_dir);

      const auto fail = [&](const std::string& why) {
        summary.shard_resume_oracle_ok = false;
        summary.shard_resume_oracle_detail =
            "shard-resume oracle (split after " + std::to_string(split) +
            "/" + std::to_string(total) + " shards): " + why;
      };
      if (!partial.incomplete || resumed.incomplete) {
        fail("stop/resume bookkeeping wrong (partial.incomplete=" +
             std::to_string(partial.incomplete) + ", resumed.incomplete=" +
             std::to_string(resumed.incomplete) + ")");
      } else if (!whole.complete() || !split_agg.complete()) {
        fail("aggregates incomplete after resume");
      } else if (campaign::render_csv(whole) !=
                 campaign::render_csv(split_agg)) {
        fail("per-patient rows differ between whole and resumed runs");
      } else if (whole.lifetime_cdf.render_csv() !=
                 split_agg.lifetime_cdf.render_csv()) {
        fail("lifetime CDFs differ between whole and resumed runs");
      }
    } catch (const std::exception& e) {
      summary.shard_resume_oracle_ok = false;
      summary.shard_resume_oracle_detail =
          std::string("shard-resume oracle threw: ") + e.what();
    }
    std::error_code cleanup_ec;
    fs::remove_all(root, cleanup_ec);
  }
  return summary;
}

}  // namespace bansim::check
