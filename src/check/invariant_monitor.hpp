// Runtime invariant monitor: a pure observer that attaches to a SimContext
// through the sim::CheckHooks slot and asserts, while the simulation runs,
// the properties every experiment in this repo silently relies on:
//
//  1. Energy accounting closes.  For every watched EnergyMeter the
//     per-state residencies sum to exactly the elapsed metering time (an
//     integer-tick identity), and the metered joules equal the independent
//     recomputation sum(I * Vdd * t_state) + transients from the monitor's
//     own shadow ledger within an ulp-scaled tolerance.
//  2. MAC channel discipline, protocol-aware.  For TDMA cells no two DATA
//     frames of one cell (pan) overlap on the air — beacon/SSR/grant/ACK
//     contention in the request window is legal by design and exempt — and
//     the dynamic variant's cycle length must equal slot * (1 + roster size
//     of the slot table) at every audit.  For contention cells (ALOHA,
//     slotted CSMA/CA) overlapping data frames are legal, so the strict
//     audit is replaced by (a) a half-duplex check — one radio never has
//     two frames on the air at once — and (b) for CSMA/CA, a
//     backoff-legality check: a node must not start a data transmission
//     when a frame it can hear (channel link up, same pan) has been on the
//     air longer than the CCA window plus a tolerance absorbing backoff
//     alignment, MCU prep and clock skew.  CSMA/CA GTS (CFP) frames keep
//     the strict TDMA-style exclusivity, anchored on the observed beacons.
//  3. Packet conservation.  Every frame that entered the medium retires
//     exactly once, collision-corruption at retire time matches the
//     collision events, and at teardown
//       transmits == retires + frames still in flight.
//  4. State-machine legality.  The nRF2401 only takes datasheet-legal
//     transitions (power-down -> standby via the 3 ms crystal start-up,
//     TX settling of exactly 202 us before the burst), and the MSP430
//     wake-up count seen on the hook stream matches the model's counter.
//
// The monitor never mutates model state, schedules no events and draws no
// model randomness; energies with a monitor attached are bit-identical to
// energies without (check::ScenarioFuzzer's monitor-on/off oracle and
// test_invariant_monitor enforce this).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "energy/energy_meter.hpp"
#include "fault/storage_driver.hpp"
#include "hw/mcu.hpp"
#include "hw/radio_nrf2401.hpp"
#include "mac/base_station_mac.hpp"
#include "mac/csma_mac.hpp"
#include "mac/mac_base.hpp"
#include "phy/channel.hpp"
#include "sim/check_hooks.hpp"
#include "sim/context.hpp"

namespace bansim::core {
class BanNetwork;
}

namespace bansim::check {

/// One detected invariant breach.
struct Violation {
  std::string invariant;  ///< e.g. "radio-fsm", "tdma-exclusivity"
  std::string detail;
  sim::TimePoint when{};
};

class InvariantMonitor final : public sim::CheckHooks {
 public:
  struct Options {
    /// Contention MACs (ALOHA) collide data frames by design; set this to
    /// skip the slot-exclusivity invariant (all others still apply).
    bool expect_collisions{false};
    /// Joule-comparison tolerance as a multiple of DBL_EPSILON scaled by
    /// the magnitude compared ("1 ulp" per addend; summation order between
    /// the meter and the shadow ledger differs slightly).
    double energy_ulp{256.0};
    /// Violations stored verbatim; beyond this only the count grows.
    std::size_t max_recorded{64};
  };

  explicit InvariantMonitor(sim::SimContext& context);
  InvariantMonitor(sim::SimContext& context, Options options);
  ~InvariantMonitor() override;
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  // --- Registration (call before the network starts running) ---------------

  /// Watches everything in one BanNetwork: channel, cell slot table, and
  /// every board's radio/MCU state machines and energy meters.
  void watch_network(core::BanNetwork& network);

  void watch_channel(const phy::Channel& channel);
  void watch_radio(const hw::RadioNrf2401& radio, std::uint8_t pan);
  void watch_mcu(const hw::Mcu& mcu);
  /// Also points the meter's hook slot at this monitor (detached again in
  /// the destructor).
  void watch_meter(energy::EnergyMeter& meter);
  /// Radio + MCU state machines and both their meters.
  void watch_board(hw::Board& board, std::uint8_t pan);
  /// TDMA slot-table invariants of one cell's base station.
  void watch_cell(const mac::BaseStationMac& bs, std::size_t roster_size,
                  const mac::TdmaConfig& config);
  /// Registers `pan` as a contention cell (ALOHA or slotted CSMA/CA):
  /// data-frame overlaps inside it are legal, the half-duplex and (for
  /// CSMA/CA) backoff-legality / GTS-exclusivity checks apply instead.
  void watch_contention_cell(std::uint8_t pan, mac::Protocol protocol,
                             const mac::CsmaConfig& config = {});
  /// Per-node energy-storage accounting: every joule the stores moved must
  /// close against the boards' meters and the harvest integrals
  /// (watch_network registers the network's driver automatically).
  void watch_storage(const fault::StorageDriver& driver);

  // --- Audits ---------------------------------------------------------------

  /// On-demand audit of the closed-book invariants (energy closure, cell
  /// slot table, counter cross-checks).  Callable at any sim time.
  void audit(sim::TimePoint now);

  /// audit() plus the teardown-only conservation identity
  /// (transmits == retires + in-flight).
  void final_audit(sim::TimePoint now);

  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t total_violations() const {
    return total_violations_;
  }
  /// Hook notifications observed (sanity: > 0 after any traffic).
  [[nodiscard]] std::uint64_t hook_events() const { return hook_events_; }
  /// Multi-line human-readable violation list (empty string when ok()).
  [[nodiscard]] std::string report() const;

  // --- sim::CheckHooks ------------------------------------------------------

  void on_frame_transmit(const void* channel, std::uint64_t frame_id,
                         std::uint32_t tx_id, const std::uint8_t* bytes,
                         std::size_t num_bytes, sim::TimePoint air_start,
                         sim::Duration air_time) override;
  void on_collision(const void* channel, std::uint64_t frame_a,
                    std::uint64_t frame_b) override;
  void on_frame_retired(const void* channel, std::uint64_t frame_id,
                        bool corrupted) override;
  void on_frame_delivered(const void* channel, std::uint64_t frame_id,
                          std::uint32_t rx_id, bool corrupted) override;
  void on_radio_state(const void* radio, int from, int to,
                      sim::TimePoint when) override;
  void on_mcu_mode(const void* mcu, int from, int to,
                   sim::TimePoint when) override;
  void on_meter_transition(const void* meter, int state,
                           sim::TimePoint when) override;
  void on_meter_transient(const void* meter, int state, double joules) override;

 private:
  struct RadioWatch {
    const hw::RadioNrf2401* radio;
    std::uint8_t pan;
    int state;             ///< mirrored RadioState
    sim::TimePoint since;  ///< entry instant of `state`
    sim::Duration powerup_time;
    sim::Duration settle_time;
  };
  struct McuWatch {
    const hw::Mcu* mcu;
    int mode;
    std::uint64_t wakeups;  ///< LPM -> active transitions seen on the hooks
    std::uint64_t baseline_wakeups;  ///< model counter at watch time
  };
  struct MeterWatch {
    energy::EnergyMeter* meter;
    int state;
    sim::TimePoint since;
    std::vector<sim::Duration> residency;  ///< closed stretches per state
    std::vector<double> transients;        ///< hook-reported lumps per state
    std::vector<double> baseline_joules;   ///< meter energy at watch time
    sim::TimePoint watched_from;
  };
  struct FrameInfo {
    std::uint32_t tx_id;
    sim::TimePoint air_start;
    sim::TimePoint air_end;
    bool is_data;
    std::uint8_t pan;  ///< of the transmitting radio; 0xFF if unknown
    bool in_cfp{false};  ///< data frame inside a CSMA/CA GTS region
    bool collided{false};
    bool retired{false};
  };
  struct ChannelWatch {
    const phy::Channel* channel;
    std::uint64_t baseline_sent;
    std::size_t baseline_in_flight;
    std::uint64_t transmits{0};
    std::uint64_t retires{0};
    std::unordered_map<std::uint64_t, FrameInfo> frames;
    /// Ids not yet retired; kept separately so the per-transmit overlap
    /// scan touches the (tiny) in-flight set, not every frame ever sent.
    std::vector<std::uint64_t> in_flight_ids;
  };
  struct CellWatch {
    const mac::BaseStationMac* bs;
    std::size_t roster_size;
    mac::TdmaConfig config;
  };
  struct ContentionWatch {
    std::uint8_t pan;
    mac::Protocol protocol;
    sim::Duration cca{};
    sim::Duration backoff_unit{};
    /// Superframe anchor from the last beacon seen on the air (CSMA/CA
    /// GTS-exclusivity only; geometry comes from the beacon payload).
    bool anchored{false};
    sim::TimePoint beacon_start{};
    sim::Duration cycle{};
    sim::Duration cfp{};
  };

  void violation(const char* invariant, sim::TimePoint when,
                 std::string detail);
  RadioWatch* find_radio(const void* tag);
  McuWatch* find_mcu(const void* tag);
  MeterWatch* find_meter(const void* tag);
  ChannelWatch* find_channel(const void* tag);
  ContentionWatch* find_contention(std::uint8_t pan);
  void audit_meter(MeterWatch& watch, sim::TimePoint now);
  void audit_cell(const CellWatch& watch, sim::TimePoint now);
  void audit_storage(const fault::StorageDriver& driver, sim::TimePoint now);

  sim::SimContext& context_;
  Options options_;
  std::vector<RadioWatch> radios_;
  std::vector<McuWatch> mcus_;
  std::vector<MeterWatch> meters_;
  std::vector<ChannelWatch> channels_;
  std::vector<CellWatch> cells_;
  std::vector<ContentionWatch> contention_cells_;
  std::vector<const fault::StorageDriver*> storage_drivers_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_{0};
  std::uint64_t hook_events_{0};
};

}  // namespace bansim::check
