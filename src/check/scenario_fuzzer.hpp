// Differential scenario fuzzer.
//
// Generates seeded random BAN configurations (node counts, TDMA variants
// and slot plans, application mixes, boot staggering, optional body-area
// link model, optional fault plan: burst fade, interferer, shadowing
// episodes, scripted crash/lock-up/skew events, crash churn, brown-out)
// and runs each through the invariant monitor plus four differential
// oracles:
//
//  * monitor-on vs monitor-off — attaching the InvariantMonitor must leave
//    every metered energy bit-identical (the hooks are pure observers);
//  * reference vs model fidelity — the OS-level estimator must stay within
//    a loose divergence bound of the cycle-accurate reference (it models
//    the same physics minus second-order effects, so an order-of-magnitude
//    gap means a broken estimator, not modelling error);
//  * serial vs parallel ScenarioRunner — the same scenario batch run on
//    one worker and on N workers must produce bit-identical energies;
//  * fault-campaign termination — a faulted config re-run through the
//    campaign runner (injector stopped at the horizon, in-flight faults
//    drained) must close the conservation books with zero violations;
//  * shard-resume — one small campaign run whole and a second run stopped
//    after a seed-chosen shard count then resumed must aggregate to
//    bit-identical per-patient rows and lifetime CDFs (the persistence
//    layer's determinism contract, checked without forking workers).
//
// A failing case reports its seed and a greedily minimized configuration
// serialized as config_io INI, so `bansim_check --seed <s>` reproduces it
// and the INI can be replayed through parse_config directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ban_network.hpp"
#include "sim/time.hpp"

namespace bansim::check {

struct FuzzOptions {
  std::uint64_t start_seed{1};
  std::size_t num_seeds{200};
  /// ScenarioRunner workers for the case battery and the parallel leg of
  /// the serial-vs-parallel oracle (0 = all hardware threads).
  unsigned jobs{1};
  /// Steady-state window simulated after the join phase.
  sim::Duration measure{sim::Duration::milliseconds(400)};
  sim::Duration settle{sim::Duration::milliseconds(200)};
  sim::Duration join_deadline{sim::Duration::seconds(12)};
  /// Seeds re-run serially for the serial-vs-parallel oracle.
  std::size_t parallel_oracle_seeds{6};
  /// Run the whole-vs-split-and-resumed campaign-store oracle (two tiny
  /// in-process campaigns under the system temp dir).
  bool shard_resume_oracle{true};
  /// Greedily minimize failing configurations before reporting.
  bool shrink{true};
};

/// Outcome of one fuzzed seed.
struct CaseOutcome {
  std::uint64_t seed{0};
  bool ok{true};
  std::string failure;     ///< first failing oracle / invariant report
  std::string config_ini;  ///< (minimized) failing config, config_io INI
};

struct FuzzSummary {
  std::size_t cases_run{0};
  std::size_t failures{0};
  std::vector<CaseOutcome> failed;  ///< failing cases only
  bool parallel_oracle_ok{true};
  std::string parallel_oracle_detail;
  bool shard_resume_oracle_ok{true};
  std::string shard_resume_oracle_detail;

  [[nodiscard]] bool ok() const {
    return failures == 0 && parallel_oracle_ok && shard_resume_oracle_ok;
  }
};

/// The seeded random configuration for one fuzz case.  Deterministic: the
/// same seed always produces the same BanConfig (drawn from the
/// positionless "fuzz/config" stream of `seed`).
[[nodiscard]] core::BanConfig make_fuzz_config(std::uint64_t seed);

class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(FuzzOptions options = {});

  /// Runs the full oracle battery for one seed (three simulations, plus
  /// shrinking re-runs on failure).
  [[nodiscard]] CaseOutcome run_case(std::uint64_t seed) const;

  /// Runs every seed in [start_seed, start_seed + num_seeds) through
  /// run_case on the configured worker pool, then the serial-vs-parallel
  /// oracle on the first parallel_oracle_seeds seeds.
  [[nodiscard]] FuzzSummary run() const;

  [[nodiscard]] const FuzzOptions& options() const { return options_; }

 private:
  /// Full oracle battery for an explicit config; nullopt when clean.
  [[nodiscard]] std::optional<std::string> evaluate(
      const core::BanConfig& config) const;
  /// Flattened per-node/component/state energies of one monitor-free run
  /// (the bit-comparison currency of two oracles).
  [[nodiscard]] std::vector<double> reference_energies(
      const core::BanConfig& config) const;

  FuzzOptions options_;
};

}  // namespace bansim::check
