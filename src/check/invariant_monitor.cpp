#include "check/invariant_monitor.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <span>

#include "core/ban_network.hpp"
#include "net/packet.hpp"

namespace bansim::check {

namespace {

using hw::RadioState;

/// Datasheet-legal nRF2401 transitions.  power_down() is a reset and is
/// legal from any state; everything else follows the command structure of
/// the driver (Section 3.1 staging).
bool radio_transition_legal(int from, int to) {
  const auto f = static_cast<RadioState>(from);
  const auto t = static_cast<RadioState>(to);
  if (t == RadioState::kPowerDown) return true;
  switch (f) {
    case RadioState::kPowerDown: return t == RadioState::kPoweringUp;
    case RadioState::kPoweringUp: return t == RadioState::kStandby;
    case RadioState::kStandby:
      return t == RadioState::kTxClockIn || t == RadioState::kRxSettle;
    case RadioState::kTxClockIn: return t == RadioState::kTxSettle;
    case RadioState::kTxSettle: return t == RadioState::kTxAir;
    case RadioState::kTxAir: return t == RadioState::kStandby;
    case RadioState::kRxSettle:
      return t == RadioState::kRxListen || t == RadioState::kStandby;
    case RadioState::kRxListen:
      return t == RadioState::kRxClockOut || t == RadioState::kStandby;
    case RadioState::kRxClockOut:
      return t == RadioState::kRxListen || t == RadioState::kStandby;
  }
  return false;
}

const char* radio_state_name(int s) {
  return hw::to_string(static_cast<RadioState>(s));
}

}  // namespace

InvariantMonitor::InvariantMonitor(sim::SimContext& context)
    : InvariantMonitor{context, Options{}} {}

InvariantMonitor::InvariantMonitor(sim::SimContext& context, Options options)
    : context_{context}, options_{options} {
  context_.set_check_hooks(this);
}

InvariantMonitor::~InvariantMonitor() {
  if (context_.check_hooks() == this) context_.set_check_hooks(nullptr);
  for (auto& watch : meters_) watch.meter->set_check_hooks(nullptr);
}

void InvariantMonitor::watch_network(core::BanNetwork& network) {
  watch_channel(network.channel());
  const core::BanConfig& config = network.config();
  std::uint8_t pan = 0;
  switch (config.mac) {
    case core::MacKind::kTdma:
      pan = config.tdma.pan_id;
      break;
    case core::MacKind::kCsmaCa:
      pan = static_cast<std::uint8_t>(config.csma.pan_id);
      break;
    case core::MacKind::kAloha:
      pan = 0;  // no PAN concept; every aloha radio shares tag 0
      break;
  }
  watch_board(network.base_station_board(), pan);
  switch (config.mac) {
    case core::MacKind::kTdma:
      watch_cell(network.base_station_mac(), config.effective_nodes(),
                 config.tdma);
      break;
    case core::MacKind::kCsmaCa:
      watch_contention_cell(pan, mac::Protocol::kCsmaCa, config.csma);
      break;
    case core::MacKind::kAloha:
      watch_contention_cell(pan, mac::Protocol::kAloha);
      break;
  }
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    watch_board(network.node(i).board(), pan);
  }
  if (const fault::StorageDriver* driver = network.storage_driver()) {
    watch_storage(*driver);
  }
}

void InvariantMonitor::watch_channel(const phy::Channel& channel) {
  ChannelWatch watch;
  watch.channel = &channel;
  watch.baseline_sent = channel.frames_sent();
  watch.baseline_in_flight = channel.frames_in_flight();
  channels_.push_back(std::move(watch));
}

void InvariantMonitor::watch_radio(const hw::RadioNrf2401& radio,
                                   std::uint8_t pan) {
  RadioWatch watch;
  watch.radio = &radio;
  watch.pan = pan;
  watch.state = static_cast<int>(radio.state());
  watch.since = context_.simulator.now();
  watch.powerup_time = radio.params().powerup_time;
  watch.settle_time = radio.params().settle_time;
  radios_.push_back(watch);
}

void InvariantMonitor::watch_mcu(const hw::Mcu& mcu) {
  McuWatch watch;
  watch.mcu = &mcu;
  watch.mode = static_cast<int>(mcu.mode());
  watch.wakeups = 0;
  watch.baseline_wakeups = mcu.wakeups();
  mcus_.push_back(watch);
}

void InvariantMonitor::watch_meter(energy::EnergyMeter& meter) {
  MeterWatch watch;
  watch.meter = &meter;
  watch.state = meter.current_state();
  watch.since = context_.simulator.now();
  watch.watched_from = watch.since;
  watch.residency.assign(meter.num_states(), sim::Duration::zero());
  watch.transients.assign(meter.num_states(), 0.0);
  watch.baseline_joules.resize(meter.num_states());
  for (std::size_t s = 0; s < meter.num_states(); ++s) {
    watch.baseline_joules[s] =
        meter.energy_in(static_cast<int>(s), watch.since);
  }
  meter.set_check_hooks(this);
  meters_.push_back(std::move(watch));
}

void InvariantMonitor::watch_board(hw::Board& board, std::uint8_t pan) {
  watch_radio(board.radio(), pan);
  watch_mcu(board.mcu());
  watch_meter(board.radio().meter());
  watch_meter(board.mcu().meter());
}

void InvariantMonitor::watch_cell(const mac::BaseStationMac& bs,
                                  std::size_t roster_size,
                                  const mac::TdmaConfig& config) {
  cells_.push_back(CellWatch{&bs, roster_size, config});
}

void InvariantMonitor::watch_contention_cell(std::uint8_t pan,
                                             mac::Protocol protocol,
                                             const mac::CsmaConfig& config) {
  ContentionWatch watch;
  watch.pan = pan;
  watch.protocol = protocol;
  watch.cca = config.cca;
  watch.backoff_unit = config.backoff_unit;
  contention_cells_.push_back(watch);
}

void InvariantMonitor::watch_storage(const fault::StorageDriver& driver) {
  storage_drivers_.push_back(&driver);
}

void InvariantMonitor::violation(const char* invariant, sim::TimePoint when,
                                 std::string detail) {
  ++total_violations_;
  if (violations_.size() < options_.max_recorded) {
    violations_.push_back(Violation{invariant, std::move(detail), when});
  }
}

InvariantMonitor::RadioWatch* InvariantMonitor::find_radio(const void* tag) {
  for (auto& w : radios_) {
    if (static_cast<const void*>(w.radio) == tag) return &w;
  }
  return nullptr;
}

InvariantMonitor::McuWatch* InvariantMonitor::find_mcu(const void* tag) {
  for (auto& w : mcus_) {
    if (static_cast<const void*>(w.mcu) == tag) return &w;
  }
  return nullptr;
}

InvariantMonitor::MeterWatch* InvariantMonitor::find_meter(const void* tag) {
  for (auto& w : meters_) {
    if (static_cast<const void*>(w.meter) == tag) return &w;
  }
  return nullptr;
}

InvariantMonitor::ChannelWatch* InvariantMonitor::find_channel(
    const void* tag) {
  for (auto& w : channels_) {
    if (static_cast<const void*>(w.channel) == tag) return &w;
  }
  return nullptr;
}

InvariantMonitor::ContentionWatch* InvariantMonitor::find_contention(
    std::uint8_t pan) {
  for (auto& w : contention_cells_) {
    if (w.pan == pan) return &w;
  }
  return nullptr;
}

// --- Channel hooks ----------------------------------------------------------

void InvariantMonitor::on_frame_transmit(const void* channel,
                                         std::uint64_t frame_id,
                                         std::uint32_t tx_id,
                                         const std::uint8_t* bytes,
                                         std::size_t num_bytes,
                                         sim::TimePoint air_start,
                                         sim::Duration air_time) {
  ++hook_events_;
  ChannelWatch* watch = find_channel(channel);
  if (!watch) return;
  ++watch->transmits;

  FrameInfo info;
  info.tx_id = tx_id;
  info.air_start = air_start;
  info.air_end = air_start + air_time;
  info.is_data = false;
  info.pan = 0xFF;
  const auto packet =
      net::Packet::deserialize(std::span<const std::uint8_t>{bytes, num_bytes});
  if (packet) info.is_data = packet->header.type == net::PacketType::kData;
  for (const auto& r : radios_) {
    if (r.radio->channel_id() == tx_id) {
      info.pan = r.pan;
      break;
    }
  }

  // Half-duplex: one radio never has two frames on the air at once, under
  // any protocol.
  for (const std::uint64_t other_id : watch->in_flight_ids) {
    const auto it = watch->frames.find(other_id);
    if (it == watch->frames.end()) continue;
    const FrameInfo& other = it->second;
    if (other.tx_id == tx_id && other.air_end > info.air_start) {
      violation("half-duplex", context_.simulator.now(),
                "tx" + std::to_string(tx_id) + " started frame " +
                    std::to_string(frame_id) + " while its frame " +
                    std::to_string(other_id) + " is still on the air");
    }
  }

  ContentionWatch* cell =
      info.pan == 0xFF ? nullptr : find_contention(info.pan);
  if (cell && packet && packet->header.type == net::PacketType::kBeacon) {
    // Anchor the superframe from the beacon itself; the payload carries the
    // full geometry, so the monitor needs no side-channel into the MAC.
    if (const auto beacon = net::BeaconPayload::deserialize(packet->payload)) {
      cell->anchored = true;
      cell->beacon_start = air_start;
      cell->cycle = sim::Duration::microseconds(beacon->cycle_us);
      cell->cfp = sim::Duration::microseconds(beacon->slot_us) *
                  static_cast<std::int64_t>(beacon->num_slots);
    }
  }

  if (info.is_data && !options_.expect_collisions && info.pan != 0xFF) {
    if (cell == nullptr) {
      // TDMA cell: strict data-slot exclusivity.
      for (const std::uint64_t other_id : watch->in_flight_ids) {
        const auto it = watch->frames.find(other_id);
        if (it == watch->frames.end()) continue;
        const FrameInfo& other = it->second;
        if (!other.is_data) continue;
        if (other.pan != info.pan) continue;
        if (other.air_end > info.air_start) {
          violation("tdma-exclusivity", context_.simulator.now(),
                    "data frame " + std::to_string(frame_id) + " from tx" +
                        std::to_string(tx_id) + " overlaps data frame " +
                        std::to_string(other_id) + " from tx" +
                        std::to_string(other.tx_id) + " in pan " +
                        std::to_string(info.pan));
        }
      }
    } else {
      // Contention cell: overlaps are legal in the CAP; GTS (CFP) frames
      // keep TDMA-grade exclusivity and CSMA transmitters must have passed
      // a recent CCA.
      if (cell->protocol == mac::Protocol::kCsmaCa && cell->anchored &&
          cell->cfp.is_positive()) {
        const sim::Duration rel = info.air_start - cell->beacon_start;
        info.in_cfp = rel >= cell->cycle - cell->cfp && rel < cell->cycle;
      }
      if (info.in_cfp) {
        for (const std::uint64_t other_id : watch->in_flight_ids) {
          const auto it = watch->frames.find(other_id);
          if (it == watch->frames.end()) continue;
          const FrameInfo& other = it->second;
          if (!other.is_data || !other.in_cfp) continue;
          if (other.pan != info.pan) continue;
          if (other.air_end > info.air_start) {
            violation("gts-exclusivity", context_.simulator.now(),
                      "GTS data frame " + std::to_string(frame_id) +
                          " from tx" + std::to_string(tx_id) +
                          " overlaps GTS frame " + std::to_string(other_id) +
                          " from tx" + std::to_string(other.tx_id) +
                          " in pan " + std::to_string(info.pan));
          }
        }
      } else if (cell->protocol == mac::Protocol::kCsmaCa) {
        // Backoff legality: a frame the transmitter can hear that has been
        // on the air longer than one CCA window (plus backoff-boundary
        // alignment, MCU prep and skew) before our air start would have
        // been seen by any legal clear-channel assessment.
        const sim::Duration tolerance = cell->cca + cell->backoff_unit * 2;
        for (const std::uint64_t other_id : watch->in_flight_ids) {
          const auto it = watch->frames.find(other_id);
          if (it == watch->frames.end()) continue;
          const FrameInfo& other = it->second;
          if (other.pan != info.pan) continue;
          if (!watch->channel->link(other.tx_id, tx_id)) continue;
          if (other.air_end > info.air_start &&
              other.air_start + tolerance < info.air_start) {
            violation("csma-backoff", context_.simulator.now(),
                      "tx" + std::to_string(tx_id) + " started data frame " +
                          std::to_string(frame_id) + " although frame " +
                          std::to_string(other_id) + " from tx" +
                          std::to_string(other.tx_id) +
                          " was already on the air past the CCA window");
          }
        }
      }
    }
  }

  if (!watch->frames.emplace(frame_id, info).second) {
    violation("packet-conservation", context_.simulator.now(),
              "frame id " + std::to_string(frame_id) + " transmitted twice");
  } else {
    watch->in_flight_ids.push_back(frame_id);
  }
}

void InvariantMonitor::on_collision(const void* channel, std::uint64_t frame_a,
                                    std::uint64_t frame_b) {
  ++hook_events_;
  ChannelWatch* watch = find_channel(channel);
  if (!watch) return;
  for (const std::uint64_t id : {frame_a, frame_b}) {
    if (id <= watch->baseline_sent) continue;  // pre-watch frame
    auto it = watch->frames.find(id);
    if (it == watch->frames.end()) {
      violation("packet-conservation", context_.simulator.now(),
                "collision names unknown frame " + std::to_string(id));
      continue;
    }
    if (it->second.retired) {
      violation("packet-conservation", context_.simulator.now(),
                "collision names retired frame " + std::to_string(id));
    }
    it->second.collided = true;
  }
}

void InvariantMonitor::on_frame_retired(const void* channel,
                                        std::uint64_t frame_id,
                                        bool corrupted) {
  ++hook_events_;
  ChannelWatch* watch = find_channel(channel);
  if (!watch) return;
  if (frame_id <= watch->baseline_sent) return;  // pre-watch frame
  ++watch->retires;
  auto it = watch->frames.find(frame_id);
  if (it == watch->frames.end()) {
    violation("packet-conservation", context_.simulator.now(),
              "retired frame " + std::to_string(frame_id) +
                  " was never transmitted");
    return;
  }
  FrameInfo& info = it->second;
  if (info.retired) {
    violation("packet-conservation", context_.simulator.now(),
              "frame " + std::to_string(frame_id) + " retired twice");
  }
  info.retired = true;
  const auto live = std::find(watch->in_flight_ids.begin(),
                              watch->in_flight_ids.end(), frame_id);
  if (live != watch->in_flight_ids.end()) watch->in_flight_ids.erase(live);
  if (corrupted != info.collided) {
    violation("packet-conservation", context_.simulator.now(),
              "frame " + std::to_string(frame_id) + " retired " +
                  (corrupted ? "corrupted without" : "clean despite") +
                  " a collision event");
  }
}

void InvariantMonitor::on_frame_delivered(const void* channel,
                                          std::uint64_t frame_id,
                                          std::uint32_t rx_id,
                                          bool corrupted) {
  ++hook_events_;
  ChannelWatch* watch = find_channel(channel);
  if (!watch) return;
  if (frame_id <= watch->baseline_sent) return;
  auto it = watch->frames.find(frame_id);
  if (it == watch->frames.end()) {
    violation("packet-conservation", context_.simulator.now(),
              "delivery of unknown frame " + std::to_string(frame_id) +
                  " to rx" + std::to_string(rx_id));
    return;
  }
  if (!it->second.retired) {
    violation("packet-conservation", context_.simulator.now(),
              "frame " + std::to_string(frame_id) +
                  " delivered before retiring");
  }
  // The per-receiver flag may add bit-error corruption on top, but a
  // collision-corrupted frame can never be delivered clean.
  if (it->second.collided && !corrupted) {
    violation("packet-conservation", context_.simulator.now(),
              "collided frame " + std::to_string(frame_id) +
                  " delivered clean to rx" + std::to_string(rx_id));
  }
}

// --- Device state machines --------------------------------------------------

void InvariantMonitor::on_radio_state(const void* radio, int from, int to,
                                      sim::TimePoint when) {
  ++hook_events_;
  RadioWatch* watch = find_radio(radio);
  if (!watch) return;
  if (from != watch->state) {
    violation("radio-fsm", when,
              std::string{"reported source state "} + radio_state_name(from) +
                  " does not match mirrored state " +
                  radio_state_name(watch->state));
  }
  if (!radio_transition_legal(from, to)) {
    violation("radio-fsm", when,
              std::string{"illegal transition "} + radio_state_name(from) +
                  " -> " + radio_state_name(to));
  }
  // Timed stages: these completions are scheduled, so reaching them means
  // exactly the datasheet delay elapsed in the source state.
  const sim::Duration dwell = when - watch->since;
  const auto f = static_cast<RadioState>(from);
  const auto t = static_cast<RadioState>(to);
  if (f == RadioState::kPoweringUp && t == RadioState::kStandby &&
      dwell != watch->powerup_time) {
    violation("radio-fsm", when,
              "crystal start-up took " + dwell.to_string() + ", expected " +
                  watch->powerup_time.to_string());
  }
  if (f == RadioState::kTxSettle && t == RadioState::kTxAir &&
      dwell != watch->settle_time) {
    violation("radio-fsm", when,
              "TX settling took " + dwell.to_string() + ", expected " +
                  watch->settle_time.to_string());
  }
  if (f == RadioState::kRxSettle && t == RadioState::kRxListen &&
      dwell != watch->settle_time) {
    violation("radio-fsm", when,
              "RX settling took " + dwell.to_string() + ", expected " +
                  watch->settle_time.to_string());
  }
  watch->state = to;
  watch->since = when;
}

void InvariantMonitor::on_mcu_mode(const void* mcu, int from, int to,
                                   sim::TimePoint when) {
  ++hook_events_;
  McuWatch* watch = find_mcu(mcu);
  if (!watch) return;
  if (from != watch->mode) {
    violation("mcu-fsm", when,
              "reported source mode " + std::to_string(from) +
                  " does not match mirrored mode " +
                  std::to_string(watch->mode));
  }
  if (from == to) {
    violation("mcu-fsm", when,
              "self-transition in mode " + std::to_string(from) +
                  " (enter() must filter these)");
  }
  const bool waking = to == static_cast<int>(hw::McuMode::kActive);
  if (waking) ++watch->wakeups;
  watch->mode = to;
}

// --- Energy meters ----------------------------------------------------------

void InvariantMonitor::on_meter_transition(const void* meter, int state,
                                           sim::TimePoint when) {
  ++hook_events_;
  MeterWatch* watch = find_meter(meter);
  if (!watch) return;
  if (when < watch->since) {
    violation("energy-closure", when,
              "meter '" + watch->meter->component() +
                  "' transition moves time backwards");
    return;
  }
  watch->residency[static_cast<std::size_t>(watch->state)] +=
      when - watch->since;
  watch->state = state;
  watch->since = when;
}

void InvariantMonitor::on_meter_transient(const void* meter, int state,
                                          double joules) {
  ++hook_events_;
  MeterWatch* watch = find_meter(meter);
  if (!watch) return;
  watch->transients[static_cast<std::size_t>(state)] += joules;
}

// --- Audits -----------------------------------------------------------------

void InvariantMonitor::audit_meter(MeterWatch& watch, sim::TimePoint now) {
  const energy::EnergyMeter& meter = *watch.meter;

  // Residency closure: integer-tick identity, no tolerance.
  std::int64_t meter_ticks = 0;
  for (std::size_t s = 0; s < meter.num_states(); ++s) {
    meter_ticks += meter.time_in(static_cast<int>(s), now).ticks();
  }
  const std::int64_t elapsed = (now - meter.start()).ticks();
  if (meter_ticks != elapsed) {
    violation("energy-closure", now,
              "meter '" + meter.component() + "' residencies sum to " +
                  std::to_string(meter_ticks) + " ticks, elapsed is " +
                  std::to_string(elapsed));
  }

  // Shadow-ledger closure: the hook stream must be gapless.
  std::int64_t shadow_ticks = (now - watch.since).ticks();
  for (const sim::Duration d : watch.residency) shadow_ticks += d.ticks();
  const std::int64_t watched = (now - watch.watched_from).ticks();
  if (shadow_ticks != watched) {
    violation("energy-closure", now,
              "meter '" + meter.component() + "' hook stream covers " +
                  std::to_string(shadow_ticks) + " ticks of " +
                  std::to_string(watched) + " watched");
  }

  // Joule closure: recompute sum(I * Vdd * t_state) + transients from the
  // shadow ledger and compare within an ulp-scaled tolerance.
  double expected = 0.0;
  for (std::size_t s = 0; s < meter.num_states(); ++s) {
    sim::Duration t = watch.residency[s];
    if (static_cast<int>(s) == watch.state) t += now - watch.since;
    expected += watch.baseline_joules[s] +
                meter.state(s).current_amps * meter.supply_volts() *
                    t.to_seconds() +
                watch.transients[s];
  }
  const double actual = meter.total_energy(now);
  const double scale = std::max({std::fabs(expected), std::fabs(actual), 1e-12});
  const double tol = options_.energy_ulp * DBL_EPSILON * scale;
  if (std::fabs(expected - actual) > tol) {
    violation("energy-closure", now,
              "meter '" + meter.component() + "' reports " +
                  std::to_string(actual) + " J, shadow recomputation gives " +
                  std::to_string(expected) + " J (tol " + std::to_string(tol) +
                  ")");
  }
}

void InvariantMonitor::audit_cell(const CellWatch& watch, sim::TimePoint now) {
  const mac::BaseStationMac& bs = *watch.bs;
  const auto& owners = bs.slot_owners();

  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (owners[i] == mac::kFreeSlot) continue;
    for (std::size_t j = i + 1; j < owners.size(); ++j) {
      if (owners[i] == owners[j]) {
        violation("tdma-schedule", now,
                  "node " + std::to_string(owners[i]) + " owns slots " +
                      std::to_string(i) + " and " + std::to_string(j));
      }
    }
  }
  if (bs.joined_nodes() > watch.roster_size) {
    violation("tdma-schedule", now,
              std::to_string(bs.joined_nodes()) + " joined nodes exceed the " +
                  std::to_string(watch.roster_size) + "-node roster");
  }
  if (watch.config.variant == mac::TdmaVariant::kStatic) {
    if (owners.size() != watch.config.max_slots) {
      violation("tdma-schedule", now,
                "static slot table holds " + std::to_string(owners.size()) +
                    " slots, configured for " +
                    std::to_string(watch.config.max_slots));
    }
    if (bs.current_cycle() != watch.config.static_cycle()) {
      violation("tdma-schedule", now,
                "static cycle is " + bs.current_cycle().to_string() +
                    ", expected " + watch.config.static_cycle().to_string());
    }
  } else {
    for (const net::NodeId owner : owners) {
      if (owner == mac::kFreeSlot) {
        violation("tdma-schedule", now,
                  "dynamic slot table contains a free slot");
      }
    }
    const sim::Duration expected =
        watch.config.slot * (1 + static_cast<std::int64_t>(owners.size()));
    if (bs.current_cycle() != expected) {
      violation("tdma-schedule", now,
                "dynamic cycle is " + bs.current_cycle().to_string() +
                    " for " + std::to_string(owners.size()) +
                    " slots, expected " + expected.to_string());
    }
  }
}

void InvariantMonitor::audit_storage(const fault::StorageDriver& driver,
                                     sim::TimePoint now) {
  const auto close = [&](const std::string& node, const char* identity,
                         double lhs, double rhs) {
    const double scale = std::max({std::fabs(lhs), std::fabs(rhs), 1e-12});
    const double tol = options_.energy_ulp * DBL_EPSILON * scale;
    if (std::fabs(lhs - rhs) > tol) {
      violation("storage-closure", now,
                "store '" + node + "' " + identity + ": " +
                    std::to_string(lhs) + " J vs " + std::to_string(rhs) +
                    " J (tol " + std::to_string(tol) + ")");
    }
  };
  for (const fault::NodeStorageStatus& s : driver.status()) {
    // Every joule the driver requested is the board meter's growth since
    // the baseline — the store never invents or loses metered draw.
    close(s.node, "requested != metered",
          s.requested_joules, s.sampled_joules - s.baseline_joules);
    // Harvest income splits exactly into stored + clamp overflow.
    close(s.node, "income != stored + overflow", s.income_joules,
          s.stored_joules + s.overflow_joules);
    // The store level is the initial charge plus income minus supply.
    close(s.node, "initial + stored - drawn != remaining",
          s.initial_joules + s.stored_joules - s.drawn_joules,
          s.remaining_joules);
    if (s.drawn_joules > s.requested_joules * (1.0 + 1e-12)) {
      violation("storage-closure", now,
                "store '" + s.node + "' drew " +
                    std::to_string(s.drawn_joules) + " J of " +
                    std::to_string(s.requested_joules) + " J requested");
    }
  }
}

void InvariantMonitor::audit(sim::TimePoint now) {
  for (auto& watch : meters_) audit_meter(watch, now);
  for (const auto& watch : cells_) audit_cell(watch, now);
  for (const fault::StorageDriver* driver : storage_drivers_) {
    audit_storage(*driver, now);
  }
  for (const auto& watch : mcus_) {
    const std::uint64_t model = watch.mcu->wakeups() - watch.baseline_wakeups;
    if (watch.wakeups != model) {
      violation("mcu-fsm", now,
                "hook stream saw " + std::to_string(watch.wakeups) +
                    " wake-ups, model counted " + std::to_string(model));
    }
  }
}

void InvariantMonitor::final_audit(sim::TimePoint now) {
  audit(now);
  for (const auto& watch : channels_) {
    const std::uint64_t sent =
        watch.channel->frames_sent() - watch.baseline_sent;
    if (watch.transmits != sent) {
      violation("packet-conservation", now,
                "observed " + std::to_string(watch.transmits) +
                    " transmits, channel counted " + std::to_string(sent));
    }
    const std::size_t in_flight = watch.in_flight_ids.size();
    if (watch.transmits != watch.retires + in_flight) {
      violation("packet-conservation", now,
                std::to_string(watch.transmits) + " transmits != " +
                    std::to_string(watch.retires) + " retires + " +
                    std::to_string(in_flight) + " in flight");
    }
    if (in_flight + watch.baseline_in_flight !=
        watch.channel->frames_in_flight()) {
      violation("packet-conservation", now,
                "channel holds " +
                    std::to_string(watch.channel->frames_in_flight()) +
                    " in-flight frames, monitor tracked " +
                    std::to_string(in_flight));
    }
  }
}

std::string InvariantMonitor::report() const {
  if (total_violations_ == 0) return {};
  std::string out = std::to_string(total_violations_) +
                    " invariant violation(s):\n";
  for (const auto& v : violations_) {
    out += "  [" + v.invariant + "] t=" + v.when.to_string() + ": " +
           v.detail + "\n";
  }
  if (total_violations_ > violations_.size()) {
    out += "  ... and " +
           std::to_string(total_violations_ - violations_.size()) + " more\n";
  }
  return out;
}

}  // namespace bansim::check
