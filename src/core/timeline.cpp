#include "core/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace bansim::core {

namespace {

char event_symbol(const std::string& message) {
  if (message.rfind("SB beacon", 0) == 0) return 'B';
  if (message.rfind("SSR", 0) == 0) return 'R';
  if (message.rfind("Si data tx", 0) == 0) return 'D';
  if (message.rfind("grant slot", 0) == 0 || message.rfind("new slot", 0) == 0) {
    return 'G';
  }
  return '\0';
}

}  // namespace

std::string render_timeline(const std::vector<sim::TraceRecord>& records,
                            const TimelineOptions& options) {
  const auto bins = static_cast<std::size_t>(
      options.window.divided_by(options.bin));
  std::map<std::string, std::string> rows;

  for (const auto& record : records) {
    if (record.category != sim::TraceCategory::kMac) continue;
    const char symbol = event_symbol(record.message);
    if (symbol == '\0') continue;
    if (record.when < options.start) continue;
    const sim::Duration offset = record.when - options.start;
    if (offset >= options.window) continue;
    const auto bin = static_cast<std::size_t>(offset.divided_by(options.bin));
    auto [it, inserted] = rows.try_emplace(record.node(), std::string(bins, '.'));
    if (bin < it->second.size()) it->second[bin] = symbol;
  }

  std::string out;
  char head[96];
  std::snprintf(head, sizeof head,
                "timeline from %.1f ms, %c = %.1f ms/char  "
                "(B beacon, R slot request, G grant, D data)\n",
                options.start.to_milliseconds(), '.',
                options.bin.to_milliseconds());
  out += head;
  for (const auto& [node, raster] : rows) {
    char label[32];
    std::snprintf(label, sizeof label, "%-8s |", node.c_str());
    out += label;
    out += raster;
    out += "|\n";
  }
  return out;
}

}  // namespace bansim::core
