// The paper's evaluation scenarios (Section 5), one function per table or
// figure.  Each returns the data needed to print the corresponding artifact;
// the bench binaries format and time them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ban_network.hpp"
#include "core/experiment.hpp"
#include "energy/energy_report.hpp"

namespace bansim::core {

/// Shared scenario parameters for the paper reproduction.
struct PaperSetup {
  std::uint64_t seed{42};
  sim::Duration measure{sim::Duration::seconds(60)};
  std::size_t static_nodes{5};  ///< the paper's 5-node BAN
};

/// Base config for an ECG-streaming node network on static TDMA with the
/// given cycle.  Sampling frequency follows the paper's coupling: 18 bytes
/// (12 codes, 2 channels) fill exactly one TDMA cycle.
[[nodiscard]] BanConfig streaming_static_config(const PaperSetup& setup,
                                                sim::Duration cycle);

/// ECG streaming on dynamic TDMA (10 ms slots) with `nodes` nodes.
[[nodiscard]] BanConfig streaming_dynamic_config(const PaperSetup& setup,
                                                 std::size_t nodes);

/// Rpeak on static TDMA with the given cycle (200 Hz fixed sampling).
[[nodiscard]] BanConfig rpeak_static_config(const PaperSetup& setup,
                                            sim::Duration cycle);

/// Rpeak on dynamic TDMA with `nodes` nodes.
[[nodiscard]] BanConfig rpeak_dynamic_config(const PaperSetup& setup,
                                             std::size_t nodes);

/// Table 1: ECG streaming, static TDMA, fs in {205,105,70,55} Hz.
[[nodiscard]] energy::ValidationTable table1(const PaperSetup& setup = {});

/// Table 2: ECG streaming, dynamic TDMA, nodes in {1..5}.
[[nodiscard]] energy::ValidationTable table2(const PaperSetup& setup = {});

/// Table 3: Rpeak, static TDMA, cycle in {30,60,90,120} ms.
[[nodiscard]] energy::ValidationTable table3(const PaperSetup& setup = {});

/// Table 4: Rpeak, dynamic TDMA, nodes in {1..5}.
[[nodiscard]] energy::ValidationTable table4(const PaperSetup& setup = {});

/// Figure 4: total node energy, ECG streaming @30 ms vs Rpeak @120 ms.
struct Figure4Result {
  double streaming_real_radio_mj{0};
  double streaming_real_mcu_mj{0};
  double streaming_sim_radio_mj{0};
  double streaming_sim_mcu_mj{0};
  double rpeak_real_radio_mj{0};
  double rpeak_real_mcu_mj{0};
  double rpeak_sim_radio_mj{0};
  double rpeak_sim_mcu_mj{0};

  [[nodiscard]] double streaming_real_total() const {
    return streaming_real_radio_mj + streaming_real_mcu_mj;
  }
  [[nodiscard]] double rpeak_real_total() const {
    return rpeak_real_radio_mj + rpeak_real_mcu_mj;
  }
  /// Energy saved by on-node preprocessing (the paper reports 65 %).
  [[nodiscard]] double saving_fraction() const {
    return 1.0 - rpeak_real_total() / streaming_real_total();
  }
  [[nodiscard]] std::string render() const;
};

[[nodiscard]] Figure4Result figure4(const PaperSetup& setup = {});

/// The paper's reference values for every table, used by EXPERIMENTS.md
/// and the benches to print paper-vs-reproduction deltas.
[[nodiscard]] const energy::ValidationTable& paper_table(int which);

}  // namespace bansim::core
