// Node power-profile capture.
//
// Samples a node's instantaneous power draw (finite difference of the
// component meters' energy over a fixed grid) while advancing the
// simulation — the waveform an engineer sees on a bench supply current
// probe: the sleep floor, the beacon-listen plateau, the TX burst.
#pragma once

#include "core/ban_network.hpp"
#include "energy/power_trace.hpp"

namespace bansim::core {

struct PowerProfileOptions {
  sim::Duration window{sim::Duration::milliseconds(200)};
  sim::Duration step{sim::Duration::microseconds(100)};
  bool include_asic{false};  ///< add the constant 10.5 mW front-end
};

/// Advances `network` by options.window, sampling node `index`'s power on
/// the step grid.  Returns a step-wise trace (watts).
[[nodiscard]] energy::PowerTrace capture_power_profile(
    BanNetwork& network, std::size_t index, const PowerProfileOptions& options);

}  // namespace bansim::core
