#include "core/experiment.hpp"

namespace bansim::core {

namespace {

double component_mj(const std::vector<energy::ComponentEnergy>& rows,
                    const std::string& name) {
  for (const auto& c : rows) {
    if (c.component == name) return c.joules * 1e3;
  }
  return 0.0;
}

}  // namespace

ScenarioResult run_scenario(const BanConfig& config,
                            const MeasurementProtocol& protocol,
                            os::ModelProbe* probe) {
  BanNetwork network{config, probe};
  network.start();

  ScenarioResult result;
  result.joined = network.run_until_joined(
      protocol.settle, sim::TimePoint::zero() + protocol.join_deadline);
  if (!result.joined) {
    result.events = network.simulator().events_executed();
    return result;
  }

  auto& node = network.node(protocol.focus_node);
  const sim::TimePoint t0 = network.simulator().now();
  const auto before = node.board().breakdown(t0);
  const auto mac_before = node.mac_base().stats_snapshot();

  network.run_until(t0 + protocol.measure);

  const sim::TimePoint t1 = network.simulator().now();
  const auto after = node.board().breakdown(t1);
  const auto mac_after = node.mac_base().stats_snapshot();

  result.radio_mj = component_mj(after, "radio") - component_mj(before, "radio");
  result.mcu_mj = component_mj(after, "mcu") - component_mj(before, "mcu");
  result.asic_mj = component_mj(after, "asic") - component_mj(before, "asic");
  result.total_mj = result.radio_mj + result.mcu_mj;
  result.data_packets = mac_after.data_sent - mac_before.data_sent;
  result.beacons_received =
      mac_after.beacons_received - mac_before.beacons_received;
  result.beacons_missed = mac_after.beacons_missed - mac_before.beacons_missed;
  result.collisions = network.channel().collisions();
  result.events = network.simulator().events_executed();
  result.measured = t1 - t0;
  return result;
}

energy::ValidationRow validation_row(const BanConfig& config,
                                     const MeasurementProtocol& protocol,
                                     std::string parameter_label,
                                     double cycle_ms) {
  BanConfig reference = config;
  reference.fidelity = Fidelity::kReference;
  BanConfig model = config;
  model.fidelity = Fidelity::kModel;

  const ScenarioResult real = run_scenario(reference, protocol);
  const ScenarioResult sim = run_scenario(model, protocol);

  energy::ValidationRow row;
  row.parameter = std::move(parameter_label);
  row.cycle_ms = cycle_ms;
  row.radio_real_mj = real.radio_mj;
  row.radio_sim_mj = sim.radio_mj;
  row.mcu_real_mj = real.mcu_mj;
  row.mcu_sim_mj = sim.mcu_mj;
  return row;
}

}  // namespace bansim::core
