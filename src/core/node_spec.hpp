// Per-node composition recipe.
//
// A NodeSpec describes ONE sensor node of a BAN: which application it
// runs, which hardware board it is built on, at which fidelity it is
// simulated, and (optionally) pinned values for the quantities that are
// normally drawn from the network's deterministic RNG streams (clock skew,
// boot stagger).  A homogeneous network is a roster of default-constructed
// specs; a heterogeneous ward network (say, two ECG streamers plus three
// R-peak detectors) is a roster of five specs differing only in `app`.
//
// Every field except `address` is optional: an unset field inherits the
// network-wide default carried by the assembly config (BanConfig /
// CellPlan).  Overriding a field never shifts the RNG draws of the other
// nodes — the builder always consumes its skew/stagger streams in node
// order and only then substitutes pinned values — so adding an override to
// node 3 leaves nodes 1, 2, 4, ... bit-identical.
#pragma once

#include <cstdint>
#include <optional>

#include "apps/ecg_streaming_app.hpp"
#include "apps/ecg_synthesizer.hpp"
#include "apps/eeg_app.hpp"
#include "apps/eeg_synthesizer.hpp"
#include "apps/rpeak_app.hpp"
#include "core/fidelity.hpp"
#include "hw/board.hpp"
#include "hw/energy_store.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace bansim::core {

/// Which application runs on a sensor node.
enum class AppKind { kNone, kEcgStreaming, kRpeak, kEegMonitoring };

[[nodiscard]] constexpr const char* to_string(AppKind k) {
  switch (k) {
    case AppKind::kNone: return "none";
    case AppKind::kEcgStreaming: return "ecg_streaming";
    case AppKind::kRpeak: return "rpeak";
    case AppKind::kEegMonitoring: return "eeg_monitoring";
  }
  return "?";
}

/// Which medium-access layer the stack runs.  kTdma covers both TDMA
/// variants (TdmaConfig::variant selects static vs dynamic); kCsmaCa is
/// the beacon-enabled slotted CSMA/CA contention MAC.
enum class MacKind { kTdma, kAloha, kCsmaCa };

[[nodiscard]] constexpr const char* to_string(MacKind k) {
  switch (k) {
    case MacKind::kTdma: return "tdma";
    case MacKind::kAloha: return "aloha";
    case MacKind::kCsmaCa: return "csma_ca";
  }
  return "?";
}

struct NodeSpec {
  /// Application; unset inherits the network default.
  std::optional<AppKind> app;

  /// Radio address.  0 selects the positional default
  /// (address_offset + index + 1).
  net::NodeId address{0};

  /// Pins the DCO clock skew instead of drawing it from the "skew" stream.
  std::optional<double> clock_skew;

  /// Pins the boot offset instead of drawing it from the "stagger" stream.
  std::optional<sim::Duration> boot_offset;

  /// Hardware / fidelity overrides.
  std::optional<hw::BoardParams> board;
  std::optional<Fidelity> fidelity;

  /// Energy-storage override: give THIS node a different cell, a
  /// capacitor-backed battery-less supply, or no store at all.
  std::optional<hw::StorageParams> storage;

  /// Application-parameter overrides.
  std::optional<apps::StreamingConfig> streaming;
  std::optional<apps::RpeakConfig> rpeak;
  std::optional<apps::EcgConfig> ecg;
  std::optional<apps::EegAppConfig> eeg;
  std::optional<apps::EegConfig> eeg_signal;

  /// CSMA/CA cells only: this node requests a guaranteed time slot and
  /// transmits contention-free once granted.  The MAC protocol itself is a
  /// cell-wide property (one base station, one superframe structure), so
  /// GTS membership is the per-node knob.
  std::optional<bool> csma_gts;
};

}  // namespace bansim::core
