#include "core/mac_analyzer.hpp"

#include <cstdio>

#include "hw/radio_nrf2401.hpp"

namespace bansim::core {

namespace {

double duty(const energy::EnergyMeter& meter, std::initializer_list<int> states,
            sim::TimePoint now, double window_s) {
  double seconds = 0;
  for (int s : states) seconds += meter.time_in(s, now).to_seconds();
  return window_s > 0 ? seconds / window_s : 0.0;
}

}  // namespace

MacAnalysis analyze_mac(BanNetwork& network,
                        const std::vector<sim::TraceRecord>& records,
                        sim::TimePoint t0) {
  MacAnalysis analysis;
  const sim::TimePoint now = network.simulator().now();
  analysis.window = now - t0;
  const double window_s = analysis.window.to_seconds();

  using hw::RadioState;
  const auto rx_states = {static_cast<int>(RadioState::kRxSettle),
                          static_cast<int>(RadioState::kRxListen),
                          static_cast<int>(RadioState::kRxClockOut)};
  const auto tx_states = {static_cast<int>(RadioState::kTxClockIn),
                          static_cast<int>(RadioState::kTxSettle),
                          static_cast<int>(RadioState::kTxAir)};

  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    auto& node = network.node(i);
    const auto& radio = node.board().radio().meter();
    const auto& mcu = node.board().mcu().meter();

    NodeMacReport report;
    report.node = node.name();
    // NOTE: residencies are since t=0; for steady-state runs where t0 is a
    // small prefix this is a close approximation of the window duty.
    const double total_s = now.to_seconds();
    report.radio_rx_duty = duty(radio, rx_states, now, total_s);
    report.radio_tx_duty = duty(radio, tx_states, now, total_s);
    report.radio_duty = report.radio_rx_duty + report.radio_tx_duty;
    report.mcu_active_duty =
        duty(mcu, {static_cast<int>(hw::McuMode::kActive)}, now, total_s);

    const auto listens =
        radio.entries(static_cast<int>(RadioState::kRxSettle));
    report.listen_windows_per_s =
        total_s > 0 ? static_cast<double>(listens) / total_s : 0;
    const double listen_s =
        radio.time_in(static_cast<int>(RadioState::kRxSettle), now).to_seconds() +
        radio.time_in(static_cast<int>(RadioState::kRxListen), now).to_seconds() +
        radio.time_in(static_cast<int>(RadioState::kRxClockOut), now).to_seconds();
    report.avg_listen_window_ms =
        listens > 0 ? listen_s * 1e3 / static_cast<double>(listens) : 0;
    report.mcu_wakeups_per_s =
        total_s > 0
            ? static_cast<double>(node.board().mcu().wakeups()) / total_s
            : 0;

    const auto stats = node.mac_base().stats_snapshot();
    report.beacons_received = stats.beacons_received;
    report.beacons_missed = stats.beacons_missed;
    report.data_sent = stats.data_sent;
    analysis.nodes.push_back(report);
  }

  // Beacon cadence from the base station's trace lines.
  sim::TimePoint last_beacon;
  bool have_last = false;
  for (const auto& record : records) {
    if (record.category != sim::TraceCategory::kMac) continue;
    if (record.node() != "bs") continue;
    if (record.message.rfind("SB beacon", 0) != 0) continue;
    if (record.when < t0) continue;
    if (have_last) {
      analysis.beacon_interval_ms.add((record.when - last_beacon).to_seconds() *
                                      1e3);
    }
    last_beacon = record.when;
    have_last = true;
  }
  (void)window_s;
  return analysis;
}

std::string MacAnalysis::render() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line,
                "MAC analysis over %s (beacon cadence %.3f ms mean, %.3f ms "
                "stddev, n=%llu)\n",
                window.to_string().c_str(), beacon_interval_ms.mean(),
                beacon_interval_ms.stddev(),
                static_cast<unsigned long long>(beacon_interval_ms.count()));
  out += line;
  std::snprintf(line, sizeof line,
                "%-8s %9s %8s %8s %9s %11s %10s %8s %7s %6s\n", "node",
                "radioduty", "rx", "tx", "mcu duty", "listens/s",
                "listen ms", "wake/s", "beacons", "miss");
  out += line;
  out += std::string(96, '-') + "\n";
  for (const NodeMacReport& r : nodes) {
    std::snprintf(line, sizeof line,
                  "%-8s %8.2f%% %7.2f%% %7.2f%% %8.2f%% %11.2f %10.3f %8.1f "
                  "%7llu %6llu\n",
                  r.node.c_str(), r.radio_duty * 100, r.radio_rx_duty * 100,
                  r.radio_tx_duty * 100, r.mcu_active_duty * 100,
                  r.listen_windows_per_s, r.avg_listen_window_ms,
                  r.mcu_wakeups_per_s,
                  static_cast<unsigned long long>(r.beacons_received),
                  static_cast<unsigned long long>(r.beacons_missed));
    out += line;
  }
  return out;
}

}  // namespace bansim::core
