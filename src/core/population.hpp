// Population-scale Monte Carlo campaigns: N distinct simulated patients.
//
// The paper validates one wearer; a ward deployment question ("what
// lifetime does the 5th-percentile patient see?") needs a population.
// PopulationGenerator turns one ward BanConfig into per-patient variants by
// sampling physiology and environment from named RNG streams keyed by the
// patient index — heart-rate distribution, ECG waveform morphology and
// noise, motion/posture shadowing episodes on the channel, and the spread
// of manufactured storage capacity.  Every variant is same-shape with the
// base config (node count, MAC/app kinds, activeness of the fault layer),
// which is exactly the contract BanNetwork::reset() enforces, so a
// campaign runs patient k+1 by resetting the warmed cell patient k used.
//
// run_population_campaign() is that loop: per-worker reused BanNetwork
// cells via sim::ScenarioRunner::run_with_context, per-run metrics
// appended straight into columnar accumulators (no per-run report
// objects), and a streaming lifetime CDF over the population.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/ban_network.hpp"
#include "energy/campaign_columns.hpp"
#include "sim/time.hpp"

namespace bansim::core {

/// Per-patient sampling distributions.  Defaults describe a resting adult
/// ward population; all draws are deterministic in (base seed, index).
struct PopulationConfig {
  /// Heart rate: normal(mean, sd) clamped into [lo, hi] bpm.
  double hr_mean_bpm{75.0};
  double hr_sd_bpm{12.0};
  double hr_lo_bpm{45.0};
  double hr_hi_bpm{150.0};

  /// Waveform morphology/noise: uniform spreads around the base config's
  /// front-end defaults.
  double rr_variability_lo{0.015};
  double rr_variability_hi{0.06};
  double r_amplitude_lo_volts{0.45};
  double r_amplitude_hi_volts{0.75};
  double noise_lo_volts{0.003};
  double noise_hi_volts{0.009};

  /// Motion/posture: per-patient timed shadowing episodes on the channel.
  /// When enabled, every patient draws AT LEAST one episode, so
  /// FaultPlan::any()/touches_channel() — the network's shape — is the
  /// same for the whole population and cells stay reset-compatible.
  bool motion{false};
  std::uint32_t motion_episodes_min{1};
  std::uint32_t motion_episodes_max{3};
  /// Episodes start uniformly inside [0, motion_window).
  sim::Duration motion_window{sim::Duration::seconds(30)};
  sim::Duration motion_duration_min{sim::Duration::milliseconds(200)};
  sim::Duration motion_duration_max{sim::Duration::seconds(2)};
  double motion_extra_loss_db_min{4.0};
  double motion_extra_loss_db_max{14.0};
  double motion_fer_min{0.05};
  double motion_fer_max{0.35};

  /// Storage capacity manufacturing spread: each patient's battery
  /// capacity / capacitor capacitance scales by uniform[min, max].
  /// Applied only where storage is enabled, so enabled-ness never changes.
  double capacity_scale_min{0.85};
  double capacity_scale_max{1.15};

  /// Empty when well-formed, else the first problem.
  [[nodiscard]] std::string validate() const;
};

/// Derives per-patient BanConfigs from a base ward config.  patient(i) is
/// pure: same (base seed, population, i) always yields the same config.
class PopulationGenerator {
 public:
  /// Throws std::invalid_argument when `population` fails validate().
  PopulationGenerator(BanConfig base, PopulationConfig population);

  /// The i-th patient's config: base with per-patient seed, physiology,
  /// motion episodes and storage capacity — same-shape with every other
  /// patient (and with patient(0), which campaigns build their cells from).
  [[nodiscard]] BanConfig patient(std::size_t index) const;

  [[nodiscard]] const BanConfig& base() const { return base_; }
  [[nodiscard]] const PopulationConfig& population() const {
    return population_;
  }

 private:
  BanConfig base_;
  PopulationConfig population_;
};

/// Measurement window of one patient run — the campaign unit's protocol,
/// shared by the in-process thread-pool campaign below and the
/// multi-process shard workers in src/campaign/.
struct PatientWindow {
  /// Per-patient measured window (after join + settle).
  sim::Duration measure{sim::Duration::seconds(30)};
  sim::Duration settle{sim::Duration::seconds(1)};
  sim::Duration join_deadline{sim::Duration::seconds(30)};
};

/// Warmed-cell per-patient executor: the first run() builds a BanNetwork
/// from that patient's config, every later run() resets it in place (the
/// schedule-reset-run seam).  One runner therefore serves exactly one
/// same-shape scenario family — reusing it across generators whose base
/// configs differ in shape (another MAC protocol, roster, storage
/// activeness) throws from BanNetwork::reset; keep one runner per family.
/// run(i) is a pure function of (generator, window, i): bit-identical
/// whichever runner executes it, which is what makes shard results
/// merge-order invariant.
class PatientRunner {
 public:
  PatientRunner() = default;

  /// Runs patient `index` and returns its scalar row (energies over the
  /// measured window, join latency, sent/delivered packets, projected
  /// ward lifetime).
  [[nodiscard]] energy::CampaignRunRow run(const PopulationGenerator& generator,
                                           const PatientWindow& window,
                                           std::size_t index);

  /// Runs executed on a reused (reset) cell rather than a fresh build.
  [[nodiscard]] std::size_t runs_reused() const { return runs_reused_; }

 private:
  std::unique_ptr<BanNetwork> net_;
  std::size_t runs_reused_{0};
};

struct PopulationCampaignOptions {
  std::size_t patients{100};
  /// Per-patient measured window (after join + settle).
  sim::Duration measure{sim::Duration::seconds(30)};
  sim::Duration settle{sim::Duration::seconds(1)};
  sim::Duration join_deadline{sim::Duration::seconds(30)};
  unsigned jobs{1};  ///< 0 = hardware concurrency
  std::size_t cdf_bins{64};
};

struct PopulationCampaignResult {
  energy::CampaignColumns columns;
  /// CDF over columns.lifetime_hours (never-depleting patients are the
  /// unbounded tail).
  energy::MetricCdf lifetime_cdf;
  std::size_t runs_reused{0};
  unsigned workers{1};
  double wall_seconds{0};
  std::size_t failed_joins{0};

  /// Human-readable campaign summary (percentiles of energy + lifetime).
  [[nodiscard]] std::string render() const;
};

/// Runs every patient of the population: per-worker warmed cells
/// (schedule-reset-run; the first run of each worker builds, the rest
/// reset), columnar metric collection, lifetime CDF reduction.  Results
/// are index-ordered and bit-identical for any worker count.
[[nodiscard]] PopulationCampaignResult run_population_campaign(
    const PopulationGenerator& generator,
    const PopulationCampaignOptions& options);

}  // namespace bansim::core
