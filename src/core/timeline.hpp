// ASCII rendering of TDMA timelines (Figures 2 and 3).
//
// Feeds on the MAC trace stream: beacon transmissions (B), slot requests
// (R), slot grants (G) and data transmissions (D) are laid out on a per-node
// character raster so the protocol's time structure — SB beacons, SSR/grant
// handshakes, the dynamic cycle growing as nodes join — is visible in a
// terminal, mirroring the figures in the paper.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace bansim::core {

struct TimelineOptions {
  sim::TimePoint start;                                ///< left edge
  sim::Duration window{sim::Duration::milliseconds(300)};
  sim::Duration bin{sim::Duration::milliseconds(1)};   ///< one character
};

/// Renders MAC trace records into a per-node timeline raster.
[[nodiscard]] std::string render_timeline(
    const std::vector<sim::TraceRecord>& records,
    const TimelineOptions& options);

}  // namespace bansim::core
