// Vertical slice of one device: hardware board, OS instance, MAC and the
// selected application, bundled with its energy breakdown.
//
// NodeStack is the unit every network assembly (BanNetwork, MultiBan,
// AlohaNetwork) is built from; NetworkBuilder turns a roster of NodeSpec
// into a vector of these.  The stack is MAC-polymorphic through the
// mac::NodeMacBase seam: TDMA, ALOHA and slotted CSMA/CA stacks differ
// only in which concrete MAC sits behind the one unique_ptr, behind the
// same board/OS wiring.  BaseStationStack is the sink-side counterpart.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "apps/base_station_app.hpp"
#include "apps/ecg_streaming_app.hpp"
#include "apps/ecg_synthesizer.hpp"
#include "apps/eeg_app.hpp"
#include "apps/eeg_synthesizer.hpp"
#include "apps/rpeak_app.hpp"
#include "core/node_spec.hpp"
#include "energy/energy_report.hpp"
#include "hw/board.hpp"
#include "hw/energy_store.hpp"
#include "mac/aloha_mac.hpp"
#include "mac/base_station_mac.hpp"
#include "mac/csma_mac.hpp"
#include "mac/mac_base.hpp"
#include "mac/node_mac.hpp"
#include "os/node_os.hpp"
#include "phy/channel.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"

namespace bansim::core {

/// Fully resolved parameters for one sensor node: NodeSpec overrides
/// already merged with the network defaults, fidelity already applied to
/// the board, RNG streams already derived.  Produced by NetworkBuilder.
struct NodeStackInit {
  std::string name;
  net::NodeId address{0};
  MacKind mac{MacKind::kTdma};
  AppKind app{AppKind::kNone};
  hw::BoardParams board{};  ///< fidelity-adjusted
  hw::StorageParams storage{};  ///< disabled = bench-supply powered
  double clock_skew{0.0};
  std::uint64_t eeg_seed{0};
  apps::StreamingConfig streaming{};
  apps::RpeakConfig rpeak{};
  apps::EcgConfig ecg{};
  apps::EegAppConfig eeg{};
  apps::EegConfig eeg_signal{};
  mac::TdmaConfig tdma{};
  mac::AlohaConfig aloha{};
  mac::CsmaConfig csma{};
  bool csma_gts{false};  ///< CSMA/CA cells: this node requests a GTS
};

class NodeStack {
 public:
  NodeStack(sim::SimContext& context, phy::Channel& channel,
            const NodeStackInit& init, sim::Rng mac_rng, sim::Rng signal_rng,
            os::ModelProbe& probe, const os::CycleCostModel* nominal_costs);

  /// Boots the MAC and the application.
  void start();

  /// Restores the whole slice to its freshly-built state in place, keeping
  /// every heap object (MAC, apps, board wiring, warmed buffers).  The
  /// init must be same-shape as construction: address, MAC/app kind, board
  /// params, MAC configs and storage enabled-ness unchanged — only seeds,
  /// physiology (ecg), clock skew and storage *values* may differ (see
  /// NetworkBuilder::reset_cell).  Caller must have reset the SimContext
  /// (event queue cleared) first; start() boots the stack again.
  void reset(const NodeStackInit& init, sim::Rng mac_rng, sim::Rng signal_rng);

  [[nodiscard]] const std::string& name() const { return board_.name(); }
  [[nodiscard]] net::NodeId address() const { return address_; }
  [[nodiscard]] AppKind app_kind() const { return app_kind_; }
  [[nodiscard]] MacKind mac_kind() const { return mac_kind_; }
  [[nodiscard]] hw::Board& board() { return board_; }
  [[nodiscard]] const hw::Board& board() const { return board_; }
  [[nodiscard]] os::NodeOs& node_os() { return os_; }

  /// Protocol-agnostic MAC seam: everything a campaign, fault driver or
  /// application needs without knowing the concrete protocol.
  [[nodiscard]] mac::NodeMacBase& mac_base() { return *mac_; }
  [[nodiscard]] const mac::NodeMacBase& mac_base() const { return *mac_; }

  /// TDMA MAC (asserts when the stack runs another protocol).
  [[nodiscard]] mac::NodeMac& mac();
  [[nodiscard]] const mac::NodeMac& mac() const;
  /// ALOHA MAC (asserts when the stack runs another protocol).
  [[nodiscard]] mac::AlohaNodeMac& aloha_mac();
  /// Slotted CSMA/CA MAC (asserts when the stack runs another protocol).
  [[nodiscard]] mac::CsmaNodeMac& csma_mac();
  /// True when the node is associated (beacon MACs) or booted (ALOHA).
  [[nodiscard]] bool joined() const { return mac_->joined(); }

  [[nodiscard]] apps::EcgSynthesizer& ecg() { return ecg_; }
  [[nodiscard]] apps::EegSynthesizer& eeg() { return eeg_; }
  [[nodiscard]] apps::EcgStreamingApp* streaming_app() { return streaming_.get(); }
  [[nodiscard]] apps::RpeakApp* rpeak_app() { return rpeak_.get(); }
  [[nodiscard]] apps::EegApp* eeg_app() { return eeg_app_.get(); }

  /// Component energy breakdown at `now`.
  [[nodiscard]] energy::NodeEnergy energy(sim::TimePoint now) const;

  /// The node's live energy store; null when the node runs off the bench
  /// supply (storage disabled, the default).
  [[nodiscard]] hw::EnergyStore* energy_store() {
    return store_ ? &*store_ : nullptr;
  }
  [[nodiscard]] const hw::EnergyStore* energy_store() const {
    return store_ ? &*store_ : nullptr;
  }

 private:
  net::NodeId address_;
  AppKind app_kind_;
  MacKind mac_kind_;
  apps::EcgSynthesizer ecg_;
  apps::EegSynthesizer eeg_;
  hw::Board board_;
  os::NodeOs os_;
  std::unique_ptr<mac::NodeMacBase> mac_;
  std::unique_ptr<apps::EcgStreamingApp> streaming_;
  std::unique_ptr<apps::RpeakApp> rpeak_;
  std::unique_ptr<apps::EegApp> eeg_app_;
  std::optional<hw::EnergyStore> store_;
};

/// Base-station slice: board, OS, sink MAC (TDMA / CSMA beaconing base
/// station or always-listening ALOHA sink) and the traffic-accounting
/// application.
class BaseStationStack {
 public:
  BaseStationStack(sim::SimContext& context, phy::Channel& channel,
                   const std::string& name, const hw::BoardParams& board,
                   double clock_skew, MacKind mac, const mac::TdmaConfig& tdma,
                   const mac::AlohaConfig& aloha, const mac::CsmaConfig& csma,
                   os::ModelProbe& probe,
                   const os::CycleCostModel* nominal_costs);

  void start();

  /// Same-shape in-place reset (see NodeStack::reset).
  void reset(double clock_skew);

  [[nodiscard]] const std::string& name() const { return board_.name(); }
  [[nodiscard]] MacKind mac_kind() const { return mac_kind_; }
  [[nodiscard]] hw::Board& board() { return board_; }
  [[nodiscard]] os::NodeOs& node_os() { return os_; }
  [[nodiscard]] mac::BaseStationMacBase& mac_base() { return *mac_; }
  [[nodiscard]] mac::BaseStationMac& tdma_mac();
  [[nodiscard]] mac::AlohaBaseStation& aloha_mac();
  [[nodiscard]] mac::CsmaBaseStationMac& csma_mac();
  [[nodiscard]] apps::BaseStationApp& app() { return app_; }

  /// Routes incoming data frames (whichever MAC runs) to `handler`.
  void set_data_handler(mac::BaseStationMacBase::DataHandler handler) {
    mac_->set_data_handler(std::move(handler));
  }

  [[nodiscard]] energy::NodeEnergy energy(sim::TimePoint now) const;

 private:
  MacKind mac_kind_;
  hw::Board board_;
  os::NodeOs os_;
  std::unique_ptr<mac::BaseStationMacBase> mac_;
  apps::BaseStationApp app_;
};

}  // namespace bansim::core
