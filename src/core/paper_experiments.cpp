#include "core/paper_experiments.hpp"

#include <cmath>
#include <cstdio>

namespace bansim::core {

namespace {

using sim::Duration;

/// The paper couples sampling rate and cycle: a 18-byte payload holds 12
/// twelve-bit codes = 6 per channel, so fs = 6 / cycle.
double coupled_sample_rate(Duration cycle) {
  return 6.0 / cycle.to_seconds();
}

MeasurementProtocol protocol_for(const PaperSetup& setup) {
  MeasurementProtocol p;
  p.measure = setup.measure;
  return p;
}

}  // namespace

BanConfig streaming_static_config(const PaperSetup& setup, Duration cycle) {
  BanConfig cfg;
  cfg.seed = setup.seed;
  cfg.num_nodes = setup.static_nodes;
  cfg.tdma = mac::TdmaConfig::static_plan(
      cycle, static_cast<std::uint8_t>(setup.static_nodes));
  cfg.app = AppKind::kEcgStreaming;
  cfg.streaming.sample_rate_hz = coupled_sample_rate(cycle);
  return cfg;
}

BanConfig streaming_dynamic_config(const PaperSetup& setup, std::size_t nodes) {
  BanConfig cfg;
  cfg.seed = setup.seed;
  cfg.num_nodes = nodes;
  cfg.tdma = mac::TdmaConfig::dynamic_plan();
  cfg.app = AppKind::kEcgStreaming;
  const Duration cycle =
      cfg.tdma.slot * (1 + static_cast<std::int64_t>(nodes));
  cfg.streaming.sample_rate_hz = coupled_sample_rate(cycle);
  return cfg;
}

BanConfig rpeak_static_config(const PaperSetup& setup, Duration cycle) {
  BanConfig cfg;
  cfg.seed = setup.seed;
  cfg.num_nodes = setup.static_nodes;
  cfg.tdma = mac::TdmaConfig::static_plan(
      cycle, static_cast<std::uint8_t>(setup.static_nodes));
  cfg.app = AppKind::kRpeak;
  return cfg;
}

BanConfig rpeak_dynamic_config(const PaperSetup& setup, std::size_t nodes) {
  BanConfig cfg;
  cfg.seed = setup.seed;
  cfg.num_nodes = nodes;
  cfg.tdma = mac::TdmaConfig::dynamic_plan();
  cfg.app = AppKind::kRpeak;
  return cfg;
}

energy::ValidationTable table1(const PaperSetup& setup) {
  energy::ValidationTable table;
  table.title =
      "Table 1: Simulator estimations for ECG streaming application and "
      "static TDMA (node energy over 60 s)";
  table.parameter_name = "F (Hz)";
  const struct {
    int fs;
    int cycle_ms;
  } rows[] = {{205, 30}, {105, 60}, {70, 90}, {55, 120}};
  for (const auto& r : rows) {
    BanConfig cfg =
        streaming_static_config(setup, Duration::milliseconds(r.cycle_ms));
    cfg.streaming.sample_rate_hz = r.fs;  // the paper's stated frequencies
    table.rows.push_back(validation_row(cfg, protocol_for(setup),
                                        std::to_string(r.fs),
                                        static_cast<double>(r.cycle_ms)));
  }
  return table;
}

energy::ValidationTable table2(const PaperSetup& setup) {
  energy::ValidationTable table;
  table.title =
      "Table 2: Simulator estimations for ECG streaming application and "
      "dynamic TDMA (node energy over 60 s)";
  table.parameter_name = "# nodes";
  for (std::size_t n = 1; n <= 5; ++n) {
    BanConfig cfg = streaming_dynamic_config(setup, n);
    const double cycle_ms =
        cfg.tdma.slot.to_milliseconds() * (1.0 + static_cast<double>(n));
    table.rows.push_back(validation_row(cfg, protocol_for(setup),
                                        std::to_string(n), cycle_ms));
  }
  return table;
}

energy::ValidationTable table3(const PaperSetup& setup) {
  energy::ValidationTable table;
  table.title =
      "Table 3: Simulator estimations for Rpeak application and static TDMA "
      "(node energy over 60 s)";
  table.parameter_name = "Cycle";
  for (int cycle_ms : {30, 60, 90, 120}) {
    BanConfig cfg =
        rpeak_static_config(setup, Duration::milliseconds(cycle_ms));
    table.rows.push_back(validation_row(cfg, protocol_for(setup),
                                        std::to_string(cycle_ms),
                                        static_cast<double>(cycle_ms)));
  }
  return table;
}

energy::ValidationTable table4(const PaperSetup& setup) {
  energy::ValidationTable table;
  table.title =
      "Table 4: Simulator estimations for Rpeak application and dynamic TDMA "
      "(node energy over 60 s)";
  table.parameter_name = "# nodes";
  for (std::size_t n = 1; n <= 5; ++n) {
    BanConfig cfg = rpeak_dynamic_config(setup, n);
    const double cycle_ms =
        cfg.tdma.slot.to_milliseconds() * (1.0 + static_cast<double>(n));
    table.rows.push_back(validation_row(cfg, protocol_for(setup),
                                        std::to_string(n), cycle_ms));
  }
  return table;
}

Figure4Result figure4(const PaperSetup& setup) {
  Figure4Result fig;
  const MeasurementProtocol protocol = protocol_for(setup);

  BanConfig streaming =
      streaming_static_config(setup, Duration::milliseconds(30));
  streaming.streaming.sample_rate_hz = 205;
  BanConfig rpeak = rpeak_static_config(setup, Duration::milliseconds(120));

  auto run_both = [&](BanConfig cfg, double& real_radio, double& real_mcu,
                      double& sim_radio, double& sim_mcu) {
    cfg.fidelity = Fidelity::kReference;
    const ScenarioResult real = run_scenario(cfg, protocol);
    cfg.fidelity = Fidelity::kModel;
    const ScenarioResult sim = run_scenario(cfg, protocol);
    real_radio = real.radio_mj;
    real_mcu = real.mcu_mj;
    sim_radio = sim.radio_mj;
    sim_mcu = sim.mcu_mj;
  };

  run_both(streaming, fig.streaming_real_radio_mj, fig.streaming_real_mcu_mj,
           fig.streaming_sim_radio_mj, fig.streaming_sim_mcu_mj);
  run_both(rpeak, fig.rpeak_real_radio_mj, fig.rpeak_real_mcu_mj,
           fig.rpeak_sim_radio_mj, fig.rpeak_sim_mcu_mj);
  return fig;
}

std::string Figure4Result::render() const {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "Figure 4: ECG streaming (30 ms cycle) vs Rpeak (120 ms cycle), node "
      "energy over 60 s\n"
      "                      %12s %12s\n"
      "  ECG streaming Real: %9.1f mJ radio, %7.1f mJ uC  (total %7.1f mJ)\n"
      "  ECG streaming Sim : %9.1f mJ radio, %7.1f mJ uC  (total %7.1f mJ)\n"
      "  Rpeak         Real: %9.1f mJ radio, %7.1f mJ uC  (total %7.1f mJ)\n"
      "  Rpeak         Sim : %9.1f mJ radio, %7.1f mJ uC  (total %7.1f mJ)\n"
      "  On-node preprocessing saves %.0f%% (paper: 65%%)\n",
      "radio", "uC", streaming_real_radio_mj, streaming_real_mcu_mj,
      streaming_real_total(), streaming_sim_radio_mj, streaming_sim_mcu_mj,
      streaming_sim_radio_mj + streaming_sim_mcu_mj, rpeak_real_radio_mj,
      rpeak_real_mcu_mj, rpeak_real_total(), rpeak_sim_radio_mj,
      rpeak_sim_mcu_mj, rpeak_sim_radio_mj + rpeak_sim_mcu_mj,
      saving_fraction() * 100.0);
  return buf;
}

const energy::ValidationTable& paper_table(int which) {
  static const energy::ValidationTable t1 = [] {
    energy::ValidationTable t;
    t.title = "Paper Table 1";
    t.parameter_name = "F (Hz)";
    t.rows = {
        {"205", 30, 540.6, 502.9, 170.2, 161.2},
        {"105", 60, 267.7, 252.9, 131.6, 135.9},
        {"70", 90, 177.2, 167.9, 119.4, 127.6},
        {"55", 120, 132.2, 126.2, 113.7, 123.5},
    };
    return t;
  }();
  static const energy::ValidationTable t2 = [] {
    energy::ValidationTable t;
    t.title = "Paper Table 2";
    t.parameter_name = "# nodes";
    t.rows = {
        {"1", 20, 628.5, 665.6, 165.9, 178.1},
        {"2", 30, 451.4, 496.5, 140.2, 147.6},
        {"3", 40, 356.9, 354.8, 137.4, 142.6},
        {"4", 50, 298.4, 281.8, 130.4, 132.3},
        {"5", 60, 263.9, 249.5, 122.9, 129.9},
    };
    return t;
  }();
  static const energy::ValidationTable t3 = [] {
    energy::ValidationTable t;
    t.title = "Paper Table 3";
    t.parameter_name = "Cycle";
    t.rows = {
        {"30", 30, 446.3, 455.4, 153.3, 145.41},
        {"60", 60, 228.5, 229.6, 139.8, 137.0},
        {"90", 90, 159.0, 154.4, 135.5, 134.3},
        {"120", 120, 113.1, 116.7, 133.1, 132.8},
    };
    return t;
  }();
  static const energy::ValidationTable t4 = [] {
    energy::ValidationTable t;
    t.title = "Paper Table 4";
    t.parameter_name = "# nodes";
    t.rows = {
        {"1", 20, 507.1, 494.9, 150.7, 153.0},
        {"2", 30, 405.6, 373.1, 144.3, 141.3},
        {"3", 40, 305.5, 299.9, 141.0, 137.2},
        {"4", 50, 255.7, 246.0, 138.6, 135.9},
        {"5", 60, 222.1, 210.5, 136.3, 134.5},
    };
    return t;
  }();
  switch (which) {
    case 1: return t1;
    case 2: return t2;
    case 3: return t3;
    default: return t4;
  }
}

}  // namespace bansim::core
