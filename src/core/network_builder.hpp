// Shared assembly logic for every network topology in the repo.
//
// All three public assemblies — BanNetwork (one TDMA cell), MultiBan
// (co-located TDMA cells), AlohaNetwork (random-access baseline) — used to
// triplicate the same wiring: derive the per-node RNG streams, build a
// base station, build N sensor stacks in address order, boot everything
// staggered.  NetworkBuilder owns that wiring once; the assemblies shrink
// to a CellPlan (defaults + NodeSpec roster + stream naming) and their
// topology-specific glue (data handlers, link model, traffic generators).
//
// Determinism contract: for a given CellPlan the builder
//  * attaches devices to the channel in base-station-first, then node
//    index order (channel ids: bs = 0, node i = i + 1);
//  * draws one clock-skew value per device from the `streams.skew` stream
//    (base station first) and one boot offset per node from the
//    `streams.stagger` stream, in index order, REGARDLESS of per-spec
//    overrides — pinning node k's skew never shifts node k+1's draw;
//  * derives the MAC and signal streams from per-node names, so they are
//    independent of node count and position.
// A homogeneous roster therefore reproduces the pre-builder networks
// bit-for-bit (locked by test_golden_energy).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/node_spec.hpp"
#include "core/node_stack.hpp"
#include "os/cycle_cost_model.hpp"
#include "phy/channel.hpp"
#include "sim/context.hpp"

namespace bansim::core {

/// RNG-stream naming scheme for one cell.  Single-cell networks use the
/// defaults; MultiBan suffixes the cell index so co-located cells draw
/// from independent streams even when they share a seed.
struct StreamNames {
  std::string skew{"skew"};
  std::string stagger{"stagger"};
  std::string mac_prefix{"mac/"};
  std::string signal_prefix{"ecg/"};
  /// Key the mac/signal streams by node name ("node7") or by bare
  /// address ("7").  Historical: BanNetwork keys by name, MultiBan and
  /// AlohaNetwork by address.
  bool key_streams_by_name{true};
};

/// Everything needed to assemble one cell: network-wide defaults plus the
/// per-node roster.  NodeSpec fields left unset inherit the defaults here.
struct CellPlan {
  std::uint64_t seed{1};
  std::string bs_name{"bs"};
  StreamNames streams{};
  MacKind mac{MacKind::kTdma};
  mac::TdmaConfig tdma{};
  mac::AlohaConfig aloha{};
  mac::CsmaConfig csma{};
  net::NodeId address_offset{0};
  /// Nodes boot inside [0, stagger) unless their spec pins boot_offset.
  sim::Duration stagger{sim::Duration::milliseconds(40)};

  // Defaults a NodeSpec may override per node.
  AppKind app{AppKind::kEcgStreaming};
  hw::BoardParams board{};
  Fidelity fidelity{Fidelity::kReference};
  hw::StorageParams storage{};
  apps::StreamingConfig streaming{};
  apps::RpeakConfig rpeak{};
  apps::EcgConfig ecg{};
  apps::EegAppConfig eeg{};
  apps::EegConfig eeg_signal{};

  /// One entry per node; an empty roster is invalid (resize it to the
  /// desired node count with default specs for a homogeneous cell) unless
  /// a base-station-only cell is explicitly requested below.
  std::vector<NodeSpec> roster{};
  /// Opts in to an empty roster: a beacon-only cell with no sensor nodes.
  /// Kept separate so a roster someone forgot to resize still hard-errors.
  bool allow_empty_roster{false};
};

/// One assembled cell plus the bookkeeping start_cell() needs.
struct BuiltCell {
  std::unique_ptr<BaseStationStack> bs;
  std::vector<std::unique_ptr<NodeStack>> nodes;

  std::uint64_t seed{1};
  std::string stagger_stream{"stagger"};
  sim::Duration stagger_window{sim::Duration::zero()};
  std::vector<std::optional<sim::Duration>> boot_offsets;

  [[nodiscard]] bool all_joined() const;
  /// Per-node component energy snapshot (nodes in order, then the bs).
  [[nodiscard]] std::vector<energy::NodeEnergy> energy_snapshot(
      sim::TimePoint now) const;
};

class NetworkBuilder {
 public:
  /// Builds the base station and every node of `plan`, attaching them to
  /// `channel` in the canonical order.  `nominal_costs` is handed to each
  /// stack whose resolved fidelity is kModel.
  [[nodiscard]] static BuiltCell build_cell(
      sim::SimContext& context, phy::Channel& channel, const CellPlan& plan,
      os::ModelProbe& probe, const os::CycleCostModel& nominal_costs);

  /// Called at each node's staggered boot instant; default starts the
  /// stack.  AlohaNetwork uses it to add its traffic generator.
  using NodeStarter = std::function<void(std::size_t, NodeStack&)>;

  /// Starts the base station now and every node at its boot offset,
  /// drawing the stagger stream in node order.
  static void start_cell(sim::SimContext& context, BuiltCell& cell,
                         NodeStarter starter = {});

  /// Re-arms an already-built cell for another run without rebuilding it:
  /// every stack is restored to its freshly-built state in place and the
  /// per-device RNG draws are re-derived from the new plan in the exact
  /// build order (skew: base station first, then nodes; mac/signal streams
  /// by node key) so a reset cell is bit-identical to a rebuilt one.
  ///
  /// The plan must be same-shape as the one the cell was built from:
  /// roster size, MAC kind, app kinds, addresses, board params, MAC
  /// configs and storage enabled-ness unchanged.  Seeds, physiology,
  /// storage values, boot offsets and fault-plan values may differ — this
  /// is the population-sweep seam.  Caller resets the SimContext (clearing
  /// the event queue) before calling, then start_cell() boots the cell.
  static void reset_cell(BuiltCell& cell, const CellPlan& plan);
};

}  // namespace bansim::core
