#include "core/node_stack.hpp"

#include <cassert>
#include <utility>

namespace bansim::core {

NodeStack::NodeStack(sim::SimContext& context, phy::Channel& channel,
                     const NodeStackInit& init, sim::Rng mac_rng,
                     sim::Rng signal_rng, os::ModelProbe& probe,
                     const os::CycleCostModel* nominal_costs)
    : address_{init.address},
      app_kind_{init.app},
      mac_kind_{init.mac},
      ecg_{init.ecg, signal_rng},
      eeg_{init.eeg_signal, init.eeg_seed},
      board_{context, channel, init.name, init.board, init.clock_skew},
      os_{context, board_, probe, nominal_costs} {
  if (init.storage.enabled) store_.emplace(init.storage);
  switch (mac_kind_) {
    case MacKind::kTdma:
      mac_ = std::make_unique<mac::NodeMac>(context, os_, init.tdma, address_,
                                            mac_rng);
      break;
    case MacKind::kAloha:
      mac_ = std::make_unique<mac::AlohaNodeMac>(context, os_, init.aloha,
                                                 address_, mac_rng);
      break;
    case MacKind::kCsmaCa:
      mac_ = std::make_unique<mac::CsmaNodeMac>(context, os_, init.csma,
                                                address_, mac_rng,
                                                init.csma_gts);
      break;
  }

  // The biopotential front-end feeds the ECG waveform into channels 0 and 1
  // (the "2-channel ECG" of Section 5.1); channel 1 sees the same cardiac
  // source through a second electrode pair, at reduced amplitude.
  board_.asic().set_channel_signal(
      0, [this](sim::TimePoint t) { return ecg_.sample(t); });
  board_.asic().set_channel_signal(1, [this](sim::TimePoint t) {
    const double baseline = ecg_.config().baseline_volts;
    return baseline + 0.8 * (ecg_.sample(t) - baseline);
  });

  // Applications run against the protocol-agnostic seam; any MAC that can
  // queue a payload can carry them (the historical ALOHA benches simply
  // pass AppKind::kNone).
  {
    switch (app_kind_) {
      case AppKind::kEcgStreaming:
        streaming_ = std::make_unique<apps::EcgStreamingApp>(
            context.simulator, os_, *mac_, init.streaming);
        break;
      case AppKind::kRpeak:
        rpeak_ = std::make_unique<apps::RpeakApp>(context.simulator, os_,
                                                  *mac_, init.rpeak);
        break;
      case AppKind::kEegMonitoring:
        eeg_app_ = std::make_unique<apps::EegApp>(context.simulator, os_,
                                                  *mac_, init.eeg, eeg_);
        break;
      case AppKind::kNone:
        break;
    }
  }
}

void NodeStack::start() {
  mac_->start();
  if (streaming_) streaming_->start();
  if (rpeak_) rpeak_->start();
  if (eeg_app_) eeg_app_->start();
}

void NodeStack::reset(const NodeStackInit& init, sim::Rng mac_rng,
                      sim::Rng signal_rng) {
  assert(init.address == address_ && "reset must keep the node's address");
  assert(init.mac == mac_kind_ && init.app == app_kind_ &&
         "reset must keep MAC and app kinds (same-shape contract)");
  assert(init.storage.enabled == store_.has_value() &&
         "reset must keep storage enabled-ness (same-shape contract)");
  ecg_.reset(init.ecg, signal_rng);
  // The EEG synthesizer re-derives one stream and eight spectral components
  // per channel; only nodes that actually run the EEG app ever sample it,
  // so skipping the rebuild elsewhere keeps reset ≡ rebuild on every
  // observable while shaving the dominant per-node reset cost.
  if (eeg_app_) eeg_.reset(init.eeg_signal, init.eeg_seed);
  board_.reset(init.clock_skew);
  os_.reset();
  mac_->reset_for_reuse(mac_rng);
  if (streaming_) streaming_->reset(init.streaming);
  if (rpeak_) rpeak_->reset(init.rpeak);
  if (eeg_app_) eeg_app_->reset(init.eeg);
  // optional::emplace destroys and reconstructs in place — no allocation,
  // and storage *values* (capacity spread) may change per patient.
  if (store_) store_.emplace(init.storage);
}

mac::NodeMac& NodeStack::mac() {
  assert(mac_kind_ == MacKind::kTdma && "stack does not run the TDMA MAC");
  return static_cast<mac::NodeMac&>(*mac_);
}

const mac::NodeMac& NodeStack::mac() const {
  assert(mac_kind_ == MacKind::kTdma && "stack does not run the TDMA MAC");
  return static_cast<const mac::NodeMac&>(*mac_);
}

mac::AlohaNodeMac& NodeStack::aloha_mac() {
  assert(mac_kind_ == MacKind::kAloha && "stack does not run the ALOHA MAC");
  return static_cast<mac::AlohaNodeMac&>(*mac_);
}

mac::CsmaNodeMac& NodeStack::csma_mac() {
  assert(mac_kind_ == MacKind::kCsmaCa &&
         "stack does not run the CSMA/CA MAC");
  return static_cast<mac::CsmaNodeMac&>(*mac_);
}

energy::NodeEnergy NodeStack::energy(sim::TimePoint now) const {
  energy::NodeEnergy out;
  out.node = board_.name();
  out.components = board_.breakdown(now);
  return out;
}

BaseStationStack::BaseStationStack(sim::SimContext& context,
                                   phy::Channel& channel,
                                   const std::string& name,
                                   const hw::BoardParams& board,
                                   double clock_skew, MacKind mac,
                                   const mac::TdmaConfig& tdma,
                                   const mac::AlohaConfig& aloha,
                                   const mac::CsmaConfig& csma,
                                   os::ModelProbe& probe,
                                   const os::CycleCostModel* nominal_costs)
    : mac_kind_{mac},
      board_{context, channel, name, board, clock_skew},
      os_{context, board_, probe, nominal_costs} {
  switch (mac_kind_) {
    case MacKind::kTdma:
      mac_ = std::make_unique<mac::BaseStationMac>(context, os_, tdma);
      break;
    case MacKind::kAloha:
      mac_ = std::make_unique<mac::AlohaBaseStation>(context, os_, aloha);
      break;
    case MacKind::kCsmaCa:
      mac_ = std::make_unique<mac::CsmaBaseStationMac>(context, os_, csma);
      break;
  }
}

void BaseStationStack::start() { mac_->start(); }

void BaseStationStack::reset(double clock_skew) {
  board_.reset(clock_skew);
  os_.reset();
  mac_->reset_for_reuse();
  app_.reset();
}

mac::BaseStationMac& BaseStationStack::tdma_mac() {
  assert(mac_kind_ == MacKind::kTdma &&
         "base station does not run the TDMA MAC");
  return static_cast<mac::BaseStationMac&>(*mac_);
}

mac::AlohaBaseStation& BaseStationStack::aloha_mac() {
  assert(mac_kind_ == MacKind::kAloha &&
         "base station does not run the ALOHA MAC");
  return static_cast<mac::AlohaBaseStation&>(*mac_);
}

mac::CsmaBaseStationMac& BaseStationStack::csma_mac() {
  assert(mac_kind_ == MacKind::kCsmaCa &&
         "base station does not run the CSMA/CA MAC");
  return static_cast<mac::CsmaBaseStationMac&>(*mac_);
}

energy::NodeEnergy BaseStationStack::energy(sim::TimePoint now) const {
  energy::NodeEnergy out;
  out.node = board_.name();
  out.components = board_.breakdown(now);
  return out;
}

}  // namespace bansim::core
