#include "core/node_stack.hpp"

#include <cassert>
#include <utility>

namespace bansim::core {

NodeStack::NodeStack(sim::SimContext& context, phy::Channel& channel,
                     const NodeStackInit& init, sim::Rng mac_rng,
                     sim::Rng signal_rng, os::ModelProbe& probe,
                     const os::CycleCostModel* nominal_costs)
    : address_{init.address},
      app_kind_{init.app},
      mac_kind_{init.mac},
      ecg_{init.ecg, signal_rng},
      eeg_{init.eeg_signal, init.eeg_seed},
      board_{context, channel, init.name, init.board, init.clock_skew},
      os_{context, board_, probe, nominal_costs} {
  if (init.storage.enabled) store_.emplace(init.storage);
  if (mac_kind_ == MacKind::kTdma) {
    tdma_mac_ = std::make_unique<mac::NodeMac>(context, os_, init.tdma,
                                               address_, mac_rng);
  } else {
    aloha_mac_ = std::make_unique<mac::AlohaNodeMac>(context, os_, init.aloha,
                                                     address_, mac_rng);
  }

  // The biopotential front-end feeds the ECG waveform into channels 0 and 1
  // (the "2-channel ECG" of Section 5.1); channel 1 sees the same cardiac
  // source through a second electrode pair, at reduced amplitude.
  board_.asic().set_channel_signal(
      0, [this](sim::TimePoint t) { return ecg_.sample(t); });
  board_.asic().set_channel_signal(1, [this](sim::TimePoint t) {
    const double baseline = ecg_.config().baseline_volts;
    return baseline + 0.8 * (ecg_.sample(t) - baseline);
  });

  if (tdma_mac_) {
    switch (app_kind_) {
      case AppKind::kEcgStreaming:
        streaming_ = std::make_unique<apps::EcgStreamingApp>(
            context.simulator, os_, *tdma_mac_, init.streaming);
        break;
      case AppKind::kRpeak:
        rpeak_ = std::make_unique<apps::RpeakApp>(context.simulator, os_,
                                                  *tdma_mac_, init.rpeak);
        break;
      case AppKind::kEegMonitoring:
        eeg_app_ = std::make_unique<apps::EegApp>(context.simulator, os_,
                                                  *tdma_mac_, init.eeg, eeg_);
        break;
      case AppKind::kNone:
        break;
    }
  }
}

void NodeStack::start() {
  if (tdma_mac_) tdma_mac_->start();
  if (aloha_mac_) aloha_mac_->start();
  if (streaming_) streaming_->start();
  if (rpeak_) rpeak_->start();
  if (eeg_app_) eeg_app_->start();
}

mac::NodeMac& NodeStack::mac() {
  assert(tdma_mac_ && "stack runs the ALOHA MAC");
  return *tdma_mac_;
}

mac::AlohaNodeMac& NodeStack::aloha_mac() {
  assert(aloha_mac_ && "stack runs the TDMA MAC");
  return *aloha_mac_;
}

bool NodeStack::joined() const {
  return tdma_mac_ ? tdma_mac_->joined() : true;
}

energy::NodeEnergy NodeStack::energy(sim::TimePoint now) const {
  energy::NodeEnergy out;
  out.node = board_.name();
  out.components = board_.breakdown(now);
  return out;
}

BaseStationStack::BaseStationStack(sim::SimContext& context,
                                   phy::Channel& channel,
                                   const std::string& name,
                                   const hw::BoardParams& board,
                                   double clock_skew, MacKind mac,
                                   const mac::TdmaConfig& tdma,
                                   const mac::AlohaConfig& aloha,
                                   os::ModelProbe& probe,
                                   const os::CycleCostModel* nominal_costs)
    : mac_kind_{mac},
      board_{context, channel, name, board, clock_skew},
      os_{context, board_, probe, nominal_costs} {
  if (mac_kind_ == MacKind::kTdma) {
    tdma_mac_ = std::make_unique<mac::BaseStationMac>(context, os_, tdma);
  } else {
    aloha_mac_ = std::make_unique<mac::AlohaBaseStation>(context, os_, aloha);
  }
}

void BaseStationStack::start() {
  if (tdma_mac_) tdma_mac_->start();
  if (aloha_mac_) aloha_mac_->start();
}

mac::BaseStationMac& BaseStationStack::tdma_mac() {
  assert(tdma_mac_ && "base station runs the ALOHA MAC");
  return *tdma_mac_;
}

mac::AlohaBaseStation& BaseStationStack::aloha_mac() {
  assert(aloha_mac_ && "base station runs the TDMA MAC");
  return *aloha_mac_;
}

void BaseStationStack::set_data_handler(
    mac::BaseStationMac::DataHandler handler) {
  if (tdma_mac_) {
    tdma_mac_->set_data_handler(std::move(handler));
  } else {
    aloha_mac_->set_data_handler(std::move(handler));
  }
}

energy::NodeEnergy BaseStationStack::energy(sim::TimePoint now) const {
  energy::NodeEnergy out;
  out.node = board_.name();
  out.components = board_.breakdown(now);
  return out;
}

}  // namespace bansim::core
