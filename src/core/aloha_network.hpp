// Assembly of a random-access (ALOHA) BAN for the MAC-comparison baseline:
// the same boards, OS and channel as the TDMA network, with AlohaNodeMac /
// AlohaBaseStation on top and a fixed-rate payload generator per node.
//
// The node stacks come from core::NetworkBuilder (MacKind::kAloha); the
// only ALOHA-specific wiring left here is the periodic traffic generator
// each node starts at its staggered boot instant.
#pragma once

#include <memory>
#include <vector>

#include "core/network_builder.hpp"
#include "core/node_stack.hpp"
#include "mac/aloha_mac.hpp"
#include "phy/channel.hpp"
#include "sim/context.hpp"

namespace bansim::core {

struct AlohaNetworkConfig {
  std::size_t num_nodes{5};
  mac::AlohaConfig aloha{};
  /// Each node queues one payload of `payload_bytes` every `interval`.
  sim::Duration payload_interval{sim::Duration::milliseconds(30)};
  std::size_t payload_bytes{18};
  hw::BoardParams board{};
  std::uint64_t seed{1};
};

class AlohaNetwork {
 public:
  explicit AlohaNetwork(const AlohaNetworkConfig& config);

  void start();
  void run_until(sim::TimePoint until);

  [[nodiscard]] sim::SimContext& context() { return context_; }
  [[nodiscard]] sim::Simulator& simulator() { return context_.simulator; }
  [[nodiscard]] phy::Channel& channel() { return channel_; }
  [[nodiscard]] std::size_t num_nodes() const { return cell_.nodes.size(); }
  [[nodiscard]] hw::Board& node_board(std::size_t i) {
    return cell_.nodes[i]->board();
  }
  [[nodiscard]] mac::AlohaNodeMac& node_mac(std::size_t i) {
    return cell_.nodes[i]->aloha_mac();
  }
  [[nodiscard]] mac::AlohaBaseStation& base_station() {
    return cell_.bs->aloha_mac();
  }

  /// Payloads generated per node so far.
  [[nodiscard]] std::uint64_t payloads_generated(std::size_t i) const {
    return generators_[i].generated;
  }

 private:
  struct Generator {
    std::uint64_t generated{0};
    os::TimerService::TimerId timer{os::TimerService::kInvalidTimer};
  };

  AlohaNetworkConfig config_;
  sim::SimContext context_;
  phy::Channel channel_;
  os::NullProbe probe_;
  os::CycleCostModel nominal_costs_;
  BuiltCell cell_;
  std::vector<Generator> generators_;
};

}  // namespace bansim::core
