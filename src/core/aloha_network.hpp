// Assembly of a random-access (ALOHA) BAN for the MAC-comparison baseline:
// the same boards, OS and channel as the TDMA network, with AlohaNodeMac /
// AlohaBaseStation on top and a fixed-rate payload generator per node.
#pragma once

#include <memory>
#include <vector>

#include "core/fidelity.hpp"
#include "hw/board.hpp"
#include "mac/aloha_mac.hpp"
#include "os/node_os.hpp"
#include "phy/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::core {

struct AlohaNetworkConfig {
  std::size_t num_nodes{5};
  mac::AlohaConfig aloha{};
  /// Each node queues one payload of `payload_bytes` every `interval`.
  sim::Duration payload_interval{sim::Duration::milliseconds(30)};
  std::size_t payload_bytes{18};
  hw::BoardParams board{};
  std::uint64_t seed{1};
};

class AlohaNetwork {
 public:
  explicit AlohaNetwork(const AlohaNetworkConfig& config);

  void start();
  void run_until(sim::TimePoint until);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] phy::Channel& channel() { return channel_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] hw::Board& node_board(std::size_t i) { return *nodes_[i]->board; }
  [[nodiscard]] mac::AlohaNodeMac& node_mac(std::size_t i) {
    return *nodes_[i]->mac;
  }
  [[nodiscard]] mac::AlohaBaseStation& base_station() { return *bs_mac_; }

  /// Payloads generated per node so far.
  [[nodiscard]] std::uint64_t payloads_generated(std::size_t i) const {
    return nodes_[i]->generated;
  }

 private:
  struct Node {
    std::unique_ptr<hw::Board> board;
    std::unique_ptr<os::NodeOs> node_os;
    std::unique_ptr<mac::AlohaNodeMac> mac;
    std::uint64_t generated{0};
    os::TimerService::TimerId timer{os::TimerService::kInvalidTimer};
  };

  AlohaNetworkConfig config_;
  sim::Simulator simulator_;
  sim::Tracer tracer_;
  phy::Channel channel_;
  os::NullProbe probe_;
  std::unique_ptr<hw::Board> bs_board_;
  std::unique_ptr<os::NodeOs> bs_os_;
  std::unique_ptr<mac::AlohaBaseStation> bs_mac_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace bansim::core
