#include "core/aloha_network.hpp"

namespace bansim::core {

AlohaNetwork::AlohaNetwork(const AlohaNetworkConfig& config)
    : config_{config},
      context_{config.seed},
      channel_{context_},
      nominal_costs_{os::CycleCostModel::platform_defaults()} {
  CellPlan plan;
  plan.seed = config_.seed;
  plan.mac = MacKind::kAloha;
  plan.aloha = config_.aloha;
  plan.board = config_.board;
  plan.fidelity = Fidelity::kReference;
  plan.app = AppKind::kNone;
  // Historical stream naming: the ALOHA baseline keys its MAC streams
  // "aloha/<addr>" and staggers boots inside one payload interval.
  plan.streams.mac_prefix = "aloha/";
  plan.streams.key_streams_by_name = false;
  plan.stagger = config_.payload_interval;
  plan.roster.resize(config_.num_nodes);

  cell_ = NetworkBuilder::build_cell(context_, channel_, plan, probe_,
                                     nominal_costs_);
  generators_.resize(cell_.nodes.size());
}

void AlohaNetwork::start() {
  NetworkBuilder::start_cell(
      context_, cell_, [this](std::size_t i, NodeStack& stack) {
        stack.start();
        Generator* gen = &generators_[i];
        mac::AlohaNodeMac* node_mac = &stack.aloha_mac();
        gen->timer = stack.node_os().timers().start_periodic(
            "app.generate", config_.payload_interval, [this, gen, node_mac] {
              ++gen->generated;
              node_mac->queue_payload(
                  std::vector<std::uint8_t>(config_.payload_bytes, 0xEC));
            });
      });
}

void AlohaNetwork::run_until(sim::TimePoint until) {
  context_.simulator.run_until(until);
}

}  // namespace bansim::core
