#include "core/aloha_network.hpp"

namespace bansim::core {

AlohaNetwork::AlohaNetwork(const AlohaNetworkConfig& config)
    : config_{config}, channel_{simulator_, tracer_} {
  sim::Rng skew_rng = sim::Rng::stream(config_.seed, "skew");
  const double tol = config_.board.mcu.clock_tolerance;

  bs_board_ = std::make_unique<hw::Board>(simulator_, tracer_, channel_, "bs",
                                          config_.board,
                                          skew_rng.uniform(-tol, tol));
  bs_os_ = std::make_unique<os::NodeOs>(simulator_, tracer_, *bs_board_,
                                        probe_, nullptr);
  bs_mac_ = std::make_unique<mac::AlohaBaseStation>(simulator_, tracer_,
                                                    *bs_os_, config_.aloha);

  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    auto node = std::make_unique<Node>();
    const auto address = static_cast<net::NodeId>(i + 1);
    node->board = std::make_unique<hw::Board>(
        simulator_, tracer_, channel_, "node" + std::to_string(address),
        config_.board, skew_rng.uniform(-tol, tol));
    node->node_os = std::make_unique<os::NodeOs>(simulator_, tracer_,
                                                 *node->board, probe_, nullptr);
    node->mac = std::make_unique<mac::AlohaNodeMac>(
        simulator_, tracer_, *node->node_os, config_.aloha, address,
        sim::Rng::stream(config_.seed, "aloha/" + std::to_string(address)));
    nodes_.push_back(std::move(node));
  }
}

void AlohaNetwork::start() {
  bs_mac_->start();
  sim::Rng stagger = sim::Rng::stream(config_.seed, "stagger");
  for (auto& node : nodes_) {
    Node* raw = node.get();
    const double offset_s =
        stagger.uniform(0.0, config_.payload_interval.to_seconds());
    simulator_.schedule_in(sim::Duration::from_seconds(offset_s), [this, raw] {
      raw->mac->start();
      raw->timer = raw->node_os->timers().start_periodic(
          "app.generate", config_.payload_interval, [this, raw] {
            ++raw->generated;
            raw->mac->queue_payload(
                std::vector<std::uint8_t>(config_.payload_bytes, 0xEC));
          });
    });
  }
}

void AlohaNetwork::run_until(sim::TimePoint until) {
  simulator_.run_until(until);
}

}  // namespace bansim::core
