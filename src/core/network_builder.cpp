#include "core/network_builder.hpp"

#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "sim/rng.hpp"

namespace bansim::core {

bool BuiltCell::all_joined() const {
  for (const auto& node : nodes) {
    if (!node->joined()) return false;
  }
  return true;
}

std::vector<energy::NodeEnergy> BuiltCell::energy_snapshot(
    sim::TimePoint now) const {
  std::vector<energy::NodeEnergy> out;
  out.reserve(nodes.size() + 1);
  for (const auto& node : nodes) out.push_back(node->energy(now));
  out.push_back(bs->energy(now));
  return out;
}

namespace {

void validate_plan(const CellPlan& plan) {
  if (plan.roster.empty() && !plan.allow_empty_roster) {
    throw std::invalid_argument(
        "CellPlan roster is empty: resize it to the desired node count, or "
        "set allow_empty_roster for a deliberate base-station-only cell");
  }
  if (plan.mac == MacKind::kTdma) {
    if (const std::string problem = plan.tdma.validate(); !problem.empty()) {
      throw std::invalid_argument("TdmaConfig: " + problem);
    }
  } else if (plan.mac == MacKind::kCsmaCa) {
    plan.csma.validate();  // throws std::invalid_argument with the key name
  }
}

net::NodeId plan_bs_address(const CellPlan& plan) {
  if (plan.mac == MacKind::kTdma) {
    return mac::TdmaConfig::bs_address(plan.tdma.pan_id);
  }
  if (plan.mac == MacKind::kCsmaCa) {
    return mac::CsmaConfig::bs_address(plan.csma.pan_id);
  }
  return net::kBaseStationId;
}

/// Resolves roster entry `i` into a fully-merged NodeStackInit, consuming
/// exactly one skew draw — shared by build_cell and reset_cell so the two
/// paths cannot drift apart in stream order or override semantics.
NodeStackInit resolve_node_init(const CellPlan& plan, std::size_t i,
                                sim::Rng& skew_rng,
                                std::unordered_set<net::NodeId>& used_addresses,
                                net::NodeId bs_address) {
  const NodeSpec& spec = plan.roster[i];

  NodeStackInit init;
  init.mac = plan.mac;
  init.app = spec.app.value_or(plan.app);
  init.tdma = plan.tdma;
  init.aloha = plan.aloha;
  init.csma = plan.csma;
  init.csma_gts = spec.csma_gts.value_or(false);
  if (init.csma_gts && plan.mac != MacKind::kCsmaCa) {
    throw std::invalid_argument(
        "roster entry " + std::to_string(i) +
        " requests a GTS but the cell does not run CSMA/CA");
  }
  if (init.csma_gts && plan.csma.gts_slots == 0) {
    throw std::invalid_argument(
        "roster entry " + std::to_string(i) +
        " requests a GTS but csma.gts_slots is 0");
  }
  init.streaming = spec.streaming.value_or(plan.streaming);
  init.rpeak = spec.rpeak.value_or(plan.rpeak);
  init.ecg = spec.ecg.value_or(plan.ecg);
  init.eeg = spec.eeg.value_or(plan.eeg);
  init.eeg_signal = spec.eeg_signal.value_or(plan.eeg_signal);

  const Fidelity fidelity = spec.fidelity.value_or(plan.fidelity);
  init.board = apply_fidelity(spec.board.value_or(plan.board), fidelity);

  init.storage = spec.storage.value_or(plan.storage);
  if (const std::string problem = init.storage.validate(); !problem.empty()) {
    throw std::invalid_argument("StorageParams (roster entry " +
                                std::to_string(i) + "): " + problem);
  }

  // Always consume the skew stream, even when the spec pins the value:
  // the draw positions of the remaining nodes must not shift.
  const double tol = init.board.mcu.clock_tolerance;
  const double drawn_skew = skew_rng.uniform(-tol, tol);
  init.clock_skew = spec.clock_skew.value_or(drawn_skew);

  init.address = spec.address != 0
                     ? spec.address
                     : static_cast<net::NodeId>(plan.address_offset + i + 1);
  if (!used_addresses.insert(init.address).second) {
    throw std::invalid_argument(
        "duplicate radio address " + std::to_string(init.address) +
        " in roster entry " + std::to_string(i) +
        (init.address == bs_address ? " (collides with the base station)"
                                    : ""));
  }
  init.name = "node" + std::to_string(init.address);
  init.eeg_seed = plan.seed ^ sim::fnv1a64("eeg/" + init.name);
  return init;
}

sim::Rng node_stream(const CellPlan& plan, const NodeStackInit& init,
                     const std::string& prefix) {
  const std::string key = plan.streams.key_streams_by_name
                              ? init.name
                              : std::to_string(init.address);
  return sim::Rng::stream(plan.seed, prefix + key);
}

}  // namespace

BuiltCell NetworkBuilder::build_cell(sim::SimContext& context,
                                     phy::Channel& channel,
                                     const CellPlan& plan,
                                     os::ModelProbe& probe,
                                     const os::CycleCostModel& nominal_costs) {
  validate_plan(plan);

  BuiltCell cell;
  cell.seed = plan.seed;
  cell.stagger_stream = plan.streams.stagger;
  cell.stagger_window = plan.stagger;

  // Warm up the kernel before any component constructs: each stack keeps a
  // small constellation of timers/ISRs/frame deliveries in flight, and
  // every component interns its node name once.  Reserving here keeps cell
  // construction and boot staggering from growing the arena incrementally.
  const std::size_t stacks = plan.roster.size() + 1;  // nodes + base station
  context.simulator.reserve_events(16 * stacks);
  context.tracer.reserve(stacks + 1);  // node names + the global ""

  // Per-component deterministic randomness: the same seed reproduces the
  // same network, and the skew/signal/mac streams are independent, so a
  // model-fidelity run (which zeroes tolerance) sees identical signal and
  // MAC draws.
  sim::Rng skew_rng = sim::Rng::stream(plan.seed, plan.streams.skew);

  const hw::BoardParams bs_board = apply_fidelity(plan.board, plan.fidelity);
  const double bs_tol = bs_board.mcu.clock_tolerance;
  const os::CycleCostModel* bs_nominal =
      plan.fidelity == Fidelity::kModel ? &nominal_costs : nullptr;
  const double bs_skew = skew_rng.uniform(-bs_tol, bs_tol);
  cell.bs = std::make_unique<BaseStationStack>(
      context, channel, plan.bs_name, bs_board, bs_skew, plan.mac, plan.tdma,
      plan.aloha, plan.csma, probe, bs_nominal);

  cell.nodes.reserve(plan.roster.size());
  cell.boot_offsets.reserve(plan.roster.size());
  // Duplicate radio addresses make the channel's hardware address filter
  // deliver one node's unicast traffic to another — a mis-assembled roster,
  // not a simulatable topology.  Hard-error before any stack is built.
  std::unordered_set<net::NodeId> used_addresses;
  const net::NodeId bs_address = plan_bs_address(plan);
  used_addresses.insert(bs_address);
  for (std::size_t i = 0; i < plan.roster.size(); ++i) {
    const NodeStackInit init =
        resolve_node_init(plan, i, skew_rng, used_addresses, bs_address);
    sim::Rng mac_rng = node_stream(plan, init, plan.streams.mac_prefix);
    sim::Rng signal_rng = node_stream(plan, init, plan.streams.signal_prefix);

    const Fidelity fidelity = plan.roster[i].fidelity.value_or(plan.fidelity);
    const os::CycleCostModel* nominal =
        fidelity == Fidelity::kModel ? &nominal_costs : nullptr;
    cell.nodes.push_back(std::make_unique<NodeStack>(
        context, channel, init, mac_rng, signal_rng, probe, nominal));
    cell.boot_offsets.push_back(plan.roster[i].boot_offset);
  }
  return cell;
}

void NetworkBuilder::reset_cell(BuiltCell& cell, const CellPlan& plan) {
  validate_plan(plan);
  if (plan.roster.size() != cell.nodes.size()) {
    throw std::invalid_argument(
        "reset_cell: roster size " + std::to_string(plan.roster.size()) +
        " does not match the built cell's " +
        std::to_string(cell.nodes.size()) +
        " nodes; a reset must keep the cell's shape");
  }
  if (cell.bs->mac_kind() != plan.mac) {
    throw std::invalid_argument(
        "reset_cell: MAC kind changed; a reset must keep the cell's shape");
  }

  cell.seed = plan.seed;
  cell.stagger_stream = plan.streams.stagger;
  cell.stagger_window = plan.stagger;
  cell.boot_offsets.clear();

  // Mirror build_cell's draw order exactly: one skew stream, base station
  // first, then every node in index order.
  sim::Rng skew_rng = sim::Rng::stream(plan.seed, plan.streams.skew);
  const hw::BoardParams bs_board = apply_fidelity(plan.board, plan.fidelity);
  const double bs_tol = bs_board.mcu.clock_tolerance;
  const double bs_skew = skew_rng.uniform(-bs_tol, bs_tol);
  cell.bs->reset(bs_skew);

  std::unordered_set<net::NodeId> used_addresses;
  const net::NodeId bs_address = plan_bs_address(plan);
  used_addresses.insert(bs_address);
  for (std::size_t i = 0; i < plan.roster.size(); ++i) {
    const NodeStackInit init =
        resolve_node_init(plan, i, skew_rng, used_addresses, bs_address);
    if (init.address != cell.nodes[i]->address()) {
      throw std::invalid_argument(
          "reset_cell: roster entry " + std::to_string(i) +
          " resolves to address " + std::to_string(init.address) +
          " but the built node has " +
          std::to_string(cell.nodes[i]->address()) +
          "; a reset must keep the cell's shape");
    }
    sim::Rng mac_rng = node_stream(plan, init, plan.streams.mac_prefix);
    sim::Rng signal_rng = node_stream(plan, init, plan.streams.signal_prefix);
    cell.nodes[i]->reset(init, mac_rng, signal_rng);
    cell.boot_offsets.push_back(plan.roster[i].boot_offset);
  }
}

void NetworkBuilder::start_cell(sim::SimContext& context, BuiltCell& cell,
                                NodeStarter starter) {
  cell.bs->start();
  sim::Rng stagger_rng = sim::Rng::stream(cell.seed, cell.stagger_stream);
  for (std::size_t i = 0; i < cell.nodes.size(); ++i) {
    // As with skew: draw for every node so pinned offsets don't shift the
    // draws of later nodes.
    const double drawn_s =
        stagger_rng.uniform(0.0, cell.stagger_window.to_seconds());
    const sim::Duration offset = cell.boot_offsets[i].value_or(
        sim::Duration::from_seconds(drawn_s));
    NodeStack* stack = cell.nodes[i].get();
    if (starter) {
      context.simulator.schedule_in(
          offset, [starter, i, stack] { starter(i, *stack); });
    } else {
      context.simulator.schedule_in(offset, [stack] { stack->start(); });
    }
  }
}

}  // namespace bansim::core
