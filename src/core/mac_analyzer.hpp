// Post-run MAC/radio behaviour analysis.
//
// Turns the raw artifacts of a run — per-state energy-meter residencies and
// the MAC trace stream — into the quantities a protocol engineer tunes
// against: radio duty cycle, average listen window, wake-up rate, beacon
// cadence jitter, delivery counts.  This is the "accurate performance
// figures" half of the paper's claim (energy being the other half).
#pragma once

#include <string>
#include <vector>

#include "core/ban_network.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace bansim::core {

struct NodeMacReport {
  std::string node;
  double radio_duty{0};            ///< fraction of wall time in RX/TX states
  double radio_rx_duty{0};
  double radio_tx_duty{0};
  double mcu_active_duty{0};
  double listen_windows_per_s{0};
  double avg_listen_window_ms{0};
  double mcu_wakeups_per_s{0};
  std::uint64_t beacons_received{0};
  std::uint64_t beacons_missed{0};
  std::uint64_t data_sent{0};
};

struct MacAnalysis {
  sim::Duration window{};
  std::vector<NodeMacReport> nodes;
  sim::Summary beacon_interval_ms;  ///< BS cadence over the trace window

  [[nodiscard]] std::string render() const;
};

/// Analyzes `network` over [t0, now]; `records` should carry kMac traces
/// captured since before t0 (beacon cadence uses only records >= t0).
[[nodiscard]] MacAnalysis analyze_mac(BanNetwork& network,
                                      const std::vector<sim::TraceRecord>& records,
                                      sim::TimePoint t0);

}  // namespace bansim::core
