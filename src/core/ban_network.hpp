// BAN construction: a base station plus N biopotential sensor nodes on a
// shared wireless channel — the paper's 5-node validation network in one
// object.  This is the primary entry point of the library's public API.
//
// Node composition is delegated to core::NetworkBuilder: BanConfig's
// network-wide fields are the defaults, and the optional `roster` of
// NodeSpec entries overrides them per node, so one BAN can mix ECG
// streamers, R-peak detectors and EEG monitors (a heterogeneous ward
// network) without any wiring changes here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/base_station_app.hpp"
#include "core/network_builder.hpp"
#include "core/node_spec.hpp"
#include "core/node_stack.hpp"
#include "energy/energy_report.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/storage_driver.hpp"
#include "phy/channel.hpp"
#include "phy/link_model.hpp"
#include "sim/context.hpp"

namespace bansim::core {

/// A sensor node is one NodeStack; the historical name remains the public
/// alias.
using SensorNode = NodeStack;

struct BanConfig {
  /// Node count for a homogeneous network; ignored when `roster` is
  /// non-empty (the roster length wins).
  std::size_t num_nodes{5};
  /// MAC protocol for the whole cell ([mac] protocol in config files).
  /// kTdma reads `tdma` (variant selects static/dynamic), kCsmaCa reads
  /// `csma`, kAloha reads `aloha`.
  MacKind mac{MacKind::kTdma};
  mac::TdmaConfig tdma{};
  mac::AlohaConfig aloha{};
  mac::CsmaConfig csma{};
  AppKind app{AppKind::kEcgStreaming};
  apps::StreamingConfig streaming{};
  apps::RpeakConfig rpeak{};
  apps::EcgConfig ecg{};
  apps::EegAppConfig eeg{};
  apps::EegConfig eeg_signal{};
  hw::BoardParams board{};
  Fidelity fidelity{Fidelity::kReference};
  std::uint64_t seed{1};
  /// Nodes boot staggered inside [0, stagger) to decorrelate join attempts.
  sim::Duration stagger{sim::Duration::milliseconds(40)};

  /// Node addresses are offset+1 .. offset+num_nodes.  Give co-located
  /// BANs disjoint ranges (and distinct tdma.pan_id values); avoid
  /// multiples of 0x100, which are base-station addresses.
  net::NodeId address_offset{0};

  /// Per-node overrides; empty builds num_nodes default-spec nodes.  An
  /// all-default roster of length num_nodes is bit-identical to the
  /// homogeneous network.
  std::vector<NodeSpec> roster{};

  /// Body-area link model: when enabled, every frame is subject to a
  /// per-link frame error probability from the path-loss/BER budget below
  /// (on top of collision corruption).  Off by default — the paper's
  /// validation channel loses frames to collisions only.
  bool use_link_model{false};
  phy::LinkBudget link_budget{};
  /// Device positions (index 0 = base station); empty selects
  /// phy::standard_ban_layout(num_nodes), which supports up to 6 nodes.
  std::vector<phy::BodyPosition> body_positions{};

  /// Fault-injection campaign ([fault.*] INI sections).  A disabled plan
  /// (the default) changes nothing: the network is wired exactly as if the
  /// fault subsystem did not exist, so fault-free runs stay bit-identical.
  fault::FaultPlan fault_plan{};

  /// Per-node energy storage ([storage] / [battery] / [capacitor] /
  /// [harvest] INI sections; NodeSpec::storage overrides per node).
  /// Disabled (the default) keeps every node on the bench supply and the
  /// network bit-identical to storage-free builds.
  hw::StorageParams storage{};

  /// Effective node count (roster length when a roster is given).
  [[nodiscard]] std::size_t effective_nodes() const {
    return roster.empty() ? num_nodes : roster.size();
  }

  /// The cell's protocol as the four-way enum the seam exposes (kTdma
  /// splits on tdma.variant).
  [[nodiscard]] mac::Protocol protocol() const {
    switch (mac) {
      case MacKind::kAloha:
        return mac::Protocol::kAloha;
      case MacKind::kCsmaCa:
        return mac::Protocol::kCsmaCa;
      case MacKind::kTdma:
        break;
    }
    return tdma.variant == mac::TdmaVariant::kStatic
               ? mac::Protocol::kStaticTdma
               : mac::Protocol::kDynamicTdma;
  }
};

class BanNetwork {
 public:
  /// `probe` may be null (no estimator attached).
  explicit BanNetwork(const BanConfig& config, os::ModelProbe* probe = nullptr);

  /// Boots the base station and all nodes (staggered).
  void start();

  /// Restores the whole network to freshly-constructed state in place —
  /// the schedule-reset-run seam of campaign loops.  No heap object is
  /// replaced: the event arena, interned trace names, stacks, link model,
  /// fault injector and storage driver are all kept and rewound, so the
  /// steady state of a reset-per-run campaign allocates nothing.
  ///
  /// `config` must be same-shape as construction: node count, MAC/app
  /// kinds, addresses, board params, MAC configs, link-model/fault
  /// activeness, body positions and storage enabled-ness unchanged.
  /// Seed, physiology (ecg), storage values, fault values and the run
  /// horizon may differ — the per-patient degrees of freedom of a
  /// population sweep.  A reset run is bit-identical to a rebuilt one
  /// (locked by test_golden_energy and the fuzzer's reset oracle).
  void reset(const BanConfig& config);

  /// Advances the simulation to absolute time `until`.
  void run_until(sim::TimePoint until);

  /// True when every node holds a TDMA slot.
  [[nodiscard]] bool all_joined() const;

  /// Runs until all_joined() plus `settle`, polling every poll interval;
  /// returns false if `deadline` passes first.
  bool run_until_joined(sim::Duration settle, sim::TimePoint deadline);

  [[nodiscard]] sim::SimContext& context() { return context_; }
  [[nodiscard]] sim::Simulator& simulator() { return context_.simulator; }
  [[nodiscard]] sim::Tracer& tracer() { return context_.tracer; }
  [[nodiscard]] phy::Channel& channel() { return channel_; }
  [[nodiscard]] const BanConfig& config() const { return config_; }

  [[nodiscard]] std::size_t num_nodes() const { return cell_.nodes.size(); }
  [[nodiscard]] SensorNode& node(std::size_t i) { return *cell_.nodes[i]; }
  [[nodiscard]] const SensorNode& node(std::size_t i) const {
    return *cell_.nodes[i];
  }
  /// TDMA base station (asserts when the cell runs another protocol);
  /// protocol-agnostic callers use base_station().
  [[nodiscard]] mac::BaseStationMac& base_station_mac() {
    return cell_.bs->tdma_mac();
  }
  [[nodiscard]] BaseStationStack& base_station() { return *cell_.bs; }
  [[nodiscard]] apps::BaseStationApp& base_station_app() {
    return cell_.bs->app();
  }
  /// Per-node EEG reassembly/decoding (kEegMonitoring nodes only).
  [[nodiscard]] apps::EegCollector* eeg_collector(net::NodeId node);
  [[nodiscard]] hw::Board& base_station_board() { return cell_.bs->board(); }
  /// Non-null when the config enabled the body-area link model.
  [[nodiscard]] const phy::LinkModel* link_model() const {
    return link_model_.get();
  }
  /// Non-null when the config carries an active fault plan.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }
  /// Non-null when at least one node carries an enabled energy store.
  [[nodiscard]] fault::StorageDriver* storage_driver() {
    return storage_driver_.get();
  }
  [[nodiscard]] const fault::StorageDriver* storage_driver() const {
    return storage_driver_.get();
  }

  /// Per-node component energy snapshot at the current instant.
  [[nodiscard]] std::vector<energy::NodeEnergy> energy_snapshot() const;

 private:
  BanConfig config_;
  sim::SimContext context_;
  phy::Channel channel_;
  os::NullProbe null_probe_;
  os::ModelProbe* probe_;
  os::CycleCostModel nominal_costs_;
  std::unique_ptr<phy::LinkModel> link_model_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::StorageDriver> storage_driver_;
  BuiltCell cell_;
  std::map<net::NodeId, apps::EegCollector> eeg_collectors_;
};

/// Translates a BanConfig into the builder's CellPlan (shared with
/// MultiBan, which re-derives the stream names per cell).
[[nodiscard]] CellPlan make_cell_plan(const BanConfig& config);

}  // namespace bansim::core
