// BAN construction: a base station plus N biopotential sensor nodes on a
// shared wireless channel — the paper's 5-node validation network in one
// object.  This is the primary entry point of the library's public API.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/base_station_app.hpp"
#include "apps/ecg_streaming_app.hpp"
#include "apps/ecg_synthesizer.hpp"
#include "apps/eeg_app.hpp"
#include "apps/eeg_synthesizer.hpp"
#include "apps/rpeak_app.hpp"
#include "core/fidelity.hpp"
#include "energy/energy_report.hpp"
#include "hw/board.hpp"
#include "mac/base_station_mac.hpp"
#include "mac/node_mac.hpp"
#include "os/node_os.hpp"
#include "phy/channel.hpp"
#include "phy/link_model.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::core {

/// Which application runs on the sensor nodes.
enum class AppKind { kNone, kEcgStreaming, kRpeak, kEegMonitoring };

[[nodiscard]] constexpr const char* to_string(AppKind k) {
  switch (k) {
    case AppKind::kNone: return "none";
    case AppKind::kEcgStreaming: return "ecg_streaming";
    case AppKind::kRpeak: return "rpeak";
    case AppKind::kEegMonitoring: return "eeg_monitoring";
  }
  return "?";
}

struct BanConfig {
  std::size_t num_nodes{5};
  mac::TdmaConfig tdma{};
  AppKind app{AppKind::kEcgStreaming};
  apps::StreamingConfig streaming{};
  apps::RpeakConfig rpeak{};
  apps::EcgConfig ecg{};
  apps::EegAppConfig eeg{};
  apps::EegConfig eeg_signal{};
  hw::BoardParams board{};
  Fidelity fidelity{Fidelity::kReference};
  std::uint64_t seed{1};
  /// Nodes boot staggered inside [0, stagger) to decorrelate join attempts.
  sim::Duration stagger{sim::Duration::milliseconds(40)};

  /// Node addresses are offset+1 .. offset+num_nodes.  Give co-located
  /// BANs disjoint ranges (and distinct tdma.pan_id values); avoid
  /// multiples of 0x100, which are base-station addresses.
  net::NodeId address_offset{0};

  /// Body-area link model: when enabled, every frame is subject to a
  /// per-link frame error probability from the path-loss/BER budget below
  /// (on top of collision corruption).  Off by default — the paper's
  /// validation channel loses frames to collisions only.
  bool use_link_model{false};
  phy::LinkBudget link_budget{};
  /// Device positions (index 0 = base station); empty selects
  /// phy::standard_ban_layout(num_nodes), which supports up to 6 nodes.
  std::vector<phy::BodyPosition> body_positions{};
};

/// One sensor node: hardware board, OS instance, MAC, signal source and
/// the selected application.
class SensorNode {
 public:
  SensorNode(sim::Simulator& simulator, sim::Tracer& tracer,
             phy::Channel& channel, const BanConfig& config,
             net::NodeId address, double clock_skew, sim::Rng mac_rng,
             sim::Rng ecg_rng, os::ModelProbe& probe,
             const os::CycleCostModel* nominal_costs);

  void start();

  [[nodiscard]] const std::string& name() const { return board_.name(); }
  [[nodiscard]] net::NodeId address() const { return address_; }
  [[nodiscard]] hw::Board& board() { return board_; }
  [[nodiscard]] const hw::Board& board() const { return board_; }
  [[nodiscard]] os::NodeOs& node_os() { return os_; }
  [[nodiscard]] mac::NodeMac& mac() { return mac_; }
  [[nodiscard]] apps::EcgSynthesizer& ecg() { return ecg_; }
  [[nodiscard]] apps::EegSynthesizer& eeg() { return eeg_; }
  [[nodiscard]] apps::EcgStreamingApp* streaming_app() { return streaming_.get(); }
  [[nodiscard]] apps::RpeakApp* rpeak_app() { return rpeak_.get(); }
  [[nodiscard]] apps::EegApp* eeg_app() { return eeg_app_.get(); }

 private:
  net::NodeId address_;
  apps::EcgSynthesizer ecg_;
  apps::EegSynthesizer eeg_;
  hw::Board board_;
  os::NodeOs os_;
  mac::NodeMac mac_;
  std::unique_ptr<apps::EcgStreamingApp> streaming_;
  std::unique_ptr<apps::RpeakApp> rpeak_;
  std::unique_ptr<apps::EegApp> eeg_app_;
};

class BanNetwork {
 public:
  /// `probe` may be null (no estimator attached).
  explicit BanNetwork(const BanConfig& config, os::ModelProbe* probe = nullptr);

  /// Boots the base station and all nodes (staggered).
  void start();

  /// Advances the simulation to absolute time `until`.
  void run_until(sim::TimePoint until);

  /// True when every node holds a TDMA slot.
  [[nodiscard]] bool all_joined() const;

  /// Runs until all_joined() plus `settle`, polling every poll interval;
  /// returns false if `deadline` passes first.
  bool run_until_joined(sim::Duration settle, sim::TimePoint deadline);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] sim::Tracer& tracer() { return tracer_; }
  [[nodiscard]] phy::Channel& channel() { return channel_; }
  [[nodiscard]] const BanConfig& config() const { return config_; }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] SensorNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] const SensorNode& node(std::size_t i) const { return *nodes_[i]; }
  [[nodiscard]] mac::BaseStationMac& base_station_mac() { return *bs_mac_; }
  [[nodiscard]] apps::BaseStationApp& base_station_app() { return bs_app_; }
  /// Per-node EEG reassembly/decoding (kEegMonitoring runs only).
  [[nodiscard]] apps::EegCollector* eeg_collector(net::NodeId node);
  [[nodiscard]] hw::Board& base_station_board() { return *bs_board_; }
  /// Non-null when the config enabled the body-area link model.
  [[nodiscard]] const phy::LinkModel* link_model() const {
    return link_model_.get();
  }

  /// Per-node component energy snapshot at the current instant.
  [[nodiscard]] std::vector<energy::NodeEnergy> energy_snapshot() const;

 private:
  BanConfig config_;
  sim::Simulator simulator_;
  sim::Tracer tracer_;
  phy::Channel channel_;
  os::NullProbe null_probe_;
  os::ModelProbe* probe_;
  os::CycleCostModel nominal_costs_;
  std::unique_ptr<phy::LinkModel> link_model_;
  std::unique_ptr<hw::Board> bs_board_;
  std::unique_ptr<os::NodeOs> bs_os_;
  std::unique_ptr<mac::BaseStationMac> bs_mac_;
  apps::BaseStationApp bs_app_;
  std::map<net::NodeId, apps::EegCollector> eeg_collectors_;
  std::vector<std::unique_ptr<SensorNode>> nodes_;
};

}  // namespace bansim::core
