// Fidelity levels of the simulation stack.
//
// The reproduction runs every scenario twice:
//  * kReference — the "Real" proxy (see DESIGN.md): full second-order
//    behaviour.  Per-node DCO clock skew, 6 us wake-up stalls, interrupt
//    entry/exit overhead, and data-dependent task cycle counts.  Its energy
//    meters stand in for the paper's bench measurements.
//  * kModel — the paper's TOSSIM-based estimation model: ideal clocks,
//    free wake-ups and interrupts, and task costs taken from the calibrated
//    cycle table (PowerTOSSIM-style basic-block mapping).  ShockBurst
//    settle/clock-in phases stay modelled, as the paper's radio model
//    explicitly includes ShockBurst behaviour.
// The difference between the two runs is the estimation error the paper
// reports in Tables 1-4.
#pragma once

#include "hw/board.hpp"

namespace bansim::core {

enum class Fidelity { kReference, kModel };

[[nodiscard]] constexpr const char* to_string(Fidelity f) {
  return f == Fidelity::kReference ? "reference" : "model";
}

/// Adjusts board parameters for the requested fidelity.  kReference params
/// pass through; kModel zeroes the effects the estimator cannot see.
[[nodiscard]] inline hw::BoardParams apply_fidelity(hw::BoardParams params,
                                                    Fidelity fidelity) {
  if (fidelity == Fidelity::kModel) {
    params.mcu.wakeup_latency = sim::Duration::zero();
    params.mcu.isr_overhead_cycles = 0;
    params.mcu.clock_tolerance = 0.0;
  }
  return params;
}

}  // namespace bansim::core
