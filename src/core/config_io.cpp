#include "core/config_io.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace bansim::core {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

double to_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw ConfigError("");
    return v;
  } catch (...) {
    throw ConfigError("bad numeric value for " + key + ": " + value);
  }
}

std::int64_t to_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used, 0);
    if (used != value.size()) throw ConfigError("");
    return v;
  } catch (...) {
    throw ConfigError("bad integer value for " + key + ": " + value);
  }
}

bool to_bool(const std::string& key, const std::string& value) {
  const std::string v = lower(value);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("bad boolean value for " + key + ": " + value);
}

}  // namespace

BanConfig parse_config(const std::string& text) {
  BanConfig config;
  // The static cycle is expressed directly in the file; remember it to
  // derive the slot width once max_slots is known.
  double static_cycle_ms = -1.0;
  bool saw_variant_static = true;

  std::istringstream stream{text};
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ConfigError("line " + std::to_string(line_no) +
                          ": malformed section header");
      }
      section = lower(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": expected key = value");
    }
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    const std::string scoped = section + "." + key;

    if (scoped == "network.nodes") {
      config.num_nodes = static_cast<std::size_t>(to_int(scoped, value));
    } else if (scoped == "network.seed") {
      config.seed = static_cast<std::uint64_t>(to_int(scoped, value));
    } else if (scoped == "network.stagger_ms") {
      config.stagger = sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "network.app") {
      const std::string app = lower(value);
      if (app == "none") {
        config.app = AppKind::kNone;
      } else if (app == "ecg_streaming") {
        config.app = AppKind::kEcgStreaming;
      } else if (app == "rpeak") {
        config.app = AppKind::kRpeak;
      } else if (app == "eeg_monitoring") {
        config.app = AppKind::kEegMonitoring;
      } else {
        throw ConfigError("unknown app: " + value);
      }
    } else if (scoped == "tdma.variant") {
      saw_variant_static = lower(value) == "static";
      if (!saw_variant_static && lower(value) != "dynamic") {
        throw ConfigError("unknown tdma variant: " + value);
      }
      config.tdma.variant = saw_variant_static ? mac::TdmaVariant::kStatic
                                               : mac::TdmaVariant::kDynamic;
    } else if (scoped == "tdma.cycle_ms") {
      static_cycle_ms = to_double(scoped, value);
    } else if (scoped == "tdma.slot_ms") {
      config.tdma.slot = sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "tdma.max_slots") {
      config.tdma.max_slots = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "tdma.guard_fixed_ms") {
      config.tdma.guard_fixed =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "tdma.guard_fraction") {
      config.tdma.guard_fraction = to_double(scoped, value);
    } else if (scoped == "tdma.fast_grant") {
      config.tdma.fast_grant = to_bool(scoped, value);
    } else if (scoped == "tdma.ack_data") {
      config.tdma.ack_data = to_bool(scoped, value);
    } else if (scoped == "tdma.max_retries") {
      config.tdma.max_retries = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "tdma.radio_power_down") {
      config.tdma.radio_power_down = to_bool(scoped, value);
    } else if (scoped == "tdma.reclaim_after_cycles") {
      config.tdma.reclaim_after_cycles =
          static_cast<std::uint32_t>(to_int(scoped, value));
    } else if (scoped == "streaming.sample_rate_hz") {
      config.streaming.sample_rate_hz = to_double(scoped, value);
    } else if (scoped == "streaming.payload_bytes") {
      config.streaming.payload_bytes =
          static_cast<std::size_t>(to_int(scoped, value));
    } else if (scoped == "rpeak.sample_rate_hz") {
      config.rpeak.sample_rate_hz = to_double(scoped, value);
    } else if (scoped == "ecg.heart_rate_bpm") {
      config.ecg.heart_rate_bpm = to_double(scoped, value);
    } else if (scoped == "eeg.channels") {
      config.eeg.channels = static_cast<std::uint32_t>(to_int(scoped, value));
      config.eeg_signal.channels = config.eeg.channels;
    } else if (scoped == "eeg.sample_rate_hz") {
      config.eeg.sample_rate_hz = to_double(scoped, value);
    } else if (scoped == "eeg.block_samples") {
      config.eeg.block_samples =
          static_cast<std::uint32_t>(to_int(scoped, value));
    } else if (scoped == "link.enabled") {
      config.use_link_model = to_bool(scoped, value);
    } else if (scoped == "link.tx_power_dbm") {
      config.link_budget.tx_power_dbm = to_double(scoped, value);
    } else if (scoped == "link.path_loss_exponent") {
      config.link_budget.path_loss_exponent = to_double(scoped, value);
    } else if (scoped == "link.shadowing_sigma_db") {
      config.link_budget.shadowing_sigma_db = to_double(scoped, value);
    } else {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": unknown key '" + scoped + "'");
    }
  }

  if (static_cycle_ms > 0 && config.tdma.variant == mac::TdmaVariant::kStatic) {
    config.tdma = [&] {
      mac::TdmaConfig derived = config.tdma;
      const auto plan = mac::TdmaConfig::static_plan(
          sim::Duration::from_milliseconds(static_cycle_ms),
          config.tdma.max_slots);
      derived.slot = plan.slot;
      return derived;
    }();
  }
  return config;
}

std::string serialize_config(const BanConfig& config) {
  std::ostringstream out;
  out << "[network]\n";
  out << "nodes = " << config.num_nodes << "\n";
  out << "seed = " << config.seed << "\n";
  out << "stagger_ms = " << config.stagger.to_milliseconds() << "\n";
  out << "app = " << to_string(config.app) << "\n\n";

  out << "[tdma]\n";
  out << "variant = " << to_string(config.tdma.variant) << "\n";
  if (config.tdma.variant == mac::TdmaVariant::kStatic) {
    out << "cycle_ms = " << config.tdma.static_cycle().to_milliseconds()
        << "\n";
  }
  out << "slot_ms = " << config.tdma.slot.to_milliseconds() << "\n";
  out << "max_slots = " << static_cast<int>(config.tdma.max_slots) << "\n";
  out << "guard_fixed_ms = " << config.tdma.guard_fixed.to_milliseconds()
      << "\n";
  out << "guard_fraction = " << config.tdma.guard_fraction << "\n";
  out << "fast_grant = " << (config.tdma.fast_grant ? "true" : "false") << "\n";
  out << "ack_data = " << (config.tdma.ack_data ? "true" : "false") << "\n";
  out << "max_retries = " << static_cast<int>(config.tdma.max_retries) << "\n";
  out << "radio_power_down = "
      << (config.tdma.radio_power_down ? "true" : "false") << "\n";
  out << "reclaim_after_cycles = " << config.tdma.reclaim_after_cycles
      << "\n\n";

  out << "[streaming]\n";
  out << "sample_rate_hz = " << config.streaming.sample_rate_hz << "\n";
  out << "payload_bytes = " << config.streaming.payload_bytes << "\n\n";

  out << "[rpeak]\n";
  out << "sample_rate_hz = " << config.rpeak.sample_rate_hz << "\n\n";

  out << "[ecg]\n";
  out << "heart_rate_bpm = " << config.ecg.heart_rate_bpm << "\n\n";

  out << "[eeg]\n";
  out << "channels = " << config.eeg.channels << "\n";
  out << "sample_rate_hz = " << config.eeg.sample_rate_hz << "\n";
  out << "block_samples = " << config.eeg.block_samples << "\n\n";

  out << "[link]\n";
  out << "enabled = " << (config.use_link_model ? "true" : "false") << "\n";
  out << "tx_power_dbm = " << config.link_budget.tx_power_dbm << "\n";
  out << "path_loss_exponent = " << config.link_budget.path_loss_exponent
      << "\n";
  out << "shadowing_sigma_db = " << config.link_budget.shadowing_sigma_db
      << "\n";
  return out.str();
}

}  // namespace bansim::core
