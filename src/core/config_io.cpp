#include "core/config_io.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace bansim::core {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

double to_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw ConfigError("");
    return v;
  } catch (...) {
    throw ConfigError("bad numeric value for " + key + ": " + value);
  }
}

std::int64_t to_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used, 0);
    if (used != value.size()) throw ConfigError("");
    return v;
  } catch (...) {
    throw ConfigError("bad integer value for " + key + ": " + value);
  }
}

bool to_bool(const std::string& key, const std::string& value) {
  const std::string v = lower(value);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("bad boolean value for " + key + ": " + value);
}

}  // namespace

AppKind parse_app_kind(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "none") return AppKind::kNone;
  if (v == "ecg_streaming") return AppKind::kEcgStreaming;
  if (v == "rpeak") return AppKind::kRpeak;
  if (v == "eeg_monitoring") return AppKind::kEegMonitoring;
  throw ConfigError("unknown app kind '" + token +
                    "' (expected none | ecg_streaming | rpeak | "
                    "eeg_monitoring)");
}

mac::Protocol parse_mac_protocol(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "static_tdma") return mac::Protocol::kStaticTdma;
  if (v == "dynamic_tdma") return mac::Protocol::kDynamicTdma;
  if (v == "aloha") return mac::Protocol::kAloha;
  if (v == "csma_ca") return mac::Protocol::kCsmaCa;
  throw ConfigError("unknown mac protocol '" + token +
                    "' (expected static_tdma | dynamic_tdma | aloha | "
                    "csma_ca)");
}

mac::TdmaVariant parse_tdma_variant(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "static") return mac::TdmaVariant::kStatic;
  if (v == "dynamic") return mac::TdmaVariant::kDynamic;
  throw ConfigError("unknown tdma variant '" + token +
                    "' (expected static | dynamic)");
}

Fidelity parse_fidelity(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "reference") return Fidelity::kReference;
  if (v == "model") return Fidelity::kModel;
  throw ConfigError("unknown fidelity '" + token +
                    "' (expected reference | model)");
}

fault::FaultKind parse_fault_kind(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "crash") return fault::FaultKind::kCrash;
  if (v == "radio_lockup") return fault::FaultKind::kRadioLockup;
  if (v == "skew_step") return fault::FaultKind::kSkewStep;
  throw ConfigError("unknown fault kind '" + token +
                    "' (expected crash | radio_lockup | skew_step)");
}

hw::StorageKind parse_storage_kind(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "battery") return hw::StorageKind::kBattery;
  if (v == "capacitor") return hw::StorageKind::kCapacitor;
  throw ConfigError("unknown storage kind '" + token +
                    "' (expected battery | capacitor)");
}

hw::HarvestParams::Profile parse_harvest_profile(const std::string& token) {
  const std::string v = lower(trim(token));
  if (v == "constant") return hw::HarvestParams::Profile::kConstant;
  if (v == "sine") return hw::HarvestParams::Profile::kSine;
  if (v == "square") return hw::HarvestParams::Profile::kSquare;
  throw ConfigError("unknown harvest profile '" + token +
                    "' (expected constant | sine | square)");
}

void apply_mac_protocol(BanConfig& config, mac::Protocol protocol) {
  switch (protocol) {
    case mac::Protocol::kStaticTdma:
      config.mac = MacKind::kTdma;
      config.tdma.variant = mac::TdmaVariant::kStatic;
      break;
    case mac::Protocol::kDynamicTdma:
      config.mac = MacKind::kTdma;
      config.tdma.variant = mac::TdmaVariant::kDynamic;
      break;
    case mac::Protocol::kAloha:
      config.mac = MacKind::kAloha;
      break;
    case mac::Protocol::kCsmaCa:
      config.mac = MacKind::kCsmaCa;
      break;
  }
}

namespace {

/// One buffered `[node.K]` assignment; applied after the whole file is
/// read so per-node overrides see the final global defaults.
struct NodeAssignment {
  std::size_t index;  ///< 1-based
  std::string key;
  std::string value;
  int line_no;
};

void apply_node_key(NodeSpec& spec, const BanConfig& config,
                    const NodeAssignment& a) {
  const std::string scoped =
      "node." + std::to_string(a.index) + "." + a.key;
  if (a.key == "app") {
    spec.app = parse_app_kind(a.value);
  } else if (a.key == "address") {
    spec.address = static_cast<net::NodeId>(to_int(scoped, a.value));
  } else if (a.key == "clock_skew") {
    spec.clock_skew = to_double(scoped, a.value);
  } else if (a.key == "boot_ms") {
    spec.boot_offset =
        sim::Duration::from_milliseconds(to_double(scoped, a.value));
  } else if (a.key == "fidelity") {
    spec.fidelity = parse_fidelity(a.value);
  } else if (a.key == "protocol") {
    // The MAC protocol is cell-wide; a [node.K] entry may only restate it
    // (mixed-protocol cells would need per-node radios the channel model
    // does not arbitrate).
    if (parse_mac_protocol(a.value) != config.protocol()) {
      throw ConfigError(
          "line " + std::to_string(a.line_no) + ": '" + scoped +
          "' conflicts with the cell protocol '" +
          std::string(mac::to_string(config.protocol())) +
          "' (the protocol is cell-wide; set it once under [mac])");
    }
  } else if (a.key == "csma_gts") {
    spec.csma_gts = to_bool(scoped, a.value);
  } else if (a.key == "streaming.sample_rate_hz") {
    if (!spec.streaming) spec.streaming = config.streaming;
    spec.streaming->sample_rate_hz = to_double(scoped, a.value);
  } else if (a.key == "streaming.payload_bytes") {
    if (!spec.streaming) spec.streaming = config.streaming;
    spec.streaming->payload_bytes =
        static_cast<std::size_t>(to_int(scoped, a.value));
  } else if (a.key == "rpeak.sample_rate_hz") {
    if (!spec.rpeak) spec.rpeak = config.rpeak;
    spec.rpeak->sample_rate_hz = to_double(scoped, a.value);
  } else if (a.key == "ecg.heart_rate_bpm") {
    if (!spec.ecg) spec.ecg = config.ecg;
    spec.ecg->heart_rate_bpm = to_double(scoped, a.value);
  } else if (a.key == "storage.enabled") {
    if (!spec.storage) spec.storage = config.storage;
    spec.storage->enabled = to_bool(scoped, a.value);
  } else if (a.key == "storage.kind") {
    if (!spec.storage) spec.storage = config.storage;
    spec.storage->kind = parse_storage_kind(a.value);
  } else if (a.key == "battery.capacity_mah") {
    if (!spec.storage) spec.storage = config.storage;
    spec.storage->battery.capacity_mah = to_double(scoped, a.value);
  } else if (a.key == "capacitor.capacitance_f") {
    if (!spec.storage) spec.storage = config.storage;
    spec.storage->capacitor.capacitance_farads = to_double(scoped, a.value);
  } else if (a.key == "harvest.enabled") {
    if (!spec.storage) spec.storage = config.storage;
    spec.storage->harvest.enabled = to_bool(scoped, a.value);
  } else if (a.key == "harvest.watts") {
    if (!spec.storage) spec.storage = config.storage;
    spec.storage->harvest.watts = to_double(scoped, a.value);
  } else {
    throw ConfigError("line " + std::to_string(a.line_no) +
                      ": unknown key '" + scoped + "'");
  }
}

}  // namespace

BanConfig parse_config(const std::string& text) {
  BanConfig config;
  std::vector<NodeAssignment> node_assignments;
  std::size_t max_node_index = 0;
  bool nodes_set = false;
  // The static cycle is expressed directly in the file; remember it to
  // derive the slot width once max_slots is known.
  double static_cycle_ms = -1.0;
  // Indexed fault sections, keyed so [fault.episode.2] may precede
  // [fault.episode.1] in the file; flattened in index order afterwards.
  std::map<std::size_t, fault::ShadowEpisode> fault_episodes;
  std::map<std::size_t, fault::FaultEvent> fault_events;

  const auto section_index = [](const std::string& section,
                                std::size_t prefix_len, int line_no) {
    const std::string index_token = section.substr(prefix_len);
    std::size_t index = 0;
    try {
      index = static_cast<std::size_t>(to_int("section index", index_token));
    } catch (const ConfigError&) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": bad section index in [" + section + "]");
    }
    if (index == 0) {
      throw ConfigError("line " + std::to_string(line_no) + ": [" + section +
                        "] sections are 1-based");
    }
    return index;
  };

  std::istringstream stream{text};
  std::string line;
  std::string section;
  std::size_t current_node = 0;     ///< 1-based index when inside [node.K]
  std::size_t current_episode = 0;  ///< 1-based, inside [fault.episode.K]
  std::size_t current_event = 0;    ///< 1-based, inside [fault.event.K]
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ConfigError("line " + std::to_string(line_no) +
                          ": malformed section header");
      }
      section = lower(trim(line.substr(1, line.size() - 2)));
      current_node = 0;
      current_episode = 0;
      current_event = 0;
      if (section.rfind("node.", 0) == 0) {
        const std::string index_token = section.substr(5);
        try {
          current_node = static_cast<std::size_t>(
              to_int("node section index", index_token));
        } catch (const ConfigError&) {
          throw ConfigError("line " + std::to_string(line_no) +
                            ": bad node section [" + section + "]");
        }
        if (current_node == 0) {
          throw ConfigError("line " + std::to_string(line_no) +
                            ": node sections are 1-based ([node.1], ...)");
        }
        max_node_index = std::max(max_node_index, current_node);
      } else if (section.rfind("fault.episode.", 0) == 0) {
        current_episode = section_index(section, 14, line_no);
      } else if (section.rfind("fault.event.", 0) == 0) {
        current_event = section_index(section, 12, line_no);
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": expected key = value");
    }
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    const std::string scoped = section + "." + key;

    if (current_node > 0) {
      node_assignments.push_back({current_node, key, value, line_no});
      continue;
    }

    if (current_episode > 0) {
      fault::ShadowEpisode& ep = fault_episodes[current_episode];
      if (key == "node") {
        ep.node = static_cast<std::uint32_t>(to_int(scoped, value));
      } else if (key == "start_ms") {
        ep.start = sim::TimePoint::zero() +
                   sim::Duration::from_milliseconds(to_double(scoped, value));
      } else if (key == "duration_ms") {
        ep.duration =
            sim::Duration::from_milliseconds(to_double(scoped, value));
      } else if (key == "extra_loss_db") {
        ep.extra_loss_db = to_double(scoped, value);
      } else if (key == "fer") {
        ep.fer = to_double(scoped, value);
      } else {
        throw ConfigError("line " + std::to_string(line_no) +
                          ": unknown key '" + scoped + "'");
      }
      continue;
    }
    if (current_event > 0) {
      fault::FaultEvent& ev = fault_events[current_event];
      if (key == "kind") {
        ev.kind = parse_fault_kind(value);
      } else if (key == "node") {
        ev.node = static_cast<std::uint32_t>(to_int(scoped, value));
      } else if (key == "at_ms") {
        ev.at = sim::TimePoint::zero() +
                sim::Duration::from_milliseconds(to_double(scoped, value));
      } else if (key == "down_ms") {
        ev.down = sim::Duration::from_milliseconds(to_double(scoped, value));
      } else if (key == "skew_delta") {
        ev.skew_delta = to_double(scoped, value);
      } else {
        throw ConfigError("line " + std::to_string(line_no) +
                          ": unknown key '" + scoped + "'");
      }
      continue;
    }

    if (scoped == "network.nodes") {
      config.num_nodes = static_cast<std::size_t>(to_int(scoped, value));
      nodes_set = true;
    } else if (scoped == "network.seed") {
      config.seed = static_cast<std::uint64_t>(to_int(scoped, value));
    } else if (scoped == "network.stagger_ms") {
      config.stagger = sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "network.app") {
      config.app = parse_app_kind(value);
    } else if (scoped == "mac.protocol") {
      apply_mac_protocol(config, parse_mac_protocol(value));
    } else if (scoped == "aloha.initial_dither_ms") {
      config.aloha.initial_dither =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "aloha.ack_data") {
      config.aloha.ack_data = to_bool(scoped, value);
    } else if (scoped == "aloha.ack_wait_ms") {
      config.aloha.ack_wait =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "aloha.max_retries") {
      config.aloha.max_retries =
          static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "aloha.backoff_base_ms") {
      config.aloha.backoff_base =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "csma.pan_id") {
      config.csma.pan_id = static_cast<std::uint16_t>(to_int(scoped, value));
    } else if (scoped == "csma.cycle_ms") {
      config.csma.cycle =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "csma.backoff_unit_us") {
      config.csma.backoff_unit =
          sim::Duration::from_microseconds(to_double(scoped, value));
    } else if (scoped == "csma.min_be") {
      config.csma.min_be = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "csma.max_be") {
      config.csma.max_be = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "csma.max_backoffs") {
      config.csma.max_backoffs =
          static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "csma.cca_us") {
      config.csma.cca =
          sim::Duration::from_microseconds(to_double(scoped, value));
    } else if (scoped == "csma.ack_data") {
      config.csma.ack_data = to_bool(scoped, value);
    } else if (scoped == "csma.ack_wait_ms") {
      config.csma.ack_wait =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "csma.max_retries") {
      config.csma.max_retries =
          static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "csma.gts_slots") {
      config.csma.gts_slots = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "csma.gts_slot_ms") {
      config.csma.gts_slot =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "csma.guard_fixed_ms") {
      config.csma.guard_fixed =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "csma.guard_fraction") {
      config.csma.guard_fraction = to_double(scoped, value);
    } else if (scoped == "csma.missed_beacon_limit") {
      config.csma.missed_beacon_limit =
          static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "csma.beacon_timeout_margin_us") {
      config.csma.beacon_timeout_margin =
          sim::Duration::from_microseconds(to_double(scoped, value));
    } else if (scoped == "csma.tx_queue_cap") {
      config.csma.tx_queue_cap =
          static_cast<std::size_t>(to_int(scoped, value));
    } else if (scoped == "tdma.variant") {
      config.tdma.variant = parse_tdma_variant(value);
    } else if (scoped == "tdma.cycle_ms") {
      static_cycle_ms = to_double(scoped, value);
    } else if (scoped == "tdma.slot_ms") {
      config.tdma.slot = sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "tdma.max_slots") {
      config.tdma.max_slots = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "tdma.guard_fixed_ms") {
      config.tdma.guard_fixed =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "tdma.guard_fraction") {
      config.tdma.guard_fraction = to_double(scoped, value);
    } else if (scoped == "tdma.fast_grant") {
      config.tdma.fast_grant = to_bool(scoped, value);
    } else if (scoped == "tdma.ack_data") {
      config.tdma.ack_data = to_bool(scoped, value);
    } else if (scoped == "tdma.max_retries") {
      config.tdma.max_retries = static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "tdma.radio_power_down") {
      config.tdma.radio_power_down = to_bool(scoped, value);
    } else if (scoped == "tdma.reclaim_after_cycles") {
      config.tdma.reclaim_after_cycles =
          static_cast<std::uint32_t>(to_int(scoped, value));
    } else if (scoped == "tdma.missed_beacon_limit") {
      config.tdma.missed_beacon_limit =
          static_cast<std::uint8_t>(to_int(scoped, value));
    } else if (scoped == "tdma.tx_queue_cap") {
      config.tdma.tx_queue_cap =
          static_cast<std::size_t>(to_int(scoped, value));
    } else if (scoped == "tdma.search_listen_ms") {
      config.tdma.search_listen =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "tdma.search_backoff_base_ms") {
      config.tdma.search_backoff_base =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "tdma.search_backoff_factor") {
      config.tdma.search_backoff_factor = to_double(scoped, value);
    } else if (scoped == "tdma.search_backoff_max_ms") {
      config.tdma.search_backoff_max =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.enabled") {
      config.fault_plan.enabled = to_bool(scoped, value);
    } else if (scoped == "fault.fade.enabled") {
      config.fault_plan.fade.enabled = to_bool(scoped, value);
    } else if (scoped == "fault.fade.p_enter") {
      config.fault_plan.fade.p_enter = to_double(scoped, value);
    } else if (scoped == "fault.fade.p_exit") {
      config.fault_plan.fade.p_exit = to_double(scoped, value);
    } else if (scoped == "fault.fade.step_ms") {
      config.fault_plan.fade.step =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.fade.extra_loss_db") {
      config.fault_plan.fade.extra_loss_db = to_double(scoped, value);
    } else if (scoped == "fault.fade.fer") {
      config.fault_plan.fade.fer = to_double(scoped, value);
    } else if (scoped == "fault.interferer.enabled") {
      config.fault_plan.interferer.enabled = to_bool(scoped, value);
    } else if (scoped == "fault.interferer.period_ms") {
      config.fault_plan.interferer.period =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.interferer.burst_ms") {
      config.fault_plan.interferer.burst =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.interferer.fer") {
      config.fault_plan.interferer.fer = to_double(scoped, value);
    } else if (scoped == "fault.crashes.enabled") {
      config.fault_plan.crashes.enabled = to_bool(scoped, value);
    } else if (scoped == "fault.crashes.rate_hz") {
      config.fault_plan.crashes.rate_hz = to_double(scoped, value);
    } else if (scoped == "fault.crashes.check_ms") {
      config.fault_plan.crashes.check =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.crashes.min_down_ms") {
      config.fault_plan.crashes.min_down =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.crashes.max_down_ms") {
      config.fault_plan.crashes.max_down =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.brownout.enabled") {
      config.fault_plan.brownout.enabled = to_bool(scoped, value);
    } else if (scoped == "fault.brownout.capacity_mah") {
      config.fault_plan.brownout.capacity_mah = to_double(scoped, value);
    } else if (scoped == "fault.brownout.esr_ohms") {
      config.fault_plan.brownout.esr_ohms = to_double(scoped, value);
    } else if (scoped == "fault.brownout.brownout_volts") {
      config.fault_plan.brownout.brownout_volts = to_double(scoped, value);
    } else if (scoped == "fault.brownout.check_ms") {
      config.fault_plan.brownout.check =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "fault.brownout.recovery_ms") {
      config.fault_plan.brownout.recovery =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "storage.enabled") {
      config.storage.enabled = to_bool(scoped, value);
    } else if (scoped == "storage.kind") {
      config.storage.kind = parse_storage_kind(value);
    } else if (scoped == "storage.check_ms") {
      config.storage.check =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "battery.capacity_mah") {
      config.storage.battery.capacity_mah = to_double(scoped, value);
    } else if (scoped == "battery.nominal_volts") {
      config.storage.battery.nominal_volts = to_double(scoped, value);
    } else if (scoped == "battery.full_volts") {
      config.storage.battery.full_volts = to_double(scoped, value);
    } else if (scoped == "battery.empty_volts") {
      config.storage.battery.empty_volts = to_double(scoped, value);
    } else if (scoped == "battery.dead_volts") {
      config.storage.battery.dead_volts = to_double(scoped, value);
    } else if (scoped == "battery.rated_c") {
      config.storage.battery.rated_c = to_double(scoped, value);
    } else if (scoped == "battery.peukert_exponent") {
      config.storage.battery.peukert_exponent = to_double(scoped, value);
    } else if (scoped == "capacitor.capacitance_f") {
      config.storage.capacitor.capacitance_farads = to_double(scoped, value);
    } else if (scoped == "capacitor.full_volts") {
      config.storage.capacitor.full_volts = to_double(scoped, value);
    } else if (scoped == "capacitor.turnoff_volts") {
      config.storage.capacitor.turnoff_volts = to_double(scoped, value);
    } else if (scoped == "capacitor.turnon_volts") {
      config.storage.capacitor.turnon_volts = to_double(scoped, value);
    } else if (scoped == "harvest.enabled") {
      config.storage.harvest.enabled = to_bool(scoped, value);
    } else if (scoped == "harvest.profile") {
      config.storage.harvest.profile = parse_harvest_profile(value);
    } else if (scoped == "harvest.watts") {
      config.storage.harvest.watts = to_double(scoped, value);
    } else if (scoped == "harvest.floor_watts") {
      config.storage.harvest.floor_watts = to_double(scoped, value);
    } else if (scoped == "harvest.period_ms") {
      config.storage.harvest.period =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "harvest.duty") {
      config.storage.harvest.duty = to_double(scoped, value);
    } else if (scoped == "harvest.phase_ms") {
      config.storage.harvest.phase =
          sim::Duration::from_milliseconds(to_double(scoped, value));
    } else if (scoped == "streaming.sample_rate_hz") {
      config.streaming.sample_rate_hz = to_double(scoped, value);
    } else if (scoped == "streaming.payload_bytes") {
      config.streaming.payload_bytes =
          static_cast<std::size_t>(to_int(scoped, value));
    } else if (scoped == "rpeak.sample_rate_hz") {
      config.rpeak.sample_rate_hz = to_double(scoped, value);
    } else if (scoped == "ecg.heart_rate_bpm") {
      config.ecg.heart_rate_bpm = to_double(scoped, value);
    } else if (scoped == "eeg.channels") {
      config.eeg.channels = static_cast<std::uint32_t>(to_int(scoped, value));
      config.eeg_signal.channels = config.eeg.channels;
    } else if (scoped == "eeg.sample_rate_hz") {
      config.eeg.sample_rate_hz = to_double(scoped, value);
    } else if (scoped == "eeg.block_samples") {
      config.eeg.block_samples =
          static_cast<std::uint32_t>(to_int(scoped, value));
    } else if (scoped == "link.enabled") {
      config.use_link_model = to_bool(scoped, value);
    } else if (scoped == "link.tx_power_dbm") {
      config.link_budget.tx_power_dbm = to_double(scoped, value);
    } else if (scoped == "link.path_loss_exponent") {
      config.link_budget.path_loss_exponent = to_double(scoped, value);
    } else if (scoped == "link.shadowing_sigma_db") {
      config.link_budget.shadowing_sigma_db = to_double(scoped, value);
    } else {
      throw ConfigError("line " + std::to_string(line_no) +
                        ": unknown key '" + scoped + "'");
    }
  }

  if (static_cycle_ms > 0 && config.tdma.variant == mac::TdmaVariant::kStatic) {
    config.tdma = [&] {
      mac::TdmaConfig derived = config.tdma;
      const auto plan = mac::TdmaConfig::static_plan(
          sim::Duration::from_milliseconds(static_cycle_ms),
          config.tdma.max_slots);
      derived.slot = plan.slot;
      return derived;
    }();
  }

  // Resolve the roster last so [node.K] overrides see the final globals no
  // matter where the sections appear in the file.
  if (max_node_index > 0) {
    if (nodes_set && max_node_index > config.num_nodes) {
      throw ConfigError("[node." + std::to_string(max_node_index) +
                        "] exceeds network.nodes = " +
                        std::to_string(config.num_nodes));
    }
    const std::size_t count =
        nodes_set ? config.num_nodes : max_node_index;
    config.roster.assign(count, NodeSpec{});
    for (const NodeAssignment& a : node_assignments) {
      apply_node_key(config.roster[a.index - 1], config, a);
    }
  }

  for (const auto& [index, episode] : fault_episodes) {
    config.fault_plan.episodes.push_back(episode);
  }
  for (const auto& [index, event] : fault_events) {
    config.fault_plan.events.push_back(event);
  }

  // Reject nonsense before it becomes a mysteriously-degenerate run.
  if (const std::string problem = config.tdma.validate(); !problem.empty()) {
    throw ConfigError("[tdma] " + problem);
  }
  if (config.mac == MacKind::kCsmaCa) {
    try {
      config.csma.validate();
    } catch (const std::invalid_argument& e) {
      throw ConfigError(std::string("[csma] ") + e.what());
    }
  }
  if (const std::string problem = config.fault_plan.validate();
      !problem.empty()) {
    throw ConfigError(problem);
  }
  if (const std::string problem = config.storage.validate();
      !problem.empty()) {
    throw ConfigError(problem);
  }
  for (std::size_t i = 0; i < config.roster.size(); ++i) {
    if (!config.roster[i].storage) continue;
    if (const std::string problem = config.roster[i].storage->validate();
        !problem.empty()) {
      throw ConfigError("[node." + std::to_string(i + 1) + "] " + problem);
    }
  }
  return config;
}

std::string serialize_config(const BanConfig& config) {
  std::ostringstream out;
  out << "[network]\n";
  out << "nodes = " << config.effective_nodes() << "\n";
  out << "seed = " << config.seed << "\n";
  out << "stagger_ms = " << config.stagger.to_milliseconds() << "\n";
  out << "app = " << to_string(config.app) << "\n\n";

  // [mac] only for non-default protocols: legacy TDMA configs round-trip
  // byte-identically with or without the protocol seam.
  if (config.mac != MacKind::kTdma) {
    out << "[mac]\n";
    out << "protocol = " << mac::to_string(config.protocol()) << "\n\n";
  }

  out << "[tdma]\n";
  out << "variant = " << to_string(config.tdma.variant) << "\n";
  if (config.tdma.variant == mac::TdmaVariant::kStatic) {
    out << "cycle_ms = " << config.tdma.static_cycle().to_milliseconds()
        << "\n";
  }
  out << "slot_ms = " << config.tdma.slot.to_milliseconds() << "\n";
  out << "max_slots = " << static_cast<int>(config.tdma.max_slots) << "\n";
  out << "guard_fixed_ms = " << config.tdma.guard_fixed.to_milliseconds()
      << "\n";
  out << "guard_fraction = " << config.tdma.guard_fraction << "\n";
  out << "fast_grant = " << (config.tdma.fast_grant ? "true" : "false") << "\n";
  out << "ack_data = " << (config.tdma.ack_data ? "true" : "false") << "\n";
  out << "max_retries = " << static_cast<int>(config.tdma.max_retries) << "\n";
  out << "radio_power_down = "
      << (config.tdma.radio_power_down ? "true" : "false") << "\n";
  out << "reclaim_after_cycles = " << config.tdma.reclaim_after_cycles
      << "\n";
  out << "missed_beacon_limit = "
      << static_cast<int>(config.tdma.missed_beacon_limit) << "\n";
  out << "tx_queue_cap = " << config.tdma.tx_queue_cap << "\n";
  out << "search_listen_ms = " << config.tdma.search_listen.to_milliseconds()
      << "\n";
  out << "search_backoff_base_ms = "
      << config.tdma.search_backoff_base.to_milliseconds() << "\n";
  out << "search_backoff_factor = " << config.tdma.search_backoff_factor
      << "\n";
  out << "search_backoff_max_ms = "
      << config.tdma.search_backoff_max.to_milliseconds() << "\n\n";

  if (config.mac == MacKind::kAloha) {
    out << "[aloha]\n";
    out << "initial_dither_ms = "
        << config.aloha.initial_dither.to_milliseconds() << "\n";
    out << "ack_data = " << (config.aloha.ack_data ? "true" : "false")
        << "\n";
    out << "ack_wait_ms = " << config.aloha.ack_wait.to_milliseconds()
        << "\n";
    out << "max_retries = " << static_cast<int>(config.aloha.max_retries)
        << "\n";
    out << "backoff_base_ms = "
        << config.aloha.backoff_base.to_milliseconds() << "\n\n";
  }
  if (config.mac == MacKind::kCsmaCa) {
    out << "[csma]\n";
    out << "pan_id = " << config.csma.pan_id << "\n";
    out << "cycle_ms = " << config.csma.cycle.to_milliseconds() << "\n";
    out << "backoff_unit_us = "
        << config.csma.backoff_unit.to_microseconds() << "\n";
    out << "min_be = " << static_cast<int>(config.csma.min_be) << "\n";
    out << "max_be = " << static_cast<int>(config.csma.max_be) << "\n";
    out << "max_backoffs = " << static_cast<int>(config.csma.max_backoffs)
        << "\n";
    out << "cca_us = " << config.csma.cca.to_microseconds() << "\n";
    out << "ack_data = " << (config.csma.ack_data ? "true" : "false") << "\n";
    out << "ack_wait_ms = " << config.csma.ack_wait.to_milliseconds() << "\n";
    out << "max_retries = " << static_cast<int>(config.csma.max_retries)
        << "\n";
    out << "gts_slots = " << static_cast<int>(config.csma.gts_slots) << "\n";
    out << "gts_slot_ms = " << config.csma.gts_slot.to_milliseconds() << "\n";
    out << "guard_fixed_ms = " << config.csma.guard_fixed.to_milliseconds()
        << "\n";
    out << "guard_fraction = " << config.csma.guard_fraction << "\n";
    out << "missed_beacon_limit = "
        << static_cast<int>(config.csma.missed_beacon_limit) << "\n";
    out << "beacon_timeout_margin_us = "
        << config.csma.beacon_timeout_margin.to_microseconds() << "\n";
    out << "tx_queue_cap = " << config.csma.tx_queue_cap << "\n\n";
  }

  out << "[streaming]\n";
  out << "sample_rate_hz = " << config.streaming.sample_rate_hz << "\n";
  out << "payload_bytes = " << config.streaming.payload_bytes << "\n\n";

  out << "[rpeak]\n";
  out << "sample_rate_hz = " << config.rpeak.sample_rate_hz << "\n\n";

  out << "[ecg]\n";
  out << "heart_rate_bpm = " << config.ecg.heart_rate_bpm << "\n\n";

  out << "[eeg]\n";
  out << "channels = " << config.eeg.channels << "\n";
  out << "sample_rate_hz = " << config.eeg.sample_rate_hz << "\n";
  out << "block_samples = " << config.eeg.block_samples << "\n\n";

  out << "[link]\n";
  out << "enabled = " << (config.use_link_model ? "true" : "false") << "\n";
  out << "tx_power_dbm = " << config.link_budget.tx_power_dbm << "\n";
  out << "path_loss_exponent = " << config.link_budget.path_loss_exponent
      << "\n";
  out << "shadowing_sigma_db = " << config.link_budget.shadowing_sigma_db
      << "\n";

  // Fault sections only when a plan is carried: fault-free configs
  // round-trip to byte-identical text with or without the fault subsystem.
  const fault::FaultPlan& plan = config.fault_plan;
  if (plan.enabled) {
    out << "\n[fault]\n";
    out << "enabled = true\n";
    if (plan.fade.enabled) {
      out << "\n[fault.fade]\n";
      out << "enabled = true\n";
      out << "p_enter = " << plan.fade.p_enter << "\n";
      out << "p_exit = " << plan.fade.p_exit << "\n";
      out << "step_ms = " << plan.fade.step.to_milliseconds() << "\n";
      out << "extra_loss_db = " << plan.fade.extra_loss_db << "\n";
      out << "fer = " << plan.fade.fer << "\n";
    }
    if (plan.interferer.enabled) {
      out << "\n[fault.interferer]\n";
      out << "enabled = true\n";
      out << "period_ms = " << plan.interferer.period.to_milliseconds()
          << "\n";
      out << "burst_ms = " << plan.interferer.burst.to_milliseconds() << "\n";
      out << "fer = " << plan.interferer.fer << "\n";
    }
    if (plan.crashes.enabled) {
      out << "\n[fault.crashes]\n";
      out << "enabled = true\n";
      out << "rate_hz = " << plan.crashes.rate_hz << "\n";
      out << "check_ms = " << plan.crashes.check.to_milliseconds() << "\n";
      out << "min_down_ms = " << plan.crashes.min_down.to_milliseconds()
          << "\n";
      out << "max_down_ms = " << plan.crashes.max_down.to_milliseconds()
          << "\n";
    }
    if (plan.brownout.enabled) {
      out << "\n[fault.brownout]\n";
      out << "enabled = true\n";
      out << "capacity_mah = " << plan.brownout.capacity_mah << "\n";
      out << "esr_ohms = " << plan.brownout.esr_ohms << "\n";
      out << "brownout_volts = " << plan.brownout.brownout_volts << "\n";
      out << "check_ms = " << plan.brownout.check.to_milliseconds() << "\n";
      out << "recovery_ms = " << plan.brownout.recovery.to_milliseconds()
          << "\n";
    }
    for (std::size_t i = 0; i < plan.episodes.size(); ++i) {
      const fault::ShadowEpisode& ep = plan.episodes[i];
      out << "\n[fault.episode." << (i + 1) << "]\n";
      out << "node = " << ep.node << "\n";
      out << "start_ms = " << ep.start.since_epoch().to_milliseconds() << "\n";
      out << "duration_ms = " << ep.duration.to_milliseconds() << "\n";
      out << "extra_loss_db = " << ep.extra_loss_db << "\n";
      out << "fer = " << ep.fer << "\n";
    }
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const fault::FaultEvent& ev = plan.events[i];
      out << "\n[fault.event." << (i + 1) << "]\n";
      out << "kind = " << fault::to_string(ev.kind) << "\n";
      out << "node = " << ev.node << "\n";
      out << "at_ms = " << ev.at.since_epoch().to_milliseconds() << "\n";
      if (ev.kind == fault::FaultKind::kCrash) {
        out << "down_ms = " << ev.down.to_milliseconds() << "\n";
      }
      if (ev.kind == fault::FaultKind::kSkewStep) {
        out << "skew_delta = " << ev.skew_delta << "\n";
      }
    }
  }

  // Storage sections only when a store is carried, for the same reason the
  // fault sections are conditional: legacy configs round-trip byte-for-byte.
  const hw::StorageParams& storage = config.storage;
  if (storage.enabled) {
    out << "\n[storage]\n";
    out << "enabled = true\n";
    out << "kind = " << hw::to_string(storage.kind) << "\n";
    out << "check_ms = " << storage.check.to_milliseconds() << "\n";
    if (storage.kind == hw::StorageKind::kBattery) {
      out << "\n[battery]\n";
      out << "capacity_mah = " << storage.battery.capacity_mah << "\n";
      out << "nominal_volts = " << storage.battery.nominal_volts << "\n";
      out << "full_volts = " << storage.battery.full_volts << "\n";
      out << "empty_volts = " << storage.battery.empty_volts << "\n";
      out << "dead_volts = " << storage.battery.dead_volts << "\n";
      out << "rated_c = " << storage.battery.rated_c << "\n";
      out << "peukert_exponent = " << storage.battery.peukert_exponent
          << "\n";
    } else {
      out << "\n[capacitor]\n";
      out << "capacitance_f = " << storage.capacitor.capacitance_farads
          << "\n";
      out << "full_volts = " << storage.capacitor.full_volts << "\n";
      out << "turnoff_volts = " << storage.capacitor.turnoff_volts << "\n";
      out << "turnon_volts = " << storage.capacitor.turnon_volts << "\n";
    }
    if (storage.harvest.enabled) {
      out << "\n[harvest]\n";
      out << "enabled = true\n";
      out << "profile = " << hw::to_string(storage.harvest.profile) << "\n";
      out << "watts = " << storage.harvest.watts << "\n";
      out << "floor_watts = " << storage.harvest.floor_watts << "\n";
      out << "period_ms = " << storage.harvest.period.to_milliseconds()
          << "\n";
      out << "duty = " << storage.harvest.duty << "\n";
      out << "phase_ms = " << storage.harvest.phase.to_milliseconds() << "\n";
    }
  }

  for (std::size_t i = 0; i < config.roster.size(); ++i) {
    const NodeSpec& spec = config.roster[i];
    out << "\n[node." << (i + 1) << "]\n";
    if (spec.app) out << "app = " << to_string(*spec.app) << "\n";
    if (spec.address != 0) out << "address = " << spec.address << "\n";
    if (spec.clock_skew) out << "clock_skew = " << *spec.clock_skew << "\n";
    if (spec.boot_offset) {
      out << "boot_ms = " << spec.boot_offset->to_milliseconds() << "\n";
    }
    if (spec.fidelity) out << "fidelity = " << to_string(*spec.fidelity) << "\n";
    if (spec.csma_gts) {
      out << "csma_gts = " << (*spec.csma_gts ? "true" : "false") << "\n";
    }
    if (spec.streaming) {
      out << "streaming.sample_rate_hz = " << spec.streaming->sample_rate_hz
          << "\n";
      out << "streaming.payload_bytes = " << spec.streaming->payload_bytes
          << "\n";
    }
    if (spec.rpeak) {
      out << "rpeak.sample_rate_hz = " << spec.rpeak->sample_rate_hz << "\n";
    }
    if (spec.ecg) {
      out << "ecg.heart_rate_bpm = " << spec.ecg->heart_rate_bpm << "\n";
    }
    if (spec.storage) {
      out << "storage.enabled = "
          << (spec.storage->enabled ? "true" : "false") << "\n";
      out << "storage.kind = " << hw::to_string(spec.storage->kind) << "\n";
      if (spec.storage->kind == hw::StorageKind::kBattery) {
        out << "battery.capacity_mah = " << spec.storage->battery.capacity_mah
            << "\n";
      } else {
        out << "capacitor.capacitance_f = "
            << spec.storage->capacitor.capacitance_farads << "\n";
      }
      if (spec.storage->harvest.enabled) {
        out << "harvest.enabled = true\n";
        out << "harvest.watts = " << spec.storage->harvest.watts << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace bansim::core
