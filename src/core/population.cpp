#include "core/population.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/energy_store.hpp"
#include "sim/rng.hpp"
#include "sim/scenario_runner.hpp"

namespace bansim::core {

std::string PopulationConfig::validate() const {
  if (hr_sd_bpm < 0) return "hr_sd_bpm must be >= 0";
  if (hr_lo_bpm <= 0 || hr_hi_bpm < hr_lo_bpm) {
    return "heart-rate clamp must satisfy 0 < lo <= hi";
  }
  const auto ordered = [](double lo, double hi) { return lo <= hi; };
  if (!ordered(rr_variability_lo, rr_variability_hi) ||
      rr_variability_lo < 0) {
    return "rr_variability range must satisfy 0 <= lo <= hi";
  }
  if (!ordered(r_amplitude_lo_volts, r_amplitude_hi_volts)) {
    return "r_amplitude range must satisfy lo <= hi";
  }
  if (!ordered(noise_lo_volts, noise_hi_volts) || noise_lo_volts < 0) {
    return "noise range must satisfy 0 <= lo <= hi";
  }
  if (motion) {
    if (motion_episodes_min == 0) {
      return "motion_episodes_min must be >= 1 (an episode-free patient "
             "would change the fault layer's shape)";
    }
    if (motion_episodes_max < motion_episodes_min) {
      return "motion episode count range must satisfy min <= max";
    }
    if (motion_duration_max < motion_duration_min) {
      return "motion duration range must satisfy min <= max";
    }
    if (!ordered(motion_extra_loss_db_min, motion_extra_loss_db_max)) {
      return "motion extra-loss range must satisfy min <= max";
    }
    if (!ordered(motion_fer_min, motion_fer_max) || motion_fer_min < 0 ||
        motion_fer_max > 1) {
      return "motion fer range must satisfy 0 <= min <= max <= 1";
    }
  }
  if (capacity_scale_min <= 0 || capacity_scale_max < capacity_scale_min) {
    return "capacity scale range must satisfy 0 < min <= max";
  }
  return {};
}

PopulationGenerator::PopulationGenerator(BanConfig base,
                                         PopulationConfig population)
    : base_{std::move(base)}, population_{std::move(population)} {
  if (const std::string problem = population_.validate(); !problem.empty()) {
    throw std::invalid_argument("PopulationConfig: " + problem);
  }
}

BanConfig PopulationGenerator::patient(std::size_t index) const {
  const std::string tag = std::to_string(index);
  BanConfig cfg = base_;
  cfg.seed = base_.seed ^ sim::fnv1a64("pop/patient/" + tag);

  sim::Rng heart = sim::Rng::stream(base_.seed, "pop/heart/" + tag);
  cfg.ecg.heart_rate_bpm =
      std::clamp(heart.normal(population_.hr_mean_bpm, population_.hr_sd_bpm),
                 population_.hr_lo_bpm, population_.hr_hi_bpm);

  sim::Rng morph = sim::Rng::stream(base_.seed, "pop/morphology/" + tag);
  cfg.ecg.rr_variability = morph.uniform(population_.rr_variability_lo,
                                         population_.rr_variability_hi);
  cfg.ecg.r_amplitude_volts = morph.uniform(population_.r_amplitude_lo_volts,
                                            population_.r_amplitude_hi_volts);
  cfg.ecg.noise_volts =
      morph.uniform(population_.noise_lo_volts, population_.noise_hi_volts);

  if (population_.motion) {
    sim::Rng motion = sim::Rng::stream(base_.seed, "pop/motion/" + tag);
    const auto count = static_cast<std::uint32_t>(motion.uniform_int(
        population_.motion_episodes_min, population_.motion_episodes_max));
    for (std::uint32_t e = 0; e < count; ++e) {
      fault::ShadowEpisode episode;
      // 0 shadows every node; 1..N a single roster position.
      episode.node = static_cast<std::uint32_t>(motion.uniform_int(
          0, static_cast<std::int64_t>(cfg.effective_nodes())));
      episode.start =
          sim::TimePoint::zero() +
          sim::Duration::from_seconds(motion.uniform(
              0.0, population_.motion_window.to_seconds()));
      episode.duration = sim::Duration::from_seconds(
          motion.uniform(population_.motion_duration_min.to_seconds(),
                         population_.motion_duration_max.to_seconds()));
      episode.extra_loss_db = motion.uniform(
          population_.motion_extra_loss_db_min,
          population_.motion_extra_loss_db_max);
      episode.fer =
          motion.uniform(population_.motion_fer_min, population_.motion_fer_max);
      cfg.fault_plan.episodes.push_back(episode);
    }
    // A motion population always carries >= 1 episode per patient, so this
    // switch is constant across the population (reset-compatible shape).
    cfg.fault_plan.enabled = true;
  }

  sim::Rng storage = sim::Rng::stream(base_.seed, "pop/storage/" + tag);
  const double scale = storage.uniform(population_.capacity_scale_min,
                                       population_.capacity_scale_max);
  const auto rescale = [scale](hw::StorageParams& params) {
    if (!params.enabled) return;
    params.battery.capacity_mah *= scale;
    params.capacitor.capacitance_farads *= scale;
  };
  rescale(cfg.storage);
  for (NodeSpec& spec : cfg.roster) {
    if (spec.storage) rescale(*spec.storage);
  }
  return cfg;
}

namespace {

struct ComponentJoules {
  double mcu{0};
  double radio{0};
  double asic{0};
  [[nodiscard]] double total() const { return mcu + radio + asic; }
};

ComponentJoules node_joules(NodeStack& node, sim::TimePoint now) {
  hw::Board& board = node.board();
  ComponentJoules j;
  j.mcu = board.mcu().meter().total_energy(now);
  j.radio = board.radio().meter().total_energy(now);
  j.asic = board.asic().energy(now);
  return j;
}

}  // namespace

energy::CampaignRunRow PatientRunner::run(const PopulationGenerator& generator,
                                          const PatientWindow& window,
                                          std::size_t index) {
  const BanConfig config = generator.patient(index);
  if (!net_) {
    net_ = std::make_unique<BanNetwork>(config);
  } else {
    net_->reset(config);
    ++runs_reused_;
  }
  BanNetwork& net = *net_;
  net.start();

  energy::CampaignRunRow row;
  row.seed = config.seed;
  row.joined = net.run_until_joined(
      window.settle, sim::TimePoint::zero() + window.join_deadline);
  if (!row.joined) return row;

  const std::size_t nodes = net.num_nodes();
  const sim::TimePoint t0 = net.simulator().now();
  // run_until_joined returns settle past the join instant; subtracting the
  // settle recovers the join latency itself.
  row.join_ms = (t0.since_epoch() - window.settle).to_seconds() * 1e3;
  ComponentJoules before_sum;
  std::uint64_t packets_before = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    const ComponentJoules j = node_joules(net.node(n), t0);
    before_sum.mcu += j.mcu;
    before_sum.radio += j.radio;
    before_sum.asic += j.asic;
    packets_before += net.node(n).mac_base().stats_snapshot().data_sent;
  }
  const std::uint64_t delivered_before =
      net.base_station_app().total_packets();

  net.run_until(t0 + window.measure);
  const sim::TimePoint t1 = net.simulator().now();
  const double window_s = (t1 - t0).to_seconds();

  double lifetime = std::numeric_limits<double>::infinity();
  ComponentJoules after_sum;
  std::uint64_t packets_after = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    const ComponentJoules j = node_joules(net.node(n), t1);
    after_sum.mcu += j.mcu;
    after_sum.radio += j.radio;
    after_sum.asic += j.asic;
    packets_after += net.node(n).mac_base().stats_snapshot().data_sent;

    const hw::EnergyStore* store = net.node(n).energy_store();
    if (store == nullptr) continue;
    double hours;
    if (store->depleted()) {
      hours = t1.to_seconds() / 3600.0;  // died inside the horizon
    } else {
      const ComponentJoules j0 = node_joules(net.node(n), t0);
      const double watts =
          window_s > 0 ? (j.total() - j0.total()) / window_s : 0.0;
      const hw::StorageParams& params = store->params();
      const double harvest_watts =
          params.harvest.enabled ? params.harvest.average_watts() : 0.0;
      hours = hw::projected_hours(params, watts, harvest_watts);
    }
    lifetime = std::min(lifetime, hours);
  }

  row.mcu_mj = (after_sum.mcu - before_sum.mcu) * 1e3;
  row.radio_mj = (after_sum.radio - before_sum.radio) * 1e3;
  row.asic_mj = (after_sum.asic - before_sum.asic) * 1e3;
  row.total_mj = row.mcu_mj + row.radio_mj + row.asic_mj;
  row.data_packets = packets_after - packets_before;
  row.delivered_packets =
      net.base_station_app().total_packets() - delivered_before;
  row.lifetime_hours = lifetime;
  return row;
}

PopulationCampaignResult run_population_campaign(
    const PopulationGenerator& generator,
    const PopulationCampaignOptions& options) {
  sim::ScenarioRunner runner{options.jobs};

  const PatientWindow window{options.measure, options.settle,
                             options.join_deadline};
  const std::function<energy::CampaignRunRow(PatientRunner&, std::size_t)>
      one_patient = [&](PatientRunner& cell, std::size_t index) {
        return cell.run(generator, window, index);
      };

  const std::vector<energy::CampaignRunRow> rows =
      runner.run_with_context<energy::CampaignRunRow, PatientRunner>(
          options.patients, one_patient);

  PopulationCampaignResult result;
  result.columns.reserve(rows.size());
  for (const energy::CampaignRunRow& row : rows) {
    result.columns.append_run(row);
    if (!row.joined) ++result.failed_joins;
  }
  result.lifetime_cdf =
      energy::MetricCdf::build(result.columns.lifetime_hours, options.cdf_bins);
  result.runs_reused = runner.summary().runs_reused;
  result.workers = runner.summary().workers;
  result.wall_seconds = runner.summary().wall_seconds;
  return result;
}

std::string PopulationCampaignResult::render() const {
  std::string out;
  char line[160];
  const std::size_t patients = columns.runs();
  const double rate =
      wall_seconds > 0 ? static_cast<double>(patients) / wall_seconds : 0.0;
  std::snprintf(line, sizeof(line),
                "population campaign: %zu patients, %zu failed joins, "
                "%u workers, %zu runs reused, %.2f s (%.1f runs/s)\n",
                patients, failed_joins, workers, runs_reused, wall_seconds,
                rate);
  out += line;

  std::vector<double> scratch;
  const auto pct = [&](std::span<const double> column, double q) {
    return energy::column_percentile(column, q, scratch);
  };
  std::snprintf(line, sizeof(line),
                "  ward energy (mJ): mean %.3f  p5 %.3f  p50 %.3f  p95 %.3f\n",
                energy::column_mean(columns.total_mj),
                pct(columns.total_mj, 0.05), pct(columns.total_mj, 0.50),
                pct(columns.total_mj, 0.95));
  out += line;

  if (lifetime_cdf.count > 0) {
    std::snprintf(
        line, sizeof(line),
        "  lifetime (h): p5 %.3f  p50 %.3f  p95 %.3f  (%llu never deplete)\n",
        lifetime_cdf.percentile(0.05), lifetime_cdf.percentile(0.50),
        lifetime_cdf.percentile(0.95),
        static_cast<unsigned long long>(lifetime_cdf.unbounded));
    out += line;
  } else {
    out += "  lifetime: every patient projects an unbounded lifetime "
           "(no store depletes)\n";
  }
  return out;
}

}  // namespace bansim::core
