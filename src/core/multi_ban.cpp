#include "core/multi_ban.hpp"

#include <cassert>
#include <string>

namespace bansim::core {

MultiBan::MultiBan(std::vector<BanConfig> cells)
    : context_{cells.empty() ? 1 : cells.front().seed},
      channel_{context_},
      nominal_costs_{os::CycleCostModel::platform_defaults()} {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t other = 0; other < c; ++other) {
      assert(cells[c].tdma.pan_id != cells[other].tdma.pan_id &&
             "coexisting cells need distinct pan ids");
    }
    auto cell = std::make_unique<Cell>();
    cell->config = cells[c];

    CellPlan plan = make_cell_plan(cell->config);
    const std::string suffix = std::to_string(c);
    plan.bs_name = "bs" + suffix;
    plan.streams.skew = "skew/cell" + suffix;
    plan.streams.stagger = "stagger/" + suffix;
    plan.streams.mac_prefix = "mac/cell" + suffix + "/";
    plan.streams.signal_prefix = "ecg/cell" + suffix + "/";
    plan.streams.key_streams_by_name = false;

    cell->built = NetworkBuilder::build_cell(context_, channel_, plan, probe_,
                                             nominal_costs_);
    auto* app = &cell->built.bs->app();
    cell->built.bs->set_data_handler(
        [app](net::NodeId src, std::span<const std::uint8_t> payload,
              sim::TimePoint when) { app->on_data(src, payload, when); });
    cells_.push_back(std::move(cell));
  }
}

void MultiBan::start() {
  for (auto& cell : cells_) {
    NetworkBuilder::start_cell(context_, cell->built);
  }
}

void MultiBan::run_until(sim::TimePoint until) {
  context_.simulator.run_until(until);
}

bool MultiBan::all_joined() const {
  for (const auto& cell : cells_) {
    if (!cell->built.all_joined()) return false;
  }
  return true;
}

bool MultiBan::run_until_joined(sim::Duration settle, sim::TimePoint deadline) {
  const sim::Duration poll = sim::Duration::milliseconds(50);
  while (!all_joined()) {
    if (context_.simulator.now() >= deadline) return false;
    context_.simulator.run_until(context_.simulator.now() + poll);
  }
  context_.simulator.run_until(context_.simulator.now() + settle);
  return true;
}

}  // namespace bansim::core
