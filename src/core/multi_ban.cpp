#include "core/multi_ban.hpp"

#include <cassert>

namespace bansim::core {

MultiBan::MultiBan(std::vector<BanConfig> cells)
    : channel_{simulator_, tracer_},
      nominal_costs_{os::CycleCostModel::platform_defaults()} {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t other = 0; other < c; ++other) {
      assert(cells[c].tdma.pan_id != cells[other].tdma.pan_id &&
             "coexisting cells need distinct pan ids");
    }
    auto cell = std::make_unique<Cell>();
    cell->config = cells[c];
    const BanConfig& cfg = cell->config;
    const os::CycleCostModel* nominal =
        cfg.fidelity == Fidelity::kModel ? &nominal_costs_ : nullptr;

    sim::Rng skew_rng =
        sim::Rng::stream(cfg.seed, "skew/cell" + std::to_string(c));
    const double tol =
        apply_fidelity(cfg.board, cfg.fidelity).mcu.clock_tolerance;

    cell->bs_board = std::make_unique<hw::Board>(
        simulator_, tracer_, channel_, "bs" + std::to_string(c),
        apply_fidelity(cfg.board, cfg.fidelity), skew_rng.uniform(-tol, tol));
    cell->bs_os = std::make_unique<os::NodeOs>(simulator_, tracer_,
                                               *cell->bs_board, probe_,
                                               nominal);
    cell->bs_mac = std::make_unique<mac::BaseStationMac>(
        simulator_, tracer_, *cell->bs_os, cfg.tdma);
    auto* app = &cell->bs_app;
    cell->bs_mac->set_data_handler(
        [app](net::NodeId src, std::span<const std::uint8_t> payload,
              sim::TimePoint when) { app->on_data(src, payload, when); });

    for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
      const auto address =
          static_cast<net::NodeId>(cfg.address_offset + i + 1);
      cell->nodes.push_back(std::make_unique<SensorNode>(
          simulator_, tracer_, channel_, cfg, address,
          skew_rng.uniform(-tol, tol),
          sim::Rng::stream(cfg.seed, "mac/cell" + std::to_string(c) + "/" +
                                         std::to_string(address)),
          sim::Rng::stream(cfg.seed, "ecg/cell" + std::to_string(c) + "/" +
                                         std::to_string(address)),
          probe_, nominal));
    }
    cells_.push_back(std::move(cell));
  }
}

void MultiBan::start() {
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cells_[c]->bs_mac->start();
    sim::Rng stagger =
        sim::Rng::stream(cells_[c]->config.seed, "stagger/" + std::to_string(c));
    for (auto& node : cells_[c]->nodes) {
      const double offset_s =
          stagger.uniform(0.0, cells_[c]->config.stagger.to_seconds());
      simulator_.schedule_in(sim::Duration::from_seconds(offset_s),
                             [n = node.get()] { n->start(); });
    }
  }
}

void MultiBan::run_until(sim::TimePoint until) { simulator_.run_until(until); }

bool MultiBan::all_joined() const {
  for (const auto& cell : cells_) {
    for (const auto& node : cell->nodes) {
      if (!node->mac().joined()) return false;
    }
  }
  return true;
}

bool MultiBan::run_until_joined(sim::Duration settle, sim::TimePoint deadline) {
  const sim::Duration poll = sim::Duration::milliseconds(50);
  while (!all_joined()) {
    if (simulator_.now() >= deadline) return false;
    simulator_.run_until(simulator_.now() + poll);
  }
  simulator_.run_until(simulator_.now() + settle);
  return true;
}

}  // namespace bansim::core
