#include "core/power_profile.hpp"

namespace bansim::core {

energy::PowerTrace capture_power_profile(BanNetwork& network,
                                         std::size_t index,
                                         const PowerProfileOptions& options) {
  energy::PowerTrace trace;
  auto& board = network.node(index).board();

  auto total_energy = [&](sim::TimePoint at) {
    double joules = board.mcu().meter().total_energy(at) +
                    board.radio().meter().total_energy(at);
    if (options.include_asic) joules += board.asic().energy(at);
    return joules;
  };

  sim::TimePoint t = network.simulator().now();
  const sim::TimePoint end = t + options.window;
  double previous = total_energy(t);
  while (t < end) {
    const sim::TimePoint next = t + options.step;
    network.run_until(next);
    const double now_joules = total_energy(next);
    trace.step(t, (now_joules - previous) / options.step.to_seconds());
    previous = now_joules;
    t = next;
  }
  return trace;
}

}  // namespace bansim::core
