// Experiment harness: runs a BAN scenario at a chosen fidelity, applies the
// paper's measurement protocol (join the network, then measure a fixed
// window — 60 s in all of Tables 1-4), and extracts per-component energy
// for the node under test.
#pragma once

#include <optional>
#include <string>

#include "core/ban_network.hpp"
#include "energy/energy_report.hpp"

namespace bansim::core {

/// Result of one scenario run for one focus node.
struct ScenarioResult {
  double radio_mj{0};
  double mcu_mj{0};
  double asic_mj{0};
  double total_mj{0};            ///< radio + mcu (paper's validation scope)
  std::uint64_t data_packets{0}; ///< frames the focus node transmitted
  std::uint64_t beacons_received{0};
  std::uint64_t beacons_missed{0};
  std::uint64_t collisions{0};   ///< channel-wide
  std::uint64_t events{0};       ///< kernel events executed over the whole run
  sim::Duration measured{};      ///< actual measurement window
  bool joined{false};            ///< network formed before the deadline
};

struct MeasurementProtocol {
  sim::Duration measure{sim::Duration::seconds(60)};
  sim::Duration settle{sim::Duration::seconds(2)};
  sim::Duration join_deadline{sim::Duration::seconds(30)};
  std::size_t focus_node{0};  ///< index of the validated node (the ECG node)
};

/// Runs `config` under `protocol` and reports the focus node's energy over
/// the measurement window (post-join steady state, as the paper measures).
[[nodiscard]] ScenarioResult run_scenario(const BanConfig& config,
                                          const MeasurementProtocol& protocol,
                                          os::ModelProbe* probe = nullptr);

/// Runs the scenario at both fidelities and builds one validation-table row.
[[nodiscard]] energy::ValidationRow validation_row(
    const BanConfig& config, const MeasurementProtocol& protocol,
    std::string parameter_label, double cycle_ms);

}  // namespace bansim::core
