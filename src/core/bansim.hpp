// Umbrella public header of the BAN simulation library.
//
// Pulls in the pieces a downstream user needs to (a) build and run a Body
// Area Network of OS-based sensor nodes, (b) extract per-component energy
// figures, and (c) reproduce the paper's validation experiments.
#pragma once

#include "core/ban_network.hpp"        // BanNetwork, BanConfig, SensorNode
#include "core/experiment.hpp"         // run_scenario, validation_row
#include "core/fidelity.hpp"           // Fidelity
#include "core/paper_experiments.hpp"  // table1..table4, figure4
#include "core/population.hpp"         // PopulationGenerator, campaigns
#include "core/timeline.hpp"           // render_timeline
#include "energy/energy_report.hpp"    // tables / CSV rendering
#include "mac/tdma_config.hpp"         // TdmaConfig
#include "sim/time.hpp"                // Duration / TimePoint literals
