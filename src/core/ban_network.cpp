#include "core/ban_network.hpp"

#include <cassert>
#include <stdexcept>

namespace bansim::core {

CellPlan make_cell_plan(const BanConfig& config) {
  CellPlan plan;
  plan.seed = config.seed;
  plan.mac = config.mac;
  plan.tdma = config.tdma;
  plan.aloha = config.aloha;
  plan.csma = config.csma;
  plan.address_offset = config.address_offset;
  plan.stagger = config.stagger;
  plan.app = config.app;
  plan.board = config.board;
  plan.fidelity = config.fidelity;
  plan.streaming = config.streaming;
  plan.rpeak = config.rpeak;
  plan.ecg = config.ecg;
  plan.eeg = config.eeg;
  plan.eeg_signal = config.eeg_signal;
  plan.storage = config.storage;
  plan.roster = config.roster;
  if (plan.roster.empty()) plan.roster.resize(config.num_nodes);
  // num_nodes = 0 is an explicit request for a beacon-only network.
  plan.allow_empty_roster = config.num_nodes == 0 && config.roster.empty();
  return plan;
}

BanNetwork::BanNetwork(const BanConfig& config, os::ModelProbe* probe)
    : config_{config},
      context_{config.seed},
      channel_{context_},
      probe_{probe != nullptr ? probe : &null_probe_},
      nominal_costs_{os::CycleCostModel::platform_defaults()} {
  cell_ = NetworkBuilder::build_cell(context_, channel_, make_cell_plan(config_),
                                     *probe_, nominal_costs_);

  bool any_eeg = false;
  bool any_rpeak = false;
  for (const auto& node : cell_.nodes) {
    any_eeg = any_eeg || node->app_kind() == AppKind::kEegMonitoring;
    any_rpeak = any_rpeak || node->app_kind() == AppKind::kRpeak;
  }

  cell_.bs->set_data_handler([this](net::NodeId src,
                                    std::span<const std::uint8_t> payload,
                                    sim::TimePoint when) {
    cell_.bs->app().on_data(src, payload, when);
    const auto it = eeg_collectors_.find(src);
    if (it != eeg_collectors_.end()) it->second.on_payload(payload);
  });
  // EEG reassembly state exists only for the nodes that stream EEG; with a
  // heterogeneous roster the other nodes' payloads bypass the collectors.
  if (any_eeg) {
    for (auto& node : cell_.nodes) {
      if (node->app_kind() == AppKind::kEegMonitoring) {
        eeg_collectors_.try_emplace(
            node->address(),
            apps::EegCollector{node->eeg_app()->config().channels});
      }
    }
  }
  cell_.bs->app().set_decode_beats(any_rpeak);

  if (config_.use_link_model) {
    // Channel ids follow construction order: bs = 0, node i = i+1, which
    // matches the position vector's convention.
    std::vector<phy::BodyPosition> positions =
        config_.body_positions.empty()
            ? phy::standard_ban_layout(cell_.nodes.size())
            : config_.body_positions;
    link_model_ = std::make_unique<phy::LinkModel>(
        std::move(positions), config_.link_budget, config_.seed);
    channel_.set_error_model(
        [model = link_model_.get()](std::uint32_t tx, std::uint32_t rx,
                                    std::size_t frame_bytes) {
          return model->frame_error_rate(tx, rx, frame_bytes);
        },
        sim::Rng::stream(config_.seed, "channel/ber"));
  }

  if (config_.fault_plan.any()) {
    injector_ =
        std::make_unique<fault::FaultInjector>(context_, config_.fault_plan);
    // Roster order matches channel-id order (bs = 0, node i = i+1), which
    // is the numbering FaultPlan clauses use.
    for (auto& node : cell_.nodes) {
      injector_->add_node(node->mac_base(), node->board());
    }
    if (config_.fault_plan.touches_channel()) {
      injector_->install_error_model(channel_, link_model_.get());
    }
  }

  // The storage driver exists only when some node actually carries a live
  // store; nodes whose (possibly overridden) storage stays disabled keep
  // running off the bench supply and are simply not registered.
  for (auto& node : cell_.nodes) {
    if (node->energy_store() == nullptr) continue;
    if (!storage_driver_) {
      storage_driver_ = std::make_unique<fault::StorageDriver>(context_);
    }
    storage_driver_->add_node(node->mac_base(), node->board(),
                              *node->energy_store());
  }
}

void BanNetwork::reset(const BanConfig& config) {
  if (config.use_link_model != (link_model_ != nullptr)) {
    throw std::invalid_argument(
        "BanNetwork::reset: use_link_model changed; a reset must keep the "
        "network's shape");
  }
  if (config.fault_plan.any() != (injector_ != nullptr) ||
      config.fault_plan.touches_channel() !=
          config_.fault_plan.touches_channel()) {
    throw std::invalid_argument(
        "BanNetwork::reset: fault-plan activeness changed; a reset must "
        "keep the network's shape");
  }
  config_ = config;
  // Order matters: the context reset installs the new seed, which the
  // injector's stream re-derivation and the channel/link streams read.
  context_.reset(config_.seed);
  channel_.reset(sim::Rng::stream(config_.seed, "channel/ber"));
  if (link_model_) link_model_->reset(config_.seed);
  if (injector_) injector_->reset(config_.fault_plan);
  if (storage_driver_) storage_driver_->reset();
  NetworkBuilder::reset_cell(cell_, make_cell_plan(config_));
  for (auto& [addr, collector] : eeg_collectors_) collector.reset();
}

void BanNetwork::start() {
  NetworkBuilder::start_cell(context_, cell_);
  if (injector_) injector_->start();
  if (storage_driver_) storage_driver_->start();
}

void BanNetwork::run_until(sim::TimePoint until) {
  context_.simulator.run_until(until);
}

bool BanNetwork::all_joined() const { return cell_.all_joined(); }

bool BanNetwork::run_until_joined(sim::Duration settle,
                                  sim::TimePoint deadline) {
  const sim::Duration poll = sim::Duration::milliseconds(50);
  while (!all_joined()) {
    if (context_.simulator.now() >= deadline) return false;
    context_.simulator.run_until(context_.simulator.now() + poll);
  }
  context_.simulator.run_until(context_.simulator.now() + settle);
  return true;
}

apps::EegCollector* BanNetwork::eeg_collector(net::NodeId node) {
  const auto it = eeg_collectors_.find(node);
  return it == eeg_collectors_.end() ? nullptr : &it->second;
}

std::vector<energy::NodeEnergy> BanNetwork::energy_snapshot() const {
  return cell_.energy_snapshot(context_.simulator.now());
}

}  // namespace bansim::core
