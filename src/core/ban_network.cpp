#include "core/ban_network.hpp"

#include <cassert>

namespace bansim::core {

namespace {

std::string node_name(net::NodeId address) {
  return "node" + std::to_string(address);
}

}  // namespace

SensorNode::SensorNode(sim::Simulator& simulator, sim::Tracer& tracer,
                       phy::Channel& channel, const BanConfig& config,
                       net::NodeId address, double clock_skew,
                       sim::Rng mac_rng, sim::Rng ecg_rng,
                       os::ModelProbe& probe,
                       const os::CycleCostModel* nominal_costs)
    : address_{address},
      ecg_{config.ecg, ecg_rng},
      eeg_{config.eeg_signal,
           config.seed ^ sim::fnv1a64("eeg/" + node_name(address))},
      board_{simulator, tracer, channel, node_name(address),
             apply_fidelity(config.board, config.fidelity), clock_skew},
      os_{simulator, tracer, board_, probe, nominal_costs},
      mac_{simulator, tracer, os_, config.tdma, address, mac_rng} {
  // The biopotential front-end feeds the ECG waveform into channels 0 and 1
  // (the "2-channel ECG" of Section 5.1); channel 1 sees the same cardiac
  // source through a second electrode pair, at reduced amplitude.
  board_.asic().set_channel_signal(
      0, [this](sim::TimePoint t) { return ecg_.sample(t); });
  board_.asic().set_channel_signal(1, [this](sim::TimePoint t) {
    const double baseline = ecg_.config().baseline_volts;
    return baseline + 0.8 * (ecg_.sample(t) - baseline);
  });

  switch (config.app) {
    case AppKind::kEcgStreaming:
      streaming_ = std::make_unique<apps::EcgStreamingApp>(
          simulator, os_, mac_, config.streaming);
      break;
    case AppKind::kRpeak:
      rpeak_ = std::make_unique<apps::RpeakApp>(simulator, os_, mac_,
                                                config.rpeak);
      break;
    case AppKind::kEegMonitoring:
      eeg_app_ = std::make_unique<apps::EegApp>(simulator, os_, mac_,
                                                config.eeg, eeg_);
      break;
    case AppKind::kNone:
      break;
  }
}

void SensorNode::start() {
  mac_.start();
  if (streaming_) streaming_->start();
  if (rpeak_) rpeak_->start();
  if (eeg_app_) eeg_app_->start();
}

BanNetwork::BanNetwork(const BanConfig& config, os::ModelProbe* probe)
    : config_{config}, simulator_{}, tracer_{},
      channel_{simulator_, tracer_},
      probe_{probe != nullptr ? probe : &null_probe_},
      nominal_costs_{os::CycleCostModel::platform_defaults()} {
  const os::CycleCostModel* nominal =
      config_.fidelity == Fidelity::kModel ? &nominal_costs_ : nullptr;

  // Per-component deterministic randomness: the same seed reproduces the
  // same network, and the skew/ecg/mac streams are independent, so the
  // model run (which zeroes tolerance) sees identical ECG and MAC draws.
  sim::Rng skew_rng = sim::Rng::stream(config_.seed, "skew");
  const double tol = apply_fidelity(config_.board, config_.fidelity)
                         .mcu.clock_tolerance;

  const double bs_skew = skew_rng.uniform(-tol, tol);
  bs_board_ = std::make_unique<hw::Board>(
      simulator_, tracer_, channel_, "bs",
      apply_fidelity(config_.board, config_.fidelity), bs_skew);
  bs_os_ = std::make_unique<os::NodeOs>(simulator_, tracer_, *bs_board_,
                                        *probe_, nominal);
  bs_mac_ = std::make_unique<mac::BaseStationMac>(simulator_, tracer_,
                                                  *bs_os_, config_.tdma);
  bs_mac_->set_data_handler([this](net::NodeId src,
                                   std::span<const std::uint8_t> payload,
                                   sim::TimePoint when) {
    bs_app_.on_data(src, payload, when);
    if (config_.app == AppKind::kEegMonitoring) {
      auto [it, inserted] = eeg_collectors_.try_emplace(
          src, apps::EegCollector{config_.eeg.channels});
      it->second.on_payload(payload);
    }
  });
  bs_app_.set_decode_beats(config_.app == AppKind::kRpeak);

  nodes_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    const auto address =
        static_cast<net::NodeId>(config_.address_offset + i + 1);
    const double skew = skew_rng.uniform(-tol, tol);
    nodes_.push_back(std::make_unique<SensorNode>(
        simulator_, tracer_, channel_, config_, address, skew,
        sim::Rng::stream(config_.seed, "mac/" + node_name(address)),
        sim::Rng::stream(config_.seed, "ecg/" + node_name(address)),
        *probe_, nominal));
  }

  if (config_.use_link_model) {
    // Channel ids follow construction order: bs = 0, node i = i+1, which
    // matches the position vector's convention.
    std::vector<phy::BodyPosition> positions =
        config_.body_positions.empty()
            ? phy::standard_ban_layout(config_.num_nodes)
            : config_.body_positions;
    link_model_ = std::make_unique<phy::LinkModel>(
        std::move(positions), config_.link_budget, config_.seed);
    channel_.set_error_model(
        [model = link_model_.get()](std::uint32_t tx, std::uint32_t rx,
                                    std::size_t frame_bytes) {
          return model->frame_error_rate(tx, rx, frame_bytes);
        },
        sim::Rng::stream(config_.seed, "channel/ber"));
  }
}

void BanNetwork::start() {
  bs_mac_->start();
  sim::Rng stagger_rng = sim::Rng::stream(config_.seed, "stagger");
  for (auto& node : nodes_) {
    const double offset_s =
        stagger_rng.uniform(0.0, config_.stagger.to_seconds());
    simulator_.schedule_in(sim::Duration::from_seconds(offset_s),
                           [n = node.get()] { n->start(); });
  }
}

void BanNetwork::run_until(sim::TimePoint until) {
  simulator_.run_until(until);
}

bool BanNetwork::all_joined() const {
  for (const auto& node : nodes_) {
    if (!node->mac().joined()) return false;
  }
  return true;
}

bool BanNetwork::run_until_joined(sim::Duration settle,
                                  sim::TimePoint deadline) {
  const sim::Duration poll = sim::Duration::milliseconds(50);
  while (!all_joined()) {
    if (simulator_.now() >= deadline) return false;
    simulator_.run_until(simulator_.now() + poll);
  }
  simulator_.run_until(simulator_.now() + settle);
  return true;
}

apps::EegCollector* BanNetwork::eeg_collector(net::NodeId node) {
  const auto it = eeg_collectors_.find(node);
  return it == eeg_collectors_.end() ? nullptr : &it->second;
}

std::vector<energy::NodeEnergy> BanNetwork::energy_snapshot() const {
  std::vector<energy::NodeEnergy> out;
  out.reserve(nodes_.size() + 1);
  const sim::TimePoint now = simulator_.now();
  for (const auto& node : nodes_) {
    energy::NodeEnergy ne;
    ne.node = node->name();
    ne.components = node->board().breakdown(now);
    out.push_back(std::move(ne));
  }
  energy::NodeEnergy bs;
  bs.node = "bs";
  bs.components = bs_board_->breakdown(now);
  out.push_back(std::move(bs));
  return out;
}

}  // namespace bansim::core
