// Experiment-configuration serialization (INI-style).
//
// Lets scenarios live in version-controlled text files instead of C++:
//
//   [network]
//   nodes = 5
//   seed = 42
//   app = ecg_streaming        ; none | ecg_streaming | rpeak | eeg_monitoring
//
//   [mac]
//   protocol = static_tdma     ; static_tdma | dynamic_tdma | aloha | csma_ca
//
//   [tdma]
//   variant = static           ; static | dynamic
//   cycle_ms = 30              ; static: full cycle (slot derived)
//   slot_ms = 10               ; dynamic: slot width
//   ack_data = false
//   fast_grant = true
//   radio_power_down = false
//
//   ; [aloha] / [csma] configure the contention protocols; read whenever
//   ; present, only consulted when [mac] protocol selects them.
//   [csma]
//   cycle_ms = 30
//   gts_slots = 2
//
//   [streaming]
//   sample_rate_hz = 205
//
//   [link]
//   enabled = false
//   tx_power_dbm = -5
//
//   ; Optional per-node overrides (1-based index).  Any [node.K] section
//   ; switches the network to roster mode: node K starts from the global
//   ; defaults above and overrides only the keys it lists.
//   [node.2]
//   app = rpeak
//   rpeak.sample_rate_hz = 250
//
// Unknown keys and unknown enum tokens are reported as hard errors, with
// the offending token named, so typos do not silently become defaults.
// parse/serialize round-trip.
#pragma once

#include <stdexcept>
#include <string>

#include "core/ban_network.hpp"

namespace bansim::core {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& message)
      : std::runtime_error(message) {}
};

// Enum parsing, shared by the file parser and the CLI so every entry
// point rejects unknown tokens the same way.  Each throws ConfigError
// naming the offending token and the accepted values.
[[nodiscard]] AppKind parse_app_kind(const std::string& token);
[[nodiscard]] mac::Protocol parse_mac_protocol(const std::string& token);
[[nodiscard]] mac::TdmaVariant parse_tdma_variant(const std::string& token);
[[nodiscard]] Fidelity parse_fidelity(const std::string& token);
[[nodiscard]] fault::FaultKind parse_fault_kind(const std::string& token);
[[nodiscard]] hw::StorageKind parse_storage_kind(const std::string& token);
[[nodiscard]] hw::HarvestParams::Profile parse_harvest_profile(
    const std::string& token);

/// Routes a parsed protocol into BanConfig (the TDMA variants fold into
/// MacKind::kTdma + TdmaConfig::variant) — shared by the file parser, the
/// bansim_cli --protocol override, and the campaign orchestrator's
/// protocol-sweep variants so a protocol override means the same thing at
/// every entry point.
void apply_mac_protocol(BanConfig& config, mac::Protocol protocol);

/// Parses INI text into a BanConfig (starting from defaults).  [node.K]
/// sections fill config.roster; global keys may appear before or after
/// them (the roster is resolved once the whole file is read).
[[nodiscard]] BanConfig parse_config(const std::string& text);

/// Serializes the fields parse_config understands, including the roster.
[[nodiscard]] std::string serialize_config(const BanConfig& config);

}  // namespace bansim::core
