// Experiment-configuration serialization (INI-style).
//
// Lets scenarios live in version-controlled text files instead of C++:
//
//   [network]
//   nodes = 5
//   seed = 42
//   app = ecg_streaming        ; none | ecg_streaming | rpeak | eeg_monitoring
//
//   [tdma]
//   variant = static           ; static | dynamic
//   cycle_ms = 30              ; static: full cycle (slot derived)
//   slot_ms = 10               ; dynamic: slot width
//   ack_data = false
//   fast_grant = true
//   radio_power_down = false
//
//   [streaming]
//   sample_rate_hz = 205
//
//   [link]
//   enabled = false
//   tx_power_dbm = -5
//
// Unknown keys are reported as errors so typos do not silently become
// defaults.  parse/serialize round-trip.
#pragma once

#include <stdexcept>
#include <string>

#include "core/ban_network.hpp"

namespace bansim::core {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parses INI text into a BanConfig (starting from defaults).
[[nodiscard]] BanConfig parse_config(const std::string& text);

/// Serializes the fields parse_config understands.
[[nodiscard]] std::string serialize_config(const BanConfig& config);

}  // namespace bansim::core
