// Co-located BAN coexistence: several independent cells (one base station
// + nodes each, distinct pan_id and address ranges) sharing one radio
// channel — two monitored patients sitting next to each other.  Beacons
// and data of one cell are overheard (and, without coordination, collided
// with) by the other; the PAN filtering in the MAC keeps the cells
// logically separate while the channel keeps them physically coupled.
//
// Each cell is assembled by core::NetworkBuilder from the cell's
// BanConfig; the only MultiBan-specific wiring is the per-cell RNG stream
// suffixing ("skew/cell0", "mac/cell0/…") that keeps co-located cells on
// independent streams even when they share a seed.
#pragma once

#include <memory>
#include <vector>

#include "core/ban_network.hpp"
#include "core/network_builder.hpp"

namespace bansim::core {

class MultiBan {
 public:
  /// Each cell's BanConfig must carry a distinct tdma.pan_id and a
  /// disjoint address range (address_offset); fidelity/seed of the first
  /// cell select the RNG streams for shared infrastructure.
  explicit MultiBan(std::vector<BanConfig> cells);

  void start();
  void run_until(sim::TimePoint until);
  [[nodiscard]] bool all_joined() const;
  bool run_until_joined(sim::Duration settle, sim::TimePoint deadline);

  [[nodiscard]] sim::SimContext& context() { return context_; }
  [[nodiscard]] sim::Simulator& simulator() { return context_.simulator; }
  [[nodiscard]] phy::Channel& channel() { return channel_; }
  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_nodes(std::size_t cell) const {
    return cells_[cell]->built.nodes.size();
  }
  [[nodiscard]] SensorNode& node(std::size_t cell, std::size_t i) {
    return *cells_[cell]->built.nodes[i];
  }
  [[nodiscard]] mac::BaseStationMac& base_station_mac(std::size_t cell) {
    return cells_[cell]->built.bs->tdma_mac();
  }
  [[nodiscard]] apps::BaseStationApp& base_station_app(std::size_t cell) {
    return cells_[cell]->built.bs->app();
  }

  /// Per-node component energy snapshot of one cell (nodes, then bs).
  [[nodiscard]] std::vector<energy::NodeEnergy> energy_snapshot(
      std::size_t cell) const {
    return cells_[cell]->built.energy_snapshot(context_.simulator.now());
  }

 private:
  struct Cell {
    BanConfig config;
    BuiltCell built;
  };

  sim::SimContext context_;
  phy::Channel channel_;
  os::NullProbe probe_;
  os::CycleCostModel nominal_costs_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

}  // namespace bansim::core
