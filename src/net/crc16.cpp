#include "net/crc16.hpp"

namespace bansim::net {

std::uint16_t crc16_ccitt_update(std::uint16_t crc, std::uint8_t byte) {
  crc ^= static_cast<std::uint16_t>(byte) << 8;
  for (int bit = 0; bit < 8; ++bit) {
    if (crc & 0x8000) {
      crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
    } else {
      crc = static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data, std::uint16_t init) {
  std::uint16_t crc = init;
  for (std::uint8_t b : data) crc = crc16_ccitt_update(crc, b);
  return crc;
}

}  // namespace bansim::net
