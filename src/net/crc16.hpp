// CRC-16/CCITT-FALSE, the 16-bit CRC option of the nRF2401 ShockBurst
// engine (poly 0x1021, init 0xFFFF, no reflection).  The radio model uses
// it to decide whether a corrupted air frame is delivered or silently
// dropped, which is how the paper's model detects collisions (Section 4.2).
#pragma once

#include <cstdint>
#include <span>

namespace bansim::net {

/// CRC over an arbitrary byte span.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data,
                                        std::uint16_t init = 0xFFFF);

/// Incremental variant: feed one byte into a running CRC.
[[nodiscard]] std::uint16_t crc16_ccitt_update(std::uint16_t crc, std::uint8_t byte);

}  // namespace bansim::net
