#include "net/packet.hpp"

#include <cstdio>

#include "net/crc16.hpp"

namespace bansim::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

}  // namespace

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kBeacon: return "BEACON";
    case PacketType::kSlotRequest: return "SLOT_REQ";
    case PacketType::kSlotGrant: return "SLOT_GRANT";
    case PacketType::kCycleUpdate: return "CYCLE_UPD";
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
  }
  return "?";
}

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());
  put_u16(out, header.dest);
  put_u16(out, header.src);
  out.push_back(static_cast<std::uint8_t>(header.type));
  out.push_back(header.seq);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t crc = crc16_ccitt(out);
  put_u16(out, crc);
  return out;
}

std::optional<Packet> Packet::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes + kCrcBytes) return std::nullopt;
  const std::size_t body = bytes.size() - kCrcBytes;
  const std::uint16_t want = get_u16(bytes, body);
  const std::uint16_t got = crc16_ccitt(bytes.subspan(0, body));
  if (want != got) return std::nullopt;

  Packet p;
  p.header.dest = get_u16(bytes, 0);
  p.header.src = get_u16(bytes, 2);
  p.header.type = static_cast<PacketType>(bytes[4]);
  p.header.seq = bytes[5];
  p.payload.assign(bytes.begin() + kHeaderBytes, bytes.begin() + static_cast<std::ptrdiff_t>(body));
  return p;
}

std::string Packet::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s src=%u dst=%u seq=%u len=%zu",
                net::to_string(header.type), header.src, header.dest,
                header.seq, payload.size());
  return buf;
}

std::vector<std::uint8_t> BeaconPayload::serialize() const {
  std::vector<std::uint8_t> out;
  put_u32(out, cycle_us);
  out.push_back(num_slots);
  put_u32(out, slot_us);
  out.push_back(beacon_seq);
  out.push_back(pan_id);
  out.push_back(static_cast<std::uint8_t>(slot_owners.size()));
  for (NodeId id : slot_owners) put_u16(out, id);
  return out;
}

std::optional<BeaconPayload> BeaconPayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 12) return std::nullopt;
  BeaconPayload b;
  b.cycle_us = get_u32(bytes, 0);
  b.num_slots = bytes[4];
  b.slot_us = get_u32(bytes, 5);
  b.beacon_seq = bytes[9];
  b.pan_id = bytes[10];
  const std::size_t owners = bytes[11];
  if (bytes.size() < 12 + owners * 2) return std::nullopt;
  b.slot_owners.reserve(owners);
  for (std::size_t i = 0; i < owners; ++i) {
    b.slot_owners.push_back(get_u16(bytes, 12 + i * 2));
  }
  return b;
}

std::vector<std::uint8_t> SlotGrantPayload::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(slot_index);
  put_u32(out, cycle_us);
  return out;
}

std::optional<SlotGrantPayload> SlotGrantPayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 5) return std::nullopt;
  SlotGrantPayload g;
  g.slot_index = bytes[0];
  g.cycle_us = get_u32(bytes, 1);
  return g;
}

}  // namespace bansim::net
