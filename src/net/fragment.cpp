#include "net/fragment.hpp"

namespace bansim::net {

std::vector<std::vector<std::uint8_t>> fragment_block(
    std::uint8_t block_id, std::span<const std::uint8_t> block,
    std::size_t max_payload) {
  std::vector<std::vector<std::uint8_t>> out;
  if (max_payload <= kFragmentHeaderBytes) return out;
  const std::size_t chunk = max_payload - kFragmentHeaderBytes;
  const std::size_t count =
      block.empty() ? 1 : (block.size() + chunk - 1) / chunk;
  if (count > 255) return out;

  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(block.size(), begin + chunk);
    std::vector<std::uint8_t> fragment;
    fragment.reserve(kFragmentHeaderBytes + (end - begin));
    fragment.push_back(block_id);
    fragment.push_back(static_cast<std::uint8_t>(i));
    fragment.push_back(static_cast<std::uint8_t>(count));
    fragment.insert(fragment.end(), block.begin() + static_cast<std::ptrdiff_t>(begin),
                    block.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(fragment));
  }
  return out;
}

std::optional<ReassembledBlock> Reassembler::feed(
    std::span<const std::uint8_t> fragment) {
  if (fragment.size() < kFragmentHeaderBytes) {
    ++rejected_;
    return std::nullopt;
  }
  const std::uint8_t block_id = fragment[0];
  const std::uint8_t index = fragment[1];
  const std::uint8_t count = fragment[2];
  if (count == 0 || index >= count) {
    ++rejected_;
    return std::nullopt;
  }

  Partial& partial = pending_[block_id];
  if (partial.chunks.size() != count) {
    // New block (or stale partial from a recycled block id): restart it.
    partial = Partial{};
    partial.chunks.resize(count);
    partial.have.assign(count, false);
  }
  if (partial.have[index]) {
    ++duplicates_;
    return std::nullopt;
  }
  partial.have[index] = true;
  partial.chunks[index].assign(fragment.begin() + kFragmentHeaderBytes,
                               fragment.end());
  ++partial.received;
  ++accepted_;

  if (partial.received == partial.chunks.size()) {
    ReassembledBlock block;
    block.block_id = block_id;
    for (const auto& piece : partial.chunks) {
      block.data.insert(block.data.end(), piece.begin(), piece.end());
    }
    pending_.erase(block_id);
    ++completed_;
    return block;
  }

  // Bound memory: too many concurrent partials means sustained loss; drop
  // the oldest (smallest id distance heuristics are overkill here).
  while (pending_.size() > kMaxPending) {
    pending_.erase(pending_.begin());
    ++abandoned_;
  }
  return std::nullopt;
}

}  // namespace bansim::net
