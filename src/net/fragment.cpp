#include "net/fragment.hpp"

#include <algorithm>

namespace bansim::net {

std::optional<std::vector<std::vector<std::uint8_t>>> fragment_block(
    std::uint8_t block_id, std::span<const std::uint8_t> block,
    std::size_t max_payload, FragmentError* error) {
  if (max_payload <= kFragmentHeaderBytes) {
    if (error) *error = FragmentError::kPayloadTooSmall;
    return std::nullopt;
  }
  const std::size_t chunk = max_payload - kFragmentHeaderBytes;
  const std::size_t count =
      block.empty() ? 1 : (block.size() + chunk - 1) / chunk;
  if (count > 255) {
    if (error) *error = FragmentError::kTooManyFragments;
    return std::nullopt;
  }

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(block.size(), begin + chunk);
    std::vector<std::uint8_t> fragment;
    fragment.reserve(kFragmentHeaderBytes + (end - begin));
    fragment.push_back(block_id);
    fragment.push_back(static_cast<std::uint8_t>(i));
    fragment.push_back(static_cast<std::uint8_t>(count));
    fragment.insert(fragment.end(), block.begin() + static_cast<std::ptrdiff_t>(begin),
                    block.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(fragment));
  }
  return out;
}

std::optional<ReassembledBlock> Reassembler::feed(
    std::span<const std::uint8_t> fragment) {
  if (fragment.size() < kFragmentHeaderBytes) {
    ++rejected_;
    return std::nullopt;
  }
  const std::uint8_t block_id = fragment[0];
  const std::uint8_t index = fragment[1];
  const std::uint8_t count = fragment[2];
  if (count == 0 || index >= count) {
    ++rejected_;
    return std::nullopt;
  }
  const auto payload = fragment.subspan(kFragmentHeaderBytes);

  ++feed_seq_;
  Partial& partial = pending_[block_id];
  bool restart = partial.chunks.size() != count;
  if (!restart) {
    // Same id and same fragment count: this may still be a recycled block
    // id landing on a stale partial, which a bare size check cannot see.
    // Two independent freshness signals catch it: the partial has been idle
    // far longer than any live block's fragments are ever spread apart, or
    // the new fragment disagrees with a chunk we already hold.
    const bool aged = feed_seq_ - partial.last_feed > kStaleFeedGap;
    const bool conflict =
        partial.have[index] &&
        !std::equal(partial.chunks[index].begin(), partial.chunks[index].end(),
                    payload.begin(), payload.end());
    restart = aged || conflict;
  }
  if (restart) {
    if (partial.received > 0) ++stale_discarded_;
    partial = Partial{};
    partial.chunks.resize(count);
    partial.have.assign(count, false);
  }
  partial.last_feed = feed_seq_;
  if (partial.have[index]) {
    ++duplicates_;
    return std::nullopt;
  }
  partial.have[index] = true;
  partial.chunks[index].assign(payload.begin(), payload.end());
  ++partial.received;
  ++accepted_;

  if (partial.received == partial.chunks.size()) {
    ReassembledBlock block;
    block.block_id = block_id;
    for (const auto& piece : partial.chunks) {
      block.data.insert(block.data.end(), piece.begin(), piece.end());
    }
    pending_.erase(block_id);
    ++completed_;
    return block;
  }

  // Bound memory: too many concurrent partials means sustained loss; drop
  // the oldest (smallest id distance heuristics are overkill here).
  while (pending_.size() > kMaxPending) {
    pending_.erase(pending_.begin());
    ++abandoned_;
  }
  return std::nullopt;
}

}  // namespace bansim::net
