// Block fragmentation over the small ShockBurst payload.
//
// An EEG sample block (a delta-compressed multi-channel chunk) routinely
// exceeds the radio's 24-byte application payload.  The Fragmenter splits
// a block into numbered fragments with a 3-byte header; the Reassembler at
// the base station rebuilds blocks, tolerating loss (incomplete blocks are
// discarded when a newer block completes) and duplicate delivery (ARQ
// retransmissions).
//
// Fragment layout: | block_id (1B) | frag_index (1B) | frag_count (1B) | data |
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace bansim::net {

inline constexpr std::size_t kFragmentHeaderBytes = 3;

/// Why fragment_block() could not split a block.
enum class FragmentError : std::uint8_t {
  kPayloadTooSmall,   ///< max_payload leaves no data room after the header
  kTooManyFragments,  ///< block would need more than 255 fragments
};

/// Splits `block` into fragments whose total size (header + chunk) fits
/// `max_payload`.  A successful result always holds at least one fragment
/// (an empty block yields one header-only fragment); impossible geometry
/// (`max_payload` <= header, or a block needing more than 255 fragments)
/// returns std::nullopt and, when `error` is non-null, stores the reason
/// there so callers can tell a configuration bug from an oversized block.
[[nodiscard]] std::optional<std::vector<std::vector<std::uint8_t>>>
fragment_block(std::uint8_t block_id, std::span<const std::uint8_t> block,
               std::size_t max_payload, FragmentError* error = nullptr);

/// One reassembled block.
struct ReassembledBlock {
  std::uint8_t block_id{0};
  std::vector<std::uint8_t> data;
};

class Reassembler {
 public:
  /// Feeds one received fragment; returns the completed block when this
  /// fragment was the last missing piece.
  std::optional<ReassembledBlock> feed(std::span<const std::uint8_t> fragment);

  [[nodiscard]] std::uint64_t blocks_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t fragments_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t fragments_rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t blocks_abandoned() const { return abandoned_; }

  /// Stale partials discarded because a recycled block id started a new
  /// cycle on top of them (fragment-count change, conflicting payload for
  /// an already-held index, or age-out).  Each one would previously have
  /// been merged with the new block's fragments and could emit a corrupted
  /// block.
  [[nodiscard]] std::uint64_t stale_discarded() const { return stale_discarded_; }

  /// Blocks currently partially assembled (diagnostics).
  [[nodiscard]] std::size_t pending_blocks() const { return pending_.size(); }

  /// Incomplete blocks older than `keep` completed block ids are dropped;
  /// bounded memory under sustained loss.
  static constexpr std::size_t kMaxPending = 4;

  /// A partial untouched for this many feed() calls is treated as stale
  /// when its block id comes around again: fragments of a live block arrive
  /// within a handful of feeds of each other, while an 8-bit block id only
  /// recycles after ~255 intervening blocks.
  static constexpr std::uint64_t kStaleFeedGap = 64;

 private:
  struct Partial {
    std::vector<std::vector<std::uint8_t>> chunks;  ///< indexed by frag_index
    std::vector<bool> have;                         ///< parallel to chunks
    std::size_t received{0};
    std::uint64_t last_feed{0};  ///< freshness marker (feed sequence number)
  };

  std::map<std::uint8_t, Partial> pending_;
  std::uint64_t completed_{0};
  std::uint64_t accepted_{0};
  std::uint64_t rejected_{0};
  std::uint64_t duplicates_{0};
  std::uint64_t abandoned_{0};
  std::uint64_t stale_discarded_{0};
  std::uint64_t feed_seq_{0};
};

}  // namespace bansim::net
