// Block fragmentation over the small ShockBurst payload.
//
// An EEG sample block (a delta-compressed multi-channel chunk) routinely
// exceeds the radio's 24-byte application payload.  The Fragmenter splits
// a block into numbered fragments with a 3-byte header; the Reassembler at
// the base station rebuilds blocks, tolerating loss (incomplete blocks are
// discarded when a newer block completes) and duplicate delivery (ARQ
// retransmissions).
//
// Fragment layout: | block_id (1B) | frag_index (1B) | frag_count (1B) | data |
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace bansim::net {

inline constexpr std::size_t kFragmentHeaderBytes = 3;

/// Splits `block` into fragments whose total size (header + chunk) fits
/// `max_payload`.  Returns at most 255 fragments; blocks that would need
/// more are rejected (empty result).
[[nodiscard]] std::vector<std::vector<std::uint8_t>> fragment_block(
    std::uint8_t block_id, std::span<const std::uint8_t> block,
    std::size_t max_payload);

/// One reassembled block.
struct ReassembledBlock {
  std::uint8_t block_id{0};
  std::vector<std::uint8_t> data;
};

class Reassembler {
 public:
  /// Feeds one received fragment; returns the completed block when this
  /// fragment was the last missing piece.
  std::optional<ReassembledBlock> feed(std::span<const std::uint8_t> fragment);

  [[nodiscard]] std::uint64_t blocks_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t fragments_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t fragments_rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t blocks_abandoned() const { return abandoned_; }

  /// Blocks currently partially assembled (diagnostics).
  [[nodiscard]] std::size_t pending_blocks() const { return pending_.size(); }

  /// Incomplete blocks older than `keep` completed block ids are dropped;
  /// bounded memory under sustained loss.
  static constexpr std::size_t kMaxPending = 4;

 private:
  struct Partial {
    std::vector<std::vector<std::uint8_t>> chunks;  ///< indexed by frag_index
    std::vector<bool> have;                         ///< parallel to chunks
    std::size_t received{0};
  };

  std::map<std::uint8_t, Partial> pending_;
  std::uint64_t completed_{0};
  std::uint64_t accepted_{0};
  std::uint64_t rejected_{0};
  std::uint64_t duplicates_{0};
  std::uint64_t abandoned_{0};
};

}  // namespace bansim::net
